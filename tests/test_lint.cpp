// Static SCPG linter (src/lint): every rule has a positive test (a
// deliberate mutation of a known-good SCPG design that fires exactly that
// rule) and the paper's clean designs lint with zero findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "gen/mult16.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"

namespace scpg::lint {
namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

struct GatedMult {
  Netlist nl;
  ScpgInfo info;
};

GatedMult gated_mult8() {
  GatedMult g{gen::make_multiplier(lib(), 8), {}};
  g.info = apply_scpg(g.nl);
  return g;
}

/// First gated combinational gate (not a tie/header/iso) — mutation target.
CellId some_gated_gate(const Netlist& nl) {
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.domain != Domain::Gated || c.is_macro() || c.inputs.empty())
      continue;
    const CellKind k = nl.kind_of(id);
    if (k == CellKind::TieHi || k == CellKind::TieLo ||
        k == CellKind::Header || k == CellKind::IsoLo ||
        k == CellKind::IsoHi)
      continue;
    return id;
  }
  throw Error("no gated gate found");
}

/// A flop whose Q feeds only gated cells (an operand register: its fanout
/// goes through the boundary buffers into the array) — retagging it Gated
/// fires the domain-sanity rule without creating an unclamped crossing.
CellId operand_flop(const Netlist& nl) {
  for (const CellId f : nl.flops()) {
    const Net& q = nl.net(nl.cell(f).outputs[0]);
    if (!q.sink_ports.empty() || q.sinks.empty()) continue;
    const bool all_gated =
        std::all_of(q.sinks.begin(), q.sinks.end(), [&](const PinRef& s) {
          return nl.cell(s.cell).domain == Domain::Gated;
        });
    if (all_gated) return f;
  }
  throw Error("no operand flop found");
}

// --- table-driven mutations --------------------------------------------------

struct RuleCase {
  const char* name;
  const char* expect; ///< rule that must fire
  std::vector<std::string> also_allowed;
  std::function<void(Netlist&, const ScpgInfo&, LintOptions&)> apply;
};

const std::vector<RuleCase>& rule_cases() {
  static const std::vector<RuleCase> cases = {
      {"DroppedClamp", "SCPG001", {},
       [](Netlist& nl, const ScpgInfo& info, LintOptions&) {
         // Bypass one isolation cell: its always-on readers take the raw
         // gated net again (the clamp is left dangling, which is legal).
         const IsoBinding& b = info.isolation.front();
         const Net out = nl.net(b.out); // copy: rewiring edits sink lists
         for (const PinRef& s : out.sinks)
           nl.rewire_input(s.cell, s.pin, b.data);
       }},
      {"GatedFlop", "SCPG002", {},
       [](Netlist& nl, const ScpgInfo&, LintOptions&) {
         nl.cell(operand_flop(nl)).domain = Domain::Gated;
       }},
      {"InvertedHeaderEnable", "SCPG003", {},
       [](Netlist& nl, const ScpgInfo& info, LintOptions&) {
         const NetId nclk = nl.add_cell_auto(lib().pick(CellKind::Inv),
                                             {info.clk});
         for (const CellId h : info.headers) nl.rewire_input(h, 0, nclk);
       }},
      {"XObservableOutput", "SCPG004", {"SCPG001"},
       [](Netlist& nl, const ScpgInfo& info, LintOptions&) {
         // Tap a raw gated-domain net straight to a primary output.
         nl.add_output("lint_probe", info.isolation.front().data);
       }},
      {"InfeasibleFrequency", "SCPG005", {},
       [](Netlist&, const ScpgInfo&, LintOptions& opt) {
         // No mutation: a clean design at 500 MHz cannot fit T_PGStart +
         // T_eval + T_setup into any clock-low phase (Eq. 1).
         opt.freq = Frequency{500e6};
       }},
      {"IsoControlDisagreement", "SCPG006", {},
       [](Netlist& nl, const ScpgInfo& info, LintOptions&) {
         // One clamp released by the raw clock: UPF declares exactly one
         // isolation control, so the intent no longer matches.
         nl.rewire_input(info.isolation.front().cell, 1, info.clk);
       }},
      {"FloatingInput", "SCPG007", {},
       [](Netlist& nl, const ScpgInfo&, LintOptions&) {
         nl.rewire_input(some_gated_gate(nl), 0, nl.add_net("floaty"));
       }},
      {"CombLoop", "SCPG008", {},
       [](Netlist& nl, const ScpgInfo&, LintOptions&) {
         const CellId c = some_gated_gate(nl);
         nl.rewire_input(c, 0, nl.cell(c).outputs[0]);
       }},
  };
  return cases;
}

TEST(Lint, EveryRuleHasAFiringMutation) {
  for (const RuleCase& rc : rule_cases()) {
    SCOPED_TRACE(rc.name);
    GatedMult g = gated_mult8();
    LintOptions opt;
    rc.apply(g.nl, g.info, opt);
    const LintReport rep = run_lint(g.nl, opt);

    EXPECT_TRUE(rep.fired(rc.expect))
        << rc.expect << " did not fire:\n" << rep.format_text();
    for (const Diagnostic& d : rep.findings()) {
      EXPECT_TRUE(d.rule == rc.expect ||
                  std::find(rc.also_allowed.begin(), rc.also_allowed.end(),
                            d.rule) != rc.also_allowed.end())
          << "unexpected co-firing rule " << d.rule << ": " << d.message;
      EXPECT_FALSE(d.message.empty());
      EXPECT_FALSE(d.where.empty()) << d.rule << " finding has no location";
    }
    EXPECT_GT(rep.errors(), 0u);
  }
}

TEST(Lint, MutationFindingsCarryNames) {
  // The located diagnostics name the actual cells: the inverted-enable
  // mutation must point at a header instance.
  GatedMult g = gated_mult8();
  const NetId nclk = g.nl.add_cell_auto(lib().pick(CellKind::Inv),
                                        {g.info.clk});
  for (const CellId h : g.info.headers) g.nl.rewire_input(h, 0, nclk);
  const LintReport rep = run_lint(g.nl);
  ASSERT_EQ(rep.count("SCPG003"), g.info.headers.size());
  const Diagnostic& d = rep.findings().front();
  ASSERT_FALSE(d.where.empty());
  EXPECT_EQ(d.where.front().kind, DiagLoc::Kind::Cell);
  EXPECT_EQ(d.where.front().name, g.nl.cell(g.info.headers.front()).name);
  EXPECT_NE(d.message.find("u_hdr"), std::string::npos);
  EXPECT_FALSE(d.hint.empty());
}

TEST(Lint, GatedDomainWithoutHeadersIsAnError) {
  // Hand-tagging cells Gated without running the transform leaves intent
  // with no implementation: no header bank exists.
  Netlist nl = gen::make_multiplier(lib(), 8);
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (!nl.cell(CellId{ci}).is_macro() && nl.is_comb_node(CellId{ci})) {
      nl.cell(CellId{ci}).domain = Domain::Gated;
      break;
    }
  const LintReport rep = run_lint(nl);
  EXPECT_TRUE(rep.fired("SCPG002")) << rep.format_text();
}

// --- clean designs -----------------------------------------------------------

TEST(Lint, CleanMultiplierOriginalHasZeroFindings) {
  const LintReport rep = run_lint(gen::make_multiplier(lib(), 8));
  EXPECT_TRUE(rep.clean()) << rep.format_text();
}

TEST(Lint, CleanMultiplierScpgHasZeroFindings) {
  GatedMult g = gated_mult8();
  LintOptions opt;
  opt.freq = Frequency{1e6}; // exercises SCPG005's feasible path too
  const LintReport rep = run_lint(g.nl, opt);
  EXPECT_TRUE(rep.clean()) << rep.format_text();
}

TEST(Lint, CleanScm0ScpgHasZeroFindings) {
  cpu::Scm0 core = cpu::make_scm0(lib(), cpu::assemble("halt\n"));
  apply_scpg(core.netlist, cpu::scm0_scpg_options());
  LintOptions opt;
  opt.freq = Frequency{1e6};
  opt.sim = cpu::scm0_sim_config();
  const LintReport rep = run_lint(core.netlist, opt);
  EXPECT_TRUE(rep.clean()) << rep.format_text();
}

TEST(Lint, NoAdaptiveAblationIsStillClean) {
  // clock-only isolation release (!clk) is a recognised legal shape.
  Netlist nl = gen::make_multiplier(lib(), 8);
  ScpgOptions opt;
  opt.adaptive_controller = false;
  apply_scpg(nl, opt);
  const LintReport rep = run_lint(nl);
  EXPECT_TRUE(rep.clean()) << rep.format_text();
}

TEST(Lint, NoIsolationAblationIsRejected) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  ScpgOptions opt;
  opt.insert_isolation = false;
  apply_scpg(nl, opt);
  const LintReport rep = run_lint(nl);
  EXPECT_TRUE(rep.fired("SCPG001"));
  EXPECT_GT(rep.errors(), 0u);
}

// --- report / API surface ----------------------------------------------------

TEST(Lint, RuleTableListsAllEight) {
  const auto rs = rules();
  ASSERT_EQ(rs.size(), 8u);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id, "SCPG00" + std::to_string(i + 1));
    EXPECT_FALSE(rs[i].name.empty());
    EXPECT_FALSE(rs[i].what.empty());
  }
}

TEST(Lint, OnlyFilterRestrictsRules) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  ScpgOptions sopt;
  sopt.insert_isolation = false;
  apply_scpg(nl, sopt);
  LintOptions opt;
  opt.only = {"SCPG003"};
  const LintReport rep = run_lint(nl, opt); // SCPG001 findings suppressed
  EXPECT_TRUE(rep.clean()) << rep.format_text();
  opt.only = {"SCPG001"};
  EXPECT_TRUE(run_lint(nl, opt).fired("SCPG001"));
}

TEST(Lint, JsonReportHasTheDocumentedShape) {
  GatedMult g = gated_mult8();
  const Net out = g.nl.net(g.info.isolation.front().out);
  for (const PinRef& s : out.sinks)
    g.nl.rewire_input(s.cell, s.pin, g.info.isolation.front().data);
  const std::string js = run_lint(g.nl).to_json();
  EXPECT_NE(js.find("\"design\": \"" + g.nl.name() + "\""),
            std::string::npos)
      << js;
  EXPECT_NE(js.find("\"errors\": 1"), std::string::npos) << js;
  EXPECT_NE(js.find("\"rule\": \"SCPG001\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"locations\": [{\"kind\": \"net\""), std::string::npos)
      << js;
}

TEST(Lint, EnforceThrowsLintErrorWithContext) {
  GatedMult g = gated_mult8();
  g.nl.cell(operand_flop(g.nl)).domain = Domain::Gated;
  try {
    enforce_lint(g.nl, {}, "unit test");
    FAIL() << "expected LintError";
  } catch (const LintError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit test"), std::string::npos);
    EXPECT_NE(what.find("SCPG002"), std::string::npos);
  }
  // A clean design passes through silently.
  EXPECT_NO_THROW(enforce_lint(gated_mult8().nl));
}

// --- dataflow framework ------------------------------------------------------

TEST(LintDataflow, ForwardAndBackwardReachability) {
  // a -> INV -> n1 -> BUF -> n2 -> DFF -> q -> out
  Netlist nl("chain", lib());
  const NetId a = nl.add_input("a");
  const NetId clk = nl.add_input("clk");
  const NetId n1 = nl.add_cell_auto(lib().pick(CellKind::Inv), {a});
  const NetId n2 = nl.add_cell_auto(lib().pick(CellKind::Buf), {n1});
  const NetId q = nl.add_cell_auto(lib().pick(CellKind::Dff), {n2, clk});
  nl.add_output("out", q);

  const std::vector<NetId> seed_a{a};
  const ReachResult fwd = reach_forward(nl, seed_a, transfer_combinational());
  EXPECT_TRUE(fwd.reached(a));
  EXPECT_TRUE(fwd.reached(n1));
  EXPECT_TRUE(fwd.reached(n2));
  EXPECT_FALSE(fwd.reached(q)) << "flop must stop combinational transfer";

  const std::vector<NetId> path = fwd.trace(n2);
  ASSERT_EQ(path.size(), 3u); // n2 <- n1 <- a
  EXPECT_EQ(path.front(), n2);
  EXPECT_EQ(path.back(), a);

  const std::vector<NetId> seed_n2{n2};
  const ReachResult bwd =
      reach_backward(nl, seed_n2, transfer_combinational());
  EXPECT_TRUE(bwd.reached(a));
  EXPECT_FALSE(bwd.reached(q));

  // transfer_all crosses the flop as well.
  const ReachResult all = reach_forward(nl, seed_a, transfer_all());
  EXPECT_TRUE(all.reached(q));
}

TEST(LintDataflow, ReachTerminatesOnCycles) {
  Netlist nl("loop", lib());
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_net("n1");
  const NetId n2 =
      nl.add_cell_auto(lib().pick(CellKind::Nand2), {a, n1});
  nl.add_cell("u_loop", lib().pick(CellKind::Inv), {n2}, n1);
  nl.add_output("out", n2);
  const std::vector<NetId> seed{a};
  const ReachResult r = reach_forward(nl, seed, transfer_combinational());
  EXPECT_TRUE(r.reached(n1));
  EXPECT_TRUE(r.reached(n2));
}

} // namespace
} // namespace scpg::lint
