// Traditional (idle-mode) power gating baseline + UPF export.
#include <gtest/gtest.h>

#include "gen/arith.hpp"
#include "gen/mult16.hpp"
#include "netlist/builder.hpp"
#include "scpg/traditional.hpp"
#include "scpg/transform.hpp"
#include "scpg/upf.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

SimConfig cfg06() {
  SimConfig c;
  c.corner = {0.6_V, 25.0};
  return c;
}

/// A 4-bit counter with an output port — the classic idle-mode test
/// vehicle (state must survive a sleep).
Netlist make_counter() {
  Netlist nl("cnt", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  Bus q(4);
  for (int i = 0; i < 4; ++i)
    q[std::size_t(i)] = nl.add_net("q" + std::to_string(i));
  const Bus next = gen::increment(b, q);
  for (int i = 0; i < 4; ++i)
    nl.add_cell("cff" + std::to_string(i), lib().pick(CellKind::Dff, 1),
                {next[std::size_t(i)], clk}, q[std::size_t(i)]);
  b.output_bus("count", q);
  nl.check();
  return nl;
}

TEST(TraditionalPg, StructureGatesEverything) {
  Netlist nl = make_counter();
  const std::size_t flops = nl.flops().size();
  const TraditionalPgInfo info = apply_traditional_pg(nl);
  EXPECT_EQ(info.retention_cells, flops);
  EXPECT_GT(info.cells_gated, flops); // flops AND comb gated
  EXPECT_EQ(info.headers.size(), 4u);
  EXPECT_GT(info.isolation_cells, 0u); // the count output ports
  for (CellId ff : nl.flops())
    EXPECT_EQ(nl.cell(ff).domain, Domain::Gated);
  EXPECT_NO_THROW(nl.check());
}

TEST(TraditionalPg, AreaOverheadExceedsScpg) {
  // Retention balloons + per-register overhead make traditional PG
  // costlier in area than SCPG on the same design — one of the paper's
  // simplification arguments.
  Netlist t = gen::make_multiplier(lib(), 8);
  const TraditionalPgInfo ti = apply_traditional_pg(t);
  Netlist s = gen::make_multiplier(lib(), 8);
  const ScpgInfo si = apply_scpg(s);
  EXPECT_GT(ti.area_overhead(), si.area_overhead());
}

// Drives the clock manually so it can be stopped during sleep, exactly
// like a system with a gated clock.
struct ManualClock {
  Simulator& sim;
  NetId clk;
  SimTime period;
  SimTime t{0};

  ManualClock(Simulator& s, NetId c, SimTime p) : sim(s), clk(c), period(p) {
    sim.drive_at(0, clk, Logic::L0); // a defined idle level; the first
                                     // rise must be a real 0->1 edge
  }

  void cycles(int n) {
    for (int i = 0; i < n; ++i) {
      sim.drive_at(t + period / 2, clk, Logic::L1);
      sim.drive_at(t + period, clk, Logic::L0);
      t += period;
    }
    sim.run_until(t);
  }
  void idle(int n_periods) {
    t += period * n_periods;
    sim.run_until(t);
  }
};

TEST(TraditionalPg, StateSurvivesSleep) {
  Netlist nl = make_counter();
  apply_traditional_pg(nl);
  Simulator sim(nl, cfg06());
  sim.init_flops_to_zero();
  const NetId sleep = nl.port_net("sleep_req");
  sim.drive_at(0, sleep, Logic::L0);
  ManualClock mc{sim, nl.port_net("clk"), to_fs(1.0_us)};

  mc.cycles(5);
  EXPECT_EQ(sim.read_bus("count", 4), 5u);

  // Sleep: clock stopped, domain powered down long enough to collapse.
  sim.drive_at(sim.now(), sleep, Logic::L1);
  mc.idle(50);
  EXPECT_LT(sim.rail_voltage().v, 0.3 * 0.6); // rail well collapsed
  // Outputs are clamped, not X.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(sim.output("count[" + std::to_string(i) + "]"), Logic::L0);

  // Wake: power up, wait for restore, resume clocking.
  sim.drive_at(sim.now(), sleep, Logic::L0);
  mc.idle(1);
  mc.cycles(3);
  EXPECT_EQ(sim.read_bus("count", 4), 8u); // 5 retained + 3 more
}

TEST(TraditionalPg, SleepSavesLeakage) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  apply_traditional_pg(nl);
  Simulator sim(nl, cfg06());
  sim.init_flops_to_zero();
  const NetId sleep = nl.port_net("sleep_req");
  const NetId clk = nl.port_net("clk");
  sim.drive_at(0, sleep, Logic::L0);
  sim.drive_at(0, clk, Logic::L0);
  sim.drive_bus_at(0, "a", 0x3C, 8);
  sim.drive_bus_at(0, "b", 0x55, 8);
  sim.run_until(to_fs(5.0_us));
  sim.reset_tally();
  sim.run_until(to_fs(105.0_us));
  const Power awake = sim.tally().average();

  sim.drive_at(sim.now(), sleep, Logic::L1);
  sim.run_until(sim.now() + to_fs(20.0_us)); // let the rail collapse
  sim.reset_tally();
  sim.run_until(sim.now() + to_fs(100.0_us));
  const Power asleep = sim.tally().average();

  // The paper quotes up to 25x idle leakage reduction for traditional PG
  // (ARM926); our whole-design gating should achieve a large factor too.
  EXPECT_LT(asleep.v, awake.v / 5.0);
  EXPECT_GT(asleep.v, 0.0);
}

TEST(TraditionalPg, RejectsDoubleTransforms) {
  Netlist nl = make_counter();
  apply_traditional_pg(nl);
  EXPECT_THROW((void)apply_traditional_pg(nl), PreconditionError);
  Netlist nl2 = make_counter();
  apply_scpg(nl2, {.clock_port = "clk"});
  EXPECT_THROW((void)apply_traditional_pg(nl2), PreconditionError);
}

// ---------------------------------------------------------------------------
// UPF export
// ---------------------------------------------------------------------------

TEST(Upf, EmitsDomainsSwitchAndIsolation) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  const ScpgInfo info = apply_scpg(nl);
  const std::string upf = write_upf_string(nl, info);
  for (const char* needle :
       {"create_power_domain PD_TOP", "create_power_domain PD_COMB",
        "create_supply_net VVDD", "create_power_switch SW_COMB",
        "-control_port       {sleep scpg_slp}", "set_isolation ISO_COMB",
        "-isolation_signal scpg_niso", "map_power_switch"})
    EXPECT_NE(upf.find(needle), std::string::npos) << needle;
  // The key SCPG property: no retention strategy.
  EXPECT_EQ(upf.find("set_retention "), std::string::npos);
  EXPECT_NE(upf.find("no set_retention"), std::string::npos);
}

TEST(Upf, RequiresTransformedNetlist) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  ScpgInfo empty;
  EXPECT_THROW((void)write_upf_string(nl, empty), PreconditionError);
}

TEST(Upf, HeaderCellNameMatchesOptions) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  ScpgOptions opt;
  opt.header_drive = 4;
  const ScpgInfo info = apply_scpg(nl, opt);
  const std::string upf = write_upf_string(nl, info);
  EXPECT_NE(upf.find("HDR_X4"), std::string::npos);
}

} // namespace
} // namespace scpg
