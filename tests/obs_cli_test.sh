#!/usr/bin/env bash
# Pins the scpgc observability contract: the versioned JSON envelope on
# every subcommand's --json output, --trace/--metrics dump validity
# (checked structurally by trace_check), byte-identical metric values
# across --jobs 1 and --jobs 8, and the shared argument parser's usage
# behaviour (exit 2 on unknown options, --help on every command).
# Usage: obs_cli_test.sh <scpgc-binary> <examples/netlists-dir> <trace_check>
set -u

scpgc=$1
dir=$2
trace_check=$3

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

fail() { echo "obs_cli_test FAIL: $*" >&2; exit 1; }

expect_rc() { # want-rc command...
  local want=$1
  shift
  "$@" >/dev/null 2>&1
  local rc=$?
  [ "$rc" -eq "$want" ] || fail "expected exit $want, got $rc: $*"
}

envelope() { # tool-name output
  grep -q '"schema_version": 1' <<<"$2" || fail "$1: schema_version"
  grep -q "\"tool\": \"$1\"" <<<"$2" || fail "$1: tool field"
  grep -q '"payload": ' <<<"$2" || fail "$1: payload field"
}

# --- envelope on every subcommand's --json output --------------------------
out=$("$scpgc" sweep --in "$dir/mult8_scpg.v" --points 2 --cycles 2 --json) \
  || fail "sweep --json rc"
envelope scpgc-sweep "$out"
grep -q '"rows": \[' <<<"$out" || fail "sweep: rows array"

out=$("$scpgc" verify --in "$dir/mult8_scpg.v" --cycles 4 --json) \
  || fail "verify --json rc"
envelope scpgc-verify "$out"
grep -q '"hazards": ' <<<"$out" || fail "verify: hazards key"

out=$("$scpgc" lint --in "$dir/mult8_scpg.v" --json) || fail "lint --json rc"
envelope scpgc-lint "$out"

out=$("$scpgc" fuzz --runs 3 --seed 1 --json)
rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 1 ] || fail "fuzz --json rc $rc"
envelope scpgc-fuzz "$out"
grep -q '"coverage_distinct"' <<<"$out" || fail "fuzz: coverage key"

# --- trace + metrics dumps validated by trace_check ------------------------
trace="$tmpdir/t.json" metrics="$tmpdir/m.json"
"$scpgc" sweep --in "$dir/mult8_scpg.v" --points 3 --cycles 2 --jobs 4 \
  --trace "$trace" --metrics "$metrics" >/dev/null \
  || fail "traced sweep rc"
[ -s "$trace" ] || fail "trace file empty"
[ -s "$metrics" ] || fail "metrics file empty"
"$trace_check" --expect-tool scpgc-sweep --min-threads 2 "$trace" \
  || fail "trace_check on trace"
"$trace_check" --metrics --expect-tool scpgc-sweep "$metrics" \
  || fail "trace_check on metrics"

# Dumps also land when the command exits 1 (findings are not a crash).
"$scpgc" lint --in "$dir/broken/mult8_badpol.v" --metrics "$tmpdir/lint.json" \
  >/dev/null 2>&1
[ $? -eq 1 ] || fail "lint findings rc with --metrics"
"$trace_check" --metrics --expect-tool scpgc-lint "$tmpdir/lint.json" \
  || fail "trace_check on lint metrics"

# --- jobs-invariance: the values section must be byte-identical ------------
values_of() { sed -n '/"values"/,/"timings"/p' "$1" | sed '$d'; }
"$scpgc" sweep --in "$dir/mult8_scpg.v" --points 3 --cycles 2 --jobs 1 \
  --metrics "$tmpdir/m1.json" >/dev/null || fail "jobs 1 sweep"
"$scpgc" sweep --in "$dir/mult8_scpg.v" --points 3 --cycles 2 --jobs 8 \
  --metrics "$tmpdir/m8.json" >/dev/null || fail "jobs 8 sweep"
diff <(values_of "$tmpdir/m1.json") <(values_of "$tmpdir/m8.json") \
  || fail "metric values differ between --jobs 1 and --jobs 8"
grep -q '"sim.events"' "$tmpdir/m1.json" || fail "sim.events metric missing"

# --- shared parser: uniform usage handling ---------------------------------
for cmd in liberty report transform sweep verify lint fuzz; do
  expect_rc 2 "$scpgc" "$cmd" --definitely-not-an-option
  "$scpgc" "$cmd" --help | grep -q "usage: scpgc $cmd" \
    || fail "$cmd --help usage line"
  expect_rc 0 "$scpgc" "$cmd" --help
done
expect_rc 2 "$scpgc"
expect_rc 2 "$scpgc" not-a-command
"$scpgc" --help | grep -q "usage: scpgc" || fail "global --help"
expect_rc 0 "$scpgc" --help

# Options that need a value reject a missing one uniformly.
expect_rc 2 "$scpgc" sweep --in
expect_rc 2 "$scpgc" sweep --in "$dir/mult8_scpg.v" --jobs

echo "obs_cli_test: OK"
