#include <gtest/gtest.h>

#include <set>

#include "gen/mult16.hpp"
#include "place/placement.hpp"
#include "scpg/transform.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

Netlist gated_mult(int width = 8) {
  Netlist nl = gen::make_multiplier(lib(), width);
  apply_scpg(nl);
  return nl;
}

TEST(Place, LegalAndInsideCore) {
  Netlist nl = gated_mult();
  const Placement p = place(nl);
  ASSERT_EQ(p.pos.size(), nl.num_cells());
  std::set<std::pair<long, long>> seen;
  for (const Point& pt : p.pos) {
    EXPECT_GE(pt.x, 0.0);
    EXPECT_GE(pt.y, 0.0);
    EXPECT_LE(pt.x, p.width_um);
    EXPECT_LE(pt.y, p.height_um);
    // One cell per site.
    const auto key = std::make_pair(std::lround(pt.x * 10),
                                    std::lround(pt.y * 10));
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST(Place, OptimiserReducesWireLength) {
  Netlist nl = gated_mult();
  const Placement p = place(nl);
  EXPECT_LT(p.hpwl_um, p.initial_hpwl_um * 0.8);
  EXPECT_NEAR(p.hpwl_um, total_hpwl_um(nl, p), p.hpwl_um * 1e-9);
}

TEST(Place, DeterministicForSeed) {
  Netlist nl = gated_mult(4);
  PlaceOptions opt;
  opt.seed = 42;
  const Placement a = place(nl, opt);
  const Placement b = place(nl, opt);
  ASSERT_EQ(a.pos.size(), b.pos.size());
  for (std::size_t i = 0; i < a.pos.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.pos[i].x, b.pos[i].x);
    EXPECT_DOUBLE_EQ(a.pos[i].y, b.pos[i].y);
  }
}

TEST(Place, CenterGatedClustersTheDomain) {
  Netlist nl = gated_mult();
  PlaceOptions center;
  center.strategy = DomainStrategy::CenterGated;
  const Placement p = place(nl, center);

  // Centroid of the gated cells lands near the core centre, and their
  // maximal distance from it is smaller than the always-on cells' span.
  double cx = 0, cy = 0, n = 0;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (nl.cell(CellId{ci}).domain == Domain::Gated) {
      cx += p.pos[ci].x;
      cy += p.pos[ci].y;
      ++n;
    }
  cx /= n;
  cy /= n;
  EXPECT_NEAR(cx, p.width_um / 2, p.width_um * 0.12);
  EXPECT_NEAR(cy, p.height_um / 2, p.height_um * 0.12);

  double gated_r = 0, aon_r = 0;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const double r = std::max(std::abs(p.pos[ci].x - p.width_um / 2),
                              std::abs(p.pos[ci].y - p.height_um / 2));
    if (nl.cell(CellId{ci}).domain == Domain::Gated)
      gated_r = std::max(gated_r, r);
    else
      aon_r = std::max(aon_r, r);
  }
  EXPECT_LT(gated_r, aon_r);
}

TEST(Place, CenterPlacementKeepsDomainCompact) {
  // The paper's Design Planning recommendation, quantified: clustering
  // the gated domain shrinks the area the virtual-rail network and the
  // header bank must span (an oblivious placement smears the domain
  // across the whole die), at a small total-wirelength cost.
  Netlist nl = gated_mult(16);
  PlaceOptions mixed;
  mixed.passes = 12;
  PlaceOptions center = mixed;
  center.strategy = DomainStrategy::CenterGated;
  const Placement pm = place(nl, mixed);
  const Placement pc = place(nl, center);
  const double core = pm.width_um * pm.height_um;
  const double frac_mixed = gated_bbox_area_um2(nl, pm) / core;
  const double frac_center = gated_bbox_area_um2(nl, pc) / core;
  EXPECT_LT(frac_center, frac_mixed);
  EXPECT_GT(frac_mixed, 0.9); // oblivious placement smears the domain
  // The wirelength penalty of the constraint stays moderate.
  EXPECT_LT(pc.hpwl_um, pm.hpwl_um * 1.4);
  // Crossing-net wiring exists either way; report-only (the paper's
  // congestion claim is about the rail/boundary, not crossing length).
  EXPECT_GT(crossing_hpwl_um(nl, pc), 0.0);
}

TEST(Place, WireCapsFeedTiming) {
  Netlist nl = gated_mult();
  const StaReport before = run_sta(nl, {0.6_V, 25.0});
  const Placement p = place(nl);
  apply_wire_caps(nl, p);
  const StaReport after = run_sta(nl, {0.6_V, 25.0});
  // Real routing caps differ from the statistical model; timing must
  // react (and stay sane).
  EXPECT_NE(before.t_eval.v, after.t_eval.v);
  EXPECT_GT(after.t_eval.v, 0.0);
  EXPECT_LT(after.t_eval.v, before.t_eval.v * 5.0);
  // Reverting the overrides restores the statistical model.
  nl.clear_net_wire_caps();
  const StaReport reverted = run_sta(nl, {0.6_V, 25.0});
  EXPECT_DOUBLE_EQ(reverted.t_eval.v, before.t_eval.v);
}

TEST(Place, NetHpwlPositiveForRealNets) {
  Netlist nl = gated_mult(4);
  const Placement p = place(nl);
  int positive = 0;
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni)
    if (net_hpwl_um(nl, p, NetId{ni}) > 0) ++positive;
  EXPECT_GT(positive, int(nl.num_nets() / 2));
}

TEST(Place, OptionValidation) {
  Netlist nl = gated_mult(4);
  PlaceOptions bad;
  bad.utilization = 1.5;
  EXPECT_THROW((void)place(nl, bad), PreconditionError);
  bad.utilization = 0.7;
  bad.site_um = -1;
  EXPECT_THROW((void)place(nl, bad), PreconditionError);
}

} // namespace
} // namespace scpg
