// Corner cases across modules: process/temperature corners, the override
// burst mode (paper §IV's MSP430-style slow/fast trade-off), ISS edge
// semantics, and workload activity contrast.
#include <gtest/gtest.h>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "cpu/iss.hpp"
#include "cpu/workloads.hpp"
#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "netlist/funcsim.hpp"
#include "power/power.hpp"
#include "scpg/transform.hpp"
#include "util/rng.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

// ---------------------------------------------------------------------------
// Technology corners
// ---------------------------------------------------------------------------

TEST(Corners, VtShiftScalesLeakageExponentially) {
  const TechParams nom = lib().tech().params();
  TechParams fast = nom;
  fast.vt = Voltage{nom.vt.v - nom.n_vt.v}; // one thermal slope lower
  const Library fast_lib = Library::scpg90(fast);
  const Corner c{0.6_V, 25.0};
  const double ratio = fast_lib.tech().leak_scale(c) /
                       lib().tech().leak_scale(c);
  EXPECT_NEAR(ratio, std::exp(1.0), 0.01);
}

TEST(Corners, VtShiftMovesDelayOppositeToLeakage) {
  const TechParams nom = lib().tech().params();
  TechParams slow = nom;
  slow.vt = Voltage{nom.vt.v + 0.02};
  const Library slow_lib = Library::scpg90(slow);
  const Corner c{0.6_V, 25.0};
  EXPECT_GT(slow_lib.tech().delay_scale(c), lib().tech().delay_scale(c));
  EXPECT_LT(slow_lib.tech().leak_scale(c), lib().tech().leak_scale(c));
}

TEST(Corners, HotSiliconLeaksMoreAndScpgSavesMore) {
  // Leakage doubles ~ every 11 C; at 85 C the SCPG saving percentage
  // grows because leakage dominates even harder.
  Netlist original = gen::make_multiplier(lib(), 8);
  Netlist gated = gen::make_multiplier(lib(), 8);
  apply_scpg(gated);
  Rng rng(1);
  auto measure = [&](const Netlist& nl, double temp) {
    SimConfig cfg;
    cfg.corner = {0.6_V, temp};
    engine::SweepSpec spec;
    spec.design(nl).frequency(10.0_kHz).base_sim(cfg).cycles(8).jobs(1)
        .use_cache(false);
    spec.stimulus([&rng](Simulator& s, int, Rng&) {
      s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(8), 8);
      s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(8), 8);
    });
    return engine::Experiment(std::move(spec)).run()[0].avg_power;
  };
  const double p25 = measure(original, 25.0).v;
  const double p85 = measure(original, 85.0).v;
  EXPECT_GT(p85, p25 * 20.0); // ~2^(60/11) = 44x, allow margin
  // All leakage scales uniformly with temperature, so the FRACTIONAL
  // saving stays put while the ABSOLUTE saving scales with the floor.
  const double save25 = 1.0 - measure(gated, 25.0).v / p25;
  const double save85 = 1.0 - measure(gated, 85.0).v / p85;
  EXPECT_NEAR(save85, save25, 0.08);
  const double abs25 = p25 * save25;
  const double abs85 = p85 * save85;
  EXPECT_GT(abs85, abs25 * 15.0);
}

TEST(Corners, StaticLeakageHeaderFlag) {
  Netlist gated = gen::make_multiplier(lib(), 8);
  apply_scpg(gated);
  const Corner c{0.6_V, 25.0};
  const Power without = static_leakage(gated, c, false);
  const Power with_off = static_leakage(gated, c, true);
  EXPECT_GT(with_off.v, without.v); // OFF-header leakage adds
}

// ---------------------------------------------------------------------------
// Override burst mode (paper §IV: kHz background / MHz burst)
// ---------------------------------------------------------------------------

TEST(Corners, OverrideTogglesGatingMidRun) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  apply_scpg(nl);
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  Simulator sim(nl, cfg);
  sim.init_flops_to_zero();
  const NetId ovr = nl.port_net("override_n");
  const Frequency f = 100.0_kHz;
  const SimTime T = to_fs(period(f));
  sim.add_clock(nl.port_net("clk"), f, 0.5, T / 2);
  sim.drive_at(0, ovr, Logic::L1); // gating active
  sim.drive_bus_at(0, "a", 11, 8);
  sim.drive_bus_at(0, "b", 13, 8);

  // Phase 1: gated.
  sim.run_until(T * 4);
  sim.reset_tally();
  sim.run_until(T * 12);
  const double p_gated = sim.tally().average().v;
  EXPECT_EQ(sim.read_bus("p", 16), 143u);

  // Phase 2: override low -> headers forced on, full speed available.
  sim.drive_at(sim.now(), ovr, Logic::L0);
  sim.run_until(sim.now() + T * 2);
  sim.reset_tally();
  sim.run_until(sim.now() + T * 8);
  const double p_burst = sim.tally().average().v;
  EXPECT_EQ(sim.read_bus("p", 16), 143u); // still correct
  EXPECT_GT(p_burst, p_gated * 1.1);      // paying full leakage again
  EXPECT_NEAR(sim.rail_voltage().v, 0.6, 1e-6); // rail held up

  // Phase 3: back to gating; savings resume.
  sim.drive_at(sim.now(), ovr, Logic::L1);
  sim.run_until(sim.now() + T * 2);
  sim.reset_tally();
  sim.run_until(sim.now() + T * 8);
  EXPECT_LT(sim.tally().average().v, p_burst);
  EXPECT_EQ(sim.read_bus("p", 16), 143u);
}

// ---------------------------------------------------------------------------
// ISS edge semantics
// ---------------------------------------------------------------------------

TEST(Corners, IssFetchBeyondImageIsNop) {
  using namespace cpu;
  // A program with no HALT falls off the end into implicit NOPs.
  Iss iss(assemble("movi r1, 7\n"));
  for (int i = 0; i < 10; ++i) iss.step();
  EXPECT_FALSE(iss.halted());
  EXPECT_EQ(iss.reg(1), 7u);
  EXPECT_EQ(iss.pc(), 10u); // started at 0, ten steps
}

TEST(Corners, IssMemoryAddressWraps) {
  using namespace cpu;
  Iss iss(assemble("halt\n"));
  iss.set_mem(5, 42);
  // Addresses beyond kAddrBits wrap onto the same word.
  EXPECT_EQ(iss.mem(5 + (1u << kAddrBits)), 42u);
}

TEST(Corners, IssJrUsesLow16Bits) {
  using namespace cpu;
  Iss iss(assemble(R"(
        movi r1, 3
        jr   r1
        halt
trap:   halt
)"));
  iss.set_reg(1, 0x10003); // upper bits must be ignored
  iss.step();              // movi overwrites, so set after
  iss.set_reg(1, 0x10003);
  iss.step(); // jr
  EXPECT_EQ(iss.pc(), 3u);
}

TEST(Corners, IssShiftBeyond31Masked) {
  using namespace cpu;
  Iss iss(assemble(R"(
        movi r1, 1
        movi r2, 33
        lsl  r3, r1, r2
        halt
)"));
  iss.run(10);
  // Shift amount masked to 5 bits: 33 & 31 = 1.
  EXPECT_EQ(iss.reg(3), 2u);
}

// ---------------------------------------------------------------------------
// Workload activity contrast (the basis of the Fig 7 methodology)
// ---------------------------------------------------------------------------

TEST(Corners, ArithBurstBusierThanIdleSpin) {
  using namespace cpu;
  auto activity = [&](const std::string& src) {
    Scm0 core = make_scm0(lib(), assemble(src));
    FuncSim fs(core.netlist);
    fs.reset();
    fs.set_input("clk", Logic::L0);
    fs.set_input("rst_n", Logic::L1);
    fs.eval();
    std::uint64_t toggles = 0;
    int cycles = 0;
    while (fs.output("halted") != Logic::L1 && cycles < 600) {
      fs.clock();
      toggles += fs.toggles_last_cycle();
      ++cycles;
    }
    return double(toggles) / double(cycles);
  };
  const double busy = activity(workloads::arith_burst(60));
  const double idle = activity(workloads::idle_spin(60));
  EXPECT_GT(busy, idle * 1.5);
}

} // namespace
} // namespace scpg
