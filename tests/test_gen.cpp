#include <gtest/gtest.h>

#include "gen/arith.hpp"
#include "gen/components.hpp"
#include "gen/mult16.hpp"
#include "netlist/builder.hpp"
#include "netlist/funcsim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace scpg::gen {
namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

// ---------------------------------------------------------------------------
// Adders (property tests over widths)
// ---------------------------------------------------------------------------

class AdderWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidthTest, RippleMatchesIntegerArithmetic) {
  const int w = GetParam();
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", w);
  const Bus y = b.input_bus("y", w);
  const NetId cin = b.input("cin");
  const AddResult r = ripple_add(b, x, y, cin);
  b.output_bus("s", r.sum);
  b.output("c", r.carry);
  nl.check();
  FuncSim sim(nl);
  Rng rng(static_cast<std::uint64_t>(w) * 7919);
  const std::uint64_t mask = w == 64 ? ~0ULL : (1ULL << w) - 1;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.bits(w), c = rng.bits(w);
    const int ci = rng.chance(0.5) ? 1 : 0;
    sim.set_input_bus("x", a, w);
    sim.set_input_bus("y", c, w);
    sim.set_input("cin", from_bool(ci));
    sim.eval();
    const unsigned __int128 full =
        (unsigned __int128)a + c + (unsigned)ci;
    EXPECT_EQ(sim.read_bus("s", w), std::uint64_t(full) & mask);
    EXPECT_EQ(sim.output("c"), from_bool((full >> w) & 1));
  }
}

TEST_P(AdderWidthTest, CarrySelectEquivalentToRipple) {
  const int w = GetParam();
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", w);
  const Bus y = b.input_bus("y", w);
  const AddResult rr = ripple_add(b, x, y);
  const AddResult cs = carry_select_add(b, x, y, NetId{}, 4);
  b.output_bus("rs", rr.sum);
  b.output("rc", rr.carry);
  b.output_bus("cs", cs.sum);
  b.output("cc", cs.carry);
  nl.check();
  FuncSim sim(nl);
  Rng rng(static_cast<std::uint64_t>(w) * 104729);
  for (int i = 0; i < 100; ++i) {
    sim.set_input_bus("x", rng.bits(w), w);
    sim.set_input_bus("y", rng.bits(w), w);
    sim.eval();
    EXPECT_EQ(sim.read_bus("rs", w), sim.read_bus("cs", w));
    EXPECT_EQ(sim.output("rc"), sim.output("cc"));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidthTest,
                         ::testing::Values(3, 4, 8, 13, 16, 32));

TEST(Arith, SubtractIsTwosComplement) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", 8);
  const Bus y = b.input_bus("y", 8);
  const AddResult d = subtract(b, x, y);
  b.output_bus("d", d.sum);
  b.output("nb", d.carry); // not-borrow
  nl.check();
  FuncSim sim(nl);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.bits(8), c = rng.bits(8);
    sim.set_input_bus("x", a, 8);
    sim.set_input_bus("y", c, 8);
    sim.eval();
    EXPECT_EQ(sim.read_bus("d", 8), (a - c) & 0xFF);
    EXPECT_EQ(sim.output("nb"), from_bool(a >= c));
  }
}

TEST(Arith, IncrementWrapsAround) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", 6);
  b.output_bus("y", increment(b, x));
  nl.check();
  FuncSim sim(nl);
  for (std::uint64_t v : {0ULL, 1ULL, 31ULL, 62ULL, 63ULL}) {
    sim.set_input_bus("x", v, 6);
    sim.eval();
    EXPECT_EQ(sim.read_bus("y", 6), (v + 1) & 63);
  }
}

TEST(Arith, CompareExhaustive4Bit) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", 4);
  const Bus y = b.input_bus("y", 4);
  const CompareResult c = compare(b, x, y);
  b.output("eq", c.eq);
  b.output("lt", c.lt);
  nl.check();
  FuncSim sim(nl);
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t d = 0; d < 16; ++d) {
      sim.set_input_bus("x", a, 4);
      sim.set_input_bus("y", d, 4);
      sim.eval();
      EXPECT_EQ(sim.output("eq"), from_bool(a == d)) << a << " " << d;
      EXPECT_EQ(sim.output("lt"), from_bool(a < d)) << a << " " << d;
    }
}

TEST(Arith, WidthMismatchRejected) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", 4);
  const Bus y = b.input_bus("y", 5);
  EXPECT_THROW((void)ripple_add(b, x, y), PreconditionError);
  EXPECT_THROW((void)carry_select_add(b, x, y), PreconditionError);
}

// ---------------------------------------------------------------------------
// Components
// ---------------------------------------------------------------------------

TEST(Components, DecoderIsOneHot) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus sel = b.input_bus("s", 3);
  b.output_bus("d", decoder(b, sel));
  nl.check();
  FuncSim sim(nl);
  for (std::uint64_t v = 0; v < 8; ++v) {
    sim.set_input_bus("s", v, 3);
    sim.eval();
    EXPECT_EQ(sim.read_bus("d", 8), 1ULL << v);
  }
}

TEST(Components, MuxTreeSelectsChoice) {
  Netlist nl("t", lib());
  Builder b(nl);
  std::vector<Bus> choices;
  for (int i = 0; i < 4; ++i)
    choices.push_back(b.input_bus("c" + std::to_string(i), 4));
  const Bus sel = b.input_bus("s", 2);
  b.output_bus("y", mux_tree(b, choices, sel));
  nl.check();
  FuncSim sim(nl);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t vals[4];
    for (int k = 0; k < 4; ++k) {
      vals[k] = rng.bits(4);
      sim.set_input_bus("c" + std::to_string(k), vals[k], 4);
    }
    const std::uint64_t s = rng.bits(2);
    sim.set_input_bus("s", s, 2);
    sim.eval();
    EXPECT_EQ(sim.read_bus("y", 4), vals[s]);
  }
}

TEST(Components, MuxTreeRejectsNonPowerOfTwo) {
  Netlist nl("t", lib());
  Builder b(nl);
  std::vector<Bus> choices(3, b.input_bus("c", 2));
  const Bus sel = b.input_bus("s", 2);
  EXPECT_THROW((void)mux_tree(b, choices, sel), PreconditionError);
}

class ShiftTest : public ::testing::TestWithParam<int> {};

TEST_P(ShiftTest, VariableShiftsMatchCpp) {
  const int w = GetParam();
  const int sbits = 5;
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", w);
  const Bus amt = b.input_bus("n", sbits);
  b.output_bus("l", shift_left(b, x, amt));
  b.output_bus("r", shift_right(b, x, amt));
  nl.check();
  FuncSim sim(nl);
  Rng rng(static_cast<std::uint64_t>(w));
  const std::uint64_t mask = (w == 64) ? ~0ULL : (1ULL << w) - 1;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = rng.bits(w);
    const std::uint64_t n = rng.bits(sbits);
    sim.set_input_bus("x", v, w);
    sim.set_input_bus("n", n, sbits);
    sim.eval();
    const std::uint64_t el = n >= std::uint64_t(w) ? 0 : (v << n) & mask;
    const std::uint64_t er = n >= std::uint64_t(w) ? 0 : v >> n;
    EXPECT_EQ(sim.read_bus("l", w), el) << v << "<<" << n;
    EXPECT_EQ(sim.read_bus("r", w), er) << v << ">>" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ShiftTest, ::testing::Values(8, 16, 32));

TEST(Components, RegisterFileWriteReadPorts) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const Bus waddr = b.input_bus("wa", 2);
  const Bus wdata = b.input_bus("wd", 8);
  const NetId wen = b.input("we");
  const Bus ra = b.input_bus("ra", 2);
  const Bus rb = b.input_bus("rb", 2);
  const RegisterFile rf =
      register_file(b, 4, 8, clk, waddr, wdata, wen, ra, rb);
  b.output_bus("qa", rf.rd_a);
  b.output_bus("qb", rf.rd_b);
  nl.check();
  FuncSim sim(nl);
  sim.reset();
  sim.set_input("clk", Logic::L0);

  // Write distinct values into all four registers.
  std::uint64_t vals[4] = {0x11, 0x22, 0x33, 0x44};
  sim.set_input("we", Logic::L1);
  for (std::uint64_t r = 0; r < 4; ++r) {
    sim.set_input_bus("wa", r, 2);
    sim.set_input_bus("wd", vals[r], 8);
    sim.clock();
  }
  sim.set_input("we", Logic::L0);
  // Read through both ports simultaneously.
  for (std::uint64_t a = 0; a < 4; ++a)
    for (std::uint64_t c = 0; c < 4; ++c) {
      sim.set_input_bus("ra", a, 2);
      sim.set_input_bus("rb", c, 2);
      sim.eval();
      EXPECT_EQ(sim.read_bus("qa", 8), vals[a]);
      EXPECT_EQ(sim.read_bus("qb", 8), vals[c]);
    }
  // Write-disable really holds the value.
  sim.set_input_bus("wa", 1, 2);
  sim.set_input_bus("wd", 0xFF, 8);
  sim.clock();
  sim.set_input_bus("ra", 1, 2);
  sim.eval();
  EXPECT_EQ(sim.read_bus("qa", 8), 0x22u);
}

TEST(Components, RegisterFileRejectsBadShapes) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const Bus waddr = b.input_bus("wa", 2);
  const Bus wdata = b.input_bus("wd", 8);
  const NetId wen = b.input("we");
  const Bus ra = b.input_bus("ra", 2);
  EXPECT_THROW((void)register_file(b, 3, 8, clk, waddr, wdata, wen, ra, ra),
               PreconditionError); // not a power of two
  EXPECT_THROW((void)register_file(b, 8, 8, clk, waddr, wdata, wen, ra, ra),
               PreconditionError); // waddr too narrow
}

// ---------------------------------------------------------------------------
// Multiplier array
// ---------------------------------------------------------------------------

class MultWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(MultWidthTest, ArrayMatchesIntegerMultiply) {
  const int w = GetParam();
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", w);
  const Bus y = b.input_bus("y", w);
  b.output_bus("p", multiplier_array(b, x, y));
  nl.check();
  FuncSim sim(nl);
  Rng rng(static_cast<std::uint64_t>(w) * 31);
  // Exhaustive for small widths, random for larger.
  if (w <= 5) {
    for (std::uint64_t a = 0; a < (1u << w); ++a)
      for (std::uint64_t c = 0; c < (1u << w); ++c) {
        sim.set_input_bus("x", a, w);
        sim.set_input_bus("y", c, w);
        sim.eval();
        ASSERT_EQ(sim.read_bus("p", 2 * w), a * c) << a << "*" << c;
      }
  } else {
    for (int i = 0; i < 150; ++i) {
      const std::uint64_t a = rng.bits(w), c = rng.bits(w);
      sim.set_input_bus("x", a, w);
      sim.set_input_bus("y", c, w);
      sim.eval();
      ASSERT_EQ(sim.read_bus("p", 2 * w), a * c) << a << "*" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultWidthTest,
                         ::testing::Values(2, 3, 4, 5, 8, 16));

TEST(Multiplier, CornerOperands) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", 16);
  const Bus y = b.input_bus("y", 16);
  b.output_bus("p", multiplier_array(b, x, y));
  nl.check();
  FuncSim sim(nl);
  const std::uint64_t cases[][2] = {
      {0, 0},      {0, 0xFFFF}, {0xFFFF, 0},     {1, 0xFFFF},
      {0xFFFF, 1}, {0x8000, 2}, {0xFFFF, 0xFFFF}, {0xAAAA, 0x5555},
  };
  for (const auto& c : cases) {
    sim.set_input_bus("x", c[0], 16);
    sim.set_input_bus("y", c[1], 16);
    sim.eval();
    EXPECT_EQ(sim.read_bus("p", 32), c[0] * c[1]);
  }
}

TEST(Multiplier, RegisteredTopHasPaperScale) {
  Netlist nl = make_multiplier(lib(), 16);
  EXPECT_EQ(nl.flops().size(), 64u); // 2x16 input + 32 product registers
  EXPECT_GT(nl.num_cells(), 1200u);
  EXPECT_LT(nl.num_cells(), 2000u);
  EXPECT_TRUE(nl.find_port("clk").valid());
}

TEST(Multiplier, RejectsBadWidths) {
  EXPECT_THROW((void)make_multiplier(lib(), 1), PreconditionError);
  EXPECT_THROW((void)make_multiplier(lib(), 33), PreconditionError);
}

} // namespace
} // namespace scpg::gen
