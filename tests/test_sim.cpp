#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gen/arith.hpp"
#include "netlist/builder.hpp"
#include "power/power.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

SimConfig cfg06() {
  SimConfig c;
  c.corner = {0.6_V, 25.0};
  return c;
}

TEST(Sim, GateEvaluatesAfterDelay) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const NetId y = b.NOT(a);
  b.output("y", y);
  nl.check();
  Simulator sim(nl, cfg06());
  sim.drive_at(0, a, Logic::L0);
  sim.run_until(to_fs(1.0_us));
  EXPECT_EQ(sim.output("y"), Logic::L1);
  // Flip the input; immediately after, the old value still holds (delay).
  sim.drive_at(sim.now(), a, Logic::L1);
  sim.run_until(sim.now() + to_fs(1_ps));
  EXPECT_EQ(sim.output("y"), Logic::L1);
  sim.run_until(sim.now() + to_fs(10.0_ns));
  EXPECT_EQ(sim.output("y"), Logic::L0);
}

TEST(Sim, ClockedFlopSamplesAtPosedge) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId d = b.input("d");
  b.output("q", b.dff(d, clk));
  nl.check();
  Simulator sim(nl, cfg06());
  sim.init_flops_to_zero();
  sim.add_clock(clk, 1.0_MHz, 0.5, to_fs(0.5_us));
  sim.drive_at(0, d, Logic::L1);
  sim.run_until(to_fs(0.4_us));
  EXPECT_EQ(sim.output("q"), Logic::L0); // before the first edge
  sim.run_until(to_fs(0.6_us));
  EXPECT_EQ(sim.output("q"), Logic::L1); // captured
  // Change D mid-cycle: Q holds until the next posedge.
  sim.drive_at(sim.now(), d, Logic::L0);
  sim.run_until(to_fs(1.2_us));
  EXPECT_EQ(sim.output("q"), Logic::L1);
  sim.run_until(to_fs(1.6_us));
  EXPECT_EQ(sim.output("q"), Logic::L0);
}

TEST(Sim, RippleCounterDividesClock) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId q = nl.add_net("q");
  const NetId d = b.NOT(q);
  nl.add_cell("ff", lib().pick(CellKind::Dff), {d, clk}, q);
  b.output("q", q);
  nl.check();
  Simulator sim(nl, cfg06());
  sim.init_flops_to_zero();
  sim.add_clock(clk, 1.0_MHz, 0.5, to_fs(0.5_us));
  int rises = 0;
  sim.on_rising_edge(q, [&rises] { ++rises; });
  sim.run_until(to_fs(10.2_us)); // clock rises at 0.5 .. 9.5 us (10 edges)
  EXPECT_EQ(rises, 5);           // half the clock rate
}

TEST(Sim, EnergyAccountingMatchesHandComputation) {
  // One inverter toggled N times: switching energy = N * 1/2 C V^2 and
  // internal = N * E_int * scale; leakage = integral of the two cells'
  // state-dependent leakage.
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const NetId y = b.NOT(a);
  b.output("y", y);
  nl.check();
  Simulator sim(nl, cfg06());
  sim.drive_at(0, a, Logic::L0);
  sim.run_until(to_fs(1.0_us));
  sim.reset_tally();
  const int kToggles = 10;
  for (int i = 0; i < kToggles; ++i)
    sim.drive_at(sim.now() + to_fs(Time{(i + 1) * 1e-6}), a,
                 i % 2 ? Logic::L0 : Logic::L1);
  sim.run_until(to_fs(Time{20e-6}));
  const PowerTally& t = sim.tally();

  const double escale = lib().tech().energy_scale(cfg06().corner);
  const CellSpec& inv = lib().spec(lib().pick(CellKind::Inv, 1));
  // Both the input net and the output net toggle kToggles times.
  const double cap_in = nl.net_load(a).v, cap_out = nl.net_load(y).v;
  const double sw =
      kToggles * 0.5 * (cap_in + cap_out) * 0.6 * 0.6;
  EXPECT_NEAR(t.switching.v, sw, sw * 1e-9);
  EXPECT_NEAR(t.internal.v, kToggles * inv.internal_energy.v * escale,
              1e-20);
  EXPECT_GT(t.leakage_aon.v, 0.0);
  EXPECT_DOUBLE_EQ(t.rail_recharge.v, 0.0); // no gated domain
  EXPECT_NEAR(t.window.v, 19e-6, 1e-12);
}

TEST(Sim, LeakageIsStateDependent) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  b.output("y", b.NAND(a, c));
  nl.check();
  auto leak_with = [&](Logic va, Logic vb) {
    Simulator sim(nl, cfg06());
    sim.drive_at(0, a, va);
    sim.drive_at(0, c, vb);
    sim.run_until(to_fs(1.0_us));
    sim.reset_tally();
    sim.run_until(to_fs(2.0_us));
    Simulator& s = sim;
    return s.tally().leakage_aon.v;
  };
  EXPECT_GT(leak_with(Logic::L1, Logic::L1), leak_with(Logic::L0, Logic::L0));
}

TEST(Sim, GlitchesPropagateAndCost) {
  // y = a AND !a glitches on a rising edge of `a` because the inverter
  // path is slower; the glitch must be simulated and its energy counted.
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  NetId na = b.NOT(a);
  na = b.NOT(b.NOT(na)); // lengthen the inverting path
  const NetId y = b.AND(a, na);
  b.output("y", y);
  nl.check();
  Simulator sim(nl, cfg06());
  sim.drive_at(0, a, Logic::L0);
  sim.run_until(to_fs(1.0_us));
  sim.reset_tally();
  int y_toggles = 0;
  sim.on_rising_edge(y, [&y_toggles] { ++y_toggles; });
  sim.drive_at(sim.now(), a, Logic::L1);
  sim.run_until(sim.now() + to_fs(1.0_us));
  EXPECT_EQ(y_toggles, 1); // the glitch pulse
  EXPECT_EQ(sim.output("y"), Logic::L0);
}

TEST(Sim, MatchesFuncSimOnRandomAdder) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus x = b.input_bus("x", 8);
  const Bus y = b.input_bus("y", 8);
  const auto r = gen::ripple_add(b, x, y);
  b.output_bus("s", r.sum);
  nl.check();
  Simulator sim(nl, cfg06());
  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t xv = rng.bits(8), yv = rng.bits(8);
    sim.drive_bus_at(sim.now(), "x", xv, 8);
    sim.drive_bus_at(sim.now(), "y", yv, 8);
    sim.run_until(sim.now() + to_fs(100.0_ns));
    EXPECT_EQ(sim.read_bus("s", 8), (xv + yv) & 0xFF);
  }
}

TEST(Sim, ActivityRecorderCountsAndWindows) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId q = nl.add_net("q");
  const NetId d = b.NOT(q);
  nl.add_cell("ff", lib().pick(CellKind::Dff), {d, clk}, q);
  b.output("q", q);
  nl.check();
  Simulator sim(nl, cfg06());
  sim.init_flops_to_zero();
  ActivityRecorder rec(nl, 2); // windows of 2 cycles
  sim.attach_activity(&rec);
  sim.add_clock(clk, 1.0_MHz, 0.5, to_fs(0.5_us));
  sim.on_rising_edge(clk, [&rec] { rec.on_cycle(); });
  sim.run_until(to_fs(Time{8.2e-6})); // rises at 0.5 .. 7.5 us
  EXPECT_EQ(rec.cycles(), 8u);
  EXPECT_EQ(rec.window_activity().size(), 4u);
  EXPECT_GT(rec.total_toggles(), 0u);
  EXPECT_GT(rec.toggles(q), 0u);
  const auto reps = rec.representatives();
  EXPECT_LT(reps.min_group, 4u);
}

TEST(Sim, StaticPowerAnalysisTracksSimulator) {
  // PrimeTime-PX-style estimate from recorded activity must match the
  // simulator's own dynamic tally on the same run.
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const Bus x = b.input_bus("x", 4);
  const Bus q = b.dff_bus(x, clk);
  const auto sum = gen::ripple_add(b, q, q);
  const Bus q2 = b.dff_bus(sum.sum, clk);
  b.output_bus("s", q2);
  nl.check();

  Simulator sim(nl, cfg06());
  sim.init_flops_to_zero();
  ActivityRecorder rec(nl);
  sim.attach_activity(&rec);
  const Frequency f = 1.0_MHz;
  sim.add_clock(clk, f, 0.5, 0);
  Rng rng(5);
  sim.on_rising_edge(clk, [&] {
    rec.on_cycle();
    sim.drive_bus_at(sim.now() + to_fs(10.0_ns), "x", rng.bits(4), 4);
  });
  sim.run_until(to_fs(Time{1e-6} * 32.0));
  sim.reset_tally(); // we only compare rates, but exercise the API
  sim.run_until(to_fs(Time{1e-6} * 64.0));

  const PowerBreakdown est = analyze_power(nl, cfg06().corner, rec, f);
  // The switching estimate uses whole-run average activity; compare loosely
  // against the simulator's full-run average.
  Simulator sim2(nl, cfg06());
  EXPECT_GT(est.switching.v, 0.0);
  EXPECT_GT(est.leakage.v, 0.0);
  EXPECT_NEAR(est.leakage.v, static_leakage(nl, cfg06().corner).v, 1e-12);
}

TEST(Sim, VcdFileIsWellFormed) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  b.output("y", b.NOT(a));
  nl.check();
  const std::string path = "/tmp/scpg_test.vcd";
  {
    VcdWriter vcd(path, nl);
    const std::size_t rail = vcd.add_real("vrail");
    Simulator sim(nl, cfg06());
    sim.attach_vcd(&vcd, rail);
    sim.drive_at(0, a, Logic::L0);
    sim.drive_at(to_fs(10.0_ns), a, Logic::L1);
    sim.run_until(to_fs(50.0_ns));
  }
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);
  EXPECT_NE(text.find("$var real 64"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  std::remove(path.c_str());
}

TEST(Sim, DrivePastRejected) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  b.output("y", b.NOT(a));
  nl.check();
  Simulator sim(nl, cfg06());
  sim.run_until(to_fs(1.0_us));
  EXPECT_THROW((void)sim.drive_at(0, a, Logic::L1), PreconditionError);
}

TEST(Sim, AsyncResetForcesFlopLow) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId rn = b.input("rn");
  const NetId d = b.input("d");
  b.output("q", b.dffr(d, clk, rn));
  nl.check();
  Simulator sim(nl, cfg06());
  sim.drive_at(0, d, Logic::L1);
  sim.drive_at(0, rn, Logic::L1);
  sim.add_clock(clk, 1.0_MHz, 0.5, to_fs(0.25_us));
  sim.run_until(to_fs(0.5_us));
  EXPECT_EQ(sim.output("q"), Logic::L1);
  sim.drive_at(sim.now(), rn, Logic::L0);
  sim.run_until(sim.now() + to_fs(5.0_ns));
  EXPECT_EQ(sim.output("q"), Logic::L0);
}

} // namespace
} // namespace scpg
