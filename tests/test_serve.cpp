// Concurrency battery for the serve daemon (src/serve): a matrix of
// {1, 4, 16} concurrent clients x {cold, warm, restarted-warm} cache
// states, asserting the daemon's central contract — every response body
// is byte-identical to what an in-process run of the same request
// renders — plus exact cache-hit accounting and sweep coalescing,
// both observed through the obs counters the server and engine emit.
//
// Determinism notes: request bodies are compared against
// serve::exec_sweep (the single renderer the CLI's --json path also
// uses), computed before metrics collection starts so the expected-value
// runs do not pollute the counters under test.  Cache-miss counts are
// exact at ANY batch split ("engine.points" - "engine.cache_hits" ==
// unique rows on a cold cache, == 0 on a warm one), so those assertions
// hold even if a slow machine splits one burst into several batches.
// The coalescing assertion (batches < clients) is the only one that
// needs the batch window; clients connect first, rendezvous on a spin
// barrier, then send, and the window is generous.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "campaign/spec.hpp"
#include "gen/mult16.hpp"
#include "netlist/verilog.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/exec.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/socket.hpp"

namespace scpg {
namespace {

using obs::Registry;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

// ctest runs every case in this binary as its own process, all sharing
// testing::TempDir() — any fixed socket/cache/netlist filename would
// collide across concurrently scheduled cases (a sibling's live daemon
// makes Server::start() throw SocketBusyError).  Every path is salted
// with the pid.
std::string unique_path(const std::string& stem, const std::string& ext) {
  return testing::TempDir() + stem + "_" + std::to_string(::getpid()) + ext;
}

const std::string& netlist_path() {
  static const std::string path = [] {
    const std::string p = unique_path("serve_mult4", ".v");
    std::ofstream os(p);
    write_verilog(gen::make_multiplier(lib(), 4), os);
    return p;
  }();
  return path;
}

campaign::CampaignSpec spec_with_seed(std::uint64_t seed) {
  campaign::CampaignSpec s;
  s.netlist_path = netlist_path();
  s.points = 3;
  s.cycles = 4;
  s.seed = seed;
  return s;
}

constexpr int kJobs = 2;

/// Seeds cycle through 4 values: a 16-client burst carries duplicate
/// seeds (merged groups must share one grid copy, not alias tags) and
/// 4 distinct grids (merged groups must keep them apart).
std::uint64_t seed_of(int client) { return 21 + std::uint64_t(client % 4); }

serve::Request sweep_request(std::uint64_t seed) {
  serve::Request rq;
  rq.op = serve::Op::Sweep;
  rq.sweep.spec = spec_with_seed(seed);
  rq.sweep.jobs = kJobs;
  return rq;
}

/// The in-process ground truth, one body per distinct seed.  Computed
/// once, with metrics disabled, against the process-global result cache
/// (which the daemon never touches — it owns a "serve.cache" instance).
const std::vector<std::string>& expected_bodies() {
  static const std::vector<std::string> bodies = [] {
    std::vector<std::string> b;
    for (int i = 0; i < 4; ++i) {
      const serve::ExecResult r =
          serve::exec_sweep(lib(), {spec_with_seed(seed_of(i)), kJobs});
      EXPECT_EQ(r.exit_code, 0);
      b.push_back(r.body);
    }
    return b;
  }();
  return bodies;
}

/// Rows one spec expands to (the grid's shape is seed-invariant).
std::size_t rows_per_spec() {
  static const std::size_t n =
      campaign::build_campaign(lib(), spec_with_seed(1)).points().size();
  return n;
}

std::uint64_t counter(const char* name) {
  return Registry::global().counter(name).value();
}

enum class CacheState { Cold, Warm, RestartedWarm };

const char* cache_state_name(CacheState s) {
  switch (s) {
    case CacheState::Cold: return "Cold";
    case CacheState::Warm: return "Warm";
    case CacheState::RestartedWarm: return "RestartedWarm";
  }
  return "?";
}

struct MatrixCase {
  int clients;
  CacheState state;
};

/// Fires `clients` concurrent sweep requests (connections established
/// up front, then a spin-barrier rendezvous so the sends land inside
/// one batch window) and returns the responses in client order.
std::vector<serve::Response> burst(const std::string& socket, int clients) {
  std::vector<serve::Response> out(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      serve::Client c(socket);
      ready.fetch_add(1);
      while (ready.load() < clients) std::this_thread::yield();
      out[std::size_t(i)] = c.call(sweep_request(seed_of(i)));
    });
  }
  for (std::thread& t : threads) t.join();
  return out;
}

class ServeMatrix : public testing::TestWithParam<MatrixCase> {
protected:
  void SetUp() override { obs::reset(); }
  void TearDown() override { obs::reset(); }
};

TEST_P(ServeMatrix, ByteIdenticalWithExactCacheAccounting) {
  const MatrixCase mc = GetParam();
  const std::string tag =
      std::to_string(mc.clients) + "_" + cache_state_name(mc.state);
  const std::string socket = unique_path("serve_" + tag, ".sock");
  const std::string cache_file = unique_path("serve_" + tag, ".cache");
  std::remove(cache_file.c_str());

  // Ground truth before any counters matter.
  const std::vector<std::string>& expected = expected_bodies();
  const int distinct_seeds = std::min(mc.clients, 4);
  const std::size_t unique_rows = rows_per_spec() * std::size_t(distinct_seeds);

  serve::ServerOptions opt;
  opt.socket_path = socket;
  opt.jobs = kJobs;
  opt.cache_path = cache_file;
  opt.batch_window_ms = 150;

  if (mc.state == CacheState::RestartedWarm) {
    // A first daemon computes everything, persists it, and goes away.
    serve::Server warmer(lib(), opt);
    (void)warmer.start();
    (void)burst(socket, mc.clients);
    warmer.stop();
  }

  auto server = std::make_unique<serve::Server>(lib(), opt);
  obs::configure(/*enable_metrics=*/true, /*enable_trace=*/false);
  Registry::global().reset_values();
  const serve::DiskCache::LoadReport rep = server->start();

  if (mc.state == CacheState::RestartedWarm) {
    EXPECT_EQ(rep.loaded, unique_rows);
    EXPECT_EQ(rep.rejected, 0u);
    EXPECT_FALSE(rep.rebuilt);
    EXPECT_EQ(counter("serve.cache.disk.loaded"), unique_rows);
  } else {
    EXPECT_EQ(rep.loaded, 0u);
  }

  if (mc.state == CacheState::Warm) {
    // Same daemon, second round: a warmup burst fills its memory cache,
    // then the counters restart from zero for the burst under test.
    (void)burst(socket, mc.clients);
    Registry::global().reset_values();
  }

  const std::vector<serve::Response> responses = burst(socket, mc.clients);

  ASSERT_EQ(responses.size(), std::size_t(mc.clients));
  for (int i = 0; i < mc.clients; ++i) {
    const serve::Response& r = responses[std::size_t(i)];
    EXPECT_TRUE(r.status.ok) << "client " << i << ": " << r.status.error;
    EXPECT_EQ(r.status.exit_code, 0) << "client " << i;
    EXPECT_EQ(r.body, expected[std::size_t(i % 4)])
        << "client " << i << " body diverged from the in-process render";
  }

  // Exact cache accounting, valid at ANY batch split: each unique row is
  // computed exactly once ever; everything else must be a cache hit.
  const std::uint64_t points = counter("engine.points");
  const std::uint64_t hits = counter("engine.cache_hits");
  ASSERT_GE(points, hits);
  const std::uint64_t misses = points - hits;
  if (mc.state == CacheState::Cold) {
    EXPECT_EQ(misses, unique_rows);
  } else {
    EXPECT_EQ(misses, 0u) << "a warm daemon recomputed cached rows";
    EXPECT_EQ(hits, points);
  }

  // Every request went through the sweep admission path.
  EXPECT_EQ(counter("serve.requests"), std::uint64_t(mc.clients));
  EXPECT_EQ(counter("serve.requests.sweep"), std::uint64_t(mc.clients));
  EXPECT_EQ(counter("serve.sweep.batched_requests"),
            std::uint64_t(mc.clients));
  EXPECT_EQ(counter("serve.errors"), 0u);

  // Coalescing: concurrent clients that rendezvoused before sending must
  // not each get a private engine run.
  if (mc.clients > 1) {
    EXPECT_LT(counter("serve.sweep.batches"), std::uint64_t(mc.clients))
        << "no two concurrent requests were coalesced";
  }

  server->stop();
  server.reset();
}

INSTANTIATE_TEST_SUITE_P(
    Serve, ServeMatrix,
    testing::ValuesIn(std::vector<MatrixCase>{
        {1, CacheState::Cold},
        {1, CacheState::Warm},
        {1, CacheState::RestartedWarm},
        {4, CacheState::Cold},
        {4, CacheState::Warm},
        {4, CacheState::RestartedWarm},
        {16, CacheState::Cold},
        {16, CacheState::Warm},
        {16, CacheState::RestartedWarm},
    }),
    [](const testing::TestParamInfo<MatrixCase>& i) {
      return "c" + std::to_string(i.param.clients) +
             cache_state_name(i.param.state);
    });

// ---------------------------------------------------------------------------
// Protocol-level behaviour the matrix does not cover.
// ---------------------------------------------------------------------------

class ServeTest : public testing::Test {
protected:
  void SetUp() override {
    const testing::TestInfo* info =
        testing::UnitTest::GetInstance()->current_test_info();
    socket_ = unique_path(std::string("serve_unit_") + info->name(), ".sock");
    opt_.socket_path = socket_;
    opt_.jobs = kJobs;
    server_ = std::make_unique<serve::Server>(lib(), opt_);
    (void)server_->start();
  }
  void TearDown() override { server_->stop(); }

  std::string socket_;
  serve::ServerOptions opt_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeTest, PingStatsAndErrorStatuses) {
  serve::Client c(socket_);
  serve::Request ping;
  ping.op = serve::Op::Ping;
  const serve::Response pr = c.call(ping);
  EXPECT_TRUE(pr.status.ok);
  EXPECT_EQ(pr.status.exit_code, 0);
  EXPECT_TRUE(pr.body.empty());

  // A sweep against a missing netlist maps to the CLI's flow-error exit.
  serve::Request bad = sweep_request(1);
  bad.sweep.spec.netlist_path = testing::TempDir() + "serve_missing.v";
  const serve::Response br = c.call(bad);
  EXPECT_FALSE(br.status.ok);
  EXPECT_EQ(br.status.exit_code, 5);
  EXPECT_TRUE(br.body.empty());
  EXPECT_FALSE(br.status.error.empty());

  serve::Request stats;
  stats.op = serve::Op::Stats;
  const serve::Response sr = c.call(stats);
  EXPECT_TRUE(sr.status.ok);
  EXPECT_NE(sr.body.find("\"tool\": \"scpgc-serve\""), std::string::npos);
  EXPECT_NE(sr.body.find("\"kind\": \"stats\""), std::string::npos);
  EXPECT_NE(sr.body.find("\"latency_us\""), std::string::npos);
}

TEST_F(ServeTest, LintAndVerifyMatchInProcessExecution) {
  serve::LintRequest lrq;
  lrq.netlist_path = netlist_path();
  const serve::ExecResult lexp = serve::exec_lint(lib(), lrq);

  serve::Request rq;
  rq.op = serve::Op::Lint;
  rq.lint = lrq;
  serve::Client c(socket_);
  const serve::Response lr = c.call(rq);
  EXPECT_TRUE(lr.status.ok);
  EXPECT_EQ(lr.status.exit_code, lexp.exit_code);
  EXPECT_EQ(lr.body, lexp.body);

  serve::VerifyRequest vrq;
  vrq.netlist_path = netlist_path();
  vrq.cycles = 8;
  vrq.warmup = 2;
  const serve::ExecResult vexp = serve::exec_verify(lib(), vrq);

  rq.op = serve::Op::Verify;
  rq.verify = vrq;
  const serve::Response vr = c.call(rq);
  EXPECT_EQ(vr.status.exit_code, vexp.exit_code);
  EXPECT_EQ(vr.body, vexp.body);
}

TEST_F(ServeTest, MalformedRequestGetsExitTwoAndConnectionSurvives) {
  // Hand-roll a frame that is valid JSON but not a valid request.
  Socket s = connect_unix(socket_);
  ASSERT_TRUE(write_frame(
      s, "{\"schema_version\": 1, \"tool\": \"scpgc-serve\", "
         "\"payload\": {\"kind\": \"launch-missiles\"}}"));
  const auto status_frame = read_frame(s);
  ASSERT_TRUE(status_frame.has_value());
  const serve::Status st = serve::decode_status(*status_frame);
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.exit_code, 2);
  const auto body_frame = read_frame(s);
  ASSERT_TRUE(body_frame.has_value());
  EXPECT_TRUE(body_frame->empty());

  // The same connection still serves a good request afterwards.
  serve::Request ping;
  ping.op = serve::Op::Ping;
  ASSERT_TRUE(write_frame(s, serve::encode_request(ping)));
  const auto ok_frame = read_frame(s);
  ASSERT_TRUE(ok_frame.has_value());
  EXPECT_TRUE(serve::decode_status(*ok_frame).ok);
}

TEST_F(ServeTest, SecondServerOnLiveSocketThrowsBusy) {
  serve::Server second(lib(), opt_);
  EXPECT_THROW((void)second.start(), SocketBusyError);
  // The probe must not have unlinked the live daemon's socket.
  serve::Request rq;
  rq.op = serve::Op::Ping;
  EXPECT_TRUE(serve::call_once(socket_, rq).status.ok);
}

TEST_F(ServeTest, StaleSocketFileIsRecovered) {
  // What a SIGKILLed daemon leaves behind: a path with no live listener.
  const std::string stale = unique_path("serve_stale", ".sock");
  std::remove(stale.c_str());
  std::ofstream(stale) << "";
  serve::ServerOptions opt;
  opt.socket_path = stale;
  serve::Server fresh(lib(), opt);
  EXPECT_NO_THROW((void)fresh.start());
  serve::Request rq;
  rq.op = serve::Op::Ping;
  EXPECT_TRUE(serve::call_once(stale, rq).status.ok);
  fresh.stop();
}

TEST(ServeShutdown, DrainsAdmittedSweepToAFullResponse) {
  const std::string socket = unique_path("serve_drain", ".sock");
  serve::ServerOptions opt;
  opt.socket_path = socket;
  opt.jobs = kJobs;
  // A wide window parks the admitted sweep in the dispatcher; the
  // shutdown must cut the window short and still deliver a full body.
  opt.batch_window_ms = 10000;
  serve::Server server(lib(), opt);
  (void)server.start();

  serve::Response sweep_resp;
  std::thread sweeper(
      [&] { sweep_resp = serve::call_once(socket, sweep_request(99)); });

  // The stats body counts a request the moment it is read off the
  // socket, so "sweep": 1 proves the sweep is admitted (queued or about
  // to be) before the shutdown fires; drain then guarantees a response.
  serve::Request stats;
  stats.op = serve::Op::Stats;
  serve::Client watcher(socket);
  for (;;) {
    const serve::Response sr = watcher.call(stats);
    ASSERT_TRUE(sr.status.ok);
    if (sr.body.find("\"sweep\": 1") != std::string::npos) break;
    std::this_thread::yield();
  }

  serve::Request sd;
  sd.op = serve::Op::Shutdown;
  const serve::Response sr = serve::call_once(socket, sd);
  EXPECT_TRUE(sr.status.ok);
  sweeper.join();
  EXPECT_TRUE(sweep_resp.status.ok) << sweep_resp.status.error;
  EXPECT_EQ(sweep_resp.body,
            serve::exec_sweep(lib(), {spec_with_seed(99), kJobs}).body);
  server.stop(); // idempotent with the shutdown op
}

} // namespace
} // namespace scpg
