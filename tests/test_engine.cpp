// Tests for the parallel sweep engine (src/engine): SweepSpec expansion,
// determinism across job counts, the result cache, RNG stream
// independence, the parallel_map substrate, and progress reporting.
//
// Every suite name starts with "Engine" so tools/check.sh can run the
// whole file under ThreadSanitizer with `ctest -R '^Engine'`.
#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "engine/cache.hpp"
#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

using namespace scpg;
using namespace scpg::literals;

namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

const Netlist& mult8_original() {
  static const Netlist nl = gen::make_multiplier(lib(), 8);
  return nl;
}

const Netlist& mult8_gated() {
  static const Netlist nl = [] {
    Netlist n = gen::make_multiplier(lib(), 8);
    apply_scpg(n);
    return n;
  }();
  return nl;
}

engine::Stimulus rand8_stimulus() {
  return [](Simulator& s, int, Rng& rng) {
    s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(8), 8);
    s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(8), 8);
  };
}

/// A small two-design grid exercising frequency/override axes plus an
/// explicit tagged point.
engine::SweepSpec small_grid(int jobs, bool cache) {
  engine::SweepSpec spec;
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  spec.design(mult8_original(), "orig")
      .design(mult8_gated(), "gated")
      .frequencies({100.0_kHz, 1.0_MHz})
      .overrides({false, true})
      .base_sim(cfg)
      .cycles(6, 2)
      .stimulus(rand8_stimulus(), "test:rand8")
      .jobs(jobs)
      .use_cache(cache);
  engine::OperatingPoint extra;
  extra.design = 1;
  extra.f = 250.0_kHz;
  extra.duty_high = 0.8;
  extra.corner = cfg.corner;
  extra.tag = "hot";
  spec.point(extra);
  return spec;
}

/// Exact bitwise equality of two result tables (doubles compared with ==,
/// not a tolerance: the determinism contract is bit-identical output).
void expect_identical(const engine::SweepResult& a,
                      const engine::SweepResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].avg_power.v, b[i].avg_power.v) << "row " << i;
    EXPECT_EQ(a[i].energy_per_cycle.v, b[i].energy_per_cycle.v)
        << "row " << i;
    EXPECT_EQ(a[i].tally.total().v, b[i].tally.total().v) << "row " << i;
    EXPECT_EQ(a[i].tally.dynamic_total().v, b[i].tally.dynamic_total().v)
        << "row " << i;
    EXPECT_EQ(a[i].cycles, b[i].cycles) << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// parallel_map substrate

TEST(EngineParallelMap, ReturnsResultsInIndexOrder) {
  const auto out = parallel_map(100, 8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(EngineParallelMap, SerialAndParallelAgree) {
  auto fn = [](std::size_t i) { return double(i) * 1.5 + 1.0; };
  EXPECT_EQ(parallel_map(37, 1, fn), parallel_map(37, 7, fn));
}

TEST(EngineParallelMap, ZeroItemsIsEmpty) {
  EXPECT_TRUE(parallel_map(0, 4, [](std::size_t i) { return i; }).empty());
}

TEST(EngineParallelMap, DefaultJobsIsPositive) {
  EXPECT_GE(default_jobs(), 1);
  // jobs <= 0 routes through default_jobs() and still completes.
  const auto out = parallel_map(5, 0, [](std::size_t i) { return i + 1; });
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4], 5u);
}

TEST(EngineParallelMap, RethrowsWorkerException) {
  EXPECT_THROW(parallel_map(16, 4,
                            [](std::size_t i) -> int {
                              if (i == 9) throw std::runtime_error("boom");
                              return int(i);
                            }),
               std::runtime_error);
}

TEST(EngineParallelMap, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallel_map(hits.size(), 8, [&](std::size_t i) {
    hits[i].fetch_add(1);
    return 0;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(EngineParallelMap, LowestIndexedExceptionWinsDeterministically) {
  // Two jobs throw CONCURRENTLY (a spin barrier guarantees both are
  // in-flight before either throws); the rethrown exception must be the
  // lowest-indexed one regardless of which thread lost the race.
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> arrived{0};
    try {
      parallel_map(2, 2, [&](std::size_t i) -> int {
        arrived.fetch_add(1);
        while (arrived.load() < 2) {
        }
        if (i == 0) throw std::logic_error("low");
        throw std::runtime_error("high");
      });
      FAIL() << "parallel_map swallowed the exceptions";
    } catch (const std::logic_error& e) {
      EXPECT_STREQ(e.what(), "low");
    } catch (const std::runtime_error&) {
      FAIL() << "higher-indexed exception won the race (round " << round
             << ")";
    }
  }
}

TEST(EngineParallelMap, LaterWorkerFailureStillYieldsEarlierException) {
  // Index 3 fails instantly; index 0 fails after a delay.  Index 0 must
  // still win: first-exception is by index, not by arrival time.
  std::atomic<int> three_thrown{0};
  try {
    parallel_map(4, 4, [&](std::size_t i) -> int {
      if (i == 3) {
        three_thrown.store(1);
        throw std::runtime_error("fast");
      }
      if (i == 0) {
        while (three_thrown.load() == 0) {
        }
        throw std::logic_error("slow-but-first");
      }
      return int(i);
    });
    FAIL() << "parallel_map swallowed the exceptions";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "slow-but-first");
  }
}

// ---------------------------------------------------------------------------
// RNG streams

TEST(EngineRng, StreamIsReproducible) {
  Rng a = Rng::stream(42, 0xABCD);
  Rng b = Rng::stream(42, 0xABCD);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(EngineRng, StreamsWithDifferentKeysAreIndependent) {
  Rng a = Rng::stream(42, 1);
  Rng b = Rng::stream(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0); // 64 colliding u64 draws would be astronomical
}

TEST(EngineRng, StreamsWithDifferentSeedsAreIndependent) {
  Rng a = Rng::stream(1, 7);
  Rng b = Rng::stream(2, 7);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------------------
// SweepSpec expansion

TEST(EngineSpec, GridNestingOrderAndDefaults) {
  engine::SweepSpec spec;
  spec.design(mult8_original())
      .design(mult8_gated())
      .frequencies({1.0_MHz, 2.0_MHz})
      .overrides({false, true});
  const auto pts = spec.expand();
  // designs > frequencies > duties > corners > seeds > overrides.
  ASSERT_EQ(pts.size(), 8u);
  EXPECT_EQ(pts[0].design, 0u);
  EXPECT_EQ(pts[0].f.v, 1e6);
  EXPECT_FALSE(pts[0].override_gating);
  EXPECT_TRUE(pts[1].override_gating);
  EXPECT_EQ(pts[2].f.v, 2e6);
  EXPECT_EQ(pts[4].design, 1u);
  // Unset axes collapse to a single default element.
  EXPECT_EQ(pts[0].duty_high, 0.5);
  EXPECT_EQ(pts[0].seed, 0u);
}

TEST(EngineSpec, ExplicitPointsAppendAfterGrid) {
  engine::SweepSpec spec = small_grid(1, false);
  const auto pts = spec.expand();
  ASSERT_EQ(pts.size(), 2u * 2u * 2u + 1u);
  EXPECT_EQ(pts.back().tag, "hot");
  EXPECT_EQ(pts.back().duty_high, 0.8);
}

TEST(EngineSpec, NoFrequencyAxisMeansOnlyExplicitPoints) {
  engine::SweepSpec spec;
  spec.design(mult8_original());
  engine::OperatingPoint p;
  p.tag = "only";
  spec.point(p);
  const auto pts = spec.expand();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].tag, "only");
}

TEST(EngineSpec, ExperimentRejectsEmptyAndInvalidSpecs) {
  engine::SweepSpec empty;
  EXPECT_THROW(engine::Experiment ex(std::move(empty)), PreconditionError);
  engine::SweepSpec bad_cycles;
  bad_cycles.design(mult8_original()).frequency(1.0_MHz).cycles(0);
  EXPECT_THROW(engine::Experiment ex(std::move(bad_cycles)),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Determinism across job counts

class EngineDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(EngineDeterminism, ParallelBitIdenticalToSerial) {
  const engine::SweepResult serial =
      engine::Experiment(small_grid(1, false)).run();
  const engine::SweepResult parallel =
      engine::Experiment(small_grid(GetParam(), false)).run();
  expect_identical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(EngineJobs, EngineDeterminism,
                         ::testing::Values(1, 2, 8));

TEST(EngineDeterminismMisc, SeedAxisChangesStimulus) {
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  engine::SweepSpec spec;
  spec.design(mult8_original())
      .frequency(1.0_MHz)
      .seeds({1, 2})
      .base_sim(cfg)
      .cycles(6, 2)
      .use_cache(false)
      .stimulus(rand8_stimulus(), "test:rand8");
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();
  ASSERT_EQ(res.size(), 2u);
  // Different seeds draw different operands, so dynamic energy differs.
  EXPECT_NE(res[0].tally.dynamic_total().v, res[1].tally.dynamic_total().v);
}

TEST(EngineDeterminismMisc, PointDigestIsContentKeyed) {
  engine::Experiment ex(small_grid(1, false));
  const auto pts = ex.spec().expand();
  // Distinct points get distinct digests; the digest is a pure function
  // of the point (same point -> same digest).
  std::set<std::uint64_t> digests;
  for (const auto& pt : pts) digests.insert(ex.point_digest(pt));
  EXPECT_EQ(digests.size(), pts.size());
  EXPECT_EQ(ex.point_digest(pts[0]), ex.point_digest(pts[0]));
  // The tag is a label, not configuration: it must NOT move the digest.
  engine::OperatingPoint relabeled = pts[0];
  relabeled.tag = "renamed";
  EXPECT_EQ(ex.point_digest(pts[0]), ex.point_digest(relabeled));
  // The seed IS configuration (it keys the RNG stream).
  engine::OperatingPoint reseeded = pts[0];
  reseeded.seed = 999;
  EXPECT_NE(ex.point_digest(pts[0]), ex.point_digest(reseeded));
}

TEST(EngineDeterminismMisc, RejectsDistinctTagsWithIdenticalPayload) {
  // Two explicit points the caller clearly intends as distinct rows
  // (different tags) but whose payloads are identical would share one
  // point digest — and therefore one Rng::stream and one cache entry.
  // run() must reject the sweep instead of silently aliasing them.
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  auto make = [&](std::string tag_b, std::uint64_t seed_b) {
    engine::SweepSpec spec;
    spec.design(mult8_original())
        .base_sim(cfg)
        .cycles(4, 2)
        .use_cache(false)
        .stimulus(rand8_stimulus(), "test:rand8");
    engine::OperatingPoint a;
    a.f = 1.0_MHz;
    a.corner = cfg.corner;
    a.tag = "a";
    engine::OperatingPoint b = a;
    b.tag = std::move(tag_b);
    b.seed = seed_b;
    spec.point(a).point(b);
    return spec;
  };
  EXPECT_THROW((void)engine::Experiment(make("b", 0)).run(),
               PreconditionError);
  try {
    (void)engine::Experiment(make("b", 0)).run();
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    // The diagnostic names both colliding rows by index and tag.
    EXPECT_NE(std::string(e.what()).find("\"a\""), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("\"b\""), std::string::npos);
  }
  // Differentiating the payload (distinct seeds) makes the sweep legal...
  EXPECT_NO_THROW((void)engine::Experiment(make("b", 1)).run());
  // ...and a genuine duplicate (same tag, same payload) stays legal: equal
  // rows are the cache's bread and butter, not an aliasing bug.
  EXPECT_NO_THROW((void)engine::Experiment(make("a", 0)).run());
}

// ---------------------------------------------------------------------------
// Result cache

TEST(EngineCache, SecondRunHitsAndIsBitIdentical) {
  engine::ResultCache::global().clear();
  const engine::Experiment ex(small_grid(2, true));
  const engine::SweepResult first = ex.run();
  EXPECT_EQ(first.cache_hits(), 0u);
  const engine::SweepResult second = ex.run();
  EXPECT_EQ(second.cache_hits(), second.size());
  expect_identical(first, second);
  for (const auto& row : second) EXPECT_TRUE(row.cache_hit);
}

TEST(EngineCache, SharedAcrossExperimentsWithEqualConfig) {
  engine::ResultCache::global().clear();
  (void)engine::Experiment(small_grid(1, true)).run();
  // A separately built but identical spec must hit the same entries.
  const engine::SweepResult res =
      engine::Experiment(small_grid(4, true)).run();
  EXPECT_EQ(res.cache_hits(), res.size());
}

TEST(EngineCache, OpaqueStimulusDisablesCaching) {
  engine::ResultCache::global().clear();
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  auto make = [&] {
    engine::SweepSpec spec;
    spec.design(mult8_original())
        .frequency(1.0_MHz)
        .base_sim(cfg)
        .cycles(4, 2)
        .stimulus(rand8_stimulus()); // no cache key -> opaque
    return spec;
  };
  (void)engine::Experiment(make()).run();
  EXPECT_EQ(engine::ResultCache::global().size(), 0u);
  const engine::SweepResult again = engine::Experiment(make()).run();
  EXPECT_EQ(again.cache_hits(), 0u);
}

TEST(EngineCache, DifferentStimulusKeysDoNotCollide) {
  engine::ResultCache::global().clear();
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  auto run = [&](const std::string& key) {
    engine::SweepSpec spec;
    spec.design(mult8_original())
        .frequency(1.0_MHz)
        .base_sim(cfg)
        .cycles(4, 2)
        .stimulus(rand8_stimulus(), key);
    return engine::Experiment(std::move(spec)).run();
  };
  (void)run("key-a");
  const engine::SweepResult b = run("key-b");
  EXPECT_EQ(b.cache_hits(), 0u); // different key -> different entries
  EXPECT_EQ(engine::ResultCache::global().size(), 2u);
}

/// RAII guard: tests that shrink the global cache capacity must restore
/// it, or later suites would run against a crippled cache.
class CacheCapacityGuard {
public:
  explicit CacheCapacityGuard(std::size_t cap) {
    engine::ResultCache::global().clear();
    engine::ResultCache::global().set_capacity(cap);
  }
  ~CacheCapacityGuard() {
    engine::ResultCache::global().set_capacity(
        engine::ResultCache::kDefaultCapacity);
    engine::ResultCache::global().clear();
  }
};

engine::CacheKey key_of(std::uint64_t n) { return {n, ~n}; }

engine::Measurement measurement_of(double w) {
  engine::Measurement m;
  m.avg_power = Power{w};
  return m;
}

TEST(EngineCache, EvictsLeastRecentlyUsedAtCapacity) {
  CacheCapacityGuard guard(2);
  auto& c = engine::ResultCache::global();
  c.store(key_of(1), measurement_of(1.0));
  c.store(key_of(2), measurement_of(2.0));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.evictions(), 0u);
  c.store(key_of(3), measurement_of(3.0)); // evicts key 1 (oldest)
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_FALSE(c.find(key_of(1)).has_value());
  EXPECT_TRUE(c.find(key_of(2)).has_value());
  EXPECT_TRUE(c.find(key_of(3)).has_value());
}

TEST(EngineCache, FindRefreshesRecency) {
  CacheCapacityGuard guard(2);
  auto& c = engine::ResultCache::global();
  c.store(key_of(1), measurement_of(1.0));
  c.store(key_of(2), measurement_of(2.0));
  ASSERT_TRUE(c.find(key_of(1)).has_value()); // 1 is now most recent
  c.store(key_of(3), measurement_of(3.0));    // so 2 is the victim
  EXPECT_TRUE(c.find(key_of(1)).has_value());
  EXPECT_FALSE(c.find(key_of(2)).has_value());
  EXPECT_TRUE(c.find(key_of(3)).has_value());
}

TEST(EngineCache, ShrinkingCapacityEvictsDownImmediately) {
  CacheCapacityGuard guard(8);
  auto& c = engine::ResultCache::global();
  for (std::uint64_t i = 0; i < 8; ++i)
    c.store(key_of(i), measurement_of(double(i)));
  EXPECT_EQ(c.size(), 8u);
  c.set_capacity(3);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.evictions(), 5u);
  // The three most recently stored survive.
  EXPECT_TRUE(c.find(key_of(7)).has_value());
  EXPECT_TRUE(c.find(key_of(5)).has_value());
  EXPECT_FALSE(c.find(key_of(4)).has_value());
}

TEST(EngineCache, ZeroCapacityDisablesStorage) {
  CacheCapacityGuard guard(0);
  auto& c = engine::ResultCache::global();
  c.store(key_of(1), measurement_of(1.0));
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.find(key_of(1)).has_value());
}

TEST(EngineCache, DuplicateStoreRefreshesInsteadOfGrowing) {
  CacheCapacityGuard guard(2);
  auto& c = engine::ResultCache::global();
  c.store(key_of(1), measurement_of(1.0));
  c.store(key_of(2), measurement_of(2.0));
  c.store(key_of(1), measurement_of(9.0)); // refresh, not a new entry
  EXPECT_EQ(c.size(), 2u);
  c.store(key_of(3), measurement_of(3.0)); // victim is 2, not 1
  EXPECT_TRUE(c.find(key_of(1)).has_value());
  EXPECT_FALSE(c.find(key_of(2)).has_value());
  // First store wins: a duplicate store must not change the cached
  // measurement (hits stay bit-identical to the first computation).
  EXPECT_EQ(c.find(key_of(1))->avg_power.v, 1.0);
}

TEST(EngineCache, BoundedSweepStillBitIdentical) {
  // A cache too small for the whole grid forces evictions mid-sweep;
  // results must be unaffected (the cache only ever short-circuits
  // recomputation of a pure function).
  CacheCapacityGuard guard(2);
  const engine::SweepResult small_cache =
      engine::Experiment(small_grid(4, true)).run();
  EXPECT_GT(engine::ResultCache::global().evictions(), 0u);
  engine::ResultCache::global().set_capacity(
      engine::ResultCache::kDefaultCapacity);
  engine::ResultCache::global().clear();
  const engine::SweepResult unbounded =
      engine::Experiment(small_grid(4, true)).run();
  expect_identical(small_cache, unbounded);
}

// ---------------------------------------------------------------------------
// Progress reporting

TEST(EngineProgress, CallbackCoversEveryPointAndReportsHits) {
  engine::ResultCache::global().clear();
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> last_done{0};
  engine::SweepSpec spec = small_grid(4, true);
  spec.on_progress([&](const engine::Progress& p) {
    calls.fetch_add(1);
    EXPECT_LE(p.done, p.total);
    EXPECT_GE(p.elapsed_s, 0.0);
    last_done.store(p.done);
  });
  const std::size_t total = spec.expand().size();
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();
  EXPECT_EQ(calls.load(), total);
  EXPECT_EQ(last_done.load(), total);
  EXPECT_EQ(res.size(), total);
}

// ---------------------------------------------------------------------------
// SweepResult lookup

TEST(EngineResult, FindAndAtTag) {
  engine::ResultCache::global().clear();
  const engine::SweepResult res =
      engine::Experiment(small_grid(1, false)).run();
  EXPECT_NE(res.find("hot"), nullptr);
  EXPECT_EQ(res.at_tag("hot").point.duty_high, 0.8);
  EXPECT_EQ(res.find("missing"), nullptr);
  EXPECT_THROW((void)res.at_tag("missing"), PreconditionError);
}

} // namespace
