#include <gtest/gtest.h>

#include "tech/liberty.hpp"
#include "tech/library.hpp"
#include "tech/logic.hpp"
#include "tech/tech_model.hpp"
#include "util/error.hpp"

#include <array>
#include <cmath>

namespace scpg {
namespace {

using namespace scpg::literals;

// ---------------------------------------------------------------------------
// Logic evaluation
// ---------------------------------------------------------------------------

TEST(Logic, TruthTablesMatchBooleanSemantics) {
  const struct {
    CellKind k;
    std::array<bool, 3> in;
    bool expect;
    int n;
  } cases[] = {
      {CellKind::Inv, {false}, true, 1},
      {CellKind::Inv, {true}, false, 1},
      {CellKind::Buf, {true}, true, 1},
      {CellKind::Nand2, {true, true}, false, 2},
      {CellKind::Nand2, {true, false}, true, 2},
      {CellKind::Nor2, {false, false}, true, 2},
      {CellKind::Nor2, {true, false}, false, 2},
      {CellKind::And2, {true, true}, true, 2},
      {CellKind::Or2, {false, true}, true, 2},
      {CellKind::Xor2, {true, true}, false, 2},
      {CellKind::Xor2, {true, false}, true, 2},
      {CellKind::Xnor2, {true, true}, true, 2},
      {CellKind::Nand3, {true, true, true}, false, 3},
      {CellKind::Nor3, {false, false, false}, true, 3},
      {CellKind::Aoi21, {true, true, false}, false, 3},
      {CellKind::Aoi21, {false, true, false}, true, 3},
      {CellKind::Oai21, {true, false, true}, false, 3},
      {CellKind::Oai21, {false, false, true}, true, 3},
      {CellKind::Mux2, {true, false, false}, true, 3}, // s=0 -> a
      {CellKind::Mux2, {true, false, true}, false, 3}, // s=1 -> b
  };
  for (const auto& c : cases) {
    EXPECT_EQ(eval_cell_bool(c.k, std::span<const bool>(c.in.data(),
                                                        std::size_t(c.n))),
              c.expect)
        << kind_name(c.k);
  }
}

TEST(Logic, ControllingInputsDominateX) {
  const Logic x = Logic::X;
  const Logic l0 = Logic::L0, l1 = Logic::L1;
  {
    const std::array<Logic, 2> in{l0, x};
    EXPECT_EQ(eval_cell(CellKind::Nand2, in), l1);
  }
  {
    const std::array<Logic, 2> in{l1, x};
    EXPECT_EQ(eval_cell(CellKind::Nor2, in), l0);
  }
  {
    const std::array<Logic, 2> in{x, x};
    EXPECT_EQ(eval_cell(CellKind::Xor2, in), x);
  }
  {
    // Mux with unknown select but agreeing data is known.
    const std::array<Logic, 3> in{l1, l1, x};
    EXPECT_EQ(eval_cell(CellKind::Mux2, in), l1);
  }
  {
    const std::array<Logic, 3> in{l0, l1, x};
    EXPECT_EQ(eval_cell(CellKind::Mux2, in), x);
  }
}

TEST(Logic, ZReadsAsX) {
  const std::array<Logic, 1> in{Logic::Z};
  EXPECT_EQ(eval_cell(CellKind::Inv, in), Logic::X);
  const std::array<Logic, 2> in2{Logic::Z, Logic::L0};
  EXPECT_EQ(eval_cell(CellKind::Nand2, in2), Logic::L1);
}

TEST(Logic, IsolationClampsWhenActive) {
  // NISO = 0 -> clamp; NISO = 1 -> transparent.
  const std::array<Logic, 2> clamp_lo{Logic::X, Logic::L0};
  EXPECT_EQ(eval_cell(CellKind::IsoLo, clamp_lo), Logic::L0);
  EXPECT_EQ(eval_cell(CellKind::IsoHi, clamp_lo), Logic::L1);
  const std::array<Logic, 2> pass{Logic::L1, Logic::L1};
  EXPECT_EQ(eval_cell(CellKind::IsoLo, pass), Logic::L1);
  const std::array<Logic, 2> pass0{Logic::L0, Logic::L1};
  EXPECT_EQ(eval_cell(CellKind::IsoHi, pass0), Logic::L0);
}

TEST(Logic, TieCellsAreConstant) {
  EXPECT_EQ(eval_cell(CellKind::TieHi, {}), Logic::L1);
  EXPECT_EQ(eval_cell(CellKind::TieLo, {}), Logic::L0);
}

TEST(Logic, SequentialKindsRejectCombinationalEval) {
  const std::array<Logic, 2> in{Logic::L0, Logic::L0};
  EXPECT_THROW((void)eval_cell(CellKind::Dff, in), PreconditionError);
}

TEST(Logic, KindClassification) {
  EXPECT_TRUE(kind_is_sequential(CellKind::Dff));
  EXPECT_TRUE(kind_is_sequential(CellKind::DffR));
  EXPECT_FALSE(kind_is_sequential(CellKind::Nand2));
  EXPECT_TRUE(kind_is_combinational(CellKind::Xor2));
  EXPECT_FALSE(kind_is_combinational(CellKind::Header));
  EXPECT_FALSE(kind_is_combinational(CellKind::Macro));
}

// ---------------------------------------------------------------------------
// Technology model
// ---------------------------------------------------------------------------

TechModel model() { return Library::scpg90().tech(); }

TEST(TechModel, NominalCornerIsUnity) {
  const TechModel tm = model();
  const Corner nom{tm.params().vdd_nom, tm.params().temp_nom_c};
  EXPECT_NEAR(tm.delay_scale(nom), 1.0, 1e-12);
  EXPECT_NEAR(tm.leak_scale(nom), 1.0, 1e-12);
  EXPECT_NEAR(tm.energy_scale(nom), 1.0, 1e-12);
}

TEST(TechModel, DelayGrowsMonotonicallyAsVddFalls) {
  const TechModel tm = model();
  double prev = 0;
  for (double v = 1.0; v >= 0.16; v -= 0.02) {
    const double d = tm.delay_scale({Voltage{v}, 25.0});
    EXPECT_GT(d, prev * 0.999) << "at " << v;
    prev = d;
  }
}

TEST(TechModel, SubthresholdDelayIsExponential) {
  const TechModel tm = model();
  // One n*vT step below another deep in sub-threshold changes drive
  // current by e; delay = V / I also carries the supply prefactor.
  const double nvt = tm.params().n_vt.v;
  const double v1 = 0.16, v2 = 0.16 + nvt;
  const double d1 = tm.delay_scale({Voltage{v1}, 25.0});
  const double d2 = tm.delay_scale({Voltage{v2}, 25.0});
  EXPECT_NEAR(d1 / d2, (v1 / v2) * std::exp(1.0), 0.05);
}

TEST(TechModel, LeakageFallsWithVdd) {
  const TechModel tm = model();
  const double l06 = tm.leak_scale({0.6_V, 25.0});
  const double l10 = tm.leak_scale({1.0_V, 25.0});
  EXPECT_LT(l06, l10);
  // Calibration target (DESIGN.md §5): ~0.2 at 0.6 V.
  EXPECT_NEAR(l06, 0.2, 0.05);
}

TEST(TechModel, LeakageDoublesPerTempStep) {
  const TechModel tm = model();
  const double t2x = tm.params().leak_t2x_c;
  const double a = tm.leak_scale({0.6_V, 25.0});
  const double b = tm.leak_scale({0.6_V, 25.0 + t2x});
  EXPECT_NEAR(b / a, 2.0, 1e-9);
}

TEST(TechModel, EnergyScalesQuadratically) {
  const TechModel tm = model();
  EXPECT_NEAR(tm.energy_scale({0.5_V, 25.0}), 0.25, 1e-12);
}

TEST(TechModel, RejectsSupplyBelowCredibleRange) {
  const TechModel tm = model();
  EXPECT_THROW((void)tm.delay_scale({Voltage{0.05}, 25.0}), PreconditionError);
}

TEST(TechModel, CalibrationDelayRatioForMep) {
  // delay(0.31 V) / delay(0.6 V) ~ 3.6 places the multiplier MEP near the
  // paper's 310 mV / ~10 MHz (DESIGN.md §5).
  const TechModel tm = model();
  const double r = tm.delay_scale({Voltage{0.31}, 25.0}) /
                   tm.delay_scale({0.6_V, 25.0});
  EXPECT_NEAR(r, 3.6, 0.7);
}

// ---------------------------------------------------------------------------
// Library
// ---------------------------------------------------------------------------

TEST(Library, Scpg90HasExpectedCells) {
  const Library lib = Library::scpg90();
  for (const char* name :
       {"INV_X1", "NAND2_X1", "NAND2_X2", "XOR2_X1", "MUX2_X1", "DFF_X1",
        "DFFR_X1", "ISOLO_X1", "ISOHI_X1", "TIEHI_X1", "HDR_X1", "HDR_X8"})
    EXPECT_TRUE(lib.find(name).has_value()) << name;
  EXPECT_FALSE(lib.find("NO_SUCH_CELL").has_value());
}

TEST(Library, PickFindsKindAndDrive) {
  const Library lib = Library::scpg90();
  const CellSpec& n2 = lib.spec(lib.pick(CellKind::Nand2, 2));
  EXPECT_EQ(n2.kind, CellKind::Nand2);
  EXPECT_EQ(n2.drive, 2);
  EXPECT_THROW((void)lib.pick(CellKind::Nand2, 3), PreconditionError);
}

TEST(Library, DriveScalingTradesResistanceForCap) {
  const Library lib = Library::scpg90();
  const CellSpec& x1 = lib.spec(lib.pick(CellKind::Inv, 1));
  const CellSpec& x4 = lib.spec(lib.pick(CellKind::Inv, 4));
  EXPECT_LT(x4.drive_res.v, x1.drive_res.v);
  EXPECT_GT(x4.input_cap.v, x1.input_cap.v);
  EXPECT_GT(x4.leakage.v, x1.leakage.v);
  EXPECT_GT(x4.area.v, x1.area.v);
}

TEST(Library, HeaderFamilyScalesRonInversely) {
  const Library lib = Library::scpg90();
  const auto drives = lib.drives_of(CellKind::Header);
  ASSERT_EQ(drives, (std::vector<int>{1, 2, 4, 8}));
  double prev_ron = 1e9;
  for (int d : drives) {
    const CellSpec& h = lib.spec(lib.pick(CellKind::Header, d));
    EXPECT_LT(h.header_ron.v, prev_ron);
    prev_ron = h.header_ron.v;
  }
}

TEST(Library, StateDependentLeakageSpreadsAroundAverage) {
  const Library lib = Library::scpg90();
  const CellSpec& n2 = lib.spec(lib.pick(CellKind::Nand2, 1));
  const std::array<Logic, 2> low{Logic::L0, Logic::L0};
  const std::array<Logic, 2> high{Logic::L1, Logic::L1};
  const std::array<Logic, 2> unknown{Logic::X, Logic::X};
  EXPECT_LT(leakage_in_state(n2, low).v, n2.leakage.v);
  EXPECT_GT(leakage_in_state(n2, high).v, n2.leakage.v);
  EXPECT_DOUBLE_EQ(leakage_in_state(n2, unknown).v, n2.leakage.v);
  // Average of extremes equals the state-averaged value.
  EXPECT_NEAR((leakage_in_state(n2, low) + leakage_in_state(n2, high)).v,
              2 * n2.leakage.v, 1e-18);
}

TEST(Library, DuplicateCellNameRejected) {
  Library lib("t", TechModel{TechParams{}});
  CellSpec s;
  s.name = "A";
  lib.add(s);
  EXPECT_THROW((void)lib.add(s), PreconditionError);
}

TEST(Library, PinNamesForVerilog) {
  EXPECT_EQ(input_pin_name(CellKind::Nand2, 0), "A");
  EXPECT_EQ(input_pin_name(CellKind::Nand2, 1), "B");
  EXPECT_EQ(input_pin_name(CellKind::Mux2, 2), "S");
  EXPECT_EQ(input_pin_name(CellKind::Dff, 0), "D");
  EXPECT_EQ(input_pin_name(CellKind::Dff, 1), "CK");
  EXPECT_EQ(input_pin_name(CellKind::DffR, 2), "RN");
  EXPECT_EQ(input_pin_name(CellKind::IsoLo, 1), "NISO");
  EXPECT_EQ(output_pin_name(CellKind::Dff), "Q");
  EXPECT_EQ(output_pin_name(CellKind::Nand2), "Y");
  EXPECT_THROW((void)input_pin_name(CellKind::Nand2, 2), PreconditionError);
}

// ---------------------------------------------------------------------------
// Liberty-lite round trip
// ---------------------------------------------------------------------------

TEST(Liberty, RoundTripPreservesEverything) {
  const Library lib = Library::scpg90();
  const std::string text = write_liberty_string(lib);
  const Library back = read_liberty_string(text);

  EXPECT_EQ(back.name(), lib.name());
  ASSERT_EQ(back.size(), lib.size());
  const TechParams &a = lib.tech().params(), &b = back.tech().params();
  EXPECT_DOUBLE_EQ(a.vt.v, b.vt.v);
  EXPECT_DOUBLE_EQ(a.alpha, b.alpha);
  EXPECT_DOUBLE_EQ(a.dibl_per_v, b.dibl_per_v);
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const CellSpec& s1 = lib.spec(SpecId(i));
    const CellSpec& s2 = back.spec(SpecId(i));
    EXPECT_EQ(s1.name, s2.name);
    EXPECT_EQ(s1.kind, s2.kind);
    EXPECT_EQ(s1.drive, s2.drive);
    EXPECT_NEAR(s1.leakage.v, s2.leakage.v, s1.leakage.v * 1e-9 + 1e-20);
    EXPECT_NEAR(s1.input_cap.v, s2.input_cap.v, 1e-20);
    EXPECT_NEAR(s1.intrinsic_delay.v, s2.intrinsic_delay.v, 1e-18);
    if (s1.is_header()) {
      EXPECT_NEAR(s1.header_ron.v, s2.header_ron.v, 1e-9);
      EXPECT_NEAR(s1.header_gate_cap.v, s2.header_gate_cap.v, 1e-22);
    }
    if (s1.is_sequential()) {
      EXPECT_NEAR(s1.setup.v, s2.setup.v, 1e-18);
      EXPECT_NEAR(s1.clk_to_q.v, s2.clk_to_q.v, 1e-18);
    }
  }
}

TEST(Liberty, ParseErrorsCarryLineNumbers) {
  EXPECT_THROW((void)read_liberty_string("library scpg90 {"), ParseError);
  EXPECT_THROW((void)read_liberty_string("library(x) { cell(A) { kind INV; } }"),
               ParseError); // missing tech block
  try {
    read_liberty_string(
        "library(x) {\n  tech { vdd_nom 1.0; vt 0.2; }\n  cell(A) {\n"
        "    kind BOGUS;\n  }\n}");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);
  }
}

TEST(Liberty, CommentsAreIgnored) {
  const Library lib = read_liberty_string(
      "# leading comment\nlibrary(x) {\n  tech { vdd_nom 1.0; vt 0.2; "
      "alpha 1.5; n_vt 0.04; }\n  # mid comment\n  cell(INV_T) { kind INV; "
      "leakage_nw 10; }\n}");
  EXPECT_TRUE(lib.find("INV_T").has_value());
}

} // namespace
} // namespace scpg
