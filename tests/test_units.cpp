#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <sstream>

namespace scpg {
namespace {

using namespace scpg::literals;

TEST(Units, LiteralsProduceSiValues) {
  EXPECT_DOUBLE_EQ((0.6_V).v, 0.6);
  EXPECT_DOUBLE_EQ((600.0_mV).v, 0.6);
  EXPECT_DOUBLE_EQ((2.0_MHz).v, 2e6);
  EXPECT_DOUBLE_EQ((10.0_kHz).v, 1e4);
  EXPECT_DOUBLE_EQ((5.0_pJ).v, 5e-12);
  EXPECT_DOUBLE_EQ((30.0_uW).v, 3e-5);
  EXPECT_DOUBLE_EQ((2.5_fF).v, 2.5e-15);
  EXPECT_DOUBLE_EQ((4.0_kOhm).v, 4e3);
  EXPECT_DOUBLE_EQ((100.0_um2).v, 1e-10);
}

TEST(Units, DimensionalComposition) {
  const Power p = 0.6_V * 50.0_uA;
  EXPECT_NEAR(in_uW(p), 30.0, 1e-12);

  const Energy e = 30.0_uW * 1.0_us;
  EXPECT_NEAR(in_pJ(e), 30.0, 1e-9);

  const Energy cv2 = 10.0_fF * 0.6_V * 0.6_V;
  EXPECT_NEAR(in_fJ(cv2), 3.6, 1e-9);

  const Time rc = 1.0_kOhm * 1.0_pF;
  EXPECT_NEAR(in_ns(rc), 1.0, 1e-12);

  EXPECT_NEAR(period(2.0_MHz).v, 500e-9, 1e-18);
  EXPECT_NEAR(frequency(100.0_ns).v, 1e7, 1e-3);
}

TEST(Units, ComparisonAndArithmetic) {
  EXPECT_LT(1.0_uW, 2.0_uW);
  EXPECT_EQ(ratio(4.0_pJ, 2.0_pJ), 2.0);
  Power p = 1.0_uW;
  p += 2.0_uW;
  p *= 2.0;
  EXPECT_NEAR(in_uW(p), 6.0, 1e-12);
  EXPECT_NEAR(in_uW(-p + 10.0_uW), 4.0, 1e-12);
}

TEST(Errors, RequireThrowsWithContext) {
  try {
    SCPG_REQUIRE(false, "my message");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("my message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(Errors, ParseErrorCarriesLine) {
  const ParseError e("bad token", 42);
  EXPECT_EQ(e.line(), 42);
  EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng r(7);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BitsMasksWidth) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.bits(16), 1u << 16);
  EXPECT_EQ(r.bits(0), 0u);
  EXPECT_THROW((void)r.bits(65), PreconditionError);
}

TEST(Numeric, BisectFindsRoot) {
  const double x = bisect([](double v) { return v * v - 2.0; }, 0, 2);
  EXPECT_NEAR(x, std::sqrt(2.0), 1e-6);
}

TEST(Numeric, BisectRejectsUnbracketed) {
  EXPECT_THROW((void)bisect([](double v) { return v * v + 1.0; }, -1, 1),
               InfeasibleError);
}

TEST(Numeric, GoldenMinFindsMinimum) {
  const double x =
      golden_min([](double v) { return (v - 1.3) * (v - 1.3); }, -10, 10);
  EXPECT_NEAR(x, 1.3, 1e-5);
}

TEST(Numeric, LinearTableInterpolatesAndClamps) {
  const LinearTable t({0, 1, 2}, {0, 10, 40});
  EXPECT_DOUBLE_EQ(t.at(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t.at(1.5), 25.0);
  EXPECT_DOUBLE_EQ(t.at(-1), 0.0);
  EXPECT_DOUBLE_EQ(t.at(3), 40.0);
}

TEST(Numeric, LinearTableRejectsUnsortedX) {
  EXPECT_THROW((void)LinearTable({1, 0}, {0, 1}), PreconditionError);
  EXPECT_THROW((void)LinearTable({0, 0}, {0, 1}), PreconditionError);
}

TEST(Numeric, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_NEAR(stddev({1, 2, 3}), std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_THROW((void)mean({}), PreconditionError);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  TextTable t("title");
  t.header({"a", "long_column"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("long_column"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t;
  t.header({"a", "b"});
  EXPECT_THROW((void)t.row({"only-one"}), PreconditionError);
}

TEST(Table, CsvEscapesCommas) {
  TextTable t;
  t.header({"a", "b"});
  t.row({"x,y", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(10.0, 0), "10");
}

TEST(Chart, RendersAllSeries) {
  AsciiChart c("chart", 32, 8);
  c.series("one", {0, 1, 2}, {0, 1, 4});
  c.series("two", {0, 1, 2}, {4, 1, 0});
  std::ostringstream os;
  c.print(os);
  EXPECT_NE(os.str().find("one"), std::string::npos);
  EXPECT_NE(os.str().find("two"), std::string::npos);
  EXPECT_NE(os.str().find('o'), std::string::npos);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

} // namespace
} // namespace scpg
