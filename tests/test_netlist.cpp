#include <gtest/gtest.h>

#include "gen/arith.hpp"
#include "netlist/builder.hpp"
#include "netlist/funcsim.hpp"
#include "netlist/netlist.hpp"
#include "netlist/report.hpp"
#include "netlist/verilog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <sstream>

namespace scpg {
namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

// ---------------------------------------------------------------------------
// Structure
// ---------------------------------------------------------------------------

TEST(Netlist, BuildAndCheckSimpleGate) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_net("y");
  nl.add_cell("g0", lib().pick(CellKind::Nand2), {a, b}, y);
  nl.add_output("y", y);
  EXPECT_NO_THROW(nl.check());
  EXPECT_EQ(nl.num_cells(), 1u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.num_ports(), 3u);
}

TEST(Netlist, RejectsMultipleDrivers) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  nl.add_cell("g0", lib().pick(CellKind::Inv), {a}, y);
  EXPECT_THROW((void)nl.add_cell("g1", lib().pick(CellKind::Inv), {a}, y),
               NetlistError);
}

TEST(Netlist, RejectsUndrivenNet) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId floating = nl.add_net("floating");
  const NetId y = nl.add_net("y");
  nl.add_cell("g0", lib().pick(CellKind::Nand2), {a, floating}, y);
  EXPECT_THROW((void)nl.check(), NetlistError);
}

TEST(Netlist, DetectsCombinationalLoop) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_cell("g0", lib().pick(CellKind::Nand2), {a, y}, x);
  nl.add_cell("g1", lib().pick(CellKind::Inv), {x}, y);
  EXPECT_THROW((void)nl.check(), NetlistError);
}

TEST(Netlist, CheckErrorsNameTheOffenders) {
  // check() messages route through structural_diagnostics(), so they name
  // the actual nets and cells instead of just counting them.
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId floating = nl.add_net("floaty");
  const NetId y = nl.add_net("y");
  nl.add_cell("g_reader", lib().pick(CellKind::Nand2), {a, floating}, y);
  nl.add_output("y", y);
  try {
    nl.check();
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SCPG007"), std::string::npos) << what;
    EXPECT_NE(what.find("'floaty'"), std::string::npos) << what;
    EXPECT_NE(what.find("'g_reader'"), std::string::npos) << what;
  }
}

TEST(Netlist, StructuralDiagnosticsLocateUndrivenNet) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId floating = nl.add_net("floaty");
  const NetId y = nl.add_net("y");
  nl.add_cell("g0", lib().pick(CellKind::Nand2), {a, floating}, y);
  nl.add_output("y", y);
  const std::vector<Diagnostic> ds = nl.structural_diagnostics();
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "SCPG007");
  EXPECT_EQ(ds[0].severity, Severity::Error);
  ASSERT_FALSE(ds[0].where.empty());
  EXPECT_EQ(ds[0].where.front().kind, DiagLoc::Kind::Net);
  EXPECT_EQ(ds[0].where.front().name, "floaty");
}

TEST(Netlist, StructuralDiagnosticsNameTheLoopCycle) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_cell("g_loop0", lib().pick(CellKind::Nand2), {a, y}, x);
  nl.add_cell("g_loop1", lib().pick(CellKind::Inv), {x}, y);
  nl.add_output("y", y);
  const std::vector<Diagnostic> ds = nl.structural_diagnostics();
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "SCPG008");
  EXPECT_NE(ds[0].message.find("g_loop0"), std::string::npos)
      << ds[0].message;
  EXPECT_NE(ds[0].message.find("g_loop1"), std::string::npos)
      << ds[0].message;
  EXPECT_GE(ds[0].where.size(), 2u);
}

TEST(Netlist, StructuralDiagnosticsCleanOnValidDesign) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  nl.add_cell("g0", lib().pick(CellKind::Inv), {a}, y);
  nl.add_output("y", y);
  EXPECT_TRUE(nl.structural_diagnostics().empty());
}

TEST(Netlist, LoopThroughFlopIsFine) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  // q = DFF(!q): toggle flop.
  const NetId q = nl.add_net("q");
  const NetId d = b.NOT(q);
  nl.add_cell("ff", lib().pick(CellKind::Dff), {d, clk}, q);
  b.output("q", q);
  EXPECT_NO_THROW(nl.check());
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const NetId n1 = b.NOT(a);
  const NetId n2 = b.NOT(n1);
  const NetId n3 = b.AND(n1, n2);
  b.output("y", n3);
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), 3u);
  std::vector<std::uint32_t> pos(nl.num_cells());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].v] = i;
  const CellId c1 = nl.net(n1).driver_cell;
  const CellId c2 = nl.net(n2).driver_cell;
  const CellId c3 = nl.net(n3).driver_cell;
  EXPECT_LT(pos[c1.v], pos[c2.v]);
  EXPECT_LT(pos[c2.v], pos[c3.v]);
}

TEST(Netlist, WrongInputCountRejected) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  EXPECT_THROW((void)nl.add_cell("g", lib().pick(CellKind::Nand2), {a}, nl.add_net("y")),
      PreconditionError);
}

TEST(Netlist, StatsCountKindsAndDomains) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId a = b.input("a");
  const NetId n = b.NOT(a);
  const NetId q = b.dff(n, clk);
  b.output("q", q);
  nl.cell(nl.net(n).driver_cell).domain = Domain::Gated;

  const DesignStats s = compute_stats(nl);
  EXPECT_EQ(s.num_cells, 2u);
  EXPECT_EQ(s.num_comb_cells, 1u);
  EXPECT_EQ(s.num_flops, 1u);
  EXPECT_EQ(s.cells_gated, 1u);
  EXPECT_EQ(s.cells_always_on, 1u);
  EXPECT_GT(s.area.v, 0.0);
  EXPECT_GT(s.nominal_leakage.v, 0.0);

  std::ostringstream os;
  print_stats(s, os, "stats");
  EXPECT_NE(os.str().find("flops 1"), std::string::npos);
}

TEST(Netlist, NetLoadGrowsWithFanout) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const Capacitance c0 = nl.net_load(a);
  b.output("y1", b.NOT(a));
  const Capacitance c1 = nl.net_load(a);
  b.output("y2", b.NOT(a));
  const Capacitance c2 = nl.net_load(a);
  EXPECT_GT(c1.v, c0.v);
  EXPECT_GT(c2.v, c1.v);
}

TEST(Netlist, KindHistogram) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  b.output("x", b.NOT(a));
  b.output("y", b.NOT(a));
  b.output("z", b.AND(a, a));
  const auto h = nl.kind_histogram();
  EXPECT_EQ(h.at("INV"), 2);
  EXPECT_EQ(h.at("AND2"), 1);
}

// ---------------------------------------------------------------------------
// Builder helpers
// ---------------------------------------------------------------------------

TEST(Builder, TieCellsAreShared) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId t1 = b.tie_hi();
  const NetId t2 = b.tie_hi();
  EXPECT_EQ(t1, t2);
  EXPECT_NE(b.tie_lo(), t1);
}

TEST(Builder, BusOpsValidateWidth) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus a = b.input_bus("a", 4);
  const Bus c = b.input_bus("c", 3);
  EXPECT_THROW((void)b.and_bus(a, c), PreconditionError);
  EXPECT_THROW((void)b.const_bus(16, 4), PreconditionError);
}

TEST(Builder, EqualConstMatchesExactValue) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus a = b.input_bus("a", 4);
  b.output("m", b.equal_const(a, 0b1010));
  nl.check();
  FuncSim sim(nl);
  sim.reset();
  for (std::uint64_t v = 0; v < 16; ++v) {
    sim.set_input_bus("a", v, 4);
    sim.eval();
    EXPECT_EQ(sim.output("m"), from_bool(v == 0b1010)) << v;
  }
}

// ---------------------------------------------------------------------------
// FuncSim
// ---------------------------------------------------------------------------

TEST(FuncSim, CombinationalSettling) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  b.output("y", b.XOR(a, c));
  nl.check();
  FuncSim sim(nl);
  for (int av = 0; av < 2; ++av)
    for (int bv = 0; bv < 2; ++bv) {
      sim.set_input("a", from_bool(av));
      sim.set_input("b", from_bool(bv));
      sim.eval();
      EXPECT_EQ(sim.output("y"), from_bool(av != bv));
    }
}

TEST(FuncSim, FlopCapturesOnClock) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId d = b.input("d");
  b.output("q", b.dff(d, clk));
  nl.check();
  FuncSim sim(nl);
  sim.reset();
  sim.set_input("d", Logic::L1);
  sim.eval();
  EXPECT_EQ(sim.output("q"), Logic::L0); // not yet clocked
  sim.clock();
  EXPECT_EQ(sim.output("q"), Logic::L1);
  sim.set_input("d", Logic::L0);
  sim.eval();
  EXPECT_EQ(sim.output("q"), Logic::L1); // holds
  sim.clock();
  EXPECT_EQ(sim.output("q"), Logic::L0);
  (void)clk;
}

TEST(FuncSim, AsyncResetDominates) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId rn = b.input("rn");
  const NetId d = b.input("d");
  b.output("q", b.dffr(d, clk, rn));
  nl.check();
  FuncSim sim(nl);
  sim.reset();
  sim.set_input("d", Logic::L1);
  sim.set_input("rn", Logic::L1);
  sim.clock();
  EXPECT_EQ(sim.output("q"), Logic::L1);
  sim.set_input("rn", Logic::L0);
  sim.eval();
  EXPECT_EQ(sim.output("q"), Logic::L0); // async clear
  sim.clock();
  EXPECT_EQ(sim.output("q"), Logic::L0); // held in reset
  (void)clk;
}

TEST(FuncSim, ToggleFlopDividesByTwo) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId q = nl.add_net("q");
  const NetId d = b.NOT(q);
  nl.add_cell("ff", lib().pick(CellKind::Dff), {d, clk}, q);
  b.output("q", q);
  nl.check();
  FuncSim sim(nl);
  sim.reset();
  sim.eval();
  Logic prev = sim.output("q");
  for (int i = 0; i < 6; ++i) {
    sim.clock();
    EXPECT_NE(sim.output("q"), prev);
    prev = sim.output("q");
  }
}

TEST(FuncSim, RippleAdderMatchesIntegerAdd) {
  Netlist nl("t", lib());
  Builder b(nl);
  const Bus a = b.input_bus("a", 8);
  const Bus c = b.input_bus("b", 8);
  const auto r = gen::ripple_add(b, a, c);
  b.output_bus("s", r.sum);
  b.output("cout", r.carry);
  nl.check();
  FuncSim sim(nl);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t av = rng.bits(8), bv = rng.bits(8);
    sim.set_input_bus("a", av, 8);
    sim.set_input_bus("b", bv, 8);
    sim.eval();
    EXPECT_EQ(sim.read_bus("s", 8), (av + bv) & 0xFF);
    EXPECT_EQ(sim.output("cout"), from_bool((av + bv) > 0xFF));
  }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

class XorMacro final : public MacroModel {
public:
  void eval(std::span<const Logic> in, std::span<Logic> out) override {
    if (is_known(in[0]) && is_known(in[1]))
      out[0] = from_bool(to_bool(in[0]) != to_bool(in[1]));
    else
      out[0] = Logic::X;
  }
};

MacroSpec xor_macro_spec() {
  MacroSpec m;
  m.type_name = "XORM";
  m.num_inputs = 2;
  m.num_outputs = 1;
  m.make_model = [] { return std::make_unique<XorMacro>(); };
  return m;
}

TEST(FuncSim, MacroEvaluatesCombinationally) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_net("y");
  const auto mi = nl.add_macro_spec(xor_macro_spec());
  nl.add_macro_cell("m0", mi, {a, b}, {y});
  nl.add_output("y", y);
  nl.check();
  FuncSim sim(nl);
  sim.set_input("a", Logic::L1);
  sim.set_input("b", Logic::L0);
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic::L1);
}

TEST(Netlist, MacroPinCountValidated) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const auto mi = nl.add_macro_spec(xor_macro_spec());
  EXPECT_THROW((void)nl.add_macro_cell("m0", mi, {a}, {nl.add_net("y")}),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Verilog round trip
// ---------------------------------------------------------------------------

TEST(Verilog, FlatRoundTripPreservesFunction) {
  Netlist nl("rt", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const Bus a = b.input_bus("a", 4);
  const Bus c = b.input_bus("b", 4);
  const auto sum = gen::ripple_add(b, a, c);
  const Bus q = b.dff_bus(sum.sum, clk);
  b.output_bus("s", q);
  nl.check();

  const std::string text = write_verilog_string(nl);
  Netlist back = read_verilog_string(text, lib());
  EXPECT_EQ(back.name(), "rt");
  EXPECT_EQ(back.num_cells(), nl.num_cells());
  EXPECT_EQ(back.num_ports(), nl.num_ports());

  FuncSim s1(nl), s2(back);
  s1.reset();
  s2.reset();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t av = rng.bits(4), bv = rng.bits(4);
    s1.set_input_bus("a", av, 4);
    s2.set_input_bus("a", av, 4);
    s1.set_input_bus("b", bv, 4);
    s2.set_input_bus("b", bv, 4);
    s1.clock();
    s2.clock();
    EXPECT_EQ(s1.read_bus("s", 4), s2.read_bus("s", 4));
  }
}

TEST(Verilog, EscapedIdentifiersRoundTrip) {
  Netlist nl("esc", lib());
  Builder b(nl);
  const Bus a = b.input_bus("a", 2); // creates a[0], a[1]
  b.output("y", b.AND(a[0], a[1]));
  nl.check();
  const std::string text = write_verilog_string(nl);
  EXPECT_NE(text.find("\\a[0] "), std::string::npos);
  Netlist back = read_verilog_string(text, lib());
  EXPECT_TRUE(back.find_port("a[0]").valid());
}

TEST(Verilog, GatedAttributeRoundTrips) {
  Netlist nl("ga", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const NetId y1 = b.NOT(a);
  const NetId y2 = b.NOT(y1);
  b.output("y", y2);
  nl.check();
  nl.cell(nl.net(y1).driver_cell).domain = Domain::Gated;

  const std::string text = write_verilog_string(nl);
  EXPECT_NE(text.find("(* gated *)"), std::string::npos);
  Netlist back = read_verilog_string(text, lib());
  int gated = 0;
  for (std::uint32_t ci = 0; ci < back.num_cells(); ++ci)
    if (back.cell(CellId{ci}).domain == Domain::Gated) ++gated;
  EXPECT_EQ(gated, 1);
}

TEST(Verilog, UnknownAttributeRejected) {
  const std::string text =
      "module m (a, y);\n input a; output y;\n"
      " (* bogus *) INV_X1 g (.A(a), .Y(y));\nendmodule\n";
  EXPECT_THROW((void)read_verilog_string(text, lib()), ParseError);
}

TEST(Verilog, ReaderRejectsUnknownCell) {
  const std::string text =
      "module m (a, y);\n input a; output y;\n BOGUS_X1 g (.A(a), .Y(y));\n"
      "endmodule\n";
  EXPECT_THROW((void)read_verilog_string(text, lib()), ParseError);
}

TEST(Verilog, ReaderRejectsUnconnectedPin) {
  const std::string text =
      "module m (a, y);\n input a; output y;\n NAND2_X1 g (.A(a), .Y(y));\n"
      "endmodule\n";
  EXPECT_THROW((void)read_verilog_string(text, lib()), ParseError);
}

TEST(Verilog, CommentsAndWhitespaceTolerated) {
  const std::string text =
      "// comment\nmodule m (a, y);\n/* block\ncomment */ input a;\n"
      "output y;\n  INV_X1 g0 (.A(a), .Y(y));\nendmodule\n";
  Netlist nl = read_verilog_string(text, lib());
  EXPECT_EQ(nl.num_cells(), 1u);
}

TEST(Verilog, SplitDomainsEmitsChildModule) {
  Netlist nl("top", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId a = b.input("a");
  const NetId q0 = b.dff(a, clk);
  const NetId inv = b.NOT(q0);
  const NetId q1 = b.dff(inv, clk);
  b.output("y", q1);
  nl.check();
  nl.cell(nl.net(inv).driver_cell).domain = Domain::Gated;

  const std::string text =
      write_verilog_string(nl, {.split_domains = true});
  EXPECT_NE(text.find("module top_pd_comb"), std::string::npos);
  EXPECT_NE(text.find("u_pd_comb"), std::string::npos);
  // The gated inverter lives in the child module, before the top module.
  const auto child_pos = text.find("module top_pd_comb");
  const auto top_pos = text.find("module top (");
  const auto inv_pos = text.find("INV_X1");
  EXPECT_LT(child_pos, inv_pos);
  EXPECT_LT(inv_pos, top_pos);
}

TEST(Report, DotExportContainsCellsAndDomains) {
  Netlist nl("d", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const NetId y = b.NOT(a);
  b.output("y", y);
  nl.cell(nl.net(y).driver_cell).domain = Domain::Gated;
  std::ostringstream os;
  write_dot(nl, os);
  EXPECT_NE(os.str().find("digraph"), std::string::npos);
  EXPECT_NE(os.str().find("lightblue"), std::string::npos);
}

} // namespace
} // namespace scpg
