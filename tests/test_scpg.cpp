#include <gtest/gtest.h>

#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "netlist/builder.hpp"
#include "netlist/funcsim.hpp"
#include "scpg/analysis.hpp"
#include "scpg/header_sizing.hpp"
#include "scpg/model.hpp"
#include "scpg/rail_model.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

SimConfig cfg06() {
  SimConfig c;
  c.corner = {0.6_V, 25.0};
  return c;
}

// ---------------------------------------------------------------------------
// Transform structure
// ---------------------------------------------------------------------------

TEST(Transform, InsertsFabricAndTagsDomains) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  const std::size_t flops = nl.flops().size();
  ScpgInfo info = apply_scpg(nl);

  EXPECT_EQ(info.headers.size(), 4u);
  EXPECT_GT(info.cells_gated, 100u);
  // Every flop D input crosses the domain boundary -> one iso per product
  // bit register (8x8 -> 16 product flops), none on the input registers.
  EXPECT_EQ(info.isolation_cells, 16u);
  EXPECT_EQ(info.buffer_cells, 16u); // a/b input registers feeding the array
  EXPECT_EQ(flops, nl.flops().size());
  EXPECT_TRUE(info.clk.valid());
  EXPECT_TRUE(info.override_n.valid());
  EXPECT_TRUE(info.sense.valid());
  EXPECT_NE(info.niso, info.clk);

  // Flops stay always-on; the sense tie is gated.
  for (CellId f : nl.flops())
    EXPECT_EQ(nl.cell(f).domain, Domain::AlwaysOn);
  EXPECT_EQ(nl.cell(nl.net(info.sense).driver_cell).domain, Domain::Gated);
  EXPECT_NO_THROW(nl.check());
}

TEST(Transform, AreaOverheadInPaperRange) {
  Netlist nl = gen::make_multiplier(lib(), 16);
  ScpgInfo info = apply_scpg(nl);
  // Paper: ~3.9% for the multiplier; our substitution keeps it single-digit.
  EXPECT_GT(info.area_overhead(), 0.01);
  EXPECT_LT(info.area_overhead(), 0.10);
}

TEST(Transform, RequiresClockPort) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  b.output("y", b.NOT(a));
  nl.check();
  EXPECT_THROW((void)apply_scpg(nl), PreconditionError);
}

TEST(Transform, RejectsDoubleApplication) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  apply_scpg(nl);
  EXPECT_THROW((void)apply_scpg(nl), PreconditionError);
}

TEST(Transform, ClockTreeStaysAlwaysOn) {
  // Clock passes through a buffer tree; those buffers must not be gated.
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId clkb = b.BUF(clk);
  const NetId d = b.input("d");
  const NetId q = b.dff(b.NOT(d), clkb);
  b.output("q", q);
  nl.check();
  apply_scpg(nl);
  const CellId buf = nl.net(clkb).driver_cell;
  EXPECT_EQ(nl.cell(buf).domain, Domain::AlwaysOn);
}

// ---------------------------------------------------------------------------
// Functional equivalence (property tests over random vectors)
// ---------------------------------------------------------------------------

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceTest, TransformPreservesFunctionWithOverride) {
  const int width = GetParam();
  Netlist golden = gen::make_multiplier(lib(), width);
  Netlist gated = gen::make_multiplier(lib(), width);
  apply_scpg(gated);

  FuncSim s1(golden), s2(gated);
  s1.reset();
  s2.reset();
  // Zero-delay functional check: hold the clock low (isolation transparent)
  // and disable gating through the override.
  s1.set_input("clk", Logic::L0);
  s2.set_input("clk", Logic::L0);
  s2.set_input("override_n", Logic::L0);

  Rng rng(0xA5A5 + std::uint64_t(width));
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t a = rng.bits(width), b = rng.bits(width);
    s1.set_input_bus("a", a, width);
    s2.set_input_bus("a", a, width);
    s1.set_input_bus("b", b, width);
    s2.set_input_bus("b", b, width);
    s1.clock();
    s2.clock();
    s1.clock();
    s2.clock();
    ASSERT_EQ(s1.read_bus("p", 2 * width), s2.read_bus("p", 2 * width))
        << "width " << width << " vectors " << a << " x " << b;
    ASSERT_EQ(s1.read_bus("p", 2 * width), (a * b));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, EquivalenceTest,
                         ::testing::Values(4, 6, 8, 12, 16));

// The decisive test: with gating ACTIVE, at a frequency where SCPG is
// feasible, the timed simulation still computes correct products every
// cycle — power gating inside the clock cycle must be functionally
// invisible.
class GatedOperationTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GatedOperationTest, GatedMultiplierComputesCorrectProducts) {
  const auto [f_mhz, duty] = GetParam();
  Netlist nl = gen::make_multiplier(lib(), 16);
  apply_scpg(nl);

  Simulator sim(nl, cfg06());
  sim.init_flops_to_zero();
  sim.drive_at(0, nl.port_net("override_n"), Logic::L1); // gating ON
  const Frequency f{f_mhz * 1e6};
  const SimTime T = to_fs(period(f));
  const SimTime first_rise = SimTime(double(T) * (1.0 - duty));
  sim.add_clock(nl.port_net("clk"), f, duty, first_rise);

  Rng rng(99);
  // Operands applied after edge k are captured at k+1, the product is
  // registered at k+2 and is stable when read at edge k+3.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hist;
  int cycle = 0;
  int checked = 0;
  sim.on_rising_edge(nl.port_net("clk"), [&] {
    if (cycle >= 3) {
      const auto [ea, eb] = hist[std::size_t(cycle - 3)];
      EXPECT_EQ(sim.read_bus("p", 32), ea * eb)
          << "cycle " << cycle << " at " << f_mhz << " MHz duty " << duty;
      ++checked;
    }
    const std::uint64_t a = rng.bits(16), b = rng.bits(16);
    hist.emplace_back(a, b);
    sim.drive_bus_at(sim.now() + T / 16, "a", a, 16);
    sim.drive_bus_at(sim.now() + T / 16, "b", b, 16);
    ++cycle;
  });
  sim.run_until(first_rise + T * 20);
  EXPECT_GE(checked, 16);
  EXPECT_TRUE(sim.has_gated_domain());
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, GatedOperationTest,
    ::testing::Values(std::make_pair(0.01, 0.5), std::make_pair(0.1, 0.5),
                      std::make_pair(1.0, 0.5), std::make_pair(5.0, 0.5),
                      std::make_pair(1.0, 0.9), std::make_pair(0.1, 0.97),
                      std::make_pair(10.0, 0.5)));

// Ablation: without isolation cells, the X from the collapsed domain
// reaches always-on register inputs mid-cycle (mid-rail voltages burning
// short-circuit current) — exactly what the paper inserts clamps to
// prevent.  With isolation, every flop D pin stays at a known value.
int count_x_flop_inputs(const Netlist& nl, const Simulator& sim) {
  int n = 0;
  for (CellId f : nl.flops())
    if (!is_known(sim.value(nl.cell(f).inputs[0]))) ++n;
  return n;
}

Simulator& run_to_mid_high_phase(Simulator& sim) {
  const Netlist& nl = sim.netlist();
  const Frequency f = 100.0_kHz;
  const SimTime T = to_fs(period(f));
  sim.init_flops_to_zero();
  sim.drive_at(0, nl.port_net("override_n"), Logic::L1);
  sim.add_clock(nl.port_net("clk"), f, 0.5, T / 2);
  sim.drive_bus_at(0, "a", 3, 8);
  sim.drive_bus_at(0, "b", 5, 8);
  // Stop 3/4 into a high phase, well past the corrupt threshold.
  sim.run_until(T * 5 + T / 2 + (3 * T) / 8);
  return sim;
}

TEST(GatedOperation, WithoutIsolationXReachesRegisterInputs) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  ScpgOptions opt;
  opt.insert_isolation = false;
  apply_scpg(nl, opt);
  Simulator sim(nl, cfg06());
  run_to_mid_high_phase(sim);
  EXPECT_GT(count_x_flop_inputs(nl, sim), 0);
}

TEST(GatedOperation, WithIsolationRegisterInputsStayClamped) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  apply_scpg(nl);
  Simulator sim(nl, cfg06());
  run_to_mid_high_phase(sim);
  EXPECT_EQ(count_x_flop_inputs(nl, sim), 0);
}

TEST(GatedOperation, MissingIsolationCostsLeakagePower) {
  // The mid-rail inputs burn extra static power (x_input_leak_penalty);
  // the isolated design avoids it.
  auto avg_power = [](bool iso) {
    Netlist nl = gen::make_multiplier(lib(), 8);
    ScpgOptions opt;
    opt.insert_isolation = iso;
    apply_scpg(nl, opt);
    Rng rng(4);
    engine::SweepSpec spec;
    spec.design(nl).frequency(10.0_kHz).cycles(8).jobs(1).use_cache(false);
    spec.stimulus([&rng](Simulator& s, int, Rng&) {
      s.drive_bus_at(s.now() + to_fs(1.0_us), "a", rng.bits(8), 8);
      s.drive_bus_at(s.now() + to_fs(1.0_us), "b", rng.bits(8), 8);
    });
    return engine::Experiment(std::move(spec)).run()[0].avg_power;
  };
  EXPECT_GT(avg_power(false).v, avg_power(true).v * 1.05);
}

// ---------------------------------------------------------------------------
// Rail model closed forms
// ---------------------------------------------------------------------------

RailParams test_rail() {
  RailParams r;
  r.c_dom = 4.0_pF;
  r.ron_eff = Resistance{50.0};
  r.p_gated = 25.0_uW;
  r.p_hdr_off = 0.2_uW;
  r.hdr_gate_cap = 200_fF;
  r.gated_cells = 1000;
  r.vdd = 0.6_V;
  r.crowbar_full = 0.3_pJ;
  return r;
}

TEST(RailModel, DecayAndChargeShapes) {
  const RailParams r = test_rail();
  EXPECT_NEAR(in_ns(r.tau_decay()), 4e-12 * 0.36 / 25e-6 * 1e9, 1e-6);
  EXPECT_NEAR(in_ns(r.tau_charge()), 0.2, 1e-9);
  // Decay is monotone toward 0.
  EXPECT_NEAR(r.v_after_off(Time{0.0}).v, 0.6, 1e-12);
  EXPECT_LT(r.v_after_off(50.0_ns).v, 0.6);
  EXPECT_GT(r.v_after_off(50.0_ns).v, r.v_after_off(500.0_ns).v);
  // One tau of decay leaves Vdd/e.
  EXPECT_NEAR(r.v_after_off(r.tau_decay()).v, 0.6 / std::exp(1.0), 1e-9);
  // Ready time from a full collapse ~ 3 tau_charge.
  EXPECT_NEAR(r.t_ready_from(Voltage{0.0}).v, r.tau_charge().v * std::log(20.0),
              1e-15);
  EXPECT_DOUBLE_EQ(r.t_ready_from(Voltage{0.59}).v, 0.0);
}

TEST(RailModel, EnergyBooksBalance) {
  // leak_energy_off + recharge_energy must equal the total supply draw
  // C*Vdd*dV for any off time (see rail_model.cpp).
  const RailParams r = test_rail();
  for (double toff_ns : {1.0, 10.0, 57.6, 200.0, 5000.0}) {
    const Time toff{toff_ns * 1e-9};
    const Voltage v0 = r.v_after_off(toff);
    const double supply = r.c_dom.v * r.vdd.v * (r.vdd.v - v0.v);
    const double books =
        r.leak_energy_off(toff).v + r.recharge_energy(v0).v;
    EXPECT_NEAR(books, supply, supply * 1e-9) << toff_ns;
  }
}

TEST(RailModel, LeakEnergySaturatesAtHalfCV2) {
  const RailParams r = test_rail();
  const double cap_energy = 0.5 * r.c_dom.v * r.vdd.v * r.vdd.v;
  EXPECT_NEAR(r.leak_energy_off(Time{1.0}).v, cap_energy, cap_energy * 1e-6);
}

TEST(RailModel, ChargePhaseLeakageApproachesFullLeakage) {
  const RailParams r = test_rail();
  // From a full rail (v0 = vdd) the "charge" phase is just normal leakage.
  const Energy e = r.leak_energy_on(100.0_ns, r.vdd);
  EXPECT_NEAR(e.v, r.p_gated.v * 100e-9, 1e-18);
  // From a collapsed rail, early leakage is suppressed.
  const Energy e2 = r.leak_energy_on(100.0_ns, Voltage{0.0});
  EXPECT_LT(e2.v, e.v);
}

TEST(RailModel, ExtractionMatchesDesign) {
  Netlist nl = gen::make_multiplier(lib(), 16);
  apply_scpg(nl);
  const RailParams r = extract_rail_params(nl, cfg06());
  EXPECT_GT(r.gated_cells, 1000u);
  const double rscale = lib().tech().resistance_scale(cfg06().corner);
  EXPECT_NEAR(r.ron_eff.v, 50.0 * rscale, 1e-9); // 4 x HDR_X2 (200 Ohm)
  EXPECT_GT(r.c_dom.v, 1e-12);
  EXPECT_GT(r.p_gated.v, 10e-6);
  EXPECT_LT(r.p_hdr_off.v, 1e-6);
}

// ---------------------------------------------------------------------------
// Analytic model + analysis
// ---------------------------------------------------------------------------

ScpgPowerModel mult_model() {
  static Netlist nl = [] {
    Netlist n = gen::make_multiplier(lib(), 16);
    apply_scpg(n);
    return n;
  }();
  return ScpgPowerModel::extract(nl, cfg06(), 3.7_pJ);
}

ScpgPowerModel mult_model_original() {
  static Netlist nl = gen::make_multiplier(lib(), 16);
  return ScpgPowerModel::extract(nl, cfg06(), 3.5_pJ);
}

TEST(Model, UngatedPowerIsAffineInFrequency) {
  const ScpgPowerModel m = mult_model();
  const Power p1 = m.average_power_ungated(1.0_MHz);
  const Power p2 = m.average_power_ungated(2.0_MHz);
  const Power p3 = m.average_power_ungated(3.0_MHz);
  EXPECT_NEAR((p3 - p2).v, (p2 - p1).v, 1e-12);
  EXPECT_GT(p1.v, 0.0);
}

TEST(Model, GatingSavesAtLowFrequencyNotAtHigh) {
  const ScpgPowerModel m = mult_model();
  EXPECT_LT(m.average_power_gated(10.0_kHz, 0.5).v,
            m.average_power_ungated(10.0_kHz).v);
  EXPECT_GT(m.average_power_gated(25.0_MHz, 0.5).v,
            m.average_power_ungated(25.0_MHz).v);
}

TEST(Model, HigherDutySavesMoreAtLowFrequency) {
  const ScpgPowerModel m = mult_model();
  EXPECT_LT(m.average_power_gated(10.0_kHz, 0.95).v,
            m.average_power_gated(10.0_kHz, 0.5).v);
}

TEST(Model, MaxDutyShrinksWithFrequency) {
  const ScpgPowerModel m = mult_model();
  EXPECT_GT(m.max_duty_high(10.0_kHz), 0.99);
  EXPECT_GT(m.max_duty_high(1.0_MHz), m.max_duty_high(10.0_MHz));
  EXPECT_TRUE(m.feasible(1.0_MHz, 0.5));
  EXPECT_FALSE(m.feasible(1.0_MHz, 0.999));
}

TEST(Model, ModeSelection) {
  const ScpgPowerModel m = mult_model();
  EXPECT_FALSE(m.duty_for(GatingMode::None, 1.0_MHz).has_value());
  EXPECT_EQ(m.duty_for(GatingMode::Scpg50, 1.0_MHz).value(), 0.5);
  EXPECT_GT(m.duty_for(GatingMode::ScpgMax, 10.0_kHz).value(), 0.9);
  // Near Fmax SCPG-Max drops below 50% duty (paper: "decreasing the duty
  // cycle").
  const auto d = m.duty_for(GatingMode::ScpgMax, 15.0_MHz);
  ASSERT_TRUE(d.has_value());
  EXPECT_LT(*d, 0.55);
}

TEST(Analysis, BudgetSolverMatchesDirectEvaluation) {
  const ScpgPowerModel m = mult_model();
  const Power budget = 35.0_uW;
  const Frequency f = max_frequency_for_budget(m, GatingMode::None, budget,
                                               1.0_kHz, 40.0_MHz);
  EXPECT_NEAR(m.average_power(GatingMode::None, f).v, budget.v,
              budget.v * 1e-4);
  // SCPG-Max fits a strictly higher frequency in the same budget.
  const Frequency fmax = max_frequency_for_budget(
      m, GatingMode::ScpgMax, budget, 1.0_kHz, 40.0_MHz);
  EXPECT_GT(fmax.v, f.v);
}

TEST(Analysis, BudgetBelowLeakageFloorIsInfeasible) {
  const ScpgPowerModel m = mult_model();
  EXPECT_THROW((void)max_frequency_for_budget(m, GatingMode::None, 1.0_uW,
                                        1.0_kHz, 40.0_MHz),
               InfeasibleError);
}

TEST(Analysis, ConvergenceNearPaperRange) {
  const ScpgPowerModel m = mult_model();
  const Frequency f = convergence_frequency(m, GatingMode::Scpg50, 100.0_kHz,
                                            40.0_MHz);
  // Paper: ~15 MHz for the multiplier; the first-order substrate should
  // land in the same regime.
  EXPECT_GT(in_MHz(f), 5.0);
  EXPECT_LT(in_MHz(f), 25.0);
}

TEST(Analysis, HarvesterScenarioShapes) {
  // Paper section III-A: with a ~30 uW harvester budget the unmodified
  // design crawls near its leakage floor while SCPG-Max runs tens of
  // times faster and more energy-efficiently.
  // The paper's 30 uW budget sits 2.6% above its design's leakage floor
  // (29.23 uW at 10 kHz); place our budget at the same relative margin
  // above our floor so the scenario is comparable.
  const Power budget =
      mult_model_original().average_power_ungated(1.0_kHz) * 1.026;
  const BudgetComparison c = compare_at_budget(
      mult_model_original(), mult_model(), budget, 1.0_kHz, 40.0_MHz);
  EXPECT_GT(c.speedup_50(), 5.0);
  EXPECT_GT(c.speedup_max(), 15.0);
  EXPECT_GT(c.energy_gain_max(), 10.0);
  EXPECT_GT(c.energy_gain_50(), 2.0);
  EXPECT_LT(c.scpg_max.energy.v, c.scpg50.energy.v);
  EXPECT_LT(c.scpg50.energy.v, c.none.energy.v);
}

// ---------------------------------------------------------------------------
// Header sizing (paper result S1: X2 for the multiplier)
// ---------------------------------------------------------------------------

TEST(HeaderSizing, EvaluationTradeoffs) {
  HeaderDemand d;
  d.i_eval = Current{130e-6};
  d.c_dom = 4.0_pF;
  d.vdd = 0.6_V;
  HeaderConstraints c;
  c.max_ir_frac = 0.05;
  c.max_inrush = Current{15e-3};
  const auto sweep = sweep_headers(lib(), 4, d, c, {0.6_V, 25.0});
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].ir_drop.v, sweep[i - 1].ir_drop.v);
    EXPECT_GT(sweep[i].inrush_peak.v, sweep[i - 1].inrush_peak.v);
    EXPECT_GT(sweep[i].off_leak.v, sweep[i - 1].off_leak.v);
    EXPECT_GT(sweep[i].area.v, sweep[i - 1].area.v);
  }
}

TEST(HeaderSizing, MultiplierPicksX2) {
  // The paper's §III result: X2 headers are the best choice for the
  // multiplier-scale domain under the in-rush budget.
  Netlist nl = gen::make_multiplier(lib(), 16);
  apply_scpg(nl);
  const RailParams r = extract_rail_params(nl, cfg06());
  HeaderDemand d;
  d.i_eval = Current{130e-6}; // ~E_dyn / (Vdd * T_eval)
  d.c_dom = r.c_dom;
  d.vdd = 0.6_V;
  HeaderConstraints c;
  c.max_ir_frac = 0.05;
  c.max_inrush = Current{8e-3};
  const HeaderEval choice = choose_header(lib(), 4, d, c, {0.6_V, 25.0});
  EXPECT_EQ(choice.drive, 2);
}

TEST(HeaderSizing, LargerDomainPicksX4) {
  // CPU-scale demand (~3x the current) moves the optimum to X4 under a
  // proportionally larger in-rush budget — the paper's Cortex-M0 result.
  HeaderDemand d;
  d.i_eval = Current{420e-6};
  d.c_dom = 15.0_pF;
  d.vdd = 0.6_V;
  HeaderConstraints c;
  c.max_ir_frac = 0.05;
  c.max_inrush = Current{15e-3};
  const HeaderEval choice = choose_header(lib(), 4, d, c, {0.6_V, 25.0});
  EXPECT_EQ(choice.drive, 4);
}

TEST(HeaderSizing, InfeasibleConstraintsThrow) {
  HeaderDemand d;
  d.i_eval = Current{10e-3}; // absurd demand
  d.c_dom = 4.0_pF;
  d.vdd = 0.6_V;
  HeaderConstraints c;
  c.max_ir_frac = 0.001;
  c.max_inrush = Current{1e-3};
  EXPECT_THROW((void)choose_header(lib(), 4, d, c, {0.6_V, 25.0}),
               InfeasibleError);
}

} // namespace
} // namespace scpg
