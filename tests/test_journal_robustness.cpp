// Adversarial-input tests for the campaign journal and frame layer,
// alongside test_parse_robustness.cpp's coverage of the other parsers:
// truncated, bit-flipped, and hostile-but-well-formed journals must
// produce located ParseErrors (or, for the unique torn-tail shape, a
// clean tolerated drop) — never a crash, never a silent partial resume.
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "campaign/coordinator.hpp"
#include "campaign/frame.hpp"
#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "gen/mult16.hpp"
#include "netlist/verilog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace scpg;

namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

campaign::CampaignSpec small_spec() {
  static const std::string path = [] {
    const std::string p = testing::TempDir() + "journal_mult4_" +
                          std::to_string(::getpid()) + ".v";
    std::ofstream os(p);
    write_verilog(gen::make_multiplier(lib(), 4), os);
    return p;
  }();
  campaign::CampaignSpec s;
  s.netlist_path = path;
  s.points = 3;
  s.cycles = 4;
  s.seed = 11;
  return s;
}

/// One complete journal's bytes, produced once by an in-process run.
const std::string& good_journal_text() {
  static const std::string text = [] {
    const std::string path = testing::TempDir() + "robust_good_" +
                             std::to_string(::getpid()) + ".journal";
    std::remove(path.c_str());
    const campaign::CampaignPlan plan =
        campaign::build_campaign(lib(), small_spec());
    campaign::CoordinatorOptions opt;
    opt.workers = 0;
    opt.journal_path = path;
    (void)run_campaign(plan, opt);
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }();
  return text;
}

// Paths carry the pid: ctest runs each case as its own process against
// the shared TempDir, so fixed names collide across parallel cases.
std::string write_temp(const std::string& text, const std::string& name) {
  const std::string path =
      testing::TempDir() + std::to_string(::getpid()) + "_" + name;
  std::ofstream(path, std::ios::binary) << text;
  return path;
}

enum class Outcome { Parses, Throws, ThrowsOrDropsTail };

Outcome tolerant_read(const std::string& path, std::size_t* entries = nullptr) {
  try {
    const campaign::JournalContents jc =
        campaign::read_journal(path, /*allow_torn_tail=*/true);
    if (entries != nullptr) *entries = jc.entries.size();
    return jc.dropped_torn_tail ? Outcome::ThrowsOrDropsTail : Outcome::Parses;
  } catch (const ParseError&) {
    return Outcome::Throws;
  }
}

// ---------------------------------------------------------------------------
// Truncation sweep: a journal cut anywhere must either parse as a clean
// shorter prefix (cut at a line boundary), or drop exactly the torn
// final line (tolerant mode) / throw (strict mode).  Never crash.

TEST(JournalRobustness, EveryTruncationIsCleanPrefixOrTornTail) {
  const std::string& good = good_journal_text();
  int boundary_cuts = 0, torn_cuts = 0;
  for (std::size_t cut = 0; cut <= good.size(); ++cut) {
    const std::string path =
        write_temp(good.substr(0, cut), "robust_trunc.journal");
    const bool at_boundary = cut == 0 || good[cut - 1] == '\n';
    try {
      const campaign::JournalContents jc =
          campaign::read_journal(path, /*allow_torn_tail=*/true);
      if (at_boundary) {
        EXPECT_FALSE(jc.dropped_torn_tail) << "cut " << cut;
        ++boundary_cuts;
      } else {
        EXPECT_TRUE(jc.dropped_torn_tail) << "cut " << cut;
        // The clean prefix must end on the previous line boundary.
        EXPECT_EQ(good[jc.clean_bytes == 0 ? 0 : jc.clean_bytes - 1],
                  jc.clean_bytes == 0 ? good[0] : '\n')
            << "cut " << cut;
        ++torn_cuts;
      }
    } catch (const ParseError&) {
      // Cutting inside the header line leaves no header at all — that
      // is an error even in tolerant mode, and correctly so.
      EXPECT_LT(cut, good.find('\n') + 1) << "cut " << cut;
    }
    // Strict mode: any non-boundary cut must throw.
    if (!at_boundary) {
      EXPECT_THROW(
          (void)campaign::read_journal(path, /*allow_torn_tail=*/false),
          ParseError)
          << "cut " << cut;
    }
  }
  EXPECT_GT(boundary_cuts, 2);
  EXPECT_GT(torn_cuts, 10);
}

// ---------------------------------------------------------------------------
// Bit-flip sweep: flipping any bit inside a complete line must be caught
// (CRC or stricter checks above it).  Flipping a newline merges or tears
// lines; both are caught or tolerated-as-torn, never silently accepted.

TEST(JournalRobustness, BitFlipsNeverParseSilently) {
  const std::string& good = good_journal_text();
  std::size_t good_entries = 0;
  ASSERT_EQ(tolerant_read(write_temp(good, "robust_ref.journal"),
                          &good_entries),
            Outcome::Parses);
  for (std::size_t pos = 0; pos < good.size(); pos += 7) {
    for (const unsigned char mask : {0x01, 0x20, 0x80}) {
      std::string bad = good;
      bad[pos] = char(bad[pos] ^ mask);
      const std::string path = write_temp(bad, "robust_flip.journal");
      std::size_t entries = 0;
      const Outcome o = tolerant_read(path, &entries);
      if (o == Outcome::Parses) {
        // The only acceptable silent parse: the flip landed in the FINAL
        // newline, turning the last record into a dropped torn tail —
        // impossible here because dropped_torn_tail reports that case —
        // or the flip produced an identical byte (mask made no change),
        // which cannot happen.  So a full parse must mean nothing
        // changed semantically; reject it outright.
        ADD_FAILURE() << "flip at " << pos << " mask " << int(mask)
                      << " parsed as a complete journal";
      }
      if (o == Outcome::ThrowsOrDropsTail) {
        // Torn-tail drop is only legitimate when the flip destroyed a
        // trailing newline; the surviving prefix must be strictly
        // shorter than the intact journal.
        EXPECT_LT(entries, good_entries)
            << "flip at " << pos << " mask " << int(mask);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hostile journals: frames with VALID CRCs but adversarial payloads.
// The CRC layer passes; the structural checks above it must fire.

struct HostileCase {
  const char* name;
  const char* payload; // extra frame appended after the good header
};

class JournalHostile : public testing::TestWithParam<HostileCase> {};

TEST_P(JournalHostile, IsRejectedWithParseError) {
  const std::string& good = good_journal_text();
  // Keep only the header line, then append the hostile frame.
  const std::string header = good.substr(0, good.find('\n') + 1);
  const std::string text =
      header + campaign::encode_frame(GetParam().payload);
  const std::string path = write_temp(text, "robust_hostile.journal");
  EXPECT_THROW((void)campaign::read_journal(path, /*allow_torn_tail=*/true),
               ParseError);
  EXPECT_THROW((void)campaign::read_journal(path, /*allow_torn_tail=*/false),
               ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Table, JournalHostile,
    testing::ValuesIn(std::vector<HostileCase>{
        {"unknown_kind", "{\"kind\": \"exploit\"}"},
        {"no_kind", "{\"rows\": 3}"},
        {"second_header",
         "{\"kind\": \"header\", \"journal_version\": 1, \"campaign\": "
         "\"0000000000000000\", \"total\": 1, \"spec\": {}}"},
        {"row_out_of_range",
         "{\"kind\": \"point\", \"row\": 99999, \"digest\": "
         "\"0000000000000000\", \"cycles\": 1, \"cache_hit\": false, "
         "\"avg_power\": \"0000000000000000\", \"epc\": "
         "\"0000000000000000\", \"switching\": \"0000000000000000\", "
         "\"internal\": \"0000000000000000\", \"leakage_aon\": "
         "\"0000000000000000\", \"leakage_gated\": \"0000000000000000\", "
         "\"header_off\": \"0000000000000000\", \"rail_recharge\": "
         "\"0000000000000000\", \"crowbar\": \"0000000000000000\", "
         "\"header_gate\": \"0000000000000000\", \"macro_access\": "
         "\"0000000000000000\", \"window\": \"0000000000000000\"}"},
        {"negative_row",
         "{\"kind\": \"point\", \"row\": -1, \"digest\": "
         "\"0000000000000000\"}"},
        {"short_hex_digest",
         "{\"kind\": \"point\", \"row\": 0, \"digest\": \"abc\", "
         "\"cycles\": 1, \"cache_hit\": false}"},
        {"missing_measurement_fields",
         "{\"kind\": \"point\", \"row\": 0, \"digest\": "
         "\"0000000000000000\", \"cycles\": 1, \"cache_hit\": false}"},
    }),
    [](const testing::TestParamInfo<HostileCase>& i) {
      return std::string(i.param.name);
    });

TEST(JournalRobustness, DuplicateRowIsRejected) {
  const std::string& good = good_journal_text();
  // Duplicate the first point line verbatim at the end: CRC valid,
  // shape valid, semantically a lie.
  const std::size_t first_nl = good.find('\n');
  const std::size_t second_nl = good.find('\n', first_nl + 1);
  const std::string point_line =
      good.substr(first_nl + 1, second_nl - first_nl);
  const std::string path =
      write_temp(good + point_line, "robust_dup.journal");
  EXPECT_THROW((void)campaign::read_journal(path, /*allow_torn_tail=*/true),
               ParseError);
}

TEST(JournalRobustness, PointBeforeHeaderIsRejected) {
  const std::string& good = good_journal_text();
  const std::size_t first_nl = good.find('\n');
  // Strip the header: the first frame is now a point.
  const std::string path =
      write_temp(good.substr(first_nl + 1), "robust_nohdr.journal");
  EXPECT_THROW((void)campaign::read_journal(path, /*allow_torn_tail=*/true),
               ParseError);
}

TEST(JournalRobustness, GarbageBytesAreRejected) {
  Rng rng(42);
  for (int i = 0; i < 32; ++i) {
    std::string garbage;
    const int len = int(rng.bits(8)) + 8;
    for (int k = 0; k < len; ++k) garbage += char(rng.bits(8));
    garbage += '\n';
    const std::string path = write_temp(garbage, "robust_garbage.journal");
    EXPECT_THROW(
        (void)campaign::read_journal(path, /*allow_torn_tail=*/true),
        ParseError)
        << "case " << i;
  }
}

TEST(JournalRobustness, ErrorsAreLocated) {
  // A flipped byte on line 2 must name the path and the line.
  const std::string& good = good_journal_text();
  std::string bad = good;
  const std::size_t line2 = good.find('\n') + 10;
  bad[line2] = char(bad[line2] ^ 0x01);
  const std::string path = write_temp(bad, "robust_located.journal");
  try {
    (void)campaign::read_journal(path, /*allow_torn_tail=*/true);
    FAIL() << "corrupt journal parsed";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("robust_located.journal"), std::string::npos) << what;
    EXPECT_NE(what.find(":2"), std::string::npos) << what;
  }
}

} // namespace
