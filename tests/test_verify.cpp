// Runtime verification: hazard monitors + fault injection (src/verify).
//
// The core property (ISSUE acceptance criterion): on the SCPG'd 16-bit
// multiplier a fault-free campaign reports ZERO hazards, and every
// injected fault class is flagged by at least one monitor.
#include <gtest/gtest.h>

#include "gen/mult16.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"
#include "verify/boundary.hpp"
#include "verify/campaign.hpp"
#include "verify/fault.hpp"
#include "verify/hazard.hpp"

namespace scpg::verify {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

SimConfig cfg06() {
  SimConfig c;
  c.corner = {0.6_V, 25.0};
  return c;
}

/// SCPG'd 16-bit multiplier shared by the campaign tests.
const Netlist& scpg_mult() {
  static const Netlist nl = [] {
    Netlist m = gen::make_multiplier(lib(), 16);
    apply_scpg(m);
    return m;
  }();
  return nl;
}

CampaignOptions base_opts() {
  CampaignOptions opt;
  opt.f = 1_MHz;
  opt.duty_high = 0.5;
  opt.warmup_cycles = 6;
  opt.cycles = 30;
  opt.seed = 7;
  opt.sim = cfg06();
  return opt;
}

// ---------------------------------------------------------------------------
// Boundary extraction
// ---------------------------------------------------------------------------

TEST(Boundary, MatchesTransformExports) {
  Netlist nl = gen::make_multiplier(lib(), 16);
  const ScpgInfo info = apply_scpg(nl);
  const BoundaryMap map = extract_boundary(nl);

  EXPECT_TRUE(map.has_gating());
  EXPECT_TRUE(map.clk.valid());
  EXPECT_EQ(map.clk, info.clk);
  ASSERT_EQ(map.iso.size(), info.isolation.size());
  // Same clamps, same data/out bindings (order may differ; compare sets).
  for (const IsoBinding& b : info.isolation) {
    bool found = false;
    for (const IsoSite& s : map.iso)
      if (s.cell == b.cell && s.data == b.data && s.out == b.out) {
        EXPECT_EQ(s.enable, info.niso);
        found = true;
      }
    EXPECT_TRUE(found) << "clamp " << nl.cell(b.cell).name
                       << " missing from the scan";
  }
  // All 16+16+32 multiplier registers are always-on.
  EXPECT_EQ(map.aon_flops.size(), 64u);
  // Every gated->always-on crossing is clamped in a correct transform.
  EXPECT_TRUE(map.unprotected.empty());
}

TEST(Boundary, UngatedNetlistHasNoGating) {
  const Netlist nl = gen::make_multiplier(lib(), 8);
  const BoundaryMap map = extract_boundary(nl);
  EXPECT_FALSE(map.has_gating());
  EXPECT_TRUE(map.iso.empty());
  EXPECT_FALSE(map.aon_flops.empty());
}

// ---------------------------------------------------------------------------
// Clean runs are hazard-free
// ---------------------------------------------------------------------------

TEST(Campaign, CleanRunReportsZeroHazards) {
  const CampaignResult res = run_campaign(scpg_mult(), base_opts());
  EXPECT_EQ(res.injected_total(), 0);
  EXPECT_TRUE(res.hazards.empty())
      << format_hazard(res.hazards.reports().front());
  EXPECT_GE(res.cycles_run, 36);
}

TEST(Campaign, CleanRunWithCustomStimulusIsAlsoClean) {
  CampaignOptions opt = base_opts();
  opt.stimulus = [](Simulator& sim, int cycle) {
    // Drive new operands well clear of the capture edge's hold window.
    const SimTime t = sim.now() + to_fs(30.0_ns);
    sim.drive_bus_at(t, "a", std::uint64_t(cycle) * 2654435761u, 16);
    sim.drive_bus_at(t, "b", std::uint64_t(cycle) * 40503u, 16);
  };
  const CampaignResult res = run_campaign(scpg_mult(), opt);
  EXPECT_TRUE(res.hazards.empty())
      << format_hazard(res.hazards.reports().front());
}

TEST(Monitors, HoldWindowStimulusIsFlagged) {
  // The same stimulus pushed inside the hold window after the capture
  // edge must raise a hold violation — the timing monitor sees exactly
  // what a real silicon race would be.
  CampaignOptions opt = base_opts();
  opt.cycles = 10;
  opt.stimulus = [](Simulator& sim, int cycle) {
    sim.drive_bus_at(sim.now() + 10, "a", std::uint64_t(cycle) * 3u, 16);
    sim.drive_bus_at(sim.now() + to_fs(30.0_ns), "b", 5, 16);
  };
  const CampaignResult res = run_campaign(scpg_mult(), opt);
  EXPECT_GT(res.hazards.count(HazardKind::HoldViolation), 0u);
}

// ---------------------------------------------------------------------------
// Every fault class is caught (acceptance criterion)
// ---------------------------------------------------------------------------

struct FaultCase {
  FaultClass fault;
  HazardKind expect; ///< a kind the fault must raise (others may fire too)
};

class FaultDetection : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultDetection, InjectedFaultIsFlagged) {
  const FaultCase& fc = GetParam();
  CampaignOptions opt = base_opts();
  opt.faults.push_back({fc.fault, 0.0, 0.0}); // class-default intensity
  const CampaignResult res = run_campaign(scpg_mult(), opt);

  EXPECT_GT(res.injected[std::size_t(fc.fault)], 0)
      << fault_class_name(fc.fault);
  EXPECT_TRUE(res.detected()) << "no monitor fired for "
                              << fault_class_name(fc.fault);
  EXPECT_GT(res.hazards.count(fc.expect), 0u)
      << fault_class_name(fc.fault) << " did not raise "
      << hazard_kind_name(fc.expect) << "; log:\n"
      << format_hazard_summary(res.hazards);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, FaultDetection,
    ::testing::Values(
        FaultCase{FaultClass::StuckIsolation,
                  HazardKind::IsolationLateAtCollapse},
        FaultCase{FaultClass::DelayedIsolation,
                  HazardKind::IsolationLateAtCollapse},
        FaultCase{FaultClass::DroppedClamp, HazardKind::XCrossing},
        FaultCase{FaultClass::SlowRailRestore,
                  HazardKind::SampleWhileCollapsed},
        FaultCase{FaultClass::PrematureEdge,
                  HazardKind::SampleWhileCollapsed},
        FaultCase{FaultClass::SeuFlip, HazardKind::SpuriousStateFlip}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      std::string n(fault_class_name(info.param.fault));
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(Campaign, EverySeuFlipIsReportedExactlyOnce) {
  // SEU flips are individually countable, so the accounting must be
  // exact: one spurious-state-flip report per injected upset, no escapes
  // and no double counting — at every rate, including saturation.
  for (double rate : {0.25, 0.5, 1.0}) {
    CampaignOptions opt = base_opts();
    opt.faults.push_back({FaultClass::SeuFlip, rate, 0.0});
    const CampaignResult res = run_campaign(scpg_mult(), opt);
    EXPECT_EQ(res.hazards.count(HazardKind::SpuriousStateFlip),
              std::size_t(res.injected[std::size_t(FaultClass::SeuFlip)]))
        << "rate " << rate << "; log:\n"
        << format_hazard_summary(res.hazards);
    EXPECT_EQ(res.hazards.total(),
              res.hazards.count(HazardKind::SpuriousStateFlip))
        << "rate " << rate << " raised non-SEU hazards";
  }
}

TEST(Campaign, StuckClampsLeakXAcrossTheBoundary) {
  CampaignOptions opt = base_opts();
  opt.faults.push_back({FaultClass::StuckIsolation, 1.0, 0.0});
  const CampaignResult res = run_campaign(scpg_mult(), opt);
  // Transparent clamps pass the collapsed domain's X straight through:
  // both the ordering monitor and the X-containment monitor must fire.
  EXPECT_GT(res.hazards.count(HazardKind::IsolationLateAtCollapse), 0u);
  EXPECT_GT(res.hazards.count(HazardKind::XCrossing), 0u);
}

TEST(Campaign, ReportsCarryContext) {
  CampaignOptions opt = base_opts();
  opt.cycles = 10;
  opt.faults.push_back({FaultClass::SeuFlip, 0.2, 0.0});
  const CampaignResult res = run_campaign(scpg_mult(), opt);
  ASSERT_FALSE(res.hazards.reports().empty());
  const HazardReport& r = res.hazards.reports().front();
  EXPECT_EQ(r.kind, HazardKind::SpuriousStateFlip);
  EXPECT_GE(r.cycle, opt.warmup_cycles); // armed after warmup
  EXPECT_GT(r.t, 0);
  EXPECT_TRUE(r.net.valid());
  EXPECT_FALSE(r.net_name.empty());
  EXPECT_FALSE(format_hazard(r).empty());
  EXPECT_FALSE(format_hazard_summary(res.hazards).empty());
}

TEST(Campaign, SeedsReproduce) {
  CampaignOptions opt = base_opts();
  opt.faults.push_back({FaultClass::DroppedClamp, 0.3, 0.0});
  opt.faults.push_back({FaultClass::SeuFlip, 0.3, 0.0});
  const CampaignResult a = run_campaign(scpg_mult(), opt);
  const CampaignResult b = run_campaign(scpg_mult(), opt);
  EXPECT_EQ(a.hazards.total(), b.hazards.total());
  EXPECT_EQ(a.injected, b.injected);
  opt.seed = 1234;
  const CampaignResult c = run_campaign(scpg_mult(), opt);
  // A different seed picks different clamps/flips (totals may differ).
  EXPECT_EQ(c.injected_total(), a.injected_total());
}

// ---------------------------------------------------------------------------
// HazardLog bookkeeping
// ---------------------------------------------------------------------------

TEST(HazardLog, CapsStoredReportsButKeepsCounting) {
  HazardLog log(2);
  for (int i = 0; i < 5; ++i)
    log.add({HazardKind::XCrossing, SimTime(i), i, NetId{}, "", {}, ""});
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.reports().size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_EQ(log.count(HazardKind::XCrossing), 5u);
  EXPECT_EQ(log.count(HazardKind::SetupViolation), 0u);
  EXPECT_FALSE(log.empty());
}

} // namespace
} // namespace scpg::verify
