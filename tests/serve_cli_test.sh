#!/usr/bin/env bash
# End-to-end soak of the scpgc serve daemon: starts a real daemon over a
# unix socket, drives a mixed burst of sweep/lint/verify requests through
# `scpgc client`, and pins the wire contract a script would depend on —
# response bodies byte-identical to the direct --json subcommands, the
# CLI exit code carried through the daemon verbatim (0 ok / 1 findings /
# 2 usage / 3 parse / 5 flow), a second daemon on a live socket exiting
# 8 (busy), SIGTERM draining in-flight work to complete responses, and a
# warm restart serving the same bytes out of the disk cache.
# Usage: serve_cli_test.sh <scpgc-binary> <examples/netlists-dir>
set -u

scpgc=$1
dir=$2

tmpdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$tmpdir"
}
trap cleanup EXIT

sock="$tmpdir/serve.sock"
cache="$tmpdir/serve.cache"

fail() { echo "serve_cli_test FAIL: $*" >&2; exit 1; }

expect_rc() { # want-rc command...
  local want=$1
  shift
  "$@" >/dev/null 2>&1
  local rc=$?
  [ "$rc" -eq "$want" ] || fail "expected exit $want, got $rc: $*"
}

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && "$scpgc" client --socket "$sock" --op ping \
      >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "daemon never came up on $sock"
}

start_daemon() { # extra serve args...
  "$scpgc" serve --socket "$sock" --cache "$cache" "$@" \
    2>"$tmpdir/daemon.log" &
  daemon_pid=$!
  wait_for_socket
}

stop_daemon() { # via client shutdown; daemon must exit 0
  "$scpgc" client --socket "$sock" --op shutdown >/dev/null \
    || fail "shutdown op rc"
  wait "$daemon_pid"
  local rc=$?
  daemon_pid=""
  [ "$rc" -eq 0 ] || fail "daemon exited $rc after shutdown op"
}

sweep=(--in "$dir/mult4_scpg.v" --points 3 --cycles 4 --seed 7)

# --- daemon lifecycle + byte-identity --------------------------------------
start_daemon

expect_rc 0 "$scpgc" client --socket "$sock" --op ping

# The served sweep body must be byte-identical to the direct CLI's stdout.
"$scpgc" sweep "${sweep[@]}" --json >"$tmpdir/direct.json" \
  || fail "direct sweep rc"
"$scpgc" client --socket "$sock" --op sweep "${sweep[@]}" \
  >"$tmpdir/served.json" || fail "served sweep rc"
cmp -s "$tmpdir/direct.json" "$tmpdir/served.json" \
  || fail "served sweep body differs from direct scpgc sweep --json"
grep -q '"tool": "scpgc-sweep"' "$tmpdir/served.json" \
  || fail "served sweep envelope tool"

# Same for lint and verify, including the findings exit code 1.
"$scpgc" lint --in "$dir/broken/mult8_badpol.v" --json >"$tmpdir/lint.json"
[ $? -eq 1 ] || fail "direct lint rc"
"$scpgc" client --socket "$sock" --op lint --in "$dir/broken/mult8_badpol.v" \
  >"$tmpdir/lint_served.json"
[ $? -eq 1 ] || fail "served lint rc (findings must exit 1)"
cmp -s "$tmpdir/lint.json" "$tmpdir/lint_served.json" \
  || fail "served lint body differs"

"$scpgc" verify --in "$dir/mult4_scpg.v" --cycles 8 --warmup 2 --json \
  >"$tmpdir/verify.json" || fail "direct verify rc"
"$scpgc" client --socket "$sock" --op verify --in "$dir/mult4_scpg.v" \
  --cycles 8 --warmup 2 >"$tmpdir/verify_served.json" \
  || fail "served verify rc"
cmp -s "$tmpdir/verify.json" "$tmpdir/verify_served.json" \
  || fail "served verify body differs"

# --- exit codes carried through the daemon ---------------------------------
expect_rc 2 "$scpgc" client
expect_rc 2 "$scpgc" client --socket "$sock" --op frobnicate
expect_rc 2 "$scpgc" client --socket "$sock" --op sweep # missing --in
echo "this is not verilog" >"$tmpdir/garbage.v"
expect_rc 3 "$scpgc" client --socket "$sock" --op sweep \
  --in "$tmpdir/garbage.v" --points 3 --cycles 4
expect_rc 5 "$scpgc" client --socket "$sock" --op sweep \
  --in "$tmpdir/no_such_file.v" --points 3 --cycles 4
expect_rc 5 "$scpgc" client --socket "$tmpdir/no_daemon.sock" --op ping

# A second daemon on the live socket must exit 8 and leave it serving.
expect_rc 8 "$scpgc" serve --socket "$sock"
expect_rc 0 "$scpgc" client --socket "$sock" --op ping

# --- mixed concurrent burst ------------------------------------------------
burst_pids=()
for seed in 11 12 13 11 12 13; do
  "$scpgc" client --socket "$sock" --op sweep --in "$dir/mult4_scpg.v" \
    --points 3 --cycles 4 --seed "$seed" >"$tmpdir/burst_$seed.$RANDOM.json" &
  burst_pids+=($!)
done
"$scpgc" client --socket "$sock" --op lint --in "$dir/mult8_scpg.v" \
  >/dev/null &
burst_pids+=($!)
for pid in "${burst_pids[@]}"; do
  wait "$pid" || fail "burst request failed"
done

# Stats reflect the traffic: a JSON envelope with the counters and
# latency percentiles.
stats=$("$scpgc" client --socket "$sock" --op stats) || fail "stats rc"
grep -q '"tool": "scpgc-serve"' <<<"$stats" || fail "stats envelope tool"
grep -q '"kind": "stats"' <<<"$stats" || fail "stats kind"
grep -q '"latency_us"' <<<"$stats" || fail "stats latency section"
grep -q '"cache_entries"' <<<"$stats" || fail "stats cache section"

# --- shutdown op drains, daemon exits 0 ------------------------------------
stop_daemon
grep -q "draining" "$tmpdir/daemon.log" || fail "daemon log: draining line"
grep -q "stopped" "$tmpdir/daemon.log" || fail "daemon log: stopped line"
[ -S "$sock" ] && fail "socket not unlinked after shutdown"

# --- warm restart serves identical bytes from the disk cache ---------------
[ -s "$cache" ] || fail "disk cache file not written"
start_daemon
grep -q "entries loaded" "$tmpdir/daemon.log" \
  || fail "restart did not report loaded cache entries"
"$scpgc" client --socket "$sock" --op sweep "${sweep[@]}" \
  >"$tmpdir/served_warm.json" || fail "warm served sweep rc"
cmp -s "$tmpdir/direct.json" "$tmpdir/served_warm.json" \
  || fail "warm restart served different bytes"

# --- SIGTERM drains an in-flight request -----------------------------------
# Park a sweep inside a wide batch window, SIGTERM the daemon, and check
# the client still gets the full, correct body and the daemon exits 0.
stop_daemon
rm -f "$cache"
start_daemon --batch-window-ms 2000
"$scpgc" client --socket "$sock" --op sweep "${sweep[@]}" \
  >"$tmpdir/inflight.json" &
client_pid=$!
for _ in $(seq 1 50); do # wait until the request is admitted
  "$scpgc" client --socket "$sock" --op stats | grep -q '"sweep": 1' && break
  sleep 0.1
done
kill -TERM "$daemon_pid"
wait "$client_pid" || fail "in-flight sweep failed across SIGTERM"
wait "$daemon_pid"
rc=$?
daemon_pid=""
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM"
cmp -s "$tmpdir/direct.json" "$tmpdir/inflight.json" \
  || fail "SIGTERM-drained sweep body differs from direct run"

echo "serve_cli_test PASS"
