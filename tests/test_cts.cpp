#include <gtest/gtest.h>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "cpu/iss.hpp"
#include "cpu/workloads.hpp"
#include "gen/mult16.hpp"
#include "netlist/cts.hpp"
#include "netlist/funcsim.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

TEST(Cts, SmallFanoutIsNoOp) {
  Netlist nl = gen::make_multiplier(lib(), 4); // 24 flops
  CtsOptions opt;
  opt.max_fanout = 64;
  const CtsInfo info = synthesize_clock_tree(nl, "clk", opt);
  EXPECT_EQ(info.buffers_inserted, 0u);
  EXPECT_EQ(info.levels, 0);
}

TEST(Cts, BalancedTreeCoversAllSinks) {
  Netlist nl = gen::make_multiplier(lib(), 16); // 64 flops
  CtsOptions opt;
  opt.max_fanout = 8;
  const CtsInfo info = synthesize_clock_tree(nl, "clk", opt);
  EXPECT_EQ(info.sinks, 64u);
  EXPECT_EQ(info.buffers_inserted, 8u); // 8 leaf buffers, root drives 8
  EXPECT_EQ(info.levels, 1);
  EXPECT_NO_THROW(nl.check());

  // Every flop CK pin must now be driven by a buffer, and every sink must
  // sit behind exactly `levels` buffers.
  for (CellId f : nl.flops()) {
    NetId ck = nl.cell(f).inputs[1];
    int depth = 0;
    while (nl.net(ck).driven_by_cell()) {
      const CellId drv = nl.net(ck).driver_cell;
      ASSERT_EQ(nl.kind_of(drv), CellKind::Buf);
      ck = nl.cell(drv).inputs[0];
      ++depth;
    }
    EXPECT_EQ(depth, info.levels);
    EXPECT_EQ(ck, nl.port_net("clk"));
  }
}

TEST(Cts, RootFanoutBounded) {
  Netlist nl = gen::make_multiplier(lib(), 16);
  CtsOptions opt;
  opt.max_fanout = 4;
  synthesize_clock_tree(nl, "clk", opt);
  EXPECT_LE(nl.net(nl.port_net("clk")).sinks.size(), 4u);
}

TEST(Cts, BufferedMultiplierStillComputes) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  CtsOptions opt;
  opt.max_fanout = 8;
  synthesize_clock_tree(nl, "clk", opt);

  Simulator sim(nl, SimConfig{{0.6_V, 25.0}});
  sim.init_flops_to_zero();
  const Frequency f = 1.0_MHz;
  const SimTime T = to_fs(period(f));
  sim.add_clock(nl.port_net("clk"), f, 0.5, T / 2);
  Rng rng(3);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hist;
  int cycle = 0, checked = 0;
  sim.on_rising_edge(nl.port_net("clk"), [&] {
    if (cycle >= 3) {
      const auto [a, b] = hist[std::size_t(cycle - 3)];
      EXPECT_EQ(sim.read_bus("p", 16), a * b);
      ++checked;
    }
    const std::uint64_t a = rng.bits(8), b = rng.bits(8);
    hist.emplace_back(a, b);
    sim.drive_bus_at(sim.now() + T / 16, "a", a, 8);
    sim.drive_bus_at(sim.now() + T / 16, "b", b, 8);
    ++cycle;
  });
  sim.run_until(T * 12);
  EXPECT_GE(checked, 8);
}

TEST(Cts, TreeStaysAlwaysOnUnderScpg) {
  // The paper: the clock tree doubles as the PG control distribution and
  // must stay powered.  apply_scpg's clock-path classification has to
  // keep every CTS buffer in the always-on domain.
  Netlist nl = gen::make_multiplier(lib(), 16);
  CtsOptions opt;
  opt.max_fanout = 8;
  const CtsInfo cts = synthesize_clock_tree(nl, "clk", opt);
  apply_scpg(nl);
  std::size_t aon_bufs = 0;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    if (nl.cell(id).name.rfind("u_cts_", 0) == 0) {
      EXPECT_EQ(nl.cell(id).domain, Domain::AlwaysOn) << nl.cell(id).name;
      ++aon_bufs;
    }
  }
  EXPECT_EQ(aon_bufs, cts.buffers_inserted);
}

TEST(Cts, GatedAndBufferedCpuRunsProgram) {
  // Full integration: CTS + SCPG on the SCM0, then a timed gated run must
  // still execute the program correctly (clock skew is balanced).
  const auto img = cpu::assemble(cpu::workloads::fibonacci(10));
  cpu::Scm0 core = cpu::make_scm0(lib(), img);
  CtsOptions copt;
  copt.max_fanout = 32;
  const CtsInfo cts = synthesize_clock_tree(core.netlist, "clk", copt);
  EXPECT_GT(cts.buffers_inserted, 4u);
  apply_scpg(core.netlist, cpu::scm0_scpg_options());

  Simulator sim(core.netlist, cpu::scm0_sim_config());
  sim.init_flops_to_zero();
  sim.drive_at(0, core.netlist.port_net("rst_n"), Logic::L1);
  sim.drive_at(0, core.netlist.port_net("override_n"), Logic::L1);
  const Frequency f = 500.0_kHz;
  const SimTime T = to_fs(period(f));
  sim.add_clock(core.netlist.port_net("clk"), f, 0.5, T / 2);
  sim.run_until(T * 90); // fib(10) takes ~60 cycles
  EXPECT_EQ(sim.output("halted"), Logic::L1);
  auto* ram = dynamic_cast<cpu::RamModel*>(sim.macro_model(core.ram_cell));
  ASSERT_NE(ram, nullptr);
  EXPECT_EQ(ram->word(60), 55u);
}

TEST(Cts, UnknownClockPortRejected) {
  Netlist nl = gen::make_multiplier(lib(), 4);
  EXPECT_THROW((void)synthesize_clock_tree(nl, "nope", {}), PreconditionError);
}

} // namespace
} // namespace scpg
