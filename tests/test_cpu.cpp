#include <gtest/gtest.h>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "cpu/iss.hpp"
#include "cpu/workloads.hpp"
#include "netlist/funcsim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace scpg::cpu {
namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

// ---------------------------------------------------------------------------
// ISA encode/decode
// ---------------------------------------------------------------------------

TEST(Isa, EncodeDecodeRoundTripAllOps) {
  const std::uint16_t words[] = {
      enc_alu(AluFn::Add, 1, 2, 3),
      enc_alu(AluFn::Sltu, 7, 6, 5),
      enc_addi(4, 4, -32),
      enc_addi(4, 4, 31),
      enc_movi(3, 511),
      enc_ld(2, 1, 63),
      enc_st(2, 1, 0),
      enc_branch(Op::Beq, 1, 2, -32),
      enc_branch(Op::Bne, 1, 2, 31),
      enc_branch(Op::Bltu, 0, 7, 5),
      enc_jal(7, -256),
      enc_jr(3),
      enc_halt(),
      enc_nop(),
  };
  for (std::uint16_t w : words) {
    const Instr in = decode(w);
    EXPECT_EQ(encode(in), w) << disassemble(w);
  }
}

TEST(Isa, FieldExtraction) {
  const Instr in = decode(enc_alu(AluFn::Xor, 5, 6, 7));
  EXPECT_EQ(in.op, Op::Alu);
  EXPECT_EQ(in.rd, 5);
  EXPECT_EQ(in.ra, 6);
  EXPECT_EQ(in.rb, 7);
  EXPECT_EQ(in.funct, AluFn::Xor);

  const Instr br = decode(enc_branch(Op::Bne, 2, 3, -7));
  EXPECT_EQ(br.op, Op::Bne);
  EXPECT_EQ(br.ra, 2);
  EXPECT_EQ(br.rb, 3);
  EXPECT_EQ(br.imm, -7);
}

TEST(Isa, ImmediateRangeChecks) {
  EXPECT_THROW((void)enc_addi(0, 0, 32), PreconditionError);
  EXPECT_THROW((void)enc_addi(0, 0, -33), PreconditionError);
  EXPECT_THROW((void)enc_movi(0, 512), PreconditionError);
  EXPECT_THROW((void)enc_movi(0, -1), PreconditionError);
  EXPECT_THROW((void)enc_ld(0, 0, 64), PreconditionError);
  EXPECT_THROW((void)enc_branch(Op::Beq, 0, 0, 32), PreconditionError);
  EXPECT_THROW((void)enc_jal(0, 256), PreconditionError);
  EXPECT_THROW((void)enc_alu(AluFn::Add, 8, 0, 0), PreconditionError);
}

TEST(Isa, Disassemble) {
  EXPECT_EQ(disassemble(enc_alu(AluFn::Add, 1, 2, 3)), "add r1, r2, r3");
  EXPECT_EQ(disassemble(enc_addi(4, 5, -3)), "addi r4, r5, -3");
  EXPECT_EQ(disassemble(enc_ld(1, 2, 7)), "ld r1, [r2+7]");
  EXPECT_EQ(disassemble(enc_halt()), "halt");
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

TEST(Assembler, BasicProgram) {
  const auto img = assemble("movi r1, 5\naddi r1, r1, -1\nhalt\n");
  ASSERT_EQ(img.size(), 3u);
  EXPECT_EQ(img[0], enc_movi(1, 5));
  EXPECT_EQ(img[1], enc_addi(1, 1, -1));
  EXPECT_EQ(img[2], enc_halt());
}

TEST(Assembler, LabelsAndBranches) {
  const auto img = assemble(R"(
loop:   addi r1, r1, 1
        bne r1, r2, loop
        halt
)");
  ASSERT_EQ(img.size(), 3u);
  // bne at address 1 targeting 0: offset = 0 - 2 = -2.
  EXPECT_EQ(img[1], enc_branch(Op::Bne, 1, 2, -2));
}

TEST(Assembler, ForwardReferences) {
  const auto img = assemble(R"(
        beq r0, r0, end
        nop
end:    halt
)");
  EXPECT_EQ(img[0], enc_branch(Op::Beq, 0, 0, 1));
}

TEST(Assembler, MemorySyntaxAndHex) {
  const auto img = assemble("ld r1, [r2+0x10]\nst r1, [r2]\nhalt\n");
  EXPECT_EQ(img[0], enc_ld(1, 2, 16));
  EXPECT_EQ(img[1], enc_st(1, 2, 0));
}

TEST(Assembler, OrgAndWord) {
  const auto img = assemble(".org 2\n.word 0xBEEF\nhalt\n");
  ASSERT_EQ(img.size(), 4u);
  EXPECT_EQ(img[0], enc_nop()); // gap filled with NOPs
  EXPECT_EQ(img[2], 0xBEEF);
  EXPECT_EQ(img[3], enc_halt());
}

TEST(Assembler, CommentsIgnored) {
  const auto img = assemble("; full line\nmovi r1, 1 # trailing\nhalt\n");
  EXPECT_EQ(img.size(), 2u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus r1\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW((void)assemble("movi r9, 1\n"), ParseError);      // bad register
  EXPECT_THROW((void)assemble("movi r1, 9999\n"), ParseError);   // bad immediate
  EXPECT_THROW((void)assemble("beq r0, r0, nowhere\n"), ParseError);
  EXPECT_THROW((void)assemble("x: nop\nx: nop\n"), ParseError);  // duplicate label
  // Branch distance beyond +/-32.
  std::string far = "beq r0, r0, end\n";
  for (int i = 0; i < 40; ++i) far += "nop\n";
  far += "end: halt\n";
  EXPECT_THROW((void)assemble(far), ParseError);
}

// ---------------------------------------------------------------------------
// ISS per-instruction semantics
// ---------------------------------------------------------------------------

Iss run_program(const std::string& src, std::uint64_t max_steps = 10000) {
  Iss iss(assemble(src));
  iss.run(max_steps);
  return iss;
}

TEST(Iss, MoviAddiAlu) {
  const Iss s = run_program(R"(
        movi r1, 100
        addi r2, r1, -30
        add  r3, r1, r2
        sub  r4, r1, r2
        and  r5, r1, r2
        or   r6, r1, r2
        xor  r7, r1, r2
        halt
)");
  EXPECT_TRUE(s.halted());
  EXPECT_EQ(s.reg(1), 100u);
  EXPECT_EQ(s.reg(2), 70u);
  EXPECT_EQ(s.reg(3), 170u);
  EXPECT_EQ(s.reg(4), 30u);
  EXPECT_EQ(s.reg(5), 100u & 70u);
  EXPECT_EQ(s.reg(6), 100u | 70u);
  EXPECT_EQ(s.reg(7), 100u ^ 70u);
}

TEST(Iss, NegativeAddiWraps) {
  const Iss s = run_program("movi r1, 0\naddi r1, r1, -1\nhalt\n");
  EXPECT_EQ(s.reg(1), 0xFFFFFFFFu);
}

TEST(Iss, ShiftsAndSltu) {
  const Iss s = run_program(R"(
        movi r1, 5
        movi r2, 3
        lsl  r3, r1, r2
        lsr  r4, r3, r2
        sltu r5, r2, r1
        sltu r6, r1, r2
        halt
)");
  EXPECT_EQ(s.reg(3), 40u);
  EXPECT_EQ(s.reg(4), 5u);
  EXPECT_EQ(s.reg(5), 1u);
  EXPECT_EQ(s.reg(6), 0u);
}

TEST(Iss, LoadStore) {
  const Iss s = run_program(R"(
        movi r1, 10
        movi r2, 77
        st   r2, [r1+5]
        ld   r3, [r1+5]
        halt
)");
  EXPECT_EQ(s.reg(3), 77u);
  EXPECT_EQ(s.mem(15), 77u);
}

TEST(Iss, BranchesTakenAndNot) {
  const Iss s = run_program(R"(
        movi r1, 1
        movi r2, 2
        beq  r1, r2, bad
        bne  r1, r2, ok1
        movi r7, 99
ok1:    bltu r1, r2, ok2
        movi r7, 99
ok2:    bltu r2, r1, bad
        movi r6, 42
        halt
bad:    movi r7, 77
        halt
)");
  EXPECT_EQ(s.reg(6), 42u);
  EXPECT_EQ(s.reg(7), 0u);
}

TEST(Iss, JalAndJr) {
  const Iss s = run_program(R"(
        jal  r7, sub
        movi r1, 11
        halt
sub:    movi r2, 22
        jr   r7
)");
  EXPECT_TRUE(s.halted());
  EXPECT_EQ(s.reg(1), 11u);
  EXPECT_EQ(s.reg(2), 22u);
  EXPECT_EQ(s.reg(7), 1u); // return address
}

TEST(Iss, HaltStopsExecution) {
  Iss s(assemble("halt\nmovi r1, 5\n"));
  s.run(100);
  EXPECT_TRUE(s.halted());
  EXPECT_EQ(s.reg(1), 0u);
  EXPECT_FALSE(s.step()); // no-op after halt
}

TEST(Iss, FibonacciWorkload) {
  Iss s(assemble(workloads::fibonacci(10)));
  s.run(1000);
  EXPECT_TRUE(s.halted());
  EXPECT_EQ(s.reg(1), 55u);
  EXPECT_EQ(s.mem(60), 55u);
}

TEST(Iss, BubbleSortSorts) {
  Iss s(assemble(workloads::bubble_sort(12)));
  s.run(100000);
  ASSERT_TRUE(s.halted());
  for (int i = 0; i + 1 < 12; ++i)
    EXPECT_LE(s.mem(std::uint32_t(i)), s.mem(std::uint32_t(i + 1)));
}

TEST(Iss, DhrystoneLikeProducesStableChecksum) {
  Iss a(assemble(workloads::dhrystone_like(5)));
  Iss b(assemble(workloads::dhrystone_like(5)));
  a.run(1000000);
  b.run(1000000);
  ASSERT_TRUE(a.halted());
  EXPECT_EQ(a.reg(7), b.reg(7));
  EXPECT_EQ(a.mem(63), a.reg(7));
  EXPECT_NE(a.reg(7), 0u);
  // The copy must have happened.
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(a.mem(std::uint32_t(i)), a.mem(std::uint32_t(i + 16)));
}

// ---------------------------------------------------------------------------
// Gate-level core vs ISS (lockstep property test over several programs)
// ---------------------------------------------------------------------------

std::uint32_t gate_reg(const Scm0& core, const FuncSim& fs, int r) {
  std::uint32_t v = 0;
  for (int bit = 0; bit < kWordBits; ++bit) {
    const NetId n = core.netlist.find_net(
        "rf_r" + std::to_string(r) + "_b" + std::to_string(bit));
    if (fs.net_value(n) == Logic::L1) v |= 1u << bit;
  }
  return v;
}

class LockstepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LockstepTest, GateLevelMatchesIssEveryCycle) {
  std::string src;
  const std::string which = GetParam();
  if (which == "dhrystone") src = workloads::dhrystone_like(2);
  else if (which == "fib") src = workloads::fibonacci(20);
  else if (which == "sort") src = workloads::bubble_sort(8);
  else if (which == "burst") src = workloads::arith_burst(40);
  else if (which == "spin") src = workloads::idle_spin(30);
  const auto img = assemble(src);

  Scm0 core = make_scm0(lib(), img);
  FuncSim fs(core.netlist);
  fs.reset();
  fs.set_input("clk", Logic::L0);
  fs.set_input("rst_n", Logic::L1);
  fs.eval();

  Iss iss(img);
  for (int cyc = 0; cyc < 3000; ++cyc) {
    ASSERT_EQ(fs.read_bus("pc", kPcBits), iss.pc()) << "cycle " << cyc;
    ASSERT_EQ(fs.output("halted") == Logic::L1, iss.halted())
        << "cycle " << cyc;
    if (iss.halted()) break;
    iss.step();
    fs.clock();
  }
  EXPECT_TRUE(iss.halted()) << "program did not finish in 3000 cycles";
  for (int r = 0; r < kNumRegs; ++r)
    EXPECT_EQ(gate_reg(core, fs, r), iss.reg(r)) << "r" << r;
  // Memory agrees wherever the ISS wrote.
  auto* ram = dynamic_cast<RamModel*>(
      const_cast<FuncSim&>(fs).macro_model(core.ram_cell));
  ASSERT_NE(ram, nullptr);
  for (std::uint32_t a = 0; a < 64; ++a)
    EXPECT_EQ(ram->word(a), iss.mem(a)) << "mem[" << a << "]";
}

INSTANTIATE_TEST_SUITE_P(Programs, LockstepTest,
                         ::testing::Values("dhrystone", "fib", "sort",
                                           "burst", "spin"));

TEST(Lockstep, RandomAluPrograms) {
  // Random straight-line ALU/immediate programs, gate vs ISS.
  Rng rng(2024);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint16_t> img;
    for (int i = 0; i < 30; ++i) {
      switch (rng.below(4)) {
        case 0:
          img.push_back(enc_movi(int(rng.below(8)), int(rng.bits(9))));
          break;
        case 1:
          img.push_back(enc_addi(int(rng.below(8)), int(rng.below(8)),
                                 int(rng.below(63)) - 31));
          break;
        default:
          img.push_back(enc_alu(AluFn(rng.below(8)), int(rng.below(8)),
                                int(rng.below(8)), int(rng.below(8))));
      }
    }
    img.push_back(enc_halt());

    Scm0 core = make_scm0(lib(), img);
    FuncSim fs(core.netlist);
    fs.reset();
    fs.set_input("clk", Logic::L0);
    fs.set_input("rst_n", Logic::L1);
    fs.eval();
    Iss iss(img);
    while (!iss.halted()) {
      iss.step();
      fs.clock();
    }
    fs.clock(); // let the gate level take the halt edge too
    for (int r = 0; r < kNumRegs; ++r)
      ASSERT_EQ(gate_reg(core, fs, r), iss.reg(r))
          << "trial " << trial << " r" << r;
  }
}

// ---------------------------------------------------------------------------
// SCPG property test: random programs, gated vs ungated vs ISS
// ---------------------------------------------------------------------------

/// Random bounded program: straight-line ALU/immediate/load/store over the
/// 64-word RAM, always terminated by halt — every sequence finishes in
/// exactly `len` cycles, so the property holds for the whole space.
std::vector<std::uint16_t> random_bounded_program(Rng& rng, int len) {
  std::vector<std::uint16_t> img;
  // Seed a base register with a small RAM address so ld/st stay in range.
  img.push_back(enc_movi(6, int(rng.below(32))));
  for (int i = 1; i + 1 < len; ++i) {
    switch (rng.below(6)) {
      case 0:
        img.push_back(enc_movi(int(rng.below(8)), int(rng.bits(9))));
        break;
      case 1:
        img.push_back(enc_addi(int(rng.below(8)), int(rng.below(8)),
                               int(rng.below(63)) - 31));
        break;
      case 2:
        img.push_back(enc_ld(int(rng.below(6)), 6, int(rng.below(16))));
        break;
      case 3:
        img.push_back(enc_st(int(rng.below(8)), 6, int(rng.below(16))));
        break;
      default:
        img.push_back(enc_alu(AluFn(rng.below(8)), int(rng.below(8)),
                              int(rng.below(8)), int(rng.below(8))));
    }
  }
  img.push_back(enc_halt());
  return img;
}

/// Register r read out of the event-driven simulator's net values.
std::uint32_t sim_reg(const Scm0& core, const Simulator& sim, int r) {
  std::uint32_t v = 0;
  for (int bit = 0; bit < kWordBits; ++bit) {
    const NetId n = core.netlist.find_net(
        "rf_r" + std::to_string(r) + "_b" + std::to_string(bit));
    if (sim.value(n) == Logic::L1) v |= 1u << bit;
  }
  return v;
}

TEST(ScpgProperty, GatedScm0MatchesIssOnRandomPrograms) {
  // The paper's equivalence claim, as a property test: with SCPG applied
  // and gating ACTIVE (override_n = 1, cloud collapses every clock-high
  // phase) the core's architectural state — pc, halt flag, register file,
  // memory — is identical to the ISS and to the ungated run, for random
  // bounded instruction sequences.  100 kHz sits far below the SCM0
  // convergence point, so every cycle's rail fully recovers in the low
  // phase (the supported operating region; above it SCPG is infeasible).
  Rng rng(31);
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<std::uint16_t> img = random_bounded_program(rng, 20);

    Iss iss(img);
    int steps = 0;
    while (!iss.halted() && steps < 64) steps += iss.step() ? 1 : 0;
    ASSERT_TRUE(iss.halted());

    Scm0 gated = make_scm0(lib(), img);
    apply_scpg(gated.netlist, scm0_scpg_options());

    for (const Logic ovr : {Logic::L1, Logic::L0}) {
      Simulator sim(gated.netlist, scm0_sim_config());
      sim.init_flops_to_zero();
      sim.drive_at(0, gated.netlist.port_net("rst_n"), Logic::L1);
      sim.drive_at(0, gated.netlist.port_net("override_n"), ovr);
      const Frequency f = Frequency{100e3};
      const SimTime T = to_fs(period(f));
      sim.add_clock(gated.netlist.port_net("clk"), f, 0.5, T / 2);
      sim.run_until(T / 2 + T * SimTime(int(img.size()) + 4));
      const char* mode = ovr == Logic::L1 ? "gated" : "override";
      ASSERT_EQ(sim.output("halted"), Logic::L1)
          << mode << " trial " << trial;
      EXPECT_EQ(sim.read_bus("pc", kPcBits), iss.pc())
          << mode << " trial " << trial;
      for (int r = 0; r < kNumRegs; ++r)
        EXPECT_EQ(sim_reg(gated, sim, r), iss.reg(r))
            << mode << " trial " << trial << " r" << r;
      auto* ram = dynamic_cast<RamModel*>(sim.macro_model(gated.ram_cell));
      ASSERT_NE(ram, nullptr);
      for (std::uint32_t a = 0; a < 64; ++a)
        EXPECT_EQ(ram->word(a), iss.mem(a))
            << mode << " trial " << trial << " mem[" << a << "]";
    }
  }
}

TEST(Core, StatsInExpectedRange) {
  Scm0 core = make_scm0(lib(), assemble("halt\n"));
  const auto flops = core.netlist.flops();
  // 8x32 register file + 16 pc + halt flag.
  EXPECT_EQ(flops.size(), 273u);
  EXPECT_GT(core.netlist.num_cells(), 2000u);
  EXPECT_LT(core.netlist.num_cells(), 5000u);
}

TEST(Core, ResetClearsState) {
  Scm0 core = make_scm0(lib(), assemble("movi r1, 7\nhalt\n"));
  FuncSim fs(core.netlist);
  fs.reset();
  fs.set_input("clk", Logic::L0);
  fs.set_input("rst_n", Logic::L0); // held in reset
  fs.eval();
  fs.clock();
  fs.clock();
  EXPECT_EQ(fs.read_bus("pc", kPcBits), 0u); // pc pinned by reset
  fs.set_input("rst_n", Logic::L1);
  fs.clock();
  EXPECT_EQ(fs.read_bus("pc", kPcBits), 1u); // fetches after release
}

} // namespace
} // namespace scpg::cpu
