// Cross-validation: the analytic SCPG power model against the
// event-driven simulator, over a grid of operating points (DESIGN.md §4).
// The benches sweep with the analytic model; these tests pin it to the
// detailed simulation.
#include <gtest/gtest.h>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "cpu/workloads.hpp"
#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "scpg/model.hpp"
#include "scpg/transform.hpp"
#include "util/rng.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

struct MultFixture {
  Netlist nl;
  SimConfig cfg;
  Energy e_dyn;
  ScpgPowerModel model;

  static const MultFixture& get() {
    static MultFixture f = [] {
      Netlist nl = gen::make_multiplier(lib(), 16);
      apply_scpg(nl);
      SimConfig cfg;
      cfg.corner = {0.6_V, 25.0};
      // Calibrate dynamic energy per cycle in override mode at 1 MHz.
      Rng rng(7);
      engine::SweepSpec spec;
      spec.design(nl)
          .frequency(1.0_MHz)
          .base_sim(cfg)
          .override_gating(true)
          .cycles(24)
          .jobs(1)
          .use_cache(false);
      spec.stimulus([&rng](Simulator& s, int, Rng&) {
        s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(16), 16);
        s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(16), 16);
      });
      const engine::Measurement r =
          engine::Experiment(std::move(spec)).run()[0];
      const Energy e_dyn{r.tally.dynamic_total().v / double(r.cycles)};
      ScpgPowerModel model = ScpgPowerModel::extract(nl, cfg, e_dyn);
      return MultFixture{std::move(nl), cfg, e_dyn, std::move(model)};
    }();
    return f;
  }
};

engine::Measurement simulate_mult(const MultFixture& f, Frequency freq,
                                  double duty, bool override_gating) {
  Rng rng(7);
  engine::SweepSpec spec;
  spec.design(f.nl)
      .frequency(freq)
      .duty(duty)
      .base_sim(f.cfg)
      .override_gating(override_gating)
      .cycles(24)
      .jobs(1)
      .use_cache(false);
  spec.stimulus([&rng](Simulator& s, int, Rng&) {
    s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(16), 16);
    s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(16), 16);
  });
  return engine::Experiment(std::move(spec)).run()[0];
}

class GatedGridTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GatedGridTest, AnalyticMatchesSimulatedWithin12Percent) {
  const auto [f_mhz, duty] = GetParam();
  const MultFixture& f = MultFixture::get();
  const Frequency freq{f_mhz * 1e6};
  ASSERT_TRUE(f.model.feasible(freq, duty));
  const engine::Measurement sim = simulate_mult(f, freq, duty, false);
  const Power model = f.model.average_power_gated(freq, duty);
  EXPECT_NEAR(model.v, sim.avg_power.v, sim.avg_power.v * 0.12)
      << f_mhz << " MHz, duty " << duty;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GatedGridTest,
    ::testing::Values(std::make_pair(0.01, 0.5), std::make_pair(0.01, 0.9),
                      std::make_pair(0.1, 0.5), std::make_pair(0.1, 0.9),
                      std::make_pair(1.0, 0.5), std::make_pair(1.0, 0.9),
                      std::make_pair(5.0, 0.5), std::make_pair(10.0, 0.5)));

class OverrideGridTest : public ::testing::TestWithParam<double> {};

TEST_P(OverrideGridTest, UngatedModelMatchesOverrideSimulation) {
  const double f_mhz = GetParam();
  const MultFixture& f = MultFixture::get();
  const Frequency freq{f_mhz * 1e6};
  const engine::Measurement sim = simulate_mult(f, freq, 0.5, true);
  const Power model = f.model.average_power_ungated(freq);
  EXPECT_NEAR(model.v, sim.avg_power.v, sim.avg_power.v * 0.10) << f_mhz;
}

INSTANTIATE_TEST_SUITE_P(Grid, OverrideGridTest,
                         ::testing::Values(0.1, 1.0, 10.0));

TEST(CrossValidation, SavingsTrendMatchesTable1Shape) {
  // Savings relative to the ORIGINAL (untransformed) design — the paper's
  // "No Power Gating" column — must decrease monotonically with frequency
  // and change sign below 14.3 MHz (the convergence behaviour of Fig 6a).
  const MultFixture& f = MultFixture::get();
  Netlist original = gen::make_multiplier(lib(), 16);
  auto simulate_original = [&](Frequency freq) {
    Rng rng(7);
    engine::SweepSpec spec;
    spec.design(original)
        .frequency(freq)
        .base_sim(f.cfg)
        .cycles(24)
        .jobs(1)
        .use_cache(false);
    spec.stimulus([&rng](Simulator& s, int, Rng&) {
      s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(16), 16);
      s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(16), 16);
    });
    return engine::Experiment(std::move(spec)).run()[0];
  };
  double prev_saving = 1.0;
  bool went_negative = false;
  for (double fm : {0.01, 0.1, 1.0, 2.0, 5.0, 10.0, 14.3}) {
    const Frequency freq{fm * 1e6};
    const engine::Measurement no_pg = simulate_original(freq);
    const engine::Measurement pg = simulate_mult(f, freq, 0.5, false);
    const double saving = 1.0 - pg.avg_power.v / no_pg.avg_power.v;
    EXPECT_LT(saving, prev_saving + 0.02) << fm << " MHz";
    prev_saving = saving;
    if (saving < 0) went_negative = true;
  }
  EXPECT_TRUE(went_negative) << "no convergence point below 14.3 MHz";
}

TEST(CrossValidation, RailVoltageMatchesClosedForm) {
  // Sample the simulator's rail voltage mid-way through the gated phase
  // and compare with RailParams::v_after_off.
  const MultFixture& f = MultFixture::get();
  Simulator sim(f.nl, f.cfg);
  sim.init_flops_to_zero();
  sim.drive_at(0, f.nl.port_net("override_n"), Logic::L1);
  // 5 MHz: a quarter-period (50 ns) of decay is comparable to tau_decay,
  // so the sampled rail voltage is meaningfully partial.
  const Frequency freq = 5.0_MHz;
  const SimTime T = to_fs(period(freq));
  sim.add_clock(f.nl.port_net("clk"), freq, 0.5, T / 2);
  // Clock rises at T/2; sample a quarter period into the high phase.
  const SimTime t_rise = T / 2 + 2 * T;
  const Time dt_off = from_fs(T / 4);
  sim.run_until(t_rise + T / 4);
  const RailParams rail = extract_rail_params(f.nl, f.cfg);
  const Voltage expected = rail.v_after_off(dt_off);
  EXPECT_NEAR(sim.rail_voltage().v, expected.v, expected.v * 0.05);
}

TEST(CrossValidation, EnergyBucketsExplainTotal) {
  const MultFixture& f = MultFixture::get();
  const engine::Measurement r = simulate_mult(f, 1.0_MHz, 0.5, false);
  const PowerTally& t = r.tally;
  const double sum = t.dynamic_total().v + t.leakage_total().v +
                     t.gating_overhead().v;
  EXPECT_NEAR(t.total().v, sum, sum * 1e-12);
  EXPECT_GT(t.leakage_aon.v, 0.0);
  EXPECT_GT(t.leakage_gated.v, 0.0);
  EXPECT_GT(t.rail_recharge.v, 0.0);
  EXPECT_GT(t.crowbar.v, 0.0);
  EXPECT_GT(t.header_gate.v, 0.0);
  EXPECT_GT(t.header_off.v, 0.0);
}

TEST(CrossValidation, Scm0GatedRunMatchesModelShape) {
  // The CPU fixture is expensive; one operating point each side of the
  // convergence region suffices to pin the shape.
  const auto img = cpu::assemble(cpu::workloads::dhrystone_like(3));
  cpu::Scm0 gated = cpu::make_scm0(lib(), img);
  apply_scpg(gated.netlist, cpu::scm0_scpg_options());
  const SimConfig cfg = cpu::scm0_sim_config();

  auto run = [&](Frequency freq, bool ovr) {
    engine::SweepSpec spec;
    spec.design(gated.netlist)
        .frequency(freq)
        .base_sim(cfg)
        .override_gating(ovr)
        .cycles(30)
        .jobs(1)
        .use_cache(false);
    spec.setup([](Simulator& s) {
      s.drive_at(0, s.netlist().port_net("rst_n"), Logic::L1);
    });
    return engine::Experiment(std::move(spec)).run()[0];
  };
  // Below convergence gating saves, above it costs.
  const engine::Measurement lo_pg = run(100.0_kHz, false);
  const engine::Measurement lo_no = run(100.0_kHz, true);
  EXPECT_LT(lo_pg.avg_power.v, lo_no.avg_power.v * 0.9);
  const engine::Measurement hi_pg = run(10.0_MHz, false);
  const engine::Measurement hi_no = run(10.0_MHz, true);
  EXPECT_GT(hi_pg.avg_power.v, hi_no.avg_power.v);
}

} // namespace
} // namespace scpg
