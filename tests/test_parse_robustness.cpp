// Parser robustness: hostile input must never crash, hang, or escape as
// anything but ParseError (a truncated-but-structurally-complete netlist
// may surface as NetlistError from the post-parse check — still a typed
// scpg::Error, never a raw crash).
//
// Three input families per front end (Verilog reader, Liberty-lite
// reader, SCM0 assembler), all table driven:
//   * truncated   — a valid document cut at every byte offset;
//   * garbage     — deterministic pseudo-random binary, incl. NULs;
//   * pathological — deep nesting, unterminated constructs, huge tokens.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cpu/assembler.hpp"
#include "gen/mult16.hpp"
#include "netlist/verilog.hpp"
#include "tech/liberty.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace scpg {
namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

// A parse attempt may succeed (some prefixes are complete documents) but
// the only exceptions allowed out are scpg::Error subclasses.  Returns
// the diagnostic for source-name checks, or "" on success.
template <typename Fn>
std::string parse_outcome(Fn&& fn) {
  try {
    fn();
    return "";
  } catch (const Error& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "non-scpg exception escaped: " << e.what();
    return e.what();
  } catch (...) {
    ADD_FAILURE() << "unknown exception escaped the parser";
    return "?";
  }
}

std::string garbage(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (char& c : s) c = char(rng.bits(8));
  return s;
}

std::string valid_verilog() {
  return write_verilog_string(gen::make_multiplier(lib(), 4));
}

std::string valid_liberty() { return write_liberty_string(lib()); }

// ---------------------------------------------------------------------------
// Truncation sweeps: every prefix either parses or throws a typed error
// ---------------------------------------------------------------------------

TEST(ParseRobustness, TruncatedVerilogNeverCrashes) {
  const std::string full = valid_verilog();
  ASSERT_FALSE(full.empty());
  int threw = 0;
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::string msg = parse_outcome([&] {
      (void)read_verilog_string(full.substr(0, len), lib(), {}, "trunc.v");
    });
    if (!msg.empty()) ++threw;
  }
  // Cutting a netlist mid-file overwhelmingly breaks it.
  EXPECT_GT(threw, int(full.size() / 2));
}

TEST(ParseRobustness, TruncatedLibertyNeverCrashes) {
  const std::string full = valid_liberty();
  ASSERT_FALSE(full.empty());
  // Byte-exact sweeps over the multi-KB library are slow in debug
  // builds; stride through it plus hit the first/last bytes exactly.
  for (std::size_t len = 0; len < full.size(); len += 7) {
    (void)parse_outcome([&] {
      (void)read_liberty_string(full.substr(0, len), "trunc.lib");
    });
  }
  for (std::size_t len = full.size() - 3; len < full.size(); ++len) {
    (void)parse_outcome([&] {
      (void)read_liberty_string(full.substr(0, len), "trunc.lib");
    });
  }
}

TEST(ParseRobustness, TruncatedAsmNeverCrashes) {
  const std::string full = "loop: addi r1, r1, 1\n"
                           "      bne r1, r2, loop\n"
                           "      ld r3, [r2+0x10]\n"
                           "      halt\n";
  for (std::size_t len = 0; len < full.size(); ++len) {
    (void)parse_outcome(
        [&] { (void)cpu::assemble(full.substr(0, len), "trunc.s"); });
  }
}

// ---------------------------------------------------------------------------
// Binary garbage: deterministic fuzz, every seed must throw ParseError
// ---------------------------------------------------------------------------

struct GarbageCase {
  const char* parser;
  std::uint64_t seed;
  std::size_t size;
};

class GarbageInput : public ::testing::TestWithParam<GarbageCase> {};

TEST_P(GarbageInput, ThrowsParseErrorWithSourceName) {
  const GarbageCase& gc = GetParam();
  const std::string text = garbage(gc.seed, gc.size);
  const std::string parser(gc.parser);
  try {
    if (parser == "verilog")
      (void)read_verilog_string(text, lib(), {}, "garbage.bin");
    else if (parser == "liberty")
      (void)read_liberty_string(text, "garbage.bin");
    else
      (void)cpu::assemble(text, "garbage.bin");
    FAIL() << "binary garbage parsed without error";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("garbage.bin"), std::string::npos)
        << "diagnostic lacks the source name: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, GarbageInput,
    ::testing::Values(GarbageCase{"verilog", 1, 64},
                      GarbageCase{"verilog", 2, 512},
                      GarbageCase{"verilog", 3, 4096},
                      GarbageCase{"liberty", 4, 64},
                      GarbageCase{"liberty", 5, 512},
                      GarbageCase{"liberty", 6, 4096},
                      GarbageCase{"asm", 7, 64}, GarbageCase{"asm", 8, 512},
                      GarbageCase{"asm", 9, 4096}),
    [](const ::testing::TestParamInfo<GarbageCase>& info) {
      return std::string(info.param.parser) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Pathological documents: nesting depth, unterminated constructs, size
// ---------------------------------------------------------------------------

struct HostileCase {
  const char* name;
  const char* parser;
  std::string text;
};

std::string deep_liberty(int depth) {
  std::string s = "library(deep) {\n";
  for (int i = 0; i < depth; ++i) s += "g" + std::to_string(i) + "(x) {\n";
  return s; // no closers: deep and truncated
}

std::string closed_deep_liberty(int depth) {
  std::string s = deep_liberty(depth);
  for (int i = 0; i <= depth; ++i) s += "}\n";
  s += "cell(X) {\n"; // trailing junk after the closed library
  return s;
}

class HostileInput : public ::testing::TestWithParam<HostileCase> {};

TEST_P(HostileInput, ThrowsTypedErrorOnly) {
  const HostileCase& hc = GetParam();
  const std::string parser(hc.parser);
  const std::string msg = parse_outcome([&] {
    if (parser == "verilog")
      (void)read_verilog_string(hc.text, lib(), {}, "hostile.v");
    else if (parser == "liberty")
      (void)read_liberty_string(hc.text, "hostile.lib");
    else
      (void)cpu::assemble(hc.text, "hostile.s");
  });
  EXPECT_FALSE(msg.empty()) << hc.name << " was accepted";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HostileInput,
    ::testing::Values(
        HostileCase{"unterminated_comment", "verilog",
                    "module t(); /* no end"},
        HostileCase{"unclosed_module", "verilog",
                    "module t(input a, output y); INV_X1 g0(.A(a), .Y(y));"},
        HostileCase{"huge_token", "verilog",
                    "module " + std::string(1 << 20, 'a') + ""},
        HostileCase{"nested_parens", "verilog",
                    "module t(" + std::string(20000, '(') + ""},
        HostileCase{"deep_open_groups", "liberty", deep_liberty(5000)},
        HostileCase{"junk_after_library", "liberty",
                    closed_deep_liberty(2000)},
        HostileCase{"unterminated_string", "liberty",
                    "library(l) { name : \"no closing quote ; }"},
        HostileCase{"label_only_garbage", "asm",
                    std::string(10000, ':') + "\nnot_an_op r9\n"},
        HostileCase{"immediate_overflow", "asm",
                    "movi r1, 99999999999999999999\nhalt\n"},
        HostileCase{"undefined_label", "asm", "beq r0, r0, nowhere\n"}),
    [](const ::testing::TestParamInfo<HostileCase>& info) {
      return std::string(info.param.name);
    });

} // namespace
} // namespace scpg
