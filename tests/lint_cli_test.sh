#!/usr/bin/env bash
# Pins the `scpgc lint` CLI contract: exit codes (0 clean / 1 findings /
# 2 usage / 3 parse), the --json shape, --only filtering, the --rules
# table, and the lint pre-gate in `scpgc verify` (exit 5, --no-lint
# bypass).  Usage: lint_cli_test.sh <scpgc-binary> <examples/netlists-dir>
set -u

scpgc=$1
dir=$2

fail() { echo "lint_cli_test FAIL: $*" >&2; exit 1; }

expect_rc() { # want-rc command...
  local want=$1
  shift
  "$@" >/dev/null 2>&1
  local rc=$?
  [ "$rc" -eq "$want" ] || fail "expected exit $want, got $rc: $*"
}

# Exit codes.
expect_rc 0 "$scpgc" lint --in "$dir/mult8.v"
expect_rc 0 "$scpgc" lint --in "$dir/mult8_scpg.v" --freq-mhz 1
expect_rc 0 "$scpgc" lint --in "$dir/mult4_scpg.v" --freq-mhz 1 --json
expect_rc 1 "$scpgc" lint --in "$dir/broken/mult8_noiso.v"
expect_rc 1 "$scpgc" lint --in "$dir/broken/mult8_badpol.v"
expect_rc 1 "$scpgc" lint --in "$dir/mult8_scpg.v" --freq-mhz 500
expect_rc 2 "$scpgc" lint
expect_rc 2 "$scpgc" lint --in "$dir/mult8.v" --only SCPG999
tmp=$(mktemp)
echo "this is not verilog" > "$tmp"
expect_rc 3 "$scpgc" lint --in "$tmp"
rm -f "$tmp"

# JSON shape (the badpol design has exactly 4 headers -> 4 findings).
# The report rides inside the versioned scpgc envelope.
out=$("$scpgc" lint --in "$dir/broken/mult8_badpol.v" --json)
grep -q '"schema_version": 1' <<<"$out" || fail "json: schema_version"
grep -q '"tool": "scpgc-lint"' <<<"$out" || fail "json: tool"
grep -q '"design": "mult8_scpg"' <<<"$out" || fail "json: design key"
grep -q '"errors": 4' <<<"$out" || fail "json: errors count"
grep -q '"warnings": 0' <<<"$out" || fail "json: warnings count"
grep -q '"rule": "SCPG003"' <<<"$out" || fail "json: rule id"
grep -q '"severity": "error"' <<<"$out" || fail "json: severity"
grep -q '"locations": \[{"kind": "cell"' <<<"$out" || fail "json: locations"
grep -q '"hint": ' <<<"$out" || fail "json: hint"

out=$("$scpgc" lint --in "$dir/mult8_scpg.v" --json)
grep -q '"errors": 0' <<<"$out" || fail "json: clean errors"
grep -q '"findings": \[\]' <<<"$out" || fail "json: clean findings empty"

# --only restricts the rule set (SCPG001 does not fire on badpol).
expect_rc 1 "$scpgc" lint --in "$dir/broken/mult8_badpol.v" --only SCPG003
expect_rc 0 "$scpgc" lint --in "$dir/broken/mult8_badpol.v" --only SCPG001

# --rules lists the full table.
"$scpgc" lint --rules | grep -q "SCPG008" || fail "--rules table"

# verify runs the linter as a pre-gate: broken design -> flow error (5),
# bypassed with --no-lint (which then reaches the campaign and reports
# real hazards -> 1).
expect_rc 5 "$scpgc" verify --in "$dir/broken/mult8_noiso.v" --cycles 2

echo "lint_cli_test: OK"
