// Tests for the pluggable simulation backends (src/sim/backend.hpp) and
// the compiled levelized bit-parallel kernel (src/sim/compiled):
//
//  * every word-parallel cell evaluator is exhaustively checked against
//    the scalar eval_cell() over all 4-state input combinations
//    (including Z) on all 64 lane positions;
//  * BatchSim runs 64 independent stimulus lanes per pass;
//  * CompiledSim tracks FuncSim bit for bit, X propagation included;
//  * the sweep engine produces bit-identical results at any job count on
//    either backend, for the multiplier family and the SCM0 core;
//  * across backends the measurement window, cycle counts and RNG
//    streams are pinned exactly, power agrees within the documented
//    glitch-energy tolerance (DESIGN.md §13);
//  * backend resolution (Event / Compiled / Auto), the compiled cache
//    salt, and the per-thread scratch arena behave as specified;
//  * the declarative stimulus specs reproduce the legacy closures
//    byte for byte on the event backend.
//
// Every suite name starts with "SimBackends" so tools/check.sh can run
// the file under ThreadSanitizer with `ctest -R '^SimBackends'`.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "cpu/workloads.hpp"
#include "engine/cache.hpp"
#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "netlist/funcsim.hpp"
#include "scpg/transform.hpp"
#include "sim/backend.hpp"
#include "sim/compiled/kernel.hpp"
#include "sim/compiled/words.hpp"
#include "sim/stimulus.hpp"
#include "tech/library.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace scpg;
using namespace scpg::literals;
namespace cw = scpg::sim::compiled;

namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

const Netlist& mult_orig(int w) {
  static std::map<int, Netlist> m;
  auto it = m.find(w);
  if (it == m.end()) it = m.emplace(w, gen::make_multiplier(lib(), w)).first;
  return it->second;
}

const Netlist& mult_gated(int w) {
  static std::map<int, Netlist> m;
  auto it = m.find(w);
  if (it == m.end()) {
    Netlist nl = gen::make_multiplier(lib(), w);
    apply_scpg(nl);
    it = m.emplace(w, std::move(nl)).first;
  }
  return it->second;
}

const cpu::Scm0& scm0_orig() {
  static const cpu::Scm0 s =
      cpu::make_scm0(lib(), cpu::assemble(cpu::workloads::dhrystone_like(2)));
  return s;
}

const cpu::Scm0& scm0_gated() {
  static const cpu::Scm0 s = [] {
    cpu::Scm0 c =
        cpu::make_scm0(lib(), cpu::assemble(cpu::workloads::dhrystone_like(2)));
    apply_scpg(c.netlist, cpu::scm0_scpg_options());
    return c;
  }();
  return s;
}

/// The {mult4, mult8, mult16, SCM0} grid at one backend/job count.  All
/// rows are compiled-eligible (gating overridden off), so the same spec
/// can be forced onto either backend.
engine::SweepSpec grid_spec(int design, sim::Backend b, int jobs) {
  engine::SweepSpec spec;
  if (design < 3) {
    const int w = 4 << design; // 4, 8, 16
    SimConfig cfg;
    cfg.corner = {0.6_V, 25.0};
    spec.design(mult_orig(w), "orig")
        .design(mult_gated(w), "gated")
        .frequencies({250.0_kHz, 1.0_MHz})
        .overrides({true})
        .base_sim(cfg)
        .cycles(6, 2)
        .stimulus(sim::StimulusSpec::random_buses(
            {{"a", w}, {"b", w}}, "simbk:rand" + std::to_string(w)));
  } else {
    spec.design(scm0_orig().netlist, "orig")
        .design(scm0_gated().netlist, "gated")
        .frequency(1.0_MHz)
        .overrides({true})
        .base_sim(cpu::scm0_sim_config())
        .cycles(10, 4)
        .setup(sim::SetupSpec::drives({{"rst_n", Logic::L1}}, "simbk:scm0"));
  }
  spec.jobs(jobs).use_cache(false).backend(b);
  return spec;
}

/// Exact bitwise equality including every tally bucket and the resolved
/// backend: the determinism contract is bit-identical output per backend.
void expect_identical(const engine::SweepResult& a,
                      const engine::SweepResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].avg_power.v, b[i].avg_power.v) << "row " << i;
    EXPECT_EQ(a[i].energy_per_cycle.v, b[i].energy_per_cycle.v)
        << "row " << i;
    EXPECT_EQ(a[i].cycles, b[i].cycles) << "row " << i;
    EXPECT_EQ(a[i].backend, b[i].backend) << "row " << i;
    const PowerTally& ta = a[i].tally;
    const PowerTally& tb = b[i].tally;
    EXPECT_EQ(ta.switching.v, tb.switching.v) << "row " << i;
    EXPECT_EQ(ta.internal.v, tb.internal.v) << "row " << i;
    EXPECT_EQ(ta.leakage_aon.v, tb.leakage_aon.v) << "row " << i;
    EXPECT_EQ(ta.leakage_gated.v, tb.leakage_gated.v) << "row " << i;
    EXPECT_EQ(ta.header_off.v, tb.header_off.v) << "row " << i;
    EXPECT_EQ(ta.rail_recharge.v, tb.rail_recharge.v) << "row " << i;
    EXPECT_EQ(ta.crowbar.v, tb.crowbar.v) << "row " << i;
    EXPECT_EQ(ta.header_gate.v, tb.header_gate.v) << "row " << i;
    EXPECT_EQ(ta.macro_access.v, tb.macro_access.v) << "row " << i;
    EXPECT_EQ(ta.window.v, tb.window.v) << "row " << i;
  }
}

const char* const kGridDesignNames[] = {"mult4", "mult8", "mult16", "scm0"};

double rel_diff(double a, double b) {
  const double m = std::max(std::abs(a), std::abs(b));
  return m > 0 ? std::abs(a - b) / m : 0.0;
}

// ---------------------------------------------------------------------------
// Word-parallel evaluators vs the scalar reference

TEST(SimBackendsWords, TruthTablesMatchScalarEvaluatorOnEveryLane) {
  // For each combinational kind, walk every 4-state input combination
  // (including Z) and verify eval_word() against eval_cell() — with the
  // combination rotated through all 64 lane positions, so no lane is
  // special and no cross-lane leakage goes unnoticed.
  constexpr Logic kVals[4] = {Logic::L0, Logic::L1, Logic::X, Logic::Z};
  for (int ki = 0; ki <= int(CellKind::Macro); ++ki) {
    const auto k = CellKind(ki);
    if (!kind_is_combinational(k)) continue;
    const int n = kind_num_inputs(k);
    int total = 1;
    for (int i = 0; i < n; ++i) total *= 4;
    for (int base = 0; base < total; ++base) {
      cw::Word in[3]{};
      for (int lane = 0; lane < 64; ++lane) {
        const int combo = (base + lane) % total;
        for (int i = 0; i < n; ++i)
          cw::set_lane(in[i], lane, kVals[(combo >> (2 * i)) & 3]);
      }
      const cw::Word out = cw::eval_word(k, in);
      EXPECT_EQ(out.v & out.x, 0u) << kind_name(k) << " base " << base;
      for (int lane = 0; lane < 64; ++lane) {
        const int combo = (base + lane) % total;
        Logic scalar[3];
        for (int i = 0; i < n; ++i) scalar[i] = kVals[(combo >> (2 * i)) & 3];
        const Logic want = eval_cell(k, std::span<const Logic>(scalar, n));
        ASSERT_EQ(cw::get_lane(out, lane), want)
            << kind_name(k) << " combo " << combo << " lane " << lane;
      }
    }
  }
}

TEST(SimBackendsWords, LaneAccessorsFoldZToX) {
  // Z never exists inside the compiled machine: both the broadcast and
  // per-lane writers store it as X, matching eval_cell()'s norm() step.
  EXPECT_EQ(cw::broadcast(Logic::Z), cw::broadcast(Logic::X));
  cw::Word w;
  cw::set_lane(w, 17, Logic::Z);
  EXPECT_EQ(cw::get_lane(w, 17), Logic::X);
  cw::set_lane(w, 17, Logic::L1);
  EXPECT_EQ(cw::get_lane(w, 17), Logic::L1);
  EXPECT_EQ(cw::get_lane(w, 16), Logic::L0);
  EXPECT_EQ(w.v & w.x, 0u);
}

// ---------------------------------------------------------------------------
// The functional facades

TEST(SimBackendsFunc, CompiledSimMatchesFuncSimBitForBit) {
  const Netlist& nl = mult_orig(8);
  cw::CompiledSim cs(nl);
  FuncSim fs(nl);
  cs.reset();
  fs.reset();
  cs.set_input("clk", Logic::L0);
  fs.set_input("clk", Logic::L0);
  // Before any operand arrives every product bit must be X in BOTH sims
  // (flops captured X operands’ products only after a clock; right after
  // reset the array sees X operand registers).
  cs.eval();
  fs.eval();
  for (int i = 0; i < 16; ++i) {
    const std::string p = "p[" + std::to_string(i) + "]";
    EXPECT_EQ(cs.output(p), fs.output(p)) << p << " after reset";
  }
  Rng rng = Rng::stream(7, 0x51u);
  for (int cycle = 0; cycle < 24; ++cycle) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    cs.set_input_bus("a", a, 8);
    cs.set_input_bus("b", b, 8);
    fs.set_input_bus("a", a, 8);
    fs.set_input_bus("b", b, 8);
    cs.clock();
    fs.clock();
    for (int i = 0; i < 16; ++i) {
      const std::string p = "p[" + std::to_string(i) + "]";
      ASSERT_EQ(cs.output(p), fs.output(p)) << p << " cycle " << cycle;
    }
    // Two cycles in (operands then product registered) the output is the
    // known product of the PREVIOUS operands.
    if (cycle >= 2) {
      EXPECT_NO_THROW((void)cs.read_bus("p", 16));
    }
  }
}

TEST(SimBackendsFunc, BatchSimRunsSixtyFourIndependentLanes) {
  const Netlist& nl = mult_orig(8);
  cw::BatchSim bs(nl);
  bs.reset();
  bs.set_input_word("clk", cw::broadcast(Logic::L0));
  Rng rng = Rng::stream(9, 0xBA7C);
  std::uint64_t a[64], b[64];
  for (int lane = 0; lane < 64; ++lane) {
    a[lane] = rng.bits(8);
    b[lane] = rng.bits(8);
    bs.set_input_bus_lane(lane, "a", a[lane], 8);
    bs.set_input_bus_lane(lane, "b", b[lane], 8);
  }
  bs.clock(); // operands registered
  bs.clock(); // product registered
  for (int lane = 0; lane < 64; ++lane)
    EXPECT_EQ(bs.read_bus_lane(lane, "p", 16), a[lane] * b[lane])
        << "lane " << lane;
}

TEST(SimBackendsFunc, BatchSimRejectsMacroNetlists) {
  // Behavioural macro models are scalar; the 64-lane machine must refuse
  // the SCM0 (its ROM is a macro) instead of silently simulating lane 0.
  EXPECT_THROW(cw::BatchSim bs(scm0_orig().netlist), Error);
}

// ---------------------------------------------------------------------------
// Engine: jobs-invariance per backend, cross-backend contract

using GridParam = std::tuple<int, int>;
class SimBackendsGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(SimBackendsGrid, ParallelBitIdenticalToSerial) {
  const auto [design, bi] = GetParam();
  const sim::Backend b =
      bi == 0 ? sim::Backend::Event : sim::Backend::Compiled;
  const engine::SweepResult serial =
      engine::Experiment(grid_spec(design, b, 1)).run();
  const engine::SweepResult parallel =
      engine::Experiment(grid_spec(design, b, 8)).run();
  expect_identical(serial, parallel);
  for (const auto& row : serial) EXPECT_EQ(row.backend, b);
}

INSTANTIATE_TEST_SUITE_P(
    SimBackendsAllDesigns, SimBackendsGrid,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::string(kGridDesignNames[std::get<0>(info.param)]) +
             (std::get<1>(info.param) == 0 ? "_event" : "_compiled");
    });

class SimBackendsCross : public ::testing::TestWithParam<int> {};

TEST_P(SimBackendsCross, WindowExactPowerWithinTolerance) {
  // The cross-backend contract (DESIGN.md §13): sampled state, RNG
  // streams, cycle counts and the measurement window are bit-identical;
  // power is an estimator output — the compiled kernel settles
  // zero-delay and cannot see glitch energy, so totals agree only within
  // a tolerance while leakage (a pure function of window and state
  // residency) stays tight.
  const int design = GetParam();
  const engine::SweepResult ev =
      engine::Experiment(grid_spec(design, sim::Backend::Event, 1)).run();
  const engine::SweepResult co =
      engine::Experiment(grid_spec(design, sim::Backend::Compiled, 1)).run();
  ASSERT_EQ(ev.size(), co.size());
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].cycles, co[i].cycles) << "row " << i;
    EXPECT_EQ(ev[i].tally.window.v, co[i].tally.window.v) << "row " << i;
    EXPECT_GT(ev[i].avg_power.v, 0.0) << "row " << i;
    EXPECT_GT(co[i].avg_power.v, 0.0) << "row " << i;
    EXPECT_LT(rel_diff(ev[i].tally.leakage_total().v,
                       co[i].tally.leakage_total().v),
              0.10)
        << "row " << i;
    EXPECT_LT(rel_diff(ev[i].avg_power.v, co[i].avg_power.v), 0.50)
        << "row " << i;
    EXPECT_EQ(ev[i].backend, sim::Backend::Event);
    EXPECT_EQ(co[i].backend, sim::Backend::Compiled);
  }
}

INSTANTIATE_TEST_SUITE_P(SimBackendsAllDesigns, SimBackendsCross,
                         ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kGridDesignNames[info.param];
                         });

// ---------------------------------------------------------------------------
// Backend resolution and eligibility

TEST(SimBackendsSelect, ResolveFollowsEligibility) {
  sim::MeasureRequest rq;
  rq.nl = &mult_gated(8);
  rq.cfg.corner = {0.6_V, 25.0};
  rq.override_gating = false; // gating engaged: per-event rail timing
  std::string why;
  EXPECT_EQ(sim::resolve_backend(sim::Backend::Auto, rq, &why),
            sim::Backend::Event);
  EXPECT_FALSE(why.empty());
  EXPECT_THROW((void)sim::resolve_backend(sim::Backend::Compiled, rq), Error);
  EXPECT_EQ(sim::resolve_backend(sim::Backend::Event, rq),
            sim::Backend::Event);

  rq.override_gating = true; // rail pinned up: compiled can model it
  EXPECT_EQ(sim::resolve_backend(sim::Backend::Auto, rq),
            sim::Backend::Compiled);
  EXPECT_EQ(sim::resolve_backend(sim::Backend::Compiled, rq),
            sim::Backend::Compiled);

  // An opaque closure pins the point to the event backend.
  const sim::StimulusSpec closure = sim::StimulusSpec::closure(
      [](Simulator&, int, Rng&) {}, "opaque");
  rq.stimulus = &closure;
  EXPECT_EQ(sim::resolve_backend(sim::Backend::Auto, rq),
            sim::Backend::Event);
  EXPECT_THROW((void)sim::resolve_backend(sim::Backend::Compiled, rq), Error);

  // A design with no headers is eligible regardless of the override.
  sim::MeasureRequest plain;
  plain.nl = &mult_orig(8);
  plain.cfg.corner = {0.6_V, 25.0};
  EXPECT_EQ(sim::resolve_backend(sim::Backend::Auto, plain),
            sim::Backend::Compiled);
}

TEST(SimBackendsSelect, ForcedCompiledThrowsOnClosureSweep) {
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  engine::SweepSpec spec;
  spec.design(mult_orig(8))
      .frequency(1.0_MHz)
      .base_sim(cfg)
      .cycles(4, 2)
      .use_cache(false)
      .stimulus(
          [](Simulator& s, int, Rng& rng) {
            s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(8), 8);
            s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(8), 8);
          },
          "simbk:closure")
      .backend(sim::Backend::Compiled);
  EXPECT_THROW((void)engine::Experiment(std::move(spec)).run(), Error);
}

TEST(SimBackendsSelect, AutoResolvesPerRow) {
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  engine::SweepSpec spec;
  spec.design(mult_orig(8), "orig")
      .design(mult_gated(8), "gated")
      .frequency(1.0_MHz)
      .overrides({false, true})
      .base_sim(cfg)
      .cycles(4, 2)
      .use_cache(false)
      .jobs(1)
      .stimulus(sim::StimulusSpec::random_buses({{"a", 8}, {"b", 8}},
                                                "simbk:auto"))
      .backend(sim::Backend::Auto);
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();
  ASSERT_EQ(res.size(), 4u);
  // Grid order designs > overrides: the ungated design is eligible either
  // way; the gated one only when the override pins its rail up.
  EXPECT_EQ(res[0].backend, sim::Backend::Compiled);
  EXPECT_EQ(res[1].backend, sim::Backend::Compiled);
  EXPECT_EQ(res[2].backend, sim::Backend::Event);
  EXPECT_EQ(res[3].backend, sim::Backend::Compiled);
}

TEST(SimBackendsSelect, CacheHitsKeepTheResolvedBackend) {
  engine::ResultCache::global().clear();
  auto make = [] {
    engine::SweepSpec spec = grid_spec(1, sim::Backend::Auto, 2);
    spec.use_cache(true);
    return spec;
  };
  const engine::SweepResult first = engine::Experiment(make()).run();
  EXPECT_EQ(first.cache_hits(), 0u);
  const engine::SweepResult second = engine::Experiment(make()).run();
  EXPECT_EQ(second.cache_hits(), second.size());
  expect_identical(first, second);
  for (const auto& row : second) EXPECT_TRUE(row.cache_hit);
}

TEST(SimBackendsSelect, CompiledRowsDoNotAliasEventCacheEntries) {
  // The compiled backend salts its cache keys: an event-measured entry
  // must never satisfy a compiled row (their power estimates differ by
  // design), and vice versa.
  engine::ResultCache::global().clear();
  auto make = [](sim::Backend b) {
    engine::SweepSpec spec = grid_spec(1, b, 1);
    spec.use_cache(true);
    return spec;
  };
  (void)engine::Experiment(make(sim::Backend::Event)).run();
  const engine::SweepResult cold =
      engine::Experiment(make(sim::Backend::Compiled)).run();
  EXPECT_EQ(cold.cache_hits(), 0u);
  const engine::SweepResult warm =
      engine::Experiment(make(sim::Backend::Compiled)).run();
  EXPECT_EQ(warm.cache_hits(), warm.size());
  engine::ResultCache::global().clear();
}

// ---------------------------------------------------------------------------
// Scratch arena reuse

TEST(SimBackendsScratch, ArenaIsReusedAcrossPointsOnOneThread) {
  // jobs(1) runs inline on this thread, so every compiled point borrows
  // THIS thread's scratch arena; after the first borrow sizes it, every
  // later borrow must be served from capacity.  Distinct frequencies
  // (not seeds) keep each point its own measure_group call — seed rows
  // would pack into one bit-parallel unit sharing a single borrow.
  const cw::ScratchStats before = cw::scratch_stats();
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  engine::SweepSpec spec;
  spec.design(mult_orig(8))
      .frequencies({200.0_kHz, 250.0_kHz, 400.0_kHz, 500.0_kHz, 800.0_kHz,
                    1.0_MHz})
      .base_sim(cfg)
      .cycles(4, 2)
      .use_cache(false)
      .jobs(1)
      .stimulus(sim::StimulusSpec::random_buses({{"a", 8}, {"b", 8}},
                                                "simbk:scratch"))
      .backend(sim::Backend::Compiled);
  (void)engine::Experiment(std::move(spec)).run();
  const cw::ScratchStats after = cw::scratch_stats();
  const std::size_t acquired = after.acquisitions - before.acquisitions;
  const std::size_t reused = after.reuses - before.reuses;
  EXPECT_GE(acquired, 6u);
  // At most the first borrow may grow the arena.
  EXPECT_GE(reused + 1, acquired);
}

// ---------------------------------------------------------------------------
// Declarative specs reproduce the legacy closures (event backend)

TEST(SimBackendsDecl, RandomBusesMatchesLegacyClosure) {
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  auto base = [&] {
    engine::SweepSpec spec;
    spec.design(mult_orig(8))
        .frequency(1.0_MHz)
        .base_sim(cfg)
        .cycles(6, 2)
        .use_cache(false)
        .backend(sim::Backend::Event);
    return spec;
  };
  engine::SweepSpec closure = base();
  closure.stimulus(
      [](Simulator& s, int, Rng& rng) {
        s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(8), 8);
        s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(8), 8);
      },
      "simbk:decl-buses");
  engine::SweepSpec decl = base();
  decl.stimulus(sim::StimulusSpec::random_buses({{"a", 8}, {"b", 8}},
                                                "simbk:decl-buses"));
  // Identical keys -> identical digests -> identical RNG streams; the
  // declarative spec must then replay the exact same event schedule.
  expect_identical(engine::Experiment(std::move(closure)).run(),
                   engine::Experiment(std::move(decl)).run());
}

TEST(SimBackendsDecl, RandomInputsMatchesLegacyCampaignClosure) {
  // The campaign's historical closure, verbatim — including the cycle-0
  // short-circuit that pins every input without consuming a uniform()
  // draw.  StimulusSpec::random_inputs must reproduce it byte for byte.
  const double activity = 0.35;
  auto legacy = [activity](Simulator& s, int cycle, Rng& rng) {
    const Netlist& nl = s.netlist();
    for (const Port& p : nl.ports()) {
      if (p.dir != PortDir::In) continue;
      if (p.name == "clk" || p.name == "override_n" || p.name == "rst_n")
        continue;
      if (cycle == 0 || rng.uniform() < activity)
        s.drive_at(s.now() + to_fs(1.0_ns), p.net,
                   rng.bits(1) ? Logic::L1 : Logic::L0);
    }
  };
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  auto base = [&] {
    engine::SweepSpec spec;
    spec.design(mult_gated(8))
        .frequency(1.0_MHz)
        .overrides({true})
        .base_sim(cfg)
        .cycles(6, 2)
        .use_cache(false)
        .backend(sim::Backend::Event);
    return spec;
  };
  engine::SweepSpec closure = base();
  closure.stimulus(legacy, "simbk:decl-inputs");
  engine::SweepSpec decl = base();
  decl.stimulus(
      sim::StimulusSpec::random_inputs(activity, "clk", "simbk:decl-inputs"));
  expect_identical(engine::Experiment(std::move(closure)).run(),
                   engine::Experiment(std::move(decl)).run());
}

} // namespace
