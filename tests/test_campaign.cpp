// Tests for the multi-process campaign executor (src/campaign): the
// frame codec, spec round-tripping, and — the core contract — that a
// sharded, supervised, crash-injected campaign produces results
// bit-identical to the in-process engine at every worker count.
//
// Suite names start with "Campaign", NOT "Engine": tools/check.sh runs
// `ctest -R '^Engine'` under ThreadSanitizer, and these tests fork
// worker subprocesses, which TSan instruments poorly.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "campaign/coordinator.hpp"
#include "campaign/frame.hpp"
#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "netlist/verilog.hpp"
#include "util/error.hpp"

using namespace scpg;

namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

/// An ungated multiplier written to disk once: campaigns address designs
/// by netlist *path* (the spec must cross process boundaries).
const std::string& netlist_path() {
  static const std::string path = [] {
    const std::string p = testing::TempDir() + "campaign_mult4_" +
                          std::to_string(::getpid()) + ".v";
    const Netlist nl = gen::make_multiplier(lib(), 4);
    std::ofstream os(p);
    write_verilog(nl, os);
    return p;
  }();
  return path;
}

campaign::CampaignSpec small_spec() {
  campaign::CampaignSpec s;
  s.netlist_path = netlist_path();
  s.points = 3;
  s.cycles = 4;
  s.fmax_mhz = 10.0;
  s.seed = 5;
  return s;
}

/// Uninterrupted single-threaded in-process reference.
const engine::SweepResult& reference() {
  static const engine::SweepResult res = [] {
    const campaign::CampaignPlan plan =
        campaign::build_campaign(lib(), small_spec());
    return plan.experiment->run();
  }();
  return res;
}

/// Bitwise equality against the reference — the determinism contract is
/// bit-identical output, not a tolerance.
void expect_matches_reference(const campaign::CampaignOutcome& out) {
  const engine::SweepResult& ref = reference();
  ASSERT_EQ(out.results.size(), ref.size());
  ASSERT_TRUE(out.complete());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(out.results[i].avg_power.v, ref[i].avg_power.v) << "row " << i;
    EXPECT_EQ(out.results[i].energy_per_cycle.v, ref[i].energy_per_cycle.v)
        << "row " << i;
    EXPECT_EQ(out.results[i].tally.total().v, ref[i].tally.total().v)
        << "row " << i;
    EXPECT_EQ(out.results[i].cycles, ref[i].cycles) << "row " << i;
    EXPECT_EQ(out.results[i].point.tag, ref[i].point.tag) << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(CampaignFrame, RoundTripsPayload) {
  const std::string frame = campaign::encode_frame("{\"kind\": \"x\"}");
  ASSERT_EQ(frame.back(), '\n');
  const json::Value payload =
      campaign::decode_frame(std::string_view(frame).substr(0, frame.size() - 1),
                             "t", 1);
  ASSERT_NE(payload.get("kind"), nullptr);
  EXPECT_EQ(payload.get("kind")->str, "x");
}

TEST(CampaignFrame, RejectsCorruption) {
  std::string frame = campaign::encode_frame("{\"kind\": \"x\"}");
  frame.pop_back(); // newline handled by caller
  // Bad magic.
  EXPECT_THROW(campaign::decode_frame("XXPGF1" + frame.substr(6), "t", 1),
               ParseError);
  // Flip one payload byte: CRC must catch it.
  std::string flipped = frame;
  flipped[flipped.size() / 2] ^= 0x04;
  EXPECT_THROW(campaign::decode_frame(flipped, "t", 1), ParseError);
  // Truncated tail (still no newline): CRC over a prefix cannot match.
  EXPECT_THROW(campaign::decode_frame(frame.substr(0, frame.size() - 3),
                                      "t", 1),
               ParseError);
  // Wrong tool name with a *valid* CRC: the envelope check must fire.
  const std::string env =
      "{\"schema_version\": 1, \"tool\": \"impostor\", \"payload\": {}}";
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x", campaign::crc32(env));
  EXPECT_THROW(
      campaign::decode_frame("SCPGF1 " + std::string(crc_hex) + " " + env,
                             "t", 1),
      ParseError);
}

TEST(CampaignFrame, Hex64RoundTrips) {
  for (const std::uint64_t v :
       {std::uint64_t(0), std::uint64_t(1), ~std::uint64_t(0),
        std::uint64_t(0x0123456789abcdefULL)}) {
    EXPECT_EQ(campaign::parse_hex64(campaign::hex64(v), "t", 1), v);
  }
  EXPECT_THROW((void)campaign::parse_hex64("abc", "t", 1), ParseError);
  EXPECT_THROW((void)campaign::parse_hex64("zzzzzzzzzzzzzzzz", "t", 1),
               ParseError);
  const double d = -1.75e-9;
  EXPECT_EQ(campaign::bits_double(campaign::double_bits(d)), d);
}

// ---------------------------------------------------------------------------
// Spec

TEST(CampaignSpec, JsonRoundTripIsCanonical) {
  const campaign::CampaignSpec s = small_spec();
  const std::string text = campaign::to_json(s);
  const campaign::CampaignSpec back =
      campaign::spec_from_json(json::parse(text), "t", 1);
  EXPECT_EQ(campaign::to_json(back), text);
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.netlist_path, s.netlist_path);
}

TEST(CampaignSpec, RejectsMalformedSpecs) {
  const std::string good = campaign::to_json(small_spec());
  EXPECT_THROW(campaign::spec_from_json(json::parse("[1,2]"), "t", 1),
               ParseError);
  EXPECT_THROW(campaign::spec_from_json(json::parse("{}"), "t", 1),
               ParseError);
  // points < 2 is rejected (the grid divides by points-1).
  json::Value v = json::parse(good);
  v.obj["points"].num = 1;
  EXPECT_THROW(campaign::spec_from_json(v, "t", 1), ParseError);
}

TEST(CampaignSpec, PlanDigestIsReproducible) {
  const campaign::CampaignPlan a = campaign::build_campaign(lib(), small_spec());
  const campaign::CampaignPlan b = campaign::build_campaign(lib(), small_spec());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_GT(a.points().size(), 0u);
  campaign::CampaignSpec other = small_spec();
  other.seed = 6;
  EXPECT_NE(campaign::build_campaign(lib(), other).digest, a.digest);
}

// ---------------------------------------------------------------------------
// Campaign determinism under worker counts x kill schedules

enum class Schedule { None, KillOneMidRun, KillAllThenResume };

struct Case {
  int workers;
  Schedule schedule;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const char* s = info.param.schedule == Schedule::None ? "clean"
                  : info.param.schedule == Schedule::KillOneMidRun
                      ? "killone"
                      : "killallresume";
  return "w" + std::to_string(info.param.workers) + "_" + s;
}

class CampaignDeterminism : public testing::TestWithParam<Case> {};

TEST_P(CampaignDeterminism, MatchesInProcessEngineBitForBit) {
  const Case c = GetParam();
  const campaign::CampaignPlan plan =
      campaign::build_campaign(lib(), small_spec());

  campaign::CoordinatorOptions opt;
  opt.workers = c.workers; // fork-mode workers (no argv)
  opt.shard_size = 2;
  opt.heartbeat_ms = 200;
  // The parameterized test name contains a '/', which cannot appear in a
  // filename component.
  std::string case_tag =
      testing::UnitTest::GetInstance()->current_test_info()->name();
  std::replace(case_tag.begin(), case_tag.end(), '/', '_');
  const std::string journal =
      testing::TempDir() + "campaign_" + case_tag + "_" +
      std::to_string(::getpid()) + ".journal";

  switch (c.schedule) {
    case Schedule::None: {
      const campaign::CampaignOutcome out = run_campaign(plan, opt);
      expect_matches_reference(out);
      EXPECT_EQ(out.retries, 0u);
      break;
    }
    case Schedule::KillOneMidRun: {
      // Every initial worker dies right before global row 1, so whichever
      // worker receives that range crashes; the range is requeued and a
      // later (clean) replacement finishes it.  The attempt budget covers
      // the worst case of every initial worker crashing on it in turn.
      opt.worker_crash_at_row = 1;
      opt.crash_worker_limit = c.workers;
      opt.max_attempts = c.workers + 2;
      const campaign::CampaignOutcome out = run_campaign(plan, opt);
      expect_matches_reference(out);
      EXPECT_GE(out.retries, 1u);
      // A replacement may be spawned, or a surviving worker may absorb
      // the requeued range — either way no spawn is ever lost.
      EXPECT_GE(out.workers_spawned, std::size_t(c.workers));
      break;
    }
    case Schedule::KillAllThenResume: {
      // Phase 1: every worker crashes at row 1 and the retry budget is
      // one attempt — the row's range poisons, everything else lands in
      // the journal.
      std::remove(journal.c_str());
      opt.journal_path = journal;
      opt.worker_crash_at_row = 1;
      opt.crash_worker_limit = 1000;
      opt.max_attempts = 1;
      const campaign::CampaignOutcome broken = run_campaign(plan, opt);
      ASSERT_FALSE(broken.complete());
      ASSERT_FALSE(broken.poisoned_rows.empty());

      // Phase 2: resume without the fault.  Journaled rows are skipped,
      // poisoned rows re-run, and the result is bit-identical to an
      // uninterrupted run.
      campaign::CoordinatorOptions again;
      again.workers = c.workers;
      again.shard_size = 2;
      again.heartbeat_ms = 200;
      again.journal_path = journal;
      again.resume = true;
      const campaign::CampaignOutcome out = run_campaign(plan, again);
      expect_matches_reference(out);
      EXPECT_GT(out.resumed_skipped, 0u);
      EXPECT_EQ(out.resumed_skipped + broken.poisoned_rows.size(),
                out.results.size());

      // The journal now holds every row and passes a strict re-parse.
      const campaign::JournalContents jc =
          campaign::read_journal(journal, /*allow_torn_tail=*/false);
      EXPECT_EQ(jc.entries.size(), jc.total_rows);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkerMatrix, CampaignDeterminism,
    testing::ValuesIn(std::vector<Case>{
        {1, Schedule::None},
        {2, Schedule::None},
        {4, Schedule::None},
        {1, Schedule::KillOneMidRun},
        {2, Schedule::KillOneMidRun},
        {4, Schedule::KillOneMidRun},
        {1, Schedule::KillAllThenResume},
        {2, Schedule::KillAllThenResume},
        {4, Schedule::KillAllThenResume},
    }),
    case_name);

// ---------------------------------------------------------------------------
// Coordinator edge behavior

TEST(CampaignCoordinator, InProcessPathJournalsAndMatches) {
  const campaign::CampaignPlan plan =
      campaign::build_campaign(lib(), small_spec());
  const std::string journal = testing::TempDir() + "campaign_inproc_" +
                              std::to_string(::getpid()) + ".journal";
  std::remove(journal.c_str());
  campaign::CoordinatorOptions opt;
  opt.workers = 0;
  opt.journal_path = journal;
  const campaign::CampaignOutcome out = run_campaign(plan, opt);
  expect_matches_reference(out);
  const campaign::JournalContents jc =
      campaign::read_journal(journal, /*allow_torn_tail=*/false);
  EXPECT_EQ(jc.campaign_digest, plan.digest);
  EXPECT_EQ(jc.entries.size(), out.results.size());
}

TEST(CampaignCoordinator, ResumeRejectsForeignJournal) {
  // Journal written by campaign A must not resume campaign B.
  const campaign::CampaignPlan a =
      campaign::build_campaign(lib(), small_spec());
  const std::string journal = testing::TempDir() + "campaign_foreign_" +
                              std::to_string(::getpid()) + ".journal";
  std::remove(journal.c_str());
  campaign::CoordinatorOptions opt;
  opt.workers = 0;
  opt.journal_path = journal;
  (void)run_campaign(a, opt);

  campaign::CampaignSpec other = small_spec();
  other.seed = 99;
  const campaign::CampaignPlan b = campaign::build_campaign(lib(), other);
  campaign::CoordinatorOptions res;
  res.workers = 0;
  res.journal_path = journal;
  res.resume = true;
  EXPECT_THROW((void)run_campaign(b, res), Error);
}

TEST(CampaignCoordinator, ResultDigestCoversMeasurementBits) {
  std::vector<engine::PointResult> rows(2);
  rows[0].avg_power = Power{1.0};
  rows[1].avg_power = Power{2.0};
  const std::uint64_t d1 = campaign::result_digest(rows);
  rows[1].avg_power.v = std::nextafter(2.0, 3.0); // one ulp
  EXPECT_NE(campaign::result_digest(rows), d1);
}

} // namespace
