// Adversarial robustness battery for the serve daemon's disk-backed
// result cache (src/serve/diskcache.hpp), in the spirit of
// test_journal_robustness.cpp: the cache file is advisory, never
// trusted, and under any corruption the loader must either reproduce an
// entry's exact bytes or drop it — a WRONG cached result is the one
// unacceptable outcome, because it would silently break the daemon's
// byte-identity contract.
//
// The sweeps below truncate a pristine file at every byte offset and
// flip bits across the file at a stride, then reload each mutation into
// a fresh cache and check three invariants:
//
//   1. every loaded entry is bit-identical (full 64-bit double patterns,
//      sign of zero and denormals included) to the entry the writer
//      stored under that key — corruption may shrink the cache, never
//      skew it;
//   2. rejections are located (the report's reason names path:line) and
//      the file is rebuilt in place from the surviving prefix;
//   3. the rebuilt file reloads cleanly — recovery converges in one
//      round.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "campaign/frame.hpp"
#include "engine/cache.hpp"
#include "serve/diskcache.hpp"
#include "util/error.hpp"

namespace scpg {
namespace {

using engine::CacheKey;
using engine::Measurement;
using engine::ResultCache;
using serve::DiskCache;

constexpr int kEntries = 6;

CacheKey key_of(int i) {
  return CacheKey{0xabc0'0000 + std::uint64_t(i),
                  0x5eed'0000 + std::uint64_t(i)};
}

/// Deliberately awkward bit patterns: negative zero, a denormal, a
/// non-terminating binary fraction.  Decimal round-tripping would mangle
/// all three; the hex64 encoding must not.
Measurement meas_of(int i) {
  Measurement m;
  m.cycles = 3 + i;
  m.avg_power.v = 1.25e-6 * double(i + 1);
  m.energy_per_cycle.v = 3.5e-12 * double(i + 1);
  PowerTally& t = m.tally;
  t.switching.v = 1e-13 * double(i);
  t.internal.v = 2e-13 * double(i);
  t.leakage_aon.v = 5e-15 / double(i + 1);
  t.leakage_gated.v = 4e-16 * double(i);
  t.header_off.v = (i % 2 != 0) ? -0.0 : 0.0;
  t.rail_recharge.v = 0x1p-1060 * double(i + 1); // subnormal
  t.crowbar.v = 7.75e-14;
  t.header_gate.v = 6e-15 * double(i);
  t.macro_access.v = 0.0;
  t.window.v = double(i + 1) / 3.0;
  return m;
}

void expect_bit_identical(const Measurement& got, const Measurement& want,
                          const std::string& context) {
  using campaign::double_bits;
  EXPECT_EQ(got.cycles, want.cycles) << context;
  EXPECT_EQ(double_bits(got.avg_power.v), double_bits(want.avg_power.v))
      << context;
  EXPECT_EQ(double_bits(got.energy_per_cycle.v),
            double_bits(want.energy_per_cycle.v))
      << context;
  const PowerTally& g = got.tally;
  const PowerTally& w = want.tally;
  EXPECT_EQ(double_bits(g.switching.v), double_bits(w.switching.v)) << context;
  EXPECT_EQ(double_bits(g.internal.v), double_bits(w.internal.v)) << context;
  EXPECT_EQ(double_bits(g.leakage_aon.v), double_bits(w.leakage_aon.v))
      << context;
  EXPECT_EQ(double_bits(g.leakage_gated.v), double_bits(w.leakage_gated.v))
      << context;
  EXPECT_EQ(double_bits(g.header_off.v), double_bits(w.header_off.v))
      << context;
  EXPECT_EQ(double_bits(g.rail_recharge.v), double_bits(w.rail_recharge.v))
      << context;
  EXPECT_EQ(double_bits(g.crowbar.v), double_bits(w.crowbar.v)) << context;
  EXPECT_EQ(double_bits(g.header_gate.v), double_bits(w.header_gate.v))
      << context;
  EXPECT_EQ(double_bits(g.macro_access.v), double_bits(w.macro_access.v))
      << context;
  EXPECT_EQ(double_bits(g.window.v), double_bits(w.window.v)) << context;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Writes a pristine cache file holding kEntries entries (store order
/// 0..kEntries-1, so entry 0 is the coldest) and returns its bytes.
std::string pristine_file(const std::string& path) {
  std::remove(path.c_str());
  ResultCache mem;
  DiskCache dc(path, mem);
  const DiskCache::LoadReport rep = dc.open();
  EXPECT_EQ(rep.loaded, 0u);
  for (int i = 0; i < kEntries; ++i) mem.store(key_of(i), meas_of(i));
  dc.close();
  return read_file(path);
}

/// Loads `text` as a cache file into a fresh memory cache, checks the
/// no-wrong-results invariant against meas_of, and returns the report.
/// `out_mem` (optional) receives the loaded cache for further checks.
DiskCache::LoadReport load_mutation(const std::string& path,
                                    const std::string& text,
                                    const std::string& context,
                                    ResultCache* out_mem = nullptr) {
  write_file(path, text);
  ResultCache mem;
  DiskCache dc(path, mem);
  const DiskCache::LoadReport rep = dc.open();
  const auto rows = mem.entries_mru();
  for (const auto& [key, m] : rows) {
    const int i = int(key.lo - key_of(0).lo);
    if (i < 0 || i >= kEntries) {
      ADD_FAILURE() << context << ": loaded an entry under a key the writer "
                    << "never stored (corruption smuggled data in)";
      continue;
    }
    EXPECT_EQ(key.hi, key_of(i).hi) << context;
    expect_bit_identical(m, meas_of(i), context);
  }
  if (out_mem != nullptr) {
    // Replay coldest-first so out_mem ends in the same recency order.
    for (auto it = rows.rbegin(); it != rows.rend(); ++it)
      out_mem->store(it->first, it->second);
  }
  dc.close();
  return rep;
}

class CachePersistenceTest : public testing::Test {
protected:
  void SetUp() override {
    // ctest runs each case as its own process against the shared
    // TempDir, so the working file is salted per test and pid.
    const testing::TestInfo* info =
        testing::UnitTest::GetInstance()->current_test_info();
    path_ = testing::TempDir() + "persist_" + std::to_string(::getpid()) +
            "_" + info->name() + ".cache";
    pristine_ = pristine_file(path_);
    ASSERT_FALSE(pristine_.empty());
  }

  std::string path_;
  std::string pristine_;
};

TEST_F(CachePersistenceTest, PristineRoundTripRestoresEveryBitAndTheLru) {
  ResultCache mem;
  const DiskCache::LoadReport rep =
      load_mutation(path_, pristine_, "pristine", &mem);
  EXPECT_EQ(rep.loaded, std::size_t(kEntries));
  EXPECT_EQ(rep.rejected, 0u);
  EXPECT_FALSE(rep.rebuilt);
  EXPECT_FALSE(rep.dropped_torn_tail);
  EXPECT_TRUE(rep.reject_reason.empty());
  // Store order 0..N-1 means N-1 was hottest; MRU order must match.
  const auto entries = mem.entries_mru();
  ASSERT_EQ(entries.size(), std::size_t(kEntries));
  for (int i = 0; i < kEntries; ++i)
    EXPECT_EQ(entries[std::size_t(i)].first.lo,
              key_of(kEntries - 1 - i).lo)
        << "reload did not reconstruct the writer's recency order";
}

TEST_F(CachePersistenceTest, EveryOffsetTruncation) {
  for (std::size_t len = 0; len < pristine_.size(); ++len) {
    const std::string context = "truncated to " + std::to_string(len);
    const std::string cut = pristine_.substr(0, len);
    const bool at_boundary = len == 0 || cut.back() == '\n';
    const DiskCache::LoadReport rep = load_mutation(path_, cut, context);

    EXPECT_LE(rep.loaded, std::size_t(kEntries)) << context;
    if (at_boundary) {
      // A prefix of complete lines is simply a shorter valid file.
      EXPECT_EQ(rep.rejected, 0u) << context;
      EXPECT_FALSE(rep.dropped_torn_tail) << context;
    } else {
      // Mid-line cut: exactly what a SIGKILLed append leaves.  The torn
      // tail is dropped, everything above it survives, and the file is
      // rebuilt without it.
      EXPECT_TRUE(rep.dropped_torn_tail) << context;
      EXPECT_TRUE(rep.rebuilt) << context;
    }

    // Recovery converges: the rebuilt file reloads cleanly and keeps
    // exactly what survived.
    const DiskCache::LoadReport again =
        load_mutation(path_, read_file(path_), context + " (rebuilt)");
    EXPECT_EQ(again.loaded, rep.loaded) << context;
    EXPECT_EQ(again.rejected, 0u) << context;
    EXPECT_FALSE(again.dropped_torn_tail) << context;
  }
}

TEST_F(CachePersistenceTest, BitFlipSweep) {
  // Stride-7 walk hits every byte position class (magic, CRC, payload,
  // newline); three masks cover a low bit, a case-changing bit and the
  // high bit.
  for (std::size_t pos = 0; pos < pristine_.size(); pos += 7) {
    for (const unsigned char mask : {0x01, 0x20, 0x80}) {
      std::string mutated = pristine_;
      mutated[pos] = char(static_cast<unsigned char>(mutated[pos]) ^ mask);
      const std::string context = "bit flip at " + std::to_string(pos) +
                                  " mask " + std::to_string(int(mask));

      const DiskCache::LoadReport rep = load_mutation(path_, mutated, context);

      // Single-bit damage to a CRC-framed line cannot go unnoticed: the
      // load either rejects from the damaged line (located reason) or,
      // when the final newline itself was hit, drops the torn tail.
      EXPECT_TRUE(rep.rejected != 0 || rep.dropped_torn_tail) << context;
      EXPECT_TRUE(rep.rebuilt) << context;
      EXPECT_LT(rep.loaded, std::size_t(kEntries)) << context;
      if (rep.rejected != 0) {
        EXPECT_NE(rep.reject_reason.find(path_ + ":"), std::string::npos)
            << context << ": reason not located: " << rep.reject_reason;
      }

      const DiskCache::LoadReport again =
          load_mutation(path_, read_file(path_), context + " (rebuilt)");
      EXPECT_EQ(again.loaded, rep.loaded) << context;
      EXPECT_EQ(again.rejected, 0u) << context;
    }
  }
}

TEST_F(CachePersistenceTest, TornAppendTailIsDroppedSilently) {
  const std::string torn =
      pristine_ + "SCPGF1 0badc0de {\"schema_version\": 1, \"tool";
  const DiskCache::LoadReport rep = load_mutation(path_, torn, "torn append");
  EXPECT_EQ(rep.loaded, std::size_t(kEntries));
  EXPECT_EQ(rep.rejected, 0u);
  EXPECT_TRUE(rep.dropped_torn_tail);
  EXPECT_TRUE(rep.rebuilt);
}

TEST_F(CachePersistenceTest, CacheVersionMismatchRejectsWholesale) {
  const std::string file = campaign::encode_frame(
      "{\"kind\": \"header\", \"cache_version\": 999, \"key_schema\": \"" +
          std::string(DiskCache::kKeySchema) + "\"}",
      DiskCache::kCacheTool);
  const DiskCache::LoadReport rep = load_mutation(path_, file, "version");
  EXPECT_EQ(rep.loaded, 0u);
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_TRUE(rep.rebuilt);
  EXPECT_NE(rep.reject_reason.find(path_ + ":1"), std::string::npos)
      << rep.reject_reason;
  EXPECT_NE(rep.reject_reason.find("cache_version"), std::string::npos)
      << rep.reject_reason;
}

TEST_F(CachePersistenceTest, KeySchemaMismatchRejectsWholesale) {
  // A build whose digest or backend-salt scheme changed must refuse to
  // serve entries keyed under the old scheme — that is the one corruption
  // CRCs cannot catch.
  const std::string file = campaign::encode_frame(
      "{\"kind\": \"header\", \"cache_version\": " +
          std::to_string(DiskCache::kCacheVersion) +
          ", \"key_schema\": \"fnv1a128+backend-salt:v0\"}",
      DiskCache::kCacheTool);
  const DiskCache::LoadReport rep = load_mutation(path_, file, "schema");
  EXPECT_EQ(rep.loaded, 0u);
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_NE(rep.reject_reason.find("key_schema mismatch"), std::string::npos)
      << rep.reject_reason;
  EXPECT_NE(rep.reject_reason.find(path_ + ":1"), std::string::npos)
      << rep.reject_reason;
}

TEST_F(CachePersistenceTest, EntryBeforeHeaderRejects) {
  // Strip the header line off the pristine file: valid CRC frames, wrong
  // shape.
  const std::size_t first_nl = pristine_.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  const DiskCache::LoadReport rep = load_mutation(
      path_, pristine_.substr(first_nl + 1), "entry before header");
  EXPECT_EQ(rep.loaded, 0u);
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_NE(rep.reject_reason.find("before header"), std::string::npos)
      << rep.reject_reason;
}

TEST_F(CachePersistenceTest, ForeignToolFileRejectsAtLineOne) {
  // A campaign journal (or any other CRC-framed artifact) fed to the
  // cache loader must reject on the envelope tool, not half-parse.
  const std::string file = campaign::encode_frame(
      "{\"kind\": \"header\", \"cache_version\": 1, \"key_schema\": \"x\"}",
      "scpgc-campaign");
  const DiskCache::LoadReport rep = load_mutation(path_, file, "foreign tool");
  EXPECT_EQ(rep.loaded, 0u);
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_NE(rep.reject_reason.find(path_ + ":1"), std::string::npos)
      << rep.reject_reason;
}

TEST_F(CachePersistenceTest, GarbageFileRejectsWithLocatedReason) {
  const DiskCache::LoadReport rep =
      load_mutation(path_, "this is not a cache file\n", "garbage");
  EXPECT_EQ(rep.loaded, 0u);
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_TRUE(rep.rebuilt);
  EXPECT_NE(rep.reject_reason.find(path_ + ":1"), std::string::npos)
      << rep.reject_reason;
}

TEST_F(CachePersistenceTest, DuplicateHeaderRejectsFromTheSecondHeader) {
  const std::size_t first_nl = pristine_.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  const std::string header = pristine_.substr(0, first_nl + 1);
  const DiskCache::LoadReport rep =
      load_mutation(path_, header + pristine_, "duplicate header");
  EXPECT_EQ(rep.loaded, 0u); // second line is the duplicate; nothing above
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_NE(rep.reject_reason.find("duplicate header"), std::string::npos)
      << rep.reject_reason;
  EXPECT_NE(rep.reject_reason.find(path_ + ":2"), std::string::npos)
      << rep.reject_reason;
}

TEST_F(CachePersistenceTest, SmallerCapacityReloadKeepsTheHottestEntries) {
  write_file(path_, pristine_);
  ResultCache mem;
  mem.set_capacity(std::size_t(kEntries) - 2);
  DiskCache dc(path_, mem);
  const DiskCache::LoadReport rep = dc.open();
  // The file is replayed coldest-first, so the memory LRU evicts the
  // genuinely coldest entries (0 and 1) on the way in.
  EXPECT_EQ(rep.loaded, std::size_t(kEntries));
  EXPECT_EQ(mem.size(), std::size_t(kEntries) - 2);
  for (int i = 0; i < kEntries; ++i) {
    const bool want_present = i >= 2;
    EXPECT_EQ(mem.find(key_of(i)).has_value(), want_present)
        << "entry " << i << (want_present ? " evicted" : " survived")
        << " against LRU order";
  }
  dc.close();
  // close() compacts to the live entries; a full-capacity reload then
  // sees exactly the survivors.
  ResultCache mem2;
  DiskCache dc2(path_, mem2);
  EXPECT_EQ(dc2.open().loaded, std::size_t(kEntries) - 2);
  dc2.close();
}

TEST_F(CachePersistenceTest, WriteThroughAppendIsReloadableWithoutClose) {
  // Simulate a daemon that never reached close(): snapshot the file
  // right after the store hook appended (flush() only fsyncs), and
  // reload the snapshot.
  const std::string live =
      testing::TempDir() + "persist_live_" + std::to_string(::getpid()) +
      ".cache";
  std::remove(live.c_str());
  {
    ResultCache mem;
    DiskCache dc(live, mem);
    (void)dc.open();
    for (int i = 0; i < kEntries; ++i) mem.store(key_of(i), meas_of(i));
    dc.flush();
    const DiskCache::LoadReport rep =
        load_mutation(path_, read_file(live), "append snapshot");
    EXPECT_EQ(rep.loaded, std::size_t(kEntries));
    EXPECT_EQ(rep.rejected, 0u);
    dc.close();
  }
  std::remove(live.c_str());
}

} // namespace
} // namespace scpg
