#!/usr/bin/env bash
# Pins the scpgc campaign/worker CLI contract: the result digest is
# bit-identical across worker counts (including the in-process --workers 0
# reference), journals written during a run validate with journal_check
# and resume to the same digest, a bit-flipped journal exits 3 without
# touching any rows, exhausted retries exit 7 with the healthy rows still
# journaled, and the shared parser's usage behaviour holds.
# Usage: campaign_cli_test.sh <scpgc-binary> <examples/netlists-dir> <journal_check>
set -u

scpgc=$1
dir=$2
journal_check=$3

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

fail() { echo "campaign_cli_test FAIL: $*" >&2; exit 1; }

expect_rc() { # want-rc command...
  local want=$1
  shift
  "$@" >/dev/null 2>&1
  local rc=$?
  [ "$rc" -eq "$want" ] || fail "expected exit $want, got $rc: $*"
}

digest_of() { # json-text
  grep -o '"result_digest": "[0-9a-f]*"' <<<"$1" | grep -o '[0-9a-f]\{16\}'
}

base=(--in "$dir/mult4_scpg.v" --points 4 --cycles 4 --seed 3 --json)

# --- digest equality across worker counts ----------------------------------
ref=$("$scpgc" campaign "${base[@]}" --workers 0) || fail "workers 0 rc"
grep -q '"tool": "scpgc-campaign"' <<<"$ref" || fail "envelope tool field"
grep -q '"schema_version": 1' <<<"$ref" || fail "envelope schema_version"
ref_digest=$(digest_of "$ref")
[ -n "$ref_digest" ] || fail "no result_digest in reference run"

for w in 1 2 3; do
  out=$("$scpgc" campaign "${base[@]}" --workers "$w" --shard 2) \
    || fail "workers $w rc"
  [ "$(digest_of "$out")" = "$ref_digest" ] \
    || fail "workers $w digest differs from in-process reference"
done

# --- journal: validate, then resume skips everything -----------------------
journal="$tmpdir/run.journal"
out=$("$scpgc" campaign "${base[@]}" --workers 2 --shard 2 \
      --journal "$journal") || fail "journaled run rc"
[ -s "$journal" ] || fail "journal not written"
"$journal_check" --strict --expect-complete --quiet "$journal" \
  || fail "journal_check on complete journal"

out=$("$scpgc" campaign --resume "$journal" --workers 2 --json) \
  || fail "resume rc"
[ "$(digest_of "$out")" = "$ref_digest" ] || fail "resume digest differs"
total=$(grep -o '"total": [0-9]*' <<<"$out" | grep -o '[0-9]*$')
skipped=$(grep -o '"resumed_skipped": [0-9]*' <<<"$out" | grep -o '[0-9]*$')
[ -n "$total" ] && [ "$total" = "$skipped" ] \
  || fail "resume skipped $skipped of $total rows"

# --- corruption: a flipped byte exits 3, journal_check agrees --------------
bad="$tmpdir/bad.journal"
cp "$journal" "$bad"
size=$(wc -c <"$bad")
mid=$((size / 2))
printf 'Z' | dd of="$bad" bs=1 seek="$mid" conv=notrunc 2>/dev/null
expect_rc 3 "$journal_check" --quiet "$bad"
expect_rc 3 "$scpgc" campaign --resume "$bad" --workers 2
expect_rc 3 "$journal_check" --quiet "$dir/mult4_scpg.v" # not a journal at all

# --- poisoning: crash-only workers exhaust retries, exit 7 -----------------
pj="$tmpdir/poison.journal"
out=$("$scpgc" campaign "${base[@]}" --workers 2 --shard 2 \
      --journal "$pj" --crash-at-row 2 --crash-workers 99 --max-attempts 2)
[ $? -eq 7 ] || fail "poisoned run should exit 7"
grep -q '"poisoned_rows": \[' <<<"$out" || fail "poisoned_rows missing"
# Healthy rows made it to the journal; a clean resume finishes the rest.
"$journal_check" --quiet "$pj" || fail "poisoned journal invalid"
out=$("$scpgc" campaign --resume "$pj" --workers 2 --json) \
  || fail "resume after poisoning rc"
[ "$(digest_of "$out")" = "$ref_digest" ] \
  || fail "post-poison resume digest differs"

# --- usage ------------------------------------------------------------------
expect_rc 2 "$scpgc" campaign
expect_rc 2 "$scpgc" campaign --definitely-not-an-option
expect_rc 2 "$scpgc" campaign --resume
expect_rc 0 "$scpgc" campaign --help
"$scpgc" campaign --help | grep -q "usage: scpgc campaign" \
  || fail "campaign --help usage line"
expect_rc 2 "$journal_check"
expect_rc 2 "$journal_check" "$journal" --no-such-flag

echo "campaign_cli_test: OK"
