// Replay regression over the committed fuzz corpus (tests/corpus/).
//
// Every entry is replayed through the full differential harness
// (fuzz::run_case) and held to its recorded expectation:
//   * clean entries must pass all four oracles (diff-sim equivalence,
//     rail-timing windows, lint/monitor X-freedom, metamorphic);
//   * repro_<bug> entries — the minimized reproducers produced by
//     `scpgc fuzz --inject <bug> --minimize` — must still be DETECTED by
//     their oracle category, so a regression that re-opens a detection
//     hole fails here, not in the field.
// Replay is also checked to be bit-identical at any job count, and the
// "scpg-fuzz-case v1" text format round-trips.
//
// Suite names start with "FuzzCorpus" so tools/check.sh can select them.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/case.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/oracles.hpp"
#include "tech/library.hpp"
#include "util/parallel.hpp"

using namespace scpg;
using namespace scpg::fuzz;

namespace {

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> c = load_corpus(SCPG_CORPUS_DIR);
  return c;
}

/// Replays every entry concurrently; results in corpus order.
std::vector<CaseResult> replay(int jobs) {
  const auto& c = corpus();
  return parallel_map(c.size(), jobs,
                      [&](std::size_t i) { return run_case(lib(), c[i].fc); });
}

/// Everything observable about a result, as one comparable string.
std::string fingerprint(const CaseResult& r) {
  std::ostringstream os;
  os << r.built << '|' << r.mismatch << '|' << r.detail << '|'
     << r.lint_errors << '|' << r.hazards << '|' << r.x_in_gated;
  for (const auto& o : r.oracles)
    os << '|' << o.ran << ':' << o.fired << ':' << o.detail;
  for (const auto& f : r.features) os << '|' << f;
  return os.str();
}

} // namespace

TEST(FuzzCorpus, HasCleanSeedsAndOneReproPerOracleCategory) {
  const auto& c = corpus();
  int clean = 0;
  std::vector<std::string> repros;
  for (const auto& e : c) {
    if (e.exp.clean) ++clean;
    else repros.push_back(e.name);
  }
  EXPECT_GE(clean, 4) << "corpus should carry several clean seeds";
  // One committed reproducer per oracle category (ISSUE acceptance).
  for (const char* name : {"repro_output_invert", "repro_slow_rail",
                           "repro_drop_clamp", "repro_fast_clock"})
    EXPECT_NE(std::find(repros.begin(), repros.end(), name), repros.end())
        << "missing " << name;
}

TEST(FuzzCorpus, ReplayMatchesEveryExpectation) {
  const auto& c = corpus();
  const std::vector<CaseResult> rs = replay(1);
  ASSERT_EQ(rs.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const CorpusEntry& e = c[i];
    const CaseResult& r = rs[i];
    ASSERT_TRUE(r.built) << e.name << ": " << r.build_error;
    EXPECT_FALSE(r.mismatch) << e.name << ": " << r.detail;
    for (int o = 0; o < kNumOracles; ++o)
      EXPECT_TRUE(r.oracles[std::size_t(o)].ran)
          << e.name << ": oracle " << oracle_name(Oracle(o)) << " skipped";
    if (e.exp.clean) {
      for (int o = 0; o < kNumOracles; ++o)
        EXPECT_FALSE(r.oracles[std::size_t(o)].fired)
            << e.name << ": " << oracle_name(Oracle(o)) << " fired: "
            << r.oracles[std::size_t(o)].detail;
      EXPECT_FALSE(r.x_in_gated) << e.name;
    } else {
      EXPECT_TRUE(outcome(r, e.exp.detect).fired)
          << e.name << ": injected bug escaped "
          << oracle_name(e.exp.detect);
    }
  }
}

TEST(FuzzCorpus, ReplayIsDeterministicAtAnyJobCount) {
  const std::vector<CaseResult> serial = replay(1);
  const std::vector<CaseResult> wide = replay(4);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(fingerprint(serial[i]), fingerprint(wide[i]))
        << corpus()[i].name;
}

TEST(FuzzCorpus, TextFormatRoundTrips) {
  for (const auto& e : corpus()) {
    std::ostringstream first;
    write_case(e.fc, e.exp, first);
    std::istringstream in(first.str());
    const auto [fc2, exp2] = read_case(in, e.name);
    std::ostringstream second;
    write_case(fc2, exp2, second);
    EXPECT_EQ(first.str(), second.str()) << e.name;
  }
}

TEST(FuzzCorpus, CoverageKeysAreStableAndNonEmpty) {
  Coverage cov;
  for (const CaseResult& r : replay(2)) {
    const std::vector<std::string> keys = coverage_keys(r);
    EXPECT_FALSE(keys.empty());
    cov.add(keys);
  }
  // Clean + four bug classes exercise a healthy slice of the key space.
  EXPECT_GE(cov.distinct(), 20u);
  const std::string js = cov.to_json();
  EXPECT_NE(js.find("\"distinct\""), std::string::npos);
  EXPECT_NE(js.find("oracle_ran:diff_sim"), std::string::npos);
}
