#include <gtest/gtest.h>

#include "gen/arith.hpp"
#include "gen/mult16.hpp"
#include "netlist/builder.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

Corner nom() { return {lib().tech().params().vdd_nom, 25.0}; }

TEST(Sta, SingleGateDelayMatchesLinearModel) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId a = b.input("a");
  const NetId y = b.NOT(a);
  b.output("y", y);
  nl.check();
  const StaReport r = run_sta(nl, nom());
  const CellSpec& inv = lib().spec(lib().pick(CellKind::Inv, 1));
  const Time expected =
      inv.intrinsic_delay + Time{(inv.drive_res * nl.net_load(y)).v};
  EXPECT_NEAR(r.t_eval.v, expected.v, 1e-15);
  EXPECT_DOUBLE_EQ(r.endpoint_setup.v, 0.0);
}

TEST(Sta, ChainDelayAccumulates) {
  Netlist nl("t", lib());
  Builder b(nl);
  NetId n = b.input("a");
  for (int i = 0; i < 10; ++i) n = b.NOT(n);
  b.output("y", n);
  nl.check();
  const StaReport one = [&] {
    Netlist s("s", lib());
    Builder sb(s);
    sb.output("y", sb.NOT(sb.input("a")));
    s.check();
    return run_sta(s, nom());
  }();
  const StaReport ten = run_sta(nl, nom());
  // Ten stages cost roughly ten single-stage delays (loads differ a bit:
  // internal stages drive one inverter, the last drives the port).
  EXPECT_GT(ten.t_eval.v, 8.0 * one.t_eval.v);
  EXPECT_LT(ten.t_eval.v, 13.0 * one.t_eval.v);
  EXPECT_EQ(ten.critical_path.size(), 11u); // input + 10 inverters
}

TEST(Sta, RegisteredPathIncludesClkToQAndSetup) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId d = b.input("d");
  const NetId q = b.dff(d, clk);
  const NetId n = b.NOT(q);
  const NetId q2 = b.dff(n, clk);
  b.output("y", q2);
  nl.check();
  const StaReport r = run_sta(nl, nom());
  const CellSpec& ff = lib().spec(lib().pick(CellKind::Dff, 1));
  EXPECT_GT(r.t_eval.v, ff.clk_to_q.v); // includes launch clk-to-q
  EXPECT_DOUBLE_EQ(r.endpoint_setup.v, ff.setup.v);
  EXPECT_GT(r.fmax.v, 0.0);
  EXPECT_NEAR(1.0 / r.fmax.v, r.t_eval.v + r.endpoint_setup.v, 1e-18);
}

TEST(Sta, HoldCheckUsesShortestPath) {
  Netlist nl("t", lib());
  Builder b(nl);
  const NetId clk = b.input("clk");
  const NetId d = b.input("d");
  const NetId q = b.dff(d, clk);
  // Direct flop-to-flop connection: min path = clk_to_q, far above hold.
  const NetId q2 = b.dff(q, clk);
  b.output("y", q2);
  nl.check();
  const StaReport r = run_sta(nl, nom());
  EXPECT_TRUE(r.hold_met());
  const CellSpec& ff = lib().spec(lib().pick(CellKind::Dff, 1));
  EXPECT_NEAR(r.min_arrival.v, ff.clk_to_q.v, 1e-15);
  EXPECT_NEAR(r.worst_hold.v, ff.hold.v, 1e-15);
}

TEST(Sta, DelayScalesWithVoltage) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  const StaReport hi = run_sta(nl, {1.0_V, 25.0});
  const StaReport lo = run_sta(nl, {0.6_V, 25.0});
  const double expect =
      lib().tech().delay_scale({0.6_V, 25.0});
  EXPECT_NEAR(lo.t_eval.v / hi.t_eval.v, expect, expect * 1e-9);
  EXPECT_LT(lo.fmax.v, hi.fmax.v);
}

TEST(Sta, SetupSlackSignChangesAtFmax) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  const StaReport r = run_sta(nl, {0.6_V, 25.0});
  EXPECT_GT(r.setup_slack(Frequency{r.fmax.v * 0.9}).v, 0.0);
  EXPECT_LT(r.setup_slack(Frequency{r.fmax.v * 1.1}).v, 0.0);
}

TEST(Sta, CriticalPathIsConnected) {
  Netlist nl = gen::make_multiplier(lib(), 16);
  const StaReport r = run_sta(nl, {0.6_V, 25.0});
  ASSERT_GE(r.critical_path.size(), 3u);
  // Arrivals along the path are non-decreasing.
  for (std::size_t i = 1; i < r.critical_path.size(); ++i)
    EXPECT_GE(r.critical_path[i].arrival.v,
              r.critical_path[i - 1].arrival.v);
  // Consecutive steps are actually connected: step i's net is an input of
  // step i+1's cell.
  for (std::size_t i = 1; i < r.critical_path.size(); ++i) {
    const CellId c = r.critical_path[i].cell;
    ASSERT_TRUE(c.valid());
    const auto& ins = nl.cell(c).inputs;
    EXPECT_NE(std::find(ins.begin(), ins.end(), r.critical_path[i - 1].net),
              ins.end());
  }
  const std::string txt = format_path(nl, r);
  EXPECT_NE(txt.find("critical path"), std::string::npos);
}

TEST(Sta, Multiplier16CalibrationTargets) {
  // DESIGN.md §5: Fmax(0.6 V) must comfortably exceed the paper's highest
  // reported SCPG point (14.3 MHz with a 50% duty needs t_eval < T/2).
  Netlist nl = gen::make_multiplier(lib(), 16);
  const StaReport r = run_sta(nl, {0.6_V, 25.0});
  EXPECT_GT(in_MHz(r.fmax), 25.0);
  EXPECT_LT(in_MHz(r.fmax), 60.0);
  EXPECT_LT(in_ns(r.t_eval), 35.0); // fits the 14.3 MHz half-period
}

TEST(Sta, MacroAccessDelayCounts) {
  Netlist nl("t", lib());
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  MacroSpec m;
  m.type_name = "SLOWBUF";
  m.num_inputs = 1;
  m.num_outputs = 1;
  m.access_delay = 5.0_ns;
  struct PassThrough final : MacroModel {
    void eval(std::span<const Logic> in, std::span<Logic> out) override {
      out[0] = in[0];
    }
  };
  m.make_model = [] { return std::make_unique<PassThrough>(); };
  const auto mi = nl.add_macro_spec(std::move(m));
  nl.add_macro_cell("m0", mi, {a}, {y});
  nl.add_output("y", y);
  nl.check();
  const StaReport r = run_sta(nl, nom());
  EXPECT_NEAR(in_ns(r.t_eval), 5.0, 1e-9);
}

} // namespace
} // namespace scpg
