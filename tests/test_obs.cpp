// Tests for the observability layer (src/obs): registry semantics,
// histogram bucketing, span nesting in the exported trace, zero side
// effects while disabled, and the jobs-invariance of value metrics
// collected from a real engine sweep.
//
// Everything here shares the process-global Registry and trace collector,
// so each test uses its own metric names and resets collection state on
// entry/exit through the ObsTest fixture.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;
using obs::Kind;
using obs::Registry;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

class ObsTest : public ::testing::Test {
protected:
  void SetUp() override { obs::reset(); }
  void TearDown() override { obs::reset(); }
};

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterFindOrCreateAccumulates) {
  obs::Counter& c = Registry::global().counter("t.reg.counter");
  c.add(3);
  Registry::global().counter("t.reg.counter").add(2);
  EXPECT_EQ(c.value(), 5u);
  // Same handle after re-lookup: registry owns one instance per name.
  EXPECT_EQ(&Registry::global().counter("t.reg.counter"), &c);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  obs::Gauge& g = Registry::global().gauge("t.reg.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
}

TEST_F(ObsTest, NameIsBoundToFirstTypeAndKind) {
  (void)Registry::global().counter("t.reg.bound", Kind::Value);
  // Different type under the same name: rejected.
  EXPECT_THROW((void)Registry::global().gauge("t.reg.bound"),
               PreconditionError);
  // Same type, different kind: also rejected.
  EXPECT_THROW((void)Registry::global().counter("t.reg.bound", Kind::Timing),
               PreconditionError);
  // Exact re-registration is the normal find path.
  EXPECT_NO_THROW((void)Registry::global().counter("t.reg.bound"));
}

TEST_F(ObsTest, SnapshotIsNameOrderedAndResetClearsValues) {
  Registry::global().counter("t.reg.z").add(1);
  Registry::global().counter("t.reg.a").add(1);
  const obs::MetricsSnapshot snap = Registry::global().snapshot();
  std::string prev;
  bool seen_a = false, seen_z = false;
  for (const auto& row : snap.counters) {
    EXPECT_LE(prev, row.name); // std::map iteration order
    prev = row.name;
    seen_a |= row.name == "t.reg.a";
    seen_z |= row.name == "t.reg.z";
  }
  EXPECT_TRUE(seen_a && seen_z);

  Registry::global().reset_values();
  EXPECT_EQ(Registry::global().counter("t.reg.z").value(), 0u);
}

// ---------------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketsBoundsInclusiveWithOverflow) {
  obs::Histogram& h =
      Registry::global().histogram("t.hist.buckets", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0}) h.observe(v);

  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u); // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);     // 0.5, 1.0   (<= 1)
  EXPECT_EQ(buckets[1], 2u);     // 1.5, 2.0   (<= 2)
  EXPECT_EQ(buckets[2], 2u);     // 3.0, 4.0   (<= 4)
  EXPECT_EQ(buckets[3], 1u);     // 100.0      (overflow)
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 100.0);
}

TEST_F(ObsTest, HistogramRequiresSortedBounds) {
  EXPECT_THROW(
      (void)Registry::global().histogram("t.hist.bad", {2.0, 1.0}),
      PreconditionError);
}

// ---------------------------------------------------------------------------
// Spans and the exported trace
// ---------------------------------------------------------------------------

TEST_F(ObsTest, NestedScopesExportContainedCompleteEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::configure(false, true);
  {
    obs::Scope outer("t.span.outer", "test");
    {
      obs::Scope inner("t.span.inner", "test");
      inner.args(R"({"k": 1})");
    }
  }
  obs::configure(false, false);
  ASSERT_EQ(obs::trace_event_count(), 2u);

  std::ostringstream os;
  obs::write_trace_json(os, "test-obs");
  const json::Value doc = json::parse(os.str());
  ASSERT_TRUE(doc.is(json::Value::Type::Object));
  EXPECT_EQ(int(doc.get("schema_version")->num), json::kSchemaVersion);
  EXPECT_EQ(doc.get("tool")->str, "test-obs");

  const json::Value* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  const json::Value* inner = nullptr;
  const json::Value* outer = nullptr;
  const json::Value* meta = nullptr;
  for (const json::Value& e : events->arr) {
    const std::string ph = e.get("ph")->str;
    if (ph == "M") meta = &e;
    else if (e.get("name")->str == "t.span.inner") inner = &e;
    else if (e.get("name")->str == "t.span.outer") outer = &e;
  }
  ASSERT_NE(meta, nullptr); // this thread's thread_name track
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  // Nesting: the inner span starts no earlier and ends no later.
  const double os_ts = outer->get("ts")->num;
  const double os_end = os_ts + outer->get("dur")->num;
  const double is_ts = inner->get("ts")->num;
  const double is_end = is_ts + inner->get("dur")->num;
  EXPECT_GE(is_ts, os_ts);
  EXPECT_LE(is_end, os_end);
  // args splice through verbatim.
  EXPECT_EQ(int(inner->get("args")->get("k")->num), 1);
}

TEST_F(ObsTest, ScopeFeedsTimingHistogramWhenMetricsOn) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::configure(true, false);
  { obs::Scope s("t.span.timed", "test"); }
  obs::configure(false, false);
  obs::Histogram& h = Registry::global().histogram(
      "t.span.timed.ms", obs::default_ms_bounds(), Kind::Timing);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(obs::trace_event_count(), 0u); // tracing was off
}

// ---------------------------------------------------------------------------
// Disabled mode: zero side effects, arguments never evaluated
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledMacrosHaveNoSideEffects) {
  ASSERT_FALSE(obs::enabled());
  int evaluations = 0;
  const auto costly = [&evaluations] {
    ++evaluations;
    return 1;
  };
  SCPG_OBS_COUNT("t.disabled.counter", costly());
  SCPG_OBS_GAUGE("t.disabled.gauge", costly());
  SCPG_OBS_TIMING_HIST("t.disabled.hist", costly());
  EXPECT_EQ(evaluations, 0) << "macro arguments ran while disabled";

  { obs::Scope s("t.disabled.span", "test"); }
  EXPECT_EQ(obs::trace_event_count(), 0u);

  const obs::MetricsSnapshot snap = Registry::global().snapshot();
  for (const auto& row : snap.counters)
    EXPECT_TRUE(row.name.rfind("t.disabled.", 0) != 0) << row.name;
  for (const auto& row : snap.gauges)
    EXPECT_TRUE(row.name.rfind("t.disabled.", 0) != 0) << row.name;
  for (const auto& row : snap.histograms)
    EXPECT_TRUE(row.name.rfind("t.disabled.", 0) != 0) << row.name;
}

// ---------------------------------------------------------------------------
// Jobs-invariance of value metrics on a real sweep
// ---------------------------------------------------------------------------

engine::SweepSpec obs_sweep_spec(const Netlist& nl, int jobs) {
  engine::SweepSpec spec;
  spec.design(nl).base_sim(SimConfig{}).cycles(4).jobs(jobs).use_cache(false);
  for (const double f_mhz : {0.1, 1.0, 5.0}) {
    engine::OperatingPoint pt;
    pt.f = Frequency{f_mhz * 1e6};
    pt.tag = "f:" + std::to_string(f_mhz);
    spec.point(pt);
  }
  return spec;
}

std::map<std::string, std::uint64_t> value_counters() {
  std::map<std::string, std::uint64_t> out;
  for (const auto& row : Registry::global().snapshot().counters)
    if (row.kind == Kind::Value &&
        (row.name.rfind("sim.", 0) == 0 || row.name.rfind("engine.", 0) == 0))
      out[row.name] = row.value;
  return out;
}

TEST_F(ObsTest, ValueMetricsIdenticalAcrossJobCounts) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Netlist nl = gen::make_multiplier(lib(), 8);
  apply_scpg(nl);

  obs::configure(true, false);
  (void)engine::Experiment(obs_sweep_spec(nl, 1)).run();
  const auto serial = value_counters();
  obs::reset();

  obs::configure(true, false);
  (void)engine::Experiment(obs_sweep_spec(nl, 8)).run();
  const auto parallel = value_counters();
  obs::reset();

  ASSERT_FALSE(serial.empty());
  EXPECT_GT(serial.at("sim.events"), 0u);
  EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace scpg
