#include <gtest/gtest.h>

#include "gen/mult16.hpp"
#include "mep/mep.hpp"
#include "util/error.hpp"

namespace scpg {
namespace {

using namespace scpg::literals;

const Library& lib() {
  static const Library l = Library::scpg90();
  return l;
}

const MepResult& mult_mep() {
  static const MepResult r = [] {
    Netlist nl = gen::make_multiplier(lib(), 16);
    return analyze_mep(nl, 3.7_pJ, {0.6_V, 25.0});
  }();
  return r;
}

TEST(Mep, SweepIsOrderedAndComplete) {
  const MepResult& r = mult_mep();
  ASSERT_GE(r.sweep.size(), 40u);
  for (std::size_t i = 1; i < r.sweep.size(); ++i) {
    EXPECT_GT(r.sweep[i].vdd.v, r.sweep[i - 1].vdd.v);
    // Frequency rises monotonically with supply.
    EXPECT_GT(r.sweep[i].fmax.v, r.sweep[i - 1].fmax.v);
    // Dynamic energy rises with supply (CV^2).
    EXPECT_GT(r.sweep[i].e_dynamic.v, r.sweep[i - 1].e_dynamic.v);
  }
}

TEST(Mep, LeakageEnergyExplodesAtLowVdd) {
  const MepResult& r = mult_mep();
  const MepPoint& lo = r.sweep.front();
  const MepPoint& hi = r.sweep.back();
  // At the bottom of the sweep the leakage energy dominates dynamic;
  // at the top, dynamic dominates.
  EXPECT_GT(lo.e_leakage.v, lo.e_dynamic.v);
  EXPECT_LT(hi.e_leakage.v, hi.e_dynamic.v);
}

TEST(Mep, MinimumIsInteriorAndBalanced) {
  const MepResult& r = mult_mep();
  EXPECT_GT(r.minimum.vdd.v, r.sweep.front().vdd.v);
  EXPECT_LT(r.minimum.vdd.v, r.sweep.back().vdd.v);
  // At the MEP, leakage and dynamic energies are the same order.
  const double ratio = r.minimum.e_leakage.v / r.minimum.e_dynamic.v;
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
  // The refined minimum beats every sweep sample.
  for (const MepPoint& p : r.sweep)
    EXPECT_LE(r.minimum.e_total().v, p.e_total().v * 1.0001);
}

TEST(Mep, MultiplierMinimumNearPaperFig9) {
  // Paper Fig 9: MEP at ~310 mV, ~1.7 pJ, ~10 MHz.
  const MepPoint& m = mult_mep().minimum;
  EXPECT_GT(in_mV(m.vdd), 240.0);
  EXPECT_LT(in_mV(m.vdd), 380.0);
  EXPECT_GT(in_pJ(m.e_total()), 1.0);
  EXPECT_LT(in_pJ(m.e_total()), 2.6);
  EXPECT_GT(in_MHz(m.fmax), 4.0);
  EXPECT_LT(in_MHz(m.fmax), 20.0);
}

TEST(Mep, EnergyAtSixHundredMillivoltsMatchesTableScale) {
  // At 0.6 V the multiplier's E/op at fmax should sit near the paper's
  // 4.4 pJ (Table I, 14.3 MHz row).
  Netlist nl = gen::make_multiplier(lib(), 16);
  const MepPoint p = mep_point(nl, 3.7_pJ, {0.6_V, 25.0}, 0.6_V, 25.0);
  EXPECT_GT(in_pJ(p.e_total()), 3.0);
  EXPECT_LT(in_pJ(p.e_total()), 6.5);
}

TEST(Mep, HigherTemperatureMovesMepUp) {
  // Hotter silicon leaks more, pushing the minimum-energy point to a
  // higher supply (a standard sub-threshold result).
  Netlist nl = gen::make_multiplier(lib(), 16);
  MepOptions hot;
  hot.temp_c = 85.0;
  const MepResult cold = analyze_mep(nl, 3.7_pJ, {0.6_V, 25.0});
  const MepResult warm = analyze_mep(nl, 3.7_pJ, {0.6_V, 25.0}, hot);
  EXPECT_GT(warm.minimum.vdd.v, cold.minimum.vdd.v);
  EXPECT_GT(warm.minimum.e_total().v, cold.minimum.e_total().v);
}

TEST(Mep, OptionValidation) {
  Netlist nl = gen::make_multiplier(lib(), 8);
  MepOptions bad;
  bad.points = 2;
  EXPECT_THROW((void)analyze_mep(nl, 1.0_pJ, {0.6_V, 25.0}, bad),
               PreconditionError);
  EXPECT_THROW((void)analyze_mep(nl, Energy{0.0}, {0.6_V, 25.0}),
               PreconditionError);
}

} // namespace
} // namespace scpg
