file(REMOVE_RECURSE
  "CMakeFiles/test_traditional.dir/test_traditional.cpp.o"
  "CMakeFiles/test_traditional.dir/test_traditional.cpp.o.d"
  "test_traditional"
  "test_traditional.pdb"
  "test_traditional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
