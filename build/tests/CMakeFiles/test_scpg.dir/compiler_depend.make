# Empty compiler generated dependencies file for test_scpg.
# This may be replaced when dependencies are built.
