file(REMOVE_RECURSE
  "CMakeFiles/test_scpg.dir/test_scpg.cpp.o"
  "CMakeFiles/test_scpg.dir/test_scpg.cpp.o.d"
  "test_scpg"
  "test_scpg.pdb"
  "test_scpg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
