# Empty compiler generated dependencies file for test_mep.
# This may be replaced when dependencies are built.
