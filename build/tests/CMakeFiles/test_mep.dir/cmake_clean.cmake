file(REMOVE_RECURSE
  "CMakeFiles/test_mep.dir/test_mep.cpp.o"
  "CMakeFiles/test_mep.dir/test_mep.cpp.o.d"
  "test_mep"
  "test_mep.pdb"
  "test_mep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
