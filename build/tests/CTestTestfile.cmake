# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_scpg[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_mep[1]_include.cmake")
include("/root/repo/build/tests/test_cross_validation[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_traditional[1]_include.cmake")
include("/root/repo/build/tests/test_cts[1]_include.cmake")
include("/root/repo/build/tests/test_corners[1]_include.cmake")
include("/root/repo/build/tests/test_place[1]_include.cmake")
