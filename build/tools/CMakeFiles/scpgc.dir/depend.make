# Empty dependencies file for scpgc.
# This may be replaced when dependencies are built.
