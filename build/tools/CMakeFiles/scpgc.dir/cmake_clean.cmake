file(REMOVE_RECURSE
  "CMakeFiles/scpgc.dir/scpgc.cpp.o"
  "CMakeFiles/scpgc.dir/scpgc.cpp.o.d"
  "scpgc"
  "scpgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
