# Empty compiler generated dependencies file for scpgc.
# This may be replaced when dependencies are built.
