# Empty dependencies file for cpu_workload.
# This may be replaced when dependencies are built.
