file(REMOVE_RECURSE
  "CMakeFiles/cpu_workload.dir/cpu_workload.cpp.o"
  "CMakeFiles/cpu_workload.dir/cpu_workload.cpp.o.d"
  "cpu_workload"
  "cpu_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
