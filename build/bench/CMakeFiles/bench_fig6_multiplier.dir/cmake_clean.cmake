file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multiplier.dir/bench_fig6_multiplier.cpp.o"
  "CMakeFiles/bench_fig6_multiplier.dir/bench_fig6_multiplier.cpp.o.d"
  "bench_fig6_multiplier"
  "bench_fig6_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
