# Empty dependencies file for bench_fig6_multiplier.
# This may be replaced when dependencies are built.
