file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_subthreshold_multiplier.dir/bench_fig9_subthreshold_multiplier.cpp.o"
  "CMakeFiles/bench_fig9_subthreshold_multiplier.dir/bench_fig9_subthreshold_multiplier.cpp.o.d"
  "bench_fig9_subthreshold_multiplier"
  "bench_fig9_subthreshold_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_subthreshold_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
