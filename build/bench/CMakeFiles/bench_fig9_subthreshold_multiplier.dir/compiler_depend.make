# Empty compiler generated dependencies file for bench_fig9_subthreshold_multiplier.
# This may be replaced when dependencies are built.
