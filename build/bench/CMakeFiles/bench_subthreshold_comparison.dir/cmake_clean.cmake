file(REMOVE_RECURSE
  "CMakeFiles/bench_subthreshold_comparison.dir/bench_subthreshold_comparison.cpp.o"
  "CMakeFiles/bench_subthreshold_comparison.dir/bench_subthreshold_comparison.cpp.o.d"
  "bench_subthreshold_comparison"
  "bench_subthreshold_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subthreshold_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
