# Empty dependencies file for bench_subthreshold_comparison.
# This may be replaced when dependencies are built.
