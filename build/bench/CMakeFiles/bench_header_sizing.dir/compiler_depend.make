# Empty compiler generated dependencies file for bench_header_sizing.
# This may be replaced when dependencies are built.
