file(REMOVE_RECURSE
  "CMakeFiles/bench_header_sizing.dir/bench_header_sizing.cpp.o"
  "CMakeFiles/bench_header_sizing.dir/bench_header_sizing.cpp.o.d"
  "bench_header_sizing"
  "bench_header_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_header_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
