# Empty dependencies file for bench_budget_scenarios.
# This may be replaced when dependencies are built.
