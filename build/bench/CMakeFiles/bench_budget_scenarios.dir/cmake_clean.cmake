file(REMOVE_RECURSE
  "CMakeFiles/bench_budget_scenarios.dir/bench_budget_scenarios.cpp.o"
  "CMakeFiles/bench_budget_scenarios.dir/bench_budget_scenarios.cpp.o.d"
  "bench_budget_scenarios"
  "bench_budget_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_budget_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
