# Empty compiler generated dependencies file for bench_vfs_concurrency.
# This may be replaced when dependencies are built.
