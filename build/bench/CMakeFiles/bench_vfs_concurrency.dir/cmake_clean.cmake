file(REMOVE_RECURSE
  "CMakeFiles/bench_vfs_concurrency.dir/bench_vfs_concurrency.cpp.o"
  "CMakeFiles/bench_vfs_concurrency.dir/bench_vfs_concurrency.cpp.o.d"
  "bench_vfs_concurrency"
  "bench_vfs_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vfs_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
