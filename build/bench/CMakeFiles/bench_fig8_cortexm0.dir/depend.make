# Empty dependencies file for bench_fig8_cortexm0.
# This may be replaced when dependencies are built.
