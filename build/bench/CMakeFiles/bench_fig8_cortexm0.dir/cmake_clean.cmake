file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cortexm0.dir/bench_fig8_cortexm0.cpp.o"
  "CMakeFiles/bench_fig8_cortexm0.dir/bench_fig8_cortexm0.cpp.o.d"
  "bench_fig8_cortexm0"
  "bench_fig8_cortexm0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cortexm0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
