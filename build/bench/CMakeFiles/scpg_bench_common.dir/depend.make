# Empty dependencies file for scpg_bench_common.
# This may be replaced when dependencies are built.
