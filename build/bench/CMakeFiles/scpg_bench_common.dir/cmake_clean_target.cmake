file(REMOVE_RECURSE
  "libscpg_bench_common.a"
)
