file(REMOVE_RECURSE
  "CMakeFiles/scpg_bench_common.dir/common.cpp.o"
  "CMakeFiles/scpg_bench_common.dir/common.cpp.o.d"
  "libscpg_bench_common.a"
  "libscpg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
