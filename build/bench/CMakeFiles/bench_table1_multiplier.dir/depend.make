# Empty dependencies file for bench_table1_multiplier.
# This may be replaced when dependencies are built.
