# Empty compiler generated dependencies file for bench_variation_sensitivity.
# This may be replaced when dependencies are built.
