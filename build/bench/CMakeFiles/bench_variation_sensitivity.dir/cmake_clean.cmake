file(REMOVE_RECURSE
  "CMakeFiles/bench_variation_sensitivity.dir/bench_variation_sensitivity.cpp.o"
  "CMakeFiles/bench_variation_sensitivity.dir/bench_variation_sensitivity.cpp.o.d"
  "bench_variation_sensitivity"
  "bench_variation_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variation_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
