# Empty compiler generated dependencies file for bench_fig10_subthreshold_cortexm0.
# This may be replaced when dependencies are built.
