# Empty dependencies file for bench_table2_cortexm0.
# This may be replaced when dependencies are built.
