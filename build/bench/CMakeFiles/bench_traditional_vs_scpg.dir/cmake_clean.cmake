file(REMOVE_RECURSE
  "CMakeFiles/bench_traditional_vs_scpg.dir/bench_traditional_vs_scpg.cpp.o"
  "CMakeFiles/bench_traditional_vs_scpg.dir/bench_traditional_vs_scpg.cpp.o.d"
  "bench_traditional_vs_scpg"
  "bench_traditional_vs_scpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traditional_vs_scpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
