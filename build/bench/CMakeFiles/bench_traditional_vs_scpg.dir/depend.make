# Empty dependencies file for bench_traditional_vs_scpg.
# This may be replaced when dependencies are built.
