file(REMOVE_RECURSE
  "libscpg_core.a"
)
