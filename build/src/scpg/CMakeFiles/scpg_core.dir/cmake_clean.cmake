file(REMOVE_RECURSE
  "CMakeFiles/scpg_core.dir/analysis.cpp.o"
  "CMakeFiles/scpg_core.dir/analysis.cpp.o.d"
  "CMakeFiles/scpg_core.dir/header_sizing.cpp.o"
  "CMakeFiles/scpg_core.dir/header_sizing.cpp.o.d"
  "CMakeFiles/scpg_core.dir/measure.cpp.o"
  "CMakeFiles/scpg_core.dir/measure.cpp.o.d"
  "CMakeFiles/scpg_core.dir/model.cpp.o"
  "CMakeFiles/scpg_core.dir/model.cpp.o.d"
  "CMakeFiles/scpg_core.dir/rail_model.cpp.o"
  "CMakeFiles/scpg_core.dir/rail_model.cpp.o.d"
  "CMakeFiles/scpg_core.dir/traditional.cpp.o"
  "CMakeFiles/scpg_core.dir/traditional.cpp.o.d"
  "CMakeFiles/scpg_core.dir/transform.cpp.o"
  "CMakeFiles/scpg_core.dir/transform.cpp.o.d"
  "CMakeFiles/scpg_core.dir/upf.cpp.o"
  "CMakeFiles/scpg_core.dir/upf.cpp.o.d"
  "libscpg_core.a"
  "libscpg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
