
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scpg/analysis.cpp" "src/scpg/CMakeFiles/scpg_core.dir/analysis.cpp.o" "gcc" "src/scpg/CMakeFiles/scpg_core.dir/analysis.cpp.o.d"
  "/root/repo/src/scpg/header_sizing.cpp" "src/scpg/CMakeFiles/scpg_core.dir/header_sizing.cpp.o" "gcc" "src/scpg/CMakeFiles/scpg_core.dir/header_sizing.cpp.o.d"
  "/root/repo/src/scpg/measure.cpp" "src/scpg/CMakeFiles/scpg_core.dir/measure.cpp.o" "gcc" "src/scpg/CMakeFiles/scpg_core.dir/measure.cpp.o.d"
  "/root/repo/src/scpg/model.cpp" "src/scpg/CMakeFiles/scpg_core.dir/model.cpp.o" "gcc" "src/scpg/CMakeFiles/scpg_core.dir/model.cpp.o.d"
  "/root/repo/src/scpg/rail_model.cpp" "src/scpg/CMakeFiles/scpg_core.dir/rail_model.cpp.o" "gcc" "src/scpg/CMakeFiles/scpg_core.dir/rail_model.cpp.o.d"
  "/root/repo/src/scpg/traditional.cpp" "src/scpg/CMakeFiles/scpg_core.dir/traditional.cpp.o" "gcc" "src/scpg/CMakeFiles/scpg_core.dir/traditional.cpp.o.d"
  "/root/repo/src/scpg/transform.cpp" "src/scpg/CMakeFiles/scpg_core.dir/transform.cpp.o" "gcc" "src/scpg/CMakeFiles/scpg_core.dir/transform.cpp.o.d"
  "/root/repo/src/scpg/upf.cpp" "src/scpg/CMakeFiles/scpg_core.dir/upf.cpp.o" "gcc" "src/scpg/CMakeFiles/scpg_core.dir/upf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/scpg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/scpg_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/scpg_power.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/scpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/scpg_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
