# Empty dependencies file for scpg_core.
# This may be replaced when dependencies are built.
