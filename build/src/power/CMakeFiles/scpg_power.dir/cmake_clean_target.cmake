file(REMOVE_RECURSE
  "libscpg_power.a"
)
