# Empty dependencies file for scpg_power.
# This may be replaced when dependencies are built.
