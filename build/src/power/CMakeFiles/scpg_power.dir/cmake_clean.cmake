file(REMOVE_RECURSE
  "CMakeFiles/scpg_power.dir/power.cpp.o"
  "CMakeFiles/scpg_power.dir/power.cpp.o.d"
  "libscpg_power.a"
  "libscpg_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
