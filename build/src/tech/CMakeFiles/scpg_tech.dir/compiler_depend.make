# Empty compiler generated dependencies file for scpg_tech.
# This may be replaced when dependencies are built.
