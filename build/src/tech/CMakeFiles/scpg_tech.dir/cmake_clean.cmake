file(REMOVE_RECURSE
  "CMakeFiles/scpg_tech.dir/liberty.cpp.o"
  "CMakeFiles/scpg_tech.dir/liberty.cpp.o.d"
  "CMakeFiles/scpg_tech.dir/library.cpp.o"
  "CMakeFiles/scpg_tech.dir/library.cpp.o.d"
  "CMakeFiles/scpg_tech.dir/logic.cpp.o"
  "CMakeFiles/scpg_tech.dir/logic.cpp.o.d"
  "CMakeFiles/scpg_tech.dir/tech_model.cpp.o"
  "CMakeFiles/scpg_tech.dir/tech_model.cpp.o.d"
  "libscpg_tech.a"
  "libscpg_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
