
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/liberty.cpp" "src/tech/CMakeFiles/scpg_tech.dir/liberty.cpp.o" "gcc" "src/tech/CMakeFiles/scpg_tech.dir/liberty.cpp.o.d"
  "/root/repo/src/tech/library.cpp" "src/tech/CMakeFiles/scpg_tech.dir/library.cpp.o" "gcc" "src/tech/CMakeFiles/scpg_tech.dir/library.cpp.o.d"
  "/root/repo/src/tech/logic.cpp" "src/tech/CMakeFiles/scpg_tech.dir/logic.cpp.o" "gcc" "src/tech/CMakeFiles/scpg_tech.dir/logic.cpp.o.d"
  "/root/repo/src/tech/tech_model.cpp" "src/tech/CMakeFiles/scpg_tech.dir/tech_model.cpp.o" "gcc" "src/tech/CMakeFiles/scpg_tech.dir/tech_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
