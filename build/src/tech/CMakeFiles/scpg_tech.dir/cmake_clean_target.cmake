file(REMOVE_RECURSE
  "libscpg_tech.a"
)
