# Empty compiler generated dependencies file for scpg_place.
# This may be replaced when dependencies are built.
