file(REMOVE_RECURSE
  "CMakeFiles/scpg_place.dir/placement.cpp.o"
  "CMakeFiles/scpg_place.dir/placement.cpp.o.d"
  "libscpg_place.a"
  "libscpg_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
