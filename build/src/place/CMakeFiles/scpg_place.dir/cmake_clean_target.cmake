file(REMOVE_RECURSE
  "libscpg_place.a"
)
