file(REMOVE_RECURSE
  "libscpg_cpu.a"
)
