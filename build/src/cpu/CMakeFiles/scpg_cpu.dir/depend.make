# Empty dependencies file for scpg_cpu.
# This may be replaced when dependencies are built.
