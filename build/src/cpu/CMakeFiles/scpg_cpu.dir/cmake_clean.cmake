file(REMOVE_RECURSE
  "CMakeFiles/scpg_cpu.dir/assembler.cpp.o"
  "CMakeFiles/scpg_cpu.dir/assembler.cpp.o.d"
  "CMakeFiles/scpg_cpu.dir/core.cpp.o"
  "CMakeFiles/scpg_cpu.dir/core.cpp.o.d"
  "CMakeFiles/scpg_cpu.dir/isa.cpp.o"
  "CMakeFiles/scpg_cpu.dir/isa.cpp.o.d"
  "CMakeFiles/scpg_cpu.dir/iss.cpp.o"
  "CMakeFiles/scpg_cpu.dir/iss.cpp.o.d"
  "CMakeFiles/scpg_cpu.dir/workloads.cpp.o"
  "CMakeFiles/scpg_cpu.dir/workloads.cpp.o.d"
  "libscpg_cpu.a"
  "libscpg_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
