# Empty compiler generated dependencies file for scpg_mep.
# This may be replaced when dependencies are built.
