file(REMOVE_RECURSE
  "libscpg_mep.a"
)
