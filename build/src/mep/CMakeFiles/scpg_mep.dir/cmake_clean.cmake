file(REMOVE_RECURSE
  "CMakeFiles/scpg_mep.dir/mep.cpp.o"
  "CMakeFiles/scpg_mep.dir/mep.cpp.o.d"
  "libscpg_mep.a"
  "libscpg_mep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_mep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
