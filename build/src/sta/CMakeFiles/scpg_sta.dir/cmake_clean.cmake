file(REMOVE_RECURSE
  "CMakeFiles/scpg_sta.dir/sta.cpp.o"
  "CMakeFiles/scpg_sta.dir/sta.cpp.o.d"
  "libscpg_sta.a"
  "libscpg_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
