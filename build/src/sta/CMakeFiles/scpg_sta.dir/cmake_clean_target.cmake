file(REMOVE_RECURSE
  "libscpg_sta.a"
)
