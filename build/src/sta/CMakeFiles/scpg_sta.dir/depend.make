# Empty dependencies file for scpg_sta.
# This may be replaced when dependencies are built.
