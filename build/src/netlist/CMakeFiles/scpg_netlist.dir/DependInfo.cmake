
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/builder.cpp" "src/netlist/CMakeFiles/scpg_netlist.dir/builder.cpp.o" "gcc" "src/netlist/CMakeFiles/scpg_netlist.dir/builder.cpp.o.d"
  "/root/repo/src/netlist/cts.cpp" "src/netlist/CMakeFiles/scpg_netlist.dir/cts.cpp.o" "gcc" "src/netlist/CMakeFiles/scpg_netlist.dir/cts.cpp.o.d"
  "/root/repo/src/netlist/funcsim.cpp" "src/netlist/CMakeFiles/scpg_netlist.dir/funcsim.cpp.o" "gcc" "src/netlist/CMakeFiles/scpg_netlist.dir/funcsim.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/scpg_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/scpg_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/report.cpp" "src/netlist/CMakeFiles/scpg_netlist.dir/report.cpp.o" "gcc" "src/netlist/CMakeFiles/scpg_netlist.dir/report.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/scpg_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/scpg_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/scpg_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
