file(REMOVE_RECURSE
  "CMakeFiles/scpg_netlist.dir/builder.cpp.o"
  "CMakeFiles/scpg_netlist.dir/builder.cpp.o.d"
  "CMakeFiles/scpg_netlist.dir/cts.cpp.o"
  "CMakeFiles/scpg_netlist.dir/cts.cpp.o.d"
  "CMakeFiles/scpg_netlist.dir/funcsim.cpp.o"
  "CMakeFiles/scpg_netlist.dir/funcsim.cpp.o.d"
  "CMakeFiles/scpg_netlist.dir/netlist.cpp.o"
  "CMakeFiles/scpg_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/scpg_netlist.dir/report.cpp.o"
  "CMakeFiles/scpg_netlist.dir/report.cpp.o.d"
  "CMakeFiles/scpg_netlist.dir/verilog.cpp.o"
  "CMakeFiles/scpg_netlist.dir/verilog.cpp.o.d"
  "libscpg_netlist.a"
  "libscpg_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
