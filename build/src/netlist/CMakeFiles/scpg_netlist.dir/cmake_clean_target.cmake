file(REMOVE_RECURSE
  "libscpg_netlist.a"
)
