# Empty dependencies file for scpg_netlist.
# This may be replaced when dependencies are built.
