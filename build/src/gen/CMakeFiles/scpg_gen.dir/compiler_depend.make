# Empty compiler generated dependencies file for scpg_gen.
# This may be replaced when dependencies are built.
