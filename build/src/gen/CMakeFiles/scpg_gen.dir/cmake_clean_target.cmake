file(REMOVE_RECURSE
  "libscpg_gen.a"
)
