file(REMOVE_RECURSE
  "CMakeFiles/scpg_gen.dir/arith.cpp.o"
  "CMakeFiles/scpg_gen.dir/arith.cpp.o.d"
  "CMakeFiles/scpg_gen.dir/components.cpp.o"
  "CMakeFiles/scpg_gen.dir/components.cpp.o.d"
  "CMakeFiles/scpg_gen.dir/mult16.cpp.o"
  "CMakeFiles/scpg_gen.dir/mult16.cpp.o.d"
  "libscpg_gen.a"
  "libscpg_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
