file(REMOVE_RECURSE
  "CMakeFiles/scpg_sim.dir/activity.cpp.o"
  "CMakeFiles/scpg_sim.dir/activity.cpp.o.d"
  "CMakeFiles/scpg_sim.dir/simulator.cpp.o"
  "CMakeFiles/scpg_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/scpg_sim.dir/vcd.cpp.o"
  "CMakeFiles/scpg_sim.dir/vcd.cpp.o.d"
  "libscpg_sim.a"
  "libscpg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
