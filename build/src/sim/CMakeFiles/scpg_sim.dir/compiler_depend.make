# Empty compiler generated dependencies file for scpg_sim.
# This may be replaced when dependencies are built.
