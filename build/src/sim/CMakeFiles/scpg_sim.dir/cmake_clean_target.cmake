file(REMOVE_RECURSE
  "libscpg_sim.a"
)
