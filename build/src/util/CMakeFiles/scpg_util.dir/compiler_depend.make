# Empty compiler generated dependencies file for scpg_util.
# This may be replaced when dependencies are built.
