file(REMOVE_RECURSE
  "CMakeFiles/scpg_util.dir/error.cpp.o"
  "CMakeFiles/scpg_util.dir/error.cpp.o.d"
  "CMakeFiles/scpg_util.dir/numeric.cpp.o"
  "CMakeFiles/scpg_util.dir/numeric.cpp.o.d"
  "CMakeFiles/scpg_util.dir/rng.cpp.o"
  "CMakeFiles/scpg_util.dir/rng.cpp.o.d"
  "CMakeFiles/scpg_util.dir/table.cpp.o"
  "CMakeFiles/scpg_util.dir/table.cpp.o.d"
  "libscpg_util.a"
  "libscpg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
