file(REMOVE_RECURSE
  "libscpg_util.a"
)
