// scpgc — command-line driver for the SCPG flow.
//
//   scpgc liberty                                  dump the scpg90 library
//   scpgc report    --in d.v [--vdd V] [--temp C]  stats + timing + leakage
//   scpgc transform --in d.v --out o.v [options]   apply power gating
//   scpgc sweep     --in d.v [--vdd V] [--activity A] [--fmax-mhz F]
//                   [--points N] [--cycles N] [--seed S] [--jobs N]
//                   [--json]                       power-vs-frequency table:
//                                                  analytic model columns +
//                                                  simulated columns run
//                                                  through the parallel
//                                                  sweep engine (output is
//                                                  identical at any --jobs)
//   scpgc verify    --in d.v [options]             fault-injection campaign
//                                                  with runtime hazard
//                                                  monitors
//   scpgc lint      --in d.v [--freq-mhz F] [--duty D] [--clock NAME]
//                   [--only IDS] [--json]          static SCPG power-intent
//                                                  and structural analysis
//                                                  (rules SCPG001-008);
//                                                  --rules lists the rule
//                                                  table
//   scpgc fuzz      [--seed S] [--runs N] [--time-budget SECS] [--jobs N]
//                   [--corpus DIR] [--no-minimize] [--inject BUG]
//                   [--coverage-out FILE] [--json]
//                                                  coverage-guided
//                                                  differential fuzzing of
//                                                  generated SCPG designs
//                                                  through four oracles
//                                                  (diff_sim, rail_timing,
//                                                  lint_monitor,
//                                                  metamorphic); mismatches
//                                                  are delta-debug
//                                                  minimized and written
//                                                  under DIR/findings as
//                                                  reproducer
//                                                  .fuzz/.v/.stim files.
//                                                  --inject BUG forces one
//                                                  bug class (no_isolation,
//                                                  drop_clamp,
//                                                  stuck_isolation,
//                                                  header_polarity,
//                                                  slow_rail, fast_clock,
//                                                  output_invert) into
//                                                  every case and writes
//                                                  the minimized detected
//                                                  reproducer into DIR
//
// lint exit codes: 0 clean, 1 findings reported, 2 usage, 3 parse error.
// fuzz exit codes: 0 zero mismatches (with --inject: bug detected),
// 1 mismatches found / injected bug escaped, 2 usage, 6 internal.
// sweep and verify run the linter as a pre-gate (disable with --no-lint);
// a lint rejection there exits 5 (flow error).
//
// verify options:
//   --fault LIST           comma-separated fault classes to inject:
//                          stuck-isolation, delayed-isolation,
//                          dropped-clamp, slow-rail-restore,
//                          premature-edge, seu-flip (default: none —
//                          a clean contract check)
//   --rate R               fault intensity 0..1 (0 = class default)
//   --magnitude M          class magnitude (slow-rail-restore Ron derate)
//   --freq-mhz F           campaign clock (default 1.0)
//   --duty D               clock duty high (default 0.5)
//   --cycles N             monitored cycles (default 40)
//   --warmup N             unmonitored settling cycles (default 6)
//   --seed S               campaign seed (default 1)
//   --max-report N         hazard reports to print (default 10)
//
// exit codes:
//   0  success (verify: zero hazards)      1  verify: hazards detected
//   2  usage error                         3  parse error
//   4  infeasible design request           5  other flow error
//   6  unexpected internal error
//
// transform options:
//   --traditional          idle-mode PG baseline instead of SCPG
//   --clock NAME           clock port (default clk)
//   --header-drive N       header strength (default 2; 4 for big domains)
//   --header-count N       parallel headers (default 4)
//   --no-isolation         ablation: skip output clamps
//   --no-adaptive          ablation: clock-only isolation release
//   --split                write the domain-split two-module Verilog
//   --upf FILE             also write the UPF power intent
//
// Netlists must be flat structural Verilog over scpg90 cells (the format
// written by this library; see examples/design_flow).
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "engine/sweep.hpp"
#include "fuzz/fuzzer.hpp"
#include "lint/lint.hpp"
#include "netlist/report.hpp"
#include "netlist/verilog.hpp"
#include "power/power.hpp"
#include "scpg/model.hpp"
#include "scpg/traditional.hpp"
#include "scpg/transform.hpp"
#include "scpg/upf.hpp"
#include "sta/sta.hpp"
#include "tech/liberty.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "verify/campaign.hpp"

using namespace scpg;

namespace {

/// Thrown for malformed command lines; mapped to the usage exit code.
class UsageError : public Error {
public:
  using Error::Error;
};

struct Args {
  std::string command;
  std::map<std::string, std::string> opts;
  std::vector<std::string> flags;

  [[nodiscard]] bool has_flag(const std::string& f) const {
    return std::find(flags.begin(), flags.end(), f) != flags.end();
  }
  [[nodiscard]] std::string opt(const std::string& k,
                                const std::string& dflt = {}) const {
    const auto it = opts.find(k);
    return it == opts.end() ? dflt : it->second;
  }
  [[nodiscard]] double num(const std::string& k, double dflt) const {
    const auto it = opts.find(k);
    if (it == opts.end()) return dflt;
    try {
      std::size_t used = 0;
      const double v = std::stod(it->second, &used);
      if (used != it->second.size())
        throw UsageError("--" + k + ": expected a number, got '" +
                         it->second + "'");
      return v;
    } catch (const std::logic_error&) {
      throw UsageError("--" + k + ": expected a number, got '" + it->second +
                       "'");
    }
  }
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) == 0) {
      const std::string key = s.substr(2);
      const bool takes_value =
          key == "in" || key == "out" || key == "upf" || key == "clock" ||
          key == "vdd" || key == "temp" || key == "header-drive" ||
          key == "header-count" || key == "activity" || key == "fmax-mhz" ||
          key == "points" || key == "fault" || key == "rate" ||
          key == "magnitude" || key == "freq-mhz" || key == "duty" ||
          key == "cycles" || key == "warmup" || key == "seed" ||
          key == "max-report" || key == "jobs" || key == "only" ||
          key == "runs" || key == "time-budget" || key == "corpus" ||
          key == "inject" || key == "coverage-out";
      if (takes_value && i + 1 < argc) a.opts[key] = argv[++i];
      else a.flags.push_back(key);
    }
  }
  return a;
}

Netlist load(const Library& lib, const std::string& path) {
  if (path.empty()) throw UsageError("missing required --in FILE");
  std::ifstream in(path);
  if (!in) throw Error("cannot open input netlist: " + path);
  return read_verilog(in, lib, {}, path);
}

Corner corner_of(const Args& a) {
  return Corner{Voltage{a.num("vdd", 0.6)}, a.num("temp", 25.0)};
}

/// Vector-less dynamic energy estimate: every net toggles with
/// probability `activity` per cycle.
Energy estimate_dyn(const Netlist& nl, Corner c, double activity) {
  const double escale = nl.lib().tech().energy_scale(c);
  double e = 0;
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const NetId n{ni};
    e += 0.5 * nl.net_load(n).v * c.vdd.v * c.vdd.v;
    const Net& net = nl.net(n);
    if (net.driven_by_cell() && !nl.cell(net.driver_cell).is_macro())
      e += nl.spec_of(net.driver_cell).internal_energy.v * escale;
  }
  return Energy{e * activity};
}

int cmd_liberty() {
  write_liberty(Library::scpg90(), std::cout);
  return 0;
}

int cmd_report(const Library& lib, const Args& a) {
  Netlist nl = load(lib, a.opt("in"));
  const Corner c = corner_of(a);
  print_stats(compute_stats(nl), std::cout, "design '" + nl.name() + "'");
  std::cout << "\nleakage at " << c.vdd.v << " V / " << c.temp_c
            << " C: " << in_uW(static_leakage(nl, c)) << " uW\n\n";
  const StaReport sta = run_sta(nl, c);
  std::cout << format_path(nl, sta);
  std::cout << "hold met: " << (sta.hold_met() ? "yes" : "NO") << "\n";
  return 0;
}

int cmd_transform(const Library& lib, const Args& a) {
  Netlist nl = load(lib, a.opt("in"));
  const std::string out = a.opt("out");
  if (out.empty()) throw Error("transform requires --out");

  if (a.has_flag("traditional")) {
    TraditionalPgOptions opt;
    opt.clock_port = a.opt("clock", "clk");
    opt.header_drive = int(a.num("header-drive", 2));
    opt.header_count = int(a.num("header-count", 4));
    const TraditionalPgInfo info = apply_traditional_pg(nl, opt);
    std::cerr << "traditional PG: " << info.cells_gated << " cells gated, "
              << info.retention_cells << " retention balloons, area +"
              << 100.0 * info.area_overhead() << "%\n";
  } else {
    ScpgOptions opt;
    opt.clock_port = a.opt("clock", "clk");
    opt.header_drive = int(a.num("header-drive", 2));
    opt.header_count = int(a.num("header-count", 4));
    opt.insert_isolation = !a.has_flag("no-isolation");
    opt.adaptive_controller = !a.has_flag("no-adaptive");
    const ScpgInfo info = apply_scpg(nl, opt);
    std::cerr << "SCPG: " << info.cells_gated << " cells gated, "
              << info.isolation_cells << " isolation cells, area +"
              << 100.0 * info.area_overhead() << "%\n";
    if (const std::string upf = a.opt("upf"); !upf.empty()) {
      std::ofstream uf(upf);
      if (!uf) throw Error("cannot open UPF output: " + upf);
      write_upf(nl, info, uf);
      std::cerr << "wrote " << upf << "\n";
    }
  }

  std::ofstream of(out);
  if (!of) throw Error("cannot open output netlist: " + out);
  write_verilog(nl, of, {.split_domains = a.has_flag("split")});
  std::cerr << "wrote " << out << "\n";
  return 0;
}

int cmd_verify(const Library& lib, const Args& a) {
  Netlist nl = load(lib, a.opt("in"));

  bool already_gated = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (nl.cell(CellId{ci}).domain == Domain::Gated) already_gated = true;
  if (!already_gated) {
    ScpgOptions sopt;
    sopt.clock_port = a.opt("clock", "clk");
    const ScpgInfo info = apply_scpg(nl, sopt);
    std::cerr << "SCPG applied: " << info.cells_gated << " cells gated, "
              << info.isolation_cells << " isolation cells\n";
  }

  verify::CampaignOptions opt;
  opt.f = Frequency{a.num("freq-mhz", 1.0) * 1e6};
  opt.duty_high = a.num("duty", 0.5);
  opt.cycles = int(a.num("cycles", 40));
  opt.warmup_cycles = int(a.num("warmup", 6));
  opt.seed = std::uint64_t(a.num("seed", 1));
  opt.sim.corner = corner_of(a);
  opt.clock_port = a.opt("clock", "clk");
  const double rate = a.num("rate", 0.0);
  const double magnitude = a.num("magnitude", 0.0);
  std::string list = a.opt("fault");
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string name = list.substr(0, comma);
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
    if (name.empty()) continue;
    const auto fc = verify::fault_class_from_name(name);
    if (!fc)
      throw UsageError(
          "unknown fault class '" + name +
          "' (expected stuck-isolation, delayed-isolation, dropped-clamp, "
          "slow-rail-restore, premature-edge or seu-flip)");
    opt.faults.push_back({*fc, rate, magnitude});
  }

  // Static pre-gate: reject designs whose power intent is broken before
  // spending cycles simulating them (a stuck campaign on a mis-clamped
  // design reports hazards, but the linter names the structural cause).
  if (!a.has_flag("no-lint")) {
    lint::LintOptions lopt;
    lopt.clock_port = opt.clock_port;
    lopt.freq = opt.f;
    lopt.duty_high = opt.duty_high;
    lopt.sim = opt.sim;
    lint::enforce_lint(nl, lopt, "verify pre-gate");
  }

  const verify::CampaignResult res = verify::run_campaign(std::move(nl), opt);

  std::cout << "campaign: " << res.cycles_run << " cycles at "
            << a.num("freq-mhz", 1.0) << " MHz, seed " << opt.seed << "\n";
  for (int i = 0; i < verify::kNumFaultClasses; ++i)
    if (res.injected[std::size_t(i)] > 0)
      std::cout << "  injected " << res.injected[std::size_t(i)] << " x "
                << verify::fault_class_name(verify::FaultClass(i)) << "\n";
  if (res.injected_total() == 0) std::cout << "  no faults injected\n";
  std::cout << "\n" << verify::format_hazard_summary(res.hazards) << "\n";
  const auto max_report = std::size_t(a.num("max-report", 10));
  const auto& reports = res.hazards.reports();
  for (std::size_t i = 0; i < reports.size() && i < max_report; ++i)
    std::cout << verify::format_hazard(reports[i]) << "\n";
  if (reports.size() > max_report)
    std::cout << "... " << reports.size() - max_report << " more\n";

  if (res.detected()) {
    std::cerr << "scpgc: verify: " << res.hazards.total()
              << " hazards detected\n";
    return 1; // kExitHazards (declared below)
  }
  std::cout << "contract clean: no hazards detected\n";
  return 0; // kExitOk
}

/// Vector-less random stimulus for the engine sweep: every data input bit
/// is re-driven with probability `activity` per cycle from the point's
/// RNG stream.  Deterministic per operating point at any --jobs value.
engine::Stimulus random_stimulus(double activity, std::string clock_port) {
  using namespace scpg::literals;
  return [activity, clock_port = std::move(clock_port)](Simulator& s,
                                                        int cycle,
                                                        Rng& rng) {
    const Netlist& nl = s.netlist();
    for (const Port& p : nl.ports()) {
      if (p.dir != PortDir::In) continue;
      if (p.name == clock_port || p.name == "override_n" ||
          p.name == "rst_n")
        continue;
      // Every input is pinned on the first cycle (no X floats into the
      // measurement window); afterwards bits re-toggle at `activity`.
      if (cycle == 0 || rng.uniform() < activity)
        s.drive_at(s.now() + to_fs(1.0_ns), p.net,
                   rng.bits(1) ? Logic::L1 : Logic::L0);
    }
  };
}

int cmd_sweep(const Library& lib, const Args& a) {
  Netlist nl = load(lib, a.opt("in"));
  const Corner c = corner_of(a);
  const double activity = a.num("activity", 0.15);
  const int jobs = int(a.num("jobs", 1));
  const int cycles = int(a.num("cycles", 12));
  const auto seed = std::uint64_t(a.num("seed", 1));
  const bool json = a.has_flag("json");
  const std::string clock_port = a.opt("clock", "clk");

  // Transform a copy if the input is not already gated; the pre-transform
  // netlist is the measured no-gating reference.
  bool already_gated = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (nl.cell(CellId{ci}).domain == Domain::Gated) already_gated = true;
  const Netlist original = nl;
  ScpgOptions sopt;
  sopt.clock_port = clock_port;
  if (!already_gated) apply_scpg(nl, sopt);

  SimConfig cfg;
  cfg.corner = c;
  const Energy e_dyn = estimate_dyn(nl, c, activity);
  const ScpgPowerModel m = ScpgPowerModel::extract(nl, cfg, e_dyn);

  const double fmax_mhz = a.num("fmax-mhz", 10.0);
  const int points = int(a.num("points", 12));
  std::vector<double> fs_mhz;
  for (int i = 0; i < points; ++i)
    fs_mhz.push_back(fmax_mhz *
                     std::pow(10.0, -3.0 + 3.0 * double(i) / (points - 1)));

  // Measured columns: every operating point through the parallel engine.
  // The no-gating reference is the pre-transform netlist when we gated a
  // copy ourselves, otherwise the gated input with the override asserted.
  engine::SweepSpec spec;
  spec.design(original, "original").design(nl, "gated");
  spec.base_sim(cfg)
      .cycles(cycles)
      .clock_port(clock_port)
      .jobs(jobs)
      .stimulus(random_stimulus(activity, clock_port),
                "scpgc:rand:a=" + TextTable::num(activity, 4));
  for (std::size_t i = 0; i < fs_mhz.size(); ++i) {
    const Frequency f{fs_mhz[i] * 1e6};
    engine::OperatingPoint p;
    p.f = f;
    p.corner = c;
    p.seed = seed;
    p.design = already_gated ? 1 : 0;
    p.override_gating = already_gated;
    p.tag = "n:" + std::to_string(i);
    spec.point(p);
    if (m.feasible(f, 0.5)) {
      p.design = 1;
      p.override_gating = false;
      p.tag = "g:" + std::to_string(i);
      spec.point(p);
    }
  }
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();

  struct Row {
    double f_mhz, none_uw, scpg50_uw, scpgmax_uw, duty_max;
    bool f50, fmax;
    double meas_none_uw, meas_scpg50_uw;
    bool measured50;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < fs_mhz.size(); ++i) {
    const Frequency f{fs_mhz[i] * 1e6};
    const auto dmax = m.duty_for(GatingMode::ScpgMax, f);
    Row r{};
    r.f_mhz = fs_mhz[i];
    r.none_uw = in_uW(m.average_power_ungated(f));
    r.f50 = m.feasible(f, 0.5);
    r.scpg50_uw = r.f50 ? in_uW(m.average_power_gated(f, 0.5)) : 0.0;
    r.fmax = dmax.has_value();
    r.scpgmax_uw = dmax ? in_uW(m.average_power_gated(f, *dmax)) : 0.0;
    r.duty_max = dmax.value_or(0.0);
    r.meas_none_uw =
        in_uW(res.at_tag("n:" + std::to_string(i)).avg_power);
    const engine::PointResult* g = res.find("g:" + std::to_string(i));
    r.measured50 = g != nullptr;
    r.meas_scpg50_uw = g ? in_uW(g->avg_power) : 0.0;
    rows.push_back(r);
  }

  if (json) {
    std::cout << "{\n  \"design\": \"" << nl.name() << "\",\n"
              << "  \"vdd\": " << c.vdd.v << ",\n"
              << "  \"temp_c\": " << c.temp_c << ",\n"
              << "  \"activity\": " << activity << ",\n"
              << "  \"cycles\": " << cycles << ",\n"
              << "  \"seed\": " << seed << ",\n"
              << "  \"jobs\": " << jobs << ",\n"
              << "  \"cache_hits\": " << res.cache_hits() << ",\n"
              << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::cout << "    {\"f_mhz\": " << r.f_mhz
                << ", \"none_uw\": " << r.none_uw << ", \"scpg50_uw\": "
                << (r.f50 ? std::to_string(r.scpg50_uw) : "null")
                << ", \"scpgmax_uw\": "
                << (r.fmax ? std::to_string(r.scpgmax_uw) : "null")
                << ", \"duty_max\": "
                << (r.fmax ? std::to_string(r.duty_max) : "null")
                << ", \"measured_none_uw\": " << r.meas_none_uw
                << ", \"measured_scpg50_uw\": "
                << (r.measured50 ? std::to_string(r.meas_scpg50_uw)
                                 : "null")
                << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
    return 0;
  }

  TextTable t("power sweep, activity " + TextTable::num(activity, 2) +
              ", VDD " + TextTable::num(c.vdd.v, 2) + " V (sim columns: " +
              std::to_string(cycles) + " cycles, seed " +
              std::to_string(seed) + ")");
  t.header({"f MHz", "no gating uW", "SCPG@50 uW", "SCPG-Max uW",
            "max duty", "sim none uW", "sim @50 uW"});
  for (const Row& r : rows)
    t.row({TextTable::num(r.f_mhz, 3), TextTable::num(r.none_uw, 2),
           r.f50 ? TextTable::num(r.scpg50_uw, 2) : "n/f",
           r.fmax ? TextTable::num(r.scpgmax_uw, 2) : "n/f",
           r.fmax ? TextTable::num(100.0 * r.duty_max, 0) + "%" : "-",
           TextTable::num(r.meas_none_uw, 2),
           r.measured50 ? TextTable::num(r.meas_scpg50_uw, 2) : "n/f"});
  t.print(std::cout);
  return 0;
}

int cmd_lint(const Library& lib, const Args& a) {
  if (a.has_flag("rules")) {
    TextTable t("SCPG lint rules");
    t.header({"id", "name", "checks that"});
    for (const lint::RuleInfo& r : lint::rules())
      t.row({std::string(r.id), std::string(r.name), std::string(r.what)});
    t.print(std::cout);
    return 0;
  }

  Netlist nl = load(lib, a.opt("in"));
  lint::LintOptions opt;
  opt.clock_port = a.opt("clock", "clk");
  opt.sim.corner = corner_of(a);
  opt.duty_high = a.num("duty", 0.5);
  if (a.opts.count("freq-mhz") > 0)
    opt.freq = Frequency{a.num("freq-mhz", 1.0) * 1e6};
  std::string list = a.opt("only");
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string id = list.substr(0, comma);
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
    if (id.empty()) continue;
    bool known = false;
    for (const lint::RuleInfo& r : lint::rules()) known |= r.id == id;
    if (!known)
      throw UsageError("unknown lint rule '" + id +
                       "' (see scpgc lint --rules)");
    opt.only.push_back(id);
  }

  const lint::LintReport rep = lint::run_lint(nl, opt);
  if (a.has_flag("json")) std::cout << rep.to_json();
  else std::cout << rep.format_text();
  return rep.clean() ? 0 : 1; // kExitOk / kExitHazards (findings)
}

int cmd_fuzz(const Library& lib, const Args& a) {
  // The fuzz exit codes are a pinned contract (0/1/2/6): a typo'd flag
  // must be a usage error, not a silently ignored full campaign.
  for (const std::string& f : a.flags)
    if (f != "json" && f != "no-minimize")
      throw UsageError("fuzz: unknown option --" + f);
  fuzz::FuzzOptions opt;
  opt.seed = std::uint64_t(a.num("seed", 1));
  opt.runs = int(a.num("runs", a.opts.count("time-budget") ? 0 : 200));
  opt.time_budget_s = a.num("time-budget", 0.0);
  opt.jobs = int(a.num("jobs", 0));
  opt.minimize = !a.has_flag("no-minimize");
  opt.corpus_dir = a.opt("corpus");
  opt.coverage_out = a.opt("coverage-out");
  if (a.opts.count("inject") > 0) {
    const auto bug = fuzz::bug_from_name(a.opt("inject"));
    if (!bug || *bug == fuzz::BugKind::None)
      throw UsageError("--inject: unknown bug class '" + a.opt("inject") +
                       "' (no_isolation, drop_clamp, stuck_isolation, "
                       "header_polarity, slow_rail, fast_clock, "
                       "output_invert)");
    opt.inject = *bug;
  }
  if (opt.runs <= 0 && opt.time_budget_s <= 0)
    throw UsageError("fuzz needs --runs N and/or --time-budget SECS");

  const bool json = a.has_flag("json");
  const fuzz::FuzzStats st = fuzz::run_fuzz(
      lib, opt, [&](const std::string& line) {
        if (!json) std::cerr << line << '\n';
      });

  const bool inject_escaped = opt.inject && !st.injected_repro;
  if (json) {
    const auto esc = [](const std::string& s) {
      std::string o;
      for (const char c : s) {
        if (c == '"' || c == '\\') o += '\\';
        o += c;
      }
      return o;
    };
    std::cout << "{\"cases\": " << st.cases << ", \"clean_cases\": "
              << st.clean_cases << ", \"bug_cases\": " << st.bug_cases
              << ", \"detected\": " << st.detected << ", \"mismatches\": "
              << st.mismatches << ", \"minimized\": " << st.minimized
              << ", \"coverage_distinct\": " << st.coverage.distinct()
              << ", \"injected_detected\": "
              << (opt.inject ? (st.injected_repro ? "true" : "false")
                             : "null")
              << ", \"mismatch_details\": [";
    for (std::size_t i = 0; i < st.mismatch_details.size(); ++i)
      std::cout << (i ? ", " : "") << '"' << esc(st.mismatch_details[i])
                << '"';
    std::cout << "], \"saved\": [";
    for (std::size_t i = 0; i < st.saved.size(); ++i)
      std::cout << (i ? ", " : "") << '"' << esc(st.saved[i]) << '"';
    std::cout << "]}\n";
  } else {
    std::cout << "fuzz: " << st.cases << " cases (" << st.clean_cases
              << " clean, " << st.bug_cases << " with injected bugs), "
              << st.detected << " detected, " << st.mismatches
              << " mismatch(es), coverage " << st.coverage.distinct()
              << " distinct keys\n";
    for (const std::string& d : st.mismatch_details)
      std::cout << "  MISMATCH " << d << '\n';
    for (const std::string& s : st.saved)
      std::cout << "  wrote " << s << ".fuzz\n";
    if (opt.inject) {
      if (st.injected_repro)
        std::cout << "  injected " << fuzz::bug_name(*opt.inject)
                  << ": detected and minimized (blocks "
                  << st.injected_repro->fc.design.blocks.size() << ", width "
                  << st.injected_repro->fc.design.width << ", cycles "
                  << st.injected_repro->fc.cycles << ")\n";
      else
        std::cout << "  injected " << fuzz::bug_name(*opt.inject)
                  << ": ESCAPED (never detected)\n";
    }
  }
  return (st.mismatches > 0 || inject_escaped) ? 1 : 0;
}

// Exit codes (keep in sync with the header comment): scripts and the CI
// harness branch on these.
constexpr int kExitOk = 0;
constexpr int kExitHazards = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitInfeasible = 4;
constexpr int kExitError = 5;
constexpr int kExitInternal = 6;

} // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  try {
    if (a.command == "liberty") return cmd_liberty();
    const Library lib = Library::scpg90();
    // Every Experiment::run() in this process lints its designs first
    // (the engine's injected design gate) unless the user opts out.
    if (!a.has_flag("no-lint")) lint::install_engine_gate();
    if (a.command == "report") return cmd_report(lib, a);
    if (a.command == "transform") return cmd_transform(lib, a);
    if (a.command == "sweep") return cmd_sweep(lib, a);
    if (a.command == "verify") return cmd_verify(lib, a);
    if (a.command == "lint") return cmd_lint(lib, a);
    if (a.command == "fuzz") return cmd_fuzz(lib, a);
    std::cerr << "usage: scpgc "
                 "{liberty|report|transform|sweep|verify|lint|fuzz} "
                 "[options]\n"
                 "       (see the header of tools/scpgc.cpp)\n";
    return kExitUsage;
  } catch (const UsageError& e) {
    std::cerr << "scpgc: usage: " << e.what() << '\n';
    return kExitUsage;
  } catch (const ParseError& e) {
    std::cerr << "scpgc: parse error: " << e.what() << '\n';
    return kExitParse;
  } catch (const InfeasibleError& e) {
    std::cerr << "scpgc: infeasible: " << e.what() << '\n';
    return kExitInfeasible;
  } catch (const Error& e) {
    std::cerr << "scpgc: error: " << e.what() << '\n';
    return kExitError;
  } catch (const std::exception& e) {
    std::cerr << "scpgc: internal error: " << e.what() << '\n';
    return kExitInternal;
  }
}
