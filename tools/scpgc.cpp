// scpgc — command-line driver for the SCPG flow.
//
//   scpgc liberty                                  dump the scpg90 library
//   scpgc report    --in d.v [--vdd V] [--temp C]  stats + timing + leakage
//   scpgc transform --in d.v --out o.v [options]   apply power gating
//   scpgc sweep     --in d.v [--vdd V] [--activity A] [--fmax-mhz F]
//                   [--points N] [--cycles N] [--seed S] [--jobs N]
//                   [--backend B] [--json]         power-vs-frequency table:
//                                                  analytic model columns +
//                                                  simulated columns run
//                                                  through the parallel
//                                                  sweep engine (output is
//                                                  identical at any --jobs)
//   scpgc verify    --in d.v [options] [--json]    fault-injection campaign
//                                                  with runtime hazard
//                                                  monitors
//   scpgc campaign  --in d.v [sweep knobs] [--workers N] [--journal FILE]
//                   [--resume FILE] [--json]       the standard measured
//                                                  sweep sharded across
//                                                  supervised worker
//                                                  subprocesses with a
//                                                  crash-safe write-ahead
//                                                  journal; bit-identical
//                                                  to --workers 0 at any
//                                                  worker count, resumable
//                                                  after SIGKILL
//   scpgc worker                                   internal: campaign worker
//                                                  subprocess (frame
//                                                  protocol on stdin/stdout)
//   scpgc lint      --in d.v [--freq-mhz F] [--duty D] [--clock NAME]
//                   [--only IDS] [--json]          static SCPG power-intent
//                                                  and structural analysis
//                                                  (rules SCPG001-008);
//                                                  --rules lists the rule
//                                                  table
//   scpgc serve     --socket PATH [--jobs N] [--cache FILE]
//                   [--cache-capacity N] [--batch-window-ms MS]
//                                                  long-running daemon:
//                                                  sweep/lint/verify
//                                                  requests over a unix
//                                                  socket, concurrent
//                                                  sweeps coalesced into
//                                                  merged engine runs, a
//                                                  disk-backed result
//                                                  cache that survives
//                                                  restarts; responses
//                                                  are byte-identical to
//                                                  the direct --json
//                                                  commands
//   scpgc client    --socket PATH --op OP [request options]
//                                                  send one request to a
//                                                  running daemon; prints
//                                                  the response body and
//                                                  exits with the
//                                                  request's exit code
//   scpgc fuzz      [--seed S] [--runs N] [--time-budget SECS] [--jobs N]
//                   [--corpus DIR] [--no-minimize] [--inject BUG]
//                   [--coverage-out FILE] [--json]
//                                                  coverage-guided
//                                                  differential fuzzing of
//                                                  generated SCPG designs
//                                                  through four oracles;
//                                                  mismatches are
//                                                  delta-debug minimized
//                                                  and written under
//                                                  DIR/findings.  --inject
//                                                  BUG forces one bug class
//                                                  into every case and
//                                                  writes the minimized
//                                                  detected reproducer
//
// Every subcommand accepts the global options (see tools/cli.hpp):
//
//   --json             machine-readable output: one JSON envelope
//                      {"schema_version": 1, "tool": "scpgc-<cmd>",
//                       "payload": {...}} on stdout
//   --trace FILE       write a Chrome trace_event profile (open in
//                      chrome://tracing or Perfetto); one track per
//                      sweep/fuzz worker thread
//   --metrics FILE     write the collected metrics registry as a JSON
//                      envelope; "values" are jobs-invariant, "timings"
//                      are wall-clock
//   --help             auto-generated per-command usage text
//
// `scpgc <command> --help` lists each command's full option set; the
// option reference is generated from the same cli::Spec declarations
// that parse the command line.
//
// lint exit codes: 0 clean, 1 findings reported, 2 usage, 3 parse error.
// fuzz exit codes: 0 zero mismatches (with --inject: bug detected),
// 1 mismatches found / injected bug escaped, 2 usage, 6 internal.
// sweep and verify run the linter as a pre-gate (disable with --no-lint);
// a lint rejection there exits 5 (flow error).
//
// exit codes:
//   0  success (verify: zero hazards)      1  verify: hazards detected
//   2  usage error                         3  parse error
//   4  infeasible design request           5  other flow error
//   6  unexpected internal error           7  campaign: poisoned ranges
//   8  serve: socket owned by a live daemon
//
// campaign exit codes: 0 every row measured; 3 corrupt journal (parse
// error, incl. resume of a bit-flipped or hostile file); 5 journal/
// campaign mismatch or unrecoverable worker setup failure; 7 one or more
// ranges exhausted their retry budget (healthy rows still completed and,
// with --journal, are durable for a later --resume).
//
// Netlists must be flat structural Verilog over scpg90 cells (the format
// written by this library; see examples/design_flow).
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/coordinator.hpp"
#include "campaign/spec.hpp"
#include "campaign/frame.hpp"
#include "campaign/journal.hpp"
#include "campaign/worker.hpp"
#include "cli.hpp"
#include "engine/sweep.hpp"
#include "fuzz/fuzzer.hpp"
#include "lint/lint.hpp"
#include "netlist/report.hpp"
#include "netlist/verilog.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "power/power.hpp"
#include "scpg/model.hpp"
#include "scpg/traditional.hpp"
#include "scpg/transform.hpp"
#include "scpg/upf.hpp"
#include "serve/client.hpp"
#include "serve/exec.hpp"
#include "serve/server.hpp"
#include "sta/sta.hpp"
#include "tech/liberty.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"
#include "util/table.hpp"
#include "verify/campaign.hpp"

using namespace scpg;

namespace {

Netlist load(const Library& lib, const std::string& path) {
  if (path.empty()) throw cli::UsageError("missing required --in FILE");
  std::ifstream in(path);
  if (!in) throw Error("cannot open input netlist: " + path);
  return read_verilog(in, lib, {}, path);
}

Corner corner_of(const cli::Parsed& p) {
  return Corner{Voltage{p.num("vdd", 0.6)}, p.num("temp", 25.0)};
}

// Shared with `scpgc campaign` via src/campaign: one definition of the
// vector-less dynamic-energy estimate and the random stimulus, so the
// in-process sweep and the multi-process campaign measure identically.
using campaign::estimate_dynamic_energy;
using campaign::random_stimulus;

sim::Backend backend_of(const cli::Parsed& p) {
  const std::string name = p.opt("backend", "event");
  const auto b = sim::backend_from_name(name);
  if (!b)
    throw cli::UsageError("--backend must be event, compiled or auto; got '" +
                          name + "'");
  return *b;
}

// --- request builders -------------------------------------------------------
//
// `scpgc sweep/lint/verify --json` and `scpgc client --op ...` build the
// same closed request values (src/serve/exec.hpp) from the same options;
// usage validation (exit 2) happens here, before anything executes.

campaign::CampaignSpec sweep_request_spec(const cli::Parsed& p) {
  campaign::CampaignSpec cs;
  cs.netlist_path = p.opt("in");
  if (cs.netlist_path.empty())
    throw cli::UsageError("missing required --in FILE");
  cs.vdd = p.num("vdd", 0.6);
  cs.temp_c = p.num("temp", 25.0);
  cs.activity = p.num("activity", 0.15);
  cs.fmax_mhz = p.num("fmax-mhz", 10.0);
  cs.points = int(p.num("points", 12));
  cs.cycles = int(p.num("cycles", 12));
  cs.seed = std::uint64_t(p.num("seed", 1));
  cs.clock_port = p.opt("clock", "clk");
  cs.backend = backend_of(p);
  return cs;
}

serve::LintRequest lint_request_of(const cli::Parsed& p) {
  serve::LintRequest rq;
  rq.netlist_path = p.opt("in");
  if (rq.netlist_path.empty())
    throw cli::UsageError("missing required --in FILE");
  rq.vdd = p.num("vdd", 0.6);
  rq.temp_c = p.num("temp", 25.0);
  rq.clock_port = p.opt("clock", "clk");
  rq.duty = p.num("duty", 0.5);
  if (p.has_opt("freq-mhz")) {
    rq.has_freq = true;
    rq.freq_mhz = p.num("freq-mhz", 1.0);
  }
  rq.only = p.opt("only");
  // Validate rule ids up front: a typo is a usage error (exit 2), not a
  // flow error from deep inside the linter.
  std::string list = rq.only;
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string id = list.substr(0, comma);
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
    if (id.empty()) continue;
    bool known = false;
    for (const lint::RuleInfo& r : lint::rules()) known |= r.id == id;
    if (!known)
      throw cli::UsageError("unknown lint rule '" + id +
                            "' (see scpgc lint --rules)");
  }
  return rq;
}

serve::VerifyRequest verify_request_of(const cli::Parsed& p) {
  if (backend_of(p) == sim::Backend::Compiled)
    throw Error(
        "verify needs the event backend: runtime hazard monitors and "
        "per-event rail timing are not modeled by the compiled kernel "
        "(use --backend event or auto)");
  serve::VerifyRequest rq;
  rq.netlist_path = p.opt("in");
  if (rq.netlist_path.empty())
    throw cli::UsageError("missing required --in FILE");
  rq.vdd = p.num("vdd", 0.6);
  rq.temp_c = p.num("temp", 25.0);
  rq.clock_port = p.opt("clock", "clk");
  rq.faults = p.opt("fault");
  rq.rate = p.num("rate", 0.0);
  rq.magnitude = p.num("magnitude", 0.0);
  rq.freq_mhz = p.num("freq-mhz", 1.0);
  rq.duty = p.num("duty", 0.5);
  rq.cycles = int(p.num("cycles", 40));
  rq.warmup = int(p.num("warmup", 6));
  rq.max_report = int(p.num("max-report", 10));
  rq.seed = std::uint64_t(p.num("seed", 1));
  rq.lint_gate = !p.has_flag("no-lint");
  std::string list = rq.faults;
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string name = list.substr(0, comma);
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
    if (name.empty()) continue;
    if (!verify::fault_class_from_name(name))
      throw cli::UsageError(
          "unknown fault class '" + name +
          "' (expected stuck-isolation, delayed-isolation, dropped-clamp, "
          "slow-rail-restore, premature-edge or seu-flip)");
  }
  return rq;
}

// --- command specs ----------------------------------------------------------
//
// One cli::Spec per subcommand: the declarations below are the single
// source of truth for parsing, the --help text, and the unknown-option
// rejection (exit 2) every command now shares.

cli::Spec& with_in(cli::Spec& s) {
  s.opt("in", "FILE",
        "input netlist (flat structural Verilog over scpg90 cells)");
  return s;
}

cli::Spec& with_corner(cli::Spec& s) {
  s.opt("vdd", "V", "supply voltage (default 0.6)")
      .opt("temp", "C", "temperature in Celsius (default 25)");
  return s;
}

cli::Spec& with_backend(cli::Spec& s, const char* what) {
  s.opt("backend", "B", what);
  return s;
}

constexpr const char* kBackendSweepHelp =
    "simulation backend: event (reference), compiled (levelized "
    "bit-parallel kernel) or auto (default event)";

cli::Spec liberty_spec() {
  return cli::Spec("liberty", "dump the scpg90 Liberty library to stdout");
}

cli::Spec report_spec() {
  cli::Spec s("report", "design statistics, critical path and leakage");
  with_corner(with_in(s));
  return s;
}

cli::Spec transform_spec() {
  cli::Spec s("transform", "apply SCPG (or traditional) power gating");
  with_in(s)
      .opt("out", "FILE", "output netlist (required)")
      .opt("upf", "FILE", "also write the UPF power intent")
      .opt("clock", "NAME", "clock port (default clk)")
      .opt("header-drive", "N",
           "header strength (default 2; 4 for big domains)")
      .opt("header-count", "N", "parallel headers (default 4)")
      .flag("traditional", "idle-mode PG baseline instead of SCPG")
      .flag("no-isolation", "ablation: skip output clamps")
      .flag("no-adaptive", "ablation: clock-only isolation release")
      .flag("split", "write the domain-split two-module Verilog");
  return s;
}

cli::Spec sweep_spec() {
  cli::Spec s("sweep",
              "power-vs-frequency table: analytic model + simulated "
              "columns through the parallel sweep engine");
  with_corner(with_in(s))
      .opt("clock", "NAME", "clock port (default clk)")
      .opt("activity", "A", "per-net toggle probability (default 0.15)")
      .opt("fmax-mhz", "F", "top of the frequency range (default 10)")
      .opt("points", "N", "operating points, log-spaced (default 12)")
      .opt("cycles", "N", "measured cycles per point (default 12)")
      .with_seed()
      .with_parallelism()
      .flag("no-lint", "skip the lint pre-gate on swept designs");
  with_backend(s, kBackendSweepHelp);
  return s;
}

cli::Spec verify_spec() {
  cli::Spec s("verify",
              "fault-injection campaign with runtime hazard monitors");
  with_corner(with_in(s))
      .opt("clock", "NAME", "clock port (default clk)")
      .opt("fault", "LIST",
           "comma-separated fault classes: stuck-isolation, "
           "delayed-isolation, dropped-clamp, slow-rail-restore, "
           "premature-edge, seu-flip (default: none)")
      .opt("rate", "R", "fault intensity 0..1 (0 = class default)")
      .opt("magnitude", "M",
           "class magnitude (slow-rail-restore Ron derate)")
      .opt("freq-mhz", "F", "campaign clock (default 1.0)")
      .opt("duty", "D", "clock duty high (default 0.5)")
      .opt("cycles", "N", "monitored cycles (default 40)")
      .opt("warmup", "N", "unmonitored settling cycles (default 6)")
      .opt("max-report", "N", "hazard reports to print (default 10)")
      .with_seed()
      .flag("no-lint", "skip the lint pre-gate");
  with_backend(s,
               "simulation backend; hazard monitors need the event "
               "reference, so auto resolves to event and compiled is "
               "rejected (default event)");
  return s;
}

cli::Spec campaign_spec() {
  cli::Spec s("campaign",
              "the standard measured sweep sharded across supervised "
              "worker subprocesses, crash-safe and resumable");
  with_corner(with_in(s))
      .opt("clock", "NAME", "clock port (default clk)")
      .opt("activity", "A", "per-net toggle probability (default 0.15)")
      .opt("fmax-mhz", "F", "top of the frequency range (default 10)")
      .opt("points", "N", "operating points, log-spaced (default 12)")
      .opt("cycles", "N", "measured cycles per point (default 12)")
      .with_seed()
      .opt("workers", "N",
           "worker subprocesses (default 2; 0 = run in-process)")
      .opt("journal", "FILE", "write-ahead journal for crash recovery")
      .opt("resume", "FILE",
           "resume from a journal; the spec comes from its header")
      .opt("shard", "N", "rows per worker assignment (default 4)")
      .opt("max-attempts", "N",
           "assignments per range before poisoning (default 3)")
      .opt("heartbeat-ms", "MS", "worker heartbeat period (default 250)")
      .opt("timeout-ms", "MS", "per-assignment deadline (default 60000)")
      .opt("worker-cmd", "PATH", "worker executable (default: this binary)")
      .opt("crash-at-row", "N",
           "fault injection: crashing workers _exit(137) before row N")
      .opt("crash-workers", "N",
           "fault injection: how many spawned workers crash (default 1)")
      .flag("no-lint", "skip the lint pre-gate on swept designs");
  with_backend(s, kBackendSweepHelp);
  return s;
}

cli::Spec worker_spec() {
  return cli::Spec("worker",
                   "internal: campaign worker subprocess; speaks the "
                   "framed campaign protocol on stdin/stdout");
}

cli::Spec lint_spec() {
  cli::Spec s("lint",
              "static SCPG power-intent and structural analysis "
              "(rules SCPG001-008)");
  with_corner(with_in(s))
      .opt("clock", "NAME", "clock port (default clk)")
      .opt("freq-mhz", "F",
           "target frequency for SCPG005 timing feasibility")
      .opt("duty", "D", "clock duty high for SCPG005 (default 0.5)")
      .opt("only", "IDS", "comma-separated rule ids to run")
      .flag("rules", "list the rule table and exit");
  return s;
}

cli::Spec serve_spec() {
  cli::Spec s("serve",
              "long-running sweep/lint/verify daemon on a unix socket "
              "with request coalescing and a disk-backed result cache");
  s.opt("socket", "PATH", "unix socket path to listen on (required)")
      .opt("cache", "FILE",
           "disk-backed result cache; persists across restarts")
      .opt("cache-capacity", "N",
           "in-memory cache entry ceiling (default 65536)")
      .opt("batch-window-ms", "MS",
           "how long to hold a sweep for coalescing (default 4)")
      .with_parallelism();
  return s;
}

cli::Spec client_spec() {
  cli::Spec s("client",
              "send one request to a running scpgc serve daemon; prints "
              "the response body, exits with the request's exit code");
  s.opt("socket", "PATH", "daemon socket path (required)")
      .opt("op", "OP", "ping, stats, shutdown, sweep, lint or verify");
  // The union of the sweep/lint/verify request options; which ones are
  // read depends on --op (defaults match the direct subcommands).
  with_corner(with_in(s))
      .opt("clock", "NAME", "clock port (default clk)")
      .opt("activity", "A", "sweep: per-net toggle probability")
      .opt("fmax-mhz", "F", "sweep: top of the frequency range")
      .opt("points", "N", "sweep: operating points, log-spaced")
      .opt("cycles", "N", "sweep/verify: cycles")
      .opt("fault", "LIST", "verify: comma-separated fault classes")
      .opt("rate", "R", "verify: fault intensity 0..1")
      .opt("magnitude", "M", "verify: class magnitude")
      .opt("freq-mhz", "F", "lint/verify: clock frequency")
      .opt("duty", "D", "lint/verify: clock duty high")
      .opt("warmup", "N", "verify: unmonitored settling cycles")
      .opt("max-report", "N", "verify: hazard reports to include")
      .opt("only", "IDS", "lint: comma-separated rule ids")
      .with_seed()
      .with_parallelism();
  with_backend(s, kBackendSweepHelp);
  return s;
}

cli::Spec fuzz_spec() {
  cli::Spec s("fuzz",
              "coverage-guided differential fuzzing of generated SCPG "
              "designs through four oracles");
  s.opt("runs", "N", "cases to run (default 200 unless --time-budget)")
      .opt("time-budget", "SECS", "wall-clock budget instead of a count")
      .opt("corpus", "DIR", "seed corpus; findings go to DIR/findings")
      .opt("inject", "BUG",
           "force one bug class into every case (no_isolation, "
           "drop_clamp, stuck_isolation, header_polarity, slow_rail, "
           "fast_clock, output_invert)")
      .opt("coverage-out", "FILE", "write the coverage map envelope")
      .with_seed()
      .with_parallelism()
      .flag("no-minimize", "skip delta-debug minimization of mismatches");
  with_backend(s,
               "backend-divergence arm of the diff-sim oracle: auto "
               "(default) replays eligible cases on the compiled kernel, "
               "compiled makes an ineligible case a mismatch, event "
               "disables the arm");
  return s;
}

// --- commands ---------------------------------------------------------------

int cmd_liberty(const Library& lib, const cli::Parsed& /*p*/) {
  write_liberty(lib, std::cout);
  return 0;
}

int cmd_report(const Library& lib, const cli::Parsed& p) {
  Netlist nl = load(lib, p.opt("in"));
  const Corner c = corner_of(p);
  print_stats(compute_stats(nl), std::cout, "design '" + nl.name() + "'");
  std::cout << "\nleakage at " << c.vdd.v << " V / " << c.temp_c
            << " C: " << in_uW(static_leakage(nl, c)) << " uW\n\n";
  const StaReport sta = run_sta(nl, c);
  std::cout << format_path(nl, sta);
  std::cout << "hold met: " << (sta.hold_met() ? "yes" : "NO") << "\n";
  return 0;
}

int cmd_transform(const Library& lib, const cli::Parsed& p) {
  Netlist nl = load(lib, p.opt("in"));
  const std::string out = p.opt("out");
  if (out.empty()) throw Error("transform requires --out");

  if (p.has_flag("traditional")) {
    TraditionalPgOptions opt;
    opt.clock_port = p.opt("clock", "clk");
    opt.header_drive = int(p.num("header-drive", 2));
    opt.header_count = int(p.num("header-count", 4));
    const TraditionalPgInfo info = apply_traditional_pg(nl, opt);
    std::cerr << "traditional PG: " << info.cells_gated << " cells gated, "
              << info.retention_cells << " retention balloons, area +"
              << 100.0 * info.area_overhead() << "%\n";
  } else {
    ScpgOptions opt;
    opt.clock_port = p.opt("clock", "clk");
    opt.header_drive = int(p.num("header-drive", 2));
    opt.header_count = int(p.num("header-count", 4));
    opt.insert_isolation = !p.has_flag("no-isolation");
    opt.adaptive_controller = !p.has_flag("no-adaptive");
    const ScpgInfo info = apply_scpg(nl, opt);
    std::cerr << "SCPG: " << info.cells_gated << " cells gated, "
              << info.isolation_cells << " isolation cells, area +"
              << 100.0 * info.area_overhead() << "%\n";
    if (const std::string upf = p.opt("upf"); !upf.empty()) {
      std::ofstream uf(upf);
      if (!uf) throw Error("cannot open UPF output: " + upf);
      write_upf(nl, info, uf);
      std::cerr << "wrote " << upf << "\n";
    }
  }

  std::ofstream of(out);
  if (!of) throw Error("cannot open output netlist: " + out);
  write_verilog(nl, of, {.split_domains = p.has_flag("split")});
  std::cerr << "wrote " << out << "\n";
  return 0;
}

int cmd_verify(const Library& lib, const cli::Parsed& p) {
  if (p.json()) {
    // One renderer (src/serve/exec.hpp): the serve daemon returns this
    // exact body for the same request, so byte-identity holds by
    // construction rather than by parallel maintenance.
    const serve::ExecResult r = serve::exec_verify(lib, verify_request_of(p));
    std::cout << r.body;
    return r.exit_code;
  }

  // Hazard monitors are observer hooks on the event simulator; the
  // compiled kernel has no observers, so auto resolves to event and a
  // forced compiled request is an error rather than a silent downgrade.
  if (backend_of(p) == sim::Backend::Compiled)
    throw Error(
        "verify needs the event backend: runtime hazard monitors and "
        "per-event rail timing are not modeled by the compiled kernel "
        "(use --backend event or auto)");

  Netlist nl = load(lib, p.opt("in"));
  const std::string design_name = nl.name();

  bool already_gated = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (nl.cell(CellId{ci}).domain == Domain::Gated) already_gated = true;
  if (!already_gated) {
    ScpgOptions sopt;
    sopt.clock_port = p.opt("clock", "clk");
    const ScpgInfo info = apply_scpg(nl, sopt);
    std::cerr << "SCPG applied: " << info.cells_gated << " cells gated, "
              << info.isolation_cells << " isolation cells\n";
  }

  verify::CampaignOptions opt;
  opt.f = Frequency{p.num("freq-mhz", 1.0) * 1e6};
  opt.duty_high = p.num("duty", 0.5);
  opt.cycles = int(p.num("cycles", 40));
  opt.warmup_cycles = int(p.num("warmup", 6));
  opt.seed = std::uint64_t(p.num("seed", 1));
  opt.sim.corner = corner_of(p);
  opt.clock_port = p.opt("clock", "clk");
  const double rate = p.num("rate", 0.0);
  const double magnitude = p.num("magnitude", 0.0);
  std::string list = p.opt("fault");
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string name = list.substr(0, comma);
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
    if (name.empty()) continue;
    const auto fc = verify::fault_class_from_name(name);
    if (!fc)
      throw cli::UsageError(
          "unknown fault class '" + name +
          "' (expected stuck-isolation, delayed-isolation, dropped-clamp, "
          "slow-rail-restore, premature-edge or seu-flip)");
    opt.faults.push_back({*fc, rate, magnitude});
  }

  // Static pre-gate: reject designs whose power intent is broken before
  // spending cycles simulating them (a stuck campaign on a mis-clamped
  // design reports hazards, but the linter names the structural cause).
  if (!p.has_flag("no-lint")) {
    lint::LintOptions lopt;
    lopt.clock_port = opt.clock_port;
    lopt.freq = opt.f;
    lopt.duty_high = opt.duty_high;
    lopt.sim = opt.sim;
    lint::enforce_lint(nl, lopt, "verify pre-gate");
  }

  const verify::CampaignResult res = verify::run_campaign(std::move(nl), opt);
  const auto max_report = std::size_t(p.num("max-report", 10));
  const auto& reports = res.hazards.reports();

  if (p.json()) {
    json::Writer w(std::cout);
    json::write_envelope_open(w, "scpgc-verify");
    w.key("payload").begin_object();
    w.key("design").value(design_name);
    w.key("freq_mhz").value(p.num("freq-mhz", 1.0));
    w.key("cycles_run").value(std::int64_t(res.cycles_run));
    w.key("seed").value(std::uint64_t(opt.seed));
    w.key("backend").value("event");
    w.key("injected").begin_object(json::Writer::Style::Compact);
    for (int i = 0; i < verify::kNumFaultClasses; ++i)
      if (res.injected[std::size_t(i)] > 0)
        w.key(verify::fault_class_name(verify::FaultClass(i)))
            .value(res.injected[std::size_t(i)]);
    w.end_object();
    w.key("hazards").begin_object();
    w.key("total").value(std::uint64_t(res.hazards.total()));
    w.key("dropped").value(std::uint64_t(res.hazards.dropped()));
    w.key("by_kind").begin_object(json::Writer::Style::Compact);
    for (int k = 0; k < verify::kNumHazardKinds; ++k)
      if (res.hazards.count(verify::HazardKind(k)) > 0)
        w.key(verify::hazard_kind_name(verify::HazardKind(k)))
            .value(std::uint64_t(res.hazards.count(verify::HazardKind(k))));
    w.end_object();
    w.key("reports").begin_array();
    for (std::size_t i = 0; i < reports.size() && i < max_report; ++i)
      w.value(verify::format_hazard(reports[i]));
    w.end_array();
    w.end_object();
    w.key("clean").value(!res.detected());
    w.end_object();
    w.end_object();
    std::cout << '\n';
  } else {
    std::cout << "campaign: " << res.cycles_run << " cycles at "
              << p.num("freq-mhz", 1.0) << " MHz, seed " << opt.seed << "\n";
    for (int i = 0; i < verify::kNumFaultClasses; ++i)
      if (res.injected[std::size_t(i)] > 0)
        std::cout << "  injected " << res.injected[std::size_t(i)] << " x "
                  << verify::fault_class_name(verify::FaultClass(i)) << "\n";
    if (res.injected_total() == 0) std::cout << "  no faults injected\n";
    std::cout << "\n" << verify::format_hazard_summary(res.hazards) << "\n";
    for (std::size_t i = 0; i < reports.size() && i < max_report; ++i)
      std::cout << verify::format_hazard(reports[i]) << "\n";
    if (reports.size() > max_report)
      std::cout << "... " << reports.size() - max_report << " more\n";
    if (!res.detected())
      std::cout << "contract clean: no hazards detected\n";
  }

  if (res.detected()) {
    std::cerr << "scpgc: verify: " << res.hazards.total()
              << " hazards detected\n";
    return 1; // kExitHazards (declared below)
  }
  return 0; // kExitOk
}

int cmd_sweep(const Library& lib, const cli::Parsed& p) {
  if (p.json()) {
    // One renderer (src/serve/exec.hpp): the serve daemon returns this
    // exact body for the same request, so byte-identity holds by
    // construction rather than by parallel maintenance.
    const serve::ExecResult r = serve::exec_sweep(
        lib, {sweep_request_spec(p), int(p.num("jobs", 1))});
    std::cout << r.body;
    return r.exit_code;
  }

  Netlist nl = load(lib, p.opt("in"));
  const Corner c = corner_of(p);
  const double activity = p.num("activity", 0.15);
  const int jobs = int(p.num("jobs", 1));
  const int cycles = int(p.num("cycles", 12));
  const auto seed = std::uint64_t(p.num("seed", 1));
  const std::string clock_port = p.opt("clock", "clk");
  const sim::Backend backend = backend_of(p);

  // Transform a copy if the input is not already gated; the pre-transform
  // netlist is the measured no-gating reference.
  bool already_gated = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (nl.cell(CellId{ci}).domain == Domain::Gated) already_gated = true;
  const Netlist original = nl;
  ScpgOptions sopt;
  sopt.clock_port = clock_port;
  if (!already_gated) apply_scpg(nl, sopt);

  SimConfig cfg;
  cfg.corner = c;
  const Energy e_dyn = estimate_dynamic_energy(nl, c, activity);
  const ScpgPowerModel m = ScpgPowerModel::extract(nl, cfg, e_dyn);

  const double fmax_mhz = p.num("fmax-mhz", 10.0);
  const int points = int(p.num("points", 12));
  std::vector<double> fs_mhz;
  for (int i = 0; i < points; ++i)
    fs_mhz.push_back(fmax_mhz *
                     std::pow(10.0, -3.0 + 3.0 * double(i) / (points - 1)));

  // Measured columns: every operating point through the parallel engine.
  // The no-gating reference is the pre-transform netlist when we gated a
  // copy ourselves, otherwise the gated input with the override asserted.
  engine::SweepSpec spec;
  spec.design(original, "original").design(nl, "gated");
  spec.base_sim(cfg)
      .cycles(cycles)
      .clock_port(clock_port)
      .jobs(jobs)
      .backend(backend)
      .stimulus(random_stimulus(activity, clock_port));
  for (std::size_t i = 0; i < fs_mhz.size(); ++i) {
    const Frequency f{fs_mhz[i] * 1e6};
    engine::OperatingPoint pt;
    pt.f = f;
    pt.corner = c;
    pt.seed = seed;
    pt.design = already_gated ? 1 : 0;
    pt.override_gating = already_gated;
    pt.tag = "n:" + std::to_string(i);
    spec.point(pt);
    if (m.feasible(f, 0.5)) {
      pt.design = 1;
      pt.override_gating = false;
      pt.tag = "g:" + std::to_string(i);
      spec.point(pt);
    }
  }
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();

  struct Row {
    double f_mhz, none_uw, scpg50_uw, scpgmax_uw, duty_max;
    bool f50, fmax;
    double meas_none_uw, meas_scpg50_uw;
    bool measured50;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < fs_mhz.size(); ++i) {
    const Frequency f{fs_mhz[i] * 1e6};
    const auto dmax = m.duty_for(GatingMode::ScpgMax, f);
    Row r{};
    r.f_mhz = fs_mhz[i];
    r.none_uw = in_uW(m.average_power_ungated(f));
    r.f50 = m.feasible(f, 0.5);
    r.scpg50_uw = r.f50 ? in_uW(m.average_power_gated(f, 0.5)) : 0.0;
    r.fmax = dmax.has_value();
    r.scpgmax_uw = dmax ? in_uW(m.average_power_gated(f, *dmax)) : 0.0;
    r.duty_max = dmax.value_or(0.0);
    r.meas_none_uw =
        in_uW(res.at_tag("n:" + std::to_string(i)).avg_power);
    const engine::PointResult* g = res.find("g:" + std::to_string(i));
    r.measured50 = g != nullptr;
    r.meas_scpg50_uw = g ? in_uW(g->avg_power) : 0.0;
    rows.push_back(r);
  }

  if (p.json()) {
    json::Writer w(std::cout);
    json::write_envelope_open(w, "scpgc-sweep");
    w.key("payload").begin_object();
    w.key("design").value(nl.name());
    w.key("vdd").value(c.vdd.v);
    w.key("temp_c").value(c.temp_c);
    w.key("activity").value(activity);
    w.key("cycles").value(cycles);
    w.key("seed").value(seed);
    w.key("jobs").value(jobs);
    w.key("backend").value(std::string(sim::backend_name(backend)));
    w.key("cache_hits").value(std::uint64_t(res.cache_hits()));
    w.key("rows").begin_array();
    for (const Row& r : rows) {
      w.begin_object(json::Writer::Style::Compact);
      w.key("f_mhz").value(r.f_mhz);
      w.key("none_uw").value(r.none_uw);
      w.key("scpg50_uw");
      if (r.f50) w.value(r.scpg50_uw); else w.null();
      w.key("scpgmax_uw");
      if (r.fmax) w.value(r.scpgmax_uw); else w.null();
      w.key("duty_max");
      if (r.fmax) w.value(r.duty_max); else w.null();
      w.key("measured_none_uw").value(r.meas_none_uw);
      w.key("measured_scpg50_uw");
      if (r.measured50) w.value(r.meas_scpg50_uw); else w.null();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    std::cout << '\n';
    return 0;
  }

  TextTable t("power sweep, activity " + TextTable::num(activity, 2) +
              ", VDD " + TextTable::num(c.vdd.v, 2) + " V (sim columns: " +
              std::to_string(cycles) + " cycles, seed " +
              std::to_string(seed) + ")");
  t.header({"f MHz", "no gating uW", "SCPG@50 uW", "SCPG-Max uW",
            "max duty", "sim none uW", "sim @50 uW"});
  for (const Row& r : rows)
    t.row({TextTable::num(r.f_mhz, 3), TextTable::num(r.none_uw, 2),
           r.f50 ? TextTable::num(r.scpg50_uw, 2) : "n/f",
           r.fmax ? TextTable::num(r.scpgmax_uw, 2) : "n/f",
           r.fmax ? TextTable::num(100.0 * r.duty_max, 0) + "%" : "-",
           TextTable::num(r.meas_none_uw, 2),
           r.measured50 ? TextTable::num(r.meas_scpg50_uw, 2) : "n/f"});
  t.print(std::cout);
  return 0;
}

/// Path of the running binary, for respawning ourselves as `scpgc
/// worker`.  /proc/self/exe is authoritative on Linux; the PATH lookup
/// in execvp covers the fallback name.
std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) return std::string(buf, std::size_t(n));
  return "scpgc";
}

int cmd_campaign(const Library& lib, const cli::Parsed& p) {
  campaign::CampaignSpec cs;
  campaign::CoordinatorOptions opt;
  if (p.has_opt("resume")) {
    // The journal header is the spec: a resume needs no --in and cannot
    // accidentally describe a different campaign.
    opt.journal_path = p.opt("resume");
    opt.resume = true;
    cs = campaign::read_journal(opt.journal_path, /*allow_torn_tail=*/true)
             .spec;
  } else {
    cs.netlist_path = p.opt("in");
    if (cs.netlist_path.empty())
      throw cli::UsageError("missing required --in FILE (or --resume FILE)");
    cs.vdd = p.num("vdd", 0.6);
    cs.temp_c = p.num("temp", 25.0);
    cs.activity = p.num("activity", 0.15);
    cs.fmax_mhz = p.num("fmax-mhz", 10.0);
    cs.points = int(p.num("points", 12));
    cs.cycles = int(p.num("cycles", 12));
    cs.seed = std::uint64_t(p.num("seed", 1));
    cs.clock_port = p.opt("clock", "clk");
    cs.backend = backend_of(p);
    opt.journal_path = p.opt("journal");
  }
  opt.workers = int(p.num("workers", 2));
  opt.shard_size = std::size_t(p.num("shard", 4));
  opt.max_attempts = int(p.num("max-attempts", 3));
  opt.heartbeat_ms = int(p.num("heartbeat-ms", 250));
  opt.range_timeout_ms = int(p.num("timeout-ms", 60000));
  if (p.has_opt("crash-at-row")) {
    opt.worker_crash_at_row = std::size_t(p.num("crash-at-row", 0));
    opt.crash_worker_limit = int(p.num("crash-workers", 1));
  }
  if (opt.workers > 0) {
    std::string wcmd = p.opt("worker-cmd");
    if (wcmd.empty()) wcmd = self_exe();
    opt.worker_argv = {wcmd, "worker"};
    if (p.has_flag("no-lint")) opt.worker_argv.push_back("--no-lint");
  }

  const campaign::CampaignPlan plan = campaign::build_campaign(lib, cs);
  const campaign::CampaignOutcome out = campaign::run_campaign(plan, opt);

  if (p.json()) {
    json::Writer w(std::cout);
    json::write_envelope_open(w, "scpgc-campaign");
    w.key("payload").begin_object();
    w.key("design").value(plan.design_name);
    w.key("backend").value(
        std::string(sim::backend_name(plan.spec.backend)));
    w.key("campaign").value(campaign::hex64(out.campaign_digest));
    w.key("total").value(std::uint64_t(out.results.size()));
    w.key("completed")
        .value(std::uint64_t(out.results.size() - out.poisoned_rows.size()));
    w.key("resumed_skipped").value(std::uint64_t(out.resumed_skipped));
    w.key("retries").value(std::uint64_t(out.retries));
    w.key("workers_spawned").value(std::uint64_t(out.workers_spawned));
    w.key("heartbeat_misses").value(std::uint64_t(out.heartbeat_misses));
    w.key("result_digest")
        .value(out.complete() ? campaign::hex64(out.result_digest) : "");
    w.key("poisoned_rows").begin_array();
    for (const std::size_t r : out.poisoned_rows) w.value(std::uint64_t(r));
    w.end_array();
    w.key("rows").begin_array();
    for (std::size_t i = 0; i < out.results.size(); ++i) {
      if (std::binary_search(out.poisoned_rows.begin(),
                             out.poisoned_rows.end(), i))
        continue;
      const engine::PointResult& r = out.results[i];
      w.begin_object(json::Writer::Style::Compact);
      w.key("tag").value(r.point.tag);
      w.key("f_mhz").value(r.point.f.v / 1e6);
      w.key("avg_uw").value(in_uW(r.avg_power));
      // Bit pattern: crashmat asserts byte-identical recovery on this.
      w.key("avg_power_bits")
          .value(campaign::hex64(campaign::double_bits(r.avg_power.v)));
      w.key("cache_hit").value(r.cache_hit);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    std::cout << '\n';
  } else {
    TextTable t("campaign " + campaign::hex64(out.campaign_digest) + ", " +
                std::to_string(out.results.size()) + " rows, " +
                std::to_string(opt.workers) + " workers (" +
                std::to_string(out.workers_spawned) + " spawned, " +
                std::to_string(out.retries) + " retries, " +
                std::to_string(out.resumed_skipped) + " resumed)");
    t.header({"row", "tag", "f MHz", "sim uW"});
    for (std::size_t i = 0; i < out.results.size(); ++i) {
      const engine::PointResult& r = out.results[i];
      const bool poisoned = std::binary_search(out.poisoned_rows.begin(),
                                               out.poisoned_rows.end(), i);
      t.row({std::to_string(i), r.point.tag,
             TextTable::num(r.point.f.v / 1e6, 3),
             poisoned ? "POISONED" : TextTable::num(in_uW(r.avg_power), 2)});
    }
    t.print(std::cout);
    if (!out.complete())
      std::cout << "campaign: " << out.poisoned_rows.size()
                << " row(s) poisoned after " << opt.max_attempts
                << " attempts\n";
  }
  return out.complete() ? 0 : 7; // kExitOk / kExitPoisoned
}

int cmd_worker(const Library& /*lib*/, const cli::Parsed& /*p*/) {
  return campaign::worker_main(STDIN_FILENO, STDOUT_FILENO);
}

int cmd_lint(const Library& lib, const cli::Parsed& p) {
  if (p.has_flag("rules")) {
    TextTable t("SCPG lint rules");
    t.header({"id", "name", "checks that"});
    for (const lint::RuleInfo& r : lint::rules())
      t.row({std::string(r.id), std::string(r.name), std::string(r.what)});
    t.print(std::cout);
    return 0;
  }

  if (p.json()) {
    // One renderer (src/serve/exec.hpp), shared with the serve daemon.
    const serve::ExecResult r = serve::exec_lint(lib, lint_request_of(p));
    std::cout << r.body;
    return r.exit_code;
  }

  Netlist nl = load(lib, p.opt("in"));
  lint::LintOptions opt;
  opt.clock_port = p.opt("clock", "clk");
  opt.sim.corner = corner_of(p);
  opt.duty_high = p.num("duty", 0.5);
  if (p.has_opt("freq-mhz"))
    opt.freq = Frequency{p.num("freq-mhz", 1.0) * 1e6};
  std::string list = p.opt("only");
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string id = list.substr(0, comma);
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
    if (id.empty()) continue;
    bool known = false;
    for (const lint::RuleInfo& r : lint::rules()) known |= r.id == id;
    if (!known)
      throw cli::UsageError("unknown lint rule '" + id +
                            "' (see scpgc lint --rules)");
    opt.only.push_back(id);
  }

  const lint::LintReport rep = lint::run_lint(nl, opt);
  if (p.json()) {
    std::string payload = rep.to_json();
    while (!payload.empty() && payload.back() == '\n') payload.pop_back();
    json::write_envelope(std::cout, "scpgc-lint", payload);
  } else {
    std::cout << rep.format_text();
  }
  return rep.clean() ? 0 : 1; // kExitOk / kExitHazards (findings)
}

int cmd_fuzz(const Library& lib, const cli::Parsed& p) {
  fuzz::FuzzOptions opt;
  opt.seed = std::uint64_t(p.num("seed", 1));
  opt.runs = int(p.num("runs", p.has_opt("time-budget") ? 0 : 200));
  opt.time_budget_s = p.num("time-budget", 0.0);
  opt.jobs = int(p.num("jobs", 0));
  opt.minimize = !p.has_flag("no-minimize");
  opt.corpus_dir = p.opt("corpus");
  opt.coverage_out = p.opt("coverage-out");
  {
    const std::string name = p.opt("backend", "auto");
    const auto b = sim::backend_from_name(name);
    if (!b)
      throw cli::UsageError(
          "--backend must be event, compiled or auto; got '" + name + "'");
    opt.backend = *b;
  }
  if (p.has_opt("inject")) {
    const auto bug = fuzz::bug_from_name(p.opt("inject"));
    if (!bug || *bug == fuzz::BugKind::None)
      throw cli::UsageError("--inject: unknown bug class '" +
                            p.opt("inject") +
                            "' (no_isolation, drop_clamp, stuck_isolation, "
                            "header_polarity, slow_rail, fast_clock, "
                            "output_invert)");
    opt.inject = *bug;
  }
  if (opt.runs <= 0 && opt.time_budget_s <= 0)
    throw cli::UsageError("fuzz needs --runs N and/or --time-budget SECS");

  const bool json = p.json();
  const fuzz::FuzzStats st = fuzz::run_fuzz(
      lib, opt, [&](const std::string& line) {
        if (!json) std::cerr << line << '\n';
      });

  const bool inject_escaped = opt.inject && !st.injected_repro;
  if (json) {
    json::Writer w(std::cout);
    json::write_envelope_open(w, "scpgc-fuzz");
    w.key("payload").begin_object(json::Writer::Style::Compact);
    w.key("backend").value(std::string(sim::backend_name(opt.backend)));
    w.key("cases").value(st.cases);
    w.key("clean_cases").value(st.clean_cases);
    w.key("bug_cases").value(st.bug_cases);
    w.key("detected").value(st.detected);
    w.key("mismatches").value(st.mismatches);
    w.key("minimized").value(st.minimized);
    w.key("coverage_distinct").value(std::uint64_t(st.coverage.distinct()));
    w.key("injected_detected");
    if (opt.inject) w.value(st.injected_repro.has_value());
    else w.null();
    w.key("mismatch_details").begin_array();
    for (const std::string& d : st.mismatch_details) w.value(d);
    w.end_array();
    w.key("saved").begin_array();
    for (const std::string& s : st.saved) w.value(s);
    w.end_array();
    w.end_object();
    w.end_object();
    std::cout << '\n';
  } else {
    std::cout << "fuzz: " << st.cases << " cases (" << st.clean_cases
              << " clean, " << st.bug_cases << " with injected bugs), "
              << st.detected << " detected, " << st.mismatches
              << " mismatch(es), coverage " << st.coverage.distinct()
              << " distinct keys\n";
    for (const std::string& d : st.mismatch_details)
      std::cout << "  MISMATCH " << d << '\n';
    for (const std::string& s : st.saved)
      std::cout << "  wrote " << s << ".fuzz\n";
    if (opt.inject) {
      if (st.injected_repro)
        std::cout << "  injected " << fuzz::bug_name(*opt.inject)
                  << ": detected and minimized (blocks "
                  << st.injected_repro->fc.design.blocks.size() << ", width "
                  << st.injected_repro->fc.design.width << ", cycles "
                  << st.injected_repro->fc.cycles << ")\n";
      else
        std::cout << "  injected " << fuzz::bug_name(*opt.inject)
                  << ": ESCAPED (never detected)\n";
    }
  }
  return (st.mismatches > 0 || inject_escaped) ? 1 : 0;
}

// Self-pipe for signal-driven daemon shutdown: the handler may only
// write(2); the main thread polls the read end next to the server's own
// shutdown fd (a client "shutdown" op) and drains on either.
int g_sig_pipe[2] = {-1, -1};

void serve_signal(int /*sig*/) {
  const char b = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_sig_pipe[1], &b, 1);
}

int cmd_serve(const Library& lib, const cli::Parsed& p) {
  serve::ServerOptions opt;
  opt.socket_path = p.opt("socket");
  if (opt.socket_path.empty())
    throw cli::UsageError("serve requires --socket PATH");
  opt.jobs = int(p.num("jobs", 0));
  opt.cache_path = p.opt("cache");
  opt.cache_capacity = std::size_t(
      p.num("cache-capacity", double(engine::ResultCache::kDefaultCapacity)));
  opt.batch_window_ms = int(p.num("batch-window-ms", 4));

  serve::Server server(lib, opt);
  // A live daemon on the socket throws SocketBusyError -> exit 8.
  const serve::DiskCache::LoadReport rep = server.start();
  std::cerr << "scpgc serve: listening on " << opt.socket_path;
  if (!opt.cache_path.empty()) {
    std::cerr << " (cache " << opt.cache_path << ": " << rep.loaded
              << " entries loaded";
    if (rep.rejected > 0) std::cerr << "; rejected: " << rep.reject_reason;
    if (rep.rebuilt) std::cerr << "; rebuilt";
    std::cerr << ")";
  }
  std::cerr << "\n";

  if (::pipe(g_sig_pipe) != 0)
    throw Error("cannot create signal pipe: " + std::string(strerror(errno)));
  std::signal(SIGTERM, serve_signal);
  std::signal(SIGINT, serve_signal);
  pollfd fds[2] = {{g_sig_pipe[0], POLLIN, 0},
                   {server.shutdown_fd(), POLLIN, 0}};
  for (;;) {
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0 && errno == EINTR) continue; // the handler also wrote
    break;
  }
  std::cerr << "scpgc serve: draining\n";
  server.stop(); // in-flight and queued requests complete first
  std::cerr << "scpgc serve: stopped\n";
  return 0; // kExitOk
}

int cmd_client(const Library& /*lib*/, const cli::Parsed& p) {
  const std::string socket = p.opt("socket");
  if (socket.empty()) throw cli::UsageError("client requires --socket PATH");
  const std::string op = p.opt("op");
  serve::Request rq;
  if (op == "ping") {
    rq.op = serve::Op::Ping;
  } else if (op == "stats") {
    rq.op = serve::Op::Stats;
  } else if (op == "shutdown") {
    rq.op = serve::Op::Shutdown;
  } else if (op == "sweep") {
    rq.op = serve::Op::Sweep;
    rq.sweep.spec = sweep_request_spec(p);
    rq.sweep.jobs = int(p.num("jobs", 1));
  } else if (op == "lint") {
    rq.op = serve::Op::Lint;
    rq.lint = lint_request_of(p);
  } else if (op == "verify") {
    rq.op = serve::Op::Verify;
    rq.verify = verify_request_of(p);
  } else {
    throw cli::UsageError(
        "--op must be ping, stats, shutdown, sweep, lint or verify; got '" +
        op + "'");
  }
  const serve::Response resp = serve::call_once(socket, rq);
  std::cout << resp.body; // raw CLI-equivalent stdout bytes
  if (!resp.status.ok)
    std::cerr << "scpgc client: " << resp.status.kind << " failed (exit "
              << resp.status.exit_code << "): " << resp.status.error << "\n";
  return resp.status.exit_code;
}

// Exit codes (keep in sync with the header comment): scripts and the CI
// harness branch on these.
constexpr int kExitOk = 0;
constexpr int kExitHazards = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitInfeasible = 4;
constexpr int kExitError = 5;
constexpr int kExitInternal = 6;
constexpr int kExitPoisoned = 7; // campaign: ranges exhausted retries
constexpr int kExitBusy = 8;     // serve: socket owned by a live daemon

struct Command {
  const char* name;
  cli::Spec (*spec)();
  int (*run)(const Library&, const cli::Parsed&);
};

constexpr Command kCommands[] = {
    {"liberty", liberty_spec, cmd_liberty},
    {"report", report_spec, cmd_report},
    {"transform", transform_spec, cmd_transform},
    {"sweep", sweep_spec, cmd_sweep},
    {"campaign", campaign_spec, cmd_campaign},
    {"worker", worker_spec, cmd_worker},
    {"verify", verify_spec, cmd_verify},
    {"lint", lint_spec, cmd_lint},
    {"fuzz", fuzz_spec, cmd_fuzz},
    {"serve", serve_spec, cmd_serve},
    {"client", client_spec, cmd_client},
};

/// Writes the --metrics / --trace files requested on the command line.
/// Runs after the command body so the dumps see everything it recorded;
/// hazard/mismatch exits (code 1) still produce them.
void dump_obs(const cli::Parsed& p, const std::string& command) {
  const std::string tool = "scpgc-" + command;
  if (const std::string f = p.metrics_file(); !f.empty()) {
    std::ofstream os(f);
    if (!os) throw Error("cannot write metrics to " + f);
    obs::write_metrics_json(os, tool, obs::Registry::global().snapshot());
  }
  if (const std::string f = p.trace_file(); !f.empty()) {
    std::ofstream os(f);
    if (!os) throw Error("cannot write trace to " + f);
    obs::write_trace_json(os, tool);
  }
}

} // namespace

int main(int argc, char** argv) {
  const std::string command = argc >= 2 ? argv[1] : "";
  constexpr const char* kGlobalUsage =
      "usage: scpgc "
      "{liberty|report|transform|sweep|campaign|worker|verify|lint|fuzz|"
      "serve|client} [options]\n"
      "       scpgc <command> --help for per-command options\n";
  if (command == "--help" || command == "-h" || command == "help") {
    std::cout << kGlobalUsage;
    return kExitOk;
  }
  const Command* cmd = nullptr;
  for (const Command& c : kCommands)
    if (command == c.name) cmd = &c;
  if (cmd == nullptr) {
    std::cerr << kGlobalUsage;
    return kExitUsage;
  }
  try {
    const cli::Spec spec = cmd->spec();
    const cli::Parsed p = spec.parse(argc, argv);
    if (p.help()) {
      std::cout << spec.usage();
      return kExitOk;
    }
    obs::configure(!p.metrics_file().empty(), !p.trace_file().empty());
    const Library lib = Library::scpg90();
    // Every Experiment::run() in this process lints its designs first
    // (the engine's injected design gate) unless the user opts out.
    if (!p.has_flag("no-lint")) lint::install_engine_gate();
    const int rc = cmd->run(lib, p);
    dump_obs(p, command);
    return rc;
  } catch (const cli::UsageError& e) {
    std::cerr << "scpgc: usage: " << e.what() << '\n';
    return kExitUsage;
  } catch (const ParseError& e) {
    std::cerr << "scpgc: parse error: " << e.what() << '\n';
    return kExitParse;
  } catch (const InfeasibleError& e) {
    std::cerr << "scpgc: infeasible: " << e.what() << '\n';
    return kExitInfeasible;
  } catch (const SocketBusyError& e) {
    std::cerr << "scpgc: busy: " << e.what() << '\n';
    return kExitBusy;
  } catch (const Error& e) {
    std::cerr << "scpgc: error: " << e.what() << '\n';
    return kExitError;
  } catch (const std::exception& e) {
    std::cerr << "scpgc: internal error: " << e.what() << '\n';
    return kExitInternal;
  }
}
