// Shared argument parser for the scpgc subcommands.
//
// Each subcommand declares its options once in a cli::Spec; parsing,
// usage-text generation and the global flags every subcommand shares
// (--json, --trace FILE, --metrics FILE, --help, and opt-in --jobs /
// --seed) live here instead of in per-command hand-rolled loops.  The
// contract the old loops never quite agreed on is now uniform:
//
//  * an unknown option is a UsageError (exit code 2), for every command;
//  * a value option without its value is a UsageError;
//  * --help renders the auto-generated usage text.
//
// The parser is deliberately tiny: long options only ("--name [VALUE]"),
// no combining, no "=" syntax — matching how every existing script and
// test invokes scpgc.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace scpg::cli {

/// Malformed command line; scpgc maps this to exit code 2.
class UsageError : public Error {
public:
  using Error::Error;
};

struct OptSpec {
  std::string name;       ///< without the leading "--"
  std::string value_name; ///< empty for boolean flags
  std::string help;
};

class Parsed;

class Spec {
public:
  /// `command` is the subcommand name ("lint"); `summary` the one-line
  /// description shown at the top of the usage text.  Every spec carries
  /// the global options: --json, --trace FILE, --metrics FILE, --help.
  Spec(std::string command, std::string summary);

  /// Declares "--name VALUE".
  Spec& opt(std::string name, std::string value_name, std::string help);
  /// Declares a boolean "--name".
  Spec& flag(std::string name, std::string help);

  /// Adds the conventional --jobs N option (commands that fan out).
  Spec& with_parallelism();
  /// Adds the conventional --seed S option (commands that randomise).
  Spec& with_seed();

  [[nodiscard]] const std::string& command() const { return command_; }
  [[nodiscard]] std::string usage() const;

  /// Parses argv[start..), throwing UsageError (with the usage text
  /// appended) on an unknown option or a missing value.
  [[nodiscard]] Parsed parse(int argc, char** argv, int start = 2) const;

private:
  [[nodiscard]] const OptSpec* find(std::string_view name) const;

  std::string command_;
  std::string summary_;
  std::vector<OptSpec> options_;
};

class Parsed {
public:
  [[nodiscard]] bool has_flag(const std::string& f) const;
  [[nodiscard]] bool has_opt(const std::string& k) const {
    return opts_.count(k) > 0;
  }
  [[nodiscard]] std::string opt(const std::string& k,
                                const std::string& dflt = {}) const;
  /// Numeric option; a non-numeric value is a UsageError.
  [[nodiscard]] double num(const std::string& k, double dflt) const;

  // Global options, present on every subcommand.
  [[nodiscard]] bool help() const { return has_flag("help"); }
  [[nodiscard]] bool json() const { return has_flag("json"); }
  [[nodiscard]] std::string trace_file() const { return opt("trace"); }
  [[nodiscard]] std::string metrics_file() const { return opt("metrics"); }

private:
  friend class Spec;
  std::map<std::string, std::string> opts_;
  std::vector<std::string> flags_;
};

} // namespace scpg::cli
