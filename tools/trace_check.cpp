// trace_check — structural validator for scpgc observability dumps.
//
//   trace_check trace.json                 validate a --trace dump
//   trace_check --metrics metrics.json     validate a --metrics dump
//   trace_check --expect-tool NAME FILE    additionally pin the envelope
//                                          "tool" field
//   trace_check --min-threads N FILE       require span events on at
//                                          least N distinct threads
//
// A --trace file must be one JSON object carrying the shared envelope
// keys (schema_version, tool) plus the Chrome trace_event "Object
// Format": a "traceEvents" array of "M" thread_name metadata records and
// "X" complete events (name, cat, ph, ts, dur, pid, tid), every "X"
// event's tid named by some "M" record.  A --metrics file must be a full
// envelope whose payload splits into "values" and "timings" objects.
//
// Exit codes: 0 valid, 1 structurally invalid, 2 usage, 3 JSON parse
// error.  Used by tools/check.sh --obs and tests/obs_cli_test.sh.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

using scpg::json::Value;

namespace {

int fail(const std::string& why) {
  std::cerr << "trace_check: " << why << '\n';
  return 1;
}

bool is_int(const Value& v) { return v.is(Value::Type::Number); }

/// Envelope keys shared by every dump (trace files keep "traceEvents" at
/// the top level beside them, so this does not require "payload").
int check_envelope(const Value& doc, const std::string& expect_tool) {
  if (!doc.is(Value::Type::Object)) return fail("top level is not an object");
  const Value* ver = doc.get("schema_version");
  if (ver == nullptr || !is_int(*ver))
    return fail("missing numeric schema_version");
  if (int(ver->num) != scpg::json::kSchemaVersion)
    return fail("schema_version " + std::to_string(int(ver->num)) +
                " != " + std::to_string(scpg::json::kSchemaVersion));
  const Value* tool = doc.get("tool");
  if (tool == nullptr || !tool->is(Value::Type::String))
    return fail("missing string tool");
  if (!expect_tool.empty() && tool->str != expect_tool)
    return fail("tool '" + tool->str + "' != expected '" + expect_tool +
                "'");
  return 0;
}

int check_metrics(const Value& doc) {
  const Value* payload = doc.get("payload");
  if (payload == nullptr || !payload->is(Value::Type::Object))
    return fail("metrics: missing payload object");
  for (const char* part : {"values", "timings"}) {
    const Value* sec = payload->get(part);
    if (sec == nullptr || !sec->is(Value::Type::Object))
      return fail(std::string("metrics: payload.") + part +
                  " is not an object");
    for (const auto& [name, m] : sec->obj) {
      if (!m.is(Value::Type::Object))
        return fail("metrics: " + name + " is not an object");
      const Value* type = m.get("type");
      if (type == nullptr || !type->is(Value::Type::String))
        return fail("metrics: " + name + " has no type");
    }
  }
  return 0;
}

int check_trace(const Value& doc, int min_threads) {
  const Value* events = doc.get("traceEvents");
  if (events == nullptr || !events->is(Value::Type::Array))
    return fail("trace: missing traceEvents array");

  std::set<int> named_tids;
  std::set<int> span_tids;
  std::size_t spans = 0;
  for (const Value& e : events->arr) {
    if (!e.is(Value::Type::Object)) return fail("trace: event not an object");
    const Value* ph = e.get("ph");
    if (ph == nullptr || !ph->is(Value::Type::String))
      return fail("trace: event without ph");
    const Value* tid = e.get("tid");
    const Value* pid = e.get("pid");
    if (tid == nullptr || !is_int(*tid) || pid == nullptr || !is_int(*pid))
      return fail("trace: event without numeric pid/tid");
    if (ph->str == "M") {
      const Value* name = e.get("name");
      if (name == nullptr || name->str != "thread_name")
        return fail("trace: M event is not thread_name metadata");
      const Value* args = e.get("args");
      if (args == nullptr || args->get("name") == nullptr)
        return fail("trace: thread_name metadata without args.name");
      named_tids.insert(int(tid->num));
    } else if (ph->str == "X") {
      for (const char* k : {"name", "cat"}) {
        const Value* v = e.get(k);
        if (v == nullptr || !v->is(Value::Type::String))
          return fail(std::string("trace: X event without string ") + k);
      }
      for (const char* k : {"ts", "dur"}) {
        const Value* v = e.get(k);
        if (v == nullptr || !is_int(*v))
          return fail(std::string("trace: X event without numeric ") + k);
      }
      ++spans;
      span_tids.insert(int(tid->num));
    } else {
      return fail("trace: unexpected ph '" + ph->str + "'");
    }
  }
  for (const int tid : span_tids)
    if (named_tids.count(tid) == 0)
      return fail("trace: tid " + std::to_string(tid) +
                  " has spans but no thread_name metadata");
  if (int(span_tids.size()) < min_threads)
    return fail("trace: spans on " + std::to_string(span_tids.size()) +
                " thread(s), expected >= " + std::to_string(min_threads));
  std::cout << "trace_check: " << spans << " span(s) on "
            << span_tids.size() << " thread(s), " << named_tids.size()
            << " named track(s)\n";
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  bool metrics_mode = false;
  std::string expect_tool;
  int min_threads = 1;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--metrics") {
      metrics_mode = true;
    } else if (a == "--expect-tool" && i + 1 < argc) {
      expect_tool = argv[++i];
    } else if (a == "--min-threads" && i + 1 < argc) {
      min_threads = std::stoi(argv[++i]);
    } else if (a.rfind("--", 0) == 0 || !file.empty()) {
      std::cerr << "usage: trace_check [--metrics] [--expect-tool NAME] "
                   "[--min-threads N] FILE\n";
      return 2;
    } else {
      file = a;
    }
  }
  if (file.empty()) {
    std::cerr << "usage: trace_check [--metrics] [--expect-tool NAME] "
                 "[--min-threads N] FILE\n";
    return 2;
  }

  std::ifstream in(file);
  if (!in) {
    std::cerr << "trace_check: cannot open " << file << '\n';
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  try {
    const Value doc = scpg::json::parse(buf.str());
    if (const int rc = check_envelope(doc, expect_tool); rc != 0) return rc;
    const int rc = metrics_mode ? check_metrics(doc)
                                : check_trace(doc, min_threads);
    if (rc == 0 && metrics_mode)
      std::cout << "trace_check: metrics envelope valid\n";
    return rc;
  } catch (const scpg::ParseError& e) {
    std::cerr << "trace_check: " << e.what() << '\n';
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "trace_check: " << e.what() << '\n';
    return 1;
  }
}
