// gen_examples — regenerates the committed netlists under
// examples/netlists/.
//
//   gen_examples [OUTDIR]      (default: examples/netlists)
//
// The clean designs are the paper's multiplier in original and SCPG form;
// the broken/ variants are deliberately mis-transformed designs that the
// static linter must reject — tools/check.sh lints both sets and expects
// exit 0 on clean/ and exit 1 on broken/.  Regenerate (and re-commit) the
// files whenever the generators or the transform change shape.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "gen/mult16.hpp"
#include "netlist/verilog.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"

using namespace scpg;
using scpg::gen::make_multiplier;

namespace {

void write(const std::filesystem::path& path, const Netlist& nl) {
  std::ofstream os(path);
  SCPG_REQUIRE(bool(os), "cannot open " + path.string());
  write_verilog(nl, os);
  std::cout << "wrote " << path.string() << "\n";
}

} // namespace

int main(int argc, char** argv) {
  try {
    const std::filesystem::path dir =
        argc > 1 ? argv[1] : "examples/netlists";
    std::filesystem::create_directories(dir / "broken");
    const Library lib = Library::scpg90();

    // Clean: original and SCPG-transformed multipliers.
    write(dir / "mult8.v", make_multiplier(lib, 8));
    {
      Netlist nl = make_multiplier(lib, 8);
      apply_scpg(nl, {});
      write(dir / "mult8_scpg.v", nl);
    }
    {
      Netlist nl = make_multiplier(lib, 4);
      apply_scpg(nl, {});
      write(dir / "mult4_scpg.v", nl);
    }

    // Broken: the no-isolation ablation leaves every Gated->AlwaysOn
    // crossing unclamped (SCPG001, SCPG004).
    {
      Netlist nl = make_multiplier(lib, 8);
      ScpgOptions opt;
      opt.insert_isolation = false;
      apply_scpg(nl, opt);
      write(dir / "broken" / "mult8_noiso.v", nl);
    }

    // Broken: header enable inverted (NOT clk) — the headers would switch
    // off during the evaluate phase (SCPG003).
    {
      Netlist nl = make_multiplier(lib, 8);
      const ScpgInfo info = apply_scpg(nl, {});
      const NetId nclk = nl.add_cell_auto(lib.pick(CellKind::Inv),
                                          {nl.port_net("clk")});
      for (const CellId h : info.headers) nl.rewire_input(h, 0, nclk);
      write(dir / "broken" / "mult8_badpol.v", nl);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "gen_examples: " << e.what() << "\n";
    return 1;
  }
}
