#include "cli.hpp"

#include <algorithm>
#include <sstream>

namespace scpg::cli {

Spec::Spec(std::string command, std::string summary)
    : command_(std::move(command)), summary_(std::move(summary)) {
  opt("trace", "FILE", "write a Chrome trace_event JSON profile to FILE");
  opt("metrics", "FILE", "write collected metrics (JSON envelope) to FILE");
  flag("json", "machine-readable JSON envelope on stdout");
  flag("help", "show this usage text");
}

Spec& Spec::opt(std::string name, std::string value_name, std::string help) {
  options_.push_back(
      {std::move(name), std::move(value_name), std::move(help)});
  return *this;
}

Spec& Spec::flag(std::string name, std::string help) {
  options_.push_back({std::move(name), "", std::move(help)});
  return *this;
}

Spec& Spec::with_parallelism() {
  return opt("jobs", "N",
             "worker threads (default 1; results identical at any value)");
}

Spec& Spec::with_seed() {
  return opt("seed", "S", "RNG seed (default 1)");
}

const OptSpec* Spec::find(std::string_view name) const {
  for (const OptSpec& o : options_)
    if (o.name == name) return &o;
  return nullptr;
}

std::string Spec::usage() const {
  std::ostringstream os;
  os << "usage: scpgc " << command_;
  for (const OptSpec& o : options_) {
    os << " [--" << o.name;
    if (!o.value_name.empty()) os << ' ' << o.value_name;
    os << ']';
  }
  os << "\n  " << summary_ << "\n";
  std::size_t width = 0;
  for (const OptSpec& o : options_)
    width = std::max(width, o.name.size() + o.value_name.size());
  for (const OptSpec& o : options_) {
    std::string lhs = "--" + o.name;
    if (!o.value_name.empty()) lhs += ' ' + o.value_name;
    os << "  " << lhs << std::string(width + 4 - lhs.size(), ' ') << o.help
       << "\n";
  }
  return os.str();
}

Parsed Spec::parse(int argc, char** argv, int start) const {
  Parsed p;
  for (int i = start; i < argc; ++i) {
    const std::string_view s = argv[i];
    if (s.rfind("--", 0) != 0)
      throw UsageError(command_ + ": unexpected argument '" +
                       std::string(s) + "'\n" + usage());
    const std::string key(s.substr(2));
    const OptSpec* o = find(key);
    if (o == nullptr)
      throw UsageError(command_ + ": unknown option --" + key + "\n" +
                       usage());
    if (o->value_name.empty()) {
      p.flags_.push_back(key);
    } else {
      if (i + 1 >= argc)
        throw UsageError(command_ + ": option --" + key + " requires a " +
                         o->value_name + " value\n" + usage());
      p.opts_[key] = argv[++i];
    }
  }
  return p;
}

bool Parsed::has_flag(const std::string& f) const {
  return std::find(flags_.begin(), flags_.end(), f) != flags_.end();
}

std::string Parsed::opt(const std::string& k, const std::string& dflt) const {
  const auto it = opts_.find(k);
  return it == opts_.end() ? dflt : it->second;
}

double Parsed::num(const std::string& k, double dflt) const {
  const auto it = opts_.find(k);
  if (it == opts_.end()) return dflt;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size())
      throw UsageError("--" + k + ": expected a number, got '" + it->second +
                       "'");
    return v;
  } catch (const std::logic_error&) {
    throw UsageError("--" + k + ": expected a number, got '" + it->second +
                     "'");
  }
}

} // namespace scpg::cli
