// crashmat — fault injector for campaign crash recovery.
//
//   crashmat --scpgc PATH --in NETLIST [--scenario NAME] [--dir DIR]
//            [--workers N] [--points N] [--cycles N] [--seed S]
//
// Each scenario launches a real `scpgc campaign` subprocess, injures it
// mid-run, and asserts the recovery contract: the final result digest —
// a hash over every row's measurement *bit patterns* — equals the
// digest of an uninterrupted in-process run (`--workers 0`), i.e. the
// recovered campaign is bit-identical to one that never failed.
//
// scenarios:
//   kill-worker               SIGKILL one worker; coordinator requeues,
//                             campaign exits 0 with matching digest
//   stop-worker               SIGSTOP one worker; heartbeat misses get
//                             it killed and its range requeued
//   kill-coordinator          SIGKILL the coordinator mid-run, then
//                             --resume: skips journaled rows, matches
//   truncate-journal          kill coordinator, shear the journal tail
//                             mid-line (torn write), resume matches
//   bitflip-journal           flip one bit in a completed journal;
//                             --resume must exit 3 (parse error), not
//                             crash or silently resume
//   poisoned                  every worker crashes before one row: exit
//                             7, healthy rows durable; resume completes
//                             and matches
//   all                       run every scenario (default)
//
// A scenario whose strike window closes before the blow lands (campaign
// finished too fast) is retried, then loudly SKIPped — never silently
// passed.  exit: 0 all scenarios pass/skip, 1 any fail, 2 usage.
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/frame.hpp"
#include "campaign/journal.hpp"
#include "util/json.hpp"
#include "util/subprocess.hpp"

using namespace scpg;
namespace fs = std::filesystem;

namespace {

struct Config {
  std::string scpgc;
  std::string netlist;
  std::string dir;
  int workers{2};
  int points{6};
  int cycles{16};
  std::uint64_t seed{7};
};

struct RunResult {
  int code{-1};
  std::string out;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Blocking run with stdout captured to a file (survives our own reads
/// across a SIGKILL of the child).
RunResult run_to_file(const std::vector<std::string>& argv,
                      const std::string& out_path) {
  SpawnOptions so;
  so.argv = argv;
  so.stdout_path = out_path;
  so.null_stdin = true;
  const Subprocess p = spawn_child(so);
  RunResult r;
  r.code = wait_child(p.pid, /*block=*/true).value_or(-1);
  r.out = slurp(out_path);
  return r;
}

std::vector<std::string> campaign_argv(const Config& c, int workers,
                                       const std::string& journal) {
  std::vector<std::string> a{c.scpgc,
                             "campaign",
                             "--in",
                             c.netlist,
                             "--points",
                             std::to_string(c.points),
                             "--cycles",
                             std::to_string(c.cycles),
                             "--seed",
                             std::to_string(c.seed),
                             "--workers",
                             std::to_string(workers),
                             "--shard",
                             "2",
                             "--heartbeat-ms",
                             "150",
                             "--json"};
  if (!journal.empty()) {
    a.push_back("--journal");
    a.push_back(journal);
  }
  return a;
}

std::vector<std::string> resume_argv(const Config& c, int workers,
                                     const std::string& journal) {
  return {c.scpgc,        "campaign",
          "--resume",      journal,
          "--workers",     std::to_string(workers),
          "--shard",       "2",
          "--heartbeat-ms", "150",
          "--json"};
}

/// Pulls payload.<key> (string) out of a scpgc --json envelope.
std::string payload_str(const std::string& envelope, const char* key) {
  const json::Value doc = json::parse(envelope);
  const json::Value* payload = doc.get("payload");
  if (payload == nullptr) return "";
  const json::Value* v = payload->get(key);
  return (v != nullptr && v->is(json::Value::Type::String)) ? v->str : "";
}

double payload_num(const std::string& envelope, const char* key) {
  const json::Value doc = json::parse(envelope);
  const json::Value* payload = doc.get("payload");
  if (payload == nullptr) return -1;
  const json::Value* v = payload->get(key);
  return (v != nullptr && v->is(json::Value::Type::Number)) ? v->num : -1;
}

/// Direct children of `pid` (the campaign's workers).
std::vector<pid_t> children_of(pid_t pid) {
  const std::string p = "/proc/" + std::to_string(pid) + "/task/" +
                        std::to_string(pid) + "/children";
  std::ifstream in(p);
  std::vector<pid_t> kids;
  long k;
  while (in >> k) kids.push_back(pid_t(k));
  return kids;
}

std::size_t journal_lines(const std::string& path) {
  const std::string text = slurp(path);
  return std::size_t(std::count(text.begin(), text.end(), '\n'));
}

bool wait_journal_lines(const std::string& path, std::size_t want, pid_t pid,
                        int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (journal_lines(path) >= want) return true;
    if (wait_child(pid, /*block=*/false).has_value()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

struct Scenario {
  const char* name;
  bool (*run)(const Config&, const std::string& ref_digest, bool& skipped);
};

bool check_digest(const char* name, const RunResult& r,
                  const std::string& ref_digest) {
  if (r.code != 0) {
    std::cerr << "crashmat[" << name << "]: FAIL: exit " << r.code << "\n"
              << r.out;
    return false;
  }
  const std::string d = payload_str(r.out, "result_digest");
  if (d != ref_digest) {
    std::cerr << "crashmat[" << name << "]: FAIL: result digest " << d
              << " != reference " << ref_digest << "\n";
    return false;
  }
  return true;
}

// --- scenarios --------------------------------------------------------

bool strike_worker(const Config& c, const std::string& ref_digest,
                   bool& skipped, int sig, const char* name) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::string journal = c.dir + "/" + name + ".journal";
    const std::string out = c.dir + "/" + name + ".out";
    fs::remove(journal);
    SpawnOptions so;
    so.argv = campaign_argv(c, c.workers, journal);
    so.stdout_path = out;
    so.null_stdin = true;
    const Subprocess p = spawn_child(so);
    // Strike once real progress exists but well before the end.
    const bool in_window = wait_journal_lines(journal, 3, p.pid, 30000);
    std::vector<pid_t> kids = in_window ? children_of(p.pid)
                                        : std::vector<pid_t>{};
    if (!kids.empty()) kill_child(kids.front(), sig);
    const int code = wait_child(p.pid, /*block=*/true).value_or(-1);
    if (!in_window || kids.empty()) continue; // finished too fast; retry
    RunResult r{code, slurp(out)};
    return check_digest(name, r, ref_digest);
  }
  std::cerr << "crashmat[" << name
            << "]: SKIP: campaign finished before the strike window "
               "(3 attempts)\n";
  skipped = true;
  return true;
}

bool sc_kill_worker(const Config& c, const std::string& ref, bool& skipped) {
  return strike_worker(c, ref, skipped, SIGKILL, "kill-worker");
}

bool sc_stop_worker(const Config& c, const std::string& ref, bool& skipped) {
  return strike_worker(c, ref, skipped, SIGSTOP, "stop-worker");
}

/// Kills the coordinator mid-run; returns the journal path, or "" when
/// the campaign finished before the window (after 3 attempts).
std::string killed_coordinator_journal(const Config& c, const char* name) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::string journal = c.dir + "/" + name + ".journal";
    fs::remove(journal);
    SpawnOptions so;
    so.argv = campaign_argv(c, c.workers, journal);
    so.stdout_path = c.dir + "/" + name + ".out";
    so.null_stdin = true;
    const Subprocess p = spawn_child(so);
    const bool in_window = wait_journal_lines(journal, 3, p.pid, 30000);
    if (!in_window) {
      wait_child(p.pid, /*block=*/true);
      continue;
    }
    kill_child(p.pid, SIGKILL);
    wait_child(p.pid, /*block=*/true);
    // Orphaned workers hold no resources we track; they exit on EOF.
    return journal;
  }
  return "";
}

bool resume_and_check(const Config& c, const char* name,
                      const std::string& journal,
                      const std::string& ref_digest, bool expect_skipped) {
  const RunResult r =
      run_to_file(resume_argv(c, c.workers, journal),
                  c.dir + "/" + std::string(name) + ".resume.out");
  if (!check_digest(name, r, ref_digest)) return false;
  if (expect_skipped && payload_num(r.out, "resumed_skipped") < 1) {
    std::cerr << "crashmat[" << name
              << "]: FAIL: resume did not skip any journaled rows\n";
    return false;
  }
  return true;
}

bool sc_kill_coordinator(const Config& c, const std::string& ref,
                         bool& skipped) {
  const std::string journal = killed_coordinator_journal(c, "kill-coord");
  if (journal.empty()) {
    std::cerr << "crashmat[kill-coordinator]: SKIP: campaign finished "
                 "before the strike window (3 attempts)\n";
    skipped = true;
    return true;
  }
  return resume_and_check(c, "kill-coordinator", journal, ref, true);
}

bool sc_truncate_journal(const Config& c, const std::string& ref,
                         bool& skipped) {
  const std::string journal = killed_coordinator_journal(c, "truncate");
  if (journal.empty()) {
    std::cerr << "crashmat[truncate-journal]: SKIP: campaign finished "
                 "before the strike window (3 attempts)\n";
    skipped = true;
    return true;
  }
  // Shear the tail mid-line: exactly the artifact of a torn write.
  const auto size = fs::file_size(journal);
  fs::resize_file(journal, size - std::min<std::uintmax_t>(size / 2, 37));
  return resume_and_check(c, "truncate-journal", journal, ref, false);
}

bool sc_bitflip_journal(const Config& c, const std::string& ref,
                        bool& skipped) {
  (void)skipped;
  const std::string journal = c.dir + "/bitflip.journal";
  fs::remove(journal);
  RunResult full = run_to_file(campaign_argv(c, c.workers, journal),
                               c.dir + "/bitflip.out");
  if (!check_digest("bitflip-journal(setup)", full, ref)) return false;
  // Flip one bit in the middle of the file (inside a complete line).
  std::string text = slurp(journal);
  text[text.size() / 2] = char(text[text.size() / 2] ^ 0x10);
  std::ofstream(journal, std::ios::binary) << text;
  const RunResult r = run_to_file(resume_argv(c, c.workers, journal),
                                  c.dir + "/bitflip.resume.out");
  if (r.code != 3) {
    std::cerr << "crashmat[bitflip-journal]: FAIL: expected exit 3 "
                 "(parse error), got "
              << r.code << "\n"
              << r.out;
    return false;
  }
  return true;
}

bool sc_poisoned(const Config& c, const std::string& ref, bool& skipped) {
  (void)skipped;
  const std::string journal = c.dir + "/poisoned.journal";
  fs::remove(journal);
  std::vector<std::string> argv = campaign_argv(c, c.workers, journal);
  // Every spawned worker dies right before row 3: that range must
  // poison (exit 7) while every other range completes and journals.
  argv.insert(argv.end(), {"--crash-at-row", "3", "--crash-workers", "99",
                           "--max-attempts", "2"});
  const RunResult r = run_to_file(argv, c.dir + "/poisoned.out");
  if (r.code != 7) {
    std::cerr << "crashmat[poisoned]: FAIL: expected exit 7, got " << r.code
              << "\n"
              << r.out;
    return false;
  }
  const double completed = payload_num(r.out, "completed");
  if (completed < 1) {
    std::cerr << "crashmat[poisoned]: FAIL: no healthy rows completed\n";
    return false;
  }
  // The journaled healthy rows + a crash-free resume == uninterrupted.
  return resume_and_check(c, "poisoned", journal, ref, true);
}

constexpr Scenario kScenarios[] = {
    {"kill-worker", sc_kill_worker},
    {"stop-worker", sc_stop_worker},
    {"kill-coordinator", sc_kill_coordinator},
    {"truncate-journal", sc_truncate_journal},
    {"bitflip-journal", sc_bitflip_journal},
    {"poisoned", sc_poisoned},
};

int usage() {
  std::cerr << "usage: crashmat --scpgc PATH --in NETLIST "
               "[--scenario NAME|all] [--dir DIR] [--workers N] "
               "[--points N] [--cycles N] [--seed S]\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  Config c;
  std::string scenario = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (a == "--scpgc") {
      if (const char* v = next()) c.scpgc = v; else return usage();
    } else if (a == "--in") {
      if (const char* v = next()) c.netlist = v; else return usage();
    } else if (a == "--scenario") {
      if (const char* v = next()) scenario = v; else return usage();
    } else if (a == "--dir") {
      if (const char* v = next()) c.dir = v; else return usage();
    } else if (a == "--workers") {
      if (const char* v = next()) c.workers = std::atoi(v); else return usage();
    } else if (a == "--points") {
      if (const char* v = next()) c.points = std::atoi(v); else return usage();
    } else if (a == "--cycles") {
      if (const char* v = next()) c.cycles = std::atoi(v); else return usage();
    } else if (a == "--seed") {
      if (const char* v = next()) c.seed = std::uint64_t(std::atoll(v));
      else return usage();
    } else {
      return usage();
    }
  }
  if (c.scpgc.empty() || c.netlist.empty()) return usage();
  if (c.dir.empty())
    c.dir = (fs::temp_directory_path() /
             ("crashmat-" + std::to_string(::getpid())))
                .string();
  fs::create_directories(c.dir);
  ignore_sigpipe();

  // Reference: one uninterrupted in-process run.  Its digest is the
  // bit-exactness oracle every scenario must reproduce.
  const RunResult ref =
      run_to_file(campaign_argv(c, /*workers=*/0, ""), c.dir + "/ref.out");
  if (ref.code != 0) {
    std::cerr << "crashmat: reference campaign failed (exit " << ref.code
              << ")\n"
              << ref.out;
    return 1;
  }
  const std::string ref_digest = payload_str(ref.out, "result_digest");
  if (ref_digest.empty()) {
    std::cerr << "crashmat: reference campaign produced no result digest\n";
    return 1;
  }

  int failures = 0, ran = 0, skips = 0;
  for (const Scenario& s : kScenarios) {
    if (scenario != "all" && scenario != s.name) continue;
    ++ran;
    bool skipped = false;
    const bool ok = s.run(c, ref_digest, skipped);
    if (skipped) ++skips;
    if (!ok) {
      ++failures;
    } else if (!skipped) {
      std::cout << "crashmat[" << s.name << "]: PASS\n";
    }
  }
  if (ran == 0) {
    std::cerr << "crashmat: unknown scenario '" << scenario << "'\n";
    return usage();
  }
  std::cout << "crashmat: " << (ran - failures - skips) << " passed, "
            << skips << " skipped, " << failures << " failed\n";
  return failures == 0 ? 0 : 1;
}
