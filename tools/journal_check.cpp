// journal_check — structural validator for campaign write-ahead journals.
//
//   journal_check FILE [--strict] [--expect-complete] [--expect-rows N]
//                      [--quiet]
//
// Re-parses every frame of a campaign journal through the same codec the
// coordinator uses (magic, CRC-32, JSON envelope, header/point payload
// shape, row uniqueness and range) and reports what it holds.  By
// default a torn final line — the one artifact a SIGKILL mid-append
// legitimately leaves — is tolerated and reported; --strict makes it an
// error, which is the right mode for a journal that finished cleanly.
//
// exit codes: 0 structurally valid (and expectations met)
//             1 expectation failed (incomplete / wrong row count)
//             2 usage error
//             3 malformed journal (parse/CRC/shape error)
#include <cstring>
#include <iostream>
#include <string>

#include "campaign/frame.hpp"
#include "campaign/journal.hpp"
#include "util/error.hpp"

using namespace scpg;

namespace {

int usage() {
  std::cerr << "usage: journal_check FILE [--strict] [--expect-complete] "
               "[--expect-rows N] [--quiet]\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  std::string path;
  bool strict = false, expect_complete = false, quiet = false;
  long expect_rows = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--strict") {
      strict = true;
    } else if (a == "--expect-complete") {
      expect_complete = true;
    } else if (a == "--expect-rows") {
      if (++i >= argc) return usage();
      expect_rows = std::atol(argv[i]);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = a;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  try {
    const campaign::JournalContents jc =
        campaign::read_journal(path, /*allow_torn_tail=*/!strict);
    if (!quiet) {
      std::cout << "journal_check: " << path << ": campaign "
                << campaign::hex64(jc.campaign_digest) << ", "
                << jc.entries.size() << "/" << jc.total_rows << " rows"
                << (jc.dropped_torn_tail ? ", torn tail dropped" : "")
                << "\n";
    }
    if (expect_complete && jc.entries.size() != jc.total_rows) {
      std::cerr << "journal_check: FAIL: " << jc.entries.size() << " of "
                << jc.total_rows << " rows present\n";
      return 1;
    }
    if (expect_rows >= 0 && long(jc.entries.size()) != expect_rows) {
      std::cerr << "journal_check: FAIL: expected " << expect_rows
                << " rows, found " << jc.entries.size() << "\n";
      return 1;
    }
    return 0;
  } catch (const ParseError& e) {
    std::cerr << "journal_check: malformed: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "journal_check: error: " << e.what() << "\n";
    return 3;
  }
}
