#!/usr/bin/env bash
# Tier-1 gate: build + ctest in the normal configuration, then again with
# AddressSanitizer + UBSan (SCPG_SANITIZE=ON) in a separate build tree,
# then the concurrency-sensitive engine suites under ThreadSanitizer
# (SCPG_SANITIZE=thread) in a third tree.  The full run also lints the
# committed example netlists with `scpgc lint` and, when clang-tidy is
# installed, runs the .clang-tidy checks over the lint subsystem.
#
#   tools/check.sh            # all passes
#   tools/check.sh --fast     # normal pass only
#   tools/check.sh --sanitize # ASan/UBSan pass only
#   tools/check.sh --tsan     # ThreadSanitizer engine pass only
#   tools/check.sh --lint     # build + scpgc lint over examples/netlists
#   tools/check.sh --tidy     # clang-tidy pass (skips if not installed)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode=${1:-all}

run_pass() { # name build-dir ctest-regex extra-cmake-args...
  local name=$1 dir=$2 filter=$3
  shift 3
  echo "=== ${name}: configure + build (${dir}) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== ${name}: ctest ==="
  if [ -n "$filter" ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
}

# Static-analysis pass: every committed clean netlist must lint clean
# (exit 0, "errors": 0 in the JSON) and every broken/ netlist must be
# rejected (exit 1).  This exercises the shipped scpgc binary end to end:
# parse -> lint -> report -> exit code.
run_lint_pass() {
  echo "=== lint: configure + build (build) ==="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target scpgc
  local scpgc=build/tools/scpgc
  for v in examples/netlists/*.v; do
    echo "=== lint: ${v} (expect clean) ==="
    local out
    out=$("$scpgc" lint --in "$v" --freq-mhz 1 --json) ||
      { echo "lint FAILED on clean netlist ${v}:"; echo "$out"; exit 1; }
    grep -q '"errors": 0' <<<"$out" ||
      { echo "lint reported errors on clean netlist ${v}"; exit 1; }
  done
  for v in examples/netlists/broken/*.v; do
    echo "=== lint: ${v} (expect findings) ==="
    local rc=0
    "$scpgc" lint --in "$v" --json >/dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
      echo "lint exited ${rc} on broken netlist ${v} (expected 1)"; exit 1
    fi
  done
  echo "=== lint: all example netlists behaved as expected ==="
}

# clang-tidy pass: gated on availability — the CI container may not ship
# clang-tidy; the pass then reports and succeeds so `all` stays green.
run_tidy_pass() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "=== tidy: clang-tidy not installed, skipping ==="
    return 0
  fi
  echo "=== tidy: configure (compile_commands.json) ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "=== tidy: clang-tidy over src/lint src/netlist/diag.cpp ==="
  clang-tidy -p build --quiet \
    src/lint/*.cpp src/netlist/diag.cpp tools/gen_examples.cpp
  echo "=== tidy: clean ==="
}

# TSan pass: only the Engine* suites (test_engine.cpp) — the parallel
# sweep engine, thread pool and result cache are the code with real
# cross-thread interactions; the rest of the suite is single-threaded.
case "$mode" in
  --fast)     run_pass "normal" build "" ;;
  --sanitize) run_pass "sanitized" build-asan "" -DSCPG_SANITIZE=ON ;;
  --tsan)     run_pass "tsan-engine" build-tsan "^Engine" \
                       -DSCPG_SANITIZE=thread ;;
  --lint)     run_lint_pass ;;
  --tidy)     run_tidy_pass ;;
  all)
    run_pass "normal" build ""
    run_pass "sanitized" build-asan "" -DSCPG_SANITIZE=ON
    run_pass "tsan-engine" build-tsan "^Engine" -DSCPG_SANITIZE=thread
    run_lint_pass
    run_tidy_pass
    ;;
  *) echo "usage: $0 [--fast|--sanitize|--tsan|--lint|--tidy]" >&2
     exit 2 ;;
esac

echo "=== check.sh: all requested passes green ==="
