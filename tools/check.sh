#!/usr/bin/env bash
# Tier-1 gate: build + ctest in the normal configuration, then again with
# AddressSanitizer + UBSan (SCPG_SANITIZE=ON) in a separate build tree,
# then the concurrency-sensitive engine suites under ThreadSanitizer
# (SCPG_SANITIZE=thread) in a third tree.
#
#   tools/check.sh            # all three passes
#   tools/check.sh --fast     # normal pass only
#   tools/check.sh --sanitize # ASan/UBSan pass only
#   tools/check.sh --tsan     # ThreadSanitizer engine pass only
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode=${1:-all}

run_pass() { # name build-dir ctest-regex extra-cmake-args...
  local name=$1 dir=$2 filter=$3
  shift 3
  echo "=== ${name}: configure + build (${dir}) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== ${name}: ctest ==="
  if [ -n "$filter" ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
}

# TSan pass: only the Engine* suites (test_engine.cpp) — the parallel
# sweep engine, thread pool and result cache are the code with real
# cross-thread interactions; the rest of the suite is single-threaded.
case "$mode" in
  --fast)     run_pass "normal" build "" ;;
  --sanitize) run_pass "sanitized" build-asan "" -DSCPG_SANITIZE=ON ;;
  --tsan)     run_pass "tsan-engine" build-tsan "^Engine" \
                       -DSCPG_SANITIZE=thread ;;
  all)
    run_pass "normal" build ""
    run_pass "sanitized" build-asan "" -DSCPG_SANITIZE=ON
    run_pass "tsan-engine" build-tsan "^Engine" -DSCPG_SANITIZE=thread
    ;;
  *) echo "usage: $0 [--fast|--sanitize|--tsan]" >&2; exit 2 ;;
esac

echo "=== check.sh: all requested passes green ==="
