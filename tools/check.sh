#!/usr/bin/env bash
# Tier-1 gate: build + ctest in the normal configuration, then again with
# AddressSanitizer + UBSan (SCPG_SANITIZE=ON) in a separate build tree.
#
#   tools/check.sh            # both passes
#   tools/check.sh --fast     # normal pass only
#   tools/check.sh --sanitize # sanitized pass only
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode=${1:-all}

run_pass() { # name build-dir extra-cmake-args...
  local name=$1 dir=$2
  shift 2
  echo "=== ${name}: configure + build (${dir}) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

case "$mode" in
  --fast)     run_pass "normal" build ;;
  --sanitize) run_pass "sanitized" build-asan -DSCPG_SANITIZE=ON ;;
  all)
    run_pass "normal" build
    run_pass "sanitized" build-asan -DSCPG_SANITIZE=ON
    ;;
  *) echo "usage: $0 [--fast|--sanitize]" >&2; exit 2 ;;
esac

echo "=== check.sh: all requested passes green ==="
