#!/usr/bin/env bash
# Tier-1 gate: build + ctest in the normal configuration, then again with
# AddressSanitizer + UBSan (SCPG_SANITIZE=ON) in a separate build tree,
# then the concurrency-sensitive engine suites under ThreadSanitizer
# (SCPG_SANITIZE=thread) in a third tree.  The full run also lints the
# committed example netlists with `scpgc lint` and, when clang-tidy is
# installed, runs the .clang-tidy checks over the lint subsystem.
#
#   tools/check.sh             # all passes
#   tools/check.sh --fast      # normal pass only
#   tools/check.sh --sanitize  # ASan/UBSan pass only
#   tools/check.sh --tsan      # ThreadSanitizer engine pass only
#   tools/check.sh --lint      # build + scpgc lint over examples/netlists
#   tools/check.sh --tidy      # clang-tidy pass (skips if not installed)
#   tools/check.sh --fuzz-smoke# seeded scpgc fuzz budget pass, normal + ASan
#   tools/check.sh --obs       # observability pass: traced sweep + fuzz
#                              # smoke validated by trace_check, and the
#                              # disabled-mode overhead budget (default 5%,
#                              # override with SCPG_OBS_TOL=<percent>)
#   tools/check.sh --crash     # crashmat fault-injection pass: kill/stop/
#                              # starve campaign workers and corrupt
#                              # journals, asserting bit-exact recovery —
#                              # normal build first, then under ASan/UBSan
#   tools/check.sh --simperf   # compiled-backend perf floor: bench_sim_
#                              # backends must show the compiled kernel
#                              # >= SCPG_SIMPERF_FLOOR x (default 10) the
#                              # event simulator on mult16 AND scm0
#   tools/check.sh --serve     # serve daemon pass: Serve/CachePersistence
#                              # suites + the ServeCli soak in the normal
#                              # build, bench_serve_load with a hot-sweep
#                              # p99 budget (SCPG_SERVE_P99_US, default
#                              # 100000), then the Serve suites again
#                              # under ThreadSanitizer
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode=${1:-all}

run_pass() { # name build-dir ctest-regex extra-cmake-args...
  local name=$1 dir=$2 filter=$3
  shift 3
  echo "=== ${name}: configure + build (${dir}) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== ${name}: ctest ==="
  local args=(--test-dir "$dir" --output-on-failure -j "$jobs")
  [ -n "$filter" ] && args+=(-R "$filter")
  if ctest "${args[@]}"; then return 0; fi
  # Flaky-test detector: a test that fails once but passes on a rerun is
  # order/timing-sensitive, not broken.  Rerun only the failing cases up
  # to 3x; a green rerun flags them FLAKY (loudly, but the pass stays
  # green so a scheduler hiccup cannot block the gate); 3 consecutive
  # failing reruns is a real failure.
  local attempt
  for attempt in 1 2 3; do
    echo "=== ${name}: rerunning failed tests (attempt ${attempt}/3) ==="
    if ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
             --rerun-failed; then
      echo "=== ${name}: FLAKY tests detected (failed once, passed on" \
           "rerun ${attempt}) — investigate ==="
      return 0
    fi
  done
  echo "=== ${name}: tests still failing after 3 reruns ==="
  return 1
}

# Fuzz smoke: a seeded, time-budgeted `scpgc fuzz` campaign must finish
# with zero oracle mismatches — first in the normal build (coverage map
# kept as build/fuzz_coverage.json for CI trending), then again under
# ASan/UBSan so generated-netlist handling is memory-clean.  The corpus
# seeds the mutation pool but reproducers are never written here (no
# --corpus): CI replay of committed entries belongs to test_fuzz_corpus.
run_fuzz_smoke() {
  local budget=${SCPG_FUZZ_BUDGET_S:-30}
  echo "=== fuzz-smoke: build scpgc (build) ==="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target scpgc
  echo "=== fuzz-smoke: seeded ${budget}s budget (normal) ==="
  build/tools/scpgc fuzz --seed 1 --time-budget "$budget" --jobs "$jobs" \
    --coverage-out build/fuzz_coverage.json
  echo "=== fuzz-smoke: build scpgc (build-asan) ==="
  cmake -B build-asan -S . -DSCPG_SANITIZE=ON
  cmake --build build-asan -j "$jobs" --target scpgc
  echo "=== fuzz-smoke: seeded ${budget}s budget (ASan) ==="
  build-asan/tools/scpgc fuzz --seed 1 --time-budget "$budget" \
    --jobs "$jobs"
  echo "=== fuzz-smoke: zero mismatches in both builds ==="
}

# Static-analysis pass: every committed clean netlist must lint clean
# (exit 0, "errors": 0 in the JSON) and every broken/ netlist must be
# rejected (exit 1).  This exercises the shipped scpgc binary end to end:
# parse -> lint -> report -> exit code.
run_lint_pass() {
  echo "=== lint: configure + build (build) ==="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target scpgc
  local scpgc=build/tools/scpgc
  for v in examples/netlists/*.v; do
    echo "=== lint: ${v} (expect clean) ==="
    local out
    out=$("$scpgc" lint --in "$v" --freq-mhz 1 --json) ||
      { echo "lint FAILED on clean netlist ${v}:"; echo "$out"; exit 1; }
    grep -q '"errors": 0' <<<"$out" ||
      { echo "lint reported errors on clean netlist ${v}"; exit 1; }
  done
  for v in examples/netlists/broken/*.v; do
    echo "=== lint: ${v} (expect findings) ==="
    local rc=0
    "$scpgc" lint --in "$v" --json >/dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
      echo "lint exited ${rc} on broken netlist ${v} (expected 1)"; exit 1
    fi
  done
  echo "=== lint: all example netlists behaved as expected ==="
}

# Observability pass: the --trace/--metrics plumbing must produce
# structurally valid dumps on real workloads (a parallel sweep and a fuzz
# round), and the runtime-disabled macros must stay within SCPG_OBS_TOL
# percent (default 5) of a build compiled with -DSCPG_OBS=OFF.  The
# overhead gate is best-of-N on both sides to shrink scheduler noise.
run_obs_pass() {
  local tol=${SCPG_OBS_TOL:-5}
  echo "=== obs: build scpgc + trace_check + bench (build) ==="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target scpgc trace_check \
    bench_obs_overhead
  local scpgc=build/tools/scpgc check=build/tools/trace_check
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN

  echo "=== obs: traced parallel sweep ==="
  # --jobs is pinned (not $jobs): the per-thread-track check below needs a
  # guaranteed parallel run even on a single-core CI box.
  "$scpgc" sweep --in examples/netlists/mult8_scpg.v --points 4 --cycles 4 \
    --jobs 4 --trace "$tmp/sweep_trace.json" \
    --metrics "$tmp/sweep_metrics.json" >/dev/null
  "$check" --expect-tool scpgc-sweep --min-threads 2 "$tmp/sweep_trace.json"
  "$check" --metrics --expect-tool scpgc-sweep "$tmp/sweep_metrics.json"

  echo "=== obs: traced fuzz smoke ==="
  "$scpgc" fuzz --seed 1 --runs 10 --jobs "$jobs" \
    --trace "$tmp/fuzz_trace.json" --metrics "$tmp/fuzz_metrics.json" \
    >/dev/null
  "$check" --expect-tool scpgc-fuzz "$tmp/fuzz_trace.json"
  "$check" --metrics --expect-tool scpgc-fuzz "$tmp/fuzz_metrics.json"

  echo "=== obs: build bench (build-noobs, -DSCPG_OBS=OFF) ==="
  cmake -B build-noobs -S . -DSCPG_OBS=OFF
  cmake --build build-noobs -j "$jobs" --target bench_obs_overhead

  echo "=== obs: disabled-mode overhead (budget ${tol}%) ==="
  local with_rate noobs_rate
  with_rate=$(build/bench/bench_obs_overhead |
    awk '/cycles_per_sec/ {print $2}')
  noobs_rate=$(build-noobs/bench/bench_obs_overhead |
    awk '/cycles_per_sec/ {print $2}')
  echo "obs-in (disabled): ${with_rate} cycles/s, obs-out: ${noobs_rate}"
  awk -v a="$with_rate" -v b="$noobs_rate" -v tol="$tol" 'BEGIN {
    overhead = (b - a) / b * 100.0
    printf "overhead: %.1f%% (budget %s%%)\n", overhead, tol
    exit overhead > tol ? 1 : 0
  }' || { echo "obs: disabled-mode overhead exceeds ${tol}%"; exit 1; }
  echo "=== obs: pass green ==="
}

# Crash pass: crashmat drives real `scpgc campaign` runs while killing,
# stopping and starving worker subprocesses and shearing/bit-flipping the
# write-ahead journal, asserting every recovery path converges on a
# result digest bit-identical to the in-process reference.  Runs in the
# normal build first (fast signal), then under ASan/UBSan so the
# signal-handling and partial-frame paths are memory-clean.
run_crash_pass() {
  echo "=== crash: build scpgc + crashmat (build) ==="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target scpgc crashmat journal_check
  echo "=== crash: crashmat fault-injection (normal) ==="
  build/tools/crashmat --scpgc build/tools/scpgc \
    --in examples/netlists/mult4_scpg.v
  echo "=== crash: build scpgc + crashmat (build-asan) ==="
  cmake -B build-asan -S . -DSCPG_SANITIZE=ON
  cmake --build build-asan -j "$jobs" --target scpgc crashmat journal_check
  echo "=== crash: crashmat fault-injection (ASan) ==="
  build-asan/tools/crashmat --scpgc build-asan/tools/scpgc \
    --in examples/netlists/mult4_scpg.v
  echo "=== crash: all recovery paths bit-exact in both builds ==="
}

# Sim-backend perf floor: the whole point of the compiled kernel is
# throughput, so CI pins a ratio floor rather than an absolute rate
# (absolute points/s varies with the box; the event/compiled ratio is a
# property of the code).  bench_sim_backends prints one `ratio=` line per
# design; every line must clear the floor.  The measured ratios are
# ~250x (mult16) and ~120x (scm0) — the default floor of 10 is the
# acceptance threshold with a wide margin for scheduler noise.
run_simperf_pass() {
  local floor=${SCPG_SIMPERF_FLOOR:-10}
  echo "=== simperf: build bench_sim_backends (build) ==="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target bench_sim_backends
  echo "=== simperf: event vs compiled throughput (floor ${floor}x) ==="
  local out
  out=$(build/bench/bench_sim_backends)
  echo "$out"
  awk -v floor="$floor" '
    /ratio=/ {
      n++
      split($0, a, "ratio=")
      if (a[2] + 0 < floor + 0) { bad++ }
    }
    END {
      if (n < 2) { print "simperf: expected >= 2 ratio lines, got " n; exit 1 }
      exit bad ? 1 : 0
    }' <<<"$out" ||
    { echo "simperf: compiled backend below ${floor}x floor"; exit 1; }
  echo "=== simperf: all designs clear the ${floor}x floor ==="
}

# Serve pass: the daemon's concurrency battery (Serve/ServeMatrix byte-
# identity + coalescing + exact cache accounting), the adversarial disk-
# cache suite (CachePersistence) and the ServeCli end-to-end soak in the
# normal build; then bench_serve_load, gating the hot-sweep p99 — once
# the result cache holds the grid a served sweep is pure daemon overhead
# (framing + admission + batch window + render), so its p99 is the
# daemon's own latency.  Measured ~11 ms on the reference box (X7); the
# default 100 ms budget is an order-of-magnitude backstop, override with
# SCPG_SERVE_P99_US.  Finally the Serve suites rerun under TSan: accept
# thread, per-connection threads, admission queue and dispatcher batching
# are the most lock-dense code in the repo.
run_serve_pass() {
  local budget=${SCPG_SERVE_P99_US:-100000}
  run_pass "serve" build "^(Serve|CachePersistence)"
  echo "=== serve: build bench_serve_load (build) ==="
  cmake --build build -j "$jobs" --target bench_serve_load
  echo "=== serve: bench_serve_load (hot-sweep p99 budget ${budget} us) ==="
  local out
  out=$(build/bench/bench_serve_load)
  echo "$out"
  awk -v budget="$budget" '
    /^sweep_hot:/ {
      n++
      split($0, a, "p99_us=")
      if (a[2] + 0 > budget + 0) { bad++ }
    }
    END {
      if (n != 1) { print "serve: expected one sweep_hot line, got " n; exit 1 }
      exit bad ? 1 : 0
    }' <<<"$out" ||
    { echo "serve: hot-sweep p99 exceeds ${budget} us budget"; exit 1; }
  run_pass "tsan-serve" build-tsan "^Serve" -DSCPG_SANITIZE=thread
  echo "=== serve: pass green ==="
}

# clang-tidy pass: gated on availability — the CI container may not ship
# clang-tidy; the pass then reports and succeeds so `all` stays green.
run_tidy_pass() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "=== tidy: clang-tidy not installed, skipping ==="
    return 0
  fi
  echo "=== tidy: configure (compile_commands.json) ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "=== tidy: clang-tidy over src/lint src/netlist/diag.cpp ==="
  clang-tidy -p build --quiet \
    src/lint/*.cpp src/netlist/diag.cpp tools/gen_examples.cpp
  echo "=== tidy: clean ==="
}

# TSan pass: the Engine* suites (test_engine.cpp) plus SimBackends and
# Serve — the parallel sweep engine, thread pool, result cache, the
# backend registry, the compiled kernel's shared Program cache /
# per-thread scratch arenas, and the serve daemon's accept / connection /
# dispatcher threads are the code with real cross-thread interactions;
# the rest of the suite is single-threaded.
case "$mode" in
  --fast)     run_pass "normal" build "" ;;
  --sanitize) run_pass "sanitized" build-asan "" -DSCPG_SANITIZE=ON ;;
  --tsan)     run_pass "tsan-engine" build-tsan \
                       "^(Engine|SimBackends|Serve)" \
                       -DSCPG_SANITIZE=thread ;;
  --lint)     run_lint_pass ;;
  --tidy)     run_tidy_pass ;;
  --fuzz-smoke) run_fuzz_smoke ;;
  --obs)      run_obs_pass ;;
  --crash)    run_crash_pass ;;
  --simperf)  run_simperf_pass ;;
  --serve)    run_serve_pass ;;
  all)
    run_pass "normal" build ""
    run_pass "sanitized" build-asan "" -DSCPG_SANITIZE=ON
    run_pass "tsan-engine" build-tsan "^(Engine|SimBackends|Serve)" \
             -DSCPG_SANITIZE=thread
    run_lint_pass
    run_tidy_pass
    run_fuzz_smoke
    run_obs_pass
    run_crash_pass
    run_simperf_pass
    run_serve_pass
    ;;
  *) echo "usage: $0 [--fast|--sanitize|--tsan|--lint|--tidy|--fuzz-smoke|--obs|--crash|--simperf|--serve]" >&2
     exit 2 ;;
esac

echo "=== check.sh: all requested passes green ==="
