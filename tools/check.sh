#!/usr/bin/env bash
# Tier-1 gate: build + ctest in the normal configuration, then again with
# AddressSanitizer + UBSan (SCPG_SANITIZE=ON) in a separate build tree,
# then the concurrency-sensitive engine suites under ThreadSanitizer
# (SCPG_SANITIZE=thread) in a third tree.  The full run also lints the
# committed example netlists with `scpgc lint` and, when clang-tidy is
# installed, runs the .clang-tidy checks over the lint subsystem.
#
#   tools/check.sh             # all passes
#   tools/check.sh --fast      # normal pass only
#   tools/check.sh --sanitize  # ASan/UBSan pass only
#   tools/check.sh --tsan      # ThreadSanitizer engine pass only
#   tools/check.sh --lint      # build + scpgc lint over examples/netlists
#   tools/check.sh --tidy      # clang-tidy pass (skips if not installed)
#   tools/check.sh --fuzz-smoke# seeded scpgc fuzz budget pass, normal + ASan
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode=${1:-all}

run_pass() { # name build-dir ctest-regex extra-cmake-args...
  local name=$1 dir=$2 filter=$3
  shift 3
  echo "=== ${name}: configure + build (${dir}) ==="
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== ${name}: ctest ==="
  local args=(--test-dir "$dir" --output-on-failure -j "$jobs")
  [ -n "$filter" ] && args+=(-R "$filter")
  if ctest "${args[@]}"; then return 0; fi
  # Flaky-test detector: a test that fails once but passes on a rerun is
  # order/timing-sensitive, not broken.  Rerun only the failing cases up
  # to 3x; a green rerun flags them FLAKY (loudly, but the pass stays
  # green so a scheduler hiccup cannot block the gate); 3 consecutive
  # failing reruns is a real failure.
  local attempt
  for attempt in 1 2 3; do
    echo "=== ${name}: rerunning failed tests (attempt ${attempt}/3) ==="
    if ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
             --rerun-failed; then
      echo "=== ${name}: FLAKY tests detected (failed once, passed on" \
           "rerun ${attempt}) — investigate ==="
      return 0
    fi
  done
  echo "=== ${name}: tests still failing after 3 reruns ==="
  return 1
}

# Fuzz smoke: a seeded, time-budgeted `scpgc fuzz` campaign must finish
# with zero oracle mismatches — first in the normal build (coverage map
# kept as build/fuzz_coverage.json for CI trending), then again under
# ASan/UBSan so generated-netlist handling is memory-clean.  The corpus
# seeds the mutation pool but reproducers are never written here (no
# --corpus): CI replay of committed entries belongs to test_fuzz_corpus.
run_fuzz_smoke() {
  local budget=${SCPG_FUZZ_BUDGET_S:-30}
  echo "=== fuzz-smoke: build scpgc (build) ==="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target scpgc
  echo "=== fuzz-smoke: seeded ${budget}s budget (normal) ==="
  build/tools/scpgc fuzz --seed 1 --time-budget "$budget" --jobs "$jobs" \
    --coverage-out build/fuzz_coverage.json
  echo "=== fuzz-smoke: build scpgc (build-asan) ==="
  cmake -B build-asan -S . -DSCPG_SANITIZE=ON
  cmake --build build-asan -j "$jobs" --target scpgc
  echo "=== fuzz-smoke: seeded ${budget}s budget (ASan) ==="
  build-asan/tools/scpgc fuzz --seed 1 --time-budget "$budget" \
    --jobs "$jobs"
  echo "=== fuzz-smoke: zero mismatches in both builds ==="
}

# Static-analysis pass: every committed clean netlist must lint clean
# (exit 0, "errors": 0 in the JSON) and every broken/ netlist must be
# rejected (exit 1).  This exercises the shipped scpgc binary end to end:
# parse -> lint -> report -> exit code.
run_lint_pass() {
  echo "=== lint: configure + build (build) ==="
  cmake -B build -S .
  cmake --build build -j "$jobs" --target scpgc
  local scpgc=build/tools/scpgc
  for v in examples/netlists/*.v; do
    echo "=== lint: ${v} (expect clean) ==="
    local out
    out=$("$scpgc" lint --in "$v" --freq-mhz 1 --json) ||
      { echo "lint FAILED on clean netlist ${v}:"; echo "$out"; exit 1; }
    grep -q '"errors": 0' <<<"$out" ||
      { echo "lint reported errors on clean netlist ${v}"; exit 1; }
  done
  for v in examples/netlists/broken/*.v; do
    echo "=== lint: ${v} (expect findings) ==="
    local rc=0
    "$scpgc" lint --in "$v" --json >/dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
      echo "lint exited ${rc} on broken netlist ${v} (expected 1)"; exit 1
    fi
  done
  echo "=== lint: all example netlists behaved as expected ==="
}

# clang-tidy pass: gated on availability — the CI container may not ship
# clang-tidy; the pass then reports and succeeds so `all` stays green.
run_tidy_pass() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "=== tidy: clang-tidy not installed, skipping ==="
    return 0
  fi
  echo "=== tidy: configure (compile_commands.json) ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "=== tidy: clang-tidy over src/lint src/netlist/diag.cpp ==="
  clang-tidy -p build --quiet \
    src/lint/*.cpp src/netlist/diag.cpp tools/gen_examples.cpp
  echo "=== tidy: clean ==="
}

# TSan pass: only the Engine* suites (test_engine.cpp) — the parallel
# sweep engine, thread pool and result cache are the code with real
# cross-thread interactions; the rest of the suite is single-threaded.
case "$mode" in
  --fast)     run_pass "normal" build "" ;;
  --sanitize) run_pass "sanitized" build-asan "" -DSCPG_SANITIZE=ON ;;
  --tsan)     run_pass "tsan-engine" build-tsan "^Engine" \
                       -DSCPG_SANITIZE=thread ;;
  --lint)     run_lint_pass ;;
  --tidy)     run_tidy_pass ;;
  --fuzz-smoke) run_fuzz_smoke ;;
  all)
    run_pass "normal" build ""
    run_pass "sanitized" build-asan "" -DSCPG_SANITIZE=ON
    run_pass "tsan-engine" build-tsan "^Engine" -DSCPG_SANITIZE=thread
    run_lint_pass
    run_tidy_pass
    run_fuzz_smoke
    ;;
  *) echo "usage: $0 [--fast|--sanitize|--tsan|--lint|--tidy|--fuzz-smoke]" >&2
     exit 2 ;;
esac

echo "=== check.sh: all requested passes green ==="
