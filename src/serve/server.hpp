// The scpgc serve daemon: a long-running analysis service over a unix
// socket.
//
// Why a daemon at all: the compiled backend (PR 7) made per-point
// simulation cheap enough that process startup, netlist loading, model
// extraction and cache warmup dominate a CLI sweep's latency.  A
// resident process amortizes all four — the result cache stays hot
// across requests (and, via DiskCache, across restarts), and concurrent
// clients' points merge into shared engine runs.
//
// Threading model:
//
//   accept thread --- one connection thread per client ---+
//                         |  lint/verify/ping/stats       |
//                         |  run inline                   |
//                         v                               v
//                    sweep admission queue -----> dispatcher thread
//                                                 (batch window, then
//                                                  one merged
//                                                  Experiment::run per
//                                                  compatible group)
//
// Sweep coalescing: requests arriving within one batch window whose
// specs are identical except for the seed execute as ONE merged
// experiment — each request's grid is appended under a "q<i>:" tag
// prefix with its own seed, so the rows differ only in (seed, digest)
// and the compiled backend packs them into the same 64-lane units
// (engine/sweep.cpp execute_unit).  Requests with equal seeds share one
// grid copy (duplicate digests under different tags are illegal — and
// pointless — to re-run).  Each client's response is rendered from its
// own rows by the shared renderer (serve/exec.hpp), so a merged response
// is byte-identical to a solo one by construction.
//
// Shutdown: request_stop() (SIGTERM in `scpgc serve`, or a client
// "shutdown" op) stops accepting, drains every queued and in-flight
// request to a sent response, compacts the disk cache, unlinks the
// socket.  Requests that race past the dispatcher's exit run solo on
// their connection thread — drained, never dropped.
//
// Every request is counted under "serve.*" obs metrics and its wall
// latency recorded; the "stats" op returns the aggregate (request
// counts, batch counts, cache state, p50/p99 latency) as a JSON body.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/cache.hpp"
#include "serve/diskcache.hpp"
#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace scpg::serve {

struct ServerOptions {
  std::string socket_path;
  /// Engine parallelism for merged sweep runs; <= 0 means default_jobs().
  int jobs{0};
  /// Disk cache file; empty runs memory-only.
  std::string cache_path;
  std::size_t cache_capacity{engine::ResultCache::kDefaultCapacity};
  /// How long the dispatcher waits for more sweeps to coalesce after one
  /// arrives.  0 still batches whatever is queued at wakeup.
  int batch_window_ms{4};
};

class Server {
public:
  Server(const Library& lib, ServerOptions opt);
  ~Server(); ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket (SocketBusyError when a live daemon owns it),
  /// loads the disk cache, starts the accept/dispatcher threads.
  DiskCache::LoadReport start();

  /// Signals shutdown; safe from any thread, idempotent, returns
  /// immediately.  stop() performs the actual drain.
  void request_stop();

  /// Readable once request_stop() has fired (a self-pipe read end);
  /// poll this alongside a signal pipe to wait for either.
  [[nodiscard]] int shutdown_fd() const { return stop_r_; }

  /// Drains and joins everything, compacts + closes the disk cache,
  /// unlinks the socket.  Idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const {
    return opt_.socket_path;
  }

private:
  struct PendingSweep;
  struct Conn;

  void accept_loop();
  void connection_loop(Conn* conn);
  void dispatcher_loop();
  /// One merged (or solo) execution of a compatible group.
  void execute_group(const std::vector<PendingSweep*>& group);
  void handle_request(const Socket& s, const Request& rq);
  [[nodiscard]] std::string render_stats();
  void record_latency(double us);
  void reap_finished_conns();

  const Library& lib_;
  ServerOptions opt_;
  engine::ResultCache cache_{"serve.cache"};
  std::unique_ptr<DiskCache> disk_;
  Socket listener_;
  int stop_r_{-1};
  int stop_w_{-1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  bool stopped_{false};

  std::thread accept_thread_;
  std::mutex conns_m_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::thread dispatcher_;
  std::mutex batch_m_;
  std::condition_variable batch_cv_;
  std::vector<PendingSweep*> queue_;
  bool dispatcher_live_{false};

  // Aggregate stats (the "stats" op's body; obs counters mirror them).
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_by_op_[6]{};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_batches_{0};
  std::atomic<std::uint64_t> n_batched_requests_{0};
  std::atomic<std::uint64_t> disk_loaded_{0};
  std::atomic<std::uint64_t> disk_rejected_{0};
  std::mutex lat_m_;
  std::vector<double> latency_us_;
};

} // namespace scpg::serve
