#include "serve/diskcache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "campaign/frame.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace scpg::serve {

namespace {

using campaign::bits_double;
using campaign::decode_frame;
using campaign::double_bits;
using campaign::encode_frame;
using campaign::hex64;
using campaign::parse_hex64;

std::string header_payload() {
  std::string s = "{\"kind\": \"header\", \"cache_version\": ";
  s += std::to_string(DiskCache::kCacheVersion);
  s += ", \"key_schema\": \"";
  s += DiskCache::kKeySchema;
  s += "\"}";
  return s;
}

std::string entry_payload(const engine::CacheKey& key,
                          const engine::Measurement& m) {
  const PowerTally& t = m.tally;
  std::string s = "{\"kind\": \"entry\", \"key_lo\": \"" + hex64(key.lo) + "\"";
  s += ", \"key_hi\": \"" + hex64(key.hi) + "\"";
  s += ", \"cycles\": " + std::to_string(m.cycles);
  // Bit patterns, not decimal: a reloaded hit must be byte-identical to
  // the computation it replaces (the journal's convention).
  s += ", \"avg_power\": \"" + hex64(double_bits(m.avg_power.v)) + "\"";
  s += ", \"epc\": \"" + hex64(double_bits(m.energy_per_cycle.v)) + "\"";
  s += ", \"switching\": \"" + hex64(double_bits(t.switching.v)) + "\"";
  s += ", \"internal\": \"" + hex64(double_bits(t.internal.v)) + "\"";
  s += ", \"leakage_aon\": \"" + hex64(double_bits(t.leakage_aon.v)) + "\"";
  s += ", \"leakage_gated\": \"" + hex64(double_bits(t.leakage_gated.v)) +
       "\"";
  s += ", \"header_off\": \"" + hex64(double_bits(t.header_off.v)) + "\"";
  s += ", \"rail_recharge\": \"" + hex64(double_bits(t.rail_recharge.v)) +
       "\"";
  s += ", \"crowbar\": \"" + hex64(double_bits(t.crowbar.v)) + "\"";
  s += ", \"header_gate\": \"" + hex64(double_bits(t.header_gate.v)) + "\"";
  s += ", \"macro_access\": \"" + hex64(double_bits(t.macro_access.v)) + "\"";
  s += ", \"window\": \"" + hex64(double_bits(t.window.v)) + "\"";
  s += "}";
  return s;
}

[[noreturn]] void cache_error(const std::string& what,
                              const std::string& source, int lineno) {
  throw ParseError("result cache: " + what, source, lineno);
}

std::uint64_t hex_field(const json::Value& v, const char* key,
                        const std::string& source, int lineno) {
  const json::Value* f = v.get(key);
  if (f == nullptr || !f->is(json::Value::Type::String))
    cache_error(std::string("missing or non-string \"") + key + "\"", source,
                lineno);
  return parse_hex64(f->str, source, lineno);
}

double hex_double_field(const json::Value& v, const char* key,
                        const std::string& source, int lineno) {
  return bits_double(hex_field(v, key, source, lineno));
}

struct ParsedEntry {
  engine::CacheKey key;
  engine::Measurement m;
};

ParsedEntry entry_from_payload(const json::Value& payload,
                               const std::string& source, int lineno) {
  ParsedEntry e;
  e.key.lo = hex_field(payload, "key_lo", source, lineno);
  e.key.hi = hex_field(payload, "key_hi", source, lineno);
  const json::Value* cycles = payload.get("cycles");
  if (cycles == nullptr || !cycles->is(json::Value::Type::Number) ||
      cycles->num < 0)
    cache_error("entry has no valid \"cycles\"", source, lineno);
  e.m.cycles = int(cycles->num);
  e.m.avg_power.v = hex_double_field(payload, "avg_power", source, lineno);
  e.m.energy_per_cycle.v = hex_double_field(payload, "epc", source, lineno);
  PowerTally& t = e.m.tally;
  t.switching.v = hex_double_field(payload, "switching", source, lineno);
  t.internal.v = hex_double_field(payload, "internal", source, lineno);
  t.leakage_aon.v = hex_double_field(payload, "leakage_aon", source, lineno);
  t.leakage_gated.v =
      hex_double_field(payload, "leakage_gated", source, lineno);
  t.header_off.v = hex_double_field(payload, "header_off", source, lineno);
  t.rail_recharge.v =
      hex_double_field(payload, "rail_recharge", source, lineno);
  t.crowbar.v = hex_double_field(payload, "crowbar", source, lineno);
  t.header_gate.v = hex_double_field(payload, "header_gate", source, lineno);
  t.macro_access.v = hex_double_field(payload, "macro_access", source, lineno);
  t.window.v = hex_double_field(payload, "window", source, lineno);
  return e;
}

std::string kind_of(const json::Value& payload, const std::string& source,
                    int lineno) {
  const json::Value* kind = payload.get("kind");
  if (kind == nullptr || !kind->is(json::Value::Type::String))
    cache_error("frame payload has no \"kind\"", source, lineno);
  return kind->str;
}

void write_all_or_throw(int fd, std::string_view data,
                        const std::string& path) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("cache write failed: " + path + ": " +
                  std::strerror(errno));
    }
    p += n;
    left -= std::size_t(n);
  }
}

} // namespace

DiskCache::DiskCache(std::string path, engine::ResultCache& mem)
    : path_(std::move(path)), mem_(mem) {}

DiskCache::~DiskCache() { close(); }

DiskCache::LoadReport DiskCache::open() {
  SCPG_REQUIRE(!open_, "disk cache is already open");
  LoadReport rep;
  std::vector<ParsedEntry> entries;
  bool have_file = false;
  bool have_header = false;

  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      have_file = true;
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string text = buf.str();
      int lineno = 0;
      std::size_t pos = 0;
      while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        ++lineno;
        if (nl == std::string::npos) {
          // Torn tail: the one shape a killed append leaves.  Dropping
          // it loses at most one cached measurement.
          rep.dropped_torn_tail = true;
          rep.rebuilt = true;
          break;
        }
        const std::string_view line(text.data() + pos, nl - pos);
        try {
          const json::Value payload =
              decode_frame(line, path_, lineno, kCacheTool);
          const std::string kind = kind_of(payload, path_, lineno);
          if (kind == "header") {
            if (have_header)
              cache_error("duplicate header frame", path_, lineno);
            const json::Value* ver = payload.get("cache_version");
            if (ver == nullptr || !ver->is(json::Value::Type::Number) ||
                int(ver->num) != kCacheVersion)
              cache_error("unsupported cache_version", path_, lineno);
            const json::Value* schema = payload.get("key_schema");
            if (schema == nullptr ||
                !schema->is(json::Value::Type::String) ||
                schema->str != kKeySchema)
              cache_error(
                  "key_schema mismatch (digest or backend-salt scheme "
                  "changed)",
                  path_, lineno);
            have_header = true;
          } else if (kind == "entry") {
            if (!have_header)
              cache_error("entry frame before header", path_, lineno);
            entries.push_back(entry_from_payload(payload, path_, lineno));
          } else {
            cache_error("unknown frame kind \"" + kind + "\"", path_, lineno);
          }
        } catch (const ParseError& e) {
          // Reject from this line on: everything validated above the
          // corruption survives, nothing below it is trusted (a flipped
          // length or a resynchronized line must not smuggle an entry).
          rep.rejected = 1;
          rep.reject_reason = e.what();
          rep.rebuilt = true;
          break;
        }
        pos = nl + 1;
      }
      if (!have_header && !entries.empty())
        entries.clear(); // unreachable, but keep the invariant obvious
      if (!have_header && !rep.rebuilt && !text.empty()) {
        // File of valid lines but no header never happens from our
        // writer; treat as rejected.
        rep.rejected = 1;
        rep.reject_reason = path_ + ":1: result cache: no header frame";
        rep.rebuilt = true;
      }
    }
  }

  // Replay in file order: coldest first, hottest last, so the memory
  // LRU ends in the recency order the writer persisted.
  for (const ParsedEntry& e : entries) mem_.preload(e.key, e.m);
  rep.loaded = entries.size();

  const std::lock_guard lock(io_m_);
  if (!have_file || rep.rebuilt) {
    rewrite_locked();
    rep.rebuilt = true;
  } else {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0)
      throw Error("cannot open cache for append: " + path_ + ": " +
                  std::strerror(errno));
  }
  open_ = true;
  mem_.set_store_hook([this](const engine::CacheKey& key,
                             const engine::Measurement& m) {
    append_entry(key, m);
  });
  return rep;
}

void DiskCache::append_entry(const engine::CacheKey& key,
                             const engine::Measurement& m) {
  const std::lock_guard lock(io_m_);
  if (fd_ < 0) return;
  write_all_or_throw(fd_, encode_frame(entry_payload(key, m), kCacheTool),
                     path_);
}

void DiskCache::flush() {
  const std::lock_guard lock(io_m_);
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0)
    throw Error("cache fsync failed: " + path_ + ": " + std::strerror(errno));
}

void DiskCache::rewrite_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw Error("cannot create cache file: " + path_ + ": " +
                std::strerror(errno));
  write_all_or_throw(fd_, encode_frame(header_payload(), kCacheTool), path_);
  // entries_mru is hottest-first; persist coldest-first so a reload
  // reconstructs the same recency order.
  const auto entries = mem_.entries_mru();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    write_all_or_throw(
        fd_, encode_frame(entry_payload(it->first, it->second), kCacheTool),
        path_);
  if (::fsync(fd_) != 0)
    throw Error("cache fsync failed: " + path_ + ": " + std::strerror(errno));
}

void DiskCache::close() {
  if (!open_) return;
  mem_.set_store_hook({});
  const std::lock_guard lock(io_m_);
  rewrite_locked(); // compact: exactly the live entries, in recency order
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  open_ = false;
}

} // namespace scpg::serve
