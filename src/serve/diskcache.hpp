// Disk persistence for an engine::ResultCache: the daemon's warm cache
// survives restarts.
//
// File format — one CRC frame per line, the src/campaign codec with its
// own tool name ("scpgc-cache", so a journal fed to the cache loader or
// vice versa rejects at line 1):
//
//   SCPGF1 <crc32> {"schema_version":1,"tool":"scpgc-cache","payload":
//     {"kind":"header","cache_version":1,"key_schema":"..."}}
//   SCPGF1 <crc32> {... {"kind":"entry","key_lo":"<hex64>",
//     "key_hi":"<hex64>","cycles":N,"avg_power":"<hex64>", ...}}
//   ...
//
// Entries carry the full Measurement as 64-bit patterns (the journal's
// convention): a reloaded hit must be byte-identical to the computation
// it replaces, so nothing rounds through decimal.  Keys are the engine's
// 128-bit content keys, already salted by backend identity; the header's
// key_schema names that scheme, so a build whose digest or salt scheme
// changed rejects old files wholesale instead of serving stale results.
//
// Robustness contract (tests/test_cache_persistence.cpp): a cache file
// is advisory, never trusted.  Loading validates line by line; the first
// malformed complete line rejects the file from that point with a
// located reason (path:line), a torn tail (no trailing newline — the
// shape a SIGKILLed append leaves) is dropped silently, and in both
// cases the file is immediately rebuilt from the entries that survived.
// A header whose version or key schema mismatches rejects everything.
// Wrong results are structurally impossible: an entry either reproduces
// its exact bytes (CRC + strict lowercase-hex fields) or it is dropped.
//
// Ordering: the file is written coldest-first, hottest-last, and loading
// replays insertions in file order — so reload reconstructs the LRU
// recency the writer saw, and the in-memory capacity evicts the genuine
// coldest entries when a smaller daemon reloads a bigger file.
//
// Lifecycle: open() loads + rebuilds if needed, then installs itself as
// the cache's store hook — every fresh insert appends one frame
// (write(2), no fsync; flush() fsyncs, the server calls it after each
// batch).  close() uninstalls the hook and compacts: the file is
// rewritten to exactly the live entries in recency order.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "engine/cache.hpp"

namespace scpg::serve {

class DiskCache {
public:
  static constexpr int kCacheVersion = 1;
  static constexpr std::string_view kCacheTool = "scpgc-cache";
  /// Names the key derivation this build writes; bump alongside any
  /// change to the engine's digest scheme or backend salting.
  static constexpr std::string_view kKeySchema = "fnv1a128+backend-salt:v1";

  struct LoadReport {
    std::size_t loaded{0};      ///< entries preloaded into memory
    std::size_t rejected{0};    ///< complete lines discarded as invalid
    bool rebuilt{false};        ///< file was rewritten during open
    bool dropped_torn_tail{false};
    std::string reject_reason;  ///< located "path:line: why" when rejected
  };

  /// `mem` must outlive this object (the store hook points into it).
  DiskCache(std::string path, engine::ResultCache& mem);
  ~DiskCache();

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// Loads `path` (a missing file is an empty cache, not an error),
  /// preloads every valid entry, rebuilds the file when anything was
  /// rejected, and installs the write-through store hook.
  LoadReport open();

  /// fsyncs everything appended so far.
  void flush();

  /// Uninstalls the hook, compacts the file to the live entries, closes.
  /// Idempotent; the destructor calls it.
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }

private:
  void append_entry(const engine::CacheKey& key, const engine::Measurement& m);
  void rewrite_locked(); ///< header + mem entries, coldest first

  std::string path_;
  engine::ResultCache& mem_;
  std::mutex io_m_;
  int fd_{-1};
  bool open_{false};
};

} // namespace scpg::serve
