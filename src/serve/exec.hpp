// One definition of "run this request and render its --json body".
//
// The serve daemon's contract is byte-identity: the body it returns for
// a sweep/lint/verify request must equal, byte for byte, what a direct
// `scpgc <cmd> --json` of the same parameters writes to stdout — at any
// client count, any cache state, and across daemon restarts.  Chasing
// that with two renderers would be a standing bug farm, so there is one:
// the CLI's --json paths (tools/scpgc.cpp) and the daemon's request
// handlers (src/serve/server.cpp) both call the exec_* functions below.
//
// Requests are closed value types (no pointers, no closures) so the
// protocol layer can carry them across the socket, and each exec_*
// returns the exact stdout bytes plus the process exit code the CLI
// would have produced.  Sweep rendering is split out (render_sweep_body)
// so the daemon can execute many coalesced requests in one merged
// Experiment::run and still render each client's body from its own rows.
//
// Determinism note: the payload's "cache_hits" field reports the
// *within-run* duplicate-row count — the value a fresh process with a
// cold cache observes — never the live cache's hit count, which varies
// with history and would break byte-identity.  For the canonical grid
// every row digest is distinct, so the value is 0; it is computed, not
// assumed.  Live hit accounting belongs to the obs counters
// ("engine.cache_hits", "serve.*"), which the stats op exposes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "campaign/spec.hpp"
#include "engine/cache.hpp"

namespace scpg::serve {

/// Exact CLI behaviour of one request: stdout bytes + exit code.
struct ExecResult {
  std::string body; ///< the full envelope line(s), trailing '\n' included
  int exit_code{0};
};

/// `scpgc sweep --json`: the campaign spec names everything that affects
/// the measurement; `jobs` is rendered into the payload verbatim and
/// sets the solo run's parallelism (it never changes a byte of results).
struct SweepRequest {
  campaign::CampaignSpec spec;
  int jobs{1};
};

/// `scpgc lint --json` knobs.
struct LintRequest {
  std::string netlist_path;
  double vdd{0.6};
  double temp_c{25.0};
  std::string clock_port{"clk"};
  double duty{0.5};
  bool has_freq{false};
  double freq_mhz{1.0};
  std::string only; ///< comma-separated rule ids, "" = all
};

/// `scpgc verify --json` knobs (the backend is always event: hazard
/// monitors are observer hooks the compiled kernel does not have).
struct VerifyRequest {
  std::string netlist_path;
  double vdd{0.6};
  double temp_c{25.0};
  std::string clock_port{"clk"};
  std::string faults; ///< comma-separated fault classes, "" = none
  double rate{0.0};
  double magnitude{0.0};
  double freq_mhz{1.0};
  double duty{0.5};
  int cycles{40};
  int warmup{6};
  int max_report{10};
  std::uint64_t seed{1};
  /// The CLI's --no-lint clears this; daemon requests always gate.
  bool lint_gate{true};
};

/// Builds the plan, runs it (through `cache` when non-null), renders.
/// Exit code 0; failures throw the same exceptions the CLI maps to exit
/// codes.
[[nodiscard]] ExecResult exec_sweep(const Library& lib, const SweepRequest& rq,
                                    engine::ResultCache* cache = nullptr);

/// Exit code 0 clean / 1 findings.
[[nodiscard]] ExecResult exec_lint(const Library& lib, const LintRequest& rq);

/// Exit code 0 clean / 1 hazards detected.
[[nodiscard]] ExecResult exec_verify(const Library& lib,
                                     const VerifyRequest& rq);

/// Finds a result row by tag; nullptr when the row does not exist (only
/// legal for "g:i" rows, whose existence feasibility gates).
using RowLookup =
    std::function<const engine::PointResult*(const std::string& tag)>;

/// Renders the sweep payload envelope from `plan`'s model columns and
/// the measured rows `find` resolves.  The daemon's merged runs pass a
/// prefix-mapping lookup into the shared result table; exec_sweep passes
/// the solo run's own table.
[[nodiscard]] std::string render_sweep_body(const campaign::CampaignPlan& plan,
                                            const SweepRequest& rq,
                                            const RowLookup& find);

/// The deterministic "cache_hits" payload value: how many of the plan's
/// rows duplicate an earlier row's digest within one run.
[[nodiscard]] std::size_t cold_cache_hits(const campaign::CampaignPlan& plan);

} // namespace scpg::serve
