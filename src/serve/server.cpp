#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <utility>

#include "campaign/spec.hpp"
#include "obs/obs.hpp"
#include "serve/exec.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/subprocess.hpp"

namespace scpg::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Maps the in-flight exception to the exit code `scpgc <cmd>` would
/// have returned (tools/scpgc.cpp main's catch ladder).
Status status_of_current_exception(std::string_view kind) {
  Status st;
  st.ok = false;
  st.kind = std::string(kind);
  try {
    throw;
  } catch (const ParseError& e) {
    st.exit_code = 3;
    st.error = e.what();
  } catch (const InfeasibleError& e) {
    st.exit_code = 4;
    st.error = e.what();
  } catch (const Error& e) {
    st.exit_code = 5;
    st.error = e.what();
  } catch (const std::exception& e) {
    st.exit_code = 6;
    st.error = e.what();
  }
  return st;
}

void send_response(const Socket& s, const Status& st,
                   const std::string& body) {
  // A vanished peer is not an error; its request was still executed
  // (and cached) — only the delivery is moot.
  if (!write_frame(s, encode_status(st))) return;
  write_frame(s, body);
}

/// Grouping key for coalescing: everything that must match for two
/// sweeps to share one merged plan — the full spec minus the seed (the
/// one axis the merge multiplexes).
std::string group_key(const campaign::CampaignSpec& spec) {
  campaign::CampaignSpec keyed = spec;
  keyed.seed = 0;
  return campaign::to_json(keyed);
}

} // namespace

struct Server::PendingSweep {
  SweepRequest rq;
  std::promise<std::pair<Status, std::string>> promise;
};

struct Server::Conn {
  Socket sock;
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(const Library& lib, ServerOptions opt)
    : lib_(lib), opt_(std::move(opt)) {}

Server::~Server() { stop(); }

DiskCache::LoadReport Server::start() {
  SCPG_REQUIRE(!started_, "server already started");
  ignore_sigpipe();
  listener_ = listen_unix(opt_.socket_path);
  int pipefd[2];
  if (::pipe2(pipefd, O_CLOEXEC) != 0)
    throw Error(std::string("pipe2 failed: ") + std::strerror(errno));
  stop_r_ = pipefd[0];
  stop_w_ = pipefd[1];

  cache_.set_capacity(opt_.cache_capacity);
  DiskCache::LoadReport rep;
  if (!opt_.cache_path.empty()) {
    disk_ = std::make_unique<DiskCache>(opt_.cache_path, cache_);
    rep = disk_->open();
    disk_loaded_ = rep.loaded;
    disk_rejected_ = rep.rejected;
    SCPG_OBS_COUNT("serve.cache.disk.loaded", rep.loaded);
    SCPG_OBS_COUNT("serve.cache.disk.rejected", rep.rejected);
    if (rep.rebuilt) SCPG_OBS_COUNT("serve.cache.disk.rebuilds", 1);
  }

  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
  return rep;
}

void Server::request_stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  if (stop_w_ >= 0) write_all(stop_w_, "x");
  batch_cv_.notify_all();
}

void Server::stop() {
  if (!started_ || stopped_) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    const std::lock_guard lock(conns_m_);
    for (auto& c : conns_)
      if (c->thread.joinable()) c->thread.join();
    conns_.clear();
  }
  if (disk_) {
    disk_->close();
    disk_.reset();
  }
  listener_.close();
  ::unlink(opt_.socket_path.c_str());
  close_fd(stop_w_);
  close_fd(stop_r_);
  stopped_ = true;
}

void Server::reap_finished_conns() {
  const std::lock_guard lock(conns_m_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{listener_.fd(), POLLIN, 0}, {stop_r_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    Socket conn = accept_unix(listener_);
    if (!conn.valid()) continue; // EINTR
    reap_finished_conns();
    auto c = std::make_unique<Conn>();
    c->sock = std::move(conn);
    Conn* raw = c.get();
    {
      const std::lock_guard lock(conns_m_);
      conns_.push_back(std::move(c));
    }
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
  }
}

void Server::connection_loop(Conn* conn) {
  while (!stopping_.load()) {
    pollfd fds[2] = {{conn->sock.fd(), POLLIN, 0}, {stop_r_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Stop while idle closes the connection; a readable request frame
    // that raced the stop is still served (drained), and the next loop
    // iteration closes.
    if ((fds[0].revents & POLLIN) == 0) {
      if (fds[1].revents != 0 || stopping_.load()) break;
      continue;
    }
    std::optional<std::string> frame;
    try {
      frame = read_frame(conn->sock);
    } catch (const std::exception&) {
      break; // broken framing: the stream is unrecoverable
    }
    if (!frame) break; // clean EOF
    const auto t0 = Clock::now();
    n_requests_.fetch_add(1);
    SCPG_OBS_COUNT("serve.requests", 1);
    Request rq;
    try {
      rq = decode_request(*frame);
    } catch (const ParseError& e) {
      n_errors_.fetch_add(1);
      SCPG_OBS_COUNT("serve.errors", 1);
      send_response(conn->sock,
                    Status{false, "unknown", 2, e.what()}, std::string());
      continue;
    }
    n_by_op_[std::size_t(rq.op)].fetch_add(1);
    SCPG_OBS_COUNT("serve.requests." + std::string(op_name(rq.op)), 1);
    handle_request(conn->sock, rq);
    record_latency(std::chrono::duration<double, std::micro>(Clock::now() -
                                                             t0)
                       .count());
    if (rq.op == Op::Shutdown) {
      request_stop();
      break;
    }
  }
  conn->sock.close();
  conn->done.store(true);
}

void Server::handle_request(const Socket& s, const Request& rq) {
  switch (rq.op) {
    case Op::Ping:
      send_response(s, Status{true, "ping", 0, ""}, std::string());
      return;
    case Op::Shutdown:
      send_response(s, Status{true, "shutdown", 0, ""}, std::string());
      return;
    case Op::Stats:
      send_response(s, Status{true, "stats", 0, ""}, render_stats());
      return;
    case Op::Lint:
    case Op::Verify: {
      const std::string kind(op_name(rq.op));
      try {
        const ExecResult r = rq.op == Op::Lint ? exec_lint(lib_, rq.lint)
                                               : exec_verify(lib_, rq.verify);
        send_response(s, Status{true, kind, r.exit_code, ""}, r.body);
      } catch (...) {
        n_errors_.fetch_add(1);
        SCPG_OBS_COUNT("serve.errors", 1);
        send_response(s, status_of_current_exception(kind), std::string());
      }
      return;
    }
    case Op::Sweep: {
      PendingSweep pending;
      pending.rq = rq.sweep;
      auto future = pending.promise.get_future();
      bool enqueued = false;
      {
        const std::lock_guard lock(batch_m_);
        if (dispatcher_live_) {
          queue_.push_back(&pending);
          enqueued = true;
        }
      }
      if (enqueued) {
        batch_cv_.notify_all();
      } else {
        // Shutdown race: the dispatcher already drained and exited.
        // Serve solo on this thread — drained, never dropped.
        execute_group({&pending});
      }
      const auto [st, body] = future.get();
      if (!st.ok) {
        n_errors_.fetch_add(1);
        SCPG_OBS_COUNT("serve.errors", 1);
      }
      send_response(s, st, body);
      return;
    }
  }
}

void Server::dispatcher_loop() {
  std::unique_lock lock(batch_m_);
  dispatcher_live_ = true;
  for (;;) {
    batch_cv_.wait(lock,
                   [this] { return !queue_.empty() || stopping_.load(); });
    if (queue_.empty()) break; // stopping, nothing left to drain
    if (!stopping_.load() && opt_.batch_window_ms > 0) {
      // Hold the door one window so concurrent clients coalesce; a stop
      // request cuts the window short.
      const auto deadline =
          Clock::now() + std::chrono::milliseconds(opt_.batch_window_ms);
      batch_cv_.wait_until(lock, deadline,
                           [this] { return stopping_.load(); });
    }
    std::vector<PendingSweep*> batch;
    batch.swap(queue_);
    lock.unlock();

    // Group by everything-but-the-seed; each group is one engine run.
    std::map<std::string, std::vector<PendingSweep*>> groups;
    for (PendingSweep* p : batch)
      groups[group_key(p->rq.spec)].push_back(p);
    for (const auto& [key, group] : groups) execute_group(group);
    if (disk_) disk_->flush();

    lock.lock();
  }
  dispatcher_live_ = false;
}

void Server::execute_group(const std::vector<PendingSweep*>& group) {
  n_batches_.fetch_add(1);
  n_batched_requests_.fetch_add(group.size());
  SCPG_OBS_COUNT("serve.sweep.batches", 1);
  SCPG_OBS_COUNT("serve.sweep.batched_requests", group.size());
  try {
    // One plan for the whole group: the grid's shape, model columns and
    // design digests are seed-invariant, and the group key pinned
    // everything else equal.
    const campaign::CampaignPlan plan = campaign::build_campaign(
        lib_, group[0]->rq.spec, opt_.jobs, &cache_);

    if (group.size() == 1) {
      const engine::SweepResult res = plan.experiment->run();
      const std::string body = render_sweep_body(
          plan, group[0]->rq,
          [&](const std::string& tag) { return res.find(tag); });
      group[0]->promise.set_value({Status{true, "sweep", 0, ""}, body});
      return;
    }

    // Merged run: one grid copy per distinct seed, tag-prefixed "q<i>:".
    // Equal-seed requests share a copy — their rows would collide on
    // digest (the engine rejects aliased tags), and re-running identical
    // content would be waste.
    std::map<std::uint64_t, std::size_t> seed_slot;
    std::vector<std::uint64_t> seeds;
    for (const PendingSweep* p : group)
      if (seed_slot.emplace(p->rq.spec.seed, seeds.size()).second)
        seeds.push_back(p->rq.spec.seed);

    const campaign::CampaignSpec& cs = group[0]->rq.spec;
    SimConfig cfg;
    cfg.corner = Corner{Voltage{cs.vdd}, cs.temp_c};
    engine::SweepSpec merged;
    merged.design(*plan.original, "original").design(*plan.gated, "gated");
    merged.base_sim(cfg)
        .cycles(cs.cycles)
        .clock_port(cs.clock_port)
        .jobs(opt_.jobs)
        .cache(&cache_)
        .backend(cs.backend)
        .stimulus(campaign::random_stimulus(cs.activity, cs.clock_port));
    for (std::size_t q = 0; q < seeds.size(); ++q)
      campaign::append_campaign_grid(merged, cs, *plan.model,
                                     plan.already_gated, seeds[q],
                                     "q" + std::to_string(q) + ":");
    const engine::SweepResult res = engine::Experiment(std::move(merged)).run();

    for (PendingSweep* p : group) {
      const std::string prefix =
          "q" + std::to_string(seed_slot.at(p->rq.spec.seed)) + ":";
      const std::string body = render_sweep_body(
          plan, p->rq,
          [&](const std::string& tag) { return res.find(prefix + tag); });
      p->promise.set_value({Status{true, "sweep", 0, ""}, body});
    }
  } catch (...) {
    const Status st = status_of_current_exception("sweep");
    for (PendingSweep* p : group) p->promise.set_value({st, std::string()});
  }
}

void Server::record_latency(double us) {
  const std::lock_guard lock(lat_m_);
  // Bounded: keep the most recent window if a very long-lived daemon
  // would otherwise grow without limit.
  if (latency_us_.size() >= 1u << 20)
    latency_us_.erase(latency_us_.begin(),
                      latency_us_.begin() + (1 << 19));
  latency_us_.push_back(us);
}

std::string Server::render_stats() {
  std::vector<double> lat;
  {
    const std::lock_guard lock(lat_m_);
    lat = latency_us_;
  }
  std::sort(lat.begin(), lat.end());
  const auto pct = [&](double q) {
    if (lat.empty()) return 0.0;
    const auto idx = std::min(lat.size() - 1,
                              std::size_t(q * double(lat.size())));
    return lat[idx];
  };
  std::string p = "{\"kind\": \"stats\"";
  p += ", \"requests\": " + std::to_string(n_requests_.load());
  for (const Op op : {Op::Ping, Op::Stats, Op::Shutdown, Op::Sweep, Op::Lint,
                      Op::Verify}) {
    p += ", \"" + std::string(op_name(op)) +
         "\": " + std::to_string(n_by_op_[std::size_t(op)].load());
  }
  p += ", \"errors\": " + std::to_string(n_errors_.load());
  p += ", \"batches\": " + std::to_string(n_batches_.load());
  p += ", \"batched_requests\": " + std::to_string(n_batched_requests_.load());
  p += ", \"cache_entries\": " + std::to_string(cache_.size());
  p += ", \"cache_evictions\": " + std::to_string(cache_.evictions());
  p += ", \"disk_loaded\": " + std::to_string(disk_loaded_.load());
  p += ", \"disk_rejected\": " + std::to_string(disk_rejected_.load());
  p += ", \"latency_us\": {\"count\": " + std::to_string(lat.size());
  p += ", \"p50\": " + json::number(pct(0.50));
  p += ", \"p99\": " + json::number(pct(0.99));
  p += "}}";

  std::string env = "{\"schema_version\": ";
  env += std::to_string(json::kSchemaVersion);
  env += ", \"tool\": \"";
  env += kServeTool;
  env += "\", \"payload\": ";
  env += p;
  env += "}\n";
  return env;
}

} // namespace scpg::serve
