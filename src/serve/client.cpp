#include "serve/client.hpp"

#include "util/error.hpp"
#include "util/subprocess.hpp"

namespace scpg::serve {

Client::Client(const std::string& socket_path)
    : sock_(connect_unix(socket_path)) {
  ignore_sigpipe();
}

Response Client::call(const Request& rq) {
  if (!write_frame(sock_, encode_request(rq)))
    throw Error("serve client: daemon hung up before the request was sent");
  const auto status_frame = read_frame(sock_);
  if (!status_frame)
    throw Error("serve client: daemon hung up before responding");
  Response resp;
  resp.status = decode_status(*status_frame);
  const auto body_frame = read_frame(sock_);
  if (!body_frame)
    throw Error("serve client: daemon hung up before the response body");
  resp.body = std::move(*body_frame);
  return resp;
}

Response call_once(const std::string& socket_path, const Request& rq) {
  Client c(socket_path);
  return c.call(rq);
}

} // namespace scpg::serve
