// Client side of the serve protocol: one connection, any number of
// request/response round trips.  `scpgc client`, the serve tests and
// bench_serve_load all talk through this class so the wire conversation
// (one request frame out, status + body frames back — protocol.hpp) has
// a single implementation.
#pragma once

#include <string>

#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace scpg::serve {

struct Response {
  Status status;
  std::string body; ///< raw CLI-equivalent stdout bytes ("" on error)
};

class Client {
public:
  /// Connects immediately; throws scpg::Error when nothing listens.
  explicit Client(const std::string& socket_path);

  /// One round trip.  Throws scpg::Error if the daemon hangs up before
  /// the response completes (e.g. killed mid-request).
  Response call(const Request& rq);

private:
  Socket sock_;
};

/// Connect, send one request, disconnect.
[[nodiscard]] Response call_once(const std::string& socket_path,
                                 const Request& rq);

} // namespace scpg::serve
