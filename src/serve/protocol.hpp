// Request/response envelopes of the serve wire protocol.
//
// Transport: length-framed messages over a unix socket (util/socket.hpp,
// magic "SCPGS1").  Every frame payload is one PR-5 versioned envelope
// {"schema_version":1,"tool":"scpgc-serve","payload":{...}} — the same
// shape every scpgc artifact uses, so a served response validates with
// the same reader as a CLI dump.
//
// Conversation: the client sends one request frame per operation and
// reads exactly two frames back —
//
//   1. a status envelope {"status":"ok"|"error","kind":<op>,
//      "exit":<int>[,"error":<message>]}, and
//   2. a body frame holding the RAW stdout bytes the equivalent CLI
//      command would have printed ("" when there is no body, e.g. on
//      errors).  Raw, not re-wrapped: the byte-identity contract is on
//      these bytes, and wrapping them in another envelope would force a
//      re-escape round trip.
//
// The "exit" field is the CLI exit code of the equivalent command
// (0 ok, 1 findings/hazards, 2 malformed request, 3 parse error,
// 4 infeasible, 5 flow error, 6 internal); `scpgc client` exits with it
// verbatim, so scripts cannot tell a served run from a local one.
//
// Request kinds: "sweep", "lint" and "verify" carry the exec.hpp request
// structs; "ping" (liveness), "stats" (obs snapshot + latency
// percentiles as the body) and "shutdown" (graceful drain, like SIGTERM)
// carry nothing.
#pragma once

#include <optional>
#include <string>

#include "serve/exec.hpp"

namespace scpg::serve {

inline constexpr std::string_view kServeTool = "scpgc-serve";

enum class Op { Ping, Stats, Shutdown, Sweep, Lint, Verify };

[[nodiscard]] std::string_view op_name(Op op);

/// One decoded request.  Exactly the member matching `op` is meaningful.
struct Request {
  Op op{Op::Ping};
  SweepRequest sweep;
  LintRequest lint;
  VerifyRequest verify;
};

/// Renders the request as one compact envelope (a socket frame payload).
[[nodiscard]] std::string encode_request(const Request& rq);

/// Parses and validates a request frame.  Throws ParseError (source
/// "serve-request") on anything malformed: wrong envelope, unknown kind,
/// missing or ill-typed fields.
[[nodiscard]] Request decode_request(const std::string& frame);

struct Status {
  bool ok{true};
  std::string kind;  ///< op name echoed back
  int exit_code{0};
  std::string error; ///< non-empty iff !ok
};

[[nodiscard]] std::string encode_status(const Status& st);

/// Throws ParseError on a malformed status frame.
[[nodiscard]] Status decode_status(const std::string& frame);

} // namespace scpg::serve
