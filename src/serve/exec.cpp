#include "serve/exec.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "lint/lint.hpp"
#include "netlist/verilog.hpp"
#include "scpg/model.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "verify/campaign.hpp"

namespace scpg::serve {

namespace {

Netlist load_netlist(const Library& lib, const std::string& path) {
  SCPG_REQUIRE(!path.empty(), "request has no input netlist path");
  std::ifstream in(path);
  if (!in) throw Error("cannot open input netlist: " + path);
  return read_verilog(in, lib, {}, path);
}

} // namespace

std::size_t cold_cache_hits(const campaign::CampaignPlan& plan) {
  std::set<std::uint64_t> seen;
  std::size_t dups = 0;
  for (std::size_t row = 0; row < plan.points().size(); ++row)
    if (!seen.insert(plan.experiment->row_digest(row)).second) ++dups;
  return dups;
}

std::string render_sweep_body(const campaign::CampaignPlan& plan,
                              const SweepRequest& rq, const RowLookup& find) {
  const campaign::CampaignSpec& cs = rq.spec;
  const ScpgPowerModel& m = *plan.model;
  std::ostringstream os;
  json::Writer w(os);
  json::write_envelope_open(w, "scpgc-sweep");
  w.key("payload").begin_object();
  w.key("design").value(plan.gated->name());
  w.key("vdd").value(cs.vdd);
  w.key("temp_c").value(cs.temp_c);
  w.key("activity").value(cs.activity);
  w.key("cycles").value(cs.cycles);
  w.key("seed").value(cs.seed);
  w.key("jobs").value(rq.jobs);
  w.key("backend").value(std::string(sim::backend_name(cs.backend)));
  w.key("cache_hits").value(std::uint64_t(cold_cache_hits(plan)));
  w.key("rows").begin_array();
  for (int i = 0; i < cs.points; ++i) {
    const double f_mhz =
        cs.fmax_mhz * std::pow(10.0, -3.0 + 3.0 * double(i) / (cs.points - 1));
    const Frequency f{f_mhz * 1e6};
    const auto dmax = m.duty_for(GatingMode::ScpgMax, f);
    const bool f50 = m.feasible(f, 0.5);
    const engine::PointResult* n = find("n:" + std::to_string(i));
    SCPG_REQUIRE(n != nullptr, "sweep result row n:" + std::to_string(i) +
                                   " missing from the merged table");
    const engine::PointResult* g = find("g:" + std::to_string(i));
    SCPG_REQUIRE((g != nullptr) == f50,
                 "sweep result row g:" + std::to_string(i) +
                     " disagrees with the model's feasibility gate");
    w.begin_object(json::Writer::Style::Compact);
    w.key("f_mhz").value(f_mhz);
    w.key("none_uw").value(in_uW(m.average_power_ungated(f)));
    w.key("scpg50_uw");
    if (f50) w.value(in_uW(m.average_power_gated(f, 0.5)));
    else w.null();
    w.key("scpgmax_uw");
    if (dmax) w.value(in_uW(m.average_power_gated(f, *dmax)));
    else w.null();
    w.key("duty_max");
    if (dmax) w.value(*dmax);
    else w.null();
    w.key("measured_none_uw").value(in_uW(n->avg_power));
    w.key("measured_scpg50_uw");
    if (g != nullptr) w.value(in_uW(g->avg_power));
    else w.null();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  os << '\n';
  return std::move(os).str();
}

ExecResult exec_sweep(const Library& lib, const SweepRequest& rq,
                      engine::ResultCache* cache) {
  const campaign::CampaignPlan plan =
      campaign::build_campaign(lib, rq.spec, rq.jobs, cache);
  const engine::SweepResult res = plan.experiment->run();
  return {render_sweep_body(
              plan, rq, [&](const std::string& tag) { return res.find(tag); }),
          0};
}

ExecResult exec_lint(const Library& lib, const LintRequest& rq) {
  const Netlist nl = load_netlist(lib, rq.netlist_path);
  lint::LintOptions opt;
  opt.clock_port = rq.clock_port;
  opt.sim.corner = Corner{Voltage{rq.vdd}, rq.temp_c};
  opt.duty_high = rq.duty;
  if (rq.has_freq) opt.freq = Frequency{rq.freq_mhz * 1e6};
  std::string list = rq.only;
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string id = list.substr(0, comma);
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
    if (id.empty()) continue;
    bool known = false;
    for (const lint::RuleInfo& r : lint::rules()) known |= r.id == id;
    SCPG_REQUIRE(known, "unknown lint rule '" + id + "'");
    opt.only.push_back(id);
  }

  const lint::LintReport rep = lint::run_lint(nl, opt);
  std::string payload = rep.to_json();
  while (!payload.empty() && payload.back() == '\n') payload.pop_back();
  std::ostringstream os;
  json::write_envelope(os, "scpgc-lint", payload);
  return {std::move(os).str(), rep.clean() ? 0 : 1};
}

ExecResult exec_verify(const Library& lib, const VerifyRequest& rq) {
  Netlist nl = load_netlist(lib, rq.netlist_path);
  const std::string design_name = nl.name();

  bool already_gated = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (nl.cell(CellId{ci}).domain == Domain::Gated) already_gated = true;
  if (!already_gated) {
    ScpgOptions sopt;
    sopt.clock_port = rq.clock_port;
    apply_scpg(nl, sopt);
  }

  verify::CampaignOptions opt;
  opt.f = Frequency{rq.freq_mhz * 1e6};
  opt.duty_high = rq.duty;
  opt.cycles = rq.cycles;
  opt.warmup_cycles = rq.warmup;
  opt.seed = rq.seed;
  opt.sim.corner = Corner{Voltage{rq.vdd}, rq.temp_c};
  opt.clock_port = rq.clock_port;
  std::string list = rq.faults;
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string name = list.substr(0, comma);
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
    if (name.empty()) continue;
    const auto fc = verify::fault_class_from_name(name);
    SCPG_REQUIRE(fc.has_value(), "unknown fault class '" + name + "'");
    opt.faults.push_back({*fc, rq.rate, rq.magnitude});
  }

  // Same static pre-gate the CLI applies: reject broken power intent
  // before burning simulation cycles on it.
  if (rq.lint_gate) {
    lint::LintOptions lopt;
    lopt.clock_port = opt.clock_port;
    lopt.freq = opt.f;
    lopt.duty_high = opt.duty_high;
    lopt.sim = opt.sim;
    lint::enforce_lint(nl, lopt, "verify pre-gate");
  }

  const verify::CampaignResult res = verify::run_campaign(std::move(nl), opt);
  const auto max_report = std::size_t(rq.max_report);
  const auto& reports = res.hazards.reports();

  std::ostringstream os;
  json::Writer w(os);
  json::write_envelope_open(w, "scpgc-verify");
  w.key("payload").begin_object();
  w.key("design").value(design_name);
  w.key("freq_mhz").value(rq.freq_mhz);
  w.key("cycles_run").value(std::int64_t(res.cycles_run));
  w.key("seed").value(std::uint64_t(opt.seed));
  w.key("backend").value("event");
  w.key("injected").begin_object(json::Writer::Style::Compact);
  for (int i = 0; i < verify::kNumFaultClasses; ++i)
    if (res.injected[std::size_t(i)] > 0)
      w.key(verify::fault_class_name(verify::FaultClass(i)))
          .value(res.injected[std::size_t(i)]);
  w.end_object();
  w.key("hazards").begin_object();
  w.key("total").value(std::uint64_t(res.hazards.total()));
  w.key("dropped").value(std::uint64_t(res.hazards.dropped()));
  w.key("by_kind").begin_object(json::Writer::Style::Compact);
  for (int k = 0; k < verify::kNumHazardKinds; ++k)
    if (res.hazards.count(verify::HazardKind(k)) > 0)
      w.key(verify::hazard_kind_name(verify::HazardKind(k)))
          .value(std::uint64_t(res.hazards.count(verify::HazardKind(k))));
  w.end_object();
  w.key("reports").begin_array();
  for (std::size_t i = 0; i < reports.size() && i < max_report; ++i)
    w.value(verify::format_hazard(reports[i]));
  w.end_array();
  w.end_object();
  w.key("clean").value(!res.detected());
  w.end_object();
  w.end_object();
  os << '\n';
  return {std::move(os).str(), res.detected() ? 1 : 0};
}

} // namespace scpg::serve
