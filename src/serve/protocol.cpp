#include "serve/protocol.hpp"

#include "campaign/frame.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace scpg::serve {

namespace {

constexpr const char* kSource = "serve-request";

[[noreturn]] void proto_error(const std::string& what) {
  throw ParseError("serve protocol: " + what, kSource, 1);
}

double num_field(const json::Value& v, const char* key) {
  const json::Value* f = v.get(key);
  if (f == nullptr || !f->is(json::Value::Type::Number))
    proto_error(std::string("missing or non-numeric \"") + key + "\"");
  return f->num;
}

std::string str_field(const json::Value& v, const char* key) {
  const json::Value* f = v.get(key);
  if (f == nullptr || !f->is(json::Value::Type::String))
    proto_error(std::string("missing or non-string \"") + key + "\"");
  return f->str;
}

/// Unwraps {"schema_version":1,"tool":"scpgc-serve","payload":{...}}.
json::Value unwrap(const std::string& frame) {
  json::Value doc;
  try {
    doc = json::parse(frame);
  } catch (const ParseError& e) {
    proto_error(std::string("frame JSON invalid: ") + e.what());
  }
  const json::Value* ver = doc.get("schema_version");
  if (ver == nullptr || !ver->is(json::Value::Type::Number) ||
      int(ver->num) != json::kSchemaVersion)
    proto_error("wrong or missing schema_version");
  const json::Value* tool = doc.get("tool");
  if (tool == nullptr || !tool->is(json::Value::Type::String) ||
      tool->str != kServeTool)
    proto_error("envelope tool is not \"" + std::string(kServeTool) + "\"");
  const json::Value* payload = doc.get("payload");
  if (payload == nullptr || !payload->is(json::Value::Type::Object))
    proto_error("no payload object");
  return *payload;
}

std::string envelope(const std::string& payload) {
  std::string s = "{\"schema_version\": ";
  s += std::to_string(json::kSchemaVersion);
  s += ", \"tool\": \"";
  s += kServeTool;
  s += "\", \"payload\": ";
  s += payload;
  s += "}";
  return s;
}

void append_kv(std::string& s, const char* key, const std::string& str) {
  s += ", \"";
  s += key;
  s += "\": ";
  json::append_quoted(s, str);
}

void append_kv(std::string& s, const char* key, double num) {
  s += ", \"";
  s += key;
  s += "\": ";
  s += json::number(num);
}

void append_kv(std::string& s, const char* key, int num) {
  s += ", \"";
  s += key;
  s += "\": ";
  s += std::to_string(num);
}

} // namespace

std::string_view op_name(Op op) {
  switch (op) {
    case Op::Ping: return "ping";
    case Op::Stats: return "stats";
    case Op::Shutdown: return "shutdown";
    case Op::Sweep: return "sweep";
    case Op::Lint: return "lint";
    case Op::Verify: return "verify";
  }
  return "?";
}

std::string encode_request(const Request& rq) {
  std::string p = "{\"kind\": ";
  json::append_quoted(p, std::string(op_name(rq.op)));
  switch (rq.op) {
    case Op::Ping:
    case Op::Stats:
    case Op::Shutdown:
      break;
    case Op::Sweep:
      append_kv(p, "jobs", rq.sweep.jobs);
      p += ", \"spec\": " + campaign::to_json(rq.sweep.spec);
      break;
    case Op::Lint: {
      const LintRequest& l = rq.lint;
      append_kv(p, "netlist", l.netlist_path);
      append_kv(p, "vdd", l.vdd);
      append_kv(p, "temp_c", l.temp_c);
      append_kv(p, "clock", l.clock_port);
      append_kv(p, "duty", l.duty);
      if (l.has_freq) append_kv(p, "freq_mhz", l.freq_mhz);
      append_kv(p, "only", l.only);
      break;
    }
    case Op::Verify: {
      const VerifyRequest& v = rq.verify;
      append_kv(p, "netlist", v.netlist_path);
      append_kv(p, "vdd", v.vdd);
      append_kv(p, "temp_c", v.temp_c);
      append_kv(p, "clock", v.clock_port);
      append_kv(p, "faults", v.faults);
      append_kv(p, "rate", v.rate);
      append_kv(p, "magnitude", v.magnitude);
      append_kv(p, "freq_mhz", v.freq_mhz);
      append_kv(p, "duty", v.duty);
      append_kv(p, "cycles", v.cycles);
      append_kv(p, "warmup", v.warmup);
      append_kv(p, "max_report", v.max_report);
      append_kv(p, "lint", v.lint_gate ? 1 : 0);
      // Hex like the campaign spec: 64-bit seeds must not round through
      // a JSON double.
      append_kv(p, "seed", campaign::hex64(v.seed));
      break;
    }
  }
  p += "}";
  return envelope(p);
}

Request decode_request(const std::string& frame) {
  const json::Value payload = unwrap(frame);
  const std::string kind = str_field(payload, "kind");
  Request rq;
  if (kind == "ping") {
    rq.op = Op::Ping;
  } else if (kind == "stats") {
    rq.op = Op::Stats;
  } else if (kind == "shutdown") {
    rq.op = Op::Shutdown;
  } else if (kind == "sweep") {
    rq.op = Op::Sweep;
    rq.sweep.jobs = int(num_field(payload, "jobs"));
    const json::Value* spec = payload.get("spec");
    if (spec == nullptr) proto_error("sweep request has no \"spec\"");
    rq.sweep.spec = campaign::spec_from_json(*spec, kSource, 1);
  } else if (kind == "lint") {
    rq.op = Op::Lint;
    LintRequest& l = rq.lint;
    l.netlist_path = str_field(payload, "netlist");
    l.vdd = num_field(payload, "vdd");
    l.temp_c = num_field(payload, "temp_c");
    l.clock_port = str_field(payload, "clock");
    l.duty = num_field(payload, "duty");
    if (payload.get("freq_mhz") != nullptr) {
      l.has_freq = true;
      l.freq_mhz = num_field(payload, "freq_mhz");
    }
    l.only = str_field(payload, "only");
  } else if (kind == "verify") {
    rq.op = Op::Verify;
    VerifyRequest& v = rq.verify;
    v.netlist_path = str_field(payload, "netlist");
    v.vdd = num_field(payload, "vdd");
    v.temp_c = num_field(payload, "temp_c");
    v.clock_port = str_field(payload, "clock");
    v.faults = str_field(payload, "faults");
    v.rate = num_field(payload, "rate");
    v.magnitude = num_field(payload, "magnitude");
    v.freq_mhz = num_field(payload, "freq_mhz");
    v.duty = num_field(payload, "duty");
    v.cycles = int(num_field(payload, "cycles"));
    v.warmup = int(num_field(payload, "warmup"));
    v.max_report = int(num_field(payload, "max_report"));
    v.lint_gate = num_field(payload, "lint") != 0;
    v.seed =
        campaign::parse_hex64(str_field(payload, "seed"), kSource, 1);
  } else {
    proto_error("unknown request kind \"" + kind + "\"");
  }
  return rq;
}

std::string encode_status(const Status& st) {
  std::string p = "{\"status\": ";
  json::append_quoted(p, st.ok ? "ok" : "error");
  append_kv(p, "kind", st.kind);
  append_kv(p, "exit", st.exit_code);
  if (!st.ok) append_kv(p, "error", st.error);
  p += "}";
  return envelope(p);
}

Status decode_status(const std::string& frame) {
  const json::Value payload = unwrap(frame);
  Status st;
  const std::string status = str_field(payload, "status");
  if (status != "ok" && status != "error")
    proto_error("status is neither ok nor error");
  st.ok = status == "ok";
  st.kind = str_field(payload, "kind");
  st.exit_code = int(num_field(payload, "exit"));
  if (!st.ok) st.error = str_field(payload, "error");
  return st;
}

} // namespace scpg::serve
