#include "place/placement.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace scpg {

namespace {

struct Grid {
  int side{0};
  double site{0};

  [[nodiscard]] Point centre(int slot) const {
    const int row = slot / side, col = slot % side;
    return {(col + 0.5) * site, (row + 0.5) * site};
  }
  [[nodiscard]] double half() const { return side * site * 0.5; }
};

/// Distance of a slot's centre from the core centre (for region splits).
double radius(const Grid& g, int slot) {
  const Point p = g.centre(slot);
  const double dx = p.x - g.half(), dy = p.y - g.half();
  return std::max(std::abs(dx), std::abs(dy)); // Chebyshev: square rings
}

/// Pin positions of a net: driver + sinks + port pads.
struct PinsOfNet {
  const Netlist* nl;
  const std::vector<Point>* cell_pos;
  const std::vector<Point>* port_pos;

  template <class Fn>
  void for_each(NetId id, Fn&& fn) const {
    const Net& n = nl->net(id);
    if (n.driven_by_cell()) fn((*cell_pos)[n.driver_cell.v]);
    if (n.driven_by_port()) fn((*port_pos)[n.driver_port.v]);
    for (const PinRef& s : n.sinks) fn((*cell_pos)[s.cell.v]);
    for (PortId p : n.sink_ports) fn((*port_pos)[p.v]);
  }
};

double hpwl_of(const PinsOfNet& pins, NetId id) {
  double xmin = 1e18, xmax = -1e18, ymin = 1e18, ymax = -1e18;
  bool any = false;
  pins.for_each(id, [&](const Point& p) {
    any = true;
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  });
  return any ? (xmax - xmin) + (ymax - ymin) : 0.0;
}

} // namespace

Placement place(const Netlist& nl, const PlaceOptions& opt) {
  SCPG_REQUIRE(opt.utilization > 0.05 && opt.utilization <= 1.0,
               "utilization must be in (0.05, 1]");
  SCPG_REQUIRE(opt.site_um > 0, "site pitch must be positive");
  const std::size_t ncells = nl.num_cells();
  SCPG_REQUIRE(ncells > 0, "nothing to place");

  Grid g;
  g.site = opt.site_um;
  g.side = int(std::ceil(std::sqrt(double(ncells) / opt.utilization)));
  const int nslots = g.side * g.side;

  // Slot order: for CenterGated, slots sorted centre-out so the gated
  // cells take the innermost ring and the always-on cells the outer ring.
  std::vector<int> slot_order(static_cast<std::size_t>(nslots));
  for (int i = 0; i < nslots; ++i) slot_order[std::size_t(i)] = i;
  Rng rng(opt.seed);
  // Deterministic shuffle.
  for (std::size_t i = slot_order.size(); i > 1; --i)
    std::swap(slot_order[i - 1], slot_order[rng.below(i)]);
  if (opt.strategy == DomainStrategy::CenterGated) {
    std::stable_sort(slot_order.begin(), slot_order.end(),
                     [&](int a, int b) { return radius(g, a) < radius(g, b); });
  }

  // Region tag per cell: 0 = gated (centre), 1 = always-on.  With
  // Ignore, everything is region 1.
  std::vector<int> region(ncells, 1);
  std::size_t n_gated = 0;
  if (opt.strategy == DomainStrategy::CenterGated) {
    for (std::uint32_t ci = 0; ci < ncells; ++ci)
      if (nl.cell(CellId{ci}).domain == Domain::Gated) {
        region[ci] = 0;
        ++n_gated;
      }
  }

  // Initial assignment: gated cells take the first (innermost) slots.
  std::vector<int> slot_of(ncells, -1);
  {
    std::size_t next_inner = 0, next_outer = n_gated;
    for (std::uint32_t ci = 0; ci < ncells; ++ci) {
      const std::size_t idx =
          region[ci] == 0 ? next_inner++ : next_outer++;
      slot_of[ci] = slot_order[idx];
    }
  }

  Placement out;
  out.width_um = out.height_um = g.side * g.site;
  out.pos.resize(ncells);
  auto sync_pos = [&] {
    for (std::uint32_t ci = 0; ci < ncells; ++ci)
      out.pos[ci] = g.centre(slot_of[ci]);
  };
  sync_pos();

  // Port pads spread along the boundary.
  std::vector<Point> port_pos(nl.num_ports());
  const double perim = 4.0 * g.side * g.site;
  for (std::uint32_t pi = 0; pi < nl.num_ports(); ++pi) {
    const double d = perim * double(pi) / double(nl.num_ports());
    const double side_len = g.side * g.site;
    double x = 0, y = 0;
    if (d < side_len) {
      x = d;
    } else if (d < 2 * side_len) {
      x = side_len;
      y = d - side_len;
    } else if (d < 3 * side_len) {
      x = 3 * side_len - d;
      y = side_len;
    } else {
      y = 4 * side_len - d;
    }
    port_pos[pi] = {x, y};
  }

  const PinsOfNet pins{&nl, &out.pos, &port_pos};
  out.initial_hpwl_um = 0;
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni)
    out.initial_hpwl_um += hpwl_of(pins, NetId{ni});

  // Nets touching each cell (inputs + outputs, deduplicated).
  std::vector<std::vector<NetId>> cell_nets(ncells);
  for (std::uint32_t ci = 0; ci < ncells; ++ci) {
    const Cell& c = nl.cell(CellId{ci});
    std::vector<NetId>& v = cell_nets[ci];
    v.insert(v.end(), c.inputs.begin(), c.inputs.end());
    v.insert(v.end(), c.outputs.begin(), c.outputs.end());
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // Greedy improvement: random same-region pair swaps, accept on HPWL
  // decrease.
  auto cost_around = [&](std::uint32_t a, std::uint32_t b) {
    double c = 0;
    for (NetId n : cell_nets[a]) c += hpwl_of(pins, n);
    for (NetId n : cell_nets[b]) {
      // Avoid double-counting shared nets.
      if (!std::binary_search(cell_nets[a].begin(), cell_nets[a].end(), n))
        c += hpwl_of(pins, n);
    }
    return c;
  };

  const std::uint64_t attempts =
      std::uint64_t(opt.passes) * std::uint64_t(ncells);
  for (std::uint64_t it = 0; it < attempts; ++it) {
    const std::uint32_t a = std::uint32_t(rng.below(ncells));
    const std::uint32_t b = std::uint32_t(rng.below(ncells));
    if (a == b || region[a] != region[b]) continue;
    const double before = cost_around(a, b);
    std::swap(slot_of[a], slot_of[b]);
    out.pos[a] = g.centre(slot_of[a]);
    out.pos[b] = g.centre(slot_of[b]);
    const double after = cost_around(a, b);
    if (after > before) { // revert
      std::swap(slot_of[a], slot_of[b]);
      out.pos[a] = g.centre(slot_of[a]);
      out.pos[b] = g.centre(slot_of[b]);
    }
  }

  out.hpwl_um = 0;
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni)
    out.hpwl_um += hpwl_of(pins, NetId{ni});

  // Legality: one cell per slot.
  std::vector<char> used(static_cast<std::size_t>(nslots), 0);
  for (std::uint32_t ci = 0; ci < ncells; ++ci) {
    SCPG_ASSERT(slot_of[ci] >= 0 && slot_of[ci] < nslots);
    SCPG_ASSERT(!used[std::size_t(slot_of[ci])]);
    used[std::size_t(slot_of[ci])] = 1;
  }
  return out;
}

double net_hpwl_um(const Netlist& nl, const Placement& p, NetId net) {
  // Port pads are not stored in Placement; rebuild them exactly as
  // place() laid them out along the boundary.
  std::vector<Point> port_pos(nl.num_ports());
  const double perim = 2.0 * (p.width_um + p.height_um);
  for (std::uint32_t pi = 0; pi < nl.num_ports(); ++pi) {
    const double d = perim * double(pi) / double(nl.num_ports());
    double x = 0, y = 0;
    if (d < p.width_um) {
      x = d;
    } else if (d < p.width_um + p.height_um) {
      x = p.width_um;
      y = d - p.width_um;
    } else if (d < 2 * p.width_um + p.height_um) {
      x = 2 * p.width_um + p.height_um - d;
      y = p.height_um;
    } else {
      y = perim - d;
    }
    port_pos[pi] = {x, y};
  }
  const PinsOfNet pins{&nl, &p.pos, &port_pos};
  return hpwl_of(pins, net);
}

double total_hpwl_um(const Netlist& nl, const Placement& p) {
  double t = 0;
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni)
    t += net_hpwl_um(nl, p, NetId{ni});
  return t;
}

double crossing_hpwl_um(const Netlist& nl, const Placement& p) {
  double t = 0;
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const Net& n = nl.net(NetId{ni});
    if (!n.driven_by_cell()) continue;
    const bool drv_gated =
        nl.cell(n.driver_cell).domain == Domain::Gated;
    bool crosses = false;
    for (const PinRef& s : n.sinks)
      if ((nl.cell(s.cell).domain == Domain::Gated) != drv_gated)
        crosses = true;
    if (crosses) t += net_hpwl_um(nl, p, NetId{ni});
  }
  return t;
}

double gated_bbox_area_um2(const Netlist& nl, const Placement& p) {
  double xmin = 1e18, xmax = -1e18, ymin = 1e18, ymax = -1e18;
  bool any = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    if (nl.cell(CellId{ci}).domain != Domain::Gated) continue;
    any = true;
    xmin = std::min(xmin, p.pos[ci].x);
    xmax = std::max(xmax, p.pos[ci].x);
    ymin = std::min(ymin, p.pos[ci].y);
    ymax = std::max(ymax, p.pos[ci].y);
  }
  return any ? (xmax - xmin) * (ymax - ymin) : 0.0;
}

void apply_wire_caps(Netlist& nl, const Placement& p,
                     Capacitance cap_per_um) {
  SCPG_REQUIRE(p.pos.size() == nl.num_cells(),
               "placement does not match this netlist");
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const double len = net_hpwl_um(nl, p, NetId{ni});
    nl.set_net_wire_cap(NetId{ni}, Capacitance{cap_per_um.v * len});
  }
}

} // namespace scpg
