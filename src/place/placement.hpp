// Placement (lite) — the paper's "Design Planning" step (Fig 5).
//
// The paper recommends locating the power-gated combinational domain in
// the CENTRE of the die "to alleviate problems with routing congestion
// between the combinational logic and the sequential logic domains".
// This module makes that recommendation measurable:
//
//   * place() assigns every cell to a site on a uniform grid and runs a
//     greedy swap optimiser on half-perimeter wire length (HPWL);
//   * DomainStrategy::CenterGated constrains the gated domain to a
//     central region with the always-on cells in the surrounding ring
//     (the paper's floorplan); Ignore mixes everything;
//   * apply_wire_caps() turns per-net HPWL into routing capacitance and
//     annotates the netlist, making STA, the power engines and the
//     simulator placement-aware.
//
// Ports are modelled as fixed pads spread around the core boundary.
// Macros occupy a single site (their internal area is not modelled).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace scpg {

struct Point {
  double x{0};
  double y{0};
};

enum class DomainStrategy {
  Ignore,      ///< one mixed region
  CenterGated, ///< gated domain clustered in the die centre (paper)
};

struct PlaceOptions {
  DomainStrategy strategy{DomainStrategy::Ignore};
  double utilization{0.7}; ///< cells per site fraction
  double site_um{2.6};     ///< site pitch in micrometres
  int passes{25};          ///< swap attempts = passes * num_cells
  std::uint64_t seed{1};
};

struct Placement {
  std::vector<Point> pos; ///< per cell, micrometres (site centres)
  double width_um{0};
  double height_um{0};
  double initial_hpwl_um{0}; ///< before optimisation
  double hpwl_um{0};         ///< after optimisation
};

/// Places every cell of the netlist.
[[nodiscard]] Placement place(const Netlist& nl,
                              const PlaceOptions& opt = {});

/// Half-perimeter wire length of one net under a placement (pin positions
/// are cell centres; port pads count).
[[nodiscard]] double net_hpwl_um(const Netlist& nl, const Placement& p,
                                 NetId net);

/// Sum of net_hpwl_um over all nets.
[[nodiscard]] double total_hpwl_um(const Netlist& nl, const Placement& p);

/// HPWL restricted to nets that cross the gated/always-on boundary.
[[nodiscard]] double crossing_hpwl_um(const Netlist& nl,
                                      const Placement& p);

/// Bounding-box area of the gated domain's cells, um^2.  This is the
/// extent the virtual-rail network (and the header placement) must
/// cover — the quantity the paper's centre-placement keeps compact.
[[nodiscard]] double gated_bbox_area_um2(const Netlist& nl,
                                         const Placement& p);

/// Annotates every net's routing capacitance as cap_per_um * HPWL (plus
/// the pin caps net_load() already adds).  ~0.18 fF/um is a typical 90 nm
/// mid-layer value.
void apply_wire_caps(Netlist& nl, const Placement& p,
                     Capacitance cap_per_um = Capacitance{0.18e-15});

} // namespace scpg
