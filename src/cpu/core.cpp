#include "cpu/core.hpp"

#include "gen/arith.hpp"
#include "gen/components.hpp"
#include "netlist/builder.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace scpg::cpu {

using namespace scpg::literals;

namespace {

constexpr std::uint32_t kRamWords = 1u << kAddrBits;

std::uint32_t bus_to_u32(std::span<const Logic> in, std::size_t base,
                         int bits, bool& known) {
  std::uint32_t v = 0;
  for (int i = 0; i < bits; ++i) {
    const Logic b = in[base + std::size_t(i)];
    if (!is_known(b)) {
      known = false;
      return 0;
    }
    if (b == Logic::L1) v |= 1u << i;
  }
  return v;
}

void u32_to_bus(std::uint32_t v, std::span<Logic> out, int bits) {
  for (int i = 0; i < bits; ++i)
    out[std::size_t(i)] = from_bool((v >> i) & 1);
}

void x_bus(std::span<Logic> out, int bits) {
  for (int i = 0; i < bits; ++i) out[std::size_t(i)] = Logic::X;
}

/// Asynchronous-read instruction ROM: inputs addr[kAddrBits], outputs 16.
class RomModel final : public MacroModel {
public:
  explicit RomModel(std::vector<std::uint16_t> image)
      : image_(std::move(image)) {}

  void eval(std::span<const Logic> in, std::span<Logic> out) override {
    bool known = true;
    const std::uint32_t addr = bus_to_u32(in, 0, kAddrBits, known);
    if (!known) {
      x_bus(out, kInstrBits);
      return;
    }
    const std::uint16_t w =
        addr < image_.size() ? image_[addr] : enc_nop();
    u32_to_bus(w, out, kInstrBits);
  }

private:
  std::vector<std::uint16_t> image_;
};

} // namespace

RamModel::RamModel() : mem_(kRamWords, 0) {}

void RamModel::reset() { std::fill(mem_.begin(), mem_.end(), 0); }

std::uint32_t RamModel::word(std::uint32_t addr) const {
  SCPG_REQUIRE(addr < kRamWords, "RAM address out of range");
  return mem_[addr];
}

void RamModel::set_word(std::uint32_t addr, std::uint32_t v) {
  SCPG_REQUIRE(addr < kRamWords, "RAM address out of range");
  mem_[addr] = v;
}

// Pin map: in[0]=CK, in[1]=WE, in[2..13]=addr, in[14..45]=wdata;
// out[0..31]=rdata (asynchronous read).
void RamModel::eval(std::span<const Logic> in, std::span<Logic> out) {
  bool known = true;
  const std::uint32_t addr = bus_to_u32(in, 2, kAddrBits, known);
  if (!known) {
    x_bus(out, kWordBits);
    return;
  }
  u32_to_bus(mem_[addr], out, kWordBits);
}

void RamModel::clock_edge(std::span<const Logic> in) {
  const Logic we = in[1];
  if (we != Logic::L1) return;
  bool known = true;
  const std::uint32_t addr = bus_to_u32(in, 2, kAddrBits, known);
  const std::uint32_t data = bus_to_u32(in, 14, kWordBits, known);
  SCPG_REQUIRE(known,
               "RAM write with unknown address or data (missing isolation?)");
  mem_[addr] = data;
}

Scm0 make_scm0(const Library& lib, std::vector<std::uint16_t> rom_image) {
  SCPG_REQUIRE(!rom_image.empty(), "empty program image");
  SCPG_REQUIRE(rom_image.size() <= (1u << kAddrBits), "program too large");

  Netlist nl("scm0", lib);
  // The CPU datapath synthesises at X2 drive to meet the paper's 10 MHz
  // top operating point at 0.6 V (the multiplier is fine at X1).
  Builder b(nl, 2);

  const NetId clk = b.input("clk");
  const NetId rst_n = b.input("rst_n");

  // --- architectural state (always-on domain after the SCPG transform) ---
  // Forward-declared next-state nets.
  Bus pc_d(kPcBits);
  for (int i = 0; i < kPcBits; ++i)
    pc_d[std::size_t(i)] = nl.add_net("pc_d[" + std::to_string(i) + "]");
  const NetId halted_d = nl.add_net("halted_d");

  Bus pc(kPcBits);
  for (int i = 0; i < kPcBits; ++i) {
    pc[std::size_t(i)] = nl.new_net();
    nl.add_cell("pc_ff_" + std::to_string(i), lib.pick(CellKind::DffR, 1),
                {pc_d[std::size_t(i)], clk, rst_n}, pc[std::size_t(i)]);
  }
  const NetId halted = nl.new_net();
  nl.add_cell("halt_ff", lib.pick(CellKind::DffR, 1), {halted_d, clk, rst_n},
              halted);

  // --- instruction fetch ---------------------------------------------------
  MacroSpec rom_spec;
  rom_spec.type_name = "ROM4KX16";
  rom_spec.num_inputs = kAddrBits;
  rom_spec.num_outputs = kInstrBits;
  rom_spec.access_delay = 1.5_ns;
  rom_spec.input_cap = 1.5_fF;
  // The paper measures core power only; memories are external (zero-power
  // behavioural stand-ins, DESIGN.md §2).
  {
    Fnv1a ih;
    for (const std::uint16_t w : rom_image) ih.mix(std::uint64_t(w));
    rom_spec.content_digest = ih.digest();
  }
  rom_spec.make_model = [image = std::move(rom_image)] {
    return std::make_unique<RomModel>(image);
  };
  const auto rom_idx = nl.add_macro_spec(std::move(rom_spec));
  Bus instr(kInstrBits);
  for (int i = 0; i < kInstrBits; ++i)
    instr[std::size_t(i)] = nl.add_net("instr[" + std::to_string(i) + "]");
  std::vector<NetId> rom_in(pc.begin(), pc.begin() + kAddrBits);
  const CellId rom_cell = nl.add_macro_cell("u_rom", rom_idx, rom_in, instr);

  // --- decode ----------------------------------------------------------------
  const Bus op{instr[12], instr[13], instr[14], instr[15]};
  const Bus rd{instr[9], instr[10], instr[11]};
  const Bus ra{instr[6], instr[7], instr[8]};
  const Bus rb{instr[3], instr[4], instr[5]};
  const Bus funct{instr[0], instr[1], instr[2]};

  const Bus op1h = gen::decoder(b, op); // 16 one-hot lines, 12 used
  const NetId is_alu = op1h[std::size_t(Op::Alu)];
  const NetId is_addi = op1h[std::size_t(Op::Addi)];
  const NetId is_movi = op1h[std::size_t(Op::Movi)];
  const NetId is_ld = op1h[std::size_t(Op::Ld)];
  const NetId is_st = op1h[std::size_t(Op::St)];
  const NetId is_beq = op1h[std::size_t(Op::Beq)];
  const NetId is_bne = op1h[std::size_t(Op::Bne)];
  const NetId is_bltu = op1h[std::size_t(Op::Bltu)];
  const NetId is_jal = op1h[std::size_t(Op::Jal)];
  const NetId is_jr = op1h[std::size_t(Op::Jr)];
  const NetId is_halt = op1h[std::size_t(Op::Halt)];

  const NetId zero = b.tie_lo();
  auto zext = [&](const Bus& x, int width) {
    Bus y(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
      y[std::size_t(i)] =
          std::size_t(i) < x.size() ? x[std::size_t(i)] : zero;
    return y;
  };
  auto sext = [&](const Bus& x, int width) {
    Bus y(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
      y[std::size_t(i)] =
          std::size_t(i) < x.size() ? x[std::size_t(i)] : x.back();
    return y;
  };

  const Bus imm6{instr[0], instr[1], instr[2], instr[3], instr[4], instr[5]};
  const Bus imm9{instr[0], instr[1], instr[2], instr[3], instr[4],
                 instr[5], instr[6], instr[7], instr[8]};
  const Bus boff6{instr[0], instr[1], instr[2], instr[9], instr[10],
                  instr[11]};

  // --- register file -----------------------------------------------------------
  const NetId not_halted = b.NOT(halted);
  // Write enable and data are wired after the datapath; pre-declare nets.
  const NetId wen = nl.add_net("rf_wen");
  Bus wdata(kWordBits);
  for (int i = 0; i < kWordBits; ++i)
    wdata[std::size_t(i)] = nl.add_net("rf_wdata[" + std::to_string(i) + "]");
  // Store reads the rd register on port B.
  const Bus raddr_b = b.mux_bus(rb, rd, is_st);
  const gen::RegisterFile rf = gen::register_file(
      b, kNumRegs, kWordBits, clk, rd, wdata, wen, ra, raddr_b);
  const Bus& a_val = rf.rd_a;
  const Bus& b_val = rf.rd_b;

  // --- ALU ----------------------------------------------------------------------
  const Bus f1h = gen::decoder(b, funct);
  const NetId f_sub = f1h[std::size_t(AluFn::Sub)];
  const NetId sub_sel = b.AND(is_alu, f_sub);

  const Bus imm6s32 = sext(imm6, kWordBits);
  const Bus imm6z32 = zext(imm6, kWordBits);
  const NetId use_imm6z = b.OR(is_ld, is_st);
  Bus opb = b.mux_bus(b_val, imm6s32, is_addi);
  opb = b.mux_bus(opb, imm6z32, use_imm6z);

  const Bus opb_inv = b.mux_bus(opb, b.not_bus(opb), sub_sel);
  const auto add = gen::carry_select_add(b, a_val, opb_inv, sub_sel, 4);

  const Bus and_b = b.and_bus(a_val, b_val);
  const Bus or_b = b.or_bus(a_val, b_val);
  const Bus xor_b = b.xor_bus(a_val, b_val);
  const Bus shamt{b_val[0], b_val[1], b_val[2], b_val[3], b_val[4]};
  const Bus shl = gen::shift_left(b, a_val, shamt);
  const Bus shr = gen::shift_right(b, a_val, shamt);

  // Comparator shared by BLTU / SLTU and the equality branches.
  const auto cmp = gen::compare(b, a_val, b_val);
  const Bus slt_bus = zext(Bus{cmp.lt}, kWordBits);

  const Bus alu_y = gen::mux_tree(
      b, {add.sum, add.sum, and_b, or_b, xor_b, shl, shr, slt_bus}, funct);

  // --- data memory -----------------------------------------------------------
  MacroSpec ram_spec;
  ram_spec.type_name = "RAM4KX32";
  ram_spec.num_inputs = 2 + kAddrBits + kWordBits;
  ram_spec.num_outputs = kWordBits;
  ram_spec.has_clock = true;
  ram_spec.access_delay = 1.8_ns;
  ram_spec.input_cap = 1.5_fF;
  ram_spec.make_model = [] { return std::make_unique<RamModel>(); };
  const auto ram_idx = nl.add_macro_spec(std::move(ram_spec));

  const NetId ram_we = b.AND(is_st, not_halted);
  std::vector<NetId> ram_in;
  ram_in.push_back(clk);
  ram_in.push_back(ram_we);
  for (int i = 0; i < kAddrBits; ++i)
    ram_in.push_back(add.sum[std::size_t(i)]);
  for (int i = 0; i < kWordBits; ++i)
    ram_in.push_back(b_val[std::size_t(i)]);
  Bus rdata(kWordBits);
  for (int i = 0; i < kWordBits; ++i)
    rdata[std::size_t(i)] = nl.add_net("rdata[" + std::to_string(i) + "]");
  const CellId ram_cell = nl.add_macro_cell("u_ram", ram_idx, ram_in, rdata);

  // --- next PC -----------------------------------------------------------------
  const Bus pc1 = gen::increment(b, pc);
  const Bus boff16 = sext(boff6, kPcBits);
  const Bus imm9s16 = sext(imm9, kPcBits);
  const Bus br_target = gen::ripple_add(b, pc1, boff16).sum;
  const Bus jal_target = gen::ripple_add(b, pc1, imm9s16).sum;
  Bus jr_target(kPcBits);
  for (int i = 0; i < kPcBits; ++i)
    jr_target[std::size_t(i)] = a_val[std::size_t(i)];

  const NetId taken = b.OR3(b.AND(is_beq, cmp.eq),
                            b.AND(is_bne, b.NOT(cmp.eq)),
                            b.AND(is_bltu, cmp.lt));
  Bus np = b.mux_bus(pc1, br_target, taken);
  np = b.mux_bus(np, jal_target, is_jal);
  np = b.mux_bus(np, jr_target, is_jr);
  const NetId hold_pc = b.OR(is_halt, halted);
  np = b.mux_bus(np, pc, hold_pc);
  for (int i = 0; i < kPcBits; ++i) {
    const SpecId buf = lib.pick(CellKind::Buf, 1);
    nl.add_cell("pc_d_buf_" + std::to_string(i), buf,
                {np[std::size_t(i)]}, pc_d[std::size_t(i)]);
  }

  // --- write-back -----------------------------------------------------------------
  const Bus pc1z32 = zext(pc1, kWordBits);
  Bus result = b.mux_bus(alu_y, add.sum, is_addi);
  result = b.mux_bus(result, zext(imm9, kWordBits), is_movi);
  result = b.mux_bus(result, rdata, is_ld);
  result = b.mux_bus(result, pc1z32, is_jal);
  for (int i = 0; i < kWordBits; ++i) {
    const SpecId buf = lib.pick(CellKind::Buf, 1);
    nl.add_cell("wdata_buf_" + std::to_string(i), buf,
                {result[std::size_t(i)]}, wdata[std::size_t(i)]);
  }

  const NetId writes_rd =
      b.OR(b.OR3(is_alu, is_addi, is_movi), b.OR(is_ld, is_jal));
  {
    const SpecId and2 = lib.pick(CellKind::And2, 1);
    nl.add_cell("rf_wen_gate", and2, {writes_rd, not_halted}, wen);
  }

  // --- halt flag ------------------------------------------------------------------
  {
    const SpecId or2 = lib.pick(CellKind::Or2, 1);
    nl.add_cell("halt_or", or2, {halted, is_halt}, halted_d);
  }

  // --- observation ports ------------------------------------------------------------
  b.output_bus("pc", pc);
  b.output("halted", halted);

  nl.check();
  return Scm0{std::move(nl), rom_cell, ram_cell};
}

ScpgOptions scm0_scpg_options() {
  ScpgOptions opt;
  opt.header_drive = 4; // the paper's Cortex-M0 sizing result
  opt.buffer_drive = 4; // register-file Q nets fan out widely
  return opt;
}

SimConfig scm0_sim_config(Corner corner) {
  SimConfig cfg;
  cfg.corner = corner;
  cfg.rail_cap_factor = 1.2;
  cfg.crowbar_per_cell = Energy{1.5e-15};
  return cfg;
}

} // namespace scpg::cpu
