// Two-pass assembler for the SCM0 ISA.
//
// Syntax (one statement per line; ';' or '#' start a comment):
//
//   label:                     ; define a label
//       movi  r1, 42           ; immediates in decimal or 0x hex
//       addi  r1, r1, -1
//       add   r2, r1, r3       ; ALU ops: add sub and or xor lsl lsr sltu
//       ld    r4, [r2+3]       ; word load / store
//       st    r4, [r2+3]
//       beq   r1, r0, done     ; branch targets are labels or numbers
//       jal   r7, subroutine
//       jr    r7
//       halt
//       nop
//   .org 16                    ; set the assembly origin (words)
//   .word 0x1234               ; literal data word
//
// Branch/JAL offsets are computed relative to pc+1 (the hardware adds the
// offset to the already-incremented pc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/isa.hpp"

namespace scpg::cpu {

/// Assembles a program; throws ParseError with the source name and line
/// number on any error (unknown mnemonic, bad register, out-of-range
/// immediate or branch distance, duplicate/undefined label).  `name`
/// identifies the program (file path) in diagnostics.
[[nodiscard]] std::vector<std::uint16_t> assemble(
    const std::string& source, const std::string& name = "<asm>");

} // namespace scpg::cpu
