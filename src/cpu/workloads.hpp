// Benchmark programs for SCM0.
//
// dhrystone_like() mirrors the mix the paper drives through the Cortex-M0
// (Dhrystone: string copy/compare, integer arithmetic, record assignment,
// branching) so that the switching-activity methodology of §III-B can be
// reproduced: run the workload, group activity into 10-cycle vector
// groups (Fig 7), and power the min/avg/max groups through the detailed
// simulator.
#pragma once

#include <string>

namespace scpg::cpu::workloads {

/// Dhrystone-flavoured mixed workload (~4k cycles for `iterations` ~ 12):
/// per iteration - copy a 12-word string, compare it against a reference,
/// do an arithmetic block (sums, shifts, xors), update a 4-field record,
/// and branch on the results.  Ends with HALT; the checksum lands in r7
/// and memory[63].
[[nodiscard]] std::string dhrystone_like(int iterations = 12);

/// Iterative Fibonacci; fib(n) left in r2 and memory[60].
[[nodiscard]] std::string fibonacci(int n);

/// Bubble-sorts `count` pseudo-random words in memory[0..count);
/// (used by tests as an ISS-vs-gate-level stressor).
[[nodiscard]] std::string bubble_sort(int count);

/// Tight arithmetic loop with high datapath activity (max-activity probe).
[[nodiscard]] std::string arith_burst(int iterations);

/// Idle spin loop with almost no datapath activity (min-activity probe).
[[nodiscard]] std::string idle_spin(int iterations);

} // namespace scpg::cpu::workloads
