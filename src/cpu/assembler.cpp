#include "cpu/assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>

#include "util/error.hpp"

namespace scpg::cpu {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (char ch : line) {
    if (ch == ';' || ch == '#') break;
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
      flush();
    } else if (ch == ':' || ch == '[' || ch == ']' || ch == '+') {
      flush();
      out.push_back(std::string(1, ch));
    } else {
      cur += ch;
    }
  }
  flush();
  return out;
}

struct Statement {
  int line;
  std::vector<std::string> tokens; // without label definitions
  int address;                     // assigned in pass 1
};

int parse_reg(const std::string& t, const std::string& src, int line) {
  if (t.size() >= 2 && (t[0] == 'r' || t[0] == 'R')) {
    try {
      const int n = std::stoi(t.substr(1));
      if (n >= 0 && n < kNumRegs) return n;
    } catch (const std::exception&) {
    }
  }
  throw ParseError("expected a register, got '" + t + "'", src, line);
}

std::optional<long> parse_number(const std::string& t) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(t, &pos, 0); // handles decimal, 0x, negatives
    if (pos == t.size()) return v;
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

class Assembler {
public:
  Assembler(const std::string& source, std::string name)
      : src_(std::move(name)) {
    pass1(source);
  }

  std::vector<std::uint16_t> run() {
    std::vector<std::uint16_t> image;
    for (const Statement& st : stmts_) {
      const std::uint16_t w = emit(st);
      if (std::size_t(st.address) >= image.size())
        image.resize(std::size_t(st.address) + 1, enc_nop());
      image[std::size_t(st.address)] = w;
    }
    return image;
  }

private:
  void pass1(const std::string& source) {
    std::istringstream is(source);
    std::string line;
    int lineno = 0;
    int addr = 0;
    while (std::getline(is, line)) {
      ++lineno;
      auto toks = tokenize_line(line);
      // Leading `name :` pairs are label definitions.
      while (toks.size() >= 2 && toks[1] == ":") {
        const std::string& name = toks[0];
        if (parse_number(name))
          throw ParseError("label cannot be a number: '" + name + "'", src_,
                           lineno);
        if (labels_.contains(name))
          throw ParseError("duplicate label '" + name + "'", src_, lineno);
        labels_[name] = addr;
        toks.erase(toks.begin(), toks.begin() + 2);
      }
      if (toks.empty()) continue;
      if (toks[0] == ".org") {
        if (toks.size() != 2)
          throw ParseError(".org needs one operand", src_, lineno);
        const auto v = parse_number(toks[1]);
        if (!v || *v < 0)
          throw ParseError("bad .org address", src_, lineno);
        addr = int(*v);
        continue;
      }
      stmts_.push_back(Statement{lineno, std::move(toks), addr});
      ++addr;
    }
  }

  long resolve(const std::string& t, int line) const {
    if (const auto v = parse_number(t)) return *v;
    const auto it = labels_.find(t);
    if (it == labels_.end())
      throw ParseError("undefined label '" + t + "'", src_, line);
    return it->second;
  }

  static AluFn alu_fn(const std::string& m) {
    if (m == "add") return AluFn::Add;
    if (m == "sub") return AluFn::Sub;
    if (m == "and") return AluFn::And;
    if (m == "or") return AluFn::Or;
    if (m == "xor") return AluFn::Xor;
    if (m == "lsl") return AluFn::Lsl;
    if (m == "lsr") return AluFn::Lsr;
    if (m == "sltu") return AluFn::Sltu;
    throw PreconditionError("not an alu op");
  }

  std::uint16_t emit(const Statement& st) const {
    const auto& t = st.tokens;
    const int line = st.line;
    const std::string& m = t[0];
    auto expect_count = [&](std::size_t n) {
      if (t.size() != n)
        throw ParseError("'" + m + "' has wrong operand count", src_, line);
    };
    auto mem_operands = [&](int& rd, int& ra, long& off) {
      // mnemonic rd [ ra + off ]  (7 tokens) or without +off (5 tokens)
      if (t.size() == 7 && t[2] == "[" && t[4] == "+" && t[6] == "]") {
        rd = parse_reg(t[1], src_, line);
        ra = parse_reg(t[3], src_, line);
        off = resolve(t[5], line);
      } else if (t.size() == 5 && t[2] == "[" && t[4] == "]") {
        rd = parse_reg(t[1], src_, line);
        ra = parse_reg(t[3], src_, line);
        off = 0;
      } else {
        throw ParseError("'" + m + "' expects rd, [ra+imm]", src_, line);
      }
    };
    try {
      if (m == "add" || m == "sub" || m == "and" || m == "or" ||
          m == "xor" || m == "lsl" || m == "lsr" || m == "sltu") {
        expect_count(4);
        return enc_alu(alu_fn(m), parse_reg(t[1], src_, line),
                       parse_reg(t[2], src_, line), parse_reg(t[3], src_, line));
      }
      if (m == "addi") {
        expect_count(4);
        return enc_addi(parse_reg(t[1], src_, line), parse_reg(t[2], src_, line),
                        int(resolve(t[3], line)));
      }
      if (m == "movi") {
        expect_count(3);
        return enc_movi(parse_reg(t[1], src_, line), int(resolve(t[2], line)));
      }
      if (m == "ld" || m == "st") {
        int rd = 0, ra = 0;
        long off = 0;
        mem_operands(rd, ra, off);
        return m == "ld" ? enc_ld(rd, ra, int(off))
                         : enc_st(rd, ra, int(off));
      }
      if (m == "beq" || m == "bne" || m == "bltu") {
        expect_count(4);
        const Op op = m == "beq" ? Op::Beq : m == "bne" ? Op::Bne : Op::Bltu;
        const long target = resolve(t[3], line);
        const long off = target - (st.address + 1);
        return enc_branch(op, parse_reg(t[1], src_, line), parse_reg(t[2], src_, line),
                          int(off));
      }
      if (m == "jal") {
        expect_count(3);
        const long target = resolve(t[2], line);
        const long off = target - (st.address + 1);
        return enc_jal(parse_reg(t[1], src_, line), int(off));
      }
      if (m == "jr") {
        expect_count(2);
        return enc_jr(parse_reg(t[1], src_, line));
      }
      if (m == "halt") {
        expect_count(1);
        return enc_halt();
      }
      if (m == "nop") {
        expect_count(1);
        return enc_nop();
      }
      if (m == ".word") {
        expect_count(2);
        const long v = resolve(t[1], line);
        if (v < 0 || v > 0xFFFF)
          throw ParseError(".word value out of 16-bit range", src_, line);
        return std::uint16_t(v);
      }
    } catch (const PreconditionError& e) {
      // Encoding-range failures (bad immediate, branch too far) become
      // parse errors with the offending line.
      throw ParseError(e.what(), src_, line);
    }
    throw ParseError("unknown mnemonic '" + m + "'", src_, line);
  }

  std::string src_;
  std::map<std::string, int> labels_;
  std::vector<Statement> stmts_;
};

} // namespace

std::vector<std::uint16_t> assemble(const std::string& source,
                                    const std::string& name) {
  Assembler a(source, name);
  return a.run();
}

} // namespace scpg::cpu
