// Gate-level single-cycle SCM0 core.
//
// The paper's Cortex-M0 case study substitute: flip-flop state (PC, the
// 8x32 register file, the halt flag) in the always-on domain, with one
// combinational cloud — decode, register-file muxes, a carry-select ALU,
// barrel shifters, comparator, memory addressing and next-PC logic — that
// the SCPG transform power-gates.  Instruction ROM and data RAM are
// behavioural macros (the paper's memories are external to the measured
// core; ours are zero-power stand-ins, see DESIGN.md §2).
//
// Ports:
//   in  clk, rst_n
//   out pc[16], halted
//
// Preload the data RAM through `ram_cell` / Simulator::macro_model.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/isa.hpp"
#include "netlist/netlist.hpp"
#include "scpg/transform.hpp"
#include "sim/simulator.hpp"

namespace scpg::cpu {

/// Handle to the generated core.
struct Scm0 {
  Netlist netlist;
  CellId rom_cell; ///< instruction ROM macro instance
  CellId ram_cell; ///< data RAM macro instance
};

/// Behavioural model of the data RAM; exposed so tests/benches can
/// preload and inspect memory through MacroModel pointers.
class RamModel final : public MacroModel {
public:
  RamModel();
  void eval(std::span<const Logic> in, std::span<Logic> out) override;
  void clock_edge(std::span<const Logic> in) override;
  void reset() override;

  [[nodiscard]] std::uint32_t word(std::uint32_t addr) const;
  void set_word(std::uint32_t addr, std::uint32_t v);

private:
  std::vector<std::uint32_t> mem_;
};

/// Builds the core around a program image.
[[nodiscard]] Scm0 make_scm0(const Library& lib,
                             std::vector<std::uint16_t> rom_image);

/// SCPG options matched to the SCM0 domain (X4 headers — the paper's
/// Cortex-M0 sizing result).
[[nodiscard]] ScpgOptions scm0_scpg_options();

/// Simulator calibration for the SCM0 domain.  The paper observes that a
/// larger power-gated domain pays disproportionately more for rail
/// recharge and crowbar current (§III-B); relative to the multiplier
/// defaults this raises the rail capacitance share and the per-cell
/// crowbar energy, placing the convergence point near the paper's ~5 MHz.
[[nodiscard]] SimConfig scm0_sim_config(Corner corner = {Voltage{0.6},
                                                         25.0});

} // namespace scpg::cpu
