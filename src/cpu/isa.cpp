#include "cpu/isa.hpp"

#include <sstream>

#include "util/error.hpp"

namespace scpg::cpu {

namespace {

std::int32_t sext(std::uint32_t v, int bits) {
  const std::uint32_t m = 1u << (bits - 1);
  return std::int32_t((v ^ m) - m);
}

void check_reg(int r) {
  SCPG_REQUIRE(r >= 0 && r < kNumRegs, "register index out of range");
}

void check_simm(int v, int bits) {
  const int lo = -(1 << (bits - 1)), hi = (1 << (bits - 1)) - 1;
  SCPG_REQUIRE(v >= lo && v <= hi,
               "immediate " + std::to_string(v) + " does not fit in " +
                   std::to_string(bits) + " signed bits");
}

void check_uimm(int v, int bits) {
  SCPG_REQUIRE(v >= 0 && v < (1 << bits),
               "immediate " + std::to_string(v) + " does not fit in " +
                   std::to_string(bits) + " unsigned bits");
}

std::uint16_t pack(Op op, int rd, int ra, int rb, int funct) {
  return std::uint16_t((int(op) << 12) | (rd << 9) | (ra << 6) | (rb << 3) |
                       funct);
}

} // namespace

Instr decode(std::uint16_t raw) {
  Instr in;
  const int opn = (raw >> 12) & 0xF;
  SCPG_REQUIRE(opn <= int(Op::Nop), "undefined opcode " + std::to_string(opn));
  in.op = Op(opn);
  in.rd = (raw >> 9) & 7;
  in.ra = (raw >> 6) & 7;
  in.rb = (raw >> 3) & 7;
  in.funct = AluFn(raw & 7);
  switch (in.op) {
    case Op::Addi:
      in.imm = sext(raw & 0x3F, 6);
      break;
    case Op::Ld:
    case Op::St:
      in.imm = int(raw & 0x3F);
      break;
    case Op::Movi:
      in.imm = int(raw & 0x1FF);
      break;
    case Op::Jal:
      in.imm = sext(raw & 0x1FF, 9);
      break;
    case Op::Beq:
    case Op::Bne:
    case Op::Bltu:
      in.imm = sext(std::uint32_t(((raw >> 9) & 7) << 3 | (raw & 7)), 6);
      break;
    default:
      in.imm = 0;
  }
  return in;
}

std::uint16_t encode(const Instr& in) {
  switch (in.op) {
    case Op::Alu: return enc_alu(in.funct, in.rd, in.ra, in.rb);
    case Op::Addi: return enc_addi(in.rd, in.ra, in.imm);
    case Op::Movi: return enc_movi(in.rd, in.imm);
    case Op::Ld: return enc_ld(in.rd, in.ra, in.imm);
    case Op::St: return enc_st(in.rd, in.ra, in.imm);
    case Op::Beq:
    case Op::Bne:
    case Op::Bltu:
      return enc_branch(in.op, in.ra, in.rb, in.imm);
    case Op::Jal: return enc_jal(in.rd, in.imm);
    case Op::Jr: return enc_jr(in.ra);
    case Op::Halt: return enc_halt();
    case Op::Nop: return enc_nop();
  }
  throw PreconditionError("bad instruction");
}

std::uint16_t enc_alu(AluFn fn, int rd, int ra, int rb) {
  check_reg(rd);
  check_reg(ra);
  check_reg(rb);
  return pack(Op::Alu, rd, ra, rb, int(fn));
}

std::uint16_t enc_addi(int rd, int ra, int imm6) {
  check_reg(rd);
  check_reg(ra);
  check_simm(imm6, 6);
  return std::uint16_t((int(Op::Addi) << 12) | (rd << 9) | (ra << 6) |
                       (imm6 & 0x3F));
}

std::uint16_t enc_movi(int rd, int imm9) {
  check_reg(rd);
  check_uimm(imm9, 9);
  return std::uint16_t((int(Op::Movi) << 12) | (rd << 9) | imm9);
}

std::uint16_t enc_ld(int rd, int ra, int imm6) {
  check_reg(rd);
  check_reg(ra);
  check_uimm(imm6, 6);
  return std::uint16_t((int(Op::Ld) << 12) | (rd << 9) | (ra << 6) | imm6);
}

std::uint16_t enc_st(int rd, int ra, int imm6) {
  check_reg(rd);
  check_reg(ra);
  check_uimm(imm6, 6);
  return std::uint16_t((int(Op::St) << 12) | (rd << 9) | (ra << 6) | imm6);
}

std::uint16_t enc_branch(Op op, int ra, int rb, int off6) {
  SCPG_REQUIRE(op == Op::Beq || op == Op::Bne || op == Op::Bltu,
               "not a branch opcode");
  check_reg(ra);
  check_reg(rb);
  check_simm(off6, 6);
  const int u = off6 & 0x3F;
  return std::uint16_t((int(op) << 12) | ((u >> 3) << 9) | (ra << 6) |
                       (rb << 3) | (u & 7));
}

std::uint16_t enc_jal(int rd, int imm9) {
  check_reg(rd);
  check_simm(imm9, 9);
  return std::uint16_t((int(Op::Jal) << 12) | (rd << 9) | (imm9 & 0x1FF));
}

std::uint16_t enc_jr(int ra) {
  check_reg(ra);
  return std::uint16_t((int(Op::Jr) << 12) | (ra << 6));
}

std::uint16_t enc_halt() { return std::uint16_t(int(Op::Halt) << 12); }
std::uint16_t enc_nop() { return std::uint16_t(int(Op::Nop) << 12); }

std::string disassemble(const Instr& in) {
  static const char* alu_names[] = {"add",  "sub",  "and", "or",
                                    "xor",  "lsl",  "lsr", "sltu"};
  std::ostringstream os;
  auto r = [](int i) { return "r" + std::to_string(i); };
  switch (in.op) {
    case Op::Alu:
      os << alu_names[int(in.funct)] << ' ' << r(in.rd) << ", " << r(in.ra)
         << ", " << r(in.rb);
      break;
    case Op::Addi:
      os << "addi " << r(in.rd) << ", " << r(in.ra) << ", " << in.imm;
      break;
    case Op::Movi:
      os << "movi " << r(in.rd) << ", " << in.imm;
      break;
    case Op::Ld:
      os << "ld " << r(in.rd) << ", [" << r(in.ra) << "+" << in.imm << "]";
      break;
    case Op::St:
      os << "st " << r(in.rd) << ", [" << r(in.ra) << "+" << in.imm << "]";
      break;
    case Op::Beq:
      os << "beq " << r(in.ra) << ", " << r(in.rb) << ", " << in.imm;
      break;
    case Op::Bne:
      os << "bne " << r(in.ra) << ", " << r(in.rb) << ", " << in.imm;
      break;
    case Op::Bltu:
      os << "bltu " << r(in.ra) << ", " << r(in.rb) << ", " << in.imm;
      break;
    case Op::Jal:
      os << "jal " << r(in.rd) << ", " << in.imm;
      break;
    case Op::Jr:
      os << "jr " << r(in.ra);
      break;
    case Op::Halt:
      os << "halt";
      break;
    case Op::Nop:
      os << "nop";
      break;
  }
  return os.str();
}

std::string disassemble(std::uint16_t raw) { return disassemble(decode(raw)); }

} // namespace scpg::cpu
