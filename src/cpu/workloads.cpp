#include "cpu/workloads.hpp"

#include <sstream>

#include "util/error.hpp"

namespace scpg::cpu::workloads {

namespace {
void check_imm9(int v, const char* what) {
  SCPG_REQUIRE(v >= 1 && v <= 511,
               std::string(what) + " must be in [1, 511]");
}
} // namespace

std::string dhrystone_like(int iterations) {
  check_imm9(iterations, "iterations");
  std::ostringstream os;
  os << R"(; Dhrystone-like mixed workload (string copy/compare, integer
; arithmetic, record assignment, branching).  Checksum in r7 / mem[63].
        movi r7, 0            ; checksum
        movi r6, )" << iterations << R"(
main_loop:
        ; init source string: mem[0..11] = (65 + i) ^ r6
        movi r1, 0
        movi r2, 12
init_loop:
        movi r3, 65
        add  r3, r3, r1
        xor  r3, r3, r6
        st   r3, [r1+0]
        addi r1, r1, 1
        bne  r1, r2, init_loop
        ; string copy: mem[16..27] = mem[0..11]
        movi r1, 0
copy_loop:
        ld   r3, [r1+0]
        st   r3, [r1+16]
        addi r1, r1, 1
        bne  r1, r2, copy_loop
        ; string compare + checksum accumulate
        movi r1, 0
cmp_loop:
        ld   r3, [r1+0]
        ld   r4, [r1+16]
        beq  r3, r4, cmp_ok
        addi r7, r7, 1        ; mismatch (never taken when correct)
cmp_ok:
        add  r7, r7, r3
        addi r1, r1, 1
        bne  r1, r2, cmp_loop
        ; arithmetic block
        movi r3, 3
        lsl  r4, r7, r3
        lsr  r5, r7, r3
        xor  r4, r4, r5
        sub  r4, r4, r6
        and  r5, r4, r7
        add  r7, r7, r4
        add  r7, r7, r5
        ; record assignment: mem[40..43]
        st   r7, [r0+40]
        ld   r3, [r0+40]
        addi r3, r3, 5
        st   r3, [r0+41]
        st   r6, [r0+42]
        add  r3, r3, r6
        st   r3, [r0+43]
        ; next iteration
        addi r6, r6, -1
        beq  r6, r0, done
        jal  r1, main_loop
done:
        st   r7, [r0+63]
        halt
)";
  return os.str();
}

std::string fibonacci(int n) {
  check_imm9(n, "n");
  std::ostringstream os;
  os << R"(; iterative fibonacci: r1 = fib(n), stored to mem[60]
        movi r1, 0
        movi r2, 1
        movi r3, )" << n << R"(
fib_loop:
        add  r5, r1, r2
        add  r1, r2, r0
        add  r2, r5, r0
        addi r3, r3, -1
        bne  r3, r0, fib_loop
        st   r1, [r0+60]
        add  r2, r1, r0
        halt
)";
  return os.str();
}

std::string bubble_sort(int count) {
  SCPG_REQUIRE(count >= 2 && count <= 60, "count must be in [2, 60]");
  std::ostringstream os;
  os << R"(; generate pseudo-random words in mem[0..count) and bubble-sort them
        movi r6, )" << count << R"(
        movi r1, 0
        movi r4, 97
gen_loop:
        movi r5, 53
        add  r4, r4, r5
        movi r5, 255
        and  r5, r4, r5
        st   r5, [r1+0]
        addi r1, r1, 1
        bne  r1, r6, gen_loop
outer:
        movi r7, 0            ; swapped flag
        movi r1, 0
        addi r2, r6, -1
inner:
        ld   r3, [r1+0]
        ld   r4, [r1+1]
        bltu r3, r4, no_swap
        beq  r3, r4, no_swap
        st   r4, [r1+0]
        st   r3, [r1+1]
        movi r7, 1
no_swap:
        addi r1, r1, 1
        bne  r1, r2, inner
        bne  r7, r0, outer
        halt
)";
  return os.str();
}

std::string arith_burst(int iterations) {
  check_imm9(iterations, "iterations");
  std::ostringstream os;
  os << R"(; high-activity arithmetic loop (max-activity probe)
        movi r6, )" << iterations << R"(
        movi r1, 427
        movi r2, 243
burst:
        add  r3, r1, r2
        xor  r1, r3, r2
        movi r4, 5
        lsl  r5, r1, r4
        sub  r2, r5, r3
        or   r1, r1, r2
        addi r6, r6, -1
        bne  r6, r0, burst
        halt
)";
  return os.str();
}

std::string idle_spin(int iterations) {
  check_imm9(iterations, "iterations");
  std::ostringstream os;
  os << R"(; low-activity spin loop (min-activity probe)
        movi r6, )" << iterations << R"(
spin:
        nop
        nop
        nop
        nop
        addi r6, r6, -1
        bne  r6, r0, spin
        halt
)";
  return os.str();
}

} // namespace scpg::cpu::workloads
