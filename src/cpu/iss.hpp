// Instruction-set simulator (golden reference for the gate-level core).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/isa.hpp"

namespace scpg::cpu {

class Iss {
public:
  /// `rom` is the program image (word addressed); data memory has
  /// 2^kAddrBits words, zero-initialised.
  explicit Iss(std::vector<std::uint16_t> rom);

  void reset();

  /// Executes one instruction; no-op once halted.  Returns true while
  /// running.
  bool step();

  /// Runs at most `max_steps` instructions; returns the number executed
  /// (stops early at HALT).
  std::uint64_t run(std::uint64_t max_steps);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint16_t pc() const { return pc_; }
  [[nodiscard]] std::uint32_t reg(int r) const;
  void set_reg(int r, std::uint32_t v);
  [[nodiscard]] std::uint32_t mem(std::uint32_t addr) const;
  void set_mem(std::uint32_t addr, std::uint32_t v);
  [[nodiscard]] const std::vector<std::uint16_t>& rom() const { return rom_; }

private:
  std::vector<std::uint16_t> rom_;
  std::vector<std::uint32_t> mem_;
  std::array<std::uint32_t, kNumRegs> regs_{};
  std::uint16_t pc_{0};
  bool halted_{false};
};

} // namespace scpg::cpu
