#include "cpu/iss.hpp"

#include "util/error.hpp"

namespace scpg::cpu {

namespace {
constexpr std::uint32_t kAddrMask = (1u << kAddrBits) - 1;
}

Iss::Iss(std::vector<std::uint16_t> rom) : rom_(std::move(rom)) {
  SCPG_REQUIRE(!rom_.empty(), "empty program");
  SCPG_REQUIRE(rom_.size() <= (1u << kAddrBits), "program too large");
  mem_.assign(1u << kAddrBits, 0);
  reset();
}

void Iss::reset() {
  regs_.fill(0);
  pc_ = 0;
  halted_ = false;
}

std::uint32_t Iss::reg(int r) const {
  SCPG_REQUIRE(r >= 0 && r < kNumRegs, "register index out of range");
  return regs_[std::size_t(r)];
}

void Iss::set_reg(int r, std::uint32_t v) {
  SCPG_REQUIRE(r >= 0 && r < kNumRegs, "register index out of range");
  regs_[std::size_t(r)] = v;
}

std::uint32_t Iss::mem(std::uint32_t addr) const {
  return mem_[addr & kAddrMask];
}

void Iss::set_mem(std::uint32_t addr, std::uint32_t v) {
  mem_[addr & kAddrMask] = v;
}

bool Iss::step() {
  if (halted_) return false;
  const std::uint16_t raw =
      std::size_t(pc_) < rom_.size() ? rom_[pc_] : enc_nop();
  const Instr in = decode(raw);
  std::uint16_t next_pc = std::uint16_t(pc_ + 1);
  const std::uint32_t a = regs_[std::size_t(in.ra)];
  const std::uint32_t b = regs_[std::size_t(in.rb)];

  switch (in.op) {
    case Op::Alu: {
      std::uint32_t y = 0;
      switch (in.funct) {
        case AluFn::Add: y = a + b; break;
        case AluFn::Sub: y = a - b; break;
        case AluFn::And: y = a & b; break;
        case AluFn::Or: y = a | b; break;
        case AluFn::Xor: y = a ^ b; break;
        case AluFn::Lsl: y = (b & 31) < 32 ? a << (b & 31) : 0; break;
        case AluFn::Lsr: y = a >> (b & 31); break;
        case AluFn::Sltu: y = a < b ? 1 : 0; break;
      }
      regs_[std::size_t(in.rd)] = y;
      break;
    }
    case Op::Addi:
      regs_[std::size_t(in.rd)] = a + std::uint32_t(in.imm);
      break;
    case Op::Movi:
      regs_[std::size_t(in.rd)] = std::uint32_t(in.imm);
      break;
    case Op::Ld:
      regs_[std::size_t(in.rd)] = mem(a + std::uint32_t(in.imm));
      break;
    case Op::St:
      set_mem(a + std::uint32_t(in.imm), regs_[std::size_t(in.rd)]);
      break;
    case Op::Beq:
      if (a == b) next_pc = std::uint16_t(pc_ + 1 + in.imm);
      break;
    case Op::Bne:
      if (a != b) next_pc = std::uint16_t(pc_ + 1 + in.imm);
      break;
    case Op::Bltu:
      if (a < b) next_pc = std::uint16_t(pc_ + 1 + in.imm);
      break;
    case Op::Jal:
      regs_[std::size_t(in.rd)] = std::uint32_t(pc_ + 1);
      next_pc = std::uint16_t(pc_ + 1 + in.imm);
      break;
    case Op::Jr:
      next_pc = std::uint16_t(a & 0xFFFF);
      break;
    case Op::Halt:
      halted_ = true;
      next_pc = pc_;
      break;
    case Op::Nop:
      break;
  }
  pc_ = next_pc;
  return !halted_;
}

std::uint64_t Iss::run(std::uint64_t max_steps) {
  std::uint64_t n = 0;
  while (n < max_steps && step()) ++n;
  if (halted_ && n < max_steps) ++n; // count the halt itself
  return n;
}

} // namespace scpg::cpu
