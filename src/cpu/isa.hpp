// SCM0 instruction set architecture.
//
// SCM0 is this reproduction's stand-in for the ARM Cortex-M0 case study
// (DESIGN.md §2): an M0-class microcontroller with compact 16-bit
// instructions (Thumb-flavoured) over a 32-bit datapath, 8 general
// registers, word-addressed memory, and a single-cycle gate-level
// implementation whose combinational cloud is the SCPG gated domain.
//
// Encoding (16 bits):
//   op[15:12] | rd[11:9] | ra[8:6] | rb[5:3] | funct[2:0]
//   imm6  = instr[5:0]   (sign- or zero-extended per instruction)
//   imm9  = instr[8:0]
//   boff6 = {rd, funct}  (branch offset, sign-extended)
//
//   op 0  ALU    rd = ra <funct> rb   (ADD SUB AND OR XOR LSL LSR SLTU)
//   op 1  ADDI   rd = ra + sext(imm6)
//   op 2  MOVI   rd = zext(imm9)
//   op 3  LD     rd = mem[ra + zext(imm6)]
//   op 4  ST     mem[ra + zext(imm6)] = rd
//   op 5  BEQ    if ra == rb: pc += sext(boff6)
//   op 6  BNE    if ra != rb: pc += sext(boff6)
//   op 7  BLTU   if ra <  rb (unsigned): pc += sext(boff6)
//   op 8  JAL    rd = pc + 1; pc += sext(imm9)
//   op 9  JR     pc = ra[15:0]
//   op 10 HALT
//   op 11 NOP
#pragma once

#include <cstdint>
#include <string>

namespace scpg::cpu {

inline constexpr int kNumRegs = 8;
inline constexpr int kInstrBits = 16;
inline constexpr int kWordBits = 32;
inline constexpr int kPcBits = 16;
inline constexpr int kAddrBits = 12; ///< data/instruction address width

enum class Op : std::uint8_t {
  Alu = 0,
  Addi = 1,
  Movi = 2,
  Ld = 3,
  St = 4,
  Beq = 5,
  Bne = 6,
  Bltu = 7,
  Jal = 8,
  Jr = 9,
  Halt = 10,
  Nop = 11,
};

enum class AluFn : std::uint8_t {
  Add = 0,
  Sub = 1,
  And = 2,
  Or = 3,
  Xor = 4,
  Lsl = 5,
  Lsr = 6,
  Sltu = 7,
};

/// Decoded instruction fields.
struct Instr {
  Op op{Op::Nop};
  int rd{0};
  int ra{0};
  int rb{0};
  AluFn funct{AluFn::Add};
  std::int32_t imm{0}; ///< already extended (imm6/imm9/boff6 per op)
};

/// Field extraction from a raw 16-bit word.
[[nodiscard]] Instr decode(std::uint16_t raw);

/// Inverse of decode; validates field ranges.
[[nodiscard]] std::uint16_t encode(const Instr& in);

/// Human-readable form ("addi r1, r2, -3").
[[nodiscard]] std::string disassemble(const Instr& in);
[[nodiscard]] std::string disassemble(std::uint16_t raw);

// Encoding helpers used by the assembler and tests.
[[nodiscard]] std::uint16_t enc_alu(AluFn fn, int rd, int ra, int rb);
[[nodiscard]] std::uint16_t enc_addi(int rd, int ra, int imm6);
[[nodiscard]] std::uint16_t enc_movi(int rd, int imm9);
[[nodiscard]] std::uint16_t enc_ld(int rd, int ra, int imm6);
[[nodiscard]] std::uint16_t enc_st(int rd, int ra, int imm6);
[[nodiscard]] std::uint16_t enc_branch(Op op, int ra, int rb, int off6);
[[nodiscard]] std::uint16_t enc_jal(int rd, int imm9);
[[nodiscard]] std::uint16_t enc_jr(int ra);
[[nodiscard]] std::uint16_t enc_halt();
[[nodiscard]] std::uint16_t enc_nop();

} // namespace scpg::cpu
