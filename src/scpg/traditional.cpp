#include "scpg/traditional.hpp"

#include <deque>
#include <unordered_set>

#include "util/error.hpp"

namespace scpg {

namespace {

/// Same rule as the SCPG transform: clock distribution stays powered so
/// the wake-up edge can propagate.
std::vector<bool> clock_path(const Netlist& nl) {
  std::vector<bool> on_path(nl.num_cells(), false);
  std::deque<NetId> work;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (kind_is_sequential(nl.kind_of(id))) work.push_back(c.inputs[1]);
    else if (c.is_macro() && nl.macro_spec(c.macro).has_clock)
      work.push_back(c.inputs[0]);
  }
  while (!work.empty()) {
    const NetId n = work.front();
    work.pop_front();
    const Net& net = nl.net(n);
    if (!net.driven_by_cell()) continue;
    const CellId d = net.driver_cell;
    if (on_path[d.v] || !nl.is_comb_node(d)) continue;
    on_path[d.v] = true;
    for (NetId in : nl.cell(d).inputs) work.push_back(in);
  }
  return on_path;
}

} // namespace

TraditionalPgInfo apply_traditional_pg(Netlist& nl,
                                       const TraditionalPgOptions& opt) {
  SCPG_REQUIRE(opt.header_count >= 1, "need at least one header");
  nl.check();
  const Library& lib = nl.lib();

  TraditionalPgInfo info;
  info.area_before = nl.total_area();

  const PortId clk = nl.find_port(opt.clock_port);
  SCPG_REQUIRE(clk.valid(), "clock port '" + opt.clock_port + "' not found");

  // Everything powers down: combinational logic AND registers (the
  // defining difference from SCPG).  Macros and the clock path stay on.
  const std::vector<bool> on_clk_path = clock_path(nl);
  const std::size_t original_cells = nl.num_cells();
  std::vector<CellId> gated_flops;
  for (std::uint32_t ci = 0; ci < original_cells; ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.is_macro()) continue;
    const CellKind k = nl.kind_of(id);
    SCPG_REQUIRE(k != CellKind::Header && k != CellKind::IsoLo &&
                     k != CellKind::IsoHi,
                 "netlist already contains power-gating cells");
    if (on_clk_path[ci]) continue;
    nl.cell(id).domain = Domain::Gated;
    ++info.cells_gated;
    if (kind_is_sequential(k)) gated_flops.push_back(id);
  }
  SCPG_REQUIRE(info.cells_gated > 0, "nothing to gate");

  // Retention balloons: one always-on shadow cell per register.  The
  // balloon's leakage and area are the retention cost; the actual state
  // hand-off is modelled by the simulator's domain save/restore.
  std::unordered_set<std::uint32_t> balloon_cells;
  if (opt.retention) {
    const SpecId ret = lib.pick(CellKind::RetBal, 1);
    for (CellId ff : gated_flops) {
      const NetId q = nl.cell(ff).outputs[0];
      const NetId shadow = nl.add_net(nl.net(q).name + "_ret");
      const CellId bc =
          nl.add_cell(nl.cell(ff).name + "_ret", ret, {q}, shadow);
      balloon_cells.insert(bc.v);
      ++info.retention_cells;
    }
  }

  // Sleep request and headers.  The controller's clamp-before-off order
  // falls out of the inverter delay on NISO vs the direct header control.
  info.sleep_req = nl.add_input(opt.sleep_port);
  const SpecId hdr = lib.pick(CellKind::Header, opt.header_drive);
  for (int i = 0; i < opt.header_count; ++i) {
    const NetId vvdd = nl.add_net("tpg_vvdd" + std::to_string(i));
    info.headers.push_back(
        nl.add_cell("u_tpg_hdr" + std::to_string(i), hdr,
                    {info.sleep_req}, vvdd));
  }
  const SpecId inv = lib.pick(CellKind::Inv, 1);
  info.niso = nl.add_net("tpg_niso");
  nl.add_cell("u_tpg_niso", inv, {info.sleep_req}, info.niso);

  // Isolation on every net leaving the gated domain, except retention
  // balloons (they are the domain's state-keepers, built to ride through
  // power-down).
  const SpecId iso = lib.pick(CellKind::IsoLo, 1);
  std::vector<NetId> gated_nets;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    if (nl.cell(id).domain != Domain::Gated) continue;
    for (NetId o : nl.cell(id).outputs) gated_nets.push_back(o);
  }
  for (NetId n : gated_nets) {
    std::vector<PinRef> aon_sinks;
    for (const PinRef& s : nl.net(n).sinks)
      if (nl.cell(s.cell).domain != Domain::Gated &&
          !balloon_cells.contains(s.cell.v))
        aon_sinks.push_back(s);
    const std::vector<PortId> out_ports = nl.net(n).sink_ports;
    if (aon_sinks.empty() && out_ports.empty()) continue;
    const NetId ni = nl.add_net(nl.net(n).name + "_tiso");
    nl.add_cell(nl.net(n).name + "_tisoc", iso, {n, info.niso}, ni);
    for (const PinRef& s : aon_sinks) nl.rewire_input(s.cell, s.pin, ni);
    for (PortId p : out_ports) nl.rewire_port(p, ni);
    ++info.isolation_cells;
  }

  nl.check();
  info.area_after = nl.total_area();
  nl.set_name(nl.name() + "_tpg");
  return info;
}

} // namespace scpg
