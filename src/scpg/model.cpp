#include "scpg/model.hpp"

#include <algorithm>

#include "power/power.hpp"
#include "util/error.hpp"

namespace scpg {

ScpgPowerModel::ScpgPowerModel(Power p_always_on, Energy e_dyn_cycle,
                               std::optional<RailParams> rail,
                               Time t_eval_setup, Time margin)
    : p_aon_(p_always_on),
      e_dyn_(e_dyn_cycle),
      rail_(rail),
      t_eval_setup_(t_eval_setup),
      margin_(margin) {
  SCPG_REQUIRE(p_aon_.v >= 0 && e_dyn_.v >= 0 && t_eval_setup_.v > 0,
               "model parameters must be non-negative (t_eval positive)");
}

ScpgPowerModel ScpgPowerModel::extract(const Netlist& nl,
                                       const SimConfig& cfg,
                                       Energy e_dyn_cycle) {
  const StaReport sta = run_sta(nl, cfg.corner);
  // Leakage split: gated cells go to the rail model; everything else
  // (flops, isolation, controller, macros) is always-on.
  const double lscale = nl.lib().tech().leak_scale(cfg.corner);
  Power p_aon{};
  bool any_gated = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.domain == Domain::Gated) {
      any_gated = true;
      continue;
    }
    if (c.is_macro()) {
      p_aon += nl.macro_spec(c.macro).leakage * lscale;
      continue;
    }
    const CellSpec& s = nl.spec_of(id);
    if (s.kind == CellKind::Header) continue; // in the rail model
    p_aon += s.leakage * lscale;
  }
  std::optional<RailParams> rail;
  if (any_gated) rail = extract_rail_params(nl, cfg);
  return ScpgPowerModel(p_aon, e_dyn_cycle, rail,
                        sta.t_eval + sta.endpoint_setup);
}

const RailParams& ScpgPowerModel::rail() const {
  SCPG_REQUIRE(rail_.has_value(), "model has no gated domain");
  return *rail_;
}

double ScpgPowerModel::max_duty_high(Frequency f) const {
  SCPG_REQUIRE(rail_.has_value(), "model has no gated domain");
  const Time T = period(f);
  // Worst-case restart: rail fully collapsed.
  const Time t_low_needed = rail_->t_ready_from(Voltage{0.0}) +
                            t_eval_setup_ + margin_;
  return 1.0 - t_low_needed.v / T.v;
}

bool ScpgPowerModel::feasible(Frequency f, double duty_high) const {
  if (!rail_) return false;
  if (duty_high <= 0.0 || duty_high >= 1.0) return false;
  return duty_high <= max_duty_high(f) + 1e-12;
}

std::optional<double> ScpgPowerModel::duty_for(GatingMode mode,
                                               Frequency f) const {
  if (mode == GatingMode::None || !rail_) return std::nullopt;
  const double dmax = max_duty_high(f);
  if (mode == GatingMode::Scpg50)
    return dmax >= 0.5 ? std::optional<double>(0.5) : std::nullopt;
  // ScpgMax: the best feasible duty; below a few percent of the period the
  // gated window cannot amortise the header switching, so treat as
  // infeasible.
  if (dmax < 0.02) return std::nullopt;
  return std::min(dmax, 0.98);
}

Power ScpgPowerModel::average_power_gated(Frequency f,
                                          double duty_high) const {
  SCPG_REQUIRE(rail_.has_value(), "model has no gated domain");
  SCPG_REQUIRE(f.v > 0 && duty_high > 0 && duty_high < 1,
               "bad operating point");
  const RailParams& r = *rail_;
  const Time T = period(f);
  const Time t_off = T * duty_high;
  const Time t_on = T * (1.0 - duty_high);
  const Voltage v_end = r.v_after_off(t_off);

  Energy per_cycle = e_dyn_;
  per_cycle += r.leak_energy_off(t_off);
  per_cycle += r.leak_energy_on(t_on, v_end);
  per_cycle += r.recharge_energy(v_end);
  per_cycle += r.crowbar_energy(v_end);
  per_cycle += r.header_gate_energy();
  per_cycle += r.p_hdr_off * t_off;

  return p_aon_ + Power{per_cycle.v * f.v};
}

Power ScpgPowerModel::average_power_ungated(Frequency f) const {
  SCPG_REQUIRE(f.v > 0, "frequency must be positive");
  const Power gated_leak = rail_ ? rail_->p_gated : Power{};
  return p_aon_ + gated_leak + Power{e_dyn_.v * f.v};
}

Power ScpgPowerModel::average_power(GatingMode mode, Frequency f) const {
  const auto duty = duty_for(mode, f);
  if (!duty) return average_power_ungated(f);
  return average_power_gated(f, *duty);
}

Energy ScpgPowerModel::energy_per_op(GatingMode mode, Frequency f) const {
  return Energy{average_power(mode, f).v / f.v};
}

} // namespace scpg
