// UPF-style power-intent export.
//
// The paper's flow (Fig 5) declares the SCPG power-gating strategy in a
// UPF (IEEE 1801) file so standard implementation tools place the
// headers, isolation cells and supply nets.  write_upf() emits the
// equivalent intent for a transformed netlist: the two power domains, the
// virtual-supply net, the clock-controlled power switch, and the
// isolation strategy with its adaptive control signal.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "scpg/transform.hpp"

namespace scpg {

/// Emits the UPF-subset power intent of a netlist transformed by
/// apply_scpg().  `info` must be the transform's result for `nl`.
void write_upf(const Netlist& nl, const ScpgInfo& info, std::ostream& os);

[[nodiscard]] std::string write_upf_string(const Netlist& nl,
                                           const ScpgInfo& info);

} // namespace scpg
