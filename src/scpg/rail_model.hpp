// First-order virtual-rail model (closed forms).
//
// The same physics the event-driven simulator integrates numerically,
// expressed analytically so the SCPG power model can sweep thousands of
// (frequency, duty) points instantly:
//
//   decay:  V(t) = V0 * exp(-t / tau_d),  tau_d = C_dom Vdd^2 / P_gated
//           (domain leakage discharges the rail; linear-current model)
//   charge: V(t) = Vdd - (Vdd - V0) * exp(-t / tau_c),  tau_c = Ron C_dom
//   gated leakage power at rail voltage V: P_gated * (V/Vdd)^2
//
// The model and the simulator are cross-validated in
// tests/test_cross_validation.cpp.
#pragma once

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "tech/tech_model.hpp"
#include "util/units.hpp"

namespace scpg {

struct RailParams {
  Capacitance c_dom{};       ///< total capacitance on the virtual rail
  Resistance ron_eff{};      ///< parallel header on-resistance
  Power p_gated{};           ///< gated-domain leakage at full rail (corner)
  Power p_hdr_off{};         ///< OFF-header leakage (corner)
  Capacitance hdr_gate_cap{};///< total header gate capacitance
  std::size_t gated_cells{0};
  Voltage vdd{};
  Energy crowbar_full{};     ///< full-depth crowbar energy per power-up
  double ready_frac{0.95};
  double corrupt_frac{0.7};

  [[nodiscard]] Time tau_decay() const {
    return Time{c_dom.v * vdd.v * vdd.v / std::max(p_gated.v, 1e-15)};
  }
  [[nodiscard]] Time tau_charge() const {
    return Time{ron_eff.v * c_dom.v};
  }

  /// Rail voltage after `t_off` of decay from full rail.
  [[nodiscard]] Voltage v_after_off(Time t_off) const;

  /// Time from the falling clock edge until the rail is usable again
  /// (charge from v0 to ready_frac * vdd) — the paper's T_PGStart.
  [[nodiscard]] Time t_ready_from(Voltage v0) const;

  /// Time from power-off until the domain corrupts (rail crosses
  /// corrupt_frac * vdd) — the window that preserves the register hold
  /// time in Fig 4.
  [[nodiscard]] Time t_corrupt() const;

  /// Gated-domain leakage energy over a decay phase of length t_off
  /// (from full rail).
  [[nodiscard]] Energy leak_energy_off(Time t_off) const;

  /// Gated-domain leakage energy over a charge-then-on phase of length
  /// t_on starting from rail voltage v0.
  [[nodiscard]] Energy leak_energy_on(Time t_on, Voltage v0) const;

  /// Supply energy to recharge the rail from v0 (C Vdd dV).
  [[nodiscard]] Energy recharge_energy(Voltage v0) const;

  /// Crowbar rush energy for a power-up from v0.
  [[nodiscard]] Energy crowbar_energy(Voltage v0) const;

  /// Header gate switching energy per full gating cycle.
  [[nodiscard]] Energy header_gate_energy() const;
};

/// Extracts the rail parameters of a transformed netlist at a corner,
/// using the same conventions as the simulator (SimConfig supplies the
/// crowbar/ cap-factor calibration).
[[nodiscard]] RailParams extract_rail_params(const Netlist& nl,
                                             const SimConfig& cfg);

} // namespace scpg
