#include "scpg/measure.hpp"

#include "util/error.hpp"

namespace scpg {

MeasureResult measure_average_power(const Netlist& nl,
                                    const MeasureOptions& opt) {
  SCPG_REQUIRE(opt.f.v > 0, "frequency must be positive");
  SCPG_REQUIRE(opt.cycles >= 1, "need at least one measured cycle");
  SCPG_REQUIRE(opt.warmup_cycles >= 1,
               "need at least one warm-up cycle (X flush)");

  Simulator sim(nl, opt.sim);
  sim.init_flops_to_zero();

  const NetId clk = nl.port_net(opt.clock_port);
  if (const PortId ov = nl.find_port(opt.override_port); ov.valid())
    sim.drive_at(0, nl.port(ov).net,
                 opt.override_gating ? Logic::L0 : Logic::L1);
  if (opt.setup) opt.setup(sim);

  const SimTime T = to_fs(period(opt.f));
  // Low phase first: the clock rises after one low interval so the gated
  // domain starts powered.
  const SimTime first_rise =
      SimTime(double(T) * (1.0 - opt.duty_high));
  sim.add_clock(clk, opt.f, opt.duty_high, first_rise);

  int cycle = -1;
  sim.on_rising_edge(clk, [&sim, &opt, &cycle]() {
    ++cycle;
    if (cycle == opt.warmup_cycles) sim.reset_tally();
    if (opt.stimulus) opt.stimulus(sim, cycle);
  });

  const SimTime t_end =
      first_rise + T * SimTime(opt.warmup_cycles + opt.cycles);
  sim.run_until(t_end);

  MeasureResult r;
  r.tally = sim.tally();
  r.cycles = opt.cycles;
  SCPG_ASSERT(r.tally.window.v > 0);
  r.avg_power = r.tally.average();
  r.energy_per_cycle = Energy{r.tally.total().v / double(opt.cycles)};
  return r;
}

} // namespace scpg
