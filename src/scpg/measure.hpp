// Simulation measurement harness.
//
// Runs a design in the event-driven simulator at an operating point
// (frequency, duty cycle, corner) with user stimulus, warms up, and
// measures average power and per-cycle energy over an integral number of
// clock cycles — the reproduction's stand-in for the paper's HSpice power
// measurements.
#pragma once

#include <functional>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace scpg {

struct MeasureOptions {
  Frequency f{Frequency{1e6}};
  double duty_high{0.5};
  SimConfig sim{};
  int warmup_cycles{4};
  int cycles{24};
  /// Drive override_n = 0 (gating disabled) when the port exists.
  bool override_gating{false};
  /// Called right after every rising clock edge with the 0-based cycle
  /// index; apply next-cycle stimulus here.
  std::function<void(Simulator&, int)> stimulus;
  /// Optional extra setup before time 0 (e.g. preload memories).
  std::function<void(Simulator&)> setup;
  /// Clock port name.
  std::string clock_port{"clk"};
  std::string override_port{"override_n"};
};

struct MeasureResult {
  PowerTally tally;   ///< energy buckets over the measurement window
  int cycles{0};
  Power avg_power{};
  Energy energy_per_cycle{};
};

/// Simulates and measures.  The measurement window starts at the rising
/// edge following `warmup_cycles` full cycles and spans exactly `cycles`
/// periods.
[[nodiscard]] MeasureResult measure_average_power(const Netlist& nl,
                                                  const MeasureOptions& opt);

} // namespace scpg
