// Legacy simulation measurement harness (deprecated).
//
// The original single-point measure_average_power() predates the parallel
// sweep engine; it survives as a thin wrapper so old call sites keep
// compiling, but new code should build an engine::SweepSpec and run an
// engine::Experiment (src/engine/sweep.hpp) — one spec expresses the
// whole grid, runs points concurrently and caches results.
// See DESIGN.md §8 for the migration map.
#pragma once

#include <functional>
#include <utility>

#include "engine/sweep.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace scpg {

struct MeasureOptions {
  Frequency f{Frequency{1e6}};
  double duty_high{0.5};
  SimConfig sim{};
  int warmup_cycles{4};
  int cycles{24};
  /// Drive override_n = 0 (gating disabled) when the port exists.
  bool override_gating{false};
  /// Called right after every rising clock edge with the 0-based cycle
  /// index; apply next-cycle stimulus here.
  std::function<void(Simulator&, int)> stimulus;
  /// Optional extra setup before time 0 (e.g. preload memories).
  std::function<void(Simulator&)> setup;
  /// Clock port name.
  std::string clock_port{"clk"};
  std::string override_port{"override_n"};
};

using MeasureResult = engine::Measurement;

/// Simulates and measures one operating point.  The measurement window
/// starts at the rising edge following `warmup_cycles` full cycles and
/// spans exactly `cycles` periods.  Runs serially and uncached — exactly
/// the pre-engine behaviour.
[[deprecated("build an engine::SweepSpec and run engine::Experiment "
             "instead (src/engine/sweep.hpp)")]] [[nodiscard]]
inline MeasureResult measure_average_power(const Netlist& nl,
                                           const MeasureOptions& opt) {
  engine::SweepSpec spec;
  spec.design(nl)
      .frequency(opt.f)
      .duty(opt.duty_high)
      .base_sim(opt.sim)
      .override_gating(opt.override_gating)
      .cycles(opt.cycles, opt.warmup_cycles)
      .clock_port(opt.clock_port)
      .override_port(opt.override_port)
      .jobs(1)
      .use_cache(false);
  if (opt.stimulus)
    spec.stimulus(
        [fn = opt.stimulus](Simulator& s, int cycle, Rng&) { fn(s, cycle); });
  if (opt.setup) spec.setup(opt.setup);
  return engine::Experiment(std::move(spec)).run()[0];
}

} // namespace scpg
