#include "scpg/transform.hpp"

#include <deque>

#include "util/error.hpp"

namespace scpg {

namespace {

/// Cells on the clock distribution path (driving CK pins, directly or
/// through buffers/inverters) must stay always-on.
std::vector<bool> clock_path_cells(const Netlist& nl) {
  std::vector<bool> on_path(nl.num_cells(), false);
  std::deque<NetId> work;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    const CellKind k = nl.kind_of(id);
    if (kind_is_sequential(k)) {
      work.push_back(c.inputs[1]); // CK pin
    } else if (c.is_macro() && nl.macro_spec(c.macro).has_clock) {
      work.push_back(c.inputs[0]);
    }
  }
  while (!work.empty()) {
    const NetId n = work.front();
    work.pop_front();
    const Net& net = nl.net(n);
    if (!net.driven_by_cell()) continue;
    const CellId d = net.driver_cell;
    if (on_path[d.v]) continue;
    if (!nl.is_comb_node(d)) continue;
    on_path[d.v] = true;
    for (NetId in : nl.cell(d).inputs) work.push_back(in);
  }
  return on_path;
}

} // namespace

ScpgInfo apply_scpg(Netlist& nl, const ScpgOptions& opt) {
  SCPG_REQUIRE(opt.header_count >= 1, "need at least one header");
  nl.check();
  const Library& lib = nl.lib();

  ScpgInfo info;
  info.area_before = nl.total_area();

  const PortId clk_port = nl.find_port(opt.clock_port);
  SCPG_REQUIRE(clk_port.valid(),
               "clock port '" + opt.clock_port + "' not found");
  SCPG_REQUIRE(nl.port(clk_port).dir == PortDir::In,
               "clock port must be an input");
  info.clk = nl.port(clk_port).net;

  // ---- step 1 (paper Fig 5): domain separation --------------------------
  const std::vector<bool> clk_path = clock_path_cells(nl);
  const std::size_t original_cells = nl.num_cells();
  for (std::uint32_t ci = 0; ci < original_cells; ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.is_macro()) continue;
    const CellKind k = nl.kind_of(id);
    if (!kind_is_combinational(k)) continue;
    SCPG_REQUIRE(k != CellKind::Header && k != CellKind::IsoLo &&
                     k != CellKind::IsoHi,
                 "netlist already contains power-gating cells");
    if (clk_path[ci]) continue;
    nl.cell(id).domain = Domain::Gated;
    ++info.cells_gated;
  }
  SCPG_REQUIRE(info.cells_gated > 0,
               "design has no combinational logic to gate");

  // ---- boundary buffers on register outputs entering the domain ---------
  if (opt.boundary_buffers) {
    const SpecId buf = lib.pick(CellKind::Buf, opt.buffer_drive);
    for (std::uint32_t ci = 0; ci < original_cells; ++ci) {
      const CellId id{ci};
      if (!kind_is_sequential(nl.kind_of(id))) continue;
      const NetId q = nl.cell(id).outputs[0];
      // Snapshot gated sinks before rewiring.
      std::vector<PinRef> gated_sinks;
      for (const PinRef& s : nl.net(q).sinks)
        if (nl.cell(s.cell).domain == Domain::Gated)
          gated_sinks.push_back(s);
      if (gated_sinks.empty()) continue;
      const NetId bq = nl.add_net(nl.net(q).name + "_pgbuf");
      const CellId bc = nl.add_cell(nl.cell(id).name + "_pgbuf", buf, {q}, bq);
      nl.cell(bc).domain = Domain::Gated;
      for (const PinRef& s : gated_sinks)
        nl.rewire_input(s.cell, s.pin, bq);
      ++info.buffer_cells;
    }
  }

  // ---- step 2 (paper Fig 5): power-gating fabric --------------------------
  // Sleep control: SLP = clk & override_n (Fig 2).  override_n low forces
  // the headers on, disabling SCPG.
  info.override_n = nl.add_input(opt.override_port);
  const SpecId and2 = lib.pick(CellKind::And2, 1);
  const SpecId inv = lib.pick(CellKind::Inv, 1);
  info.sleep = nl.add_net("scpg_slp");
  nl.add_cell("u_scpg_slp", and2, {info.clk, info.override_n}, info.sleep);

  // Header bank on the virtual rail.
  const SpecId hdr = lib.pick(CellKind::Header, opt.header_drive);
  for (int i = 0; i < opt.header_count; ++i) {
    const NetId vvdd = nl.add_net("vvdd" + std::to_string(i));
    info.headers.push_back(nl.add_cell("u_hdr" + std::to_string(i), hdr,
                                       {info.sleep}, vvdd));
  }

  // Virtual-rail sense: a TIEHI inside the gated domain (Fig 3).
  const SpecId tiehi = lib.pick(CellKind::TieHi, 1);
  info.sense = nl.add_net("scpg_sense");
  const CellId sense_cell =
      nl.add_cell("u_scpg_sense", tiehi, {}, info.sense);
  nl.cell(sense_cell).domain = Domain::Gated;

  // Isolation control: engage at the rising clock edge, release when the
  // clock is low and (adaptive mode) the rail has recovered.
  const NetId nclk = nl.add_net("scpg_nclk");
  nl.add_cell("u_scpg_nclk", inv, {info.clk}, nclk);
  if (opt.adaptive_controller) {
    info.niso = nl.add_net("scpg_niso");
    nl.add_cell("u_scpg_niso", and2, {nclk, info.sense}, info.niso);
  } else {
    info.niso = nclk;
  }

  // ---- isolation on every net leaving the gated domain -------------------
  if (opt.insert_isolation) {
    const SpecId iso = lib.pick(
        opt.clamp == ScpgOptions::Clamp::Low ? CellKind::IsoLo
                                             : CellKind::IsoHi,
        1);
    // Snapshot: nets driven by gated cells (before iso cells are added).
    std::vector<NetId> gated_nets;
    for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
      const CellId id{ci};
      if (nl.cell(id).domain != Domain::Gated) continue;
      for (NetId o : nl.cell(id).outputs) gated_nets.push_back(o);
    }
    for (NetId n : gated_nets) {
      if (n == info.sense) continue; // the rail sense is the control itself
      std::vector<PinRef> aon_sinks;
      for (const PinRef& s : nl.net(n).sinks)
        if (nl.cell(s.cell).domain != Domain::Gated)
          aon_sinks.push_back(s);
      const std::vector<PortId> out_ports = nl.net(n).sink_ports;
      if (aon_sinks.empty() && out_ports.empty()) continue;
      const NetId ni = nl.add_net(nl.net(n).name + "_iso");
      const CellId ic =
          nl.add_cell(nl.net(n).name + "_isoc", iso, {n, info.niso}, ni);
      for (const PinRef& s : aon_sinks) nl.rewire_input(s.cell, s.pin, ni);
      for (PortId p : out_ports) nl.rewire_port(p, ni);
      info.isolation.push_back({ic, n, ni});
      ++info.isolation_cells;
    }
  }

  nl.check();
  info.area_after = nl.total_area();
  nl.set_name(nl.name() + "_scpg");
  return info;
}

} // namespace scpg
