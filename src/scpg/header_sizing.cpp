#include "scpg/header_sizing.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace scpg {

HeaderEval evaluate_header(const Library& lib, int drive, int count,
                           const HeaderDemand& d, const HeaderConstraints& c,
                           Corner corner) {
  SCPG_REQUIRE(count >= 1, "bank needs at least one header");
  SCPG_REQUIRE(d.vdd.v > 0 && d.i_eval.v >= 0, "bad header demand");
  const CellSpec& h = lib.spec(lib.pick(CellKind::Header, drive));
  const double lscale = lib.tech().leak_scale(corner);
  // The PMOS on-resistance degrades with gate drive at low supply.
  const double rscale = lib.tech().resistance_scale(corner);

  HeaderEval e;
  e.drive = drive;
  e.count = count;
  e.ron_eff = Resistance{h.header_ron.v * rscale / double(count)};
  e.ir_drop = Voltage{(d.i_eval * e.ron_eff).v};
  e.inrush_peak = Current{d.vdd.v / e.ron_eff.v};
  e.off_leak = h.header_off_leak * (lscale * double(count));
  e.gate_cap = h.header_gate_cap * double(count);
  e.area = h.area * double(count);
  // Recharge from full collapse to 95%: ~3 time constants.
  e.t_ready = Time{e.ron_eff.v * d.c_dom.v * std::log(20.0)};
  e.meets_ir = e.ir_drop.v <= c.max_ir_frac * d.vdd.v;
  e.meets_inrush = c.max_inrush.v <= 0 ||
                   e.inrush_peak.v <= c.max_inrush.v;
  return e;
}

std::vector<HeaderEval> sweep_headers(const Library& lib, int count,
                                      const HeaderDemand& d,
                                      const HeaderConstraints& c,
                                      Corner corner, int jobs) {
  const std::vector<int> drives = lib.drives_of(CellKind::Header);
  return parallel_map(drives.size(), jobs, [&](std::size_t i) {
    return evaluate_header(lib, drives[i], count, d, c, corner);
  });
}

HeaderEval choose_header(const Library& lib, int count,
                         const HeaderDemand& d, const HeaderConstraints& c,
                         Corner corner) {
  const auto all = sweep_headers(lib, count, d, c, corner);
  const HeaderEval* best = nullptr;
  for (const auto& e : all) {
    if (!e.feasible()) continue;
    if (!best || e.ir_drop.v < best->ir_drop.v) best = &e;
  }
  if (!best)
    throw InfeasibleError(
        "no header drive meets the IR-drop and in-rush constraints");
  return *best;
}

} // namespace scpg
