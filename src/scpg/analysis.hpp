// SCPG design-space analysis built on the analytic power model:
// power-budget solving (the paper's energy-harvester scenarios),
// convergence-point location (where gating stops paying, Figs 6a/8a), and
// energy-efficiency comparison between modes.
#pragma once

#include "scpg/model.hpp"

namespace scpg {

/// Highest clock frequency whose average power fits the budget under a
/// mode.  Power is monotonically increasing in f for every mode, so this
/// is a bisection over [f_lo, f_hi].  Throws InfeasibleError when even
/// f_lo exceeds the budget (leakage floor above budget).
[[nodiscard]] Frequency max_frequency_for_budget(const ScpgPowerModel& m,
                                                 GatingMode mode,
                                                 Power budget,
                                                 Frequency f_lo,
                                                 Frequency f_hi);

/// Frequency above which SCPG at the given mode no longer saves power
/// relative to no gating (the paper's convergence point: ~15 MHz for the
/// multiplier, ~5 MHz for the Cortex-M0).  Returns f_hi when gating still
/// wins at f_hi; returns f_lo when it never wins.
[[nodiscard]] Frequency convergence_frequency(const ScpgPowerModel& m,
                                              GatingMode mode,
                                              Frequency f_lo,
                                              Frequency f_hi);

/// One operating scenario under a power budget (a row of the paper's
/// harvester examples in §III-A/III-B).
struct BudgetPoint {
  GatingMode mode{GatingMode::None};
  Frequency f{};      ///< highest frequency fitting the budget
  Power power{};      ///< power at that frequency (= budget within tol)
  Energy energy{};    ///< energy per operation there
};

struct BudgetComparison {
  Power budget{};
  BudgetPoint none, scpg50, scpg_max;

  /// Frequency and energy-efficiency improvement factors of SCPG-Max over
  /// no gating (paper: 50x / 45x for the multiplier at 30 uW).
  [[nodiscard]] double speedup_max() const { return f_ratio(scpg_max); }
  [[nodiscard]] double energy_gain_max() const { return e_ratio(scpg_max); }
  [[nodiscard]] double speedup_50() const { return f_ratio(scpg50); }
  [[nodiscard]] double energy_gain_50() const { return e_ratio(scpg50); }

private:
  [[nodiscard]] double f_ratio(const BudgetPoint& p) const {
    return p.f.v / none.f.v;
  }
  [[nodiscard]] double e_ratio(const BudgetPoint& p) const {
    return none.energy.v / p.energy.v;
  }
};

/// Solves all three modes against one budget.  The None column is
/// evaluated on the *original* design's model (no SCPG fabric, lower
/// leakage floor), exactly as the paper compares against the unmodified
/// design; the gating columns use the transformed design's model.
/// The three bisections are independent and run as parallel jobs when
/// `jobs` allows (`jobs <= 0` uses default_jobs()).
[[nodiscard]] BudgetComparison compare_at_budget(
    const ScpgPowerModel& original, const ScpgPowerModel& gated,
    Power budget, Frequency f_lo, Frequency f_hi, int jobs = 1);

} // namespace scpg
