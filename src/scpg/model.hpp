// Analytic SCPG power/energy model.
//
// Combines the rail closed forms, the design's leakage split, the measured
// dynamic energy per cycle, and the STA evaluation time into the quantities
// the paper's tables and figures report: average power and energy per
// operation as functions of clock frequency and duty cycle, for
// {no gating, SCPG @ 50% duty, SCPG-Max}.  Dense sweeps (Figs 6/8) and the
// budget/convergence solvers run on this model; the event-driven simulator
// cross-validates it (tests/test_cross_validation.cpp).
#pragma once

#include <optional>

#include "scpg/rail_model.hpp"
#include "sta/sta.hpp"

namespace scpg {

/// How the clock duty cycle is chosen for a gated design.
enum class GatingMode {
  None,    ///< override asserted: headers always on (or original design)
  Scpg50,  ///< SCPG at 50% duty (paper "Proposed SCPG")
  ScpgMax, ///< SCPG at the optimal duty cycle (paper "Proposed SCPG-Max")
};

class ScpgPowerModel {
public:
  /// Builds a model for a design.  `e_dyn_cycle` is the measured dynamic
  /// energy per clock cycle at the corner (from a calibration simulation);
  /// `rail` is nullopt for designs without a gated domain.
  ScpgPowerModel(Power p_always_on, Energy e_dyn_cycle,
                 std::optional<RailParams> rail, Time t_eval_setup,
                 Time margin = Time{0.0});

  /// Extraction helper: leakage split + rail + STA from a netlist.
  /// The netlist may be an original design (no gated domain -> no rail).
  static ScpgPowerModel extract(const Netlist& nl, const SimConfig& cfg,
                                Energy e_dyn_cycle);

  [[nodiscard]] bool has_gating() const { return rail_.has_value(); }
  [[nodiscard]] const RailParams& rail() const;
  [[nodiscard]] Power p_always_on() const { return p_aon_; }
  [[nodiscard]] Energy e_dyn_cycle() const { return e_dyn_; }
  [[nodiscard]] Time t_eval_setup() const { return t_eval_setup_; }

  /// Largest clock-high fraction at which the low phase still fits
  /// T_PGStart + T_eval + T_setup + margin.  May be below 0.5 near Fmax
  /// (the paper's "decreasing the duty cycle" case) or negative
  /// (SCPG infeasible at this frequency).
  [[nodiscard]] double max_duty_high(Frequency f) const;

  /// True when SCPG can run at this frequency and duty.
  [[nodiscard]] bool feasible(Frequency f, double duty_high) const;

  /// Duty cycle actually used by a mode at f: 0.5 for Scpg50, the optimum
  /// for ScpgMax (both clamped to feasibility), 0 for None.
  /// Returns nullopt when the mode cannot gate at f (falls back to None).
  [[nodiscard]] std::optional<double> duty_for(GatingMode mode,
                                               Frequency f) const;

  /// Average power at (f, duty) with gating active.
  [[nodiscard]] Power average_power_gated(Frequency f,
                                          double duty_high) const;

  /// Average power with gating disabled (override) or for an ungated
  /// design.
  [[nodiscard]] Power average_power_ungated(Frequency f) const;

  /// Average power under a mode (falls back to ungated when infeasible).
  [[nodiscard]] Power average_power(GatingMode mode, Frequency f) const;

  /// Energy per operation = average power / frequency.
  [[nodiscard]] Energy energy_per_op(GatingMode mode, Frequency f) const;

private:
  Power p_aon_;
  Energy e_dyn_;
  std::optional<RailParams> rail_;
  Time t_eval_setup_;
  Time margin_;
};

} // namespace scpg
