#include "scpg/analysis.hpp"

#include "util/error.hpp"
#include "util/numeric.hpp"
#include "util/parallel.hpp"

namespace scpg {

Frequency max_frequency_for_budget(const ScpgPowerModel& m, GatingMode mode,
                                   Power budget, Frequency f_lo,
                                   Frequency f_hi) {
  SCPG_REQUIRE(f_lo.v > 0 && f_hi.v > f_lo.v, "bad frequency range");
  if (m.average_power(mode, f_lo) > budget)
    throw InfeasibleError(
        "power budget is below the design's leakage floor");
  if (m.average_power(mode, f_hi) <= budget) return f_hi;
  // Bisect on log-frequency (the sweep spans decades).
  const double x = bisect(
      [&](double lf) {
        return m.average_power(mode, Frequency{std::exp(lf)}).v - budget.v;
      },
      std::log(f_lo.v), std::log(f_hi.v), 1e-9);
  return Frequency{std::exp(x)};
}

Frequency convergence_frequency(const ScpgPowerModel& m, GatingMode mode,
                                Frequency f_lo, Frequency f_hi) {
  SCPG_REQUIRE(mode != GatingMode::None,
               "convergence needs a gating mode");
  auto saving = [&](double lf) {
    const Frequency f{std::exp(lf)};
    // Where the mode cannot gate at all, it saves nothing — treat as a
    // (slightly) negative saving so the bisection converges onto the
    // boundary between "still saving" and "cannot/should not gate".
    if (!m.duty_for(mode, f)) return -1e-12;
    return m.average_power_ungated(f).v - m.average_power(mode, f).v;
  };
  const double lo = std::log(f_lo.v), hi = std::log(f_hi.v);
  if (saving(hi) > 0) return f_hi; // still saving at the top of the range
  if (saving(lo) <= 0) return f_lo; // never saves
  return Frequency{std::exp(bisect(saving, lo, hi, 1e-9))};
}

BudgetComparison compare_at_budget(const ScpgPowerModel& original,
                                   const ScpgPowerModel& gated,
                                   Power budget, Frequency f_lo,
                                   Frequency f_hi, int jobs) {
  constexpr GatingMode kModes[] = {GatingMode::None, GatingMode::Scpg50,
                                   GatingMode::ScpgMax};
  const auto points = parallel_map(3, jobs, [&](std::size_t i) {
    const GatingMode mode = kModes[i];
    const ScpgPowerModel& m = mode == GatingMode::None ? original : gated;
    BudgetPoint p;
    p.mode = mode;
    p.f = max_frequency_for_budget(m, mode, budget, f_lo, f_hi);
    p.power = m.average_power(mode, p.f);
    p.energy = m.energy_per_op(mode, p.f);
    return p;
  });
  BudgetComparison c;
  c.budget = budget;
  c.none = points[0];
  c.scpg50 = points[1];
  c.scpg_max = points[2];
  return c;
}

} // namespace scpg
