// Sleep-transistor (header) sizing study (paper §III, experiment S1).
//
// The header bank trades four quantities against each other:
//   * IR drop across the headers while the domain evaluates (hurts T_eval);
//   * in-rush current at power-up (ground bounce — bounded by the package/
//     grid budget);
//   * OFF leakage through the bank (eats into the SCPG saving);
//   * area and gate-switching energy.
//
// evaluate_header() scores a (drive, count) bank against a domain's
// demand; choose_header() reproduces the paper's result (X2 best for the
// multiplier, X4 for the Cortex-M0): the bank with the lowest IR drop
// whose in-rush stays inside the budget.
#pragma once

#include <vector>

#include "scpg/rail_model.hpp"
#include "tech/library.hpp"

namespace scpg {

struct HeaderDemand {
  /// Average current drawn by the domain while evaluating
  /// (~ E_dyn_cycle / (Vdd * T_eval)).
  Current i_eval{};
  /// Virtual-rail capacitance (for in-rush and T_PGStart).
  Capacitance c_dom{};
  Voltage vdd{};
};

struct HeaderConstraints {
  /// IR drop must stay below this fraction of Vdd.
  double max_ir_frac{0.05};
  /// Peak in-rush current budget (ground-bounce allocation).
  Current max_inrush{};
};

struct HeaderEval {
  int drive{1};
  int count{1};
  Resistance ron_eff{};
  Voltage ir_drop{};
  Current inrush_peak{}; ///< Vdd / Ron_eff at a full-depth power-up
  Power off_leak{};      ///< at the corner
  Capacitance gate_cap{};
  Area area{};
  Time t_ready{};        ///< full-collapse recharge to 95%
  bool meets_ir{false};
  bool meets_inrush{false};

  [[nodiscard]] bool feasible() const { return meets_ir && meets_inrush; }
};

/// Characterises one bank option.
[[nodiscard]] HeaderEval evaluate_header(const Library& lib, int drive,
                                         int count, const HeaderDemand& d,
                                         const HeaderConstraints& c,
                                         Corner corner);

/// Characterises every available drive at a fixed bank count.  The
/// drives are independent, so they run as engine jobs: `jobs <= 0` uses
/// default_jobs(); results are in drive order regardless of job count.
[[nodiscard]] std::vector<HeaderEval> sweep_headers(
    const Library& lib, int count, const HeaderDemand& d,
    const HeaderConstraints& c, Corner corner, int jobs = 1);

/// Picks the feasible bank with the lowest IR drop (the paper's
/// criterion); throws InfeasibleError when nothing meets the constraints.
[[nodiscard]] HeaderEval choose_header(const Library& lib, int count,
                                       const HeaderDemand& d,
                                       const HeaderConstraints& c,
                                       Corner corner);

} // namespace scpg
