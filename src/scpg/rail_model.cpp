#include "scpg/rail_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace scpg {

Voltage RailParams::v_after_off(Time t_off) const {
  SCPG_REQUIRE(t_off.v >= 0, "negative off time");
  return Voltage{vdd.v * std::exp(-t_off.v / tau_decay().v)};
}

Time RailParams::t_ready_from(Voltage v0) const {
  const double v_ready = ready_frac * vdd.v;
  if (v0.v >= v_ready) return Time{0.0};
  return Time{tau_charge().v *
              std::log((vdd.v - v0.v) / (vdd.v - v_ready))};
}

Time RailParams::t_corrupt() const {
  return Time{tau_decay().v * std::log(1.0 / corrupt_frac)};
}

Energy RailParams::leak_energy_off(Time t_off) const {
  // integral of P_gated * exp(-2t/tau) over [0, t_off]
  const double tau = tau_decay().v;
  return Energy{p_gated.v * tau / 2.0 *
                (1.0 - std::exp(-2.0 * t_off.v / tau))};
}

Energy RailParams::leak_energy_on(Time t_on, Voltage v0) const {
  // integral of P_gated * (1 - k e^{-t/tau})^2 over [0, t_on],
  // k = (Vdd - v0)/Vdd.
  const double tau = tau_charge().v;
  const double k = (vdd.v - v0.v) / vdd.v;
  const double a = t_on.v;
  const double e1 = 1.0 - std::exp(-a / tau);
  const double e2 = 1.0 - std::exp(-2.0 * a / tau);
  return Energy{p_gated.v * (a - 2.0 * k * tau * e1 + k * k * tau / 2.0 * e2)};
}

Energy RailParams::recharge_energy(Voltage v0) const {
  // Resistive loss restoring the rail from v0.  The total supply draw is
  // C*Vdd*dV, but half-ish of it replaces charge whose dissipation is
  // already attributed to the off-phase leakage bucket (the rail
  // discharges *through* the leakage paths); the genuinely extra cost of
  // a gating cycle is the 1/2 C (Vdd - v0)^2 burned in the header
  // resistance.  leak_energy_off + recharge_energy == C*Vdd*dV exactly.
  const double dv = vdd.v - v0.v;
  return Energy{0.5 * c_dom.v * dv * dv};
}

Energy RailParams::crowbar_energy(Voltage v0) const {
  return crowbar_full * ((vdd.v - v0.v) / vdd.v);
}

Energy RailParams::header_gate_energy() const {
  return Energy{hdr_gate_cap.v * vdd.v * vdd.v};
}

RailParams extract_rail_params(const Netlist& nl, const SimConfig& cfg) {
  const TechModel& tech = nl.lib().tech();
  const double lscale = tech.leak_scale(cfg.corner);
  const double escale = tech.energy_scale(cfg.corner);
  const double rscale = tech.resistance_scale(cfg.corner);

  RailParams rp;
  rp.vdd = cfg.corner.vdd;
  rp.ready_frac = cfg.rail_ready_frac;
  rp.corrupt_frac = cfg.rail_corrupt_frac;

  double g_sum = 0;
  double cap = 0;
  std::vector<bool> net_seen(nl.num_nets(), false);
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (!c.is_macro() && nl.spec_of(id).kind == CellKind::Header) {
      const CellSpec& s = nl.spec_of(id);
      g_sum += 1.0 / (s.header_ron.v * rscale);
      rp.p_hdr_off += s.header_off_leak * lscale;
      rp.hdr_gate_cap += s.header_gate_cap;
      continue;
    }
    if (c.domain != Domain::Gated) continue;
    ++rp.gated_cells;
    SCPG_REQUIRE(!c.is_macro(), "macros cannot be power gated");
    rp.p_gated += nl.spec_of(id).leakage * lscale;
    for (NetId o : c.outputs) {
      if (!net_seen[o.v]) {
        net_seen[o.v] = true;
        cap += nl.net_load(o).v;
      }
    }
  }
  SCPG_REQUIRE(rp.gated_cells > 0, "netlist has no gated domain");
  SCPG_REQUIRE(g_sum > 0, "netlist has no header cells");
  rp.ron_eff = Resistance{1.0 / g_sum};
  rp.c_dom = Capacitance{cap * cfg.rail_cap_factor};
  rp.crowbar_full = Energy{cfg.crowbar_per_cell.v * escale *
                           double(rp.gated_cells)};
  return rp;
}

} // namespace scpg
