// The sub-clock power gating transform (the paper's contribution).
//
// apply_scpg() implements the two extra steps of the paper's design flow
// (Fig 5) plus the power-gating infrastructure of Fig 2/3 on a plain
// synchronous netlist:
//
//  1. Domain separation — every combinational cell moves to the Gated
//     domain; flip-flops, macros and the clock path stay AlwaysOn
//     (the paper's "split netlist" step).
//  2. Power-gating fabric —
//      * an `override_n` input and the sleep control  SLP = clk & override_n
//        (the header's PMOS gate is driven by the clock ANDed with the
//        active-low override, Fig 2);
//      * a bank of high-Vt PMOS header cells on the virtual rail;
//      * isolation clamps on every net leaving the gated domain;
//      * the adaptive isolation controller of Fig 3: a TIEHI inside the
//        gated domain senses the virtual rail, and NISO = !clk & sense, so
//        isolation engages as soon as the clock rises and releases only
//        when the rail is back up;
//      * optional boundary buffers on register outputs entering the gated
//        domain (the placement-driven buffers the paper charges to its
//        3.9% / 6.6% area overhead).
//
// With override_n = 0 the headers are forced on and the transformed design
// is cycle-for-cycle equivalent to the original (verified by property
// tests); with override_n = 1 the combinational domain powers down during
// every clock-high phase.
#pragma once

#include "netlist/netlist.hpp"
#include "util/units.hpp"

namespace scpg {

struct ScpgOptions {
  /// Header bank: `header_count` parallel cells at drive `header_drive`.
  int header_drive{2};
  int header_count{4};

  /// Clamp polarity of inserted isolation cells.
  enum class Clamp { Low, High } clamp{Clamp::Low};

  /// Insert isolation cells at all domain outputs (disable only for the
  /// corruption-demonstration ablation).
  bool insert_isolation{true};

  /// Use the adaptive rail-sensing isolation controller (Fig 3).  When
  /// false, isolation releases on the clock's falling edge regardless of
  /// the rail voltage (ablation A1 in DESIGN.md).
  bool adaptive_controller{true};

  /// Buffer register outputs entering the gated domain.
  bool boundary_buffers{true};

  /// Drive strength of the boundary buffers (sized to the fanout cones
  /// they drive: X2 suits the multiplier's narrow cones, the SCM0 presets
  /// use X4 for its register-file fanouts).
  int buffer_drive{2};

  /// Name of the existing clock input port.
  std::string clock_port{"clk"};

  /// Name of the override input port to create (active low: 0 disables
  /// gating by forcing the headers on).
  std::string override_port{"override_n"};
};

/// One inserted isolation clamp at the gated-domain boundary: `data` is
/// the gated net entering the cell, `out` the clamped net feeding the
/// always-on domain.  Exported so runtime verification (src/verify) can
/// watch exactly the nets whose containment the clamp is responsible for.
struct IsoBinding {
  CellId cell; ///< the isolation cell instance
  NetId data;  ///< gated-domain side (may go X during collapse)
  NetId out;   ///< always-on side (must never go X)
};

/// Result of the transform (nets/cells of interest + overhead accounting).
struct ScpgInfo {
  NetId clk;        ///< clock net
  NetId override_n; ///< override input net
  NetId sleep;      ///< header control: clk & override_n
  NetId niso;       ///< isolation control (active low)
  NetId sense;      ///< virtual-rail sense (TIEHI in the gated domain)
  std::vector<CellId> headers;
  std::vector<IsoBinding> isolation; ///< boundary clamps, insertion order

  std::size_t cells_gated{0};
  std::size_t isolation_cells{0};
  std::size_t buffer_cells{0};
  Area area_before{};
  Area area_after{};

  /// Area overhead fraction (paper: ~3.9% multiplier, ~6.6% Cortex-M0).
  [[nodiscard]] double area_overhead() const {
    return area_before.v > 0 ? (area_after.v - area_before.v) / area_before.v
                             : 0.0;
  }
};

/// Applies SCPG in place.  The netlist must pass check() and contain the
/// named clock port.  Returns the inserted infrastructure.
ScpgInfo apply_scpg(Netlist& nl, const ScpgOptions& opt = {});

} // namespace scpg
