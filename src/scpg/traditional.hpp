// Traditional (idle-mode) power gating — the baseline the paper improves
// on (§I).
//
// Classic power gating shuts the WHOLE block down (combinational logic
// AND registers) during extended idle periods: a power-gating controller
// sequences clamp -> state save -> header off, and retention "balloon"
// latches beside every register keep the state alive.  It saves nothing
// while the block is actively clocked — which is exactly the gap
// sub-clock power gating fills.
//
// apply_traditional_pg() builds that architecture on a netlist:
//   * every cell (flops included) moves to the gated domain;
//   * an always-on retention balloon cell is added per register (its
//     leakage is the retention cost; the simulator's domain save/restore
//     models the save/restore hand-off);
//   * a `sleep_req` input drives the headers, and isolation clamps every
//     primary output with NISO = !sleep_req (the controller's
//     clamp-before-off ordering falls out of the gate delays);
//   * the clock must be stopped by the system while sleep_req is high,
//     as in any traditional PG design.
//
// bench_traditional_vs_scpg quantifies the paper's positioning: idle-mode
// gating wins when the block sleeps for long stretches; SCPG wins while
// the block is doing frequency-scaled active work.
#pragma once

#include "netlist/netlist.hpp"
#include "util/units.hpp"

namespace scpg {

struct TraditionalPgOptions {
  int header_drive{2};
  int header_count{4};
  /// Add an always-on retention balloon per register (disable to model a
  /// state-lost design).
  bool retention{true};
  std::string sleep_port{"sleep_req"};
  std::string clock_port{"clk"};
};

struct TraditionalPgInfo {
  NetId sleep_req;  ///< sleep request input (1 = power down)
  NetId niso;       ///< isolation control (active low)
  std::vector<CellId> headers;
  std::size_t cells_gated{0};
  std::size_t retention_cells{0};
  std::size_t isolation_cells{0};
  Area area_before{};
  Area area_after{};

  [[nodiscard]] double area_overhead() const {
    return area_before.v > 0 ? (area_after.v - area_before.v) / area_before.v
                             : 0.0;
  }
};

/// Applies traditional idle-mode power gating in place.
TraditionalPgInfo apply_traditional_pg(Netlist& nl,
                                       const TraditionalPgOptions& opt = {});

} // namespace scpg
