#include "mep/mep.hpp"

#include <algorithm>

#include "power/power.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"
#include "util/parallel.hpp"

namespace scpg {

MepPoint mep_point(const Netlist& nl, Energy e_dyn_ref, Corner ref_corner,
                   Voltage vdd, double temp_c) {
  const TechModel& tech = nl.lib().tech();
  const Corner c{vdd, temp_c};
  MepPoint p;
  p.vdd = vdd;
  const StaReport sta = run_sta(nl, c);
  p.fmax = sta.fmax;
  const double vr = vdd.v / ref_corner.vdd.v;
  p.e_dynamic = e_dyn_ref * (vr * vr);
  const Power leak = static_leakage(nl, c);
  p.e_leakage = leak * period(p.fmax);
  (void)tech;
  return p;
}

MepResult analyze_mep(const Netlist& nl, Energy e_dyn_ref, Corner ref_corner,
                      const MepOptions& opt) {
  SCPG_REQUIRE(opt.points >= 5, "need at least 5 sweep points");
  SCPG_REQUIRE(opt.v_lo.v > 0 && opt.v_hi.v > opt.v_lo.v,
               "bad voltage range");
  SCPG_REQUIRE(e_dyn_ref.v > 0, "dynamic reference energy must be positive");

  MepResult r;
  r.sweep = parallel_map(std::size_t(opt.points), opt.jobs,
                         [&](std::size_t i) {
                           const double v =
                               opt.v_lo.v + (opt.v_hi.v - opt.v_lo.v) *
                                                double(i) /
                                                double(opt.points - 1);
                           return mep_point(nl, e_dyn_ref, ref_corner,
                                            Voltage{v}, opt.temp_c);
                         });

  // Coarse minimum, then golden-section refinement around it.
  std::size_t imin = 0;
  for (std::size_t i = 1; i < r.sweep.size(); ++i)
    if (r.sweep[i].e_total() < r.sweep[imin].e_total()) imin = i;
  const double lo =
      r.sweep[imin == 0 ? 0 : imin - 1].vdd.v;
  const double hi =
      r.sweep[std::min(imin + 1, r.sweep.size() - 1)].vdd.v;
  const double v_min = golden_min(
      [&](double v) {
        return mep_point(nl, e_dyn_ref, ref_corner, Voltage{v}, opt.temp_c)
            .e_total()
            .v;
      },
      lo, hi, 1e-4);
  r.minimum = mep_point(nl, e_dyn_ref, ref_corner, Voltage{v_min},
                        opt.temp_c);
  return r;
}

} // namespace scpg
