// Sub-threshold / minimum-energy-point analysis (paper §IV).
//
// Sweeps the supply voltage and computes, at each point, the maximum
// operating frequency (STA at that corner), the dynamic energy per
// operation (CV^2 scaling of a reference measurement) and the leakage
// energy per operation (static power x critical-path-limited period).
// The energy minimum is the classic sub-threshold minimum energy point
// where leakage energy equals dynamic energy; the paper's Figs 9/10 are
// exactly this sweep for the two case studies.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace scpg {

struct MepOptions {
  Voltage v_lo{0.16};
  Voltage v_hi{0.9};
  int points{40};     ///< sweep resolution (refined around the minimum)
  double temp_c{25.0};
  /// Worker count for the voltage sweep (each point runs an independent
  /// STA + leakage evaluation); <= 0 uses default_jobs().  The
  /// golden-section refinement around the minimum is inherently serial.
  int jobs{1};
};

struct MepPoint {
  Voltage vdd{};
  Frequency fmax{};
  Energy e_dynamic{};
  Energy e_leakage{};
  [[nodiscard]] Energy e_total() const { return e_dynamic + e_leakage; }
  /// Average power when running flat out at fmax.
  [[nodiscard]] Power power() const {
    return Power{e_total().v * fmax.v};
  }
};

struct MepResult {
  std::vector<MepPoint> sweep; ///< ascending vdd
  MepPoint minimum;            ///< refined minimum-energy point
};

/// `e_dyn_ref` is the measured dynamic energy per operation at
/// `ref_corner` (from a calibration simulation); it scales as CV^2.
[[nodiscard]] MepResult analyze_mep(const Netlist& nl, Energy e_dyn_ref,
                                    Corner ref_corner,
                                    const MepOptions& opt = {});

/// One point of the sweep (exposed for tests).
[[nodiscard]] MepPoint mep_point(const Netlist& nl, Energy e_dyn_ref,
                                 Corner ref_corner, Voltage vdd,
                                 double temp_c);

} // namespace scpg
