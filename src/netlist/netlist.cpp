#include "netlist/netlist.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace scpg {

Netlist::Netlist(std::string name, const Library& lib)
    : name_(std::move(name)), lib_(&lib) {}

NetId Netlist::add_net(std::string name) {
  SCPG_REQUIRE(!name.empty(), "net needs a name");
  SCPG_REQUIRE(!net_by_name_.contains(name), "duplicate net: " + name);
  const NetId id{std::uint32_t(nets_.size())};
  Net n;
  n.name = name;
  nets_.push_back(std::move(n));
  net_by_name_.emplace(std::move(name), id);
  return id;
}

NetId Netlist::new_net() {
  for (;;) {
    std::string name = "n" + std::to_string(gensym_++);
    if (!net_by_name_.contains(name)) return add_net(std::move(name));
  }
}

NetId Netlist::add_input(std::string name) {
  SCPG_REQUIRE(!port_by_name_.contains(name), "duplicate port: " + name);
  const NetId net = add_net(name);
  const PortId pid{std::uint32_t(ports_.size())};
  ports_.push_back(Port{name, PortDir::In, net});
  port_by_name_.emplace(std::move(name), pid);
  nets_[net.v].driver_port = pid;
  return net;
}

PortId Netlist::add_output(std::string name, NetId net) {
  SCPG_REQUIRE(net.v < nets_.size(), "output port on unknown net");
  SCPG_REQUIRE(!port_by_name_.contains(name), "duplicate port: " + name);
  const PortId pid{std::uint32_t(ports_.size())};
  ports_.push_back(Port{name, PortDir::Out, net});
  port_by_name_.emplace(std::move(name), pid);
  nets_[net.v].sink_ports.push_back(pid);
  return pid;
}

void Netlist::connect_input(CellId cell, int pin, NetId net) {
  SCPG_REQUIRE(net.v < nets_.size(), "connecting unknown net");
  nets_[net.v].sinks.push_back(PinRef{cell, pin});
}

void Netlist::set_driver(NetId net, CellId cell, int out_pin) {
  Net& n = nets_[net.v];
  if (n.driven_by_port() || n.driven_by_cell())
    throw NetlistError("net '" + n.name + "' has multiple drivers");
  n.driver_cell = cell;
  n.driver_out_pin = out_pin;
}

CellId Netlist::add_cell(std::string name, SpecId spec,
                         std::vector<NetId> inputs, NetId output) {
  const CellSpec& s = lib_->spec(spec);
  SCPG_REQUIRE(s.kind != CellKind::Macro, "use add_macro_cell for macros");
  const int want = kind_num_inputs(s.kind);
  SCPG_REQUIRE(int(inputs.size()) == want,
               "cell '" + name + "' (" + s.name + ") expects " +
                   std::to_string(want) + " inputs, got " +
                   std::to_string(inputs.size()));
  SCPG_REQUIRE(output.v < nets_.size(), "cell output on unknown net");
  const CellId id{std::uint32_t(cells_.size())};
  Cell c;
  c.name = std::move(name);
  c.spec = spec;
  c.inputs = std::move(inputs);
  c.outputs = {output};
  cells_.push_back(std::move(c));
  for (std::size_t i = 0; i < cells_[id.v].inputs.size(); ++i)
    connect_input(id, int(i), cells_[id.v].inputs[i]);
  set_driver(output, id, 0);
  return id;
}

NetId Netlist::add_cell_auto(SpecId spec, std::vector<NetId> inputs) {
  const NetId out = new_net();
  std::string name = "g" + std::to_string(cells_.size());
  add_cell(std::move(name), spec, std::move(inputs), out);
  return out;
}

std::int32_t Netlist::add_macro_spec(MacroSpec spec) {
  SCPG_REQUIRE(spec.num_inputs >= 0 && spec.num_outputs >= 1,
               "macro spec needs pins");
  SCPG_REQUIRE(static_cast<bool>(spec.make_model),
               "macro spec needs a behaviour factory");
  macro_specs_.push_back(std::move(spec));
  return std::int32_t(macro_specs_.size() - 1);
}

CellId Netlist::add_macro_cell(std::string name, std::int32_t macro,
                               std::vector<NetId> inputs,
                               std::vector<NetId> outputs) {
  SCPG_REQUIRE(macro >= 0 && macro < std::int32_t(macro_specs_.size()),
               "unknown macro spec");
  const MacroSpec& m = macro_specs_[std::size_t(macro)];
  SCPG_REQUIRE(int(inputs.size()) == m.num_inputs,
               "macro '" + name + "' input count mismatch");
  SCPG_REQUIRE(int(outputs.size()) == m.num_outputs,
               "macro '" + name + "' output count mismatch");
  const CellId id{std::uint32_t(cells_.size())};
  Cell c;
  c.name = std::move(name);
  c.macro = macro;
  c.inputs = std::move(inputs);
  c.outputs = std::move(outputs);
  cells_.push_back(std::move(c));
  for (std::size_t i = 0; i < cells_[id.v].inputs.size(); ++i)
    connect_input(id, int(i), cells_[id.v].inputs[i]);
  for (std::size_t i = 0; i < cells_[id.v].outputs.size(); ++i)
    set_driver(cells_[id.v].outputs[i], id, int(i));
  return id;
}

void Netlist::rewire_input(CellId cell_id, int pin, NetId new_net) {
  SCPG_REQUIRE(cell_id.v < cells_.size(), "cell id out of range");
  SCPG_REQUIRE(new_net.v < nets_.size(), "net id out of range");
  Cell& c = cells_[cell_id.v];
  SCPG_REQUIRE(pin >= 0 && std::size_t(pin) < c.inputs.size(),
               "pin index out of range");
  const NetId old = c.inputs[std::size_t(pin)];
  if (old == new_net) return;
  auto& sinks = nets_[old.v].sinks;
  const auto it =
      std::find(sinks.begin(), sinks.end(), PinRef{cell_id, pin});
  SCPG_ASSERT(it != sinks.end());
  sinks.erase(it);
  c.inputs[std::size_t(pin)] = new_net;
  nets_[new_net.v].sinks.push_back(PinRef{cell_id, pin});
}

void Netlist::rewire_port(PortId port, NetId new_net) {
  SCPG_REQUIRE(port.v < ports_.size(), "port id out of range");
  SCPG_REQUIRE(new_net.v < nets_.size(), "net id out of range");
  Port& p = ports_[port.v];
  SCPG_REQUIRE(p.dir == PortDir::Out, "only output ports can be rewired");
  if (p.net == new_net) return;
  auto& sp = nets_[p.net.v].sink_ports;
  const auto it = std::find(sp.begin(), sp.end(), port);
  SCPG_ASSERT(it != sp.end());
  sp.erase(it);
  p.net = new_net;
  nets_[new_net.v].sink_ports.push_back(port);
}

const Cell& Netlist::cell(CellId id) const {
  SCPG_REQUIRE(id.v < cells_.size(), "cell id out of range");
  return cells_[id.v];
}
Cell& Netlist::cell(CellId id) {
  SCPG_REQUIRE(id.v < cells_.size(), "cell id out of range");
  return cells_[id.v];
}
const Net& Netlist::net(NetId id) const {
  SCPG_REQUIRE(id.v < nets_.size(), "net id out of range");
  return nets_[id.v];
}
Net& Netlist::net(NetId id) {
  SCPG_REQUIRE(id.v < nets_.size(), "net id out of range");
  return nets_[id.v];
}
const Port& Netlist::port(PortId id) const {
  SCPG_REQUIRE(id.v < ports_.size(), "port id out of range");
  return ports_[id.v];
}

const MacroSpec& Netlist::macro_spec(std::int32_t idx) const {
  SCPG_REQUIRE(idx >= 0 && idx < std::int32_t(macro_specs_.size()),
               "macro spec index out of range");
  return macro_specs_[std::size_t(idx)];
}

const CellSpec& Netlist::spec_of(CellId id) const {
  const Cell& c = cell(id);
  SCPG_REQUIRE(!c.is_macro(), "spec_of on a macro cell");
  return lib_->spec(c.spec);
}

CellKind Netlist::kind_of(CellId id) const {
  const Cell& c = cell(id);
  return c.is_macro() ? CellKind::Macro : lib_->spec(c.spec).kind;
}

bool Netlist::is_comb_node(CellId id) const {
  const CellKind k = kind_of(id);
  if (k == CellKind::Macro) return true; // macro read path is combinational
  return kind_is_combinational(k);
}

PortId Netlist::find_port(std::string_view name) const {
  const auto it = port_by_name_.find(std::string(name));
  return it == port_by_name_.end() ? PortId{} : it->second;
}

NetId Netlist::port_net(std::string_view name) const {
  const PortId p = find_port(name);
  SCPG_REQUIRE(p.valid(), "unknown port: " + std::string(name));
  return ports_[p.v].net;
}

NetId Netlist::find_net(std::string_view name) const {
  const auto it = net_by_name_.find(std::string(name));
  return it == net_by_name_.end() ? NetId{} : it->second;
}

std::vector<CellId> Netlist::all_cells() const {
  std::vector<CellId> out(cells_.size());
  for (std::uint32_t i = 0; i < cells_.size(); ++i) out[i] = CellId{i};
  return out;
}

std::vector<CellId> Netlist::flops() const {
  std::vector<CellId> out;
  for (std::uint32_t i = 0; i < cells_.size(); ++i)
    if (kind_is_sequential(kind_of(CellId{i}))) out.push_back(CellId{i});
  return out;
}

std::vector<CellId> Netlist::topo_order() const {
  // Kahn's algorithm over combinational nodes.  A cell's dependency count
  // is the number of its input nets driven by other combinational nodes.
  std::vector<int> deps(cells_.size(), 0);
  std::vector<std::vector<std::uint32_t>> users(cells_.size());
  std::size_t num_comb = 0;

  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    if (!is_comb_node(CellId{ci})) continue;
    ++num_comb;
    for (std::size_t pin = 0; pin < cells_[ci].inputs.size(); ++pin) {
      // A clocked macro's CK pin is not a combinational dependency.
      if (cells_[ci].is_macro() &&
          macro_specs_[std::size_t(cells_[ci].macro)].has_clock && pin == 0)
        continue;
      const Net& n = nets_[cells_[ci].inputs[pin].v];
      if (n.driven_by_cell() && is_comb_node(n.driver_cell)) {
        ++deps[ci];
        users[n.driver_cell.v].push_back(ci);
      }
    }
  }

  std::queue<std::uint32_t> ready;
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci)
    if (is_comb_node(CellId{ci}) && deps[ci] == 0) ready.push(ci);

  std::vector<CellId> order;
  order.reserve(num_comb);
  while (!ready.empty()) {
    const std::uint32_t ci = ready.front();
    ready.pop();
    order.push_back(CellId{ci});
    for (std::uint32_t u : users[ci])
      if (--deps[u] == 0) ready.push(u);
  }
  if (order.size() != num_comb)
    throw NetlistError("netlist '" + name_ + "' has a combinational loop");
  return order;
}

void Netlist::check() const {
  for (const Diagnostic& d : structural_diagnostics())
    if (d.severity == Severity::Error) throw NetlistError(format_diagnostic(d));
}

std::vector<Diagnostic> Netlist::structural_diagnostics() const {
  std::vector<Diagnostic> out;

  // SCPG007 — driver / connectivity invariants.
  for (std::uint32_t ni = 0; ni < nets_.size(); ++ni) {
    const NetId id{ni};
    const Net& n = nets_[ni];
    const bool port_drv = n.driven_by_port();
    const bool cell_drv = n.driven_by_cell();
    if (!port_drv && !cell_drv) {
      Diagnostic d{"SCPG007", Severity::Error,
                   "net '" + n.name + "' is undriven", {net_loc(*this, id)},
                   "connect a driver or remove the floating sinks"};
      std::string feeds;
      for (std::size_t i = 0; i < n.sinks.size() && i < 3; ++i) {
        const Cell& s = cells_[n.sinks[i].cell.v];
        feeds += (i ? ", " : "") + ("'" + s.name + "' pin " +
                                    std::to_string(n.sinks[i].pin));
        d.where.push_back(cell_loc(*this, n.sinks[i].cell));
      }
      if (!feeds.empty()) {
        d.message += "; it floats the input of cell" +
                     std::string(n.sinks.size() > 1 ? "s " : " ") + feeds;
        if (n.sinks.size() > 3)
          d.message += " and " + std::to_string(n.sinks.size() - 3) + " more";
      }
      out.push_back(std::move(d));
    }
    if (port_drv && cell_drv) {
      out.push_back({"SCPG007", Severity::Error,
                     "net '" + n.name + "' has multiple drivers: primary "
                     "input '" + ports_[n.driver_port.v].name +
                     "' and cell '" + cells_[n.driver_cell.v].name + "'",
                     {net_loc(*this, id), port_loc(*this, n.driver_port),
                      cell_loc(*this, n.driver_cell)},
                     "a net must have exactly one driver"});
    }
  }
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& c = cells_[ci];
    for (std::size_t pin = 0; pin < c.inputs.size(); ++pin)
      if (c.inputs[pin].v >= nets_.size())
        out.push_back({"SCPG007", Severity::Error,
                       "cell '" + c.name + "' input pin " +
                           std::to_string(pin) + " is not connected to any "
                           "net",
                       {cell_loc(*this, CellId{ci})},
                       "connect the pin"});
  }

  // SCPG008 — combinational loops: Kahn's algorithm, non-throwing, and a
  // predecessor walk through the unresolved remainder to name one actual
  // cycle (the remainder also contains the loop's downstream cone, which
  // would drown the report).
  std::vector<int> deps(cells_.size(), 0);
  std::vector<std::vector<std::uint32_t>> users(cells_.size());
  std::size_t num_comb = 0;
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    if (!is_comb_node(CellId{ci})) continue;
    ++num_comb;
    for (std::size_t pin = 0; pin < cells_[ci].inputs.size(); ++pin) {
      if (cells_[ci].is_macro() &&
          macro_specs_[std::size_t(cells_[ci].macro)].has_clock && pin == 0)
        continue;
      if (cells_[ci].inputs[pin].v >= nets_.size()) continue;
      const Net& n = nets_[cells_[ci].inputs[pin].v];
      if (n.driven_by_cell() && is_comb_node(n.driver_cell)) {
        ++deps[ci];
        users[n.driver_cell.v].push_back(ci);
      }
    }
  }
  std::queue<std::uint32_t> ready;
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci)
    if (is_comb_node(CellId{ci}) && deps[ci] == 0) ready.push(ci);
  std::size_t placed = 0;
  while (!ready.empty()) {
    const std::uint32_t ci = ready.front();
    ready.pop();
    ++placed;
    for (std::uint32_t u : users[ci])
      if (--deps[u] == 0) ready.push(u);
  }
  if (placed != num_comb) {
    // Walk predecessors from any unresolved node; the first revisit closes
    // a cycle.
    std::uint32_t start = 0;
    for (std::uint32_t ci = 0; ci < cells_.size(); ++ci)
      if (is_comb_node(CellId{ci}) && deps[ci] > 0) { start = ci; break; }
    std::vector<std::int64_t> at(cells_.size(), -1);
    std::vector<std::uint32_t> chain;
    std::uint32_t cur = start;
    while (at[cur] < 0) {
      at[cur] = std::int64_t(chain.size());
      chain.push_back(cur);
      for (const NetId in : cells_[cur].inputs) {
        if (in.v >= nets_.size()) continue;
        const Net& n = nets_[in.v];
        if (n.driven_by_cell() && is_comb_node(n.driver_cell) &&
            deps[n.driver_cell.v] > 0) {
          cur = n.driver_cell.v;
          break;
        }
      }
    }
    Diagnostic d{"SCPG008", Severity::Error,
                 "netlist '" + name_ + "' has a combinational loop through ",
                 {},
                 "break the loop with a flip-flop or remove the feedback"};
    std::string cycle;
    for (std::size_t i = std::size_t(at[cur]); i < chain.size(); ++i) {
      cycle += (cycle.empty() ? "" : " -> ") + ("'" + cells_[chain[i]].name +
                                                "'");
      d.where.push_back(cell_loc(*this, CellId{chain[i]}));
    }
    d.message += cycle + " -> '" + cells_[cur].name + "'";
    out.push_back(std::move(d));
  }
  return out;
}

Area Netlist::total_area() const {
  Area a{};
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& c = cells_[ci];
    a += c.is_macro() ? macro_specs_[std::size_t(c.macro)].area
                      : lib_->spec(c.spec).area;
  }
  return a;
}

std::unordered_map<std::string, int> Netlist::kind_histogram() const {
  std::unordered_map<std::string, int> h;
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& c = cells_[ci];
    if (c.is_macro())
      ++h[macro_specs_[std::size_t(c.macro)].type_name];
    else
      ++h[std::string(kind_name(lib_->spec(c.spec).kind))];
  }
  return h;
}

void Netlist::set_net_wire_cap(NetId id, Capacitance c) {
  SCPG_REQUIRE(id.v < nets_.size(), "net id out of range");
  SCPG_REQUIRE(c.v >= 0, "negative wire capacitance");
  if (net_wire_cap_.size() != nets_.size())
    net_wire_cap_.assign(nets_.size(), -1.0);
  net_wire_cap_[id.v] = c.v;
}

void Netlist::clear_net_wire_caps() { net_wire_cap_.clear(); }

Capacitance Netlist::net_load(NetId id) const {
  const Net& n = net(id);
  Capacitance load =
      (id.v < net_wire_cap_.size() && net_wire_cap_[id.v] >= 0.0)
          ? Capacitance{net_wire_cap_[id.v]}
          : wire_load_.base +
                wire_load_.per_fanout * double(n.sinks.size());
  for (const PinRef& s : n.sinks) {
    const Cell& c = cells_[s.cell.v];
    load += c.is_macro() ? macro_specs_[std::size_t(c.macro)].input_cap
                         : lib_->spec(c.spec).input_cap;
  }
  if (n.driven_by_cell()) {
    const Cell& d = cells_[n.driver_cell.v];
    if (!d.is_macro()) load += lib_->spec(d.spec).output_cap;
  }
  return load;
}

std::uint64_t structural_digest(const Netlist& nl) {
  Fnv1a h;

  // Technology parameters: the same graph over a Vt-shifted library
  // simulates differently (process-variation corners).
  const TechParams& tp = nl.lib().tech().params();
  h.mix_double(tp.vdd_nom.v);
  h.mix_double(tp.vt.v);
  h.mix_double(tp.alpha);
  h.mix_double(tp.n_vt.v);
  h.mix_double(tp.dibl_per_v);
  h.mix_double(tp.leak_char_vt.v);
  h.mix_double(tp.leak_t2x_c);
  h.mix_double(tp.temp_nom_c);
  h.mix_double(tp.delay_tempco_per_c);
  h.mix(nl.lib().name());
  h.mix(std::uint64_t(nl.lib().size()));

  h.mix(std::uint64_t(nl.num_cells()));
  h.mix(std::uint64_t(nl.num_nets()));
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const Cell& c = nl.cell(CellId{ci});
    h.mix(std::uint64_t(c.spec));
    h.mix(std::uint64_t(std::int64_t(c.macro)));
    h.mix(std::uint64_t(c.domain == Domain::Gated ? 1 : 0));
    for (const NetId in : c.inputs) h.mix(std::uint64_t(in.v));
    for (const NetId out : c.outputs) h.mix(std::uint64_t(out.v));
  }
  for (const Port& p : nl.ports()) {
    h.mix(p.name); // ports are the stimulus interface; names matter
    h.mix(std::uint64_t(p.dir == PortDir::Out ? 1 : 0));
    h.mix(std::uint64_t(p.net.v));
  }
  for (const MacroSpec& m : nl.macro_specs()) {
    h.mix(m.type_name);
    h.mix(std::uint64_t(m.num_inputs));
    h.mix(std::uint64_t(m.num_outputs));
    h.mix(std::uint64_t(m.has_clock ? 1 : 0));
    h.mix_double(m.access_delay.v);
    h.mix_double(m.leakage.v);
    h.mix_double(m.energy_per_access.v);
    h.mix_double(m.area.v);
    h.mix_double(m.input_cap.v);
    h.mix(m.content_digest);
  }
  h.mix_double(nl.wire_load().base.v);
  h.mix_double(nl.wire_load().per_fanout.v);
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni)
    h.mix_double(nl.net_load(NetId{ni}).v);
  return h.digest();
}

} // namespace scpg
