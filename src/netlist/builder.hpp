// Ergonomic netlist construction.
//
// Builder wraps a Netlist with gate-level and bus-level helpers so that
// circuit generators (src/gen, src/cpu) read like structural RTL:
//
//   Builder b(nl);
//   auto a = b.input_bus("a", 16);
//   auto sum = b.NOT(b.XOR(a[0], a[1]));
//
// A Bus is just a vector of nets, least-significant bit first.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace scpg {

using Bus = std::vector<NetId>;

class Builder {
public:
  /// Cells are instantiated at the given drive strength (default X1).
  explicit Builder(Netlist& nl, int drive = 1);

  [[nodiscard]] Netlist& netlist() { return *nl_; }
  [[nodiscard]] const Library& lib() const { return nl_->lib(); }

  // --- ports ---------------------------------------------------------------

  NetId input(const std::string& name) { return nl_->add_input(name); }
  Bus input_bus(const std::string& name, int width);
  void output(const std::string& name, NetId n) { nl_->add_output(name, n); }
  void output_bus(const std::string& name, const Bus& b);

  // --- gates ---------------------------------------------------------------

  NetId gate(CellKind k, std::vector<NetId> inputs);

  NetId NOT(NetId a) { return gate(CellKind::Inv, {a}); }
  NetId BUF(NetId a) { return gate(CellKind::Buf, {a}); }
  NetId AND(NetId a, NetId b) { return gate(CellKind::And2, {a, b}); }
  NetId OR(NetId a, NetId b) { return gate(CellKind::Or2, {a, b}); }
  NetId NAND(NetId a, NetId b) { return gate(CellKind::Nand2, {a, b}); }
  NetId NOR(NetId a, NetId b) { return gate(CellKind::Nor2, {a, b}); }
  NetId XOR(NetId a, NetId b) { return gate(CellKind::Xor2, {a, b}); }
  NetId XNOR(NetId a, NetId b) { return gate(CellKind::Xnor2, {a, b}); }
  NetId NAND3(NetId a, NetId b, NetId c) {
    return gate(CellKind::Nand3, {a, b, c});
  }
  NetId NOR3(NetId a, NetId b, NetId c) {
    return gate(CellKind::Nor3, {a, b, c});
  }
  NetId AOI21(NetId a, NetId b, NetId c) {
    return gate(CellKind::Aoi21, {a, b, c});
  }
  NetId OAI21(NetId a, NetId b, NetId c) {
    return gate(CellKind::Oai21, {a, b, c});
  }
  /// MUX(a, b, s) = s ? b : a.
  NetId MUX(NetId a, NetId b, NetId s) {
    return gate(CellKind::Mux2, {a, b, s});
  }

  NetId AND3(NetId a, NetId b, NetId c) { return AND(AND(a, b), c); }
  NetId OR3(NetId a, NetId b, NetId c) { return OR(OR(a, b), c); }

  NetId tie_hi();
  NetId tie_lo();

  // --- sequential ----------------------------------------------------------

  NetId dff(NetId d, NetId clk) { return gate(CellKind::Dff, {d, clk}); }
  NetId dffr(NetId d, NetId clk, NetId rn) {
    return gate(CellKind::DffR, {d, clk, rn});
  }
  Bus dff_bus(const Bus& d, NetId clk);
  Bus dffr_bus(const Bus& d, NetId clk, NetId rn);

  // --- bus operations -------------------------------------------------------

  Bus not_bus(const Bus& a);
  Bus and_bus(const Bus& a, const Bus& b);
  Bus or_bus(const Bus& a, const Bus& b);
  Bus xor_bus(const Bus& a, const Bus& b);
  /// Per-bit 2:1 mux: s ? b : a.
  Bus mux_bus(const Bus& a, const Bus& b, NetId s);
  /// AND of every bit of `a` with the single net `en`.
  Bus mask_bus(const Bus& a, NetId en);

  /// Wide OR / AND reduction trees.
  NetId reduce_or(const Bus& a);
  NetId reduce_and(const Bus& a);
  /// a == b (XNOR-reduce).
  NetId equal(const Bus& a, const Bus& b);
  /// a == constant.
  NetId equal_const(const Bus& a, std::uint64_t value);

  /// Constant bus from an integer literal (ties).
  Bus const_bus(std::uint64_t value, int width);

  // --- misc ----------------------------------------------------------------

  /// Current drive strength used for new gates.
  [[nodiscard]] int drive() const { return drive_; }
  void set_drive(int d) { drive_ = d; }

private:
  Netlist* nl_;
  int drive_;
  NetId tie_hi_{};
  NetId tie_lo_{};
};

} // namespace scpg
