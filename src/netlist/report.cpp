#include "netlist/report.hpp"

#include <iomanip>
#include <ostream>

namespace scpg {

DesignStats compute_stats(const Netlist& nl) {
  DesignStats s;
  s.num_cells = nl.num_cells();
  s.num_nets = nl.num_nets();
  s.num_ports = nl.num_ports();
  s.area = nl.total_area();
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    const CellKind k = nl.kind_of(id);
    if (c.is_macro()) {
      ++s.num_macros;
      s.nominal_leakage += nl.macro_spec(c.macro).leakage;
    } else {
      s.nominal_leakage += nl.spec_of(id).leakage;
      if (kind_is_sequential(k)) ++s.num_flops;
      else if (k == CellKind::Header) ++s.num_headers;
      else if (k == CellKind::IsoLo || k == CellKind::IsoHi)
        ++s.num_isolation;
      else ++s.num_comb_cells;
    }
    if (c.domain == Domain::Gated) ++s.cells_gated;
    else ++s.cells_always_on;
  }
  return s;
}

void print_stats(const DesignStats& s, std::ostream& os,
                 const std::string& title) {
  if (!title.empty()) os << title << '\n';
  os << "  cells: " << s.num_cells << " (comb " << s.num_comb_cells
     << ", flops " << s.num_flops << ", iso " << s.num_isolation
     << ", headers " << s.num_headers << ", macros " << s.num_macros
     << ")\n";
  os << "  nets: " << s.num_nets << ", ports: " << s.num_ports << '\n';
  os << "  area: " << std::fixed << std::setprecision(1) << in_um2(s.area)
     << " um^2\n";
  os << "  nominal leakage: " << std::setprecision(2)
     << in_uW(s.nominal_leakage) << " uW\n";
  os << "  domains: " << s.cells_always_on << " always-on, " << s.cells_gated
     << " gated\n";
}

void write_dot(const Netlist& nl, std::ostream& os) {
  os << "digraph \"" << nl.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  for (const Port& p : nl.ports())
    os << "  \"port:" << p.name << "\" [shape="
       << (p.dir == PortDir::In ? "triangle" : "invtriangle") << "];\n";
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const Cell& c = nl.cell(CellId{ci});
    os << "  \"" << c.name << "\" [label=\"" << c.name << "\\n"
       << (c.is_macro() ? nl.macro_spec(c.macro).type_name
                        : nl.spec_of(CellId{ci}).name)
       << '"';
    if (c.domain == Domain::Gated)
      os << ", style=filled, fillcolor=lightblue";
    os << "];\n";
  }
  // Edges: driver -> sink for each net.
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const Net& n = nl.net(NetId{ni});
    std::string src;
    if (n.driven_by_port())
      src = "port:" + nl.port(n.driver_port).name;
    else if (n.driven_by_cell())
      src = nl.cell(n.driver_cell).name;
    else
      continue;
    for (const PinRef& s : n.sinks)
      os << "  \"" << src << "\" -> \"" << nl.cell(s.cell).name
         << "\" [label=\"" << n.name << "\", fontsize=7];\n";
    for (PortId p : n.sink_ports)
      os << "  \"" << src << "\" -> \"port:" << nl.port(p).name
         << "\" [label=\"" << n.name << "\", fontsize=7];\n";
  }
  os << "}\n";
}

} // namespace scpg
