// Netlist reports: design statistics and Graphviz export.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "util/units.hpp"

namespace scpg {

/// Summary statistics of a netlist (gate counts, area, nominal leakage).
struct DesignStats {
  std::size_t num_cells{0};
  std::size_t num_comb_cells{0};
  std::size_t num_flops{0};
  std::size_t num_macros{0};
  std::size_t num_isolation{0};
  std::size_t num_headers{0};
  std::size_t num_nets{0};
  std::size_t num_ports{0};
  Area area{};
  Power nominal_leakage{}; ///< state-averaged, at the nominal corner
  std::size_t cells_gated{0};   ///< cells tagged Domain::Gated
  std::size_t cells_always_on{0};
};

[[nodiscard]] DesignStats compute_stats(const Netlist& nl);

/// Human-readable stats block.
void print_stats(const DesignStats& s, std::ostream& os,
                 const std::string& title = {});

/// Graphviz dot export (cells as nodes, nets as edges); gated-domain cells
/// are drawn filled so the SCPG split is visible.
void write_dot(const Netlist& nl, std::ostream& os);

} // namespace scpg
