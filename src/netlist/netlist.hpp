// Gate-level netlist object model.
//
// A Netlist is a flat graph of cell instances connected by nets, with named
// primary ports, bound to one cell Library.  Cells are standard cells
// (single output) or behavioural macros (multiple outputs).  Every cell
// carries a power-domain tag; a freshly built netlist is entirely
// AlwaysOn and the SCPG transform (src/scpg) retags and augments it.
//
// Structural invariants enforced by check():
//   * every net has exactly one driver (port, cell output, or macro output);
//   * every cell input pin is connected;
//   * the combinational subgraph is acyclic;
//   * flip-flop clock pins are driven (directly or through buffers) from a
//     primary input.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/diag.hpp"
#include "netlist/ids.hpp"
#include "netlist/macro.hpp"
#include "tech/library.hpp"

namespace scpg {

enum class PortDir : std::uint8_t { In, Out };

/// Power-domain membership of a cell (the SCPG architecture has exactly
/// two domains: the always-on sequential domain and the gated
/// combinational domain, paper Fig 2).
enum class Domain : std::uint8_t { AlwaysOn, Gated };

/// Sink reference: an input pin of a cell.
struct PinRef {
  CellId cell;
  int pin{0};

  auto operator<=>(const PinRef&) const = default;
};

struct Cell {
  std::string name;
  SpecId spec{kInvalidSpec};   ///< standard cell spec (invalid for macros)
  std::int32_t macro{-1};      ///< index into Netlist macro specs, or -1
  std::vector<NetId> inputs;   ///< one net per input pin
  std::vector<NetId> outputs;  ///< one net per output pin (1 for std cells)
  Domain domain{Domain::AlwaysOn};

  [[nodiscard]] bool is_macro() const { return macro >= 0; }
};

struct Net {
  std::string name;
  // Driver: exactly one of the following is set after check() passes.
  PortId driver_port;      ///< primary input driving this net
  CellId driver_cell;      ///< cell whose output drives this net
  int driver_out_pin{0};   ///< output pin index on driver_cell
  std::vector<PinRef> sinks;     ///< cell input pins reading this net
  std::vector<PortId> sink_ports;///< primary outputs reading this net

  [[nodiscard]] bool driven_by_port() const { return driver_port.valid(); }
  [[nodiscard]] bool driven_by_cell() const { return driver_cell.valid(); }
};

struct Port {
  std::string name;
  PortDir dir{PortDir::In};
  NetId net;
};

class Netlist {
public:
  /// The library must outlive the netlist.
  Netlist(std::string name, const Library& lib);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  [[nodiscard]] const Library& lib() const { return *lib_; }

  // --- construction -------------------------------------------------------

  /// Creates a named net with no driver yet.
  NetId add_net(std::string name);

  /// Creates a fresh net with a generated name.
  NetId new_net();

  /// Creates a primary input port and its net; returns the net.
  NetId add_input(std::string name);

  /// Creates a primary output port reading `net`.
  PortId add_output(std::string name, NetId net);

  /// Instantiates a standard cell.  `inputs.size()` must match the spec's
  /// input count; `output` receives the cell's output pin.
  CellId add_cell(std::string name, SpecId spec, std::vector<NetId> inputs,
                  NetId output);

  /// Instantiates a standard cell with a freshly created output net;
  /// returns that net.
  NetId add_cell_auto(SpecId spec, std::vector<NetId> inputs);

  /// Registers a macro type; returns its index for add_macro_cell.
  std::int32_t add_macro_spec(MacroSpec spec);

  /// Instantiates a macro.
  CellId add_macro_cell(std::string name, std::int32_t macro,
                        std::vector<NetId> inputs,
                        std::vector<NetId> outputs);

  /// Reconnects input pin `pin` of `cell` to a different net (used by
  /// transforms such as isolation insertion).
  void rewire_input(CellId cell, int pin, NetId new_net);

  /// Repoints an output port to a different net.
  void rewire_port(PortId port, NetId new_net);

  /// Validates all structural invariants; throws NetlistError with the
  /// first error of structural_diagnostics(), so the message names the
  /// offending cells and nets.
  void check() const;

  /// Non-throwing structural scan: every invariant violation as a located,
  /// named Diagnostic.  Rule ids match the static linter (src/lint):
  /// SCPG007 for driver/connectivity problems (undriven net, floating
  /// input, double drive), SCPG008 for combinational loops (with the cycle
  /// cells named).  An empty result means check() would pass.
  [[nodiscard]] std::vector<Diagnostic> structural_diagnostics() const;

  // --- access --------------------------------------------------------------

  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }

  [[nodiscard]] const Cell& cell(CellId id) const;
  [[nodiscard]] Cell& cell(CellId id);
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] Net& net(NetId id);
  [[nodiscard]] const Port& port(PortId id) const;

  [[nodiscard]] const MacroSpec& macro_spec(std::int32_t idx) const;
  [[nodiscard]] std::span<const MacroSpec> macro_specs() const {
    return macro_specs_;
  }

  /// Spec of a (standard) cell instance.
  [[nodiscard]] const CellSpec& spec_of(CellId id) const;

  /// Kind of a cell instance (CellKind::Macro for macros).
  [[nodiscard]] CellKind kind_of(CellId id) const;

  /// True for cells evaluated combinationally (gates + un-clocked macro
  /// read paths).
  [[nodiscard]] bool is_comb_node(CellId id) const;

  /// Finds a port by name; invalid PortId if absent.
  [[nodiscard]] PortId find_port(std::string_view name) const;
  [[nodiscard]] NetId port_net(std::string_view name) const;

  /// Finds a net by name; invalid if absent.
  [[nodiscard]] NetId find_net(std::string_view name) const;

  /// Ports in declaration order.
  [[nodiscard]] std::span<const Port> ports() const { return ports_; }

  /// All cell ids (index order).
  [[nodiscard]] std::vector<CellId> all_cells() const;

  /// Combinational cells + macros in topological (fanin-before-fanout)
  /// order.  Flip-flop outputs and primary inputs are sources.
  /// Throws NetlistError on a combinational cycle.
  [[nodiscard]] std::vector<CellId> topo_order() const;

  /// Flip-flop cell ids.
  [[nodiscard]] std::vector<CellId> flops() const;

  /// Total cell area (standard cells + macros).
  [[nodiscard]] Area total_area() const;

  /// Count of cells per kind name (for reports).
  [[nodiscard]] std::unordered_map<std::string, int> kind_histogram() const;

  /// Capacitive load on a net: sink pin caps + self-load of the driver +
  /// the library wire-load model (base + per-fanout).
  [[nodiscard]] Capacitance net_load(NetId id) const;

  /// Wire-load model (calibration constants for estimated routing cap).
  struct WireLoad {
    Capacitance base{0.8e-15};
    Capacitance per_fanout{0.5e-15};
  };
  [[nodiscard]] const WireLoad& wire_load() const { return wire_load_; }
  void set_wire_load(WireLoad w) { wire_load_ = w; }

  /// Placement-derived routing capacitance for one net; overrides the
  /// statistical wire-load model in net_load().  Set by the placer
  /// (src/place) after wire-length estimation.
  void set_net_wire_cap(NetId id, Capacitance c);
  /// Clears all per-net overrides (back to the statistical model).
  void clear_net_wire_caps();

private:
  void connect_input(CellId cell, int pin, NetId net);
  void set_driver(NetId net, CellId cell, int out_pin);

  std::string name_;
  const Library* lib_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;
  std::vector<MacroSpec> macro_specs_;
  std::unordered_map<std::string, PortId> port_by_name_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::uint64_t gensym_{0};
  WireLoad wire_load_{};
  std::vector<double> net_wire_cap_; ///< per-net override in F; -1 = unset
};

/// Order-stable structural digest: cells (spec, pin connections, domain),
/// ports (with names — they are the stimulus interface), macro specs
/// (including their content digest), the wire-load model, per-net
/// wire-cap overrides, and the bound library's technology parameters all
/// feed the hash.  Two netlists with equal digests simulate identically
/// at a given SimConfig, which is what the sweep engine's result cache
/// keys on.  Internal cell/net names are excluded — renaming internals
/// cannot change behaviour.
[[nodiscard]] std::uint64_t structural_digest(const Netlist& nl);

} // namespace scpg
