// Behavioural hard macros (ROM / RAM).
//
// The paper's microprocessor case study needs instruction and data memory.
// Memories are not standard cells and are never inside the power-gated
// combinational domain (the paper gates core logic only), so they are
// modelled behaviourally: a MacroSpec describes the interface and the
// characterised costs, and a MacroModel instance (one per cell instance)
// provides the behaviour to the simulators.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "tech/logic.hpp"
#include "util/units.hpp"

namespace scpg {

/// Stateful behaviour of one macro instance.
class MacroModel {
public:
  virtual ~MacroModel() = default;

  /// Combinational evaluation: outputs as a function of inputs and any
  /// internal state (e.g. asynchronous ROM/RAM read).
  virtual void eval(std::span<const Logic> inputs,
                    std::span<Logic> outputs) = 0;

  /// State update on the rising edge of the clock pin (only called when
  /// MacroSpec::has_clock).  `inputs` are the pin values at the edge.
  virtual void clock_edge(std::span<const Logic> inputs) { (void)inputs; }

  virtual void reset() {}
};

/// Interface + characterisation of a macro type.
struct MacroSpec {
  std::string type_name;
  int num_inputs{0};
  int num_outputs{0};
  bool has_clock{false}; ///< if true, input pin 0 is CK

  Time access_delay{};      ///< input-to-output delay
  Power leakage{};          ///< static power (always-on)
  Energy energy_per_access{};///< dynamic energy per output-changing access
  Area area{};
  Capacitance input_cap{};  ///< per input pin

  /// Digest of the behavioural contents hidden inside make_model (e.g.
  /// the ROM program image).  Builders that bake state into the factory
  /// closure must set this so structural_digest() — and therefore the
  /// sweep engine's result cache — distinguishes netlists that differ
  /// only in memory contents.  Zero means "stateless/empty".
  std::uint64_t content_digest{0};

  /// Factory producing the per-instance behaviour.
  std::function<std::unique_ptr<MacroModel>()> make_model;
};

} // namespace scpg
