// Located, named diagnostics over a netlist.
//
// One Diagnostic is a machine-consumable finding: a stable rule id, a
// severity, a human message, the cell/net/port locations it refers to
// (resolved to *names*, so reports stay actionable after the ids shift),
// and an optional fix hint.  Netlist::structural_diagnostics() produces
// them for the structural invariants; the static linter (src/lint) builds
// its whole rule engine on the same type, so `scpgc lint`, check() errors
// and the JSON report all speak one format.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/ids.hpp"

namespace scpg {

class Netlist;

enum class Severity : std::uint8_t { Note, Warning, Error };

[[nodiscard]] std::string_view severity_name(Severity s);

/// One location a diagnostic points at.  `name` is resolved eagerly from
/// the netlist so formatting never needs the graph again.
struct DiagLoc {
  enum class Kind : std::uint8_t { Cell, Net, Port, Design };
  Kind kind{Kind::Design};
  std::uint32_t id{~std::uint32_t{0}};
  std::string name;
};

[[nodiscard]] std::string_view diag_loc_kind_name(DiagLoc::Kind k);

/// Resolved-location helpers.
[[nodiscard]] DiagLoc cell_loc(const Netlist& nl, CellId id);
[[nodiscard]] DiagLoc net_loc(const Netlist& nl, NetId id);
[[nodiscard]] DiagLoc port_loc(const Netlist& nl, PortId id);
[[nodiscard]] DiagLoc design_loc(const Netlist& nl);

struct Diagnostic {
  std::string rule;           ///< stable id, e.g. "SCPG007"
  Severity severity{Severity::Error};
  std::string message;        ///< names offending cells/nets, not just ids
  std::vector<DiagLoc> where; ///< primary location first
  std::string hint;           ///< how to fix; empty if none applies
};

/// "error[SCPG007]: message (net 'x', cell 'y'); hint: ..."
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

} // namespace scpg
