// Structural Verilog interchange.
//
// The paper's flow (Fig 5, step 1) parses a synthesised netlist and moves
// the combinational logic into a separate Verilog module so the two power
// domains can be declared in UPF.  This module provides:
//
//   * write_verilog        — flat structural netlist (gate instances only);
//   * write_verilog split  — domain-split form: the top module keeps the
//     always-on cells and instantiates `<name>_pd_comb` holding every
//     gated-domain cell, exactly the artefact step 1 of the paper's flow
//     produces;
//   * read_verilog         — parses the flat structural subset back into a
//     Netlist (escaped identifiers supported, so bus bits like \a[3]
//     round-trip).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace scpg {

struct VerilogWriteOptions {
  /// Emit the gated domain as a child module (paper flow step 1).
  bool split_domains{false};
};

void write_verilog(const Netlist& nl, std::ostream& os,
                   VerilogWriteOptions opt = {});
[[nodiscard]] std::string write_verilog_string(const Netlist& nl,
                                               VerilogWriteOptions opt = {});

/// Resolves a macro type name to its spec when reading a netlist that
/// instantiates macros (`MACRO_<type>` instances).
using MacroResolver = std::function<MacroSpec(const std::string&)>;

/// Parses a flat structural module.  Cell types must exist in `lib`;
/// macro instances require a resolver.  Throws ParseError / NetlistError;
/// `source` names the input (file path) in parse diagnostics.
[[nodiscard]] Netlist read_verilog(std::istream& is, const Library& lib,
                                   const MacroResolver& macros = {},
                                   const std::string& source = "<verilog>");
[[nodiscard]] Netlist read_verilog_string(const std::string& text,
                                          const Library& lib,
                                          const MacroResolver& macros = {},
                                          const std::string& source =
                                              "<string>");

} // namespace scpg
