// Cycle-accurate functional simulator (zero-delay).
//
// FuncSim evaluates a netlist one clock cycle at a time with no timing:
// combinational logic settles instantly in topological order, and clock()
// performs one global rising edge (flops capture D, clocked macros update).
// It is the golden functional reference used by the equivalence tests
// (pre/post SCPG transform), by the gate-level-CPU-vs-ISS checks, and for
// fast activity estimation; the event-driven simulator in src/sim adds
// real timing and power.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace scpg {

class FuncSim {
public:
  explicit FuncSim(const Netlist& nl);

  [[nodiscard]] const Netlist& netlist() const { return *nl_; }

  /// Sets all flops to 0 and resets macro state; net values become X until
  /// the next eval().
  void reset();

  /// Drives a primary input (persists across cycles until changed).
  void set_input(std::string_view port, Logic v);

  /// Drives the `width` low bits of bus "name[0]..name[width-1]".
  void set_input_bus(std::string_view name, std::uint64_t value, int width);

  /// Settles combinational logic from the current inputs and flop states.
  void eval();

  /// One rising clock edge: flops capture D, clocked macros update, then
  /// combinational logic re-settles.  Requires eval() semantics: inputs for
  /// this cycle must be applied before the call.
  void clock();

  [[nodiscard]] Logic net_value(NetId id) const;
  [[nodiscard]] Logic output(std::string_view port) const;

  /// Reads bus "name[0..width-1]" as an integer; requires all bits known.
  [[nodiscard]] std::uint64_t read_bus(std::string_view name,
                                       int width) const;

  /// Direct flop state access (by cell id).
  [[nodiscard]] Logic flop_state(CellId flop) const;
  void set_flop_state(CellId flop, Logic v);

  /// Nets whose settled value changed in the most recent eval()/clock()
  /// (used for cheap activity statistics).
  [[nodiscard]] std::size_t toggles_last_cycle() const {
    return toggles_last_cycle_;
  }

  /// Access to a macro instance's behavioural model (e.g. to preload a RAM).
  [[nodiscard]] MacroModel* macro_model(CellId cell);

private:
  void propagate();

  const Netlist* nl_;
  std::vector<CellId> topo_;
  std::vector<Logic> net_values_;
  std::vector<Logic> flop_state_; // indexed by cell id (X for non-flops)
  std::vector<std::unique_ptr<MacroModel>> macro_models_; // by cell id
  std::size_t toggles_last_cycle_{0};
};

} // namespace scpg
