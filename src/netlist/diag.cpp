#include "netlist/diag.hpp"

#include "netlist/netlist.hpp"

namespace scpg {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

std::string_view diag_loc_kind_name(DiagLoc::Kind k) {
  switch (k) {
    case DiagLoc::Kind::Cell: return "cell";
    case DiagLoc::Kind::Net: return "net";
    case DiagLoc::Kind::Port: return "port";
    case DiagLoc::Kind::Design: return "design";
  }
  return "design";
}

DiagLoc cell_loc(const Netlist& nl, CellId id) {
  return {DiagLoc::Kind::Cell, id.v, nl.cell(id).name};
}

DiagLoc net_loc(const Netlist& nl, NetId id) {
  return {DiagLoc::Kind::Net, id.v, nl.net(id).name};
}

DiagLoc port_loc(const Netlist& nl, PortId id) {
  return {DiagLoc::Kind::Port, id.v, nl.port(id).name};
}

DiagLoc design_loc(const Netlist& nl) {
  return {DiagLoc::Kind::Design, ~std::uint32_t{0}, nl.name()};
}

std::string format_diagnostic(const Diagnostic& d) {
  std::string out(severity_name(d.severity));
  out += "[" + d.rule + "]: " + d.message;
  if (!d.where.empty()) {
    out += " (";
    for (std::size_t i = 0; i < d.where.size(); ++i) {
      if (i) out += ", ";
      out += diag_loc_kind_name(d.where[i].kind);
      out += " '" + d.where[i].name + "'";
    }
    out += ")";
  }
  if (!d.hint.empty()) out += "; hint: " + d.hint;
  return out;
}

} // namespace scpg
