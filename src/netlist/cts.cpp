#include "netlist/cts.hpp"

#include "util/error.hpp"

namespace scpg {

CtsInfo synthesize_clock_tree(Netlist& nl, std::string_view clock_port,
                              const CtsOptions& opt) {
  SCPG_REQUIRE(opt.max_fanout >= 2, "max_fanout must be at least 2");
  const NetId root = nl.port_net(clock_port);

  // Clock sinks: sequential CK pins and clocked-macro clock pins.
  std::vector<PinRef> sinks;
  for (const PinRef& s : nl.net(root).sinks) {
    const Cell& c = nl.cell(s.cell);
    const bool is_ck =
        (!c.is_macro() && kind_is_sequential(nl.kind_of(s.cell)) &&
         s.pin == 1) ||
        (c.is_macro() && nl.macro_spec(c.macro).has_clock && s.pin == 0);
    if (is_ck) sinks.push_back(s);
  }

  CtsInfo info;
  info.sinks = sinks.size();
  if (sinks.empty() ||
      nl.net(root).sinks.size() <= std::size_t(opt.max_fanout))
    return info;

  const SpecId buf = nl.lib().pick(CellKind::Buf, opt.buffer_drive);
  std::size_t serial = 0;

  // Bottom-up balanced construction: every element of `level` is a net
  // that must be driven through the same number of remaining buffer
  // stages.  Start with one leaf buffer per max_fanout sinks, then keep
  // buffering until the root can drive the top level directly.
  std::vector<std::vector<PinRef>> leaf_groups;
  for (std::size_t i = 0; i < sinks.size();
       i += std::size_t(opt.max_fanout)) {
    leaf_groups.emplace_back(
        sinks.begin() + std::ptrdiff_t(i),
        sinks.begin() +
            std::ptrdiff_t(std::min(i + std::size_t(opt.max_fanout),
                                    sinks.size())));
  }

  // Create leaf buffers; their inputs are wired level by level below.
  struct Pending {
    CellId buffer;
  };
  std::vector<Pending> level;
  for (auto& group : leaf_groups) {
    const NetId out = nl.add_net("cts_l0_" + std::to_string(serial));
    // Buffer input temporarily from the root; re-wired if more levels
    // are needed.
    const CellId bc = nl.add_cell("u_cts_" + std::to_string(serial), buf,
                                  {root}, out);
    ++serial;
    for (const PinRef& s : group) nl.rewire_input(s.cell, s.pin, out);
    level.push_back({bc});
    ++info.buffers_inserted;
  }
  info.levels = 1;

  while (level.size() > std::size_t(opt.max_fanout)) {
    std::vector<Pending> next;
    for (std::size_t i = 0; i < level.size();
         i += std::size_t(opt.max_fanout)) {
      const NetId out = nl.add_net("cts_l" + std::to_string(info.levels) +
                                   "_" + std::to_string(serial));
      const CellId bc = nl.add_cell("u_cts_" + std::to_string(serial), buf,
                                    {root}, out);
      ++serial;
      const std::size_t end =
          std::min(i + std::size_t(opt.max_fanout), level.size());
      for (std::size_t k = i; k < end; ++k)
        nl.rewire_input(level[k].buffer, 0, out);
      next.push_back({bc});
      ++info.buffers_inserted;
    }
    level = std::move(next);
    ++info.levels;
  }

  nl.check();
  return info;
}

} // namespace scpg
