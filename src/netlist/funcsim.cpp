#include "netlist/funcsim.hpp"

#include <array>

#include "util/error.hpp"

namespace scpg {

FuncSim::FuncSim(const Netlist& nl) : nl_(&nl), topo_(nl.topo_order()) {
  net_values_.assign(nl.num_nets(), Logic::X);
  flop_state_.assign(nl.num_cells(), Logic::X);
  macro_models_.resize(nl.num_cells());
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const Cell& c = nl.cell(CellId{ci});
    if (c.is_macro())
      macro_models_[ci] = nl.macro_spec(c.macro).make_model();
  }
}

void FuncSim::reset() {
  for (std::uint32_t ci = 0; ci < nl_->num_cells(); ++ci) {
    if (kind_is_sequential(nl_->kind_of(CellId{ci})))
      flop_state_[ci] = Logic::L0;
    if (macro_models_[ci]) macro_models_[ci]->reset();
  }
  std::fill(net_values_.begin(), net_values_.end(), Logic::X);
}

void FuncSim::set_input(std::string_view port, Logic v) {
  const PortId p = nl_->find_port(port);
  SCPG_REQUIRE(p.valid(), "unknown input port: " + std::string(port));
  SCPG_REQUIRE(nl_->port(p).dir == PortDir::In,
               "set_input on an output port: " + std::string(port));
  net_values_[nl_->port(p).net.v] = v;
}

void FuncSim::set_input_bus(std::string_view name, std::uint64_t value,
                            int width) {
  for (int i = 0; i < width; ++i) {
    const std::string pin = std::string(name) + "[" + std::to_string(i) + "]";
    set_input(pin, from_bool((value >> i) & 1));
  }
}

void FuncSim::propagate() {
  std::size_t toggles = 0;
  // Flop Q values first (they are sources for the combinational pass).
  for (std::uint32_t ci = 0; ci < nl_->num_cells(); ++ci) {
    const CellKind k = nl_->kind_of(CellId{ci});
    if (!kind_is_sequential(k)) continue;
    const Cell& c = nl_->cell(CellId{ci});
    Logic q = flop_state_[ci];
    if (k == CellKind::DffR) {
      // Async active-low reset dominates.
      const Logic rn = net_values_[c.inputs[2].v];
      if (rn == Logic::L0) q = Logic::L0;
    }
    Logic& slot = net_values_[c.outputs[0].v];
    if (slot != q) {
      slot = q;
      ++toggles;
    }
  }
  // Combinational cells and macro read paths in topological order.
  std::array<Logic, 8> in{};
  std::array<Logic, 64> out{};
  for (CellId id : topo_) {
    const Cell& c = nl_->cell(id);
    if (c.is_macro()) {
      SCPG_REQUIRE(c.inputs.size() <= 64 && c.outputs.size() <= 64,
                   "macro wider than the functional simulator supports");
      std::array<Logic, 64> min{};
      for (std::size_t i = 0; i < c.inputs.size(); ++i)
        min[i] = net_values_[c.inputs[i].v];
      macro_models_[id.v]->eval(
          std::span<const Logic>(min.data(), c.inputs.size()),
          std::span<Logic>(out.data(), c.outputs.size()));
      for (std::size_t i = 0; i < c.outputs.size(); ++i) {
        Logic& slot = net_values_[c.outputs[i].v];
        if (slot != out[i]) {
          slot = out[i];
          ++toggles;
        }
      }
      continue;
    }
    const CellKind k = nl_->spec_of(id).kind;
    for (std::size_t i = 0; i < c.inputs.size(); ++i)
      in[i] = net_values_[c.inputs[i].v];
    const Logic y =
        eval_cell(k, std::span<const Logic>(in.data(), c.inputs.size()));
    Logic& slot = net_values_[c.outputs[0].v];
    if (slot != y) {
      slot = y;
      ++toggles;
    }
  }
  toggles_last_cycle_ = toggles;
}

void FuncSim::eval() { propagate(); }

void FuncSim::clock() {
  // Settle combinational logic from the current inputs, capture all flop D
  // and clocked-macro inputs simultaneously, update state, re-settle.
  propagate();
  std::vector<std::pair<std::uint32_t, Logic>> captures;
  captures.reserve(64);
  for (std::uint32_t ci = 0; ci < nl_->num_cells(); ++ci) {
    const CellKind k = nl_->kind_of(CellId{ci});
    if (kind_is_sequential(k)) {
      const Cell& c = nl_->cell(CellId{ci});
      Logic d = net_values_[c.inputs[0].v];
      if (k == CellKind::DffR && net_values_[c.inputs[2].v] == Logic::L0)
        d = Logic::L0;
      captures.emplace_back(ci, d);
    }
  }
  std::array<Logic, 64> min{};
  for (std::uint32_t ci = 0; ci < nl_->num_cells(); ++ci) {
    const Cell& c = nl_->cell(CellId{ci});
    if (!c.is_macro()) continue;
    if (!nl_->macro_spec(c.macro).has_clock) continue;
    for (std::size_t i = 0; i < c.inputs.size(); ++i)
      min[i] = net_values_[c.inputs[i].v];
    macro_models_[ci]->clock_edge(
        std::span<const Logic>(min.data(), c.inputs.size()));
  }
  for (const auto& [ci, d] : captures) flop_state_[ci] = d;
  propagate();
}

Logic FuncSim::net_value(NetId id) const {
  SCPG_REQUIRE(id.v < net_values_.size(), "net id out of range");
  return net_values_[id.v];
}

Logic FuncSim::output(std::string_view port) const {
  const PortId p = nl_->find_port(port);
  SCPG_REQUIRE(p.valid(), "unknown port: " + std::string(port));
  return net_values_[nl_->port(p).net.v];
}

std::uint64_t FuncSim::read_bus(std::string_view name, int width) const {
  SCPG_REQUIRE(width >= 1 && width <= 64, "bus width out of range");
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    const std::string pin = std::string(name) + "[" + std::to_string(i) + "]";
    // Bus bits may be named as ports (outputs) or as plain nets.
    NetId net;
    if (const PortId p = nl_->find_port(pin); p.valid())
      net = nl_->port(p).net;
    else
      net = nl_->find_net(pin);
    SCPG_REQUIRE(net.valid(), "unknown bus bit: " + pin);
    const Logic b = net_values_[net.v];
    SCPG_REQUIRE(is_known(b), "bus bit is X/Z: " + pin);
    if (b == Logic::L1) v |= std::uint64_t(1) << i;
  }
  return v;
}

Logic FuncSim::flop_state(CellId flop) const {
  SCPG_REQUIRE(kind_is_sequential(nl_->kind_of(flop)),
               "flop_state on a non-flop cell");
  return flop_state_[flop.v];
}

void FuncSim::set_flop_state(CellId flop, Logic v) {
  SCPG_REQUIRE(kind_is_sequential(nl_->kind_of(flop)),
               "set_flop_state on a non-flop cell");
  flop_state_[flop.v] = v;
}

MacroModel* FuncSim::macro_model(CellId cell) {
  SCPG_REQUIRE(cell.v < macro_models_.size(), "cell id out of range");
  return macro_models_[cell.v].get();
}

} // namespace scpg
