// Strongly typed indices into a Netlist.
//
// Cells, nets and ports are stored in flat vectors; these wrappers prevent
// one index family being used where another is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace scpg {

template <class Tag>
struct Id {
  std::uint32_t v{kInvalid};

  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const { return v != kInvalid; }
  [[nodiscard]] constexpr std::uint32_t index() const { return v; }

  constexpr auto operator<=>(const Id&) const = default;
};

using CellId = Id<struct CellIdTag>;
using NetId = Id<struct NetIdTag>;
using PortId = Id<struct PortIdTag>;

} // namespace scpg

template <class Tag>
struct std::hash<scpg::Id<Tag>> {
  std::size_t operator()(scpg::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.v);
  }
};
