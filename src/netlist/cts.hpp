// Clock tree synthesis (lite).
//
// Real flows buffer the clock into a balanced tree; the paper leans on
// this ("the extensive, high-fanout clock tree of a processor can be
// exploited for the power gating control signal", §II) — the SCPG header
// control rides the same distribution network, and the SCPG transform
// keeps every tree buffer always-on.
//
// synthesize_clock_tree() inserts a balanced buffer tree over the clock
// sinks (flip-flop CK pins and clocked-macro clock pins): all sinks end
// up behind the same number of buffer levels, so the tree is skew-
// balanced by construction (the STA treats the clock as ideal; the event
// simulator sees the real buffered arrivals).
#pragma once

#include <string_view>

#include "netlist/netlist.hpp"

namespace scpg {

struct CtsOptions {
  int max_fanout{16};  ///< sinks (or child buffers) per buffer
  int buffer_drive{4}; ///< drive strength of tree buffers
};

struct CtsInfo {
  std::size_t buffers_inserted{0};
  int levels{0}; ///< buffer levels between root and every sink
  std::size_t sinks{0};
};

/// Buffers the named clock input.  No-op (levels == 0) when the fanout
/// already fits.  Must run before a power-gating transform (the tree
/// must be classified into the always-on domain).
CtsInfo synthesize_clock_tree(Netlist& nl, std::string_view clock_port,
                              const CtsOptions& opt = {});

} // namespace scpg
