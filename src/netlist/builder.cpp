#include "netlist/builder.hpp"

#include "util/error.hpp"

namespace scpg {

Builder::Builder(Netlist& nl, int drive) : nl_(&nl), drive_(drive) {}

Bus Builder::input_bus(const std::string& name, int width) {
  SCPG_REQUIRE(width >= 1, "bus width must be positive");
  Bus b(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    b[std::size_t(i)] = nl_->add_input(name + "[" + std::to_string(i) + "]");
  return b;
}

void Builder::output_bus(const std::string& name, const Bus& b) {
  for (std::size_t i = 0; i < b.size(); ++i)
    nl_->add_output(name + "[" + std::to_string(i) + "]", b[i]);
}

NetId Builder::gate(CellKind k, std::vector<NetId> inputs) {
  // Not every kind exists at every drive; fall back to X1.
  SpecId spec;
  try {
    spec = nl_->lib().pick(k, drive_);
  } catch (const PreconditionError&) {
    spec = nl_->lib().pick(k, 1);
  }
  return nl_->add_cell_auto(spec, std::move(inputs));
}

NetId Builder::tie_hi() {
  if (!tie_hi_.valid()) tie_hi_ = gate(CellKind::TieHi, {});
  return tie_hi_;
}

NetId Builder::tie_lo() {
  if (!tie_lo_.valid()) tie_lo_ = gate(CellKind::TieLo, {});
  return tie_lo_;
}

Bus Builder::dff_bus(const Bus& d, NetId clk) {
  Bus q(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) q[i] = dff(d[i], clk);
  return q;
}

Bus Builder::dffr_bus(const Bus& d, NetId clk, NetId rn) {
  Bus q(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) q[i] = dffr(d[i], clk, rn);
  return q;
}

Bus Builder::not_bus(const Bus& a) {
  Bus y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = NOT(a[i]);
  return y;
}

namespace {
void require_same_width(const Bus& a, const Bus& b) {
  SCPG_REQUIRE(a.size() == b.size(), "bus width mismatch");
}
} // namespace

Bus Builder::and_bus(const Bus& a, const Bus& b) {
  require_same_width(a, b);
  Bus y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = AND(a[i], b[i]);
  return y;
}

Bus Builder::or_bus(const Bus& a, const Bus& b) {
  require_same_width(a, b);
  Bus y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = OR(a[i], b[i]);
  return y;
}

Bus Builder::xor_bus(const Bus& a, const Bus& b) {
  require_same_width(a, b);
  Bus y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = XOR(a[i], b[i]);
  return y;
}

Bus Builder::mux_bus(const Bus& a, const Bus& b, NetId s) {
  require_same_width(a, b);
  Bus y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = MUX(a[i], b[i], s);
  return y;
}

Bus Builder::mask_bus(const Bus& a, NetId en) {
  Bus y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = AND(a[i], en);
  return y;
}

NetId Builder::reduce_or(const Bus& a) {
  SCPG_REQUIRE(!a.empty(), "reduction of an empty bus");
  std::vector<NetId> level(a.begin(), a.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(OR(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NetId Builder::reduce_and(const Bus& a) {
  SCPG_REQUIRE(!a.empty(), "reduction of an empty bus");
  std::vector<NetId> level(a.begin(), a.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(AND(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NetId Builder::equal(const Bus& a, const Bus& b) {
  require_same_width(a, b);
  Bus eq(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) eq[i] = XNOR(a[i], b[i]);
  return reduce_and(eq);
}

NetId Builder::equal_const(const Bus& a, std::uint64_t value) {
  SCPG_REQUIRE(a.size() >= 64 || (value >> a.size()) == 0,
               "constant wider than bus");
  Bus terms(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    terms[i] = ((value >> i) & 1) ? a[i] : NOT(a[i]);
  return reduce_and(terms);
}

Bus Builder::const_bus(std::uint64_t value, int width) {
  SCPG_REQUIRE(width >= 1 && (width >= 64 || (value >> width) == 0),
               "constant wider than bus");
  Bus b(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    b[std::size_t(i)] = ((value >> i) & 1) ? tie_hi() : tie_lo();
  return b;
}

} // namespace scpg
