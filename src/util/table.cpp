#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace scpg {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void TextTable::row(std::vector<std::string> cells) {
  SCPG_REQUIRE(header_.empty() || cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << "| " << std::setw(int(widths[i])) << c << ' ';
    }
    os << "|\n";
  };
  auto rule = [&os, &widths] {
    for (std::size_t w : widths) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      const bool quote = cells[i].find(',') != std::string::npos;
      if (quote) os << '"' << cells[i] << '"';
      else os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

AsciiChart::AsciiChart(std::string title, int width, int height)
    : title_(std::move(title)), width_(width), height_(height) {
  SCPG_REQUIRE(width >= 16 && height >= 4, "chart must be at least 16x4");
}

void AsciiChart::series(std::string name, std::vector<double> xs,
                        std::vector<double> ys) {
  SCPG_REQUIRE(xs.size() == ys.size(), "series x/y sizes must match");
  SCPG_REQUIRE(!xs.empty(), "series must be non-empty");
  series_.push_back({std::move(name), std::move(xs), std::move(ys)});
}

void AsciiChart::print(std::ostream& os) const {
  if (series_.empty()) return;
  static const char marks[] = {'o', 'x', '+', '*', '#', '@'};

  double xmin = series_[0].xs[0], xmax = xmin;
  double ymin = 0, ymax = 0;
  bool first_y = true;
  for (const auto& s : series_) {
    for (double x : s.xs) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
    }
    for (double y : s.ys) {
      const double v = log_y_ ? std::log10(std::max(y, 1e-300)) : y;
      if (first_y) {
        ymin = ymax = v;
        first_y = false;
      } else {
        ymin = std::min(ymin, v);
        ymax = std::max(ymax, v);
      }
    }
  }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> grid(std::size_t(height_),
                                std::string(std::size_t(width_), ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& s = series_[si];
    const char mark = marks[si % sizeof(marks)];
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double yv =
          log_y_ ? std::log10(std::max(s.ys[i], 1e-300)) : s.ys[i];
      int cx = int(std::lround((s.xs[i] - xmin) / (xmax - xmin) *
                               (width_ - 1)));
      int cy = int(std::lround((yv - ymin) / (ymax - ymin) * (height_ - 1)));
      cx = std::clamp(cx, 0, width_ - 1);
      cy = std::clamp(cy, 0, height_ - 1);
      grid[std::size_t(height_ - 1 - cy)][std::size_t(cx)] = mark;
    }
  }

  os << title_;
  if (log_y_) os << "  [log y]";
  os << '\n';
  std::ostringstream top, bot;
  top << std::setprecision(4) << (log_y_ ? std::pow(10.0, ymax) : ymax);
  bot << std::setprecision(4) << (log_y_ ? std::pow(10.0, ymin) : ymin);
  for (int r = 0; r < height_; ++r) {
    std::string label(10, ' ');
    if (r == 0) label = top.str();
    if (r == height_ - 1) label = bot.str();
    label.resize(10, ' ');
    os << label << " |" << grid[std::size_t(r)] << '\n';
  }
  os << std::string(10, ' ') << " +" << std::string(std::size_t(width_), '-')
     << '\n';
  std::ostringstream xl;
  xl << std::setprecision(4) << xmin;
  std::ostringstream xr;
  xr << std::setprecision(4) << xmax;
  std::string axis(std::size_t(width_ + 12), ' ');
  const std::string xls = xl.str(), xrs = xr.str();
  axis.replace(11, xls.size(), xls);
  if (xrs.size() < axis.size())
    axis.replace(axis.size() - xrs.size(), xrs.size(), xrs);
  os << axis << '\n';
  os << "  legend:";
  for (std::size_t si = 0; si < series_.size(); ++si)
    os << "  " << marks[si % sizeof(marks)] << " = " << series_[si].name;
  os << '\n';
}

} // namespace scpg
