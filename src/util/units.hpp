// Dimensioned physical quantities for circuit analysis.
//
// Every physical value in the library (voltage, time, power, energy,
// capacitance, ...) is carried in a strongly typed Qty<> so that unit
// errors (e.g. adding a power to an energy, or passing a period where a
// frequency is expected) are compile errors.  Dimensions are tracked as
// SI base-unit exponents (kg, m, s, A); multiplication and division
// compose them.  All values are stored in SI base units (volts, seconds,
// watts, joules, farads, ohms, hertz, square metres).
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace scpg {

/// A physical quantity with dimensions kg^M · m^L · s^T · A^I.
template <int M, int L, int T, int I>
struct Qty {
  double v{0.0};

  constexpr Qty() = default;
  constexpr explicit Qty(double value) : v(value) {}

  /// Raw value in SI base units.
  [[nodiscard]] constexpr double value() const { return v; }

  constexpr Qty& operator+=(Qty rhs) {
    v += rhs.v;
    return *this;
  }
  constexpr Qty& operator-=(Qty rhs) {
    v -= rhs.v;
    return *this;
  }
  constexpr Qty& operator*=(double s) {
    v *= s;
    return *this;
  }
  constexpr Qty& operator/=(double s) {
    v /= s;
    return *this;
  }

  constexpr auto operator<=>(const Qty&) const = default;
};

// --- arithmetic -----------------------------------------------------------

template <int M, int L, int T, int I>
constexpr Qty<M, L, T, I> operator+(Qty<M, L, T, I> a, Qty<M, L, T, I> b) {
  return Qty<M, L, T, I>{a.v + b.v};
}
template <int M, int L, int T, int I>
constexpr Qty<M, L, T, I> operator-(Qty<M, L, T, I> a, Qty<M, L, T, I> b) {
  return Qty<M, L, T, I>{a.v - b.v};
}
template <int M, int L, int T, int I>
constexpr Qty<M, L, T, I> operator-(Qty<M, L, T, I> a) {
  return Qty<M, L, T, I>{-a.v};
}
template <int M, int L, int T, int I>
constexpr Qty<M, L, T, I> operator*(Qty<M, L, T, I> a, double s) {
  return Qty<M, L, T, I>{a.v * s};
}
template <int M, int L, int T, int I>
constexpr Qty<M, L, T, I> operator*(double s, Qty<M, L, T, I> a) {
  return Qty<M, L, T, I>{a.v * s};
}
template <int M, int L, int T, int I>
constexpr Qty<M, L, T, I> operator/(Qty<M, L, T, I> a, double s) {
  return Qty<M, L, T, I>{a.v / s};
}

template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
constexpr Qty<M1 + M2, L1 + L2, T1 + T2, I1 + I2> operator*(
    Qty<M1, L1, T1, I1> a, Qty<M2, L2, T2, I2> b) {
  return Qty<M1 + M2, L1 + L2, T1 + T2, I1 + I2>{a.v * b.v};
}
template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
constexpr Qty<M1 - M2, L1 - L2, T1 - T2, I1 - I2> operator/(
    Qty<M1, L1, T1, I1> a, Qty<M2, L2, T2, I2> b) {
  return Qty<M1 - M2, L1 - L2, T1 - T2, I1 - I2>{a.v / b.v};
}

/// Dimensionless ratio of two same-dimension quantities.
template <int M, int L, int T, int I>
constexpr double ratio(Qty<M, L, T, I> a, Qty<M, L, T, I> b) {
  return a.v / b.v;
}

// --- concrete dimensions --------------------------------------------------

using Dimensionless = Qty<0, 0, 0, 0>;
using Time = Qty<0, 0, 1, 0>;          ///< seconds
using Frequency = Qty<0, 0, -1, 0>;    ///< hertz
using Voltage = Qty<1, 2, -3, -1>;     ///< volts
using Current = Qty<0, 0, 0, 1>;       ///< amperes
using Power = Qty<1, 2, -3, 0>;        ///< watts
using Energy = Qty<1, 2, -2, 0>;       ///< joules
using Charge = Qty<0, 0, 1, 1>;        ///< coulombs
using Capacitance = Qty<-1, -2, 4, 2>; ///< farads
using Resistance = Qty<1, 2, -3, -2>;  ///< ohms
using Area = Qty<0, 2, 0, 0>;          ///< square metres

static_assert(std::is_same_v<decltype(Voltage{} * Current{}), Power>);
static_assert(std::is_same_v<decltype(Power{} * Time{}), Energy>);
static_assert(std::is_same_v<decltype(Capacitance{} * Voltage{} * Voltage{}),
                             Energy>);
static_assert(std::is_same_v<decltype(Resistance{} * Capacitance{}), Time>);
static_assert(std::is_same_v<decltype(Voltage{} / Resistance{}), Current>);
static_assert(std::is_same_v<decltype(Energy{} / Time{}), Power>);

/// 1/f as a period; guards f == 0 at the call site.
constexpr Time period(Frequency f) { return Time{1.0 / f.v}; }
constexpr Frequency frequency(Time t) { return Frequency{1.0 / t.v}; }

// --- literals -------------------------------------------------------------
//
// Usage: using namespace scpg::literals;  auto vdd = 0.6_V;

namespace literals {

constexpr Voltage operator""_V(long double x) { return Voltage{double(x)}; }
constexpr Voltage operator""_mV(long double x) {
  return Voltage{double(x) * 1e-3};
}
constexpr Voltage operator""_mV(unsigned long long x) {
  return Voltage{double(x) * 1e-3};
}

constexpr Time operator""_s(long double x) { return Time{double(x)}; }
constexpr Time operator""_ms(long double x) { return Time{double(x) * 1e-3}; }
constexpr Time operator""_us(long double x) { return Time{double(x) * 1e-6}; }
constexpr Time operator""_ns(long double x) { return Time{double(x) * 1e-9}; }
constexpr Time operator""_ps(long double x) { return Time{double(x) * 1e-12}; }
constexpr Time operator""_ns(unsigned long long x) {
  return Time{double(x) * 1e-9};
}
constexpr Time operator""_ps(unsigned long long x) {
  return Time{double(x) * 1e-12};
}

constexpr Frequency operator""_Hz(long double x) {
  return Frequency{double(x)};
}
constexpr Frequency operator""_kHz(long double x) {
  return Frequency{double(x) * 1e3};
}
constexpr Frequency operator""_MHz(long double x) {
  return Frequency{double(x) * 1e6};
}
constexpr Frequency operator""_Hz(unsigned long long x) {
  return Frequency{double(x)};
}
constexpr Frequency operator""_kHz(unsigned long long x) {
  return Frequency{double(x) * 1e3};
}
constexpr Frequency operator""_MHz(unsigned long long x) {
  return Frequency{double(x) * 1e6};
}

constexpr Power operator""_W(long double x) { return Power{double(x)}; }
constexpr Power operator""_mW(long double x) { return Power{double(x) * 1e-3}; }
constexpr Power operator""_uW(long double x) { return Power{double(x) * 1e-6}; }
constexpr Power operator""_nW(long double x) { return Power{double(x) * 1e-9}; }
constexpr Power operator""_pW(long double x) {
  return Power{double(x) * 1e-12};
}
constexpr Power operator""_uW(unsigned long long x) {
  return Power{double(x) * 1e-6};
}
constexpr Power operator""_nW(unsigned long long x) {
  return Power{double(x) * 1e-9};
}

constexpr Energy operator""_J(long double x) { return Energy{double(x)}; }
constexpr Energy operator""_pJ(long double x) {
  return Energy{double(x) * 1e-12};
}
constexpr Energy operator""_fJ(long double x) {
  return Energy{double(x) * 1e-15};
}
constexpr Energy operator""_pJ(unsigned long long x) {
  return Energy{double(x) * 1e-12};
}
constexpr Energy operator""_fJ(unsigned long long x) {
  return Energy{double(x) * 1e-15};
}

constexpr Capacitance operator""_F(long double x) {
  return Capacitance{double(x)};
}
constexpr Capacitance operator""_pF(long double x) {
  return Capacitance{double(x) * 1e-12};
}
constexpr Capacitance operator""_fF(long double x) {
  return Capacitance{double(x) * 1e-15};
}
constexpr Capacitance operator""_fF(unsigned long long x) {
  return Capacitance{double(x) * 1e-15};
}

constexpr Resistance operator""_Ohm(long double x) {
  return Resistance{double(x)};
}
constexpr Resistance operator""_kOhm(long double x) {
  return Resistance{double(x) * 1e3};
}
constexpr Resistance operator""_kOhm(unsigned long long x) {
  return Resistance{double(x) * 1e3};
}

constexpr Current operator""_A(long double x) { return Current{double(x)}; }
constexpr Current operator""_mA(long double x) {
  return Current{double(x) * 1e-3};
}
constexpr Current operator""_uA(long double x) {
  return Current{double(x) * 1e-6};
}
constexpr Current operator""_nA(long double x) {
  return Current{double(x) * 1e-9};
}

constexpr Area operator""_um2(long double x) {
  return Area{double(x) * 1e-12};
}
constexpr Area operator""_um2(unsigned long long x) {
  return Area{double(x) * 1e-12};
}

} // namespace literals

// --- display helpers ------------------------------------------------------

constexpr double in_V(Voltage x) { return x.v; }
constexpr double in_mV(Voltage x) { return x.v * 1e3; }
constexpr double in_uW(Power x) { return x.v * 1e6; }
constexpr double in_nW(Power x) { return x.v * 1e9; }
constexpr double in_mW(Power x) { return x.v * 1e3; }
constexpr double in_pJ(Energy x) { return x.v * 1e12; }
constexpr double in_fJ(Energy x) { return x.v * 1e15; }
constexpr double in_MHz(Frequency x) { return x.v * 1e-6; }
constexpr double in_kHz(Frequency x) { return x.v * 1e-3; }
constexpr double in_ns(Time x) { return x.v * 1e9; }
constexpr double in_us(Time x) { return x.v * 1e6; }
constexpr double in_ps(Time x) { return x.v * 1e12; }
constexpr double in_fF(Capacitance x) { return x.v * 1e15; }
constexpr double in_pF(Capacitance x) { return x.v * 1e12; }
constexpr double in_kOhm(Resistance x) { return x.v * 1e-3; }
constexpr double in_um2(Area x) { return x.v * 1e12; }
constexpr double in_uA(Current x) { return x.v * 1e6; }
constexpr double in_mA(Current x) { return x.v * 1e3; }

template <int M, int L, int T, int I>
std::ostream& operator<<(std::ostream& os, Qty<M, L, T, I> q) {
  return os << q.v;
}

} // namespace scpg
