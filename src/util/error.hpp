// Error types and checked preconditions.
//
// The library reports contract violations and unusable inputs with
// exceptions derived from scpg::Error.  SCPG_REQUIRE is used for
// caller-facing preconditions (bad arguments, malformed netlists, infeasible
// configurations); SCPG_ASSERT for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace scpg {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
public:
  using Error::Error;
};

/// A netlist is structurally invalid (multiple drivers, floating pin,
/// combinational loop, unknown cell, ...).
class NetlistError : public Error {
public:
  using Error::Error;
};

/// Text input (structural Verilog, Liberty-lite, assembly) failed to parse.
/// Carries the source name (file path or "<string>") so multi-file flows
/// can point at the offending input, plus the 1-based line number.
class ParseError : public Error {
public:
  ParseError(const std::string& what, int line) : ParseError(what, {}, line) {}
  ParseError(const std::string& what, const std::string& source, int line)
      : Error(format(what, source, line)), source_(source), line_(line) {}
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] const std::string& source() const { return source_; }

private:
  static std::string format(const std::string& what,
                            const std::string& source, int line) {
    return (source.empty() ? "line " : source + ":") + std::to_string(line) +
           ": " + what;
  }

  std::string source_;
  int line_;
};

/// A requested analysis has no feasible solution (e.g. the clock is too
/// fast for SCPG, or a power budget is below the leakage floor).
class InfeasibleError : public Error {
public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_assert(const char* expr, const char* file, int line);
} // namespace detail

} // namespace scpg

/// Caller-facing precondition; throws PreconditionError with a message.
#define SCPG_REQUIRE(cond, msg)                                               \
  do {                                                                        \
    if (!(cond))                                                              \
      ::scpg::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)

/// Internal invariant; throws Error (never disabled — analysis code is not
/// on a hot path where the check would matter).
#define SCPG_ASSERT(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::scpg::detail::throw_assert(#cond, __FILE__, __LINE__);                \
  } while (0)
