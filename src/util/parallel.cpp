#include "util/parallel.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace scpg {

namespace {
std::atomic<void (*)(std::size_t)> g_thread_start_hook{nullptr};
}

void set_thread_start_hook(void (*hook)(std::size_t)) {
  g_thread_start_hook.store(hook, std::memory_order_relaxed);
}

int default_jobs() {
  if (const char* env = std::getenv("SCPG_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return int(std::min(v, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? int(hw) : 1;
}

ThreadPool::ThreadPool(int jobs) {
  SCPG_REQUIRE(jobs >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(std::size_t(jobs));
  for (int i = 0; i < jobs; ++i)
    workers_.emplace_back([this, i] {
      if (auto* hook = g_thread_start_hook.load(std::memory_order_relaxed))
        hook(std::size_t(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(m_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(m_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(m_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return; // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard lock(m_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

} // namespace scpg
