#include "util/parallel.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace scpg {

namespace {

// Append-only hook registry: a lock-free fixed array keeps worker spawn
// on the fast path (no mutex between pool construction and hot sweeps).
constexpr std::size_t kMaxThreadStartHooks = 8;
std::atomic<void (*)(std::size_t)> g_thread_start_hooks[kMaxThreadStartHooks];

void run_thread_start_hooks(std::size_t worker_index) {
  for (auto& slot : g_thread_start_hooks) {
    auto* hook = slot.load(std::memory_order_acquire);
    if (hook == nullptr) return; // slots fill front to back
    hook(worker_index);
  }
}

} // namespace

void add_thread_start_hook(void (*hook)(std::size_t)) {
  SCPG_REQUIRE(hook != nullptr, "add_thread_start_hook: null hook");
  for (auto& slot : g_thread_start_hooks) {
    void (*expected)(std::size_t) = nullptr;
    if (slot.load(std::memory_order_acquire) == hook) return; // idempotent
    if (slot.compare_exchange_strong(expected, hook,
                                     std::memory_order_acq_rel))
      return;
    if (expected == hook) return; // lost the race to the same hook
  }
  SCPG_REQUIRE(false, "add_thread_start_hook: hook table full");
}

int default_jobs() {
  if (const char* env = std::getenv("SCPG_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return int(std::min(v, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? int(hw) : 1;
}

ThreadPool::ThreadPool(int jobs) {
  SCPG_REQUIRE(jobs >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(std::size_t(jobs));
  for (int i = 0; i < jobs; ++i)
    workers_.emplace_back([this, i] {
      run_thread_start_hooks(std::size_t(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(m_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(m_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(m_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return; // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard lock(m_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

} // namespace scpg
