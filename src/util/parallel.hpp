// Thread-pool substrate of the parallel sweep engine (src/engine).
//
// Every sweep in the repo — operating-point grids, header sizing,
// Monte-Carlo corners, MEP voltage sweeps — is a set of independent jobs,
// so they all funnel through one primitive: parallel_map(), which runs
// fn(0..n-1) on a pool of workers and returns the results in job-index
// order.  Index-ordered results are what make parallel output
// bit-identical to a serial run; nothing downstream can observe
// completion order.
//
// jobs == 1 executes inline on the calling thread (no pool, no threads —
// the degenerate case the determinism tests compare against).  When jobs
// throw, the exception of the lowest-indexed failing job is rethrown on
// the caller after all workers drain — the same exception a serial run
// would surface first, so failure behaviour is deterministic regardless
// of completion order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace scpg {

/// Worker count used when a sweep does not specify one: the SCPG_JOBS
/// environment variable when it holds an integer >= 1, else the hardware
/// concurrency (else 1).  Benches read this so `SCPG_JOBS=1 bench_x` and
/// `SCPG_JOBS=8 bench_x` exercise the serial/parallel paths unchanged.
[[nodiscard]] int default_jobs();

/// Registers a function run at the start of every pool worker thread,
/// with the worker's index within its pool.  A small fixed set of global
/// slots, plain function pointers (no capture, no teardown order
/// hazards); re-registering the same pointer is a no-op and there is no
/// unregistration.  util must not depend on its consumers, so the hook
/// lives here and they plug in: the obs layer names each worker's trace
/// track "worker-k", and the compiled sim backend pre-sizes its
/// per-thread scratch arena.  Hooks run in registration order.
void add_thread_start_hook(void (*hook)(std::size_t worker_index));

/// Fixed-size pool of worker threads draining a FIFO task queue.
/// Tasks must not submit further tasks to the same pool.
class ThreadPool {
public:
  explicit ThreadPool(int jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int jobs() const { return int(workers_.size()); }

  /// Enqueues a task.  Tasks must not throw (wrap with your own capture).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait();

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex m_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait() waits for drain
  int active_{0};
  bool stop_{false};
};

/// Runs fn(i) for i in [0, n) across `jobs` workers; returns the results
/// in index order.  `jobs <= 0` means default_jobs(); `jobs == 1` (or
/// n <= 1) runs inline.  The result type must be default-constructible
/// and must not be `bool` (std::vector<bool> elements cannot be written
/// concurrently).
template <typename Fn>
auto parallel_map(std::size_t n, int jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_same_v<R, bool>,
                "parallel_map result must not be bool");
  std::vector<R> out(n);
  if (jobs <= 0) jobs = default_jobs();
  if (jobs == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_m;
  std::exception_ptr err;
  std::size_t err_index = n; // lowest failing index seen so far
  {
    ThreadPool pool(int(std::min<std::size_t>(std::size_t(jobs), n)));
    for (int w = 0; w < pool.jobs(); ++w)
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            out[i] = fn(i);
          } catch (...) {
            const std::lock_guard lock(err_m);
            if (i < err_index) {
              err_index = i;
              err = std::current_exception();
            }
          }
        }
      });
    pool.wait();
  }
  if (err) std::rethrow_exception(err);
  return out;
}

} // namespace scpg
