// Tabular output for benches and reports.
//
// TextTable renders aligned ASCII tables like those in the paper; the same
// data can be dumped as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace scpg {

/// A simple column-aligned table with a title, a header row and data rows.
class TextTable {
public:
  explicit TextTable(std::string title = {});

  /// Sets the header; defines the column count.
  void header(std::vector<std::string> columns);

  /// Appends a data row; must match the header width (if a header is set).
  void row(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders the aligned ASCII form.
  void print(std::ostream& os) const;

  /// Renders CSV (header + rows, comma separated, minimal quoting).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a quick ASCII line chart (x ascending) — used by benches to
/// show the *shape* of the paper's figures directly in the terminal.
class AsciiChart {
public:
  AsciiChart(std::string title, int width = 72, int height = 20);

  /// Adds a named series; all series share the x axis.
  void series(std::string name, std::vector<double> xs,
              std::vector<double> ys);

  /// If set, y values are log10-scaled before plotting (paper Figs 6b/8b).
  void log_y(bool enabled) { log_y_ = enabled; }

  void print(std::ostream& os) const;

private:
  struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
  };
  std::string title_;
  int width_;
  int height_;
  bool log_y_{false};
  std::vector<Series> series_;
};

} // namespace scpg
