#include "util/error.hpp"

#include <sstream>

namespace scpg::detail {

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  std::ostringstream os;
  os << msg << " [required: " << expr << " at " << file << ":" << line << "]";
  throw PreconditionError(os.str());
}

void throw_assert(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ":"
     << line;
  throw Error(os.str());
}

} // namespace scpg::detail
