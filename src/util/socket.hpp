// Unix-domain stream sockets with length-framed messages.
//
// The serve daemon (src/serve) and its clients talk over a local socket;
// this wrapper owns the POSIX plumbing — socket/bind/listen/accept/
// connect, stale-socket-file recovery — and a single message framing
// shared by both sides.  Nothing here knows about JSON envelopes or
// requests; src/serve layers its protocol on these bytes.
//
// Framing: every message on the wire is
//
//   "SCPGS1 " <len:8 lowercase hex> "\n" <len payload bytes>
//
// The fixed-width header makes the reader state machine trivial (read 16
// bytes, then exactly len more) and the magic catches a client speaking
// the wrong protocol — or a human cat-ing text at the socket — with a
// located error instead of a hang.
//
// Binding recovers from stale socket files: a previous daemon killed
// with SIGKILL leaves its path behind, and a fresh bind would fail with
// EADDRINUSE.  We probe with connect(2): a refused connection proves no
// listener is alive, so the stale file is unlinked and the bind retried;
// a successful connection proves a live daemon owns the path, reported
// as SocketBusyError so callers can exit with a distinct code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace scpg {

/// A live daemon already listens on the requested socket path.
class SocketBusyError : public Error {
public:
  using Error::Error;
};

/// An fd-owning handle; closes on destruction, move-only.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

private:
  int fd_{-1};
};

/// Creates, binds and listens on a unix stream socket at `path`,
/// recovering from a stale socket file as described above.  Throws
/// SocketBusyError when a live listener owns the path, scpg::Error on
/// any other OS failure (path too long, permission, ...).
[[nodiscard]] Socket listen_unix(const std::string& path, int backlog = 64);

/// Blocking accept; returns an invalid Socket on EINTR (so signal-driven
/// shutdown loops can re-check their flag).  Throws on other errors.
[[nodiscard]] Socket accept_unix(const Socket& listener);

/// Blocking connect to a listening unix socket.  Throws scpg::Error when
/// nothing listens at `path`.
[[nodiscard]] Socket connect_unix(const std::string& path);

/// Writes one framed message (header + payload).  Returns false when the
/// peer is gone (EPIPE/ECONNRESET); requires SIGPIPE ignored.
bool write_frame(const Socket& s, std::string_view payload);

/// Reads one framed message, blocking until it is complete.  Returns
/// nullopt on clean EOF at a frame boundary; throws ParseError on a
/// malformed header or mid-frame EOF, scpg::Error on read failure.
[[nodiscard]] std::optional<std::string> read_frame(const Socket& s);

/// Frame size ceiling (64 MiB): a header announcing more is treated as
/// malformed rather than honoured, so a corrupt length cannot OOM the
/// daemon.
inline constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;

} // namespace scpg
