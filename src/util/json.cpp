#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace scpg::json {

// --- rendering primitives ---------------------------------------------------

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null"; // JSON has no Inf/NaN
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  SCPG_ASSERT(ec == std::errc());
  return std::string(buf, end);
}

// --- Writer -----------------------------------------------------------------

void Writer::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < depth_.size(); ++i) os_ << "  ";
}

void Writer::before_value() {
  if (depth_.empty()) {
    SCPG_REQUIRE(!emitted_, "json::Writer: two top-level values");
    return;
  }
  Level& lv = depth_.back();
  if (lv.array) {
    if (!lv.empty) os_ << (lv.compact ? ", " : ",");
    if (!lv.compact) newline_indent();
  } else {
    SCPG_REQUIRE(key_pending_, "json::Writer: object value without key()");
    key_pending_ = false;
  }
  lv.empty = false;
}

Writer& Writer::key(std::string_view k) {
  SCPG_REQUIRE(!depth_.empty() && !depth_.back().array,
               "json::Writer: key() outside an object");
  SCPG_REQUIRE(!key_pending_, "json::Writer: key() after key()");
  Level& lv = depth_.back();
  if (!lv.empty) os_ << (lv.compact ? ", " : ",");
  if (!lv.compact) newline_indent();
  lv.empty = false;
  std::string out;
  append_quoted(out, k);
  os_ << out << ": ";
  key_pending_ = true;
  return *this;
}

Writer& Writer::begin_object(Style s) {
  before_value();
  // A compact parent forces compact children (one line stays one line).
  const bool parent_compact = !depth_.empty() && depth_.back().compact;
  depth_.push_back({false, s == Style::Compact || parent_compact, true});
  os_ << '{';
  return *this;
}

Writer& Writer::end_object() {
  SCPG_REQUIRE(!depth_.empty() && !depth_.back().array,
               "json::Writer: end_object() mismatch");
  SCPG_REQUIRE(!key_pending_, "json::Writer: end_object() after key()");
  const Level lv = depth_.back();
  depth_.pop_back();
  if (!lv.empty && !lv.compact) newline_indent();
  os_ << '}';
  emitted_ = true;
  return *this;
}

Writer& Writer::begin_array(Style s) {
  before_value();
  const bool parent_compact = !depth_.empty() && depth_.back().compact;
  depth_.push_back({true, s == Style::Compact || parent_compact, true});
  os_ << '[';
  return *this;
}

Writer& Writer::end_array() {
  SCPG_REQUIRE(!depth_.empty() && depth_.back().array,
               "json::Writer: end_array() mismatch");
  const Level lv = depth_.back();
  depth_.pop_back();
  if (!lv.empty && !lv.compact) newline_indent();
  os_ << ']';
  emitted_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  before_value();
  std::string out;
  append_quoted(out, v);
  os_ << out;
  emitted_ = true;
  return *this;
}

Writer& Writer::value(double v) {
  before_value();
  os_ << number(v);
  emitted_ = true;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  os_ << v;
  emitted_ = true;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  os_ << v;
  emitted_ = true;
  return *this;
}

Writer& Writer::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  emitted_ = true;
  return *this;
}

Writer& Writer::null() {
  before_value();
  os_ << "null";
  emitted_ = true;
  return *this;
}

Writer& Writer::raw(std::string_view json) {
  before_value();
  os_ << json;
  emitted_ = true;
  return *this;
}

// --- envelope ---------------------------------------------------------------

void write_envelope_open(Writer& w, std::string_view tool) {
  w.begin_object();
  w.key("schema_version").value(std::int64_t(kSchemaVersion));
  w.key("tool").value(tool);
}

void write_envelope(std::ostream& os, std::string_view tool,
                    std::string_view payload_json) {
  Writer w(os);
  write_envelope_open(w, tool);
  w.key("payload").raw(payload_json);
  w.end_object();
  os << '\n';
}

// --- reader -----------------------------------------------------------------

const Value* Value::get(std::string_view k) const {
  if (type != Type::Object) return nullptr;
  const auto it = obj.find(std::string(k));
  return it == obj.end() ? nullptr : &it->second;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& why) const {
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i)
      if (s_[i] == '\n') ++line;
    throw ParseError("json: " + why, "<json>", line);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            const auto [p, ec] = std::from_chars(
                s_.data() + pos_, s_.data() + pos_ + 4, code, 16);
            if (ec != std::errc() || p != s_.data() + pos_ + 4)
              fail("bad \\u escape");
            pos_ += 4;
            // Keep it simple: BMP code points as UTF-8.
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xc0 | (code >> 6));
              out += char(0x80 | (code & 0x3f));
            } else {
              out += char(0xe0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3f));
              out += char(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_value() {
    const char c = peek();
    Value v;
    if (c == '{') {
      ++pos_;
      v.type = Value::Type::Object;
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        std::string k = parse_string();
        expect(':');
        v.obj.emplace(std::move(k), parse_value());
        const char n = peek();
        if (n == ',') {
          ++pos_;
          continue;
        }
        if (n == '}') {
          ++pos_;
          return v;
        }
        fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      v.type = Value::Type::Array;
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.arr.push_back(parse_value());
        const char n = peek();
        if (n == ',') {
          ++pos_;
          continue;
        }
        if (n == ']') {
          ++pos_;
          return v;
        }
        fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      v.type = Value::Type::String;
      v.str = parse_string();
      return v;
    }
    skip_ws();
    if (consume_literal("true")) {
      v.type = Value::Type::Bool;
      v.b = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = Value::Type::Bool;
      v.b = false;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("unexpected character");
    double num = 0;
    const auto [p, ec] =
        std::from_chars(s_.data() + start, s_.data() + pos_, num);
    if (ec != std::errc() || p != s_.data() + pos_) fail("bad number");
    v.type = Value::Type::Number;
    v.num = num;
    return v;
  }

  std::string_view s_;
  std::size_t pos_{0};
};

} // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

} // namespace scpg::json
