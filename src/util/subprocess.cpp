#include "util/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace scpg {

namespace {

[[noreturn]] void child_exec(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  execvp(cargv[0], cargv.data());
  // Exec failed; 127 is the shell convention for "command not found".
  _exit(127);
}

void dup_over(int from, int to) {
  while (dup2(from, to) < 0) {
    if (errno != EINTR) _exit(126);
  }
}

} // namespace

Subprocess spawn_child(const SpawnOptions& opt) {
  SCPG_REQUIRE(!opt.argv.empty() || opt.child_main,
               "spawn_child needs argv (exec mode) or child_main (fork mode)");

  int in_pipe[2] = {-1, -1};  // parent writes [1], child reads [0]
  int out_pipe[2] = {-1, -1}; // child writes [1], parent reads [0]
  if (!opt.null_stdin && pipe(in_pipe) != 0)
    throw Error(std::string("pipe: ") + std::strerror(errno));
  if (opt.stdout_path.empty() && pipe(out_pipe) != 0)
    throw Error(std::string("pipe: ") + std::strerror(errno));

  const pid_t pid = fork();
  if (pid < 0) throw Error(std::string("fork: ") + std::strerror(errno));

  if (pid == 0) {
    // --- child ---
    if (opt.null_stdin) {
      const int null = open("/dev/null", O_RDONLY);
      if (null >= 0) dup_over(null, STDIN_FILENO);
    } else {
      close(in_pipe[1]);
      dup_over(in_pipe[0], STDIN_FILENO);
      close(in_pipe[0]);
    }
    if (!opt.stdout_path.empty()) {
      const int f =
          open(opt.stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (f < 0) _exit(126);
      dup_over(f, STDOUT_FILENO);
      close(f);
    } else {
      close(out_pipe[0]);
      dup_over(out_pipe[1], STDOUT_FILENO);
      close(out_pipe[1]);
    }
    if (!opt.argv.empty()) child_exec(opt.argv);
    _exit(opt.child_main(STDIN_FILENO, STDOUT_FILENO));
  }

  // --- parent ---
  Subprocess child;
  child.pid = pid;
  if (!opt.null_stdin) {
    close(in_pipe[0]);
    child.stdin_fd = in_pipe[1];
  }
  if (opt.stdout_path.empty()) {
    close(out_pipe[1]);
    child.stdout_fd = out_pipe[0];
  }
  return child;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(std::size_t(n));
  }
  return true;
}

int read_available(int fd, std::string& buf) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = read(fd, chunk, sizeof chunk);
    if (n > 0) {
      buf.append(chunk, std::size_t(n));
      return int(n);
    }
    if (n == 0) return 0;
    if (errno == EINTR) continue;
    return -1; // EAGAIN/EWOULDBLOCK on a non-blocking fd, or a real error
  }
}

void set_nonblocking(int fd) {
  const int fl = fcntl(fd, F_GETFL, 0);
  if (fl >= 0) (void)fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

void close_fd(int& fd) {
  if (fd >= 0) close(fd);
  fd = -1;
}

std::optional<int> wait_child(pid_t pid, bool block) {
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, block ? 0 : WNOHANG);
    if (r == 0) return std::nullopt;
    if (r < 0) {
      if (errno == EINTR) continue;
      return 128; // already reaped / not our child: treat as dead
    }
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    // Stopped/continued under WUNTRACED-less waitpid should not happen;
    // keep waiting in blocking mode, report still-running otherwise.
    if (!block) return std::nullopt;
  }
}

void kill_child(pid_t pid, int sig) {
  if (pid > 0) (void)kill(pid, sig);
}

void ignore_sigpipe() { (void)signal(SIGPIPE, SIG_IGN); }

} // namespace scpg
