#include "util/hash.hpp"

#include <cstring>

namespace scpg {

void Fnv1a::mix_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  mix(bits);
}

} // namespace scpg
