#include "util/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/subprocess.hpp"

namespace scpg {

namespace {

constexpr std::string_view kFrameMagic = "SCPGS1 ";
constexpr std::size_t kHeaderBytes = 16; // "SCPGS1 " + 8 hex + '\n'

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SCPG_REQUIRE(path.size() < sizeof(addr.sun_path),
               "socket path too long (" + std::to_string(path.size()) +
                   " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) +
                   "): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Reads exactly n bytes into buf; returns the count read before EOF
/// (== n when complete).  Throws on read errors.
std::size_t read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += std::size_t(r);
      continue;
    }
    if (r == 0) return got;
    if (errno == EINTR) continue;
    throw_errno("socket read failed");
  }
  return got;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1; // uppercase is malformed, like the campaign frame codec
}

} // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() { close_fd(fd_); }

Socket listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  for (int attempt = 0; attempt < 2; ++attempt) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!s.valid()) throw_errno("socket() failed");
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) == 0) {
      if (::listen(s.fd(), backlog) != 0) throw_errno("listen() failed");
      return s;
    }
    if (errno != EADDRINUSE)
      throw_errno("bind(" + path + ") failed");
    // The path exists.  Probe it: a live listener accepts (busy), a
    // stale file refuses (unlink and retry the bind once).
    Socket probe(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!probe.valid()) throw_errno("socket() failed");
    if (::connect(probe.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw SocketBusyError("socket " + path +
                            " is owned by a live daemon");
    if (errno != ECONNREFUSED && errno != ENOENT)
      throw_errno("probe connect(" + path + ") failed");
    if (attempt > 0 || (::unlink(path.c_str()) != 0 && errno != ENOENT))
      throw_errno("unlink stale socket " + path + " failed");
  }
  throw Error("bind(" + path + ") failed after stale-socket recovery");
}

Socket accept_unix(const Socket& listener) {
  const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  if (fd >= 0) return Socket(fd);
  if (errno == EINTR) return Socket();
  throw_errno("accept() failed");
}

Socket connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  Socket s(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) throw_errno("socket() failed");
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("connect(" + path + ") failed");
  return s;
}

bool write_frame(const Socket& s, std::string_view payload) {
  SCPG_REQUIRE(payload.size() <= kMaxFrameBytes,
               "frame payload exceeds " + std::to_string(kMaxFrameBytes) +
                   " bytes");
  char header[kHeaderBytes];
  std::memcpy(header, kFrameMagic.data(), kFrameMagic.size());
  static const char* kHex = "0123456789abcdef";
  const auto len = std::uint32_t(payload.size());
  for (int i = 0; i < 8; ++i)
    header[kFrameMagic.size() + std::size_t(i)] =
        kHex[(len >> (28 - 4 * i)) & 0xF];
  header[kHeaderBytes - 1] = '\n';
  std::string msg;
  msg.reserve(kHeaderBytes + payload.size());
  msg.append(header, kHeaderBytes);
  msg.append(payload);
  return write_all(s.fd(), msg);
}

std::optional<std::string> read_frame(const Socket& s) {
  char header[kHeaderBytes];
  const std::size_t got = read_exact(s.fd(), header, kHeaderBytes);
  if (got == 0) return std::nullopt; // clean EOF at a frame boundary
  if (got < kHeaderBytes)
    throw ParseError("socket frame truncated inside header (" +
                         std::to_string(got) + " of " +
                         std::to_string(kHeaderBytes) + " bytes)",
                     "socket", 1);
  if (std::string_view(header, kFrameMagic.size()) != kFrameMagic ||
      header[kHeaderBytes - 1] != '\n')
    throw ParseError("socket frame header lacks SCPGS1 magic",
                     "socket", 1);
  std::uint64_t len = 0;
  for (std::size_t i = kFrameMagic.size(); i + 1 < kHeaderBytes; ++i) {
    const int nib = hex_nibble(header[i]);
    if (nib < 0)
      throw ParseError("socket frame length is not lowercase hex",
                       "socket", 1);
    len = (len << 4) | std::uint64_t(nib);
  }
  if (len > kMaxFrameBytes)
    throw ParseError("socket frame length " + std::to_string(len) +
                         " exceeds the " + std::to_string(kMaxFrameBytes) +
                         "-byte ceiling",
                     "socket", 1);
  std::string payload(len, '\0');
  if (read_exact(s.fd(), payload.data(), payload.size()) != payload.size())
    throw ParseError("socket frame truncated inside payload",
                     "socket", 1);
  return payload;
}

} // namespace scpg
