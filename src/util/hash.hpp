// Streaming structural hashing (FNV-1a, 64-bit).
//
// Used by the sweep engine to key its result cache: a netlist digest plus
// a point-configuration digest identify a measurement.  Not cryptographic
// — the engine pairs two differently-salted digests to make accidental
// collisions within a process vanishingly unlikely.
#pragma once

#include <cstdint>
#include <string_view>

namespace scpg {

/// Incremental FNV-1a hasher over 64-bit words, strings and doubles.
class Fnv1a {
public:
  Fnv1a() = default;
  /// Salted start (used for the second digest of a 128-bit pair).
  explicit Fnv1a(std::uint64_t salt) { mix(salt); }

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v & 0xff));
      v >>= 8;
    }
  }

  void mix(std::string_view s) {
    for (const char c : s) byte(static_cast<unsigned char>(c));
    // Length terminator so ("ab","c") != ("a","bc").
    mix(std::uint64_t(s.size()));
  }

  /// Hashes the bit pattern (distinguishes -0.0 from 0.0; NaN payloads
  /// hash as-is — acceptable for configuration data).
  void mix_double(double v);

  [[nodiscard]] std::uint64_t digest() const { return h_; }

private:
  void byte(unsigned char b) {
    h_ ^= b;
    h_ *= 0x100000001b3ULL;
  }

  std::uint64_t h_{0xcbf29ce484222325ULL};
};

} // namespace scpg
