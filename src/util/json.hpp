// The one JSON serializer (and a small reader) for the whole repo.
//
// Every machine-readable output — `scpgc sweep --json`, `lint --json`,
// `verify --json`, `fuzz --json`, the fuzz coverage map, and the obs
// metrics/trace dumps — is rendered through json::Writer and wrapped in
// the versioned envelope
//
//   {"schema_version": 1, "tool": "<producer>", "payload": {...}}
//
// so consumers can dispatch on one shape.  The only sanctioned deviation
// is the Chrome trace dump, which must keep "traceEvents" at the top
// level to stay loadable in chrome://tracing — write_envelope_open()
// emits the version/tool keys and leaves the object open for it.
//
// Writer is a streaming emitter with explicit begin/end calls; it owns
// string escaping and locale-independent number formatting (std::to_chars
// shortest round-trip for doubles, so a value parses back bit-identical).
// Containers can be opened Pretty (newline + two-space indent per level)
// or Compact (single line) to keep diffs readable where humans look and
// lines short where they don't.
//
// The reader (json::parse) is a strict recursive-descent parser for the
// subset JSON actually is — used by tools/trace_check and tests to
// validate emitted documents structurally, not for config files.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace scpg::json {

/// Version of the shared CLI/file envelope (bump on breaking changes).
inline constexpr int kSchemaVersion = 1;

/// Appends `s` to `out` with JSON string escaping (quotes included).
void append_quoted(std::string& out, std::string_view s);

/// Locale-independent shortest-round-trip rendering of a double
/// ("1e+300", "0.1", "-0"); integers render without a trailing ".0".
[[nodiscard]] std::string number(double v);

class Writer {
public:
  enum class Style : std::uint8_t { Pretty, Compact };

  explicit Writer(std::ostream& os) : os_(os) {}

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  // --- containers ---------------------------------------------------------
  Writer& begin_object(Style s = Style::Pretty);
  Writer& end_object();
  Writer& begin_array(Style s = Style::Pretty);
  Writer& end_array();

  /// Key inside an object; must be followed by exactly one value or
  /// container.
  Writer& key(std::string_view k);

  // --- scalar values ------------------------------------------------------
  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(double v);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(std::int64_t(v)); }
  Writer& value(bool v);
  Writer& null();

  /// Splices pre-rendered JSON as one value (caller guarantees validity).
  Writer& raw(std::string_view json);

  /// True once every opened container has been closed.
  [[nodiscard]] bool complete() const { return depth_.empty() && emitted_; }

private:
  struct Level {
    bool array{false};
    bool compact{false};
    bool empty{true};
  };

  void before_value();
  void newline_indent();

  std::ostream& os_;
  std::vector<Level> depth_;
  bool key_pending_{false};
  bool emitted_{false};
};

/// Emits `{"schema_version": 1, "tool": <tool>,` and leaves the object
/// open.  The caller writes the remaining keys (normally one `payload`)
/// and calls end_object().  This is the envelope constructor every JSON
/// producer goes through.
void write_envelope_open(Writer& w, std::string_view tool);

/// Convenience: full envelope around one pre-rendered payload object.
void write_envelope(std::ostream& os, std::string_view tool,
                    std::string_view payload_json);

// --- reader -----------------------------------------------------------------

/// Parsed JSON value (used by schema checkers and tests; throws
/// scpg::ParseError on malformed input).
struct Value {
  enum class Type : std::uint8_t {
    Null,
    Bool,
    Number,
    String,
    Array,
    Object
  } type{Type::Null};
  bool b{false};
  double num{0};
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  [[nodiscard]] bool is(Type t) const { return type == t; }
  /// Object member or nullptr (also nullptr when not an object).
  [[nodiscard]] const Value* get(std::string_view k) const;
};

[[nodiscard]] Value parse(std::string_view text);

} // namespace scpg::json
