#include "util/rng.hpp"

#include "util/error.hpp"

namespace scpg {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
} // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  SCPG_REQUIRE(bound != 0, "Rng::below requires a nonzero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (~0ULL / bound);
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % bound;
}

double Rng::uniform() {
  return double(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::stream(std::uint64_t seed, std::uint64_t key) {
  // Mix the two inputs through independent splitmix chains before
  // folding, so nearby (seed, key) pairs land in unrelated states.
  std::uint64_t a = seed;
  std::uint64_t b = key;
  std::uint64_t sm = splitmix64(a) ^ rotl(splitmix64(b), 32);
  Rng r;
  for (auto& s : r.s_) s = splitmix64(sm);
  return r;
}

std::uint64_t Rng::bits(int n) {
  SCPG_REQUIRE(n >= 0 && n <= 64, "Rng::bits requires 0 <= n <= 64");
  if (n == 0) return 0;
  return next() >> (64 - n);
}

} // namespace scpg
