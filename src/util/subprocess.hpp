// POSIX subprocess management for the campaign executor and its tools.
//
// The coordinator (src/campaign) supervises worker processes it must be
// able to outlive: spawn with both stdio ends piped, poll for frames,
// detect death asynchronously, and kill without cooperation.  crashmat
// (tools/) additionally needs children whose stdout is captured to a
// file so a campaign's JSON output survives the coordinator being
// SIGKILLed.  Both sit on this thin wrapper over fork/exec, pipe, poll
// and waitpid; nothing here knows about frames or campaigns.
//
// Two spawn modes:
//  * exec mode (argv non-empty): fork + execvp.  The normal production
//    path (`scpgc campaign` re-execs itself as `scpgc worker`).
//  * fork mode (argv empty, child_main set): fork only; the child runs
//    child_main(stdin_fd, stdout_fd) and _exits with its return value.
//    Used by in-process tests so a campaign round-trip needs no binary
//    path plumbing.  _exit (not exit) keeps the child from flushing the
//    parent's inherited stdio buffers or running its static destructors.
#pragma once

#include <sys/types.h>

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scpg {

struct SpawnOptions {
  /// Command line for exec mode; empty selects fork mode.
  std::vector<std::string> argv;
  /// Fork-mode body, run in the child with its pipe fds.
  std::function<int(int in_fd, int out_fd)> child_main;
  /// Redirect the child's stdout to this file instead of a pipe
  /// (stdout_fd is then -1).  Used by crashmat to capture output across
  /// a coordinator kill.
  std::string stdout_path;
  /// Redirect the child's stdin from /dev/null instead of a pipe
  /// (stdin_fd is then -1).
  bool null_stdin{false};
};

/// A spawned child.  The parent owns the fds and must close them (or let
/// the coordinator's bookkeeping do it); the pid must be reaped with
/// wait_child.
struct Subprocess {
  pid_t pid{-1};
  int stdin_fd{-1};  ///< write end: parent -> child stdin
  int stdout_fd{-1}; ///< read end: child stdout -> parent
};

/// Forks (and in exec mode execs) a child with its stdio piped as
/// requested.  Throws scpg::Error when the OS refuses (pipe/fork
/// failure); an exec failure surfaces as the child _exiting 127.
[[nodiscard]] Subprocess spawn_child(const SpawnOptions& opt);

/// Writes the whole buffer; returns false on EPIPE or any other error
/// (the caller treats the peer as dead).  Requires SIGPIPE ignored.
bool write_all(int fd, std::string_view data);

/// Appends whatever is currently readable to `buf`.  Returns the byte
/// count read, 0 on EOF, or -1 when the fd is non-blocking and no data
/// is available.
int read_available(int fd, std::string& buf);

void set_nonblocking(int fd);

/// close(fd) and set it to -1; no-op when already -1.
void close_fd(int& fd);

/// Non-blocking (or blocking) reap.  Returns nullopt while the child
/// still runs, otherwise the exit code for a normal exit or 128+signal
/// for a signal death.
std::optional<int> wait_child(pid_t pid, bool block);

/// Sends `sig`; a dead/reaped pid is not an error.
void kill_child(pid_t pid, int sig);

/// Ignores SIGPIPE process-wide so writes to dead peers fail with EPIPE
/// instead of killing the process.  Idempotent.
void ignore_sigpipe();

} // namespace scpg
