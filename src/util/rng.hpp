// Deterministic random number generation.
//
// All stochastic parts of the library (random stimulus vectors, workload
// data) use this generator so that tests and benches are reproducible from
// a seed.  The engine is xoshiro256**, seeded through splitmix64.
#pragma once

#include <cstdint>

namespace scpg {

/// Small, fast, deterministic PRNG (xoshiro256**).
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x5c9067d25c9067d2ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound) — bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Uniform n-bit value (n in [0, 64]).
  std::uint64_t bits(int n);

  /// Deterministically derived child stream: the (seed, key) pair fully
  /// defines the stream, and distinct keys yield statistically
  /// independent sequences (both inputs pass through splitmix64 before
  /// seeding the state).  The sweep engine derives one stream per
  /// operating point from the sweep seed and the point's configuration
  /// digest, so a point's stimulus never depends on execution order or
  /// worker count.
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t key);

private:
  std::uint64_t s_[4];
};

} // namespace scpg
