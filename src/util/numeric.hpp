// Small numeric helpers shared by the analysis engines: monotone root
// bracketing/bisection (budget solver, convergence finder), linear
// interpolation over sample tables, and golden-section minimisation
// (minimum-energy-point search).
#pragma once

#include <functional>
#include <vector>

namespace scpg {

/// Finds x in [lo, hi] with f(x) == 0 by bisection.  Requires
/// f(lo) and f(hi) to have opposite signs (or one of them to be zero).
/// Tolerance is on x.  Throws InfeasibleError if the root is not bracketed.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              double x_tol = 1e-9, int max_iter = 200);

/// Minimises a unimodal f over [lo, hi] by golden-section search;
/// returns argmin.
double golden_min(const std::function<double(double)>& f, double lo,
                  double hi, double x_tol = 1e-9, int max_iter = 400);

/// Piecewise-linear interpolation table with strictly increasing x.
class LinearTable {
public:
  LinearTable() = default;
  LinearTable(std::vector<double> xs, std::vector<double> ys);

  /// Interpolates (clamped at the ends).
  [[nodiscard]] double at(double x) const;

  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] std::size_t size() const { return xs_.size(); }

private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Arithmetic mean; requires a non-empty range.
double mean(const std::vector<double>& v);

/// Population standard deviation; requires a non-empty range.
double stddev(const std::vector<double>& v);

} // namespace scpg
