#include "util/numeric.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace scpg {

double bisect(const std::function<double(double)>& f, double lo, double hi,
              double x_tol, int max_iter) {
  SCPG_REQUIRE(lo <= hi, "bisect requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (flo * fhi > 0.0)
    throw InfeasibleError("bisect: root not bracketed in [lo, hi]");
  for (int i = 0; i < max_iter && (hi - lo) > x_tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if (flo * fm < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  return 0.5 * (lo + hi);
}

double golden_min(const std::function<double(double)>& f, double lo,
                  double hi, double x_tol, int max_iter) {
  SCPG_REQUIRE(lo <= hi, "golden_min requires lo <= hi");
  constexpr double invphi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - invphi * (b - a);
  double d = a + invphi * (b - a);
  double fc = f(c), fd = f(d);
  for (int i = 0; i < max_iter && (b - a) > x_tol; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - invphi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + invphi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

LinearTable::LinearTable(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  SCPG_REQUIRE(xs_.size() == ys_.size(), "table x/y sizes must match");
  SCPG_REQUIRE(!xs_.empty(), "table must be non-empty");
  SCPG_REQUIRE(std::is_sorted(xs_.begin(), xs_.end()) &&
                   std::adjacent_find(xs_.begin(), xs_.end()) == xs_.end(),
               "table x values must be strictly increasing");
}

double LinearTable::at(double x) const {
  SCPG_REQUIRE(!xs_.empty(), "interpolating an empty table");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t i = std::size_t(it - xs_.begin());
  const double t = (x - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
  return ys_[i - 1] + t * (ys_[i] - ys_[i - 1]);
}

double mean(const std::vector<double>& v) {
  SCPG_REQUIRE(!v.empty(), "mean of an empty range");
  double s = 0;
  for (double x : v) s += x;
  return s / double(v.size());
}

double stddev(const std::vector<double>& v) {
  const double m = mean(v);
  double s = 0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / double(v.size()));
}

} // namespace scpg
