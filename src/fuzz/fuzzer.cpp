#include "fuzz/fuzzer.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

#include "fuzz/minimize.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace scpg::fuzz {

namespace {

constexpr int kBatch = 32; ///< fixed (jobs-independent) merge granularity
constexpr std::size_t kPoolCap = 256;      ///< live mutation bases
constexpr std::size_t kDetailCap = 16;     ///< mismatch lines kept
constexpr double kMutateChance = 0.5;      ///< vs fresh random case

std::uint64_t slot_key(std::uint64_t batch, int slot) {
  Fnv1a h;
  h.mix(batch);
  h.mix(std::uint64_t(slot));
  return h.digest();
}

} // namespace

FuzzStats run_fuzz(const Library& lib, const FuzzOptions& opt,
                   const std::function<void(const std::string&)>& progress) {
  FuzzStats st;
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const auto out_of_time = [&] {
    return opt.time_budget_s > 0 && elapsed_s() >= opt.time_budget_s;
  };

  // Seed the mutation pool from the on-disk corpus, when present.
  std::vector<FuzzCase> pool;
  if (!opt.corpus_dir.empty()) {
    try {
      for (CorpusEntry& e : load_corpus(opt.corpus_dir))
        pool.push_back(std::move(e.fc));
    } catch (const PreconditionError&) {
      // Directory not created yet: an empty seed pool is fine; malformed
      // entries (ParseError) still propagate.
    }
  }

  // Mismatch reproducers go to a subdirectory the CI replay test does not
  // scan: a genuine disagreement must fail THIS run, not be enshrined as
  // an expected corpus outcome.
  const std::string findings_dir =
      opt.corpus_dir.empty() ? "" : opt.corpus_dir + "/findings";

  std::optional<FuzzCase> first_detected; ///< inject mode

  for (std::uint64_t batch = 0;; ++batch) {
    if (opt.runs > 0 && st.cases >= opt.runs) break;
    if (opt.runs <= 0 && opt.time_budget_s <= 0) break; // nothing to do
    if (out_of_time()) break;

    int n = kBatch;
    if (opt.runs > 0) n = std::min(n, opt.runs - st.cases);

    // Sequential generation from per-slot streams; the pool snapshot is
    // taken per batch so merge order cannot affect generation.
    std::vector<FuzzCase> specs;
    specs.reserve(std::size_t(n));
    const std::size_t pool_n = pool.size();
    for (int s = 0; s < n; ++s) {
      Rng rng = Rng::stream(opt.seed, slot_key(batch, s));
      const std::uint64_t id = slot_key(~opt.seed, int(batch * kBatch) + s);
      const bool allow_bugs = !opt.inject.has_value();
      FuzzCase fc = (pool_n > 0 && rng.chance(kMutateChance))
                        ? mutate_case(pool[rng.below(pool_n)], id, rng,
                                      allow_bugs)
                        : random_case(id, rng, allow_bugs);
      if (opt.inject) force_bug(fc, *opt.inject);
      specs.push_back(std::move(fc));
    }

    std::vector<CaseResult> results;
    {
      obs::Scope batch_scope("fuzz.batch", "fuzz");
      if (obs::trace_enabled())
        batch_scope.args("{\"batch\": " + std::to_string(batch) +
                         ", \"cases\": " + std::to_string(n) + "}");
      results = parallel_map(specs.size(), opt.jobs, [&](std::size_t i) {
        return run_case(lib, specs[i], opt.backend);
      });
    }

    // Deterministic in-order merge.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const FuzzCase& fc = specs[i];
      const CaseResult& r = results[i];
      ++st.cases;
      if (fc.bug == BugKind::None) ++st.clean_cases;
      else ++st.bug_cases;
      if (fc.bug != BugKind::None && outcome(r, bug_oracle(fc.bug)).fired) {
        ++st.detected;
        if (opt.inject && !first_detected) first_detected = fc;
      }
      const int fresh = st.coverage.add(coverage_keys(r));
      if (fresh > 0 && r.built && pool.size() < kPoolCap)
        pool.push_back(fc);

      if (!r.mismatch) continue;
      ++st.mismatches;
      FuzzCase repro = fc;
      if (opt.minimize && r.built) {
        MinimizeStats ms;
        repro = minimize_case(lib, fc, still_mismatch(r), &ms);
        if (ms.accepted > 0) ++st.minimized;
      }
      std::ostringstream os;
      os << "case " << fc.id << " (bug: " << bug_name(fc.bug)
         << "): " << r.detail;
      if (st.mismatch_details.size() < kDetailCap)
        st.mismatch_details.push_back(os.str());
      if (!findings_dir.empty()) {
        std::ostringstream name;
        name << "mismatch_" << std::hex << fc.id;
        CorpusEntry ce{name.str(), repro, Expectation{fc.bug == BugKind::None,
                                                      fc.bug == BugKind::None
                                                          ? Oracle::DiffSim
                                                          : bug_oracle(fc.bug)}};
        try {
          const BuiltCase built = build_case(lib, repro);
          save_entry(findings_dir, ce, &built);
        } catch (const Error&) {
          save_entry(findings_dir, ce, nullptr);
        }
        st.saved.push_back("findings/" + ce.name);
      }
    }

    if (progress) {
      std::ostringstream os;
      os << "batch " << batch << ": " << st.cases << " cases, "
         << st.mismatches << " mismatch(es), " << st.detected << "/"
         << st.bug_cases << " bugs detected, coverage "
         << st.coverage.distinct();
      progress(os.str());
    }
  }

  // Inject mode: shrink the first detected case into the category's
  // committed reproducer.
  if (opt.inject && first_detected) {
    const Oracle cat = bug_oracle(*opt.inject);
    FuzzCase repro = *first_detected;
    if (opt.minimize) {
      MinimizeStats ms;
      repro = minimize_case(lib, repro, still_fires(cat), &ms);
      if (ms.accepted > 0) ++st.minimized;
    }
    CorpusEntry ce{"repro_" + std::string(bug_name(*opt.inject)), repro,
                   Expectation{false, cat}};
    if (!opt.corpus_dir.empty()) {
      const BuiltCase built = build_case(lib, repro);
      save_entry(opt.corpus_dir, ce, &built);
      st.saved.push_back(ce.name);
    }
    st.injected_repro = std::move(ce);
  }

  if (!opt.coverage_out.empty()) {
    std::ofstream os(opt.coverage_out);
    SCPG_REQUIRE(os.good(), "cannot write coverage to " + opt.coverage_out);
    json::write_envelope(os, "fuzz-coverage", st.coverage.to_json());
  }

  // End-of-run roll-up: totals are merge-order facts (jobs-invariant);
  // throughput is wall-clock and lands under "timings".
  SCPG_OBS_COUNT("fuzz.cases", st.cases);
  SCPG_OBS_COUNT("fuzz.bug_cases", st.bug_cases);
  SCPG_OBS_COUNT("fuzz.detected", st.detected);
  SCPG_OBS_COUNT("fuzz.mismatches", st.mismatches);
  SCPG_OBS_GAUGE("fuzz.coverage.distinct", st.coverage.distinct());
  const double secs = elapsed_s();
  SCPG_OBS_TIMING_GAUGE("fuzz.cases_per_s",
                        secs > 0 ? double(st.cases) / secs : 0.0);
  return st;
}

} // namespace scpg::fuzz
