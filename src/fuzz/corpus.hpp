// Corpus persistence and coverage accounting.
//
// A corpus directory holds one `NAME.fuzz` file per entry (the
// "scpg-fuzz-case v1" text form, case.hpp).  Reproducers additionally get
// standalone artifacts next to the entry: `NAME.v` (the SCPG-transformed
// netlist, structural Verilog) and `NAME.stim` (one line per cycle), so a
// mismatch can be inspected or replayed outside this harness entirely.
//
// Coverage is a flat feature-key -> hit-count map (case_features plus
// per-oracle ran/fired keys); the fuzzer uses NEW keys as the signal to
// keep a case in the live corpus, and `scpgc fuzz` serializes the map as
// fuzz_coverage.json so CI can assert coverage does not regress.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/case.hpp"
#include "fuzz/oracles.hpp"

namespace scpg::fuzz {

struct CorpusEntry {
  std::string name; ///< file stem, e.g. "clean_0007" or "repro_drop_clamp"
  FuzzCase fc;
  Expectation exp;
};

/// Loads every *.fuzz entry, sorted by name (deterministic replay order).
/// Throws ParseError on a malformed entry, Error if `dir` is unreadable.
[[nodiscard]] std::vector<CorpusEntry> load_corpus(const std::string& dir);

/// Writes `NAME.fuzz`; with a built case, also `NAME.v` + `NAME.stim`.
void save_entry(const std::string& dir, const CorpusEntry& entry,
                const BuiltCase* built = nullptr);

// --- coverage ---------------------------------------------------------------

class Coverage {
public:
  /// Adds `keys`; returns how many were not yet in the map.
  int add(const std::vector<std::string>& keys);

  [[nodiscard]] std::size_t distinct() const { return hits_.size(); }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& hits() const {
    return hits_;
  }

  /// {"distinct": N, "keys": {"comp:ripple_add": 12, ...}}
  [[nodiscard]] std::string to_json() const;

private:
  std::map<std::string, std::uint64_t> hits_;
};

/// Coverage keys of one finished case: its features plus
/// oracle_ran:/oracle_fired: markers and detection-channel keys.
[[nodiscard]] std::vector<std::string> coverage_keys(const CaseResult& r);

} // namespace scpg::fuzz
