#include "fuzz/minimize.hpp"

#include <algorithm>

namespace scpg::fuzz {

namespace {

/// Index of the first fired oracle, or -1.
int first_fired(const CaseResult& r) {
  for (int i = 0; i < kNumOracles; ++i)
    if (r.oracles[std::size_t(i)].fired) return i;
  return -1;
}

} // namespace

Interesting still_mismatch(const CaseResult& first) {
  const int lead = first_fired(first);
  return [lead](const CaseResult& r) {
    return r.mismatch && first_fired(r) == lead;
  };
}

Interesting still_fires(Oracle o) {
  return [o](const CaseResult& r) { return r.built && outcome(r, o).fired; };
}

FuzzCase minimize_case(const Library& lib, FuzzCase fc,
                       const Interesting& keep, MinimizeStats* stats,
                       int budget) {
  const auto try_candidate = [&](FuzzCase cand) {
    if (budget <= 0) return false;
    --budget;
    if (stats) ++stats->attempts;
    if (!keep(run_case(lib, cand))) return false;
    if (stats) ++stats->accepted;
    fc = std::move(cand);
    return true;
  };

  bool progress = true;
  while (progress && budget > 0) {
    progress = false;

    // Drop cloud blocks, front to back.
    for (std::size_t i = 0;
         fc.design.blocks.size() > 1 && i < fc.design.blocks.size();) {
      FuzzCase cand = fc;
      cand.design.blocks.erase(cand.design.blocks.begin() + long(i));
      if (try_candidate(std::move(cand))) progress = true;
      else ++i;
    }

    // Narrow the operands.
    while (fc.design.width > 2 && budget > 0) {
      FuzzCase cand = fc;
      --cand.design.width;
      if (!try_candidate(std::move(cand))) break;
      progress = true;
    }

    // Halve the measured cycles.
    while (fc.cycles > 6 && budget > 0) {
      FuzzCase cand = fc;
      cand.cycles = std::max(6, fc.cycles / 2);
      if (cand.cycles == fc.cycles || !try_candidate(std::move(cand))) break;
      progress = true;
    }

    // Shrink the stimulus list (the harness wraps modulo its length).
    while (fc.stim.size() > 1 && budget > 0) {
      FuzzCase cand = fc;
      cand.stim.resize(std::max<std::size_t>(1, fc.stim.size() / 2));
      if (!try_candidate(std::move(cand))) break;
      progress = true;
    }

    // Zero individual stimulus words.
    for (std::size_t i = 0; i < fc.stim.size() && budget > 0; ++i)
      for (int lane = 0; lane < 2; ++lane) {
        if (fc.stim[i][std::size_t(lane)] == 0) continue;
        FuzzCase cand = fc;
        cand.stim[i][std::size_t(lane)] = 0;
        if (try_candidate(std::move(cand))) progress = true;
      }

    // Canonicalize the power fabric and operating point.
    const auto canon = [&](auto&& edit) {
      FuzzCase cand = fc;
      edit(cand);
      if (try_candidate(std::move(cand))) progress = true;
    };
    if (fc.design.header_count != 2)
      canon([](FuzzCase& c) { c.design.header_count = 2; });
    if (fc.design.header_drive != 1)
      canon([](FuzzCase& c) { c.design.header_drive = 1; });
    if (fc.design.boundary_buffers)
      canon([](FuzzCase& c) { c.design.boundary_buffers = false; });
    if (fc.design.clamp_high)
      canon([](FuzzCase& c) { c.design.clamp_high = false; });
    if (fc.duty != 0.5) canon([](FuzzCase& c) { c.duty = 0.5; });
  }
  return fc;
}

} // namespace scpg::fuzz
