#include "fuzz/build.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "gen/arith.hpp"
#include "gen/components.hpp"
#include "gen/mult16.hpp"
#include "netlist/builder.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "verify/fault.hpp"

namespace scpg::fuzz {

namespace {

/// Truncates or zero-extends (tie-low) `x` to exactly `w` bits.
Bus fit(Builder& b, Bus x, std::size_t w) {
  if (x.size() > w) x.resize(w);
  while (x.size() < w) x.push_back(b.tie_lo());
  return x;
}

/// Applies one cloud block: cur = f(cur, other).  `other` is fitted to
/// cur's width inside, so the running bus may grow (MultArray) without
/// constraining later operand picks.
void apply_block(Builder& b, Comp c, Bus& cur, const Bus& other_raw) {
  const Bus other = fit(b, other_raw, cur.size());
  switch (c) {
    case Comp::RippleAdd:
      cur = gen::ripple_add(b, cur, other).sum;
      break;
    case Comp::CarrySelect:
      cur = gen::carry_select_add(b, cur, other).sum;
      break;
    case Comp::Subtract:
      cur = gen::subtract(b, cur, other).sum;
      break;
    case Comp::Increment:
      cur = gen::increment(b, cur);
      break;
    case Comp::CompareMux: {
      const gen::CompareResult cmp = gen::compare(b, cur, other);
      cur = b.mux_bus(cur, b.not_bus(cur), cmp.lt);
      break;
    }
    case Comp::XorBlend:
      cur = b.xor_bus(cur, other);
      break;
    case Comp::MuxTree: {
      const std::vector<Bus> choices = {cur, b.not_bus(cur),
                                        b.xor_bus(cur, other),
                                        b.or_bus(cur, other)};
      const Bus sel = {other[0], other[1 % other.size()]};
      cur = gen::mux_tree(b, choices, sel);
      break;
    }
    case Comp::ShiftLeft:
      cur = gen::shift_left(b, cur, {other[0], other[1 % other.size()]});
      break;
    case Comp::ShiftRight:
      cur = gen::shift_right(b, cur, {other[0], other[1 % other.size()]});
      break;
    case Comp::DecoderMix: {
      const Bus dec =
          gen::decoder(b, {other[0], other[1 % other.size()]});
      cur = b.xor_bus(cur, fit(b, dec, cur.size()));
      break;
    }
    case Comp::MultArray:
      cur = gen::multiplier_array(b, cur, other);
      break;
  }
}

/// Combinational delay of one BUF stage (loaded by another BUF), from a
/// throwaway calibration netlist: STA of a 33-stage chain minus a 1-stage
/// chain, over 32.
double buf_stage_delay_s(const Library& lib, const Corner& corner) {
  const auto chain_t_eval = [&](int n) {
    Netlist nl("buf_cal", lib);
    Builder b(nl);
    const NetId clk = b.input("clk");
    NetId x = b.dff(b.input("d"), clk);
    for (int i = 0; i < n; ++i) x = b.BUF(x);
    b.output("q", b.dff(x, clk));
    nl.check();
    return run_sta(nl, corner).t_eval.v;
  };
  return std::max((chain_t_eval(33) - chain_t_eval(1)) / 32.0, 1e-15);
}

/// Builds the pre-transform design: clk, a[w], b[w] -> registered p.
/// Both operands and the result are registered (the paper's Fig 2 shape);
/// the block pipeline in between becomes the gated cloud.
std::unique_ptr<Netlist> build_design(const Library& lib, const FuzzCase& fc,
                                      int* out_width, int canary_bufs) {
  auto nl = std::make_unique<Netlist>("fuzz_" + std::to_string(fc.id), lib);
  Builder b(*nl);
  const int w = fc.design.width;
  const NetId clk = b.input("clk");
  const Bus a = b.input_bus("a", w);
  const Bus bb = b.input_bus("b", w);
  const Bus ra = b.dff_bus(a, clk);
  const Bus rb = b.dff_bus(bb, clk);

  // Operand pool: registered inputs plus every intermediate result; the
  // wiring stream decides which one each block consumes, so the same
  // block list yields many distinct DAG shapes.
  std::vector<Bus> pool = {ra, rb};
  Bus cur = ra;
  Rng wiring(fc.design.wiring);
  for (const Comp c : fc.design.blocks) {
    const Bus& other = pool[wiring.below(pool.size())];
    apply_block(b, c, cur, other);
    pool.push_back(cur);
  }

  const Bus q = b.dff_bus(cur, clk);
  b.output_bus("p", q);

  // Canary: a registered toggle whose D path runs through a buffer chain
  // sized (by the caller, via STA) to dominate the data critical path.
  // Settled, it alternates every cycle independent of stimulus; captured
  // mid-settle it goes clock-dependent-stale — so a capture-races-
  // evaluation bug (FastClock) stays observable even when the data
  // outputs happen to map the stimulus to constants.  A plain chain
  // carries a genuinely toggling value and cannot glitch.
  const NetId can_q = b.dff(b.tie_lo(), clk);
  NetId can_d = b.NOT(can_q);
  for (int i = 0; i < canary_bufs; ++i) can_d = b.BUF(can_d);
  nl->rewire_input(nl->net(can_q).driver_cell, 0, can_d);
  b.output("canary", can_q);

  if (out_width) *out_width = int(q.size());
  nl->check();
  return nl;
}

} // namespace

BuiltCase build_case(const Library& lib, const FuzzCase& fc) {
  BuiltCase bc;
  // Two-pass build: measure the data critical path first, then size the
  // canary chain to ~2x of it so the canary is the deepest endpoint by a
  // comfortable margin (stale within one FastClock period, settled within
  // two) for every generated design shape.
  const SimConfig probe_cfg;
  double te0;
  {
    const auto probe = build_design(lib, fc, nullptr, 0);
    te0 = run_sta(*probe, probe_cfg.corner).t_eval.v;
  }
  const double buf_d = buf_stage_delay_s(lib, probe_cfg.corner);
  const int canary_bufs = int(2.0 * te0 / buf_d) + 1;
  bc.original = build_design(lib, fc, &bc.out_width, canary_bufs);

  // SCPG transform per the spec; NoIsolation is a transform-option bug.
  ScpgOptions opt;
  opt.header_count = fc.design.header_count;
  opt.header_drive = fc.design.header_drive;
  opt.clamp = fc.design.clamp_high ? ScpgOptions::Clamp::High
                                   : ScpgOptions::Clamp::Low;
  opt.boundary_buffers = fc.design.boundary_buffers;
  opt.insert_isolation = fc.bug != BugKind::NoIsolation;
  bc.gated = std::make_unique<Netlist>(*bc.original);
  bc.info = apply_scpg(*bc.gated, opt);

  // Structural bug edits (post-transform).  The injection RNG is keyed on
  // the case id alone so rebuilding an identical recipe (replay,
  // minimization) reproduces the exact same fault sites.
  Rng inj = Rng::stream(fc.id, 0x5cb6'f01d'0bad'cafeULL);
  switch (fc.bug) {
    case BugKind::DropClamp:
      bc.bug_sites = verify::inject_dropped_clamp(*bc.gated, 0.5, inj);
      break;
    case BugKind::StuckIsolation:
      bc.bug_sites = verify::inject_stuck_isolation(*bc.gated, 0.5, inj);
      break;
    case BugKind::HeaderPolarity: {
      // Fig 2 polarity flip: SLP inverted at every header, so the cloud
      // is collapsed during evaluation and powered while idle.
      Builder b(*bc.gated);
      const NetId flipped = b.NOT(bc.info.sleep);
      for (const CellId h : bc.info.headers)
        bc.gated->rewire_input(h, 0, flipped);
      bc.gated->check();
      bc.bug_sites = int(bc.info.headers.size());
      break;
    }
    case BugKind::OutputInvert: {
      // Miscompile: one output flop's D rewired through an inverter.  The
      // netlist stays structurally and power-intent clean (the inverter
      // is always-on, fed from the already-clamped boundary net), so only
      // a differential simulation against the golden model can tell.
      std::vector<PinRef> d_pins;
      for (const Port& p : bc.gated->ports()) {
        if (p.dir != PortDir::Out) continue;
        const CellId flop = bc.gated->net(p.net).driver_cell;
        d_pins.push_back({flop, 0});
      }
      SCPG_ASSERT(!d_pins.empty());
      const PinRef pick = d_pins[inj.below(d_pins.size())];
      Builder b(*bc.gated);
      const NetId d_old = bc.gated->cell(pick.cell).inputs[0];
      bc.gated->rewire_input(pick.cell, pick.pin, b.NOT(d_old));
      bc.gated->check();
      bc.bug_sites = 1;
      break;
    }
    case BugKind::NoIsolation:
      bc.bug_sites = int(bc.info.cells_gated);
      break;
    case BugKind::SlowRail:
    case BugKind::FastClock:
      bc.bug_sites = 1; // config-level; applied below / via period_slack
      break;
    case BugKind::None:
      break;
  }

  // Operating point from the rail closed forms + STA: the minimum
  // feasible period at `duty` must fit T_PGStart (from a fully collapsed
  // rail) plus evaluation and setup into the low phase; period_slack
  // scales that minimum.  Extracted at the HONEST config — a SlowRail bug
  // derates only the simulated config afterwards.
  bc.cfg_model = SimConfig{};
  bc.rail = extract_rail_params(*bc.gated, bc.cfg_model);
  const StaReport sta = run_sta(*bc.gated, bc.cfg_model.corner);
  const double t_es = sta.t_eval.v + sta.endpoint_setup.v;
  const double t_need = bc.rail.t_ready_from(Voltage{0.0}).v + t_es;
  SCPG_ASSERT(t_need > 0.0);
  double period;
  if (fc.bug == BugKind::FastClock) {
    // The PERIOD must race evaluation itself (slack < 1 over T_eval
    // alone): gated cells keep evaluating until the rail corrupts, so a
    // short low phase alone is benign — captures only go stale when the
    // critical path cannot settle within one full period.  Stale captures
    // depend on the clock, which the metamorphic frequency-invariance
    // oracle is built to notice.
    period = fc.period_slack * sta.t_eval.v;
  } else {
    period = fc.period_slack * t_need / (1.0 - fc.duty);
  }
  if (fc.bug != BugKind::FastClock) {
    // Keep the operating point out of the hazardous gray band where the
    // rail droops below ready_frac but never corrupts: the rail sense
    // only detects full collapse, so NISO would release clamps onto a
    // sagging rail — a genuine Fig 3 contract violation the monitors
    // flag.  Either the high phase stays shallow (droop within the ready
    // band) or the period stretches until the rail collapses fully every
    // cycle.  SlowRail always takes the collapse branch: the simulator
    // only announces Ready after a Corrupt, so a derated recharge is only
    // observable on a collapsing rail.
    const double v_target = 0.90 * bc.rail.corrupt_frac * bc.rail.vdd.v;
    double t_collapse = 0.05 * bc.rail.tau_decay().v;
    while (bc.rail.v_after_off(Time{t_collapse}).v > v_target &&
           t_collapse < 1e3 * bc.rail.tau_decay().v)
      t_collapse *= 2.0;
    const double v_end = bc.rail.v_after_off(Time{fc.duty * period}).v;
    const bool shallow =
        v_end >= 1.02 * bc.rail.ready_frac * bc.rail.vdd.v;
    if (fc.bug == BugKind::SlowRail || !shallow)
      period = std::max(period, 1.1 * t_collapse / fc.duty);
  }
  SCPG_ASSERT(period > 0.0);
  bc.f = Frequency{1.0 / period};

  // The first capture edge must not land before the zero-time reset
  // settle completes: a captured X would regenerate through the canary
  // feedback forever and poison every downstream comparison.
  bc.settle_fs = SimTime(2.0 * t_es * 1e15);

  bc.cfg_sim = bc.cfg_model;
  if (fc.bug == BugKind::SlowRail) {
    const double t_low = period * (1.0 - fc.duty);
    bc.cfg_sim.header_ron_derate =
        verify::slow_rail_derate(*bc.gated, bc.cfg_model, t_low);
  }
  return bc;
}

std::vector<std::string> case_features(const FuzzCase& fc,
                                       const BuiltCase& built) {
  std::vector<std::string> keys;
  for (const Comp c : fc.design.blocks)
    keys.push_back("comp:" + std::string(comp_name(c)));
  keys.push_back("width:" + std::to_string(fc.design.width));
  keys.push_back("blocks:" + std::to_string(fc.design.blocks.size()));
  keys.push_back(std::string("clamp:") +
                 (fc.design.clamp_high ? "high" : "low"));
  keys.push_back(std::string("buffers:") +
                 (fc.design.boundary_buffers ? "on" : "off"));
  keys.push_back("headers:" + std::to_string(fc.design.header_count) + "x" +
                 std::to_string(fc.design.header_drive));
  keys.push_back("bug:" + std::string(bug_name(fc.bug)));
  int log2_cells = 0;
  for (std::size_t n = built.info.cells_gated; n > 1; n >>= 1) ++log2_cells;
  keys.push_back("gated_cells_log2:" + std::to_string(log2_cells));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

} // namespace scpg::fuzz
