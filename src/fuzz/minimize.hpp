// Spec-level delta debugging for fuzz mismatches.
//
// Because a FuzzCase is a closed recipe (case.hpp), minimization shrinks
// the RECIPE and rebuilds, rather than hacking at a netlist: drop cloud
// blocks, narrow the operand width, halve the cycle count, shrink and
// zero the stimulus, and canonicalize the power fabric — greedily, keeping
// every step on which `keep` still holds, until a fixpoint or the rebuild
// budget runs out.  The result is the small, committable reproducer the
// corpus stores.
#pragma once

#include <functional>

#include "fuzz/case.hpp"
#include "fuzz/oracles.hpp"

namespace scpg::fuzz {

/// Predicate over a candidate's oracle results: "is this still the bug I
/// am chasing?".  Typical instances: still_mismatch / still_fires.
using Interesting = std::function<bool(const CaseResult&)>;

/// Any mismatch with the same leading fired oracle as `first` (clean-case
/// disagreements), or any escape (bug cases).
[[nodiscard]] Interesting still_mismatch(const CaseResult& first);

/// The given oracle still fires (used to shrink DETECTED bug cases into
/// committed reproducers: the detection must survive minimization).
[[nodiscard]] Interesting still_fires(Oracle o);

struct MinimizeStats {
  int attempts{0}; ///< candidate rebuilds tried
  int accepted{0}; ///< candidates that kept the property
};

/// Greedy fixpoint minimization under `keep`; at most `budget` rebuilds.
/// `fc` itself must satisfy `keep` (callers pass a case that just failed /
/// fired).  Deterministic.
[[nodiscard]] FuzzCase minimize_case(const Library& lib, FuzzCase fc,
                                     const Interesting& keep,
                                     MinimizeStats* stats = nullptr,
                                     int budget = 200);

} // namespace scpg::fuzz
