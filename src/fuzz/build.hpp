// FuzzCase -> concrete test article.
//
// build_case() turns the recipe into everything the oracles run on: the
// original (pre-transform) netlist, the SCPG-transformed netlist with the
// case's bug applied, the operating point resolved from the rail closed
// forms + STA (period_slack is relative to the minimum feasible period,
// so a case stays meaningful after the minimizer shrinks its design), and
// the two SimConfigs — the honest one the Eq. 1 forms are extracted at,
// and the simulated one (they differ only for the SlowRail bug).
#pragma once

#include <memory>

#include "fuzz/case.hpp"
#include "netlist/netlist.hpp"
#include "scpg/rail_model.hpp"
#include "scpg/transform.hpp"
#include "sim/simulator.hpp"

namespace scpg::fuzz {

struct BuiltCase {
  // unique_ptr: Netlist is move-only in spirit (library back-pointer) and
  // the two copies are handed to simulators that want stable addresses.
  std::unique_ptr<Netlist> original; ///< pre-transform reference
  std::unique_ptr<Netlist> gated;    ///< transformed, bug applied
  ScpgInfo info;                     ///< transform exports (pre-bug)
  RailParams rail;      ///< closed forms at the HONEST config
  SimConfig cfg_model;  ///< config the closed forms were extracted at
  SimConfig cfg_sim;    ///< config the simulator runs at (SlowRail derates)
  Frequency f{1e6};     ///< resolved clock
  SimTime settle_fs{0}; ///< min delay of the first capture edge (reset settle)
  int out_width{0};     ///< width of the registered output bus "p"
  int bug_sites{0};     ///< structural fault instances actually injected
};

/// Builds the case.  Throws only on internal errors — every recipe the
/// generator/mutator/minimizer can produce must build.
[[nodiscard]] BuiltCase build_case(const Library& lib, const FuzzCase& fc);

/// The generated design's feature keys (for the coverage map): component
/// kinds, width, fabric shape, gated-domain size bucket, bug kind.
[[nodiscard]] std::vector<std::string> case_features(const FuzzCase& fc,
                                                     const BuiltCase& built);

} // namespace scpg::fuzz
