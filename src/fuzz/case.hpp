// Fuzz case model: the serializable description of one differential test.
//
// A FuzzCase is NOT a netlist — it is the recipe for one: a compact
// DesignSpec (component blocks from src/gen wired by a seeded stream, plus
// the SCPG transform options), an optional injected power-intent bug, an
// operating point, and the explicit per-cycle stimulus words.  Everything
// the oracles need is derivable from the case alone, which is what makes
// cases minimizable (shrink the recipe, rebuild, re-check) and committable
// as corpus entries that CI replays bit-identically.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace scpg::fuzz {

/// Combinational building blocks the generator composes into the gated
/// cloud.  Each consumes the running bus (and possibly a second operand
/// chosen by the wiring stream) and produces the next running bus.
enum class Comp : std::uint8_t {
  RippleAdd,   ///< cur = cur + other (gen::ripple_add)
  CarrySelect, ///< cur = cur + other (gen::carry_select_add)
  Subtract,    ///< cur = cur - other
  Increment,   ///< cur = cur + 1
  CompareMux,  ///< cur = (cur < other) ? ~cur : cur  (gen::compare + mux)
  XorBlend,    ///< cur = cur ^ other
  MuxTree,     ///< 4-way gen::mux_tree over variants of cur/other
  ShiftLeft,   ///< cur = cur << other[1:0] (gen::shift_left)
  ShiftRight,  ///< cur = cur >> other[1:0]
  DecoderMix,  ///< cur = cur ^ zext(gen::decoder(other[1:0]))
  MultArray,   ///< cur = cur * other (gen::multiplier_array; doubles width)
};

inline constexpr int kNumComps = 11;

[[nodiscard]] std::string_view comp_name(Comp c);
[[nodiscard]] std::optional<Comp> comp_from_name(std::string_view name);

/// Injected power-intent bug, with the oracle category that must catch it:
///   OutputInvert   -> DiffSim      (miscompile: a registered output is
///                                   inverted after the transform — only a
///                                   differential simulation can see it)
///   SlowRail       -> RailTiming   (simulated Ron != closed-form Ron)
///   NoIsolation / DropClamp / StuckIsolation / HeaderPolarity
///                  -> LintMonitor  (must be caught by lint or a monitor;
///                                   captures still settle clean, so the
///                                   X never reaches a registered result)
///   FastClock      -> Metamorphic  (results no longer frequency-invariant)
enum class BugKind : std::uint8_t {
  None,
  NoIsolation,    ///< transform applied with insert_isolation = false
  DropClamp,      ///< verify::inject_dropped_clamp on half the clamps
  StuckIsolation, ///< verify::inject_stuck_isolation on half the clamps
  HeaderPolarity, ///< header SLEEP pins rewired through an inverter (Fig 2
                  ///< polarity flip: gated during eval, on during idle)
  SlowRail,       ///< simulator header_ron_derate without telling Eq. 1
  FastClock,      ///< clock period 75% of T_eval: captures race settling
  OutputInvert,   ///< one output flop's D rewired through an inverter
};

inline constexpr int kNumBugKinds = 8;

[[nodiscard]] std::string_view bug_name(BugKind b);
[[nodiscard]] std::optional<BugKind> bug_from_name(std::string_view name);

/// The four differential oracles.
enum class Oracle : std::uint8_t {
  DiffSim,    ///< SCPG vs no-PG simulation bit-identical at every register
  RailTiming, ///< measured Fig 4 windows match the Eq. 1 / rail closed forms
  LintMonitor,///< lint-clean designs run X-free; injected bugs get caught
  Metamorphic,///< duty monotonicity + frequency-scaling invariance
};

inline constexpr int kNumOracles = 4;

[[nodiscard]] std::string_view oracle_name(Oracle o);
[[nodiscard]] std::optional<Oracle> oracle_from_name(std::string_view name);

/// Oracle category an injected bug must be detected by.
[[nodiscard]] Oracle bug_oracle(BugKind b);

/// Recipe for the random registered design: ports clk, a[width], b[width]
/// -> p[out width]; both operands and the result are registered (the
/// paper's Fig 2 architecture), and the block pipeline between them is the
/// power-gated cloud.
struct DesignSpec {
  int width{4};                 ///< operand width (2..6)
  std::vector<Comp> blocks;     ///< cloud pipeline, applied in order
  std::uint64_t wiring{1};      ///< seed of the operand-selection stream
  int header_count{4};          ///< ScpgOptions::header_count
  int header_drive{2};          ///< ScpgOptions::header_drive
  bool clamp_high{false};       ///< isolation clamp polarity
  bool boundary_buffers{true};  ///< ScpgOptions::boundary_buffers
};

/// One complete fuzz case.
struct FuzzCase {
  std::uint64_t id{0}; ///< case seed (names reproducers, keys RNG streams)
  DesignSpec design;
  BugKind bug{BugKind::None};
  /// Clock period as a multiple of the minimum SCPG-feasible period at
  /// `duty` (>= ~1.15 is comfortably feasible; FastClock cases use < 1).
  double period_slack{1.5};
  double duty{0.5};    ///< clock-high (= gated) fraction
  int cycles{12};      ///< measured cycles after warmup
  /// Per-cycle operand words; stim[c] = {a, b} captured at edge c+1.
  std::vector<std::array<std::uint64_t, 2>> stim;
};

/// Draws a fresh random case from a seeded stream.  `allow_bugs` enables
/// the injected-bug classes (fuzzing detection); when false the case is a
/// clean-generator case (bug == None always).
[[nodiscard]] FuzzCase random_case(std::uint64_t id, Rng& rng,
                                   bool allow_bugs);

/// Structural mutation of an existing case (coverage-guided exploration):
/// insert/remove/replace a cloud block, resize the operand width, rewire
/// (new wiring seed), flip clamp polarity/buffers, resize the header bank,
/// or perturb the operating point / stimulus.
[[nodiscard]] FuzzCase mutate_case(const FuzzCase& base, std::uint64_t id,
                                   Rng& rng, bool allow_bugs);

/// Forces the case's bug class and re-applies the operating-point rules
/// that depend on it (FastClock compresses the period); used by
/// `scpgc fuzz --inject` to target one oracle category.
void force_bug(FuzzCase& fc, BugKind bug);

// --- corpus text form -------------------------------------------------------

/// Expected replay outcome recorded in a corpus entry.
struct Expectation {
  bool clean{true};              ///< no oracle may fail
  Oracle detect{Oracle::DiffSim};///< bug case: category that must detect
};

/// Serializes `fc` (plus its expectation) in the line-oriented
/// "scpg-fuzz-case v1" format (see DESIGN.md §10).
void write_case(const FuzzCase& fc, const Expectation& exp,
                std::ostream& os);

/// Parses a corpus entry.  Throws ParseError (with `source`) on malformed
/// input.
[[nodiscard]] std::pair<FuzzCase, Expectation> read_case(
    std::istream& is, const std::string& source = "<fuzz-case>");

} // namespace scpg::fuzz
