#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "netlist/verilog.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace scpg::fuzz {

namespace fs = std::filesystem;

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::error_code ec;
  SCPG_REQUIRE(fs::is_directory(dir, ec),
               "corpus directory '" + dir + "' does not exist");
  std::vector<CorpusEntry> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file() || e.path().extension() != ".fuzz") continue;
    std::ifstream in(e.path());
    SCPG_REQUIRE(in.good(), "cannot read corpus entry " + e.path().string());
    CorpusEntry ce;
    ce.name = e.path().stem().string();
    std::tie(ce.fc, ce.exp) = read_case(in, e.path().filename().string());
    out.push_back(std::move(ce));
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return out;
}

void save_entry(const std::string& dir, const CorpusEntry& entry,
                const BuiltCase* built) {
  fs::create_directories(dir);
  const fs::path base = fs::path(dir) / entry.name;
  {
    std::ofstream os(base.string() + ".fuzz");
    SCPG_REQUIRE(os.good(), "cannot write " + base.string() + ".fuzz");
    write_case(entry.fc, entry.exp, os);
  }
  if (!built) return;
  {
    std::ofstream os(base.string() + ".v");
    os << "// reproducer for fuzz case " << entry.fc.id << " (bug: "
       << bug_name(entry.fc.bug) << ", expect "
       << (entry.exp.clean ? std::string("clean")
                           : "detect " + std::string(oracle_name(
                                             entry.exp.detect)))
       << ")\n";
    write_verilog(*built->gated, os);
  }
  {
    std::ofstream os(base.string() + ".stim");
    os << "# cycle a b (hex); clock " << built->f.v << " Hz, duty "
       << entry.fc.duty << "\n"
       << std::hex;
    for (std::size_t i = 0; i < entry.fc.stim.size(); ++i)
      os << std::dec << i << std::hex << ' ' << entry.fc.stim[i][0] << ' '
         << entry.fc.stim[i][1] << "\n";
  }
}

int Coverage::add(const std::vector<std::string>& keys) {
  int fresh = 0;
  for (const std::string& k : keys) {
    auto [it, inserted] = hits_.try_emplace(k, 0);
    it->second += 1;
    fresh += inserted ? 1 : 0;
  }
  return fresh;
}

std::string Coverage::to_json() const {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object(json::Writer::Style::Compact);
  w.key("distinct").value(hits_.size());
  w.key("keys").begin_object();
  for (const auto& [k, n] : hits_) w.key(k).value(n);
  w.end_object();
  w.end_object();
  return os.str();
}

std::vector<std::string> coverage_keys(const CaseResult& r) {
  std::vector<std::string> keys = r.features;
  for (int i = 0; i < kNumOracles; ++i) {
    const auto& o = r.oracles[std::size_t(i)];
    const std::string name(oracle_name(Oracle(i)));
    if (o.ran) keys.push_back("oracle_ran:" + name);
    if (o.fired) keys.push_back("oracle_fired:" + name);
  }
  if (r.lint_errors > 0) keys.push_back("detected_by:lint");
  if (r.hazards > 0) keys.push_back("detected_by:monitor");
  if (!r.built) keys.push_back("build_failed");
  return keys;
}

} // namespace scpg::fuzz
