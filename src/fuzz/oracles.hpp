// The four differential oracles, run over one built case.
//
// run_case() drives a FuzzCase end to end: builds it, simulates the
// SCPG-transformed design with gating active (run A) and disabled via the
// override (run B), replays the pre-transform design on the zero-delay
// functional golden model, and evaluates
//
//   DiffSim      A == B == golden at every registered output, X-free
//   RailTiming   measured Fig 4 windows match the Eq. 1 closed forms
//   LintMonitor  lint findings, runtime hazards, X in the gated run
//   Metamorphic  half-frequency re-run reproduces A; average gated-domain
//                leakage power is monotone non-increasing in duty (at a
//                fixed low-phase width, so feasibility is held constant)
//
// An oracle "fires" when its invariant is violated.  For a clean case any
// firing is a mismatch (a real disagreement between two models that both
// claim to be right); for a bug case the injected bug's category oracle
// MUST fire — silence is a detection escape, also a mismatch.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fuzz/build.hpp"
#include "fuzz/case.hpp"
#include "sim/backend.hpp"
#include "tech/library.hpp"

namespace scpg::fuzz {

struct OracleOutcome {
  bool ran{false};
  bool fired{false};  ///< invariant violated / anomaly detected
  std::string detail; ///< first violation, human-readable
};

struct CaseResult {
  bool built{false};
  std::string build_error;

  std::array<OracleOutcome, kNumOracles> oracles{};
  std::size_t lint_errors{0};
  std::size_t hazards{0};
  bool x_in_gated{false}; ///< X at a registered output of run A

  bool mismatch{false}; ///< clean case fired / bug case escaped / no build
  std::string detail;   ///< why, when mismatch
  std::vector<std::string> features; ///< coverage keys (case_features)
};

[[nodiscard]] inline const OracleOutcome& outcome(const CaseResult& r,
                                                  Oracle o) {
  return r.oracles[static_cast<std::size_t>(o)];
}

/// Builds and runs one case through all four oracles.  Deterministic:
/// identical (lib, fc, backend) triples produce identical results.
///
/// `backend` arms the DiffSim oracle's backend-divergence check: the
/// gated design (override asserted) is replayed on the compiled levelized
/// kernel and every registered sample must match the event-driven run
/// bit for bit.  Event skips the check; Auto runs it and skips cases the
/// compiled kernel cannot model; Compiled makes an ineligible case a
/// mismatch.
[[nodiscard]] CaseResult run_case(const Library& lib, const FuzzCase& fc,
                                  sim::Backend backend = sim::Backend::Auto);

/// Replay check for corpus entries: a clean entry must fire nothing; a
/// bug entry's recorded oracle must fire.
[[nodiscard]] bool matches_expectation(const Expectation& exp,
                                       const CaseResult& r);

} // namespace scpg::fuzz
