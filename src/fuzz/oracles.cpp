#include "fuzz/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "lint/lint.hpp"
#include "netlist/funcsim.hpp"
#include "obs/obs.hpp"
#include "sim/compiled/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "verify/boundary.hpp"
#include "verify/monitors.hpp"

namespace scpg::fuzz {

namespace {

constexpr int kWarmup = 3; ///< pipeline depth 2 + one settled cycle

/// Relative tolerance for measured-vs-closed-form rail windows.  The
/// simulator integrates the same exponentials the closed forms solve, but
/// (a) it quantises events to 1 fs, and (b) its decay tau uses the
/// state-dependent gated leakage (leakage_in_state, spread +/-15% around
/// the state average the closed form uses), so the measured T_PGoff can
/// legitimately run up to 1/(1-0.15) ~ 1.18x the prediction.  0.20 covers
/// that while still catching the >= 3x SlowRail derate.
constexpr double kRailRelTol = 0.20;
constexpr double kRailAbsTolFs = 200.0;

/// Fig 4 windows of one gating cycle, as observed by the simulator.
struct PhaseRec {
  SimTime sleep{-1}, corrupt{-1}, wake{-1}, ready{-1};
  double v_sleep{-1.0}; ///< rail voltage at SleepStart
  double v_wake{-1.0};  ///< rail voltage at WakeStart
};

class PhaseRecorder : public SimObserver {
public:
  void on_domain_phase(SimTime t, DomainPhase phase, double rail_v) override {
    switch (phase) {
      case DomainPhase::SleepStart:
        recs.emplace_back();
        recs.back().sleep = t;
        recs.back().v_sleep = rail_v;
        break;
      case DomainPhase::Corrupt:
        if (!recs.empty() && recs.back().corrupt < 0) recs.back().corrupt = t;
        break;
      case DomainPhase::WakeStart:
        if (!recs.empty() && recs.back().wake < 0) {
          recs.back().wake = t;
          recs.back().v_wake = rail_v;
        }
        break;
      case DomainPhase::Ready:
        if (!recs.empty() && recs.back().ready < 0) recs.back().ready = t;
        break;
    }
  }
  std::vector<PhaseRec> recs;
};

struct RunOut {
  /// samples[k] = the output bus sampled at rising edge k, BEFORE the
  /// edge's own captures propagate — i.e. the value captured at edge k-1.
  std::vector<std::vector<Logic>> samples;
  PowerTally tally{};
  std::size_t hazards{0};
  std::string first_hazard;
  std::vector<PhaseRec> phases;
};

/// One event-driven run of the transformed design.  `T` is the period in
/// fs; the stimulus word for edge k is stim[k % stim.size()] (driven right
/// after edge k-1, so it is stable when edge k captures it).
RunOut run_gated(const Netlist& nl, const SimConfig& cfg, SimTime T,
                 double duty, int cycles,
                 const std::vector<std::array<std::uint64_t, 2>>& stim,
                 int in_width, Logic override_v, bool with_monitors,
                 SimTime settle) {
  verify::BoundaryMap map = verify::extract_boundary(nl);
  SCPG_REQUIRE(map.clk.valid(), "fuzz design lost its clock port");

  Simulator sim(nl, cfg);
  std::optional<verify::HazardMonitors> mon;
  if (with_monitors) {
    verify::MonitorConfig mc;
    mc.arm_after_cycles = kWarmup;
    mon.emplace(sim, map, mc);
    sim.attach_observer(&*mon);
  }
  PhaseRecorder rec;
  sim.attach_observer(&rec);
  sim.init_flops_to_zero();

  const PortId ov = nl.find_port("override_n");
  if (ov.valid()) sim.drive_at(0, nl.port(ov).net, override_v);

  // Explicit edge schedule (not add_clock): the run must end after a
  // known edge count, and the stimulus indexes edges.
  const auto high = SimTime(double(T) * duty + 0.5);
  // The first capture edge waits for the zero-time reset settle (else it
  // captures an in-flight X that the canary feedback would keep alive);
  // the clock runs with its nominal low phase from there on.
  const SimTime first_rise = std::max(T - high, settle);
  const int total = kWarmup + cycles;
  sim.drive_at(0, map.clk, Logic::L0);
  for (int k = 0; k <= total; ++k) {
    const SimTime rise = first_rise + SimTime(k) * T;
    sim.drive_at(rise, map.clk, Logic::L1);
    sim.drive_at(rise + high, map.clk, Logic::L0);
  }

  const auto word = [&](long k) { return stim[std::size_t(k) % stim.size()]; };
  sim.drive_bus_at(0, "a", word(0)[0], in_width);
  sim.drive_bus_at(0, "b", word(0)[1], in_width);

  std::vector<NetId> outs;
  for (const Port& p : nl.ports())
    if (p.dir == PortDir::Out) outs.push_back(p.net);

  RunOut out;
  long cyc = -1;
  sim.on_rising_edge(map.clk, [&] {
    ++cyc;
    std::vector<Logic> bits;
    bits.reserve(outs.size());
    for (const NetId n : outs) bits.push_back(sim.value(n));
    out.samples.push_back(std::move(bits));
    if (cyc == kWarmup) sim.reset_tally();
    const SimTime t = sim.now() + T / 16;
    sim.drive_bus_at(t, "a", word(cyc + 1)[0], in_width);
    sim.drive_bus_at(t, "b", word(cyc + 1)[1], in_width);
  });

  sim.run_until(first_rise + SimTime(total) * T + T / 4);
  out.tally = sim.tally();
  if (mon) {
    out.hazards = mon->log().total();
    if (!mon->log().reports().empty())
      out.first_hazard = verify::format_hazard(mon->log().reports().front());
  }
  out.phases = std::move(rec.recs);
  return out;
}

/// Golden reference: the pre-transform design on the zero-delay
/// functional simulator.  golden[j] = output bus after clock edge j,
/// which run_gated samples at edge j+1.
std::vector<std::vector<Logic>> run_golden(
    const Netlist& orig, int cycles,
    const std::vector<std::array<std::uint64_t, 2>>& stim, int in_width) {
  FuncSim fs(orig);
  fs.reset();
  fs.set_input("clk", Logic::L0);
  std::vector<std::string> outs;
  for (const Port& p : orig.ports())
    if (p.dir == PortDir::Out) outs.push_back(p.name);

  std::vector<std::vector<Logic>> golden;
  const int total = kWarmup + cycles;
  for (int j = 0; j < total; ++j) {
    const auto& w = stim[std::size_t(j) % stim.size()];
    fs.set_input_bus("a", w[0], in_width);
    fs.set_input_bus("b", w[1], in_width);
    fs.eval();
    fs.clock();
    std::vector<Logic> bits;
    bits.reserve(outs.size());
    for (const auto& p : outs) bits.push_back(fs.output(p));
    golden.push_back(std::move(bits));
  }
  return golden;
}

/// Backend-divergence reference: the gated (bug-applied) design with the
/// override asserted, replayed on the compiled levelized kernel.  Same
/// zero-delay convention as run_golden — got[j] is the output bus after
/// clock edge j, which run_gated's run B samples at edge j+1.  nullopt
/// (with `error` filled) when the compiled kernel cannot model the case.
std::optional<std::vector<std::vector<Logic>>> run_compiled(
    const Netlist& gated, int cycles,
    const std::vector<std::array<std::uint64_t, 2>>& stim, int in_width,
    std::string* error) {
  std::vector<std::string> outs;
  for (const Port& p : gated.ports())
    if (p.dir == PortDir::Out) outs.push_back(p.name);
  try {
    sim::compiled::CompiledSim cs(gated);
    cs.set_input("clk", Logic::L0);
    if (gated.find_port("override_n").valid())
      cs.set_input("override_n", Logic::L0);
    std::vector<std::vector<Logic>> got;
    const int total = kWarmup + cycles;
    got.reserve(std::size_t(total));
    for (int j = 0; j < total; ++j) {
      const auto& w = stim[std::size_t(j) % stim.size()];
      cs.set_input_bus("a", w[0], in_width);
      cs.set_input_bus("b", w[1], in_width);
      cs.eval();
      cs.clock();
      std::vector<Logic> bits;
      bits.reserve(outs.size());
      for (const auto& p : outs) bits.push_back(cs.output(p));
      got.push_back(std::move(bits));
    }
    return got;
  } catch (const Error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::string bits_str(const std::vector<Logic>& v) {
  std::string s;
  for (auto it = v.rbegin(); it != v.rend(); ++it) s += logic_char(*it);
  return s;
}

bool any_x(const std::vector<Logic>& v) {
  return std::any_of(v.begin(), v.end(),
                     [](Logic l) { return !is_known(l); });
}

/// |measured - predicted| within tolerance, both in fs.
bool window_ok(double measured, double predicted) {
  return std::abs(measured - predicted) <=
         kRailRelTol * std::abs(predicted) + kRailAbsTolFs;
}

/// Average gated-domain leakage power over the measured window (the
/// duty-monotonicity metric; headers/overheads are excluded so the metric
/// isolates the rail-scaled cloud leakage Eq. 1 reasons about).
double gated_leak_power(const PowerTally& t) {
  return t.window.v > 0 ? t.leakage_gated.v / t.window.v : 0.0;
}

} // namespace

CaseResult run_case(const Library& lib, const FuzzCase& fc,
                    sim::Backend backend) {
  CaseResult r;
  BuiltCase bc;
  // One span per phase (build / reference sims / each oracle) so a traced
  // fuzz run shows where oracle time goes; span.reset() closes a phase.
  std::optional<obs::Scope> span;
  span.emplace("fuzz.build", "fuzz");
  try {
    bc = build_case(lib, fc);
    r.built = true;
  } catch (const Error& e) {
    r.build_error = e.what();
    r.mismatch = true;
    r.detail = std::string("case failed to build: ") + e.what();
    return r;
  }
  span.reset();
  r.features = case_features(fc, bc);

  const SimTime T = to_fs(period(bc.f));
  const int total = kWarmup + fc.cycles;
  const int w = fc.design.width;

  span.emplace("fuzz.sim", "fuzz");
  const RunOut A = run_gated(*bc.gated, bc.cfg_sim, T, fc.duty, fc.cycles,
                             fc.stim, w, Logic::L1, true, bc.settle_fs);
  const RunOut B = run_gated(*bc.gated, bc.cfg_sim, T, fc.duty, fc.cycles,
                             fc.stim, w, Logic::L0, false, bc.settle_fs);
  const auto golden = run_golden(*bc.original, fc.cycles, fc.stim, w);
  span.reset();

  // --- oracle 1: SCPG vs no-PG vs golden, bit-identical -------------------
  span.emplace("fuzz.oracle.diff_sim", "fuzz");
  auto& o1 = r.oracles[std::size_t(Oracle::DiffSim)];
  o1.ran = true;
  for (int k = kWarmup + 1; k <= total && !o1.fired; ++k) {
    const auto& a = A.samples[std::size_t(k)];
    const auto& b = B.samples[std::size_t(k)];
    const auto& g = golden[std::size_t(k - 1)];
    std::ostringstream os;
    if (any_x(a)) {
      os << "edge " << k << ": X at registered output of the gated run ("
         << bits_str(a) << ")";
    } else if (a != b) {
      os << "edge " << k << ": gated " << bits_str(a) << " != no-PG "
         << bits_str(b);
    } else if (b != g) {
      os << "edge " << k << ": event-sim " << bits_str(b)
         << " != functional golden " << bits_str(g);
    } else {
      continue;
    }
    o1.fired = true;
    o1.detail = os.str();
    r.x_in_gated = r.x_in_gated || any_x(a);
  }

  // Backend-divergence arm: the same design, the same stimulus words, on
  // the compiled levelized kernel — any sampled difference against the
  // event-driven run is a simulation-kernel bug, not a design bug.
  if (backend != sim::Backend::Event && !o1.fired) {
    std::string err;
    const auto C = run_compiled(*bc.gated, fc.cycles, fc.stim, w, &err);
    if (!C) {
      SCPG_OBS_COUNT("fuzz.oracle.diff_sim.compiled_skipped", 1);
      if (backend == sim::Backend::Compiled) {
        o1.fired = true;
        o1.detail = "compiled backend cannot replay this case: " + err;
      }
    } else {
      SCPG_OBS_COUNT("fuzz.oracle.diff_sim.compiled_checked", 1);
      for (int k = kWarmup + 1; k <= total && !o1.fired; ++k) {
        const auto& b = B.samples[std::size_t(k)];
        const auto& c = (*C)[std::size_t(k - 1)];
        if (b == c) continue;
        o1.fired = true;
        std::ostringstream os;
        os << "edge " << k << ": compiled backend " << bits_str(c)
           << " != event backend " << bits_str(b);
        o1.detail = os.str();
      }
    }
  }
  span.reset();

  // --- oracle 2: Fig 4 windows vs Eq. 1 / rail closed forms ---------------
  span.emplace("fuzz.oracle.rail_timing", "fuzz");
  auto& o2 = r.oracles[std::size_t(Oracle::RailTiming)];
  o2.ran = true;
  const double v_corrupt = bc.rail.corrupt_frac * bc.rail.vdd.v;
  const SimTime arm =
      std::max(T - SimTime(double(T) * fc.duty + 0.5), bc.settle_fs) +
      SimTime(kWarmup) * T;
  // The final gating cycle is truncated by the end of simulation (the run
  // stops T/4 after the last capture edge, possibly mid-recharge), so
  // only cycles with a successor are judged.  `collapsed` carries
  // corruption across cycles: a rail that never recovers emits exactly
  // one Corrupt, but every later cycle without a Ready is still a
  // never-ready violation.
  bool collapsed = false;
  for (std::size_t pi = 0; pi + 1 < A.phases.size(); ++pi) {
    const PhaseRec& p = A.phases[pi];
    const bool was_corrupt = collapsed || p.corrupt >= 0;
    collapsed = was_corrupt && p.ready < 0;
    if (o2.fired) continue;
    if (p.sleep < arm) continue; // warmup
    std::ostringstream os;
    // T_PGoff from the actual sleep-start voltage (the rail may not have
    // fully recharged when the previous cycle never corrupted):
    // t = tau_d * ln(V0 / V_corrupt), the closed form behind t_corrupt().
    const double corrupt_fs =
        p.v_sleep > v_corrupt
            ? to_fs(Time{bc.rail.tau_decay().v *
                         std::log(p.v_sleep / v_corrupt)})
            : 0.0;
    if (p.corrupt >= 0 && !window_ok(double(p.corrupt - p.sleep), corrupt_fs)) {
      os << "T_PGoff measured " << double(p.corrupt - p.sleep)
         << " fs vs closed form " << corrupt_fs << " fs";
    } else if (was_corrupt && p.wake >= 0 && p.ready < 0) {
      // A cycle whose rail never collapsed past corrupt_frac legitimately
      // has no Ready; a collapsed one that never recovers is a violation.
      os << "rail never reached ready after wake at " << double(p.wake)
         << " fs";
    } else if (was_corrupt && p.wake >= 0 && p.ready >= 0) {
      const double pred =
          to_fs(bc.rail.t_ready_from(Voltage{std::max(0.0, p.v_wake)}));
      if (!window_ok(double(p.ready - p.wake), pred))
        os << "T_PGStart measured " << double(p.ready - p.wake)
           << " fs vs closed form " << pred << " fs (v0 = " << p.v_wake
           << " V)";
    }
    if (!os.str().empty()) {
      o2.fired = true;
      o2.detail = os.str();
    }
  }
  span.reset();

  // --- oracle 3: lint + runtime monitors + X-freedom ----------------------
  span.emplace("fuzz.oracle.lint_monitor", "fuzz");
  auto& o3 = r.oracles[std::size_t(Oracle::LintMonitor)];
  o3.ran = true;
  lint::LintOptions lo;
  lo.freq = bc.f;
  lo.duty_high = fc.duty;
  lo.sim = bc.cfg_sim;
  const lint::LintReport rep = lint::run_lint(*bc.gated, lo);
  r.lint_errors = rep.errors();
  r.hazards = A.hazards;
  for (int k = kWarmup + 1; k <= total && !r.x_in_gated; ++k)
    r.x_in_gated = any_x(A.samples[std::size_t(k)]);
  if (r.lint_errors > 0) {
    o3.fired = true;
    o3.detail = "lint: " + std::to_string(r.lint_errors) + " error(s), e.g. " +
                (rep.findings().empty()
                     ? std::string("?")
                     : std::string(rep.findings().front().rule) + " " +
                           rep.findings().front().message);
  } else if (r.hazards > 0) {
    o3.fired = true;
    o3.detail = "monitors: " + std::to_string(r.hazards) +
                " hazard(s), first: " + A.first_hazard;
  } else if (r.x_in_gated) {
    o3.fired = true;
    o3.detail = "lint-clean design produced X at a registered output";
  }
  span.reset();

  // --- oracle 4: metamorphic --------------------------------------------
  span.emplace("fuzz.oracle.metamorphic", "fuzz");
  auto& o4 = r.oracles[std::size_t(Oracle::Metamorphic)];
  o4.ran = true;
  // (a) frequency-scaling invariance: halving f doubles every phase of
  // the schedule; captured results must be identical.
  const RunOut Ah = run_gated(*bc.gated, bc.cfg_sim, 2 * T, fc.duty,
                              fc.cycles, fc.stim, w, Logic::L1, false,
                              bc.settle_fs);
  for (int k = kWarmup + 1; k <= total && !o4.fired; ++k) {
    if (A.samples[std::size_t(k)] != Ah.samples[std::size_t(k)]) {
      o4.fired = true;
      std::ostringstream os;
      os << "edge " << k << ": results not frequency-invariant: f -> "
         << bits_str(A.samples[std::size_t(k)]) << ", f/2 -> "
         << bits_str(Ah.samples[std::size_t(k)]);
      o4.detail = os.str();
    }
  }
  // (b) duty monotonicity: with the low phase held fixed (feasibility
  // unchanged), a longer gated (high) fraction must not increase the
  // average gated-domain leakage power.
  if (!o4.fired) {
    const SimTime t_low = T - SimTime(double(T) * fc.duty + 0.5);
    const double d_lo = std::max(0.25, fc.duty - 0.15);
    const double d_hi = std::min(0.85, fc.duty + 0.15);
    const auto run_at = [&](double d) {
      const auto Td = SimTime(double(t_low) / (1.0 - d) + 0.5);
      return gated_leak_power(run_gated(*bc.gated, bc.cfg_sim, Td, d,
                                        fc.cycles, fc.stim, w, Logic::L1,
                                        false, bc.settle_fs)
                                  .tally);
    };
    const double p_lo = run_at(d_lo);
    const double p_mid = gated_leak_power(A.tally);
    const double p_hi = run_at(d_hi);
    const double tol = 0.01 * std::max({p_lo, p_mid, p_hi, 1e-30});
    if (p_lo + tol < p_mid || p_mid + tol < p_hi) {
      o4.fired = true;
      std::ostringstream os;
      os << "gated leakage power not monotone in duty: P(" << d_lo
         << ") = " << p_lo << " W, P(" << fc.duty << ") = " << p_mid
         << " W, P(" << d_hi << ") = " << p_hi << " W";
      o4.detail = os.str();
    }
  }
  span.reset();

  // --- verdict ------------------------------------------------------------
  if (fc.bug == BugKind::None) {
    for (const auto& o : r.oracles) {
      if (o.fired) {
        r.mismatch = true;
        r.detail = "clean case fired " +
                   std::string(oracle_name(Oracle(&o - r.oracles.data()))) +
                   ": " + o.detail;
        break;
      }
    }
  } else {
    const Oracle cat = bug_oracle(fc.bug);
    if (!outcome(r, cat).fired) {
      r.mismatch = true;
      r.detail = std::string("injected ") + std::string(bug_name(fc.bug)) +
                 " escaped its oracle (" + std::string(oracle_name(cat)) +
                 " stayed silent)";
    }
  }
  return r;
}

bool matches_expectation(const Expectation& exp, const CaseResult& r) {
  if (!r.built) return false;
  if (exp.clean) return !r.mismatch;
  return outcome(r, exp.detect).fired;
}

} // namespace scpg::fuzz
