// The coverage-guided fuzzing driver behind `scpgc fuzz`.
//
// run_fuzz() draws cases in fixed-size batches: each batch is generated
// sequentially from per-slot Rng streams (Rng::stream keyed on the batch
// and slot indices), fanned out through scpg::parallel_map, then merged
// back IN SLOT ORDER — so a run is bit-identical at any --jobs.  Cases
// whose features hit coverage keys not seen before join the live corpus
// and become mutation bases for later batches; mismatches are delta-debug
// minimized (minimize.hpp) and written as standalone reproducers.
//
// With `inject` set, every case carries that bug class and the run's goal
// flips from searching for mismatches to producing one minimized DETECTED
// reproducer for the class's oracle category (repro_<bug>.fuzz/.v/.stim),
// which is how the committed corpus entries under tests/corpus/ are made.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "sim/backend.hpp"

namespace scpg::fuzz {

struct FuzzOptions {
  std::uint64_t seed{1};
  int runs{200};           ///< total cases; 0 = until the time budget
  double time_budget_s{0}; ///< wall-clock cap; 0 = none (runs governs)
  int jobs{0};             ///< parallel_map semantics (<= 0: default_jobs)
  bool minimize{true};
  std::string corpus_dir;   ///< seeds in, reproducers out ("" = neither)
  std::string coverage_out; ///< fuzz_coverage.json path ("" = don't write)
  std::optional<BugKind> inject; ///< force every case to this bug class
  /// Backend-divergence arm of the DiffSim oracle (see run_case).
  sim::Backend backend{sim::Backend::Auto};
};

struct FuzzStats {
  int cases{0};
  int clean_cases{0};
  int bug_cases{0};
  int detected{0};   ///< bug cases whose category oracle fired
  int mismatches{0}; ///< clean-case firings + bug-case escapes
  int minimized{0};
  Coverage coverage;
  std::vector<std::string> mismatch_details; ///< one line each (capped)
  std::vector<std::string> saved;            ///< reproducer file stems
  /// The minimized detected reproducer when `inject` was set.
  std::optional<CorpusEntry> injected_repro;
};

/// Runs the campaign.  `progress` (optional) receives one line per batch.
[[nodiscard]] FuzzStats run_fuzz(
    const Library& lib, const FuzzOptions& opt,
    const std::function<void(const std::string&)>& progress = {});

} // namespace scpg::fuzz
