#include "fuzz/case.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace scpg::fuzz {

namespace {

constexpr std::string_view kCompNames[kNumComps] = {
    "ripple_add", "carry_select", "subtract",    "increment",
    "compare_mux", "xor_blend",   "mux_tree",    "shift_left",
    "shift_right", "decoder_mix", "mult_array",
};

constexpr std::string_view kBugNames[kNumBugKinds] = {
    "none",          "no_isolation",    "drop_clamp",    "stuck_isolation",
    "header_polarity", "slow_rail",     "fast_clock",    "output_invert",
};

constexpr std::string_view kOracleNames[kNumOracles] = {
    "diff_sim", "rail_timing", "lint_monitor", "metamorphic",
};

} // namespace

std::string_view comp_name(Comp c) {
  return kCompNames[static_cast<std::size_t>(c)];
}

std::optional<Comp> comp_from_name(std::string_view name) {
  for (int i = 0; i < kNumComps; ++i)
    if (kCompNames[i] == name) return Comp(i);
  return std::nullopt;
}

std::string_view bug_name(BugKind b) {
  return kBugNames[static_cast<std::size_t>(b)];
}

std::optional<BugKind> bug_from_name(std::string_view name) {
  for (int i = 0; i < kNumBugKinds; ++i)
    if (kBugNames[i] == name) return BugKind(i);
  return std::nullopt;
}

std::string_view oracle_name(Oracle o) {
  return kOracleNames[static_cast<std::size_t>(o)];
}

std::optional<Oracle> oracle_from_name(std::string_view name) {
  for (int i = 0; i < kNumOracles; ++i)
    if (kOracleNames[i] == name) return Oracle(i);
  return std::nullopt;
}

Oracle bug_oracle(BugKind b) {
  switch (b) {
    case BugKind::OutputInvert: return Oracle::DiffSim;
    case BugKind::SlowRail: return Oracle::RailTiming;
    case BugKind::NoIsolation:
    case BugKind::DropClamp:
    case BugKind::StuckIsolation:
    case BugKind::HeaderPolarity: return Oracle::LintMonitor;
    case BugKind::FastClock: return Oracle::Metamorphic;
    case BugKind::None: break;
  }
  SCPG_REQUIRE(false, "bug_oracle: case has no injected bug");
  return Oracle::DiffSim; // unreachable
}

// --- generation -------------------------------------------------------------

namespace {

/// Regenerates the stimulus to `cycles` fresh random operand pairs.
void fill_stim(FuzzCase& fc, Rng& rng) {
  // Operands up to the widest bus a MultArray can demand (2 * width),
  // masked down by the builder; wide words also cover sign/carry corners.
  fc.stim.assign(std::size_t(fc.cycles) + 2, {});
  for (auto& s : fc.stim) {
    s[0] = rng.bits(2 * fc.design.width);
    s[1] = rng.bits(2 * fc.design.width);
  }
}

[[nodiscard]] Comp random_comp(Rng& rng) {
  return Comp(rng.below(kNumComps));
}

[[nodiscard]] BugKind random_bug(Rng& rng) {
  // None dominates so clean paths stay the bulk of the search; each bug
  // class keeps a steady share so every oracle's detection loop is
  // exercised in any reasonably sized run.
  if (!rng.chance(0.35)) return BugKind::None;
  return BugKind(1 + rng.below(kNumBugKinds - 1));
}

void sanitize(FuzzCase& fc) {
  DesignSpec& d = fc.design;
  d.width = std::clamp(d.width, 2, 6);
  if (d.blocks.empty()) d.blocks.push_back(Comp::XorBlend);
  if (d.blocks.size() > 4) d.blocks.resize(4);
  // At most one array multiplier, and only on narrow operands: its area
  // is quadratic and a second one squares the output width again.
  int mults = 0;
  for (Comp& c : d.blocks)
    if (c == Comp::MultArray && (++mults > 1 || d.width > 4))
      c = Comp::CarrySelect;
  d.header_count = std::clamp(d.header_count, 2, 6);
  // Library header cells exist at power-of-two drives only.
  d.header_drive = std::clamp(d.header_drive, 1, 4);
  while (d.header_drive & (d.header_drive - 1)) --d.header_drive;
  fc.duty = std::clamp(fc.duty, 0.3, 0.7);
  fc.cycles = std::clamp(fc.cycles, 6, 24);
  fc.period_slack = std::clamp(fc.period_slack, 0.4, 4.0);
  if (fc.bug == BugKind::FastClock) {
    // Period = 75% of T_eval alone: the critical path (the canary
    // buffer chain, sized to 2x the data paths by construction) cannot
    // settle within one period, but does within two — so the
    // half-frequency metamorphic run differs (see build_case and the
    // canary in build_design).
    fc.period_slack = 0.75;
  } else if (fc.period_slack < 1.15) {
    fc.period_slack = 1.15; // comfortably feasible for every clean case
  }
}

} // namespace

FuzzCase random_case(std::uint64_t id, Rng& rng, bool allow_bugs) {
  FuzzCase fc;
  fc.id = id;
  DesignSpec& d = fc.design;
  d.width = 2 + int(rng.below(5));
  const int nblocks = 1 + int(rng.below(4));
  for (int i = 0; i < nblocks; ++i) d.blocks.push_back(random_comp(rng));
  d.wiring = rng.next();
  d.header_count = 2 + int(rng.below(5));
  d.header_drive = 1 << rng.below(3);
  d.clamp_high = rng.chance(0.3);
  d.boundary_buffers = rng.chance(0.7);
  fc.bug = allow_bugs ? random_bug(rng) : BugKind::None;
  fc.period_slack = 1.15 + 1.5 * rng.uniform();
  fc.duty = 0.35 + 0.3 * rng.uniform();
  fc.cycles = 8 + int(rng.below(9));
  sanitize(fc);
  fill_stim(fc, rng);
  return fc;
}

FuzzCase mutate_case(const FuzzCase& base, std::uint64_t id, Rng& rng,
                     bool allow_bugs) {
  FuzzCase fc = base;
  fc.id = id;
  DesignSpec& d = fc.design;
  switch (rng.below(8)) {
    case 0: // insert a block
      d.blocks.insert(d.blocks.begin() + long(rng.below(d.blocks.size() + 1)),
                      random_comp(rng));
      break;
    case 1: // remove a block
      if (d.blocks.size() > 1)
        d.blocks.erase(d.blocks.begin() + long(rng.below(d.blocks.size())));
      break;
    case 2: // replace a block
      d.blocks[rng.below(d.blocks.size())] = random_comp(rng);
      break;
    case 3: // resize the cloud's operand width
      d.width += rng.chance(0.5) ? 1 : -1;
      break;
    case 4: // rewire: fresh operand-selection stream
      d.wiring = rng.next();
      break;
    case 5: // power fabric: headers / clamp polarity / buffers
      d.header_count = 2 + int(rng.below(5));
      d.header_drive = 1 << rng.below(3);
      d.clamp_high = rng.chance(0.5);
      d.boundary_buffers = rng.chance(0.5);
      break;
    case 6: // operating point
      fc.period_slack = 1.15 + 1.5 * rng.uniform();
      fc.duty = 0.35 + 0.3 * rng.uniform();
      break;
    default: // bug class
      fc.bug = allow_bugs ? random_bug(rng) : BugKind::None;
      break;
  }
  sanitize(fc);
  fill_stim(fc, rng);
  return fc;
}

void force_bug(FuzzCase& fc, BugKind bug) {
  fc.bug = bug;
  if (bug != BugKind::FastClock && fc.period_slack < 1.15)
    fc.period_slack = 1.5; // undo a previous FastClock compression
  sanitize(fc);
}

// --- serialization ----------------------------------------------------------

void write_case(const FuzzCase& fc, const Expectation& exp,
                std::ostream& os) {
  os << "scpg-fuzz-case v1\n";
  os << "id " << fc.id << "\n";
  os << "width " << fc.design.width << "\n";
  os << "blocks";
  for (const Comp c : fc.design.blocks) os << ' ' << comp_name(c);
  os << "\n";
  os << "wiring " << fc.design.wiring << "\n";
  os << "headers " << fc.design.header_count << "x"
     << fc.design.header_drive << "\n";
  os << "clamp " << (fc.design.clamp_high ? "high" : "low") << "\n";
  os << "buffers " << (fc.design.boundary_buffers ? 1 : 0) << "\n";
  os << "bug " << bug_name(fc.bug) << "\n";
  os << "slack " << fc.period_slack << "\n";
  os << "duty " << fc.duty << "\n";
  os << "cycles " << fc.cycles << "\n";
  os << std::hex;
  for (const auto& s : fc.stim) os << "stim " << s[0] << ' ' << s[1] << "\n";
  os << std::dec;
  if (exp.clean) os << "expect clean\n";
  else os << "expect detect " << oracle_name(exp.detect) << "\n";
}

std::pair<FuzzCase, Expectation> read_case(std::istream& is,
                                           const std::string& source) {
  FuzzCase fc;
  fc.stim.clear();
  Expectation exp;
  int lineno = 0;
  std::string line;
  const auto fail = [&](const std::string& what) {
    throw ParseError(what, source, lineno);
  };

  if (!std::getline(is, line) || line != "scpg-fuzz-case v1") {
    lineno = 1;
    fail("expected header 'scpg-fuzz-case v1'");
  }
  lineno = 1;
  bool have_expect = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    const auto need = [&](auto& v, const char* what) {
      if (!(ls >> v)) fail(std::string("malformed ") + what + " line");
    };
    if (key == "id") need(fc.id, "id");
    else if (key == "width") need(fc.design.width, "width");
    else if (key == "blocks") {
      fc.design.blocks.clear();
      std::string name;
      while (ls >> name) {
        const auto c = comp_from_name(name);
        if (!c) fail("unknown block '" + name + "'");
        fc.design.blocks.push_back(*c);
      }
      if (fc.design.blocks.empty()) fail("blocks line names no blocks");
    } else if (key == "wiring") need(fc.design.wiring, "wiring");
    else if (key == "headers") {
      std::string v;
      need(v, "headers");
      const auto x = v.find('x');
      if (x == std::string::npos) fail("headers must be COUNTxDRIVE");
      try {
        fc.design.header_count = std::stoi(v.substr(0, x));
        fc.design.header_drive = std::stoi(v.substr(x + 1));
      } catch (const std::logic_error&) {
        fail("headers must be COUNTxDRIVE");
      }
    } else if (key == "clamp") {
      std::string v;
      need(v, "clamp");
      if (v != "high" && v != "low") fail("clamp must be high or low");
      fc.design.clamp_high = v == "high";
    } else if (key == "buffers") {
      int v = 0;
      need(v, "buffers");
      fc.design.boundary_buffers = v != 0;
    } else if (key == "bug") {
      std::string v;
      need(v, "bug");
      const auto b = bug_from_name(v);
      if (!b) fail("unknown bug '" + v + "'");
      fc.bug = *b;
    } else if (key == "slack") need(fc.period_slack, "slack");
    else if (key == "duty") need(fc.duty, "duty");
    else if (key == "cycles") need(fc.cycles, "cycles");
    else if (key == "stim") {
      std::array<std::uint64_t, 2> s{};
      ls >> std::hex;
      if (!(ls >> s[0] >> s[1])) fail("malformed stim line");
      fc.stim.push_back(s);
    } else if (key == "expect") {
      std::string v;
      need(v, "expect");
      if (v == "clean") exp.clean = true;
      else if (v == "detect") {
        std::string o;
        need(o, "expect detect");
        const auto oracle = oracle_from_name(o);
        if (!oracle) fail("unknown oracle '" + o + "'");
        exp.clean = false;
        exp.detect = *oracle;
      } else fail("expect must be 'clean' or 'detect ORACLE'");
      have_expect = true;
    } else fail("unknown key '" + key + "'");
  }
  if (!have_expect) fail("missing expect line");
  // The harness indexes stimulus modulo its length, so a minimized case
  // may carry fewer words than cycles — but never none.
  if (fc.stim.empty()) fail("case has no stim lines");
  SCPG_REQUIRE(fc.design.width >= 2 && fc.design.width <= 6,
               source + ": width out of range");
  const int hd = fc.design.header_drive;
  SCPG_REQUIRE((hd == 1 || hd == 2 || hd == 4 || hd == 8) &&
                   fc.design.header_count >= 1 &&
                   fc.design.header_count <= 16,
               source + ": header bank out of range");
  return {std::move(fc), exp};
}

} // namespace scpg::fuzz
