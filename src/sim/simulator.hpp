// Event-driven gate-level simulator with power accounting and a
// first-order virtual-rail model for sub-clock power gating.
//
// This is the reproduction's substitute for the paper's HSpice runs
// (DESIGN.md §2).  It simulates 4-state logic with per-cell load-dependent
// delays and attributes every joule to a PowerTally bucket:
//
//  * switching/internal energy on known 0<->1 transitions;
//  * state-dependent leakage, integrated in closed form between events;
//  * the gated domain's leakage scaled by (V_rail/Vdd)^2 while the rail
//    decays exponentially (tau = C_dom * Vdd^2 / P_leak_domain);
//  * SCPG overheads on every gating cycle: the resistive rail-restore
//    loss 1/2 C_dom (Vdd - V0)^2 (the off-phase leakage bucket already
//    covers the charge the rail lost), crowbar rush proportional to
//    domain size and collapse depth, and header gate-cap switching.
//
// Power-gating semantics: a Header cell's SLEEP input high starts the rail
// decay; when the rail falls below `rail_corrupt_frac * Vdd` the domain's
// outputs corrupt to X (values are saved); SLEEP low recharges through the
// header's Ron, and at `rail_ready_frac * Vdd` the saved values are
// restored and every gated cell re-evaluates — reproducing the
// T_hold / T_PGoff / T_PGStart / T_eval phases of the paper's Fig 4.
// A TIEHI cell inside the gated domain tracks the rail (1 when up, 0 when
// collapsed), which is exactly the rail sense the paper's isolation
// controller (Fig 3) uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/activity.hpp"
#include "sim/tally.hpp"
#include "sim/vcd.hpp"

namespace scpg {

/// Simulation timestamps in femtoseconds.
using SimTime = std::int64_t;

[[nodiscard]] constexpr SimTime to_fs(Time t) {
  return SimTime(t.v * 1e15 + (t.v >= 0 ? 0.5 : -0.5));
}
[[nodiscard]] constexpr Time from_fs(SimTime t) { return Time{double(t) * 1e-15}; }

struct SimConfig {
  Corner corner{Voltage{0.6}, 25.0};

  /// Rail fraction below which gated logic corrupts (drives X).
  double rail_corrupt_frac{0.7};
  /// Rail fraction above which gated logic is functional again.
  double rail_ready_frac{0.95};
  /// Crowbar (rush-through) energy per gated cell per full-depth power-up,
  /// characterised at the nominal corner; scaled by CV^2 and by the actual
  /// collapse depth dV/Vdd.
  Energy crowbar_per_cell{0.45e-15};
  /// Fault-injection knob: multiplier on the effective header on-resistance
  /// (models a degraded sleep transistor — cold/hot corner Vt shift, aged
  /// or under-sized header).  1.0 is nominal; larger values slow the rail
  /// restore proportionally.  Used by scpg_verify's SlowRailRestore fault.
  double header_ron_derate{1.0};

  /// Multiplier on the summed gated-domain node capacitance: the fraction
  /// that actually hangs on the virtual rail (diffusion, well and local
  /// wiring; fanout gate caps are referenced to ground and do not
  /// discharge with the rail).  Calibrated so the multiplier's SCPG
  /// convergence point lands near the paper's ~15 MHz.
  double rail_cap_factor{0.5};

  /// Leakage multiplier for always-on cells with a floating/unknown input
  /// (an unclamped input from a collapsed domain sits mid-rail and turns
  /// both stacks partially on).  This is the electrical cost isolation
  /// cells exist to prevent; isolation cells themselves are exempt (they
  /// are built to tolerate a collapsed input).
  double x_input_leak_penalty{6.0};
};

/// Phase transitions of the gated domain's virtual rail, in the order the
/// paper's Fig 4 timing diagram names them.
enum class DomainPhase : std::uint8_t {
  SleepStart, ///< header SLEEP asserted; rail decay begins (end of T_hold)
  Corrupt,    ///< rail crossed the corrupt threshold; outputs go X (T_PGoff)
  WakeStart,  ///< SLEEP released; recharge through the header (T_PGStart)
  Ready,      ///< rail recovered; values restored and the domain re-evaluates
};

[[nodiscard]] std::string_view domain_phase_name(DomainPhase p);

/// Passive observation interface for runtime verification (src/verify).
/// Callbacks run synchronously inside the event loop at the instant the
/// observed effect commits; observers must not mutate the simulation.
class SimObserver {
public:
  virtual ~SimObserver() = default;

  /// `net` committed a change from `oldv` to `newv` at time `t`.
  virtual void on_net_change(SimTime t, NetId net, Logic oldv, Logic newv) {
    (void)t, (void)net, (void)oldv, (void)newv;
  }

  /// The gated domain crossed a rail phase; `rail_v` is the virtual-rail
  /// voltage at that instant.
  virtual void on_domain_phase(SimTime t, DomainPhase phase, double rail_v) {
    (void)t, (void)phase, (void)rail_v;
  }

  /// A flip-flop legitimately scheduled its output (posedge sample, or
  /// async reset when `async_reset` is true): `value` lands on the Q net
  /// at `due`.  Forced changes (Simulator::force_net) deliberately do NOT
  /// report here, so an observer can tell legitimate state updates from
  /// injected upsets.
  virtual void on_flop_drive(SimTime t, CellId flop, Logic value, SimTime due,
                             bool async_reset) {
    (void)t, (void)flop, (void)value, (void)due, (void)async_reset;
  }
};

class Simulator {
public:
  Simulator(const Netlist& nl, SimConfig cfg);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] const Netlist& netlist() const { return *nl_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }

  // --- stimulus -------------------------------------------------------------

  /// Schedules a primary-input change at absolute time `t` (>= now).
  void drive_at(SimTime t, NetId net, Logic v);

  /// Drives bus bits "name[0..width-1]" at time t.
  void drive_bus_at(SimTime t, std::string_view name, std::uint64_t value,
                    int width);

  /// Free-running clock on an input net: rises at `first_rise`, stays high
  /// `duty_high` of the period.  The paper's SCPG-Max raises duty_high.
  void add_clock(NetId net, Frequency f, double duty_high,
                 SimTime first_rise);

  /// Schedules a callback (runs before net events at the same timestamp
  /// are guaranteed only w.r.t. later-scheduled events; use for stimulus).
  void call_at(SimTime t, std::function<void()> fn);

  /// Registers a callback on every rising edge of `net` (e.g. per-cycle
  /// stimulus or cycle counting).
  void on_rising_edge(NetId net, std::function<void()> fn);

  /// Presets every flip-flop output to 0 (time-0 initialisation).
  void init_flops_to_zero();

  /// Fault-injection hook: overrides the value of ANY net at now(),
  /// bypassing the driven-by-port check of drive_at().  The driving cell's
  /// next evaluation reasserts the functional value — exactly the
  /// semantics of a particle-strike upset on a state node (the flip sticks
  /// on a flop output until the next sample).  Not reported through
  /// SimObserver::on_flop_drive, so hazard monitors see it as spurious.
  void force_net(NetId net, Logic v);

  // --- execution ------------------------------------------------------------

  void run_until(SimTime t);
  [[nodiscard]] SimTime now() const { return now_; }

  // --- observation -----------------------------------------------------------

  [[nodiscard]] Logic value(NetId net) const { return values_[net.v]; }
  [[nodiscard]] Logic output(std::string_view port) const;
  [[nodiscard]] std::uint64_t read_bus(std::string_view name,
                                       int width) const;

  /// Power tally, integrated up to now().
  [[nodiscard]] const PowerTally& tally();

  /// Restarts accounting at now() (call after warm-up).
  void reset_tally();

  /// True if the netlist contains a gated domain (header + gated cells).
  [[nodiscard]] bool has_gated_domain() const { return domain_ != nullptr; }

  /// Virtual rail voltage at now().
  [[nodiscard]] Voltage rail_voltage() const;

  /// True while the gated domain's outputs are corrupted (the rail fell
  /// below rail_corrupt_frac and has not yet recovered to rail_ready_frac).
  [[nodiscard]] bool rail_corrupted() const;

  [[nodiscard]] MacroModel* macro_model(CellId cell);

  // --- instrumentation --------------------------------------------------------

  /// Writer must outlive the simulator; begin() is called by the simulator
  /// (declare extra real signals before attaching).  The virtual rail is
  /// recorded as real signal handle `rail_handle` if provided.
  void attach_vcd(VcdWriter* vcd, std::size_t rail_handle = std::size_t(-1));
  void attach_activity(ActivityRecorder* rec) { activity_ = rec; }

  /// Registers a passive observer (hazard monitors, coverage collectors).
  /// The observer must outlive the simulator; multiple observers fire in
  /// attachment order.
  void attach_observer(SimObserver* obs);

private:
  struct Event;
  struct DomainRt;

  void process_net_change(NetId net, Logic v);
  void eval_cell_now(CellId cell);
  void eval_macro_now(CellId cell, bool clocked_edge);
  void schedule_net(NetId net, Logic v, SimTime at);
  void update_cell_leak(CellId cell);
  void integrate_to(SimTime t);
  void domain_power_off(SimTime t);
  void domain_power_on(SimTime t);
  void domain_corrupt();
  void domain_ready();
  void notify_phase(DomainPhase phase);
  [[nodiscard]] double rail_v_at(SimTime t) const;

  const Netlist* nl_;
  SimConfig cfg_;
  double dscale_, escale_, lscale_;
  double vdd_;

  SimTime now_{0};
  std::uint64_t seq_{0};
  std::priority_queue<Event, std::vector<Event>,
                      std::function<bool(const Event&, const Event&)>>
      queue_;

  std::vector<Logic> values_;
  std::vector<std::uint32_t> net_gen_;      // latest scheduled generation
  std::vector<Logic> net_sched_value_;      // value of latest schedule
  std::vector<bool> net_sched_pending_;
  std::vector<Time> cell_delay_;            // per cell, at corner
  std::vector<double> cell_leak_w_;         // per cell, at corner, current state
  std::vector<Capacitance> net_cap_;        // cached loads
  std::vector<std::unique_ptr<MacroModel>> macro_models_;
  std::vector<Logic> dff_sampled_;          // captured D per flop at posedge

  double p_aon_w_{0};   // always-on leakage at corner (state-dependent sum)
  double p_gated_w_{0}; // gated-domain leakage at full rail
  SimTime last_integrate_{0};

  std::unique_ptr<DomainRt> domain_;
  PowerTally tally_;
  SimTime tally_start_{0};

  std::vector<std::pair<NetId, std::function<void()>>> edge_hooks_;
  // Self-rescheduling clock closures (add_clock); owned here so the
  // mutually-referencing rise/fall pair needs no shared_ptr cycle.
  std::vector<std::unique_ptr<std::function<void()>>> clock_fns_;
  std::vector<SimObserver*> observers_;
  ActivityRecorder* activity_{nullptr};
  VcdWriter* vcd_{nullptr};
  std::size_t vcd_rail_{std::size_t(-1)};

  // Observability (src/obs).  Counters accumulate in plain members —
  // a Simulator lives on one thread — and flush to the global registry
  // once, in the destructor; `obs_en_` is sampled at construction so a
  // disabled run costs one branch per site.  The wall-clock phase split
  // (eval = logic evaluation, clamp = domain corrupt/restore, rail =
  // closed-form leakage/rail integration) feeds timing histograms only.
  bool obs_en_{false};
  std::uint64_t obs_events_{0};
  std::uint64_t obs_net_changes_{0};
  std::uint64_t obs_cell_evals_{0};
  std::uint64_t obs_macro_evals_{0};
  std::uint64_t obs_domain_sleeps_{0};
  std::uint64_t obs_domain_corrupts_{0};
  double obs_eval_us_{0};
  double obs_clamp_us_{0};
  double obs_rail_us_{0};
};

} // namespace scpg
