#include "sim/simulator.hpp"

#include <array>
#include <chrono>
#include <cmath>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace scpg {

namespace {
constexpr std::uint32_t kForcedGen = ~std::uint32_t{0};
} // namespace

std::string_view domain_phase_name(DomainPhase p) {
  switch (p) {
    case DomainPhase::SleepStart: return "sleep-start";
    case DomainPhase::Corrupt: return "corrupt";
    case DomainPhase::WakeStart: return "wake-start";
    case DomainPhase::Ready: return "ready";
  }
  return "?";
}

struct Simulator::Event {
  SimTime t{0};
  std::uint64_t seq{0};
  enum class Kind : std::uint8_t {
    NetChange,
    Callback,
    DomainCorrupt,
    DomainReady,
  } kind{Kind::NetChange};
  NetId net;
  Logic value{Logic::X};
  std::uint32_t gen{0};
  std::function<void()> fn;
};

struct Simulator::DomainRt {
  std::vector<CellId> cells;
  std::vector<NetId> out_nets;
  std::vector<CellId> boundary_aon; ///< AON cells reading gated outputs
  double c_dom{0};                  // F
  double ron_eff{0};                // Ohm
  double p_hdr_off_w{0};            // W at corner
  double hdr_gate_cap{0};           // F
  std::size_t n_cells{0};

  enum class Mode : std::uint8_t { On, Decay, Charge } mode{Mode::On};
  double v_start{0};
  SimTime t_start{0};
  double tau_decay_s{1};
  double tau_charge_s{1};
  bool corrupted{false};
  bool sleeping{false};
  std::uint32_t event_gen{0};
  std::vector<Logic> saved;
};

Simulator::Simulator(const Netlist& nl, SimConfig cfg)
    : nl_(&nl),
      cfg_(cfg),
      queue_([](const Event& a, const Event& b) {
        return a.t != b.t ? a.t > b.t : a.seq > b.seq;
      }),
      obs_en_(obs::metrics_enabled()) {
  const TechModel& tech = nl.lib().tech();
  dscale_ = tech.delay_scale(cfg.corner);
  escale_ = tech.energy_scale(cfg.corner);
  lscale_ = tech.leak_scale(cfg.corner);
  vdd_ = cfg.corner.vdd.v;

  const std::size_t nnets = nl.num_nets();
  const std::size_t ncells = nl.num_cells();
  values_.assign(nnets, Logic::X);
  net_gen_.assign(nnets, 0);
  net_sched_value_.assign(nnets, Logic::X);
  net_sched_pending_.assign(nnets, false);
  cell_delay_.assign(ncells, Time{});
  cell_leak_w_.assign(ncells, 0.0);
  net_cap_.resize(nnets);
  macro_models_.resize(ncells);
  dff_sampled_.assign(ncells, Logic::X);

  for (std::uint32_t ni = 0; ni < nnets; ++ni)
    net_cap_[ni] = nl.net_load(NetId{ni});

  // Per-cell delay and initial (state-averaged) leakage.
  for (std::uint32_t ci = 0; ci < ncells; ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.is_macro()) {
      const MacroSpec& m = nl.macro_spec(c.macro);
      cell_delay_[ci] = m.access_delay * dscale_;
      macro_models_[ci] = m.make_model();
      const double leak = m.leakage.v * lscale_;
      cell_leak_w_[ci] = leak;
      // Macros are never inside the gated domain.
      SCPG_REQUIRE(c.domain == Domain::AlwaysOn,
                   "macro '" + c.name + "' cannot be power gated");
      p_aon_w_ += leak;
      continue;
    }
    const CellSpec& s = nl.spec_of(id);
    if (s.kind == CellKind::Header) continue; // accounted via the domain
    if (s.is_sequential())
      cell_delay_[ci] = s.clk_to_q * dscale_;
    else
      cell_delay_[ci] =
          (s.intrinsic_delay + Time{(s.drive_res * net_cap_[c.outputs[0].v]).v}) *
          dscale_;
    const double leak = s.leakage.v * lscale_;
    cell_leak_w_[ci] = leak;
    if (c.domain == Domain::Gated)
      p_gated_w_ += leak;
    else
      p_aon_w_ += leak;
  }

  // Gated-domain runtime.
  std::vector<CellId> gated;
  std::vector<CellId> headers;
  for (std::uint32_t ci = 0; ci < ncells; ++ci) {
    const CellId id{ci};
    if (nl.kind_of(id) == CellKind::Header) headers.push_back(id);
    else if (nl.cell(id).domain == Domain::Gated) gated.push_back(id);
  }
  if (!gated.empty()) {
    SCPG_REQUIRE(!headers.empty(),
                 "netlist has gated cells but no header cell");
    domain_ = std::make_unique<DomainRt>();
    domain_->cells = gated;
    domain_->n_cells = gated.size();
    double g_sum = 0;
    for (CellId h : headers) {
      const CellSpec& s = nl.spec_of(h);
      // The PMOS on-resistance degrades with reduced gate drive at the
      // operating supply, like every other transistor.
      g_sum += 1.0 / (s.header_ron.v * dscale_);
      domain_->p_hdr_off_w += s.header_off_leak.v * lscale_;
      domain_->hdr_gate_cap += s.header_gate_cap.v;
    }
    domain_->ron_eff = cfg_.header_ron_derate / g_sum;
    std::vector<bool> is_gated_cell(ncells, false);
    for (CellId g : gated) is_gated_cell[g.v] = true;
    std::vector<bool> out_seen(nnets, false);
    std::vector<bool> aon_seen(ncells, false);
    double cap = 0;
    for (CellId g : gated) {
      for (NetId o : nl.cell(g).outputs) {
        if (!out_seen[o.v]) {
          out_seen[o.v] = true;
          domain_->out_nets.push_back(o);
          cap += net_cap_[o.v].v;
          for (const PinRef& s : nl.net(o).sinks) {
            if (!is_gated_cell[s.cell.v] && !aon_seen[s.cell.v]) {
              aon_seen[s.cell.v] = true;
              domain_->boundary_aon.push_back(s.cell);
            }
          }
        }
      }
    }
    domain_->c_dom = cap * cfg_.rail_cap_factor;
    domain_->saved.assign(domain_->out_nets.size(), Logic::X);
  } else {
    // A netlist with headers but nothing gated is a configuration error.
    SCPG_REQUIRE(headers.empty(),
                 "netlist has header cells but no gated cells");
  }

  // Bootstrap: evaluate every combinational node once so constant cells
  // (ties) and X-propagation settle from time 0.
  for (std::uint32_t ci = 0; ci < ncells; ++ci) {
    const CellId id{ci};
    if (!nl.is_comb_node(id)) continue;
    if (nl.cell(id).is_macro())
      eval_macro_now(id, false);
    else
      eval_cell_now(id);
  }
}

Simulator::~Simulator() {
  if (!obs_en_ || !obs::metrics_enabled()) return;
  SCPG_OBS_COUNT("sim.events", obs_events_);
  SCPG_OBS_COUNT("sim.net_changes", obs_net_changes_);
  SCPG_OBS_COUNT("sim.cell_evals", obs_cell_evals_);
  SCPG_OBS_COUNT("sim.macro_evals", obs_macro_evals_);
  SCPG_OBS_COUNT("sim.domain.sleeps", obs_domain_sleeps_);
  SCPG_OBS_COUNT("sim.domain.corrupts", obs_domain_corrupts_);
  SCPG_OBS_TIMING_HIST("sim.phase.eval.ms", obs_eval_us_ / 1000.0);
  SCPG_OBS_TIMING_HIST("sim.phase.clamp.ms", obs_clamp_us_ / 1000.0);
  SCPG_OBS_TIMING_HIST("sim.phase.rail.ms", obs_rail_us_ / 1000.0);
}

// --- scheduling --------------------------------------------------------------

void Simulator::schedule_net(NetId net, Logic v, SimTime at) {
  if (net_sched_pending_[net.v]) {
    if (net_sched_value_[net.v] == v) return;
    ++net_gen_[net.v]; // cancel the stale pending change
    net_sched_pending_[net.v] = false;
  }
  if (values_[net.v] == v) return;
  net_sched_pending_[net.v] = true;
  net_sched_value_[net.v] = v;
  Event e;
  e.t = at;
  e.seq = seq_++;
  e.kind = Event::Kind::NetChange;
  e.net = net;
  e.value = v;
  e.gen = net_gen_[net.v];
  queue_.push(std::move(e));
}

void Simulator::drive_at(SimTime t, NetId net, Logic v) {
  SCPG_REQUIRE(t >= now_, "drive_at in the past");
  SCPG_REQUIRE(nl_->net(net).driven_by_port(),
               "drive_at on a non-primary-input net");
  Event e;
  e.t = t;
  e.seq = seq_++;
  e.kind = Event::Kind::NetChange;
  e.net = net;
  e.value = v;
  e.gen = kForcedGen; // applies unconditionally, in time order
  queue_.push(std::move(e));
}

void Simulator::force_net(NetId net, Logic v) {
  SCPG_REQUIRE(net.valid() && net.v < values_.size(), "force_net: bad net");
  Event e;
  e.t = now_;
  e.seq = seq_++;
  e.kind = Event::Kind::NetChange;
  e.net = net;
  e.value = v;
  e.gen = kForcedGen;
  queue_.push(std::move(e));
}

void Simulator::drive_bus_at(SimTime t, std::string_view name,
                             std::uint64_t value, int width) {
  for (int i = 0; i < width; ++i) {
    const std::string pin = std::string(name) + "[" + std::to_string(i) + "]";
    drive_at(t, nl_->port_net(pin), from_bool((value >> i) & 1));
  }
}

void Simulator::call_at(SimTime t, std::function<void()> fn) {
  SCPG_REQUIRE(t >= now_, "call_at in the past");
  Event e;
  e.t = t;
  e.seq = seq_++;
  e.kind = Event::Kind::Callback;
  e.fn = std::move(fn);
  queue_.push(std::move(e));
}

void Simulator::add_clock(NetId net, Frequency f, double duty_high,
                          SimTime first_rise) {
  SCPG_REQUIRE(f.v > 0, "clock frequency must be positive");
  SCPG_REQUIRE(duty_high > 0 && duty_high < 1,
               "duty cycle must be in (0, 1)");
  const SimTime period_fs = to_fs(period(f));
  const SimTime high_fs = SimTime(double(period_fs) * duty_high);
  // Self-rescheduling callbacks; the simulator owns the pair, so the
  // mutually-referencing lambdas capture raw pointers into stable
  // storage instead of leaking a shared_ptr cycle.
  clock_fns_.push_back(std::make_unique<std::function<void()>>());
  clock_fns_.push_back(std::make_unique<std::function<void()>>());
  std::function<void()>* rise = clock_fns_[clock_fns_.size() - 2].get();
  std::function<void()>* fall = clock_fns_.back().get();
  *rise = [this, net, fall, high_fs]() {
    process_net_change(net, Logic::L1);
    call_at(now_ + high_fs, *fall);
  };
  *fall = [this, net, rise, period_fs, high_fs]() {
    process_net_change(net, Logic::L0);
    call_at(now_ + (period_fs - high_fs), *rise);
  };
  // Start low.
  call_at(now_, [this, net]() { process_net_change(net, Logic::L0); });
  call_at(first_rise, *rise);
}

void Simulator::on_rising_edge(NetId net, std::function<void()> fn) {
  edge_hooks_.emplace_back(net, std::move(fn));
}

void Simulator::init_flops_to_zero() {
  for (CellId f : nl_->flops()) {
    dff_sampled_[f.v] = Logic::L0;
    schedule_net(nl_->cell(f).outputs[0], Logic::L0, now_);
  }
}

// --- leakage integration -------------------------------------------------------

namespace {

/// Integral of exp(-2 s / tau) over [a, b] (seconds).
double int_exp2(double a, double b, double tau) {
  return tau / 2.0 * (std::exp(-2.0 * a / tau) - std::exp(-2.0 * b / tau));
}

} // namespace

void Simulator::integrate_to(SimTime t) {
  if (t <= last_integrate_) return;
  const double a_fs = double(last_integrate_);
  const double b_fs = double(t);
  const double dt = (b_fs - a_fs) * 1e-15;

  tally_.leakage_aon += Energy{p_aon_w_ * dt};

  if (!domain_) {
    tally_.leakage_gated += Energy{p_gated_w_ * dt};
    last_integrate_ = t;
    return;
  }

  const DomainRt& d = *domain_;
  double gated = 0;
  switch (d.mode) {
    case DomainRt::Mode::On:
      gated = p_gated_w_ * dt;
      break;
    case DomainRt::Mode::Decay: {
      const double a = (a_fs - double(d.t_start)) * 1e-15;
      const double b = (b_fs - double(d.t_start)) * 1e-15;
      const double r0 = d.v_start / vdd_;
      gated = p_gated_w_ * r0 * r0 * int_exp2(a, b, d.tau_decay_s);
      break;
    }
    case DomainRt::Mode::Charge: {
      const double a = (a_fs - double(d.t_start)) * 1e-15;
      const double b = (b_fs - double(d.t_start)) * 1e-15;
      const double k = (vdd_ - d.v_start) / vdd_;
      const double tau = d.tau_charge_s;
      const double lin = (b - a);
      const double mid = 2.0 * k * tau *
                         (std::exp(-a / tau) - std::exp(-b / tau));
      const double quad = k * k * int_exp2(a, b, tau);
      gated = p_gated_w_ * (lin - mid + quad);
      break;
    }
  }
  tally_.leakage_gated += Energy{gated};
  if (d.sleeping) tally_.header_off += Energy{d.p_hdr_off_w * dt};
  last_integrate_ = t;
}

double Simulator::rail_v_at(SimTime t) const {
  if (!domain_) return vdd_;
  const DomainRt& d = *domain_;
  const double dt = (double(t) - double(d.t_start)) * 1e-15;
  switch (d.mode) {
    case DomainRt::Mode::On:
      return vdd_;
    case DomainRt::Mode::Decay:
      return d.v_start * std::exp(-dt / d.tau_decay_s);
    case DomainRt::Mode::Charge:
      return vdd_ - (vdd_ - d.v_start) * std::exp(-dt / d.tau_charge_s);
  }
  return vdd_;
}

Voltage Simulator::rail_voltage() const { return Voltage{rail_v_at(now_)}; }

bool Simulator::rail_corrupted() const {
  return domain_ && domain_->corrupted;
}

// --- domain power events --------------------------------------------------------

void Simulator::notify_phase(DomainPhase phase) {
  if (observers_.empty()) return;
  const double v = rail_v_at(now_);
  for (SimObserver* o : observers_) o->on_domain_phase(now_, phase, v);
}

void Simulator::domain_power_off(SimTime t) {
  DomainRt& d = *domain_;
  if (d.sleeping) return;
  d.sleeping = true;
  if (obs_en_) ++obs_domain_sleeps_;
  const double v0 = rail_v_at(t);
  d.mode = DomainRt::Mode::Decay;
  d.v_start = v0;
  d.t_start = t;
  // The rail discharges through the domain's own leakage (linear-current
  // model => exponential decay).
  const double p_leak = std::max(p_gated_w_, 1e-15);
  d.tau_decay_s = d.c_dom * vdd_ * vdd_ / p_leak;
  tally_.header_gate += Energy{0.5 * d.hdr_gate_cap * vdd_ * vdd_};
  ++d.event_gen;
  const double v_corrupt = cfg_.rail_corrupt_frac * vdd_;
  if (!d.corrupted) {
    SimTime at = t;
    if (v0 > v_corrupt) {
      const double dt_s = d.tau_decay_s * std::log(v0 / v_corrupt);
      at = t + SimTime(dt_s * 1e15);
    }
    Event e;
    e.t = at;
    e.seq = seq_++;
    e.kind = Event::Kind::DomainCorrupt;
    e.gen = d.event_gen;
    queue_.push(std::move(e));
  }
  if (vcd_ && vcd_rail_ != std::size_t(-1))
    vcd_->change_real(t, vcd_rail_, v0);
  notify_phase(DomainPhase::SleepStart);
}

void Simulator::domain_power_on(SimTime t) {
  DomainRt& d = *domain_;
  if (!d.sleeping) return;
  d.sleeping = false;
  const double v0 = rail_v_at(t);
  const double dv = vdd_ - v0;
  // Resistive restore loss only: the C*Vdd*dV supply draw minus the charge
  // whose dissipation the off-phase leakage bucket already accounts for
  // (see RailParams::recharge_energy).
  tally_.rail_recharge += Energy{0.5 * d.c_dom * dv * dv};
  tally_.crowbar += Energy{cfg_.crowbar_per_cell.v * escale_ *
                           double(d.n_cells) * (dv / vdd_)};
  tally_.header_gate += Energy{0.5 * d.hdr_gate_cap * vdd_ * vdd_};
  d.mode = DomainRt::Mode::Charge;
  d.v_start = v0;
  d.t_start = t;
  d.tau_charge_s = d.ron_eff * d.c_dom;
  ++d.event_gen;
  if (d.corrupted) {
    const double v_ready = cfg_.rail_ready_frac * vdd_;
    SimTime at = t;
    if (v0 < v_ready) {
      const double dt_s = d.tau_charge_s * std::log(dv / (vdd_ - v_ready));
      at = t + SimTime(dt_s * 1e15);
    }
    Event e;
    e.t = at;
    e.seq = seq_++;
    e.kind = Event::Kind::DomainReady;
    e.gen = d.event_gen;
    queue_.push(std::move(e));
  }
  if (vcd_ && vcd_rail_ != std::size_t(-1))
    vcd_->change_real(t, vcd_rail_, v0);
  notify_phase(DomainPhase::WakeStart);
}

void Simulator::domain_corrupt() {
  DomainRt& d = *domain_;
  d.corrupted = true;
  if (obs_en_) ++obs_domain_corrupts_;
  for (std::size_t i = 0; i < d.out_nets.size(); ++i)
    d.saved[i] = values_[d.out_nets[i].v];
  for (NetId o : d.out_nets) {
    const Net& n = nl_->net(o);
    const CellKind k = nl_->kind_of(n.driver_cell);
    // The rail sense (a tie cell inside the gated domain, paper Fig 3)
    // reads the collapsed rail as logic 0; ordinary logic corrupts to X.
    const Logic v = (k == CellKind::TieHi || k == CellKind::TieLo)
                        ? Logic::L0
                        : Logic::X;
    schedule_net(o, v, now_);
  }
  if (vcd_ && vcd_rail_ != std::size_t(-1))
    vcd_->change_real(now_, vcd_rail_, cfg_.rail_corrupt_frac * vdd_);
  notify_phase(DomainPhase::Corrupt);
}

void Simulator::domain_ready() {
  DomainRt& d = *domain_;
  d.corrupted = false;
  d.mode = DomainRt::Mode::On; // close enough to full rail from here on
  d.v_start = vdd_;
  d.t_start = now_;
  // Restore the pre-collapse values silently: the energy to re-charge the
  // internal nodes is already accounted by the rail_recharge bucket.
  for (std::size_t i = 0; i < d.out_nets.size(); ++i) {
    const NetId o = d.out_nets[i];
    if (net_sched_pending_[o.v]) {
      ++net_gen_[o.v];
      net_sched_pending_[o.v] = false;
    }
    if (values_[o.v] != d.saved[i]) {
      values_[o.v] = d.saved[i];
      if (vcd_) vcd_->change(now_, o, d.saved[i]);
      for (const PinRef& s : nl_->net(o).sinks) {
        const Cell& c = nl_->cell(s.cell);
        if (!c.is_macro() && nl_->spec_of(s.cell).kind != CellKind::Header)
          update_cell_leak(s.cell);
      }
    }
  }
  // Re-evaluate the domain (the paper's T_eval after T_PGStart) and the
  // always-on cells watching its outputs (isolation cells, rail sense
  // consumers).
  for (CellId g : d.cells) {
    if (nl_->cell(g).is_macro()) continue;
    eval_cell_now(g);
  }
  for (CellId a : d.boundary_aon) {
    const Cell& c = nl_->cell(a);
    if (c.is_macro()) {
      eval_macro_now(a, false);
    } else {
      const CellKind k = nl_->spec_of(a).kind;
      if (kind_is_combinational(k)) eval_cell_now(a);
    }
  }
  if (vcd_ && vcd_rail_ != std::size_t(-1))
    vcd_->change_real(now_, vcd_rail_, cfg_.rail_ready_frac * vdd_);
  notify_phase(DomainPhase::Ready);
}

// --- evaluation -----------------------------------------------------------------

void Simulator::eval_cell_now(CellId cell) {
  const Cell& c = nl_->cell(cell);
  const CellSpec& s = nl_->spec_of(cell);
  if (!kind_is_combinational(s.kind)) return;
  std::array<Logic, 8> in{};
  for (std::size_t i = 0; i < c.inputs.size(); ++i)
    in[i] = values_[c.inputs[i].v];
  const Logic y = eval_cell(
      s.kind, std::span<const Logic>(in.data(), c.inputs.size()));
  if (obs_en_) ++obs_cell_evals_;
  schedule_net(c.outputs[0], y, now_ + to_fs(cell_delay_[cell.v]));
}

void Simulator::eval_macro_now(CellId cell, bool clocked_edge) {
  const Cell& c = nl_->cell(cell);
  std::vector<Logic> in(c.inputs.size());
  for (std::size_t i = 0; i < c.inputs.size(); ++i)
    in[i] = values_[c.inputs[i].v];
  if (clocked_edge) macro_models_[cell.v]->clock_edge(in);
  if (obs_en_) ++obs_macro_evals_;
  std::vector<Logic> out(c.outputs.size(), Logic::X);
  macro_models_[cell.v]->eval(in, out);
  const SimTime at = now_ + to_fs(cell_delay_[cell.v]);
  for (std::size_t i = 0; i < c.outputs.size(); ++i)
    schedule_net(c.outputs[i], out[i], at);
}

void Simulator::update_cell_leak(CellId cell) {
  const Cell& c = nl_->cell(cell);
  if (c.is_macro()) return;
  const CellSpec& s = nl_->spec_of(cell);
  if (s.kind == CellKind::Header) return;
  std::array<Logic, 8> in{};
  for (std::size_t i = 0; i < c.inputs.size(); ++i)
    in[i] = values_[c.inputs[i].v];
  double leak =
      leakage_in_state(s, std::span<const Logic>(in.data(),
                                                 c.inputs.size()))
          .v *
      lscale_;
  // Unclamped X on an always-on cell's input burns short-circuit-like
  // leakage (see SimConfig::x_input_leak_penalty).  Gated cells are
  // excluded (their rail is collapsed) and so are isolation cells.
  if (c.domain != Domain::Gated && s.kind != CellKind::IsoLo &&
      s.kind != CellKind::IsoHi && s.kind != CellKind::RetBal &&
      cfg_.x_input_leak_penalty > 1.0) {
    for (std::size_t i = 0; i < c.inputs.size(); ++i)
      if (!is_known(in[i])) {
        leak *= cfg_.x_input_leak_penalty;
        break;
      }
  }
  const double diff = leak - cell_leak_w_[cell.v];
  cell_leak_w_[cell.v] = leak;
  if (c.domain == Domain::Gated)
    p_gated_w_ += diff;
  else
    p_aon_w_ += diff;
}

void Simulator::process_net_change(NetId net, Logic v) {
  const Logic old = values_[net.v];
  if (old == v) return;
  values_[net.v] = v;
  if (obs_en_) ++obs_net_changes_;

  const Net& n = nl_->net(net);

  // Energy of the transition.
  if (is_known(old) && is_known(v)) {
    tally_.switching += Energy{0.5 * net_cap_[net.v].v * vdd_ * vdd_};
    if (n.driven_by_cell()) {
      const Cell& d = nl_->cell(n.driver_cell);
      if (d.is_macro())
        tally_.macro_access +=
            nl_->macro_spec(d.macro).energy_per_access * escale_;
      else
        tally_.internal += nl_->spec_of(n.driver_cell).internal_energy *
                           escale_;
    }
    if (activity_) activity_->on_toggle(net);
  }
  if (vcd_) vcd_->change(now_, net, v);
  for (SimObserver* o : observers_) o->on_net_change(now_, net, old, v);

  // Sink reactions.
  for (const PinRef& s : n.sinks) {
    const Cell& c = nl_->cell(s.cell);
    if (c.is_macro()) {
      update_cell_leak(s.cell); // no-op for macros but keeps symmetry
      const MacroSpec& m = nl_->macro_spec(c.macro);
      if (m.has_clock && s.pin == 0) {
        if (old == Logic::L0 && v == Logic::L1) eval_macro_now(s.cell, true);
      } else {
        eval_macro_now(s.cell, false);
      }
      continue;
    }
    const CellSpec& spec = nl_->spec_of(s.cell);
    update_cell_leak(s.cell);
    switch (spec.kind) {
      case CellKind::Header: {
        if (v == Logic::L1)
          domain_power_off(now_);
        else if (v == Logic::L0)
          domain_power_on(now_);
        break;
      }
      case CellKind::Dff:
      case CellKind::DffR: {
        // A flop inside a collapsed domain holds nothing: it neither
        // samples nor drives (traditional power gating keeps state in
        // always-on retention balloons; the domain save/restore models
        // that hand-off).
        if (c.domain == Domain::Gated && domain_ && domain_->corrupted)
          break;
        const bool has_reset = spec.kind == CellKind::DffR;
        if (s.pin == 1 && old == Logic::L0 && v == Logic::L1) {
          Logic d = values_[c.inputs[0].v];
          if (has_reset && values_[c.inputs[2].v] == Logic::L0)
            d = Logic::L0;
          dff_sampled_[s.cell.v] = d;
          const SimTime due = now_ + to_fs(cell_delay_[s.cell.v]);
          schedule_net(c.outputs[0], d, due);
          for (SimObserver* o : observers_)
            o->on_flop_drive(now_, s.cell, d, due, false);
        } else if (has_reset && s.pin == 2 && v == Logic::L0) {
          dff_sampled_[s.cell.v] = Logic::L0;
          const SimTime due = now_ + to_fs(cell_delay_[s.cell.v] * 0.5);
          schedule_net(c.outputs[0], Logic::L0, due);
          for (SimObserver* o : observers_)
            o->on_flop_drive(now_, s.cell, Logic::L0, due, true);
        }
        break;
      }
      default: {
        if (c.domain == Domain::Gated && domain_ && domain_->corrupted)
          break; // frozen while the rail is collapsed
        eval_cell_now(s.cell);
        break;
      }
    }
  }

  // User edge hooks.
  if (old == Logic::L0 && v == Logic::L1)
    for (auto& [hnet, fn] : edge_hooks_)
      if (hnet == net) fn();
}

void Simulator::run_until(SimTime t) {
  SCPG_REQUIRE(t >= now_, "run_until into the past");
  using Clock = std::chrono::steady_clock;
  const auto us_since = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::micro>(b - a).count();
  };
  while (!queue_.empty() && queue_.top().t <= t) {
    Event e = queue_.top();
    queue_.pop();
    SCPG_ASSERT(e.t >= now_);
    now_ = e.t;
    Clock::time_point t0;
    if (obs_en_) {
      ++obs_events_;
      t0 = Clock::now();
    }
    integrate_to(now_);
    if (obs_en_) {
      const auto t1 = Clock::now();
      obs_rail_us_ += us_since(t0, t1);
      t0 = t1;
    }
    switch (e.kind) {
      case Event::Kind::NetChange: {
        if (e.gen != kForcedGen) {
          if (e.gen != net_gen_[e.net.v]) break; // cancelled
          net_sched_pending_[e.net.v] = false;
        }
        process_net_change(e.net, e.value);
        break;
      }
      case Event::Kind::Callback:
        e.fn();
        break;
      case Event::Kind::DomainCorrupt:
        if (domain_ && e.gen == domain_->event_gen) domain_corrupt();
        break;
      case Event::Kind::DomainReady:
        if (domain_ && e.gen == domain_->event_gen) domain_ready();
        break;
    }
    if (obs_en_) {
      const bool clamp = e.kind == Event::Kind::DomainCorrupt ||
                         e.kind == Event::Kind::DomainReady;
      (clamp ? obs_clamp_us_ : obs_eval_us_) += us_since(t0, Clock::now());
    }
  }
  now_ = t;
  integrate_to(now_);
}

// --- observation -------------------------------------------------------------

Logic Simulator::output(std::string_view port) const {
  const PortId p = nl_->find_port(port);
  SCPG_REQUIRE(p.valid(), "unknown port: " + std::string(port));
  return values_[nl_->port(p).net.v];
}

std::uint64_t Simulator::read_bus(std::string_view name, int width) const {
  SCPG_REQUIRE(width >= 1 && width <= 64, "bus width out of range");
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    const std::string pin = std::string(name) + "[" + std::to_string(i) + "]";
    NetId net;
    if (const PortId p = nl_->find_port(pin); p.valid())
      net = nl_->port(p).net;
    else
      net = nl_->find_net(pin);
    SCPG_REQUIRE(net.valid(), "unknown bus bit: " + pin);
    const Logic b = values_[net.v];
    SCPG_REQUIRE(is_known(b), "bus bit is X/Z: " + pin);
    if (b == Logic::L1) v |= std::uint64_t(1) << i;
  }
  return v;
}

const PowerTally& Simulator::tally() {
  integrate_to(now_);
  tally_.window = from_fs(now_ - tally_start_);
  return tally_;
}

void Simulator::reset_tally() {
  integrate_to(now_);
  tally_.reset();
  tally_start_ = now_;
}

MacroModel* Simulator::macro_model(CellId cell) {
  SCPG_REQUIRE(cell.v < macro_models_.size() && macro_models_[cell.v],
               "cell is not a macro instance");
  return macro_models_[cell.v].get();
}

void Simulator::attach_observer(SimObserver* obs) {
  SCPG_REQUIRE(obs != nullptr, "attach_observer: null observer");
  observers_.push_back(obs);
}

void Simulator::attach_vcd(VcdWriter* vcd, std::size_t rail_handle) {
  vcd_ = vcd;
  vcd_rail_ = rail_handle;
  if (vcd_) vcd_->begin();
}

} // namespace scpg
