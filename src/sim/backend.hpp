// Pluggable simulation backends.
//
// A backend answers one question — "what power does this netlist burn
// over a measured clock window under this stimulus?" — and the sweep
// engine no longer cares how.  The event-driven Simulator is the
// reference implementation (it models everything: per-event rail
// timing, observers, VCD, fault injection); the compiled levelized
// kernel (src/sim/compiled) is the fast implementation for the common
// measure-path case.  Selection is three-valued:
//
//   Event    — always legal, always the reference.
//   Compiled — forced; throws if the point is statically ineligible and
//              errors out if the run dynamically leaves the compiled
//              model (a header trying to sleep).
//   Auto     — compiled when eligible, event otherwise; dynamic
//              fallback re-runs the point on the event backend.
//
// Eligibility is decided per point from the MeasureRequest alone, so
// the choice is deterministic and jobs-invariant.  Everything that is
// bit-identical across backends (RNG streams, cycle counts, the
// measurement window) is pinned by contract; power numbers are
// estimator outputs and only claimed deterministic *per backend* (see
// DESIGN.md §13 for the cross-backend tolerance story).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "sim/stimulus.hpp"
#include "sim/tally.hpp"

namespace scpg::sim {

enum class Backend : std::uint8_t { Event, Compiled, Auto };

[[nodiscard]] std::string_view backend_name(Backend b);
/// Parses "event" / "compiled" / "auto"; nullopt on anything else.
[[nodiscard]] std::optional<Backend> backend_from_name(std::string_view s);

/// Everything a backend needs to measure one operating point.  The
/// corner is already folded into `cfg`; `digest` keys the point's RNG
/// stream (Rng::stream(seed, digest)) and must be backend-invariant.
struct MeasureRequest {
  const Netlist* nl{nullptr};
  SimConfig cfg;
  Frequency f{1e6};
  double duty_high{0.5};
  bool override_gating{false};
  int warmup{4};
  int cycles{24};
  std::string_view clock_port{"clk"};
  std::string_view override_port{"override_n"};
  const StimulusSpec* stimulus{nullptr}; ///< null means none
  const SetupSpec* setup{nullptr};       ///< null means none
  std::uint64_t seed{0};
  std::uint64_t digest{0};
  /// Structural digest of `*nl` when the caller already has it (the
  /// sweep engine computes one per design); 0 means "compute on demand".
  /// Purely a program-cache fast path — never affects results.
  std::uint64_t nl_digest{0};
};

class SimBackend {
public:
  virtual ~SimBackend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Empty string: this backend can run the point.  Otherwise a short
  /// human-readable reason why not (static check, no side effects).
  [[nodiscard]] virtual std::string
  ineligible_reason(const MeasureRequest& req) const = 0;

  /// Measures the point.  nullopt means the run dynamically left the
  /// backend's model mid-flight (e.g. the compiled kernel saw a header
  /// commanded to sleep) and the caller must fall back to the event
  /// backend.  The event backend never returns nullopt.
  [[nodiscard]] virtual std::optional<PowerTally>
  measure(const MeasureRequest& req) const = 0;

  /// Measures a group of up to 64 requests that are identical except
  /// for (seed, digest) — the sweep engine's seed axis.  The default
  /// runs them sequentially; the compiled backend packs one request per
  /// bit-parallel lane and simulates the whole group in one pass.
  /// Results are bit-identical to per-request measure() calls — lane
  /// packing is a throughput optimisation, never a semantic one.
  virtual void measure_group(std::span<const MeasureRequest> reqs,
                             std::span<std::optional<PowerTally>> out) const {
    for (std::size_t i = 0; i < reqs.size(); ++i) out[i] = measure(reqs[i]);
  }
};

/// The reference event-driven backend (always eligible).
[[nodiscard]] const SimBackend& event_backend();

/// The compiled levelized bit-parallel backend (src/sim/compiled).
[[nodiscard]] const SimBackend& compiled_backend();

/// Implementation for a concrete (non-Auto) choice.
[[nodiscard]] const SimBackend& backend_impl(Backend b);

/// Resolves a request to a concrete backend.  Event maps to Event;
/// Compiled maps to Compiled or throws scpg::Error when statically
/// ineligible; Auto maps to Compiled when eligible, else Event (and
/// stores the fallback reason in *reason when provided).
[[nodiscard]] Backend resolve_backend(Backend requested,
                                      const MeasureRequest& req,
                                      std::string* reason = nullptr);

} // namespace scpg::sim
