#include "sim/backend.hpp"

#include "util/error.hpp"

namespace scpg::sim {

std::string_view backend_name(Backend b) {
  switch (b) {
  case Backend::Event:
    return "event";
  case Backend::Compiled:
    return "compiled";
  case Backend::Auto:
    return "auto";
  }
  return "event";
}

std::optional<Backend> backend_from_name(std::string_view s) {
  if (s == "event") return Backend::Event;
  if (s == "compiled") return Backend::Compiled;
  if (s == "auto") return Backend::Auto;
  return std::nullopt;
}

const SimBackend& backend_impl(Backend b) {
  SCPG_REQUIRE(b != Backend::Auto,
               "backend_impl needs a concrete backend, not auto");
  return b == Backend::Compiled ? compiled_backend() : event_backend();
}

Backend resolve_backend(Backend requested, const MeasureRequest& req,
                        std::string* reason) {
  if (reason) reason->clear();
  if (requested == Backend::Event) return Backend::Event;
  std::string why = compiled_backend().ineligible_reason(req);
  if (why.empty()) return Backend::Compiled;
  if (requested == Backend::Compiled)
    throw Error("compiled backend cannot run this point: " + why);
  if (reason) *reason = std::move(why);
  return Backend::Event;
}

} // namespace scpg::sim
