// Value Change Dump writer.
//
// The paper's methodology dumps switching activity from Modelsim as VCD and
// feeds it to PrimeTime-PX; this writer produces the same artefact from our
// simulators so waveforms (including the virtual rail and the isolation
// control) can be inspected in any VCD viewer.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace scpg {

class VcdWriter {
public:
  /// Opens the file and writes the header.  `timescale_fs` is the LSB of
  /// timestamps in femtoseconds (default 1 ps = 1000 fs).
  VcdWriter(const std::string& path, const Netlist& nl,
            std::int64_t timescale_fs = 1000);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Restricts recording to the given nets (default: all nets).
  void select(const std::vector<NetId>& nets);

  /// Declares a real-valued auxiliary signal (e.g. the virtual rail
  /// voltage); must be called before begin().  Returns its handle.
  std::size_t add_real(const std::string& name);

  /// Must be called once before the first change().
  void begin();

  /// Records a value change at an absolute time in femtoseconds.
  void change(std::int64_t t_fs, NetId net, Logic v);

  /// Records a sample of a declared real signal.
  void change_real(std::int64_t t_fs, std::size_t handle, double v);

private:
  std::string code_of(std::size_t idx) const;
  void stamp(std::int64_t t_fs);

  std::ofstream os_;
  const Netlist* nl_;
  std::int64_t timescale_fs_;
  std::int64_t last_t_{-1};
  bool begun_{false};
  std::vector<bool> enabled_;
  std::vector<std::string> real_signals_;
};

} // namespace scpg
