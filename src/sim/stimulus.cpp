#include "sim/stimulus.hpp"

#include "util/error.hpp"

namespace scpg::sim {

StimulusSpec StimulusSpec::closure(StimulusFn fn, std::string key) {
  StimulusSpec s;
  s.kind_ = Kind::Closure;
  s.fn_ = std::move(fn);
  s.key_ = std::move(key);
  return s;
}

StimulusSpec StimulusSpec::random_buses(std::vector<BusRef> buses,
                                        std::string key) {
  StimulusSpec s;
  s.kind_ = Kind::RandomBuses;
  s.buses_ = std::move(buses);
  s.key_ = std::move(key);
  SCPG_REQUIRE(!s.key_.empty(), "random_buses stimulus needs a key");
  for (const BusRef& b : s.buses_)
    SCPG_REQUIRE(b.width >= 1 && b.width <= 64,
                 "stimulus bus width must be in [1, 64]");
  return s;
}

StimulusSpec StimulusSpec::random_inputs(double activity,
                                         std::string clock_port,
                                         std::string key) {
  StimulusSpec s;
  s.kind_ = Kind::RandomInputs;
  s.activity_ = activity;
  s.clock_port_ = std::move(clock_port);
  s.key_ = std::move(key);
  SCPG_REQUIRE(!s.key_.empty(), "random_inputs stimulus needs a key");
  return s;
}

StimulusSpec StimulusSpec::vectors(
    std::vector<BusRef> buses,
    std::vector<std::array<std::uint64_t, 2>> words, SimTime offset_fs,
    std::string key) {
  StimulusSpec s;
  s.kind_ = Kind::Vectors;
  s.buses_ = std::move(buses);
  s.words_ = std::move(words);
  s.offset_fs_ = offset_fs;
  s.key_ = std::move(key);
  SCPG_REQUIRE(!s.key_.empty(), "vector stimulus needs a key");
  SCPG_REQUIRE(!s.words_.empty(), "vector stimulus needs at least one word");
  SCPG_REQUIRE(s.buses_.size() <= 2,
               "vector stimulus carries at most two buses per word");
  for (const BusRef& b : s.buses_)
    SCPG_REQUIRE(b.width >= 1 && b.width <= 64,
                 "stimulus bus width must be in [1, 64]");
  return s;
}

void StimulusSpec::apply(Simulator& s, int cycle, Rng& rng) const {
  using namespace scpg::literals;
  switch (kind_) {
  case Kind::None:
    return;
  case Kind::Closure:
    fn_(s, cycle, rng);
    return;
  case Kind::RandomBuses:
    for (const BusRef& b : buses_)
      s.drive_bus_at(s.now() + to_fs(1.0_ns), b.name, rng.bits(b.width),
                     b.width);
    return;
  case Kind::RandomInputs: {
    const Netlist& nl = s.netlist();
    for (const Port& p : nl.ports()) {
      if (p.dir != PortDir::In) continue;
      if (p.name == clock_port_ || p.name == "override_n" ||
          p.name == "rst_n")
        continue;
      // Every input is pinned on the first cycle (no X floats into the
      // measurement window); afterwards bits re-toggle at `activity`.
      if (cycle == 0 || rng.uniform() < activity_)
        s.drive_at(s.now() + to_fs(1.0_ns), p.net,
                   rng.bits(1) ? Logic::L1 : Logic::L0);
    }
    return;
  }
  case Kind::Vectors: {
    const auto& w = words_[std::size_t(cycle + 1) % words_.size()];
    for (std::size_t i = 0; i < buses_.size(); ++i)
      s.drive_bus_at(s.now() + offset_fs_, buses_[i].name, w[i],
                     buses_[i].width);
    return;
  }
  }
}

SetupSpec SetupSpec::closure(SetupFn fn, std::string key) {
  SetupSpec s;
  s.kind_ = Kind::Closure;
  s.fn_ = std::move(fn);
  s.key_ = std::move(key);
  return s;
}

SetupSpec SetupSpec::drives(std::vector<Drive> drives, std::string key) {
  SetupSpec s;
  s.kind_ = Kind::Drives;
  s.drives_ = std::move(drives);
  s.key_ = std::move(key);
  SCPG_REQUIRE(!s.key_.empty(), "drives setup needs a key");
  return s;
}

void SetupSpec::apply(Simulator& s) const {
  switch (kind_) {
  case Kind::None:
    return;
  case Kind::Closure:
    fn_(s);
    return;
  case Kind::Drives:
    for (const Drive& d : drives_)
      s.drive_at(0, s.netlist().port_net(d.port), d.value);
    return;
  }
}

} // namespace scpg::sim
