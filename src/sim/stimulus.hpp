// Backend-neutral stimulus and setup descriptions.
//
// The sweep engine historically accepted only opaque closures over the
// event-driven Simulator, which welded every measurement to that one
// backend.  StimulusSpec / SetupSpec describe the declarative subset
// that every backend understands: the same spec, the same cache key and
// the same Rng consumption order produce the same drive sequence whether
// a point runs event-driven or compiled, which is what keeps
// Rng::stream(seed, point_digest) determinism backend-invariant.
//
// Opaque closures remain supported for callers that need the full
// Simulator API (VCD taps, fault injection, ad-hoc schedules) — but a
// closure pins the point to the event backend, because no other backend
// can honour an arbitrary callback against the event simulator.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "tech/logic.hpp"
#include "util/rng.hpp"

namespace scpg::sim {

/// Per-cycle stimulus closure: called from the rising-edge hook with the
/// 0-based cycle index and the point's derived RNG stream.
using StimulusFn = std::function<void(Simulator&, int cycle, Rng&)>;

/// One-shot setup closure, run once before the clock starts.
using SetupFn = std::function<void(Simulator&)>;

/// An input bus `name[width-1:0]` made of scalar ports "name[i]".
struct BusRef {
  std::string name;
  int width{0};
};

/// Declarative (or, as a fallback, closure-held) per-cycle stimulus.
///
/// Kinds:
///  - None: the design free-runs (e.g. the SCM0 core fetching from ROM).
///  - Closure: arbitrary event-simulator callback; event backend only.
///  - RandomBuses: each cycle, for each bus in order, draw bits(width)
///    and drive the bus one nanosecond after the clock edge.
///  - RandomInputs: each cycle visit every scalar In port in port order,
///    skipping the clock, "override_n" and "rst_n"; a port is re-driven
///    with bits(1) when `cycle == 0 || uniform() < activity`.  (Cycle 0
///    short-circuits: it consumes no uniform() draw.  This reproduces the
///    campaign random stimulus byte-for-byte.)
///  - Vectors: explicit per-cycle words, one lane per bus; the closure
///    called at edge k drives word (k+1) — the word the NEXT edge will
///    capture — matching the fuzz corpus stimulus convention.
class StimulusSpec {
public:
  enum class Kind : std::uint8_t {
    None,
    Closure,
    RandomBuses,
    RandomInputs,
    Vectors,
  };

  StimulusSpec() = default; // Kind::None

  static StimulusSpec closure(StimulusFn fn, std::string key);
  static StimulusSpec random_buses(std::vector<BusRef> buses,
                                   std::string key);
  static StimulusSpec random_inputs(double activity, std::string clock_port,
                                    std::string key);
  /// `words[k][i]` is the value bus `i` holds when edge k captures;
  /// `offset_fs` is the drive delay after each clock edge.
  static StimulusSpec vectors(std::vector<BusRef> buses,
                              std::vector<std::array<std::uint64_t, 2>> words,
                              SimTime offset_fs, std::string key);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool empty() const { return kind_ == Kind::None; }
  /// Declarative specs can run on any backend; closures cannot.
  [[nodiscard]] bool declarative() const { return kind_ != Kind::Closure; }
  /// Cache/digest key.  Empty for None; empty on a closure means "not
  /// cacheable" exactly as the legacy stimulus(fn, "") contract did.
  [[nodiscard]] const std::string& key() const { return key_; }

  [[nodiscard]] const std::vector<BusRef>& buses() const { return buses_; }
  [[nodiscard]] const std::vector<std::array<std::uint64_t, 2>>& words()
      const {
    return words_;
  }
  [[nodiscard]] double activity() const { return activity_; }
  [[nodiscard]] const std::string& clock_port() const { return clock_port_; }
  [[nodiscard]] SimTime offset_fs() const { return offset_fs_; }

  /// Applies one cycle of stimulus to the event simulator.  This is the
  /// reference semantics every other backend must reproduce (same drives,
  /// same Rng consumption order and count).
  void apply(Simulator& s, int cycle, Rng& rng) const;

private:
  Kind kind_{Kind::None};
  std::string key_;
  StimulusFn fn_;
  std::vector<BusRef> buses_;
  std::vector<std::array<std::uint64_t, 2>> words_;
  double activity_{1.0};
  std::string clock_port_;
  SimTime offset_fs_{0};
};

/// Declarative (or closure-held) pre-run setup.
class SetupSpec {
public:
  enum class Kind : std::uint8_t { None, Closure, Drives };

  /// A primary-input drive applied at t = 0.
  struct Drive {
    std::string port;
    Logic value{Logic::L0};
  };

  SetupSpec() = default; // Kind::None

  static SetupSpec closure(SetupFn fn, std::string key);
  static SetupSpec drives(std::vector<Drive> drives, std::string key);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool empty() const { return kind_ == Kind::None; }
  [[nodiscard]] bool declarative() const { return kind_ != Kind::Closure; }
  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] const std::vector<Drive>& drive_list() const {
    return drives_;
  }

  /// Applies the setup to the event simulator (reference semantics).
  void apply(Simulator& s) const;

private:
  Kind kind_{Kind::None};
  std::string key_;
  SetupFn fn_;
  std::vector<Drive> drives_;
};

} // namespace scpg::sim
