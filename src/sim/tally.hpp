// Energy accounting buckets for the event-driven simulator.
//
// Every joule the simulator spends is attributed to one bucket so the
// benches can report the same decomposition the paper discusses: dynamic
// vs leakage vs the three SCPG overhead terms (rail recharge, crowbar
// current, header gate switching).
#pragma once

#include "util/units.hpp"

namespace scpg {

struct PowerTally {
  Energy switching{};     ///< 0.5 C V^2 net transitions (known 0<->1 only)
  Energy internal{};      ///< cell internal/short-circuit energy
  Energy leakage_aon{};   ///< always-on domain leakage (integrated)
  Energy leakage_gated{}; ///< gated-domain leakage (rail-scaled, integrated)
  Energy header_off{};    ///< leakage through OFF headers while gated
  Energy rail_recharge{}; ///< resistive restore loss 1/2 C (Vdd-V0)^2
  Energy crowbar{};       ///< short-circuit rush while the rail ramps
  Energy header_gate{};   ///< switching the header gate capacitance
  Energy macro_access{};  ///< ROM/RAM access energy

  Time window{}; ///< simulated time covered by this tally

  [[nodiscard]] Energy dynamic_total() const {
    return switching + internal + macro_access;
  }
  [[nodiscard]] Energy leakage_total() const {
    return leakage_aon + leakage_gated + header_off;
  }
  [[nodiscard]] Energy gating_overhead() const {
    return rail_recharge + crowbar + header_gate;
  }
  [[nodiscard]] Energy total() const {
    return dynamic_total() + leakage_total() + gating_overhead();
  }
  /// Average power over the accounted window.
  [[nodiscard]] Power average() const {
    return window.v > 0 ? Power{total().v / window.v} : Power{};
  }

  void reset() { *this = PowerTally{}; }
};

} // namespace scpg
