#include "sim/activity.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace scpg {

ActivityRecorder::ActivityRecorder(const Netlist& nl, int cycles_per_window)
    : nl_(&nl), cycles_per_window_(cycles_per_window) {
  SCPG_REQUIRE(cycles_per_window >= 0, "negative window size");
  per_net_.assign(nl.num_nets(), 0);
}

void ActivityRecorder::on_toggle(NetId net) {
  ++per_net_[net.v];
  ++total_;
  ++window_toggles_;
}

void ActivityRecorder::on_cycle() {
  ++cycles_;
  if (cycles_per_window_ <= 0) return;
  if (++window_cycles_ >= cycles_per_window_) close_window();
}

void ActivityRecorder::close_window() {
  const double denom = double(nl_->num_nets()) * double(window_cycles_);
  windows_.push_back(denom > 0 ? double(window_toggles_) / denom : 0.0);
  window_toggles_ = 0;
  window_cycles_ = 0;
}

double ActivityRecorder::average_activity() const {
  if (cycles_ == 0 || nl_->num_nets() == 0) return 0.0;
  return double(total_) / (double(nl_->num_nets()) * double(cycles_));
}

ActivityRecorder::Representative ActivityRecorder::representatives() const {
  SCPG_REQUIRE(!windows_.empty(), "no completed activity windows");
  double sum = 0;
  std::size_t mn = 0, mx = 0;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    sum += windows_[i];
    if (windows_[i] < windows_[mn]) mn = i;
    if (windows_[i] > windows_[mx]) mx = i;
  }
  const double mean = sum / double(windows_.size());
  std::size_t avg = 0;
  double best = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const double d = std::abs(windows_[i] - mean);
    if (d < best) {
      best = d;
      avg = i;
    }
  }
  return {mn, avg, mx};
}

} // namespace scpg
