#include "sim/vcd.hpp"

#include "util/error.hpp"

namespace scpg {

VcdWriter::VcdWriter(const std::string& path, const Netlist& nl,
                     std::int64_t timescale_fs)
    : os_(path), nl_(&nl), timescale_fs_(timescale_fs) {
  SCPG_REQUIRE(os_.good(), "cannot open VCD file: " + path);
  SCPG_REQUIRE(timescale_fs >= 1, "timescale must be at least 1 fs");
  enabled_.assign(nl.num_nets(), true);
}

VcdWriter::~VcdWriter() = default;

void VcdWriter::select(const std::vector<NetId>& nets) {
  SCPG_REQUIRE(!begun_, "select() must precede begin()");
  enabled_.assign(nl_->num_nets(), false);
  for (NetId n : nets) enabled_[n.v] = true;
}

std::size_t VcdWriter::add_real(const std::string& name) {
  SCPG_REQUIRE(!begun_, "add_real() must precede begin()");
  real_signals_.push_back(name);
  return real_signals_.size() - 1;
}

std::string VcdWriter::code_of(std::size_t idx) const {
  // Identifier codes: printable ASCII 33..126, little-endian base-94.
  std::string code;
  do {
    code += char(33 + idx % 94);
    idx /= 94;
  } while (idx);
  return code;
}

void VcdWriter::begin() {
  SCPG_REQUIRE(!begun_, "begin() called twice");
  begun_ = true;
  os_ << "$date scpg simulation $end\n";
  os_ << "$version scpg 1.0 $end\n";
  if (timescale_fs_ % 1000000 == 0)
    os_ << "$timescale " << timescale_fs_ / 1000000 << " ns $end\n";
  else if (timescale_fs_ % 1000 == 0)
    os_ << "$timescale " << timescale_fs_ / 1000 << " ps $end\n";
  else
    os_ << "$timescale " << timescale_fs_ << " fs $end\n";
  os_ << "$scope module " << nl_->name() << " $end\n";
  for (std::uint32_t ni = 0; ni < nl_->num_nets(); ++ni) {
    if (!enabled_[ni]) continue;
    os_ << "$var wire 1 " << code_of(ni) << ' ';
    // Bus bits like a[3] need the index split out for viewers.
    const std::string& name = nl_->net(NetId{ni}).name;
    const auto br = name.find('[');
    if (br != std::string::npos)
      os_ << name.substr(0, br) << ' ' << name.substr(br);
    else
      os_ << name;
    os_ << " $end\n";
  }
  for (std::size_t i = 0; i < real_signals_.size(); ++i)
    os_ << "$var real 64 " << code_of(nl_->num_nets() + i) << ' '
        << real_signals_[i] << " $end\n";
  os_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::stamp(std::int64_t t_fs) {
  const std::int64_t t = t_fs / timescale_fs_;
  if (t != last_t_) {
    os_ << '#' << t << '\n';
    last_t_ = t;
  }
}

void VcdWriter::change(std::int64_t t_fs, NetId net, Logic v) {
  SCPG_REQUIRE(begun_, "change() before begin()");
  if (!enabled_[net.v]) return;
  stamp(t_fs);
  os_ << logic_char(v) << code_of(net.v) << '\n';
}

void VcdWriter::change_real(std::int64_t t_fs, std::size_t handle,
                            double v) {
  SCPG_REQUIRE(begun_, "change_real() before begin()");
  SCPG_REQUIRE(handle < real_signals_.size(), "unknown real signal");
  stamp(t_fs);
  os_ << 'r' << v << ' ' << code_of(nl_->num_nets() + handle) << '\n';
}

} // namespace scpg
