#include "sim/compiled/program.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <utility>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace scpg::sim::compiled {

namespace {

std::shared_ptr<const Program> build_program(const Netlist& nl,
                                             std::uint64_t digest) {
  auto prog = std::make_shared<Program>();
  Program& p = *prog;
  const std::uint32_t nnets = std::uint32_t(nl.num_nets());
  const std::uint32_t ncells = std::uint32_t(nl.num_cells());
  p.num_nets = nnets;
  p.num_cells = ncells;
  p.digest = digest;

  // Per-net energy characterisation.
  p.half_cap.assign(nnets, 0.0);
  p.driver_internal.assign(nnets, 0.0);
  p.driver_macro_e.assign(nnets, 0.0);
  for (std::uint32_t ni = 0; ni < nnets; ++ni) {
    const NetId id{ni};
    p.half_cap[ni] = 0.5 * nl.net_load(id).v;
    const Net& n = nl.net(id);
    if (!n.driven_by_cell()) continue;
    const Cell& d = nl.cell(n.driver_cell);
    if (d.is_macro())
      p.driver_macro_e[ni] = nl.macro_spec(d.macro).energy_per_access.v;
    else
      p.driver_internal[ni] = nl.spec_of(n.driver_cell).internal_energy.v;
  }

  // Leak table, flops and headers (ascending cell index, matching the
  // event simulator's constructor and FuncSim's flop pass order).
  std::vector<std::uint32_t> leak_row_of(ncells, 0);
  for (std::uint32_t ci = 0; ci < ncells; ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.is_macro()) {
      p.macro_leak += nl.macro_spec(c.macro).leakage.v;
      continue;
    }
    const CellSpec& s = nl.spec_of(id);
    if (s.kind == CellKind::Header) {
      SCPG_REQUIRE(!c.inputs.empty(), "header cell without a sleep input");
      p.header_in_nets.push_back(c.inputs[0].v);
      continue;
    }
    SCPG_REQUIRE(c.inputs.size() <= 3,
                 "standard cell with more than 3 inputs");
    Program::LeakCell lc;
    lc.base = s.leakage.v;
    lc.spread = s.leak_state_spread;
    lc.nin = std::uint8_t(c.inputs.size());
    lc.gated = c.domain == Domain::Gated;
    lc.xpen = !lc.gated && s.kind != CellKind::IsoLo &&
              s.kind != CellKind::IsoHi && s.kind != CellKind::RetBal;
    for (std::size_t i = 0; i < c.inputs.size(); ++i)
      lc.in[i] = c.inputs[i].v;
    if (lc.gated) p.has_gated = true;
    leak_row_of[ci] = std::uint32_t(p.leak_cells.size());
    p.leak_cells.push_back(lc);

    if (s.is_sequential()) {
      Program::FlopRef f;
      f.d = c.inputs[0].v;
      f.q = c.outputs[0].v;
      f.has_reset = s.kind == CellKind::DffR;
      f.rn = f.has_reset ? c.inputs[2].v : 0;
      f.leak_row = leak_row_of[ci];
      p.flops.push_back(f);
    }
  }

  // Evaluation program: combinational cells + macros in topo order.
  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    Program::Op op;
    if (c.is_macro()) {
      const MacroSpec& m = nl.macro_spec(c.macro);
      SCPG_REQUIRE(c.inputs.size() <= 64 && c.outputs.size() <= 64,
                   "macro wider than the compiled kernel supports");
      op.kind = CellKind::Macro;
      op.macro = std::int32_t(p.macros.size());
      Program::MacroRef mr;
      mr.cell = id.v;
      mr.op = std::uint32_t(p.ops.size());
      mr.has_clock = m.has_clock;
      mr.access_energy = m.energy_per_access.v;
      mr.ins.reserve(c.inputs.size());
      for (NetId n : c.inputs) mr.ins.push_back(n.v);
      mr.outs.reserve(c.outputs.size());
      for (NetId n : c.outputs) mr.outs.push_back(n.v);
      p.macros.push_back(std::move(mr));
    } else {
      op.kind = nl.spec_of(id).kind;
      op.nin = std::uint8_t(c.inputs.size());
      op.out = c.outputs[0].v;
      for (std::size_t i = 0; i < c.inputs.size(); ++i)
        op.in[i] = c.inputs[i].v;
    }
    p.ops.push_back(op);
  }

  // Evaluation-fanout CSR: net -> consuming op indices, used by the
  // kernel to re-evaluate only the cone behind changed nets.
  {
    std::vector<std::uint32_t> count(nnets + 1, 0);
    for (const Program::Op& op : p.ops) {
      if (op.macro >= 0)
        for (const std::uint32_t n : p.macros[std::size_t(op.macro)].ins)
          ++count[n];
      else
        for (int i = 0; i < op.nin; ++i) ++count[op.in[i]];
    }
    p.op_fanout_off.assign(nnets + 1, 0);
    for (std::uint32_t ni = 0; ni < nnets; ++ni)
      p.op_fanout_off[ni + 1] = p.op_fanout_off[ni] + count[ni];
    p.op_fanout_op.assign(p.op_fanout_off[nnets], 0);
    std::vector<std::uint32_t> cursor(p.op_fanout_off.begin(),
                                      p.op_fanout_off.end() - 1);
    for (std::uint32_t oi = 0; oi < p.ops.size(); ++oi) {
      const Program::Op& op = p.ops[oi];
      if (op.macro >= 0)
        for (const std::uint32_t n : p.macros[std::size_t(op.macro)].ins)
          p.op_fanout_op[cursor[n]++] = oi;
      else
        for (int i = 0; i < op.nin; ++i) p.op_fanout_op[cursor[op.in[i]]++] = oi;
    }
  }

  // Leak-refresh CSR: net -> leak rows.  Mirrors the event simulator,
  // which re-derives a sink cell's leakage whenever one of its input
  // nets changes value.
  std::vector<std::uint32_t> count(nnets + 1, 0);
  for (const Program::LeakCell& lc : p.leak_cells)
    for (int i = 0; i < lc.nin; ++i) ++count[lc.in[i]];
  p.leak_sink_off.assign(nnets + 1, 0);
  for (std::uint32_t ni = 0; ni < nnets; ++ni)
    p.leak_sink_off[ni + 1] = p.leak_sink_off[ni] + count[ni];
  p.leak_sink_row.assign(p.leak_sink_off[nnets], 0);
  std::vector<std::uint32_t> cursor(p.leak_sink_off.begin(),
                                    p.leak_sink_off.end() - 1);
  for (std::uint32_t row = 0; row < p.leak_cells.size(); ++row) {
    const Program::LeakCell& lc = p.leak_cells[row];
    for (int i = 0; i < lc.nin; ++i)
      p.leak_sink_row[cursor[lc.in[i]]++] = row;
  }

  // Linearised leakage: constants and per-net high-bit weights.
  p.leak_w_aon.assign(nnets, 0.0);
  p.leak_w_gated.assign(nnets, 0.0);
  for (const Program::LeakCell& lc : p.leak_cells) {
    double& konst = lc.gated ? p.leak_const_gated : p.leak_const_aon;
    if (lc.nin == 0) {
      konst += lc.base; // tie cells: state-independent
      continue;
    }
    konst += lc.base * (1.0 - 0.5 * lc.spread);
    const double w = lc.base * lc.spread / double(lc.nin);
    auto& weights = lc.gated ? p.leak_w_gated : p.leak_w_aon;
    for (int i = 0; i < lc.nin; ++i) weights[lc.in[i]] += w;
  }

  return prog;
}

struct ProgramCache {
  std::mutex m;
  // Keyed by library identity + structural digest: equal digests with
  // the same library simulate identically, so one Program serves all.
  std::map<std::pair<const void*, std::uint64_t>,
           std::shared_ptr<const Program>>
      entries;
};

ProgramCache& cache() {
  static ProgramCache c;
  return c;
}

constexpr std::size_t kMaxCachedPrograms = 256;

} // namespace

std::shared_ptr<const Program> get_program(const Netlist& nl) {
  return get_program(nl, structural_digest(nl));
}

std::shared_ptr<const Program> get_program(const Netlist& nl,
                                           std::uint64_t digest) {
  const std::pair<const void*, std::uint64_t> key{&nl.lib(), digest};

  ProgramCache& c = cache();
  const std::lock_guard lock(c.m);
  if (auto it = c.entries.find(key); it != c.entries.end()) {
    SCPG_OBS_COUNT("sim.backend.compiled.program_cache_hit", 1);
    return it->second;
  }
  if (c.entries.size() >= kMaxCachedPrograms) {
    SCPG_OBS_COUNT("sim.backend.compiled.program_cache_clear", 1);
    c.entries.clear();
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto prog = build_program(nl, digest);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  SCPG_OBS_TIMING_HIST("sim.backend.compiled.levelize_ms", ms);
  c.entries.emplace(key, prog);
  return prog;
}

std::size_t program_cache_size() {
  ProgramCache& c = cache();
  const std::lock_guard lock(c.m);
  return c.entries.size();
}

} // namespace scpg::sim::compiled
