#include "sim/compiled/kernel.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sim/compiled/program.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace scpg::sim::compiled {

namespace {

// High-water marks over every program run so far; the worker start hook
// pre-sizes fresh threads' scratch arenas from these.
std::atomic<std::uint64_t> g_hwm_nets{0};
std::atomic<std::uint64_t> g_hwm_flops{0};
std::atomic<std::uint64_t> g_hwm_rows{0};
std::atomic<std::uint64_t> g_hwm_ops{0};

void raise_hwm(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Per-thread reusable storage for the measure path.  A Machine borrows
/// the vectors for the duration of one point and returns them with
/// their (grown) capacity intact, so repeated points on one worker
/// thread allocate nothing after the first.
struct Scratch {
  std::vector<Word> nets, flop_q, captures;
  std::vector<std::uint64_t> xcnt0, xcnt1; ///< per-row 2-bit lane counters
  std::vector<std::uint64_t> xbm;          ///< row bitmap: any lane X
  std::vector<std::uint8_t> op_dirty;
  bool in_use{false};
  ScratchStats stats;

  void presize(std::size_t nnets, std::size_t nflops, std::size_t nrows,
               std::size_t nops) {
    nets.reserve(nnets);
    flop_q.reserve(nflops);
    captures.reserve(nflops);
    xcnt0.reserve(nrows);
    xcnt1.reserve(nrows);
    xbm.reserve(nrows / 64 + 1);
    op_dirty.reserve(nops);
  }

  [[nodiscard]] bool fits(std::size_t nnets, std::size_t nflops,
                          std::size_t nrows, std::size_t nops) const {
    return nets.capacity() >= nnets && flop_q.capacity() >= nflops &&
           captures.capacity() >= nflops && xcnt0.capacity() >= nrows &&
           xcnt1.capacity() >= nrows && op_dirty.capacity() >= nops;
  }
};

Scratch& thread_scratch() {
  static thread_local Scratch s;
  return s;
}

void register_presize_hook() {
  static std::once_flag once;
  std::call_once(once, [] { add_thread_start_hook(&presize_scratch_hook); });
}

} // namespace

ScratchStats scratch_stats() { return thread_scratch().stats; }

void presize_scratch_hook(std::size_t /*worker_index*/) {
  thread_scratch().presize(
      std::size_t(g_hwm_nets.load(std::memory_order_relaxed)),
      std::size_t(g_hwm_flops.load(std::memory_order_relaxed)),
      std::size_t(g_hwm_rows.load(std::memory_order_relaxed)),
      std::size_t(g_hwm_ops.load(std::memory_order_relaxed)));
}

/// Executes a Program over word state.  Functional mode (power off) is
/// the FuncSim-equivalent zero-delay machine; power mode additionally
/// applies the event simulator's per-toggle energy and per-cell leakage
/// rules at settled-state granularity, independently on each of the
/// `nlanes` active lanes (one sweep point per lane).  Per-lane results
/// are bit-identical whatever the lane packing: a lane's transition
/// sequence, restricted from the union settle order, is exactly its own
/// topological order, so its floating-point accumulation never depends
/// on what the other lanes are doing.
class Machine {
public:
  Machine(const Netlist& nl, std::shared_ptr<const Program> prog,
          bool bind_macros, Scratch* scratch, int nlanes = 1)
      : nl_(&nl), prog_(std::move(prog)), scratch_(scratch),
        nlanes_(nlanes) {
    SCPG_REQUIRE(nlanes_ >= 1 && nlanes_ <= 64, "lane count out of range");
    active_ = nlanes_ == 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << nlanes_) - 1;
    if (scratch_ != nullptr) {
      if (scratch_->in_use) {
        scratch_ = nullptr; // nested machine on this thread: own storage
      } else {
        scratch_->in_use = true;
        ++scratch_->stats.acquisitions;
        if (scratch_->fits(prog_->num_nets, prog_->flops.size(),
                           prog_->leak_cells.size(), prog_->ops.size()))
          ++scratch_->stats.reuses;
        swap_storage(*scratch_);
      }
    }
    if (bind_macros) {
      macro_models_.reserve(prog_->macros.size() * std::size_t(nlanes_));
      for (const Program::MacroRef& m : prog_->macros) {
        const Cell& c = nl.cell(CellId{m.cell});
        for (int l = 0; l < nlanes_; ++l)
          macro_models_.push_back(nl.macro_spec(c.macro).make_model());
      }
    } else {
      SCPG_REQUIRE(prog_->macros.empty(),
                   "netlist has macros but the machine was built without "
                   "behavioural models");
    }
    reset();
  }

  ~Machine() {
    if (scratch_ != nullptr) {
      swap_storage(*scratch_);
      scratch_->in_use = false;
    }
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const Netlist& netlist() const { return *nl_; }
  [[nodiscard]] const Program& program() const { return *prog_; }

  void reset() {
    nets_.assign(prog_->num_nets, broadcast(Logic::X));
    flop_q_.assign(prog_->flops.size(), broadcast(Logic::L0));
    captures_.assign(prog_->flops.size(), Word{});
    // Everything is dirty: the first settle is one full levelized pass.
    op_dirty_.assign(prog_->ops.size(), 1);
    ndirty_ = prog_->ops.size();
    first_dirty_ = 0;
    for (auto& m : macro_models_) m->reset();
    power_ = false;
  }

  /// Switches on power accounting (call right after reset, before any
  /// drives — the init below assumes every net still reads X).  The
  /// per-row unknown-input counters start at nin on every active lane;
  /// the linear high-bit sums start at zero (no net is known-high yet).
  void enable_power(const SimConfig& cfg) {
    const TechModel& tech = nl_->lib().tech();
    escale_ = tech.energy_scale(cfg.corner);
    lscale_ = tech.leak_scale(cfg.corner);
    vdd_ = cfg.corner.vdd.v;
    xpen_ = cfg.x_input_leak_penalty;
    const std::size_t rows = prog_->leak_cells.size();
    xcnt0_.assign(rows, 0);
    xcnt1_.assign(rows, 0);
    xbm_.assign(rows / 64 + 1, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::uint8_t nin = prog_->leak_cells[r].nin;
      if (nin == 0) continue;
      if (nin & 1) xcnt0_[r] = active_;
      if (nin & 2) xcnt1_[r] = active_;
      xbm_[r >> 6] |= std::uint64_t(1) << (r & 63);
    }
    s_aon_.fill(0.0);
    s_gated_.fill(0.0);
    sw_cap_.fill(0.0);
    int_e_.fill(0.0);
    mac_e_.fill(0.0);
    asleep_ = 0;
    measuring_ = false;
    power_ = true;
  }

  void set_measuring(bool on) { measuring_ = on; }

  [[nodiscard]] Word net(std::uint32_t n) const { return nets_[n]; }

  void set_net(std::uint32_t n, Word w) {
    Word& slot = nets_[n];
    if (slot == w) return;
    mark_fanout_dirty(n);
    if (power_) {
      const Word old = slot;
      // Linear leakage: a v-bit flip is exactly a known-high status
      // change (v == 1 iff known-high), so the per-lane weighted sums
      // track every row's linear term in O(popcount) per changed net.
      const std::uint64_t rise = ~old.v & w.v & active_;
      const std::uint64_t fall = old.v & ~w.v & active_;
      if (rise | fall) {
        const double wa = prog_->leak_w_aon[n];
        const double wg = prog_->leak_w_gated[n];
        if (wa != 0.0 || wg != 0.0) {
          for (std::uint64_t m = rise; m != 0; m &= m - 1) {
            const int l = std::countr_zero(m);
            s_aon_[l] += wa;
            s_gated_[l] += wg;
          }
          for (std::uint64_t m = fall; m != 0; m &= m - 1) {
            const int l = std::countr_zero(m);
            s_aon_[l] -= wa;
            s_gated_[l] -= wg;
          }
        }
        if (measuring_) {
          std::uint64_t tog = (old.v ^ w.v) & ~old.x & ~w.x & active_;
          if (tog != 0) {
            const double hc = prog_->half_cap[n];
            const double di = prog_->driver_internal[n];
            const double dm = prog_->driver_macro_e[n];
            for (; tog != 0; tog &= tog - 1) {
              const int l = std::countr_zero(tog);
              sw_cap_[l] += hc;
              int_e_[l] += di;
              mac_e_[l] += dm;
            }
          }
        }
      }
      // X-plane transitions maintain the per-row 2-bit unknown-input
      // counters (the CSR lists a row once per input occurrence, so
      // multiplicity is counted; nin <= 3 keeps 2 bits enough).
      const std::uint64_t dx = (old.x ^ w.x) & active_;
      if (dx != 0) {
        const std::uint64_t xr = dx & w.x;   // lanes that became unknown
        const std::uint64_t xf = dx & old.x; // lanes that became known
        for (std::uint32_t k = prog_->leak_sink_off[n];
             k < prog_->leak_sink_off[n + 1]; ++k) {
          const std::uint32_t row = prog_->leak_sink_row[k];
          if (xr != 0) {
            const std::uint64_t carry = xcnt0_[row] & xr;
            xcnt0_[row] ^= xr;
            xcnt1_[row] ^= carry;
            xbm_[row >> 6] |= std::uint64_t(1) << (row & 63);
          }
          if (xf != 0) {
            const std::uint64_t borrow = ~xcnt0_[row] & xf;
            xcnt0_[row] ^= xf;
            xcnt1_[row] ^= borrow;
          }
        }
      }
    }
    slot = w;
  }

  /// One zero-delay settle: flop Q pass, then the levelized program —
  /// incrementally.  Only ops behind a changed net (set_net marks the
  /// fanout CSR) are re-evaluated; because `ops` is fanin-before-fanout,
  /// a single forward scan over the dirty set reaches the fixed point.
  void settle() {
    const auto& flops = prog_->flops;
    for (std::size_t i = 0; i < flops.size(); ++i) {
      const Program::FlopRef& f = flops[i];
      Word q = flop_q_[i];
      if (f.has_reset) {
        const Word rn = nets_[f.rn];
        const std::uint64_t rn0 = ~rn.v & ~rn.x; // lanes where RN == 0
        q.v &= ~rn0;
        q.x &= ~rn0;
      }
      set_net(f.q, q);
    }
    if (ndirty_ == 0) return;
    Word in[3];
    const auto& ops = prog_->ops;
    for (std::size_t oi = first_dirty_; oi < ops.size(); ++oi) {
      if (!op_dirty_[oi]) continue;
      op_dirty_[oi] = 0;
      --ndirty_;
      const Program::Op& op = ops[oi];
      if (op.macro >= 0) {
        eval_macro(std::size_t(op.macro));
      } else {
        for (int j = 0; j < op.nin; ++j) in[j] = nets_[op.in[j]];
        set_net(op.out, eval_word(op.kind, in));
      }
      if (ndirty_ == 0) break;
    }
    first_dirty_ = ops.size();
  }

  /// Rising-edge state update (no settle): captures are computed from
  /// the current settled state, clocked macros see that same state, then
  /// flop state is replaced — FuncSim::clock() ordering exactly.
  void clock_edge() {
    const auto& flops = prog_->flops;
    for (std::size_t i = 0; i < flops.size(); ++i) {
      const Program::FlopRef& f = flops[i];
      Word d = nets_[f.d];
      if (f.has_reset) {
        const Word rn = nets_[f.rn];
        const std::uint64_t rn0 = ~rn.v & ~rn.x;
        d.v &= ~rn0;
        d.x &= ~rn0;
      }
      captures_[i] = d;
    }
    for (std::size_t mi = 0; mi < prog_->macros.size(); ++mi) {
      const Program::MacroRef& m = prog_->macros[mi];
      if (!m.has_clock) continue;
      Logic min[64];
      for (int l = 0; l < nlanes_; ++l) {
        for (std::size_t i = 0; i < m.ins.size(); ++i)
          min[i] = get_lane(nets_[m.ins[i]], l);
        macro_models_[mi * std::size_t(nlanes_) + std::size_t(l)]->clock_edge(
            std::span<const Logic>(min, m.ins.size()));
      }
      // The models' internal state changed: outputs must be recomputed
      // even though no input net toggled.
      mark_op_dirty(m.op);
    }
    for (std::size_t i = 0; i < flops.size(); ++i) flop_q_[i] = captures_[i];
  }

  /// Fills per-lane leakage power (scaled, W) for lanes [0, nlanes):
  /// the linear constant+sum term, plus an exact correction for every
  /// row that currently has unknown inputs — matching the event
  /// simulator's known-denominator formula and x-input penalty.  Rows
  /// are visited in row-index order regardless of how they got flagged,
  /// so the floating-point result per lane never depends on settle
  /// history or on what the other lanes are doing.
  void sample_leak(double* paon, double* pgated) {
    for (int l = 0; l < nlanes_; ++l) {
      paon[l] = prog_->leak_const_aon + s_aon_[l];
      pgated[l] = prog_->leak_const_gated + s_gated_[l];
    }
    const auto& cells = prog_->leak_cells;
    for (std::size_t wi = 0; wi < xbm_.size(); ++wi) {
      std::uint64_t bm = xbm_[wi];
      for (; bm != 0; bm &= bm - 1) {
        const int bit = std::countr_zero(bm);
        const std::size_t row = wi * 64 + std::size_t(bit);
        std::uint64_t xmask = (xcnt0_[row] | xcnt1_[row]) & active_;
        if (xmask == 0) { // every lane fully known again: unflag lazily
          xbm_[wi] &= ~(std::uint64_t(1) << bit);
          continue;
        }
        const Program::LeakCell& lc = cells[row];
        const double lin_c = lc.base * (1.0 - 0.5 * lc.spread);
        const double lin_w = lc.base * lc.spread / double(lc.nin);
        for (; xmask != 0; xmask &= xmask - 1) {
          const int l = std::countr_zero(xmask);
          int known = 0, high = 0;
          for (int i = 0; i < lc.nin; ++i) {
            const Word& nw = nets_[lc.in[i]];
            if (((nw.x >> l) & 1) == 0) {
              ++known;
              high += int((nw.v >> l) & 1);
            }
          }
          double exact = lc.base;
          if (known > 0)
            exact = lc.base *
                    (1.0 + lc.spread * (double(high) / double(known) - 0.5));
          if (lc.xpen && xpen_ > 1.0) exact *= xpen_;
          // The linear sums already carry this row's v-bit term (an X
          // lane's v-bit is 0, so the sum counted exactly `high`).
          const double lin = lin_c + lin_w * double(high);
          (lc.gated ? pgated : paon)[l] += exact - lin;
        }
      }
    }
    for (int l = 0; l < nlanes_; ++l) {
      paon[l] = lscale_ * (prog_->macro_leak + paon[l]);
      pgated[l] *= lscale_;
    }
  }

  /// Latches lanes whose header sleep input reads 1 — those runs have
  /// left the compiled model (only the event simulator knows rail
  /// decay/recharge timing) and must report nullopt.
  void poll_asleep() {
    for (const std::uint32_t n : prog_->header_in_nets)
      asleep_ |= nets_[n].v & active_;
  }

  [[nodiscard]] std::uint64_t asleep() const { return asleep_; }
  [[nodiscard]] double switching_j(int l) const {
    return sw_cap_[std::size_t(l)] * vdd_ * vdd_;
  }
  [[nodiscard]] double internal_j(int l) const {
    return int_e_[std::size_t(l)] * escale_;
  }
  [[nodiscard]] double macro_j(int l) const {
    return mac_e_[std::size_t(l)] * escale_;
  }

private:
  void swap_storage(Scratch& s) {
    std::swap(nets_, s.nets);
    std::swap(flop_q_, s.flop_q);
    std::swap(captures_, s.captures);
    std::swap(xcnt0_, s.xcnt0);
    std::swap(xcnt1_, s.xcnt1);
    std::swap(xbm_, s.xbm);
    std::swap(op_dirty_, s.op_dirty);
  }

  void mark_op_dirty(std::uint32_t oi) {
    if (op_dirty_[oi]) return;
    op_dirty_[oi] = 1;
    ++ndirty_;
    if (oi < first_dirty_) first_dirty_ = oi;
  }

  void mark_fanout_dirty(std::uint32_t n) {
    for (std::uint32_t k = prog_->op_fanout_off[n];
         k < prog_->op_fanout_off[n + 1]; ++k)
      mark_op_dirty(prog_->op_fanout_op[k]);
  }

  void eval_macro(std::size_t mi) {
    const Program::MacroRef& m = prog_->macros[mi];
    Logic min[64];
    Logic mout[64];
    if (nlanes_ == 1) {
      for (std::size_t i = 0; i < m.ins.size(); ++i)
        min[i] = get_lane(nets_[m.ins[i]], 0);
      macro_models_[mi]->eval(std::span<const Logic>(min, m.ins.size()),
                              std::span<Logic>(mout, m.outs.size()));
      for (std::size_t i = 0; i < m.outs.size(); ++i)
        set_net(m.outs[i], broadcast(mout[i]));
      return;
    }
    // One model instance per lane: each lane's macro sees only its own
    // inputs, so lane results are independent of the batch composition.
    Word out[64];
    for (std::size_t i = 0; i < m.outs.size(); ++i) out[i] = nets_[m.outs[i]];
    for (int l = 0; l < nlanes_; ++l) {
      for (std::size_t i = 0; i < m.ins.size(); ++i)
        min[i] = get_lane(nets_[m.ins[i]], l);
      macro_models_[mi * std::size_t(nlanes_) + std::size_t(l)]->eval(
          std::span<const Logic>(min, m.ins.size()),
          std::span<Logic>(mout, m.outs.size()));
      for (std::size_t i = 0; i < m.outs.size(); ++i)
        set_lane(out[i], l, mout[i]);
    }
    for (std::size_t i = 0; i < m.outs.size(); ++i) set_net(m.outs[i], out[i]);
  }

  const Netlist* nl_;
  std::shared_ptr<const Program> prog_;
  Scratch* scratch_{nullptr};
  int nlanes_{1};
  std::uint64_t active_{1}; // low-nlanes lane mask
  std::vector<std::unique_ptr<MacroModel>> macro_models_; // [macro*nlanes+lane]

  std::vector<Word> nets_;
  std::vector<Word> flop_q_;   // flop state, by FlopRef index
  std::vector<Word> captures_;
  std::vector<std::uint8_t> op_dirty_; // pending re-evaluation, by op idx
  std::size_t ndirty_{0};
  std::size_t first_dirty_{0}; // lowest possibly-dirty op index

  // Power accounting, per lane.
  bool power_{false};
  bool measuring_{false};
  double escale_{1}, lscale_{1}, vdd_{0}, xpen_{1};
  std::array<double, 64> s_aon_{}, s_gated_{}; // linear leak high-bit sums
  std::array<double, 64> sw_cap_{}, int_e_{}, mac_e_{}; // raw energy sums
  std::vector<std::uint64_t> xcnt0_, xcnt1_; // per-row/lane X-input count
  std::vector<std::uint64_t> xbm_;           // rows with any lane X
  std::uint64_t asleep_{0};
};

namespace {

// --- measure-path stimulus, resolved to net ids once per point ---

struct ResolvedStimulus {
  StimulusSpec::Kind kind{StimulusSpec::Kind::None};
  // RandomBuses / Vectors: per bus, the nets of bits [0, width).
  std::vector<std::vector<std::uint32_t>> bus_nets;
  // RandomInputs: data-input nets in port order (skip rules applied).
  std::vector<std::uint32_t> input_nets;
  double activity{1.0};
  const StimulusSpec* spec{nullptr};
};

ResolvedStimulus resolve_stimulus(const Netlist& nl,
                                  const MeasureRequest& rq) {
  ResolvedStimulus r;
  if (rq.stimulus == nullptr) return r;
  const StimulusSpec& st = *rq.stimulus;
  r.kind = st.kind();
  r.spec = &st;
  switch (st.kind()) {
  case StimulusSpec::Kind::None:
    break;
  case StimulusSpec::Kind::Closure:
    throw PreconditionError(
        "compiled backend cannot run an opaque stimulus closure");
  case StimulusSpec::Kind::RandomBuses:
  case StimulusSpec::Kind::Vectors:
    for (const BusRef& b : st.buses()) {
      std::vector<std::uint32_t> nets;
      nets.reserve(std::size_t(b.width));
      for (int i = 0; i < b.width; ++i)
        nets.push_back(
            nl.port_net(b.name + "[" + std::to_string(i) + "]").v);
      r.bus_nets.push_back(std::move(nets));
    }
    break;
  case StimulusSpec::Kind::RandomInputs: {
    r.activity = st.activity();
    for (const Port& p : nl.ports()) {
      if (p.dir != PortDir::In) continue;
      if (p.name == st.clock_port() || p.name == "override_n" ||
          p.name == "rst_n")
        continue;
      r.input_nets.push_back(p.net.v);
    }
    break;
  }
  }
  return r;
}

/// Applies one cycle of stimulus across all lanes.  Lane l consumes
/// rngs[l] in exactly the order/count of StimulusSpec::apply on the
/// event backend, so each lane's stream is bit-identical to a scalar
/// run of that lane's point.  Only the low rngs.size() lanes are
/// driven; the rest keep their previous values.
void apply_stimulus(Machine& m, const ResolvedStimulus& st, int cycle,
                    std::span<Rng> rngs) {
  const int nlanes = int(rngs.size());
  const std::uint64_t active =
      nlanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nlanes) - 1;
  switch (st.kind) {
  case StimulusSpec::Kind::None:
  case StimulusSpec::Kind::Closure:
    return;
  case StimulusSpec::Kind::RandomBuses:
    for (const auto& nets : st.bus_nets) {
      std::uint64_t lane_vals[64];
      for (int l = 0; l < nlanes; ++l)
        lane_vals[l] = rngs[std::size_t(l)].bits(int(nets.size()));
      for (std::size_t i = 0; i < nets.size(); ++i) {
        std::uint64_t bits = 0;
        for (int l = 0; l < nlanes; ++l)
          bits |= ((lane_vals[l] >> i) & 1) << l;
        Word w = m.net(nets[i]);
        w.v = (w.v & ~active) | bits;
        w.x &= ~active;
        m.set_net(nets[i], w);
      }
    }
    return;
  case StimulusSpec::Kind::RandomInputs:
    for (const std::uint32_t n : st.input_nets) {
      std::uint64_t drive = 0, val = 0;
      for (int l = 0; l < nlanes; ++l) {
        // Cycle 0 drives unconditionally WITHOUT an activity draw,
        // matching the event backend's short-circuit exactly.
        if (cycle == 0 || rngs[std::size_t(l)].uniform() < st.activity) {
          drive |= std::uint64_t{1} << l;
          if (rngs[std::size_t(l)].bits(1)) val |= std::uint64_t{1} << l;
        }
      }
      if (drive == 0) continue;
      Word w = m.net(n);
      w.v = (w.v & ~drive) | val;
      w.x &= ~drive;
      m.set_net(n, w);
    }
    return;
  case StimulusSpec::Kind::Vectors: {
    const auto& words = st.spec->words();
    const auto& w = words[std::size_t(cycle + 1) % words.size()];
    for (std::size_t b = 0; b < st.bus_nets.size(); ++b)
      for (std::size_t i = 0; i < st.bus_nets[b].size(); ++i)
        m.set_net(st.bus_nets[b][i], broadcast(from_bool((w[b] >> i) & 1)));
    return;
  }
  }
}

class CompiledBackend final : public SimBackend {
public:
  [[nodiscard]] std::string_view name() const override { return "compiled"; }

  [[nodiscard]] std::string
  ineligible_reason(const MeasureRequest& rq) const override {
    if (rq.nl == nullptr) return "no netlist";
    if (rq.stimulus && !rq.stimulus->declarative())
      return "opaque stimulus closure (event backend only)";
    if (rq.setup && !rq.setup->declarative())
      return "opaque setup closure (event backend only)";
    const Netlist& nl = *rq.nl;
    bool has_gated = false;
    for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
      const CellId id{ci};
      if (nl.kind_of(id) != CellKind::Header &&
          nl.cell(id).domain == Domain::Gated) {
        has_gated = true;
        break;
      }
    }
    if (has_gated) {
      if (!rq.override_gating)
        return "engaged sub-clock gating (per-event rail timing)";
      if (!nl.find_port(rq.override_port).valid())
        return "gated domain without an override port";
    }
    for (const MacroSpec& m : nl.macro_specs())
      if (m.num_inputs > 64 || m.num_outputs > 64)
        return "macro wider than 64 pins";
    return {};
  }

  [[nodiscard]] std::optional<PowerTally>
  measure(const MeasureRequest& rq) const override {
    // A scalar measure IS a group of one: same code path, so lane
    // packing can never change a point's result.
    std::optional<PowerTally> out;
    measure_group(std::span<const MeasureRequest>(&rq, 1),
                  std::span<std::optional<PowerTally>>(&out, 1));
    return out;
  }

  void measure_group(
      std::span<const MeasureRequest> reqs,
      std::span<std::optional<PowerTally>> out) const override {
    SCPG_REQUIRE(!reqs.empty() && reqs.size() <= 64,
                 "measure group must hold 1..64 requests");
    SCPG_REQUIRE(out.size() == reqs.size(),
                 "measure group output span size mismatch");
    const MeasureRequest& rq = reqs[0];
    SCPG_REQUIRE(rq.nl != nullptr, "measure request needs a netlist");
    SCPG_REQUIRE(rq.f.v > 0, "frequency must be positive");
    for (std::size_t i = 1; i < reqs.size(); ++i) {
      const MeasureRequest& r = reqs[i];
      SCPG_REQUIRE(
          r.nl == rq.nl && r.f.v == rq.f.v && r.duty_high == rq.duty_high &&
              r.override_gating == rq.override_gating &&
              r.warmup == rq.warmup && r.cycles == rq.cycles &&
              r.clock_port == rq.clock_port &&
              r.override_port == rq.override_port &&
              r.stimulus == rq.stimulus && r.setup == rq.setup &&
              r.cfg.corner.vdd.v == rq.cfg.corner.vdd.v &&
              r.cfg.corner.temp_c == rq.cfg.corner.temp_c &&
              r.cfg.x_input_leak_penalty == rq.cfg.x_input_leak_penalty,
          "measure group must differ only in (seed, digest)");
    }
    const Netlist& nl = *rq.nl;
    register_presize_hook();

    // The engine passes the structural digest it already computed at
    // sweep setup; only ad-hoc callers pay for hashing here.
    auto prog = rq.nl_digest != 0 ? get_program(nl, rq.nl_digest)
                                  : get_program(nl);
    raise_hwm(g_hwm_nets, prog->num_nets);
    raise_hwm(g_hwm_flops, prog->flops.size());
    raise_hwm(g_hwm_rows, prog->leak_cells.size());
    raise_hwm(g_hwm_ops, prog->ops.size());

    const NetId clk = nl.port_net(rq.clock_port);
    const ResolvedStimulus stim = resolve_stimulus(nl, rq);
    const int nlanes = int(reqs.size());

    Machine mach(nl, prog, /*bind_macros=*/true, &thread_scratch(), nlanes);
    mach.enable_power(rq.cfg);

    // t = 0: clock low, gating override, declarative setup drives —
    // identical across the group, so broadcast to every lane.
    mach.set_net(clk.v, broadcast(Logic::L0));
    if (const PortId ov = nl.find_port(rq.override_port); ov.valid())
      mach.set_net(nl.port(ov).net.v,
                   broadcast(rq.override_gating ? Logic::L0 : Logic::L1));
    if (rq.setup)
      for (const SetupSpec::Drive& d : rq.setup->drive_list())
        mach.set_net(nl.port_net(d.port).v, broadcast(d.value));
    mach.settle();
    mach.poll_asleep();

    const SimTime T = to_fs(period(rq.f));
    const SimTime high_fs = SimTime(double(T) * rq.duty_high);
    const SimTime low_fs = T - high_fs;
    const double dt_high_s = double(high_fs) * 1e-15;
    const double dt_low_s = double(low_fs) * 1e-15;

    // One independent RNG stream per lane, keyed exactly as the scalar
    // and event paths key theirs.
    std::vector<Rng> rngs;
    rngs.reserve(reqs.size());
    for (const MeasureRequest& r : reqs)
      rngs.push_back(Rng::stream(r.seed, r.digest));

    std::array<double, 64> leak_aon_j{}, leak_gated_j{};
    std::array<double, 64> paon{}, pgated{};

    const int total = rq.warmup + rq.cycles;
    for (int cycle = 0; cycle < total; ++cycle) {
      const bool measured = cycle >= rq.warmup;
      mach.set_measuring(measured);
      // Rising edge: captures and clocked macros see the settled
      // pre-edge state; stimulus for this cycle lands afterwards, to be
      // captured by the NEXT edge (the event backend drives it 1 ns
      // after the edge for the same reason).
      mach.clock_edge();
      mach.set_net(clk.v, broadcast(Logic::L1));
      apply_stimulus(mach, stim, cycle, rngs);
      mach.settle();
      mach.poll_asleep();
      if (measured) {
        mach.sample_leak(paon.data(), pgated.data());
        for (int l = 0; l < nlanes; ++l) {
          leak_aon_j[std::size_t(l)] += paon[std::size_t(l)] * dt_high_s;
          leak_gated_j[std::size_t(l)] += pgated[std::size_t(l)] * dt_high_s;
        }
      }
      // Falling edge.
      mach.set_net(clk.v, broadcast(Logic::L0));
      mach.settle();
      mach.poll_asleep();
      if (measured) {
        mach.sample_leak(paon.data(), pgated.data());
        for (int l = 0; l < nlanes; ++l) {
          leak_aon_j[std::size_t(l)] += paon[std::size_t(l)] * dt_low_s;
          leak_gated_j[std::size_t(l)] += pgated[std::size_t(l)] * dt_low_s;
        }
      }
    }

    const auto window = from_fs(T * SimTime(rq.cycles));
    for (int l = 0; l < nlanes; ++l) {
      if ((mach.asleep() >> l) & 1) {
        out[std::size_t(l)] = std::nullopt; // dynamic fallback lane
        continue;
      }
      PowerTally t;
      t.switching = Energy{mach.switching_j(l)};
      t.internal = Energy{mach.internal_j(l)};
      t.macro_access = Energy{mach.macro_j(l)};
      t.leakage_aon = Energy{leak_aon_j[std::size_t(l)]};
      t.leakage_gated = Energy{leak_gated_j[std::size_t(l)]};
      t.window = window;
      out[std::size_t(l)] = t;
    }
  }
};

// --- shared helpers for the functional facades ---

NetId input_port_net(const Netlist& nl, std::string_view port) {
  const PortId p = nl.find_port(port);
  SCPG_REQUIRE(p.valid(), "unknown input port: " + std::string(port));
  SCPG_REQUIRE(nl.port(p).dir == PortDir::In,
               "set_input on an output port: " + std::string(port));
  return nl.port(p).net;
}

NetId bus_bit_net(const Netlist& nl, std::string_view name, int i) {
  const std::string pin = std::string(name) + "[" + std::to_string(i) + "]";
  // Bus bits may be named as ports (outputs) or as plain nets.
  NetId net;
  if (const PortId p = nl.find_port(pin); p.valid())
    net = nl.port(p).net;
  else
    net = nl.find_net(pin);
  SCPG_REQUIRE(net.valid(), "unknown bus bit: " + pin);
  return net;
}

} // namespace

CompiledSim::CompiledSim(const Netlist& nl)
    : m_(std::make_unique<Machine>(nl, get_program(nl),
                                   /*bind_macros=*/true, nullptr)) {}
CompiledSim::~CompiledSim() = default;
CompiledSim::CompiledSim(CompiledSim&&) noexcept = default;
CompiledSim& CompiledSim::operator=(CompiledSim&&) noexcept = default;

const Netlist& CompiledSim::netlist() const { return m_->netlist(); }

void CompiledSim::reset() { m_->reset(); }

void CompiledSim::set_input(std::string_view port, Logic v) {
  m_->set_net(input_port_net(m_->netlist(), port).v, broadcast(v));
}

void CompiledSim::set_input_bus(std::string_view name, std::uint64_t value,
                                int width) {
  for (int i = 0; i < width; ++i) {
    const std::string pin = std::string(name) + "[" + std::to_string(i) + "]";
    set_input(pin, from_bool((value >> i) & 1));
  }
}

void CompiledSim::eval() { m_->settle(); }

void CompiledSim::clock() {
  m_->settle();
  m_->clock_edge();
  m_->settle();
}

Logic CompiledSim::output(std::string_view port) const {
  const PortId p = m_->netlist().find_port(port);
  SCPG_REQUIRE(p.valid(), "unknown port: " + std::string(port));
  return get_lane(m_->net(m_->netlist().port(p).net.v), 0);
}

Logic CompiledSim::net_value(NetId id) const {
  SCPG_REQUIRE(id.v < m_->program().num_nets, "net id out of range");
  return get_lane(m_->net(id.v), 0);
}

std::uint64_t CompiledSim::read_bus(std::string_view name, int width) const {
  SCPG_REQUIRE(width >= 1 && width <= 64, "bus width out of range");
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    const Logic b =
        get_lane(m_->net(bus_bit_net(m_->netlist(), name, i).v), 0);
    SCPG_REQUIRE(is_known(b), "bus bit is X/Z: " + std::string(name) + "[" +
                                  std::to_string(i) + "]");
    if (b == Logic::L1) v |= std::uint64_t(1) << i;
  }
  return v;
}

BatchSim::BatchSim(const Netlist& nl)
    : m_(std::make_unique<Machine>(nl, get_program(nl),
                                   /*bind_macros=*/false, nullptr,
                                   /*nlanes=*/64)) {}
BatchSim::~BatchSim() = default;
BatchSim::BatchSim(BatchSim&&) noexcept = default;
BatchSim& BatchSim::operator=(BatchSim&&) noexcept = default;

const Netlist& BatchSim::netlist() const { return m_->netlist(); }

void BatchSim::reset() { m_->reset(); }

void BatchSim::set_input_word(std::string_view port, Word w) {
  SCPG_REQUIRE((w.v & w.x) == 0, "malformed word: v and x overlap");
  m_->set_net(input_port_net(m_->netlist(), port).v, w);
}

void BatchSim::set_input_lane(int lane, std::string_view port, Logic v) {
  SCPG_REQUIRE(lane >= 0 && lane < 64, "lane out of range");
  const std::uint32_t n = input_port_net(m_->netlist(), port).v;
  Word w = m_->net(n);
  set_lane(w, lane, v);
  m_->set_net(n, w);
}

void BatchSim::set_input_bus_lane(int lane, std::string_view name,
                                  std::uint64_t value, int width) {
  for (int i = 0; i < width; ++i) {
    const std::string pin = std::string(name) + "[" + std::to_string(i) + "]";
    set_input_lane(lane, pin, from_bool((value >> i) & 1));
  }
}

void BatchSim::eval() { m_->settle(); }

void BatchSim::clock() {
  m_->settle();
  m_->clock_edge();
  m_->settle();
}

Word BatchSim::output_word(std::string_view port) const {
  const PortId p = m_->netlist().find_port(port);
  SCPG_REQUIRE(p.valid(), "unknown port: " + std::string(port));
  return m_->net(m_->netlist().port(p).net.v);
}

Logic BatchSim::output_lane(int lane, std::string_view port) const {
  SCPG_REQUIRE(lane >= 0 && lane < 64, "lane out of range");
  return get_lane(output_word(port), lane);
}

std::uint64_t BatchSim::read_bus_lane(int lane, std::string_view name,
                                      int width) const {
  SCPG_REQUIRE(lane >= 0 && lane < 64, "lane out of range");
  SCPG_REQUIRE(width >= 1 && width <= 64, "bus width out of range");
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    const Logic b = get_lane(
        m_->net(bus_bit_net(m_->netlist(), name, i).v), lane);
    SCPG_REQUIRE(is_known(b), "bus bit is X/Z: " + std::string(name) + "[" +
                                  std::to_string(i) + "]");
    if (b == Logic::L1) v |= std::uint64_t(1) << i;
  }
  return v;
}

} // namespace scpg::sim::compiled

namespace scpg::sim {

const SimBackend& compiled_backend() {
  static const compiled::CompiledBackend backend;
  return backend;
}

} // namespace scpg::sim
