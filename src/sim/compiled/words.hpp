// Bit-parallel 4-state logic over 64-lane words.
//
// Each net carries two planes: `v` (value) and `x` (unknown).  Lane l of
// a word pair encodes one independent 4-state value:
//
//   (v=0, x=0) -> 0      (v=1, x=0) -> 1      (v=0, x=1) -> X
//
// Z never exists inside the compiled machine: a floating CMOS input
// reads as unknown, so encode() folds Z into X exactly like the norm()
// step at the top of eval_cell() (tech/logic.cpp).  The invariant
// `v & x == 0` holds for every well-formed word; all operators below
// preserve it.
//
// Every operator is the exact word-parallel counterpart of the scalar
// 4-state primitives in tech/logic.cpp — the unit tests exhaustively
// compare eval_word() against eval_cell() for every combinational cell
// kind over every input combination (including Z) on all 64 lanes.
#pragma once

#include <cstdint>

#include "tech/logic.hpp"
#include "util/error.hpp"

namespace scpg::sim::compiled {

struct Word {
  std::uint64_t v{0};
  std::uint64_t x{0};

  bool operator==(const Word&) const = default;
};

/// All 64 lanes hold `l` (Z folds to X).
[[nodiscard]] inline Word broadcast(Logic l) {
  switch (l) {
  case Logic::L0: return {0, 0};
  case Logic::L1: return {~std::uint64_t{0}, 0};
  case Logic::X:
  case Logic::Z: return {0, ~std::uint64_t{0}};
  }
  return {0, ~std::uint64_t{0}};
}

inline void set_lane(Word& w, int lane, Logic l) {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  w.v &= ~bit;
  w.x &= ~bit;
  if (l == Logic::L1)
    w.v |= bit;
  else if (l != Logic::L0)
    w.x |= bit; // X and Z
}

[[nodiscard]] inline Logic get_lane(const Word& w, int lane) {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  if (w.x & bit) return Logic::X;
  return (w.v & bit) ? Logic::L1 : Logic::L0;
}

// --- primitives (counterparts of l_not / l_and / l_or / l_xor) ---

[[nodiscard]] inline Word w_not(Word a) {
  return {~a.v & ~a.x, a.x};
}

[[nodiscard]] inline Word w_and(Word a, Word b) {
  // 0 dominates: the output is known-0 whenever either input is 0.
  const std::uint64_t a0 = ~a.v & ~a.x;
  const std::uint64_t b0 = ~b.v & ~b.x;
  return {a.v & b.v, (a.x | b.x) & ~(a0 | b0)};
}

[[nodiscard]] inline Word w_or(Word a, Word b) {
  // 1 dominates.
  return {a.v | b.v, (a.x | b.x) & ~(a.v | b.v)};
}

[[nodiscard]] inline Word w_xor(Word a, Word b) {
  const std::uint64_t x = a.x | b.x;
  return {(a.v ^ b.v) & ~x, x};
}

[[nodiscard]] inline Word w_mux(Word a, Word b, Word s) {
  // Y = S ? B : A; unknown select is known only where A == B and known.
  const std::uint64_t s0 = ~s.v & ~s.x;
  const std::uint64_t a0 = ~a.v & ~a.x;
  const std::uint64_t b0 = ~b.v & ~b.x;
  return {(s0 & a.v) | (s.v & b.v) | (s.x & a.v & b.v),
          (s0 & a.x) | (s.v & b.x) | (s.x & ~((a.v & b.v) | (a0 & b0)))};
}

[[nodiscard]] inline Word w_isolo(Word a, Word n) {
  // inputs {A, NISO}; NISO low clamps to 0; unknown NISO is 0 only where
  // A is already 0.
  const std::uint64_t a0 = ~a.v & ~a.x;
  return {n.v & a.v, (n.v & a.x) | (n.x & ~a0)};
}

[[nodiscard]] inline Word w_isohi(Word a, Word n) {
  // NISO low clamps to 1; unknown NISO is 1 only where A is already 1.
  const std::uint64_t n0 = ~n.v & ~n.x;
  return {n0 | ((n.v | n.x) & a.v), (n.v & a.x) | (n.x & ~a.v)};
}

[[nodiscard]] inline Word w_tiehi() { return {~std::uint64_t{0}, 0}; }
[[nodiscard]] inline Word w_tielo() { return {0, 0}; }

/// Evaluates a combinational cell kind over packed lanes; the exact
/// word-parallel counterpart of eval_cell().  `in` must hold
/// kind_num_inputs(k) words.
[[nodiscard]] inline Word eval_word(CellKind k, const Word* in) {
  switch (k) {
  case CellKind::Inv: return w_not(in[0]);
  case CellKind::Buf:
  case CellKind::RetBal: return in[0];
  case CellKind::Nand2: return w_not(w_and(in[0], in[1]));
  case CellKind::Nand3: return w_not(w_and(w_and(in[0], in[1]), in[2]));
  case CellKind::Nor2: return w_not(w_or(in[0], in[1]));
  case CellKind::Nor3: return w_not(w_or(w_or(in[0], in[1]), in[2]));
  case CellKind::And2: return w_and(in[0], in[1]);
  case CellKind::Or2: return w_or(in[0], in[1]);
  case CellKind::Xor2: return w_xor(in[0], in[1]);
  case CellKind::Xnor2: return w_not(w_xor(in[0], in[1]));
  case CellKind::Aoi21: return w_not(w_or(w_and(in[0], in[1]), in[2]));
  case CellKind::Oai21: return w_not(w_and(w_or(in[0], in[1]), in[2]));
  case CellKind::Mux2: return w_mux(in[0], in[1], in[2]);
  case CellKind::IsoLo: return w_isolo(in[0], in[1]);
  case CellKind::IsoHi: return w_isohi(in[0], in[1]);
  case CellKind::TieHi: return w_tiehi();
  case CellKind::TieLo: return w_tielo();
  case CellKind::Dff:
  case CellKind::DffR:
  case CellKind::Header:
  case CellKind::Macro:
    break;
  }
  throw PreconditionError("eval_word on a non-combinational cell kind");
}

} // namespace scpg::sim::compiled
