// Compiled levelized bit-parallel simulation kernel.
//
// The measure-path kernel executes a cached Program (program.hpp) over
// SoA word state: two 64-bit planes per net, 64 independent lanes per
// word (words.hpp).  Zero-delay semantics — combinational logic settles
// instantly in topological order, exactly like FuncSim — with the event
// simulator's power accounting rules applied at settled-state
// granularity (see DESIGN.md §13 for the equivalence contract and the
// glitch-energy caveat).
//
// Three consumers:
//  * compiled_backend() — the SimBackend the sweep engine dispatches to
//    (lane 0, macro-capable, full power tally).
//  * CompiledSim — a FuncSim-shaped functional facade (lane 0) used by
//    the fuzz diff-sim oracle's backend-divergence run and by tests.
//  * BatchSim — 64 independent stimulus lanes per pass (macro-free
//    netlists), the bit-parallel throughput configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "sim/backend.hpp"
#include "sim/compiled/words.hpp"

namespace scpg::sim::compiled {

class Machine;

/// Per-thread scratch-arena statistics (eviction-gauge-style proof that
/// repeated points on one thread re-use storage instead of
/// re-allocating).  Counts are per calling thread.
struct ScratchStats {
  std::size_t acquisitions{0}; ///< measure runs that borrowed the arena
  std::size_t reuses{0};       ///< borrows fully served from capacity
};
[[nodiscard]] ScratchStats scratch_stats();

/// parallel_map worker-thread start hook: pre-sizes this thread's
/// scratch arena to the high-water mark of every program seen so far,
/// so a worker's first point doesn't pay the allocation either.
/// Registered with add_thread_start_hook() on first backend use.
void presize_scratch_hook(std::size_t worker_index);

/// FuncSim-shaped functional interface over the compiled program:
/// zero-delay settle, capture-all clock(), lane 0 only, macros
/// supported.  Inputs persist across cycles until re-driven.
class CompiledSim {
public:
  explicit CompiledSim(const Netlist& nl);
  ~CompiledSim();
  CompiledSim(CompiledSim&&) noexcept;
  CompiledSim& operator=(CompiledSim&&) noexcept;

  [[nodiscard]] const Netlist& netlist() const;

  /// Flops to 0, nets to X, macro state reset.
  void reset();

  void set_input(std::string_view port, Logic v);
  void set_input_bus(std::string_view name, std::uint64_t value, int width);

  /// Settles combinational logic from current inputs and flop state.
  void eval();

  /// One rising edge: capture all flop D (async reset dominating),
  /// clock edge on clocked macros with settled inputs, re-settle.
  void clock();

  [[nodiscard]] Logic output(std::string_view port) const;
  [[nodiscard]] Logic net_value(NetId id) const;
  /// Reads bus "name[0..width-1]"; requires all bits known.
  [[nodiscard]] std::uint64_t read_bus(std::string_view name,
                                       int width) const;

private:
  std::unique_ptr<Machine> m_;
};

/// 64 independent stimulus lanes per pass.  Macro-free netlists only
/// (behavioural macro models are scalar); throws on construction
/// otherwise.  Lane l of every input/output word is an independent
/// 4-state simulation.
class BatchSim {
public:
  explicit BatchSim(const Netlist& nl);
  ~BatchSim();
  BatchSim(BatchSim&&) noexcept;
  BatchSim& operator=(BatchSim&&) noexcept;

  [[nodiscard]] const Netlist& netlist() const;

  void reset();

  void set_input_word(std::string_view port, Word w);
  void set_input_lane(int lane, std::string_view port, Logic v);
  /// Drives the `width` bits of bus "name[i]" on one lane.
  void set_input_bus_lane(int lane, std::string_view name,
                          std::uint64_t value, int width);

  void eval();
  void clock();

  [[nodiscard]] Word output_word(std::string_view port) const;
  [[nodiscard]] Logic output_lane(int lane, std::string_view port) const;
  [[nodiscard]] std::uint64_t read_bus_lane(int lane, std::string_view name,
                                            int width) const;

private:
  std::unique_ptr<Machine> m_;
};

} // namespace scpg::sim::compiled
