// Levelized evaluation program for the compiled simulation backend.
//
// Levelization happens once per (library, structural digest): the
// netlist's topological order is flattened into a dense array of Ops
// over net-indexed SoA word state, and every scalar the kernel needs at
// runtime — per-cell leakage characterisation, per-net switched
// capacitance, driver energies, leak-refresh fanout lists — is copied
// out of the Netlist/Library into flat vectors.  A cached Program
// therefore holds NO pointers into any netlist: two structurally equal
// netlists share one Program, and the kernel re-binds per-instance
// macro behaviour from the live netlist at run start.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"

namespace scpg::sim::compiled {

struct Program {
  /// One combinational evaluation step (topo order).
  struct Op {
    CellKind kind{CellKind::Inv};
    std::uint8_t nin{0};
    std::int32_t macro{-1}; ///< >= 0: index into `macros`
    std::uint32_t out{0};   ///< output net (unused for macros)
    std::array<std::uint32_t, 3> in{}; ///< input nets (unused for macros)
  };

  /// A macro instance (evaluated per lane via its behavioural model).
  struct MacroRef {
    std::uint32_t cell{0}; ///< CellId.v in the source netlist
    std::uint32_t op{0};   ///< index of this macro's Op in `ops`
    bool has_clock{false};
    double access_energy{0}; ///< energy_per_access, unscaled
    std::vector<std::uint32_t> ins, outs;
  };

  /// A flip-flop: D/Q/RN nets plus its row in the leak table.
  struct FlopRef {
    std::uint32_t d{0}, q{0}, rn{0};
    std::uint32_t leak_row{0};
    bool has_reset{false};
  };

  /// Leakage characterisation of one standard cell (headers and macros
  /// excluded, mirroring Simulator::update_cell_leak).
  struct LeakCell {
    double base{0};    ///< CellSpec::leakage
    double spread{0};  ///< CellSpec::leak_state_spread
    std::uint8_t nin{0};
    bool gated{false}; ///< Domain::Gated (bucket + x-penalty exemption)
    bool xpen{false};  ///< x_input_leak_penalty applies (AON, not iso/ret)
    std::array<std::uint32_t, 3> in{}; ///< input nets (leak state)
  };

  std::vector<Op> ops; ///< comb cells + macros, fanin-before-fanout
  std::vector<MacroRef> macros;
  std::vector<FlopRef> flops;
  std::vector<LeakCell> leak_cells;

  // Evaluation fanout: CSR mapping net -> indices of `ops` that consume
  // the net (macro ops listed under every one of their input nets).
  // Because `ops` is fanin-before-fanout, a single forward pass over
  // dirty ops reaches a fixed point: the kernel's settle() uses this to
  // evaluate only the cone behind changed nets.
  std::vector<std::uint32_t> op_fanout_off; ///< size num_nets + 1
  std::vector<std::uint32_t> op_fanout_op;

  // Leak-sink fanout: CSR mapping net -> leak_cells rows that read the
  // net.  The kernel walks it only on X-plane transitions, to maintain
  // the per-row unknown-input counters behind the exact-leak correction.
  std::vector<std::uint32_t> leak_sink_off; ///< size num_nets + 1
  std::vector<std::uint32_t> leak_sink_row;

  // Linearised leakage (unscaled): while every input of a cell is known,
  //   leak = base * (1 + spread * (high/nin - 0.5))
  // is linear in the number of high inputs, so total leakage per bucket
  // is a constant plus a per-net weighted sum of high bits.  The kernel
  // maintains that sum in O(1) per changed net per lane; rows with X
  // inputs get an exact correction at sample time (kernel.cpp).
  double leak_const_aon{0};   ///< sum of per-row constants, AON bucket
  double leak_const_gated{0}; ///< same, gated bucket
  std::vector<double> leak_w_aon;   ///< per net: d(leak)/d(net high), AON
  std::vector<double> leak_w_gated; ///< same, gated bucket

  // Per-net energy characterisation.
  std::vector<double> half_cap;        ///< 0.5 * net_load (switching)
  std::vector<double> driver_internal; ///< driver cell internal_energy
  std::vector<double> driver_macro_e;  ///< driver macro energy_per_access

  /// Sleep-control input nets of every header cell; the kernel watches
  /// these and bails out (dynamic event fallback) if any reaches 1.
  std::vector<std::uint32_t> header_in_nets;

  std::uint32_t num_nets{0};
  std::uint32_t num_cells{0};
  bool has_gated{false};
  double macro_leak{0}; ///< sum of macro static leakage, unscaled
  std::uint64_t digest{0}; ///< structural digest of the source netlist
};

/// Builds or fetches the cached Program for a netlist.  Thread-safe;
/// keyed by (library identity, structural digest).  Levelization time is
/// recorded as an obs Timing metric, cache hits as a Value counter.
[[nodiscard]] std::shared_ptr<const Program> get_program(const Netlist& nl);

/// Same, but with the structural digest already in hand (the engine
/// computes one per design at sweep setup); skips the per-point rehash.
[[nodiscard]] std::shared_ptr<const Program>
get_program(const Netlist& nl, std::uint64_t digest);

/// Number of programs currently cached (tests).
[[nodiscard]] std::size_t program_cache_size();

} // namespace scpg::sim::compiled
