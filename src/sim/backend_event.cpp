// Reference backend: the event-driven 4-state Simulator.
//
// The measure() body is the historical Experiment::measure_point inner
// loop, moved verbatim behind the SimBackend interface so the engine's
// results (tallies, RNG streams, digests, cache keys) are bit-identical
// to every release before the backend split.
#include "sim/backend.hpp"

#include "util/error.hpp"

namespace scpg::sim {

namespace {

class EventBackend final : public SimBackend {
public:
  [[nodiscard]] std::string_view name() const override { return "event"; }

  [[nodiscard]] std::string
  ineligible_reason(const MeasureRequest&) const override {
    return {};
  }

  [[nodiscard]] std::optional<PowerTally>
  measure(const MeasureRequest& rq) const override {
    SCPG_REQUIRE(rq.nl != nullptr, "measure request needs a netlist");
    SCPG_REQUIRE(rq.f.v > 0, "frequency must be positive");
    const Netlist& nl = *rq.nl;

    Simulator sim(nl, rq.cfg);
    sim.init_flops_to_zero();

    const NetId clk = nl.port_net(rq.clock_port);
    if (const PortId ov = nl.find_port(rq.override_port); ov.valid())
      sim.drive_at(0, nl.port(ov).net,
                   rq.override_gating ? Logic::L0 : Logic::L1);
    if (rq.setup) rq.setup->apply(sim);

    const SimTime T = to_fs(period(rq.f));
    // Low phase first: the clock rises after one low interval so the
    // gated domain starts powered.
    const SimTime first_rise = SimTime(double(T) * (1.0 - rq.duty_high));
    sim.add_clock(clk, rq.f, rq.duty_high, first_rise);

    Rng rng = Rng::stream(rq.seed, rq.digest);
    int cycle = -1;
    sim.on_rising_edge(clk, [&rq, &sim, &rng, &cycle]() {
      ++cycle;
      if (cycle == rq.warmup) sim.reset_tally();
      if (rq.stimulus) rq.stimulus->apply(sim, cycle, rng);
    });

    const SimTime t_end = first_rise + T * SimTime(rq.warmup + rq.cycles);
    sim.run_until(t_end);
    return sim.tally();
  }
};

} // namespace

const SimBackend& event_backend() {
  static const EventBackend backend;
  return backend;
}

} // namespace scpg::sim
