// Switching-activity recording.
//
// Mirrors the paper's methodology (§III-B): simulate the workload, record
// per-net toggle counts, bucket them into windows ("vector groups" of N
// clock cycles), and compute each window's switching probability —
// toggles / (nets * cycles) — which is exactly the Fig 7 series.  The
// recorder also keeps per-net totals for average-power estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace scpg {

class ActivityRecorder {
public:
  /// `cycles_per_window` groups toggles into vector groups (0 = one big
  /// window).
  explicit ActivityRecorder(const Netlist& nl, int cycles_per_window = 0);

  /// Called by the simulator on every known 0<->1 net transition.
  void on_toggle(NetId net);

  /// Called once per completed clock cycle (defines window boundaries).
  void on_cycle();

  [[nodiscard]] std::uint64_t toggles(NetId net) const {
    return per_net_[net.v];
  }
  [[nodiscard]] std::uint64_t total_toggles() const { return total_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Average toggles per net per cycle over the whole run.
  [[nodiscard]] double average_activity() const;

  /// Switching probability of each completed window (Fig 7 series).
  [[nodiscard]] const std::vector<double>& window_activity() const {
    return windows_;
  }

  /// Indices of the windows with minimum / maximum switching probability
  /// and the one closest to the mean (the paper's three representative
  /// vector groups).  Requires at least one completed window.
  struct Representative {
    std::size_t min_group, avg_group, max_group;
  };
  [[nodiscard]] Representative representatives() const;

private:
  void close_window();

  const Netlist* nl_;
  int cycles_per_window_;
  std::vector<std::uint64_t> per_net_;
  std::uint64_t total_{0};
  std::uint64_t cycles_{0};
  std::uint64_t window_toggles_{0};
  int window_cycles_{0};
  std::vector<double> windows_;
};

} // namespace scpg
