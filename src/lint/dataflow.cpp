#include "lint/dataflow.hpp"

#include <algorithm>
#include <deque>

namespace scpg::lint {

std::vector<NetId> ReachResult::trace(NetId id) const {
  std::vector<NetId> path;
  NetId cur = id;
  while (cur.valid() && path.size() <= net.size()) {
    path.push_back(cur);
    cur = from[cur.v];
  }
  return path;
}

namespace {

ReachResult make_result(const Netlist& nl, std::span<const NetId> seeds) {
  ReachResult r;
  r.net.assign(nl.num_nets(), false);
  r.from.assign(nl.num_nets(), NetId{});
  for (const NetId s : seeds)
    if (s.v < nl.num_nets()) r.net[s.v] = true;
  return r;
}

} // namespace

ReachResult reach_forward(const Netlist& nl, std::span<const NetId> seeds,
                          const Transfer& transfer) {
  ReachResult r = make_result(nl, seeds);
  std::deque<NetId> work(seeds.begin(), seeds.end());
  while (!work.empty()) {
    const NetId n = work.front();
    work.pop_front();
    for (const PinRef& sink : nl.net(n).sinks) {
      const Cell& c = nl.cell(sink.cell);
      for (std::size_t out = 0; out < c.outputs.size(); ++out) {
        const NetId o = c.outputs[out];
        if (r.net[o.v]) continue;
        if (!transfer(nl, sink.cell, sink.pin, int(out))) continue;
        r.net[o.v] = true;
        r.from[o.v] = n;
        work.push_back(o);
      }
    }
  }
  return r;
}

ReachResult reach_backward(const Netlist& nl, std::span<const NetId> seeds,
                           const Transfer& transfer) {
  ReachResult r = make_result(nl, seeds);
  std::deque<NetId> work(seeds.begin(), seeds.end());
  while (!work.empty()) {
    const NetId n = work.front();
    work.pop_front();
    const Net& net = nl.net(n);
    if (!net.driven_by_cell()) continue;
    const Cell& c = nl.cell(net.driver_cell);
    for (std::size_t pin = 0; pin < c.inputs.size(); ++pin) {
      const NetId in = c.inputs[pin];
      if (r.net[in.v]) continue;
      if (!transfer(nl, net.driver_cell, int(pin), net.driver_out_pin))
        continue;
      r.net[in.v] = true;
      r.from[in.v] = n;
      work.push_back(in);
    }
  }
  return r;
}

Transfer transfer_all() {
  return [](const Netlist&, CellId, int, int) { return true; };
}

Transfer transfer_combinational() {
  return [](const Netlist& nl, CellId cell, int, int) {
    return nl.is_comb_node(cell);
  };
}

} // namespace scpg::lint
