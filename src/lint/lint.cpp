#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "engine/sweep.hpp"
#include "util/json.hpp"

namespace scpg::lint {

// Implemented in rules.cpp.
void run_scpg_rules(const Netlist& nl, const LintOptions& opt,
                    bool structure_broken, LintReport& rep);

namespace {

constexpr std::array<RuleInfo, 8> kRules{{
    {"SCPG001", "isolation-coverage",
     "every Gated->AlwaysOn crossing is clamped by an isolation cell"},
    {"SCPG002", "domain-sanity",
     "no flip-flop, clock-tree or power cell inside the gated domain; a "
     "gated domain has a power switch"},
    {"SCPG003", "header-polarity",
     "header sleep control is clk AND override_n (paper Fig 2)"},
    {"SCPG004", "x-reachability",
     "no primary output is reachable from the gated cloud without passing "
     "a clamp"},
    {"SCPG005", "timing-feasibility",
     "T_idle = T_clk*(1-d) - T_PGStart - T_eval - T_setup > 0 (Eq. 1) at "
     "the requested frequency/duty"},
    {"SCPG006", "upf-consistency",
     "write_upf() power intent matches the netlist structure"},
    {"SCPG007", "net-drivers",
     "every net has exactly one driver and every input pin is connected"},
    {"SCPG008", "comb-loop", "the combinational subgraph is acyclic"},
}};

bool rule_enabled(const LintOptions& opt, std::string_view id) {
  return opt.only.empty() ||
         std::find(opt.only.begin(), opt.only.end(), id) != opt.only.end();
}

} // namespace

std::span<const RuleInfo> rules() { return kRules; }

std::size_t LintReport::errors() const {
  return std::size_t(std::count_if(
      findings_.begin(), findings_.end(),
      [](const Diagnostic& d) { return d.severity == Severity::Error; }));
}

std::size_t LintReport::warnings() const {
  return std::size_t(std::count_if(
      findings_.begin(), findings_.end(),
      [](const Diagnostic& d) { return d.severity == Severity::Warning; }));
}

std::size_t LintReport::count(std::string_view rule) const {
  return std::size_t(std::count_if(
      findings_.begin(), findings_.end(),
      [rule](const Diagnostic& d) { return d.rule == rule; }));
}

std::string LintReport::format_text() const {
  std::string out;
  for (const Diagnostic& d : findings_) {
    out += format_diagnostic(d);
    out += '\n';
  }
  out += "lint '" + design_ + "': " + std::to_string(errors()) +
         " error(s), " + std::to_string(warnings()) + " warning(s)\n";
  return out;
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("design").value(design_);
  w.key("errors").value(errors());
  w.key("warnings").value(warnings());
  w.key("findings").begin_array();
  for (const Diagnostic& d : findings_) {
    w.begin_object(json::Writer::Style::Compact);
    w.key("rule").value(d.rule);
    w.key("severity").value(severity_name(d.severity));
    w.key("message").value(d.message);
    w.key("hint").value(d.hint);
    w.key("locations").begin_array();
    for (const DiagLoc& loc : d.where) {
      w.begin_object();
      w.key("kind").value(diag_loc_kind_name(loc.kind));
      if (loc.kind != DiagLoc::Kind::Design)
        w.key("id").value(std::uint64_t(loc.id));
      w.key("name").value(loc.name);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

LintReport run_lint(const Netlist& nl, const LintOptions& opt) {
  LintReport rep(nl.name());

  // Structural rules first (SCPG007/008): the SCPG rules are graph scans
  // that tolerate a broken structure, but STA (SCPG005) does not.
  bool structure_broken = false;
  for (Diagnostic& d : nl.structural_diagnostics()) {
    structure_broken |= d.severity == Severity::Error;
    if (rule_enabled(opt, d.rule)) rep.add(std::move(d));
  }

  run_scpg_rules(nl, opt, structure_broken, rep);
  return rep;
}

void enforce_lint(const Netlist& nl, const LintOptions& opt,
                  std::string_view context) {
  const LintReport rep = run_lint(nl, opt);
  if (rep.errors() == 0) return;
  std::string msg = context.empty() ? std::string{}
                                    : std::string(context) + ": ";
  msg += "design '" + nl.name() + "' fails SCPG lint\n" + rep.format_text();
  throw LintError(msg);
}

void install_engine_gate() {
  engine::set_design_gate(
      [](const Netlist& nl, const engine::GateContext& ctx) {
        LintOptions opt;
        opt.clock_port = std::string(ctx.clock_port);
        enforce_lint(nl, opt,
                     "sweep design '" + std::string(ctx.label) + "'");
      });
}

} // namespace scpg::lint
