// The eight SCPG lint rules (SCPG001-008).
//
// SCPG007/008 live in Netlist::structural_diagnostics() (netlist/diag);
// this file implements the power-intent rules on top of the dataflow
// framework and the verify/boundary export.  Every rule is a pure static
// scan; only SCPG005 (Eq. 1 feasibility) runs STA and the rail closed
// forms, and it is skipped when the structure is broken or no operating
// frequency was given.
#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "lint/dataflow.hpp"
#include "lint/lint.hpp"
#include "scpg/model.hpp"
#include "scpg/transform.hpp"
#include "scpg/upf.hpp"
#include "util/table.hpp"
#include "verify/boundary.hpp"

namespace scpg::lint {

namespace {

bool enabled(const LintOptions& opt, std::string_view id) {
  return opt.only.empty() ||
         std::find(opt.only.begin(), opt.only.end(), id) != opt.only.end();
}

NetId clock_net_of(const Netlist& nl, const LintOptions& opt) {
  const PortId p = nl.find_port(opt.clock_port);
  return p.valid() ? nl.port(p).net : NetId{};
}

std::vector<CellId> cells_of_kind(const Netlist& nl, CellKind k) {
  std::vector<CellId> out;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (!nl.cell(CellId{ci}).is_macro() && nl.kind_of(CellId{ci}) == k)
      out.push_back(CellId{ci});
  return out;
}

std::string pretty_mhz(Frequency f) {
  return TextTable::num(in_MHz(f), 3) + " MHz";
}

std::string pretty_ns(Time t) { return TextTable::num(in_ns(t), 2) + " ns"; }

// --- SCPG001: isolation coverage -------------------------------------------

void rule_isolation_coverage(const Netlist& nl, const LintOptions& opt,
                             LintReport& rep) {
  const verify::BoundaryMap b = verify::extract_boundary(nl, opt.clock_port);
  if (!b.has_gating()) return;
  for (const NetId n : b.unprotected) {
    const Net& net = nl.net(n);
    Diagnostic d{"SCPG001", Severity::Error,
                 "gated-domain net '" + net.name +
                     "' crosses into the always-on domain without an "
                     "isolation clamp",
                 {net_loc(nl, n)},
                 "insert an IsoLo/IsoHi cell on the crossing "
                 "(ScpgOptions::insert_isolation)"};
    if (net.driven_by_cell()) {
      d.message += "; driven by gated cell '" +
                   nl.cell(net.driver_cell).name + "'";
      d.where.push_back(cell_loc(nl, net.driver_cell));
    }
    if (!net.sink_ports.empty()) {
      d.message += ", read by primary output '" +
                   nl.port(net.sink_ports.front()).name + "'";
      d.where.push_back(port_loc(nl, net.sink_ports.front()));
    } else {
      for (const PinRef& s : net.sinks)
        if (nl.cell(s.cell).domain != Domain::Gated) {
          d.message += ", read by always-on cell '" +
                       nl.cell(s.cell).name + "'";
          d.where.push_back(cell_loc(nl, s.cell));
          break;
        }
    }
    rep.add(std::move(d));
  }
}

// --- SCPG002: domain sanity -------------------------------------------------

void rule_domain_sanity(const Netlist& nl, const LintOptions& opt,
                        LintReport& rep) {
  std::size_t gated = 0;
  bool any_header = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (nl.cell(CellId{ci}).domain == Domain::Gated) ++gated;
  (void)opt;

  // Clock tree: backward reachability from every CK pin through
  // combinational cells; any driver of a reached net is clock
  // distribution and must stay on the real rail.
  std::vector<NetId> ck_seeds;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.is_macro()) {
      if (nl.macro_spec(c.macro).has_clock && !c.inputs.empty())
        ck_seeds.push_back(c.inputs[0]);
    } else if (kind_is_sequential(nl.kind_of(id)) && c.inputs.size() > 1) {
      ck_seeds.push_back(c.inputs[1]);
    }
  }
  const ReachResult clock_cone =
      reach_backward(nl, ck_seeds, transfer_combinational());

  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    const bool is_gated = c.domain == Domain::Gated;
    if (c.is_macro()) {
      if (is_gated)
        rep.add({"SCPG002", Severity::Error,
                 "macro '" + c.name + "' is inside the gated domain — "
                 "memory contents would corrupt every clock-high phase",
                 {cell_loc(nl, id)},
                 "keep macros always-on (the paper's memories are outside "
                 "the gated cloud)"});
      continue;
    }
    const CellKind k = nl.kind_of(id);
    if (k == CellKind::Header) {
      any_header = true;
      if (is_gated)
        rep.add({"SCPG002", Severity::Error,
                 "power switch '" + c.name + "' is tagged Gated — a header "
                 "cannot hang off the virtual rail it creates",
                 {cell_loc(nl, id)},
                 "headers belong to the always-on domain"});
      continue;
    }
    if (!is_gated) continue;
    if (kind_is_sequential(k)) {
      rep.add({"SCPG002", Severity::Error,
               "flip-flop '" + c.name + "' is inside the gated domain — "
               "architectural state would be lost every clock-high phase",
               {cell_loc(nl, id)},
               "sequential cells stay always-on (paper Fig 2: only the "
               "combinational cloud is gated)"});
      continue;
    }
    if (k == CellKind::IsoLo || k == CellKind::IsoHi) {
      rep.add({"SCPG002", Severity::Error,
               "isolation clamp '" + c.name + "' is inside the gated "
               "domain — it cannot hold its output while the rail is down",
               {cell_loc(nl, id)},
               "isolation cells must be powered from the real rail"});
      continue;
    }
    bool on_clock_path = false;
    for (const NetId o : c.outputs)
      on_clock_path |= clock_cone.reached(o);
    if (on_clock_path && k != CellKind::TieHi && k != CellKind::TieLo)
      rep.add({"SCPG002", Severity::Error,
               "clock-tree cell '" + c.name + "' is inside the gated "
               "domain — the clock would collapse with the virtual rail",
               {cell_loc(nl, id)},
               "keep the clock distribution always-on "
               "(scpg::clock_path_cells in the transform)"});
  }

  if (gated > 0 && !any_header)
    rep.add({"SCPG002", Severity::Error,
             std::to_string(gated) + " cells are tagged Gated but the "
             "design has no power switch (header) — the domain can never "
             "power down",
             {design_loc(nl)},
             "apply_scpg() inserts the header bank, or retag the cells "
             "AlwaysOn"});
}

// --- SCPG003: power-switch enable polarity ----------------------------------

void rule_header_polarity(const Netlist& nl, const LintOptions& opt,
                          LintReport& rep) {
  const std::vector<CellId> headers = cells_of_kind(nl, CellKind::Header);
  if (headers.empty()) return;
  const NetId clk = clock_net_of(nl, opt);
  if (!clk.valid()) {
    rep.add({"SCPG003", Severity::Error,
             "clock port '" + opt.clock_port + "' not found — the header "
             "sleep control cannot be clock-derived",
             {design_loc(nl)},
             "name the clock with --clock / LintOptions::clock_port"});
    return;
  }
  for (const CellId h : headers) {
    const NetId slp = nl.cell(h).inputs[0];
    const Net& n = nl.net(slp);
    if (!n.driven_by_cell()) {
      if (slp == clk)
        rep.add({"SCPG003", Severity::Warning,
                 "header '" + nl.cell(h).name + "' is driven by the raw "
                 "clock — correct polarity, but gating cannot be "
                 "overridden (no override_n leg, paper Fig 2)",
                 {cell_loc(nl, h), net_loc(nl, slp)},
                 "drive the header gate with clk AND override_n"});
      else
        rep.add({"SCPG003", Severity::Error,
                 "header '" + nl.cell(h).name + "' sleep control '" +
                     n.name + "' is a primary input, not a clock-derived "
                     "signal — the headers would not switch sub-clock",
                 {cell_loc(nl, h), net_loc(nl, slp)},
                 "drive the header gate with clk AND override_n (Fig 2)"});
      continue;
    }
    const CellId drv = n.driver_cell;
    const CellKind dk = nl.cell(drv).is_macro() ? CellKind::Macro
                                                : nl.kind_of(drv);
    if (dk == CellKind::And2) {
      const Cell& a = nl.cell(drv);
      const bool leg0_clk = a.inputs[0] == clk;
      const bool leg1_clk = a.inputs[1] == clk;
      if (!leg0_clk && !leg1_clk) {
        rep.add({"SCPG003", Severity::Error,
                 "header '" + nl.cell(h).name + "' sleep control '" +
                     n.name + "' is And2('" + nl.net(a.inputs[0]).name +
                     "', '" + nl.net(a.inputs[1]).name +
                     "') — neither leg is the clock, so the headers would "
                     "not switch sub-clock",
                 {cell_loc(nl, h), cell_loc(nl, drv)},
                 "the sleep control must be clk AND override_n (Fig 2)"});
        continue;
      }
      const NetId other = leg0_clk ? a.inputs[1] : a.inputs[0];
      if (!nl.net(other).driven_by_port())
        rep.add({"SCPG003", Severity::Warning,
                 "override leg '" + nl.net(other).name + "' of header "
                 "control '" + n.name + "' is not a primary input — the "
                 "gating-disable contract (override_n = 0) may not hold",
                 {cell_loc(nl, drv), net_loc(nl, other)},
                 "route the override from a primary input port"});
      continue;
    }
    if (dk == CellKind::Inv && nl.cell(drv).inputs[0] == clk) {
      rep.add({"SCPG003", Severity::Error,
               "header '" + nl.cell(h).name + "' enable polarity is "
               "inverted ('" + n.name + "' = NOT clk): the headers would "
               "switch OFF during the evaluate (clock-low) phase and the "
               "domain could never compute",
               {cell_loc(nl, h), cell_loc(nl, drv)},
               "the PMOS header gate is clk AND override_n — high (off) "
               "only while the clock is high (Fig 2)"});
      continue;
    }
    rep.add({"SCPG003", Severity::Error,
             "header '" + nl.cell(h).name + "' sleep control '" + n.name +
                 "' is driven by " + std::string(kind_name(dk)) + " '" +
                 nl.cell(drv).name + "', expected And2(clk, override_n)",
             {cell_loc(nl, h), cell_loc(nl, drv)},
             "drive the header gate with clk AND override_n (Fig 2)"});
  }
}

// --- SCPG004: static X-reachability -----------------------------------------

void rule_x_reachability(const Netlist& nl, const LintOptions& opt,
                         LintReport& rep) {
  const verify::BoundaryMap b = verify::extract_boundary(nl, opt.clock_port);
  if (!b.has_gating()) return;

  // Seeds: every net a gated cell drives (its value is X while the rail
  // is collapsed).  Tie cells are exempt — a gated tie is the rail sense,
  // which reads 0 during collapse by construction.
  std::vector<NetId> seeds;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.domain != Domain::Gated) continue;
    if (!c.is_macro()) {
      const CellKind k = nl.kind_of(id);
      if (k == CellKind::TieHi || k == CellKind::TieLo) continue;
    }
    for (const NetId o : c.outputs) seeds.push_back(o);
  }

  // X crosses combinational cells but is stopped by isolation clamps
  // (which force a known value while engaged) and by sequential elements
  // (a within-cycle static rule; clocked-in corruption is the dynamic
  // monitors' job, DESIGN.md §7).
  const Transfer x_transfer = [](const Netlist& netl, CellId cell, int,
                                 int) {
    if (!netl.is_comb_node(cell)) return false;
    if (netl.cell(cell).is_macro()) return true;
    const CellKind k = netl.kind_of(cell);
    return k != CellKind::IsoLo && k != CellKind::IsoHi;
  };
  const ReachResult reach = reach_forward(nl, seeds, x_transfer);

  for (const Port& p : nl.ports()) {
    if (p.dir != PortDir::Out || !reach.reached(p.net)) continue;
    const std::vector<NetId> path = reach.trace(p.net);
    std::string via;
    const std::size_t shown = std::min<std::size_t>(path.size(), 6);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i) via += " <- ";
      via += "'" + nl.net(path[i]).name + "'";
    }
    if (path.size() > shown) via += " <- ...";
    Diagnostic d{"SCPG004", Severity::Error,
                 "primary output '" + p.name + "' can observe X from the "
                 "collapsed gated domain with no clamp on the path: " + via,
                 {},
                 "clamp the crossing, or register the output in the "
                 "always-on domain"};
    const PortId pid = nl.find_port(p.name);
    d.where.push_back(port_loc(nl, pid));
    d.where.push_back(net_loc(nl, path.back()));
    rep.add(std::move(d));
  }
}

// --- SCPG005: Eq. 1 timing feasibility --------------------------------------

void rule_timing_feasibility(const Netlist& nl, const LintOptions& opt,
                             LintReport& rep) {
  if (!opt.freq) return;
  bool any_gated = false;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    any_gated |= nl.cell(CellId{ci}).domain == Domain::Gated;
  if (!any_gated) return;

  try {
    const ScpgPowerModel model =
        ScpgPowerModel::extract(nl, opt.sim, Energy{0.0});
    const Frequency f = *opt.freq;
    const Time T = period(f);
    const Time t_pg = model.rail().t_ready_from(Voltage{0.0});
    const Time t_es = model.t_eval_setup();
    const double dmax = model.max_duty_high(f);
    if (dmax <= 0.0) {
      rep.add({"SCPG005", Severity::Error,
               "SCPG is infeasible at " + pretty_mhz(f) + ": T_PGStart (" +
                   pretty_ns(t_pg) + ") + T_eval+T_setup (" +
                   pretty_ns(t_es) + ") exceed the whole period (" +
                   pretty_ns(T) + "), so Eq. 1 leaves T_idle <= 0 at every "
                   "duty cycle",
               {design_loc(nl)},
               "lower the clock frequency, or resize the header bank to "
               "cut T_PGStart"});
    } else if (opt.duty_high > dmax + 1e-12) {
      rep.add({"SCPG005", Severity::Error,
               "clock-high duty " + TextTable::num(opt.duty_high, 2) +
                   " over-shrinks the evaluate phase at " + pretty_mhz(f) +
                   ": the low phase (" +
                   pretty_ns(Time{T.v * (1.0 - opt.duty_high)}) +
                   ") cannot fit T_PGStart (" + pretty_ns(t_pg) +
                   ") + T_eval+T_setup (" + pretty_ns(t_es) +
                   "); Eq. 1 caps the duty at " + TextTable::num(dmax, 2),
               {design_loc(nl)},
               "reduce the duty below " + TextTable::num(dmax, 2) +
                   " or lower the frequency"});
    }
  } catch (const Error& e) {
    rep.add({"SCPG005", Severity::Error,
             std::string("timing feasibility could not be evaluated: ") +
                 e.what(),
             {design_loc(nl)},
             ""});
  }
}

// --- SCPG006: UPF consistency -----------------------------------------------

void rule_upf_consistency(const Netlist& nl, const LintOptions& opt,
                          LintReport& rep) {
  const std::vector<CellId> headers = cells_of_kind(nl, CellKind::Header);
  std::vector<CellId> isos = cells_of_kind(nl, CellKind::IsoLo);
  const std::size_t iso_lo = isos.size();
  for (const CellId c : cells_of_kind(nl, CellKind::IsoHi))
    isos.push_back(c);
  std::size_t gated = 0;
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci)
    if (nl.cell(CellId{ci}).domain == Domain::Gated) ++gated;
  if (gated == 0 || headers.empty()) return; // SCPG002's findings apply

  // One power switch: write_upf() declares a single SW_COMB whose control
  // is the sleep net — a bank split across controls has no UPF rendering.
  std::unordered_set<std::uint32_t> sleep_nets;
  for (const CellId h : headers) sleep_nets.insert(nl.cell(h).inputs[0].v);
  if (sleep_nets.size() > 1) {
    Diagnostic d{"SCPG006", Severity::Error,
                 "the header bank is driven by " +
                     std::to_string(sleep_nets.size()) +
                     " distinct sleep controls — write_upf() declares one "
                     "power switch (SW_COMB) with one control port",
                 {design_loc(nl)},
                 "drive every header from the same sleep net"};
    for (const std::uint32_t n : sleep_nets)
      d.where.push_back(net_loc(nl, NetId{n}));
    rep.add(std::move(d));
  }

  // One isolation strategy, one control signal.
  std::unordered_set<std::uint32_t> iso_enables;
  for (const CellId c : isos) iso_enables.insert(nl.cell(c).inputs[1].v);
  if (iso_enables.size() > 1) {
    Diagnostic d{"SCPG006", Severity::Error,
                 "isolation cells disagree on the clamp control (" +
                     std::to_string(iso_enables.size()) +
                     " distinct nets) — write_upf() declares one "
                     "isolation strategy (ISO_COMB) with one control",
                 {design_loc(nl)},
                 "drive every clamp's NISO pin from the same control net"};
    for (const std::uint32_t n : iso_enables)
      d.where.push_back(net_loc(nl, NetId{n}));
    rep.add(std::move(d));
  }
  if (iso_lo > 0 && iso_lo < isos.size())
    rep.add({"SCPG006", Severity::Warning,
             "mixed isolation clamp polarities (" + std::to_string(iso_lo) +
                 " clamp-low, " + std::to_string(isos.size() - iso_lo) +
                 " clamp-high) — write_upf() emits a single clamp_value 0 "
                 "strategy",
             {design_loc(nl)},
             "use one clamp polarity per domain"});

  // Isolation-control shape: !clk (non-adaptive) or !clk AND sense with a
  // gated rail-sense tie (adaptive, Fig 3).
  const NetId clk = clock_net_of(nl, opt);
  if (iso_enables.size() == 1 && clk.valid()) {
    const NetId niso{*iso_enables.begin()};
    const Net& n = nl.net(niso);
    const auto is_nclk = [&](NetId net_id) {
      const Net& cand = nl.net(net_id);
      return cand.driven_by_cell() && !nl.cell(cand.driver_cell).is_macro() &&
             nl.kind_of(cand.driver_cell) == CellKind::Inv &&
             nl.cell(cand.driver_cell).inputs[0] == clk;
    };
    if (niso == clk) {
      rep.add({"SCPG006", Severity::Error,
               "isolation control is the raw clock: NISO is active low, so "
               "the clamps would engage during the evaluate (clock-low) "
               "phase and release while the rail is collapsed",
               {net_loc(nl, niso)},
               "NISO must be !clk (or !clk AND rail-sense, Fig 3)"});
    } else if (!is_nclk(niso)) {
      bool adaptive_ok = false;
      if (n.driven_by_cell() && !nl.cell(n.driver_cell).is_macro() &&
          nl.kind_of(n.driver_cell) == CellKind::And2) {
        const Cell& a = nl.cell(n.driver_cell);
        for (int leg = 0; leg < 2; ++leg) {
          if (!is_nclk(a.inputs[std::size_t(leg)])) continue;
          const Net& sense = nl.net(a.inputs[std::size_t(1 - leg)]);
          if (!sense.driven_by_cell()) continue;
          const CellId sc = sense.driver_cell;
          if (nl.cell(sc).is_macro() ||
              nl.kind_of(sc) != CellKind::TieHi)
            continue;
          if (nl.cell(sc).domain == Domain::Gated) {
            adaptive_ok = true;
          } else {
            rep.add({"SCPG006", Severity::Error,
                     "rail sense '" + sense.name + "' feeding the "
                     "isolation control is not inside the gated domain — "
                     "it cannot observe the virtual-rail recovery (Fig 3)",
                     {net_loc(nl, a.inputs[std::size_t(1 - leg)]),
                      cell_loc(nl, sc)},
                     "the sense tie must sit on the virtual rail"});
            adaptive_ok = true; // shape recognised; error already reported
          }
        }
      }
      if (!adaptive_ok)
        rep.add({"SCPG006", Severity::Warning,
                 "unrecognised isolation-control structure on '" + n.name +
                     "' — write_upf() cannot attest the release protocol "
                     "(expected !clk, or !clk AND gated rail-sense)",
                 {net_loc(nl, niso)},
                 "generate the controller with apply_scpg()"});
    }
  }

  // Dry-run the exporter against the reconstructed intent: anything
  // write_upf() itself rejects is by definition inconsistent intent.
  if (!isos.empty() && sleep_nets.size() == 1 && iso_enables.size() == 1) {
    ScpgInfo info;
    info.clk = clk;
    info.sleep = NetId{*sleep_nets.begin()};
    info.niso = NetId{*iso_enables.begin()};
    for (const CellId h : headers) info.headers.push_back(h);
    info.cells_gated = gated;
    info.isolation_cells = isos.size();
    try {
      (void)write_upf_string(nl, info);
    } catch (const Error& e) {
      rep.add({"SCPG006", Severity::Error,
               std::string("write_upf() rejects the reconstructed power "
                           "intent: ") +
                   e.what(),
               {design_loc(nl)},
               ""});
    }
  }
}

} // namespace

void run_scpg_rules(const Netlist& nl, const LintOptions& opt,
                    bool structure_broken, LintReport& rep) {
  if (enabled(opt, "SCPG001")) rule_isolation_coverage(nl, opt, rep);
  if (enabled(opt, "SCPG002")) rule_domain_sanity(nl, opt, rep);
  if (enabled(opt, "SCPG003")) rule_header_polarity(nl, opt, rep);
  if (enabled(opt, "SCPG004")) rule_x_reachability(nl, opt, rep);
  // STA needs a sound structure; SCPG007/008 errors already explain why
  // the run stopped short.
  if (!structure_broken && enabled(opt, "SCPG005"))
    rule_timing_feasibility(nl, opt, rep);
  if (enabled(opt, "SCPG006")) rule_upf_consistency(nl, opt, rep);
}

} // namespace scpg::lint
