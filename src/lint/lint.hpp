// Static SCPG linter: power-intent and structural analysis over a Netlist.
//
// Production power-gating flows front-load power-intent checking (UPF /
// IEEE 1801 rule decks) so broken designs are rejected in milliseconds,
// before any simulation.  run_lint() is that gate for SCPG designs: a
// pure static pass over the Netlist graph — no simulator, no stimulus —
// producing located, named Diagnostics (netlist/diag.hpp).
//
// Rules (see DESIGN.md §9 for the full table):
//   SCPG001 isolation-coverage   every Gated->AlwaysOn crossing is clamped
//   SCPG002 domain-sanity        no flop/clock-tree/power cell gated; a
//                                gated domain has a power switch
//   SCPG003 header-polarity      header control is clk AND override (Fig 2)
//   SCPG004 x-reachability       no primary output sees the gated cloud
//                                except through a clamp (static X analysis)
//   SCPG005 timing-feasibility   T_idle > 0 at the requested f/duty (Eq. 1)
//   SCPG006 upf-consistency      write_upf() intent matches the structure
//   SCPG007 net-drivers          exactly one driver per net, no floating
//                                inputs (re-surfaced Netlist::check())
//   SCPG008 comb-loop            combinational subgraph is acyclic
//
// Rules SCPG001-004 and 006-008 are graph scans built on lint/dataflow;
// SCPG005 runs STA + the rail closed forms and therefore only fires when
// LintOptions::freq is set and the structure is sound.  All rules skip
// silently on designs without a gated domain, so linting an untransformed
// netlist only applies the structural rules.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/diag.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace scpg::lint {

/// A design was rejected by enforce_lint() / the engine design gate.
/// what() carries the formatted findings.
class LintError : public Error {
public:
  using Error::Error;
};

struct LintOptions {
  /// Clock input port, as in ScpgOptions.
  std::string clock_port{"clk"};

  /// Operating frequency for the Eq. 1 feasibility rule (SCPG005); the
  /// rule is skipped when unset — feasibility is meaningless without a
  /// target clock.
  std::optional<Frequency> freq;

  /// Requested clock-high duty cycle for SCPG005.
  double duty_high{0.5};

  /// Corner and rail calibration for SCPG005's T_PGStart extraction.
  SimConfig sim{};

  /// Restrict the run to these rule ids (e.g. {"SCPG001"}); empty = all.
  std::vector<std::string> only;
};

/// One row of the rule table (for --help style listings and docs).
struct RuleInfo {
  std::string_view id;
  std::string_view name;
  std::string_view what;
};

/// All rules, in id order.
[[nodiscard]] std::span<const RuleInfo> rules();

/// Findings of one lint run, with text and JSON renderings.
class LintReport {
public:
  explicit LintReport(std::string design) : design_(std::move(design)) {}

  void add(Diagnostic d) { findings_.push_back(std::move(d)); }

  [[nodiscard]] const std::string& design() const { return design_; }
  [[nodiscard]] std::span<const Diagnostic> findings() const {
    return findings_;
  }
  [[nodiscard]] std::size_t errors() const;
  [[nodiscard]] std::size_t warnings() const;
  [[nodiscard]] bool clean() const { return findings_.empty(); }

  /// Number of findings carrying this rule id.
  [[nodiscard]] std::size_t count(std::string_view rule) const;
  [[nodiscard]] bool fired(std::string_view rule) const {
    return count(rule) > 0;
  }

  /// One line per finding plus a summary line.
  [[nodiscard]] std::string format_text() const;

  /// Machine-readable form:
  ///   {"design": ..., "errors": N, "warnings": M, "findings": [
  ///     {"rule", "severity", "message", "hint", "locations":
  ///       [{"kind", "id", "name"}]}]}
  [[nodiscard]] std::string to_json() const;

private:
  std::string design_;
  std::vector<Diagnostic> findings_;
};

/// Runs every enabled rule; never throws on lint findings (they are the
/// result), only on misuse (e.g. ids out of range — impossible from a
/// constructed Netlist).
[[nodiscard]] LintReport run_lint(const Netlist& nl,
                                  const LintOptions& opt = {});

/// Runs the linter and throws LintError when any Error-severity finding
/// exists.  `context` prefixes the exception message (e.g. the sweep
/// design label).
void enforce_lint(const Netlist& nl, const LintOptions& opt = {},
                  std::string_view context = {});

/// Installs the linter as the sweep engine's design gate
/// (engine::set_design_gate): every Experiment::run() in this process then
/// rejects designs with Error-severity findings before simulating a single
/// point.  Idempotent.  The engine layer sits below the analysis layers,
/// so the gate is injected rather than linked — call this from tools and
/// drivers (scpgc does, at startup).
void install_engine_gate();

} // namespace scpg::lint
